(* E14: decentralized construction and overlay merging.

   Paper (§2): the trie "is constructed by pair-wise interactions between
   nodes without central coordination nor global knowledge"; P-Grid
   "enables the merging of two, formerly independent, overlays in a
   parallel fashion". §4 demonstrates people joining "a running (or even
   one built from scratch) P-Grid overlay".

   We build overlays purely by simulated pairwise exchanges and track
   convergence (depth, coverage, usable lookups, message cost) as rounds
   progress; then we build two isolated overlays and merge them. *)

module Rng = Unistore_util.Rng
module Latency = Unistore_sim.Latency
module Sim = Unistore_sim.Sim
module Config = Unistore_pgrid.Config
module Build = Unistore_pgrid.Build
module Overlay = Unistore_pgrid.Overlay
module Store = Unistore_pgrid.Store
module Node = Unistore_pgrid.Node

let mk_items rng id count =
  List.init count (fun j ->
      let w = Unistore_workload.Namegen.word rng in
      { Store.key = w; item_id = Printf.sprintf "i%d-%d" id j; payload = w; version = 0 })

let lookup_success ov ~n ~items =
  (* Can a random peer find a random preloaded item? *)
  let rng = Rng.create 991 in
  let ok = ref 0 in
  let total = 80 in
  for _ = 1 to total do
    let it : Store.item = Rng.pick_list rng items in
    let r = Overlay.lookup_sync ov ~origin:(Rng.int rng n) ~key:it.Store.key in
    if
      r.Overlay.complete
      && List.exists (fun (x : Store.item) -> String.equal x.Store.item_id it.Store.item_id)
           r.Overlay.items
    then incr ok
  done;
  float_of_int !ok /. float_of_int total

let build ~n ~rounds ~groups ~merge_at ~seed =
  let sim = Sim.create () in
  let rng = Rng.create seed in
  let latency = Latency.create Latency.Lan ~n ~rng in
  let data_rng = Rng.create (seed + 1) in
  let initial_data = List.init n (fun i -> (i, mk_items data_rng i 8)) in
  let all_items = List.concat_map snd initial_data in
  let ov, report =
    Build.bootstrap sim ~latency ~rng ~config:Config.default ~n ~initial_data ~rounds
      ~split_threshold:12 ~groups ~merge_at ()
  in
  (ov, report, all_items)

let run () =
  Common.section "E14: decentralized construction and overlay merging"
    "\"constructed by pair-wise interactions between nodes without central \
     coordination nor global knowledge\"; \"merging of two, formerly \
     independent, overlays\"";
  Common.subsection "A: convergence of the pairwise-exchange bootstrap (32 peers)";
  let rows = ref [] in
  List.iter
    (fun rounds ->
      let ov, report, items = build ~n:32 ~rounds ~groups:1 ~merge_at:0 ~seed:151 in
      let msgs = Unistore_sim.Net.total_sent (Overlay.net ov) in
      rows :=
        [
          Common.i rounds;
          Common.i report.Build.final_depth;
          (if report.Build.coverage_ok then "yes" else "NO");
          Common.pct (lookup_success ov ~n:32 ~items);
          Common.i msgs;
        ]
        :: !rows)
    [ 5; 10; 20; 40 ];
  Common.print_table
    [ "rounds"; "trie depth"; "coverage"; "lookup success"; "total msgs" ]
    (List.rev !rows);
  Common.subsection "B: merging two independently built overlays (16 + 16 peers)";
  let rows = ref [] in
  List.iter
    (fun (label, rounds, merge_at) ->
      let ov, report, items = build ~n:32 ~rounds ~groups:2 ~merge_at ~seed:152 in
      rows :=
        [
          label;
          Common.i report.Build.final_depth;
          (if report.Build.coverage_ok then "yes" else "NO");
          Common.pct (lookup_success ov ~n:32 ~items);
        ]
        :: !rows)
    [
      ("isolated only (no merge)", 20, 1000);
      ("20 isolated + 10 merged", 30, 20);
      ("20 isolated + 40 merged", 60, 20);
    ];
  Common.print_table [ "schedule"; "trie depth"; "coverage"; "lookup success" ] (List.rev !rows);
  Printf.printf
    "\nverdict: a usable trie self-assembles from random pairwise meetings alone; \
     two overlays built in isolation share consistent split boundaries, so a few \
     cross-group exchange rounds give either side access to the other's data\n"
