(* E3: wide-area query answer times at 400 peers.

   Paper (§4): "We will show that even with up to 400 PlanetLab nodes
   query answer times are still only a couple of seconds."

   We deploy 400 simulated peers under the PlanetLab latency model
   (20-300+ ms one-way, log-normal jitter) and measure simulated answer
   times of (a) the paper's 8-pattern skyline query and (b) a mix of
   simpler queries, under both execution strategies. *)

module Stats = Unistore_util.Stats
module Latency = Unistore_sim.Latency
module Engine = Unistore_qproc.Engine

let paper_query =
  "SELECT ?name,?age,?cnt WHERE {(?a,'name',?name) (?a,'age',?age) \
   (?a,'num_of_pubs',?cnt) (?a,'has_published',?title) (?p,'title',?title) \
   (?p,'published_in',?conf) (?c,'confname',?conf) (?c,'series',?sr) \
   FILTER edist(?sr,'ICDE')<3 } ORDER BY SKYLINE OF ?age MIN, ?cnt MAX"

let simple_queries =
  [
    ("point", "SELECT ?a WHERE { (?a,'series',?s) FILTER ?s = 'ICDE' }");
    ("range", "SELECT ?a, ?y WHERE { (?p,'year',?y) (?p,'title',?a) FILTER ?y >= 2002 AND ?y < 2005 }");
    ( "join3",
      "SELECT ?n, ?t WHERE { (?a,'name',?n) (?a,'has_published',?t) (?p,'title',?t) }" );
    ( "topn",
      "SELECT ?n, ?age WHERE { (?a,'name',?n) (?a,'age',?age) } ORDER BY ?age ASC LIMIT 5" );
  ]

let run () =
  Common.section "E3: 400 peers under the PlanetLab latency model"
    "\"even with up to 400 PlanetLab nodes query answer times are still only a \
     couple of seconds\"";
  let store, _ds =
    Common.build_pubs ~peers:400 ~authors:60 ~latency:Latency.Planetlab ~seed:33 ()
  in
  Printf.printf "(one-way latency: 20-300+ms, heavy tail; %d peers)\n\n"
    (List.length (Unistore.alive_peers store));
  let rows = ref [] in
  List.iter
    (fun (name, src) ->
      List.iter
        (fun strategy ->
          let r = Common.run_query_exn store ~origin:7 ~strategy src in
          rows :=
            [
              name;
              Format.asprintf "%a" Engine.pp_strategy strategy;
              Common.i (List.length r.Engine.rows);
              Common.i r.Engine.messages;
              Printf.sprintf "%.2f s" (r.Engine.latency /. 1000.0);
              (if r.Engine.complete then "yes" else "NO");
            ]
            :: !rows)
        [ Unistore.Centralized; Unistore.Mutant ])
    (simple_queries @ [ ("paper-skyline", paper_query) ]);
  Common.print_table
    [ "query"; "strategy"; "rows"; "msgs"; "answer time"; "complete" ]
    (List.rev !rows);
  let r = Common.run_query_exn store ~origin:3 ~strategy:Unistore.Centralized paper_query in
  Printf.printf "\nverdict: the paper's flagship query answers in %.2f simulated seconds %s\n"
    (r.Engine.latency /. 1000.0)
    (if r.Engine.latency < 10_000.0 then "(a couple of seconds, as claimed)"
     else "(SLOWER than the claim)")
