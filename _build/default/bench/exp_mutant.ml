(* E9: adaptive mutant-query-plan execution vs. centralized pulling.

   Paper (§2): "The processing of these plans can be described as an
   extension of the concept of Mutant Query Plans [7]. ... a cost model
   for choosing concrete query plans, which is repeatedly applied at each
   peer involved in a query, resulting in an adaptive query processing
   approach."

   Join chains of increasing depth run under both strategies on a
   wide-area (PlanetLab) deployment; we compare messages, latency and
   bytes shipped. *)

module Engine = Unistore_qproc.Engine
module Latency = Unistore_sim.Latency

let queries =
  [
    ( "1 pattern",
      "SELECT ?t WHERE { (?p,'title',?t) (?p,'year',?y) FILTER ?y >= 2004 }" );
    ( "3-join",
      "SELECT ?n, ?t WHERE { (?a,'name',?n) (?a,'has_published',?t) (?p,'title',?t) }" );
    ( "5-join",
      "SELECT ?n, ?cn WHERE { (?a,'name',?n) (?a,'has_published',?t) (?p,'title',?t) \
       (?p,'published_in',?cn) (?c,'confname',?cn) }" );
    ( "8-join (paper query)",
      "SELECT ?name,?age,?cnt WHERE {(?a,'name',?name) (?a,'age',?age) \
       (?a,'num_of_pubs',?cnt) (?a,'has_published',?title) (?p,'title',?title) \
       (?p,'published_in',?conf) (?c,'confname',?conf) (?c,'series',?sr) \
       FILTER edist(?sr,'ICDE')<3 } ORDER BY SKYLINE OF ?age MIN, ?cnt MAX" );
  ]

let run () =
  Common.section "E9: adaptive (mutant) vs. centralized execution"
    "query plans travel to the data and are re-optimized \"at each peer involved \
     in a query, resulting in an adaptive query processing approach\"";
  let store, _ =
    Common.build_pubs ~peers:128 ~authors:60 ~latency:Latency.Planetlab ~seed:91 ()
  in
  let rows = ref [] in
  List.iter
    (fun (name, src) ->
      let rc = Common.run_query_exn store ~origin:11 ~strategy:Unistore.Centralized src in
      let rm = Common.run_query_exn store ~origin:11 ~strategy:Unistore.Mutant src in
      if List.length rc.Engine.rows <> List.length rm.Engine.rows then
        Printf.printf "WARNING: strategies disagree on %s\n" name;
      rows :=
        [
          name;
          Common.i rc.Engine.messages;
          Common.i rm.Engine.messages;
          Printf.sprintf "%.1f" (rc.Engine.latency /. 1000.0);
          Printf.sprintf "%.1f" (rm.Engine.latency /. 1000.0);
          Common.i rm.Engine.bytes_shipped;
          Common.i (List.length rc.Engine.rows);
        ]
        :: !rows)
    queries;
  Common.print_table
    [ "query"; "cent:msgs"; "mutant:msgs"; "cent:lat_s"; "mutant:lat_s"; "mutant:bytes"; "rows" ]
    (List.rev !rows);
  Printf.printf
    "\nverdict: shipping the plan to the data cuts messages/latency on deep join \
     chains, at the price of shipping plan+binding bytes; both strategies return \
     identical answers\n"
