(* E6: range queries — P-Grid native vs. Chord + distributed trie.

   Paper (§2): "P-Grid supports efficient substring search and range
   queries through its basic infrastructure, where other DHTs require
   additional structures (e.g., in Chord an additional trie-structure is
   constructed on top of its ring-based overlay network to support range
   queries)."

   We sweep range selectivity on the 'age' attribute and compare four
   physical range implementations: P-Grid shower (parallel), P-Grid
   sequential (min-bound traversal), Chord + DHT-hosted trie, and Chord
   flooding. Correctness is checked against a local oracle. *)

module Value = Unistore.Value
module Triple = Unistore.Triple
module Keys = Unistore_triple.Keys
module Tstore = Unistore_triple.Tstore
module Dht = Unistore_triple.Dht
module Overlay = Unistore_pgrid.Overlay
module Message = Unistore_pgrid.Message
module Publications = Unistore_workload.Publications

let age_ranges = [ (30, 33, "~10%"); (30, 40, "~25%"); (24, 69, "100%") ]

let oracle_count ds lo hi =
  List.length
    (List.filter
       (fun (tr : Triple.t) ->
         String.equal tr.Triple.attr "age"
         && match Value.as_int tr.Triple.value with Some a -> a >= lo && a <= hi | None -> false)
       ds.Publications.triples)

let run () =
  Common.section "E6: range queries — native (P-Grid) vs. added structure (Chord+trie)"
    "\"P-Grid supports efficient ... range queries through its basic \
     infrastructure, where other DHTs require additional structures\"";
  let pg_store, ds = Common.build_pubs ~peers:64 ~authors:60 ~qgrams:false ~seed:61 () in
  let ch_store, _ =
    Common.build_pubs ~peers:64 ~authors:60 ~qgrams:false ~seed:61
      ~overlay:Unistore.Chord_trie ()
  in
  let pg_ts = Unistore.tstore pg_store and ch_ts = Unistore.tstore ch_store in
  let pg_ov = Option.get (Unistore.pgrid pg_store) in
  let rows = ref [] in
  List.iter
    (fun (lo, hi, label) ->
      let expect = oracle_count ds lo hi in
      let add name msgs latency found =
        rows :=
          [
            Printf.sprintf "[%d,%d] %s" lo hi label;
            name;
            Common.i msgs;
            Common.f1 latency;
            Printf.sprintf "%d/%d" found expect;
          ]
          :: !rows
      in
      (* P-Grid shower. *)
      let triples, meta =
        Tstore.by_attr_range_sync pg_ts ~origin:3 ~attr:"age" ~lo:(Value.I lo) ~hi:(Value.I hi)
      in
      add "pgrid shower" meta.Tstore.messages meta.Tstore.latency (List.length triples);
      (* P-Grid sequential (min-bound traversal), driven at overlay level. *)
      let klo, khi = Keys.attr_range "age" ~lo:(Value.I lo) ~hi:(Value.I hi) in
      let before = Unistore.messages_sent pg_store in
      let r =
        Overlay.range_sync pg_ov ~origin:3 ~strategy:Message.Sequential ~lo:klo ~hi:khi ()
      in
      add "pgrid sequential"
        (Unistore.messages_sent pg_store - before)
        r.Overlay.latency (List.length r.Overlay.items);
      (* Chord + trie. *)
      let triples, meta =
        Tstore.by_attr_range_sync ch_ts ~origin:3 ~attr:"age" ~lo:(Value.I lo) ~hi:(Value.I hi)
      in
      add "chord+trie" meta.Tstore.messages meta.Tstore.latency (List.length triples);
      (* Chord flooding. *)
      let triples, meta =
        Tstore.scan_sync ch_ts ~origin:3 ~pred:(fun tr ->
            String.equal tr.Triple.attr "age"
            &&
            match Value.as_int tr.Triple.value with
            | Some a -> a >= lo && a <= hi
            | None -> false)
      in
      add "chord flood" meta.Tstore.messages meta.Tstore.latency (List.length triples))
    age_ranges;
  Common.print_table [ "range"; "implementation"; "msgs"; "latency_ms"; "found" ] (List.rev !rows);
  (* Insert cost comparison: the trie's write amplification. *)
  Common.subsection "insert cost (index maintenance per triple)";
  let one_triple = Triple.make ~oid:"probe1" ~attr:"age" (Value.I 33) in
  let cost store ts =
    let before = Unistore.messages_sent store in
    ignore (Tstore.insert_sync ts ~origin:5 one_triple);
    Unistore.messages_sent store - before
  in
  Printf.printf "p-grid insert: %d msgs;  chord+trie insert: %d msgs\n" (cost pg_store pg_ts)
    (cost ch_store ch_ts);
  Printf.printf
    "\nverdict: P-Grid answers ranges natively; Chord pays an extra distributed \
     trie both at insert time (write amplification) and at query time (trie \
     traversal lookups)\n"
