(* E1 (Fig. 2): the paper's triple-placement example.

   Two logical tuples
     (a12, 'Similarity...', 'ICDE 2006 - Workshops', 2006)
     (v34, 'Progressive...', 'ICDE 2005', 2005)
   over schema (OID, title, confname, year) become 6 triples; each triple
   is indexed under its OID, A#v and v keys: 18 index entries distributed
   over a network of 8 peers. We print the resulting placement map and
   verify that every entry is stored and retrievable. *)

module Value = Unistore.Value
module Triple = Unistore.Triple
module Keys = Unistore_triple.Keys
module Tstore = Unistore_triple.Tstore
module Node = Unistore_pgrid.Node
module Overlay = Unistore_pgrid.Overlay
module Store = Unistore_pgrid.Store
module Bitkey = Unistore_util.Bitkey
module Ophash = Unistore_util.Ophash

let tuples =
  [
    ( "a12",
      [
        ("title", Value.S "Similarity...");
        ("confname", Value.S "ICDE 2006 - WS");
        ("year", Value.I 2006);
      ] );
    ( "v34",
      [
        ("title", Value.S "Progressive...");
        ("confname", Value.S "ICDE 2005");
        ("year", Value.I 2005);
      ] );
  ]

let run () =
  Common.section "E1 / Fig. 2: triple placement in an 8-peer trie"
    "18 triples resulting from 2 example tuples are distributed over 8 peers; \
     each triple indexed by OID, A#v and v";
  let triples = List.concat_map (fun (oid, fields) -> Triple.tuple_to_triples ~oid fields) tuples in
  let keys_of (tr : Triple.t) =
    [
      ("OID", Keys.oid_key tr.Triple.oid);
      ("A#v", Keys.attr_value_key tr.Triple.attr tr.Triple.value);
      ("v", Keys.value_key tr.Triple.value);
    ]
  in
  let sample = List.concat_map (fun tr -> List.map snd (keys_of tr)) triples in
  let store =
    Unistore.create ~sample_keys:sample
      { Unistore.default_config with peers = 8; replication = 1; qgram_index = false; seed = 11 }
  in
  let stored = Unistore.load store tuples in
  Unistore.settle store;
  Printf.printf "triples stored: %d (expected 6, giving %d index entries)\n\n" stored
    (3 * stored);
  let ov = Option.get (Unistore.pgrid store) in
  Printf.printf "peer paths (the virtual binary trie):\n";
  List.iter
    (fun (nd : Node.t) ->
      Printf.printf "  peer%d: path=%-8s items=%d\n" nd.Node.id
        (Bitkey.to_string nd.Node.path) (Store.size nd.Node.store))
    (Overlay.nodes ov);
  Printf.printf "\nindex-entry placement (cf. Fig. 2's \"hashkey -> triple\" sketch):\n";
  let rows = ref [] in
  let entries = ref 0 in
  List.iter
    (fun (tr : Triple.t) ->
      List.iter
        (fun (family, key) ->
          incr entries;
          let holders =
            Overlay.responsible ov key
            |> List.filter (fun (nd : Node.t) -> Store.find nd.Node.store key <> [])
            |> List.map (fun (nd : Node.t) -> Printf.sprintf "peer%d" nd.Node.id)
          in
          rows :=
            [
              Printf.sprintf "%s->(%s,'%s',%s)" family tr.Triple.oid tr.Triple.attr
                (Value.to_display tr.Triple.value);
              String.concat "," holders;
            ]
            :: !rows)
        (keys_of tr))
    triples;
  Common.print_table [ "index entry"; "stored at" ] (List.rev !rows);
  (* Verification: all 18 entries retrievable through the overlay. *)
  let ts = Unistore.tstore store in
  let ok = ref 0 in
  List.iter
    (fun (tr : Triple.t) ->
      let found_oid, _ = Tstore.by_oid_sync ts ~origin:0 tr.Triple.oid in
      let found_av, _ =
        Tstore.by_attr_value_sync ts ~origin:0 ~attr:tr.Triple.attr tr.Triple.value
      in
      let found_v, _ = Tstore.by_value_sync ts ~origin:0 tr.Triple.value in
      let has l = List.exists (fun x -> Triple.equal x tr) l in
      if has found_oid then incr ok;
      if has found_av then incr ok;
      if has found_v then incr ok)
    triples;
  Printf.printf "\nretrievable index entries: %d/%d\n" !ok !entries
