(* E12: schema heterogeneity via mapping triples.

   Paper (§2): "we allow to store triples representing a simple kind of
   schema mappings in order to overcome schema heterogeneities. This
   additional metadata can be queried explicitly by the user — or even
   automatically by the system to retrieve relevant data without needing
   the user to interact."

   Two communities publish the same kind of data under different
   attribute names (plain vs. "dblp:"-prefixed). We measure query recall
   with and without automatic mapping expansion, plus the expansion's
   message overhead. *)

module Rng = Unistore_util.Rng
module Engine = Unistore_qproc.Engine
module Publications = Unistore_workload.Publications

let mapped_attrs = [ "name"; "age"; "num_of_pubs"; "title"; "year"; "series"; "confname" ]

let run () =
  Common.section "E12: schema mappings (instance, schema and metadata levels)"
    "schema-mapping triples \"can be queried explicitly by the user — or even \
     automatically by the system\"";
  let rng = Rng.create 131 in
  let ds1 = Publications.generate rng { Publications.default_params with n_authors = 15 } in
  let ds2 =
    Publications.generate rng
      { Publications.default_params with n_authors = 15; namespace = "dblp" }
  in
  let store =
    Unistore.create
      ~sample_keys:(Publications.sample_keys ds1 @ Publications.sample_keys ds2)
      { Unistore.default_config with peers = 64; seed = 13 }
  in
  ignore (Unistore.load store ds1.Publications.tuples);
  ignore (Unistore.load store ds2.Publications.tuples);
  Unistore.set_stats_of_triples store (ds1.Publications.triples @ ds2.Publications.triples);
  List.iter (fun a -> ignore (Unistore.add_mapping store a ("dblp:" ^ a))) mapped_attrs;
  Unistore.settle store;
  let queries =
    [
      ("ages 30-40", "SELECT ?a, ?v WHERE { (?a,'age',?v) FILTER ?v >= 30 AND ?v < 40 }");
      ("VLDB authors", "SELECT ?n WHERE { (?a,'name',?n) (?a,'has_published',?t) }");
      ("2004+ titles", "SELECT ?t WHERE { (?p,'title',?t) (?p,'year',?y) FILTER ?y >= 2004 }");
    ]
  in
  let rows =
    List.map
      (fun (name, src) ->
        let plain = Common.run_query_exn store ~origin:2 src in
        let expanded = Common.run_query_exn store ~origin:2 ~expand_mappings:true src in
        [
          name;
          Common.i (List.length plain.Engine.rows);
          Common.i plain.Engine.messages;
          Common.i (List.length expanded.Engine.rows);
          Common.i expanded.Engine.messages;
        ])
      queries
  in
  Common.print_table
    [ "query"; "rows"; "msgs"; "rows+mappings"; "msgs+mappings" ]
    rows;
  (* Metadata level: the correspondences themselves are queryable. *)
  let meta = Common.run_query_exn store ~origin:0 "SELECT ?m, ?to WHERE { (?m,'sys:maps_to',?to) }" in
  Printf.printf "\nmapping triples stored (queried at the metadata level): %d\n"
    (List.length meta.Engine.rows);
  Printf.printf
    "verdict: with expansion enabled, queries written against one schema \
     transparently retrieve the other community's data (~2x rows), paying the \
     mapping lookups plus the extra index accesses\n"
