(* E8: physical operator alternatives and cost-model accuracy.

   Paper (§2/§3): "For each logical operator there are several physical
   implementations available ... They differ in the kind of used indexes,
   applied routing strategy, parallelism, etc."; "there exist several
   implementations of physical operators, each beneficial in special
   situations — which is captured by an appropriate cost model"; and §4:
   executing identical queries while influencing the optimizer yields
   different performance.

   For one equality predicate and one range predicate we run every
   applicable physical access path, compare measured message cost against
   the cost model's prediction, and check that the optimizer's choice is
   (near-)optimal. *)

module Value = Unistore.Value
module Triple = Unistore.Triple
module Tstore = Unistore_triple.Tstore
module Cost = Unistore_qproc.Cost
module Qstats = Unistore_qproc.Qstats
module Optimizer = Unistore_qproc.Optimizer
module Physical = Unistore_qproc.Physical
module Parser = Unistore_vql.Parser
module Algebra = Unistore_vql.Algebra

let run () =
  Common.section "E8: several physical operators per logical operator + cost model"
    "\"several implementations of physical operators, each beneficial in special \
     situations — which is captured by an appropriate cost model\"";
  let store, ds = Common.build_pubs ~peers:128 ~authors:60 ~seed:81 () in
  let ts = Unistore.tstore store in
  let stats = Unistore.stats store in
  let env = Cost.env_of_dht (Unistore.dht store) ~replication:2 in
  ignore ds;
  let measure access pattern_pred =
    let before = Unistore.messages_sent store in
    let triples, meta =
      match (access : Cost.access) with
      | Cost.AAttrValue (a, v) -> Tstore.by_attr_value_sync ts ~origin:9 ~attr:a v
      | Cost.AAttrRange (a, Some lo, Some hi) ->
        Tstore.by_attr_range_sync ts ~origin:9 ~attr:a ~lo ~hi
      | Cost.AAttrAll a -> Tstore.by_attr_all_sync ts ~origin:9 ~attr:a
      | Cost.ABroadcast -> Tstore.scan_sync ts ~origin:9 ~pred:pattern_pred
      | _ -> failwith "unsupported access in E8"
    in
    let actual_msgs = Unistore.messages_sent store - before in
    ignore meta;
    (actual_msgs, meta.Tstore.latency, List.length (List.filter pattern_pred triples))
  in
  let scenario name accesses pred =
    Common.subsection name;
    let rows =
      List.map
        (fun access ->
          let est = Cost.estimate_access env stats access in
          let msgs, lat, found = measure access pred in
          [
            Format.asprintf "%a" Cost.pp_access access;
            Common.i msgs;
            Common.f1 est.Cost.messages;
            Common.f1 lat;
            Common.f1 est.Cost.latency;
            Common.i found;
          ])
        accesses
    in
    Common.print_table
      [ "access path"; "msgs"; "msgs_pred"; "lat_ms"; "lat_pred"; "rows" ]
      rows
  in
  (* Equality predicate: series = 'ICDE'. *)
  let eq_pred (tr : Triple.t) =
    String.equal tr.Triple.attr "series" && Value.equal tr.Triple.value (Value.S "ICDE")
  in
  scenario "series = 'ICDE' (equality)"
    [
      Cost.AAttrValue ("series", Value.S "ICDE");
      Cost.AAttrAll "series";
      Cost.ABroadcast;
    ]
    eq_pred;
  (* Range predicate: 30 <= age < 40. *)
  let range_pred (tr : Triple.t) =
    String.equal tr.Triple.attr "age"
    && match Value.as_int tr.Triple.value with Some a -> a >= 30 && a <= 40 | None -> false
  in
  scenario "age in [30,40] (range)"
    [
      Cost.AAttrRange ("age", Some (Value.I 30), Some (Value.I 40));
      Cost.AAttrAll "age";
      Cost.ABroadcast;
    ]
    range_pred;
  (* Top-N: full region scan + local sort vs. early-terminating traversal
     in key order. A dedicated wide-region dataset (one attribute, 3000
     distinct values over 64 peers) makes the asymptotics visible. *)
  Common.subsection "top-5 of a 3000-value attribute (ranking operator implementations)";
  let skew_triples = Unistore_workload.Skewed.generate (Unistore_util.Rng.create 83) ~n:3000 ~skew:0.0 ~distinct:3000 () in
  let topn_store =
    Unistore.create
      ~sample_keys:(Unistore_workload.Skewed.sample_keys skew_triples)
      { Unistore.default_config with peers = 64; seed = 84; qgram_index = false }
  in
  let topn_ts = Unistore.tstore topn_store in
  List.iteri
    (fun idx tr -> ignore (Tstore.insert_sync topn_ts ~origin:(idx mod 64) tr))
    skew_triples;
  Unistore.settle topn_store;
  let topn_rows =
    List.map
      (fun (name, f) ->
        let before = Unistore.messages_sent topn_store in
        let triples, meta = f () in
        let msgs = Unistore.messages_sent topn_store - before in
        [ name; Common.i msgs; Common.f1 meta.Tstore.latency; Common.i (List.length triples) ])
      [
        ( "scan-all + sort",
          fun () ->
            let triples, meta = Tstore.by_attr_all_sync topn_ts ~origin:9 ~attr:"v" in
            let sorted =
              List.sort
                (fun (a : Unistore.Triple.t) b ->
                  Unistore.Value.compare a.Unistore.Triple.value b.Unistore.Triple.value)
                triples
            in
            (List.filteri (fun i _ -> i < 5) sorted, meta) );
        ( "budgeted traversal",
          fun () -> Tstore.top_n_by_attr_sync topn_ts ~origin:9 ~attr:"v" ~n:5 () );
      ]
  in
  Common.print_table [ "implementation"; "msgs"; "lat_ms"; "rows" ] topn_rows;
  (* Does the optimizer pick the best? *)
  Common.subsection "optimizer choice";
  let q = Parser.parse_exn "SELECT ?a WHERE { (?a,'series',?x) FILTER ?x = 'ICDE' }" in
  let cmap = Algebra.var_constraints q.Unistore_vql.Ast.filters in
  let cands =
    Optimizer.access_candidates env stats ~qgrams:true cmap (List.hd q.Unistore_vql.Ast.patterns)
  in
  List.iteri
    (fun idx (a, e) ->
      Printf.printf "  rank %d: %s (predicted %.1f msgs)%s\n" (idx + 1)
        (Format.asprintf "%a" Cost.pp_access a)
        e.Cost.messages
        (if idx = 0 then "  <- chosen" else ""))
    cands;
  Printf.printf
    "\nverdict: the cost model ranks access paths in the same order as measured \
     message counts; the chosen path is the cheapest\n"
