(* E11: the paper's example skyline query, end to end.

   Paper (§2): the example VQL query computes "a skyline of authors that
   reaches from the youngest authors to those authors published the most
   publications, whereby we only consider authors published in ICDE
   series", with edit distance up to 2 on the series name.

   We validate the distributed answer against a local brute-force oracle
   and report the ranking operator's cost. *)

module Value = Unistore.Value
module Triple = Unistore.Triple
module Ast = Unistore_vql.Ast
module Engine = Unistore_qproc.Engine
module Binding = Unistore_qproc.Binding
module Ranking = Unistore_qproc.Ranking
module Strdist = Unistore_util.Strdist
module Publications = Unistore_workload.Publications

let paper_query =
  "SELECT ?name,?age,?cnt WHERE {(?a,'name',?name) (?a,'age',?age) \
   (?a,'num_of_pubs',?cnt) (?a,'has_published',?title) (?p,'title',?title) \
   (?p,'published_in',?conf) (?c,'confname',?conf) (?c,'series',?sr) \
   FILTER edist(?sr,'ICDE')<3 } ORDER BY SKYLINE OF ?age MIN, ?cnt MAX"

(* Local oracle: authors with an ICDE-ish publication, then the Pareto
   set over (age MIN, num_of_pubs MAX). *)
let oracle ds =
  let triples = ds.Publications.triples in
  let get oid attr =
    List.find_map
      (fun (tr : Triple.t) ->
        if String.equal tr.Triple.oid oid && String.equal tr.Triple.attr attr then
          Some tr.Triple.value
        else None)
      triples
  in
  let icde_confnames =
    List.filter_map
      (fun (tr : Triple.t) ->
        if
          String.equal tr.Triple.attr "series"
          &&
          match Value.as_string tr.Triple.value with
          | Some s -> Strdist.levenshtein s "ICDE" < 3
          | None -> false
        then get tr.Triple.oid "confname" |> Option.map (fun v -> Option.get (Value.as_string v))
        else None)
      triples
  in
  let icde_titles =
    List.filter_map
      (fun (tr : Triple.t) ->
        if
          String.equal tr.Triple.attr "published_in"
          &&
          match Value.as_string tr.Triple.value with
          | Some c -> List.mem c icde_confnames
          | None -> false
        then get tr.Triple.oid "title" |> Option.map (fun v -> Option.get (Value.as_string v))
        else None)
      triples
  in
  let authors =
    List.filter_map
      (fun (tr : Triple.t) ->
        if
          String.equal tr.Triple.attr "has_published"
          &&
          match Value.as_string tr.Triple.value with
          | Some t -> List.mem t icde_titles
          | None -> false
        then
          match (get tr.Triple.oid "age", get tr.Triple.oid "num_of_pubs") with
          | Some (Value.I age), Some (Value.I cnt) -> Some (tr.Triple.oid, age, cnt)
          | _ -> None
        else None)
      triples
    |> List.sort_uniq compare
  in
  let dominated (_, a1, c1) =
    List.exists
      (fun (_, a2, c2) -> (a2 <= a1 && c2 >= c1) && (a2 < a1 || c2 > c1))
      authors
  in
  List.filter (fun x -> not (dominated x)) authors

let run () =
  Common.section "E11: the example skyline query (ranking operators)"
    "\"a skyline of authors that reaches from the youngest authors to those \
     authors published the most publications\"";
  let store, ds = Common.build_pubs ~peers:64 ~authors:40 ~typo_rate:0.1 ~seed:121 () in
  let expected = oracle ds in
  let r = Common.run_query_exn store ~origin:5 paper_query in
  Printf.printf "candidate authors with ICDE publications (oracle pre-skyline view):\n";
  let skyline_pairs =
    List.map
      (fun row ->
        ( Option.get (Option.bind (Binding.find row "age") Value.as_int),
          Option.get (Option.bind (Binding.find row "cnt") Value.as_int) ))
      r.Engine.rows
    |> List.sort_uniq compare
  in
  let expected_pairs = List.map (fun (_, a, c) -> (a, c)) expected |> List.sort_uniq compare in
  Common.print_table
    [ "source"; "skyline (age,cnt) pairs" ]
    [
      [ "distributed"; String.concat " " (List.map (fun (a, c) -> Printf.sprintf "(%d,%d)" a c) skyline_pairs) ];
      [ "local oracle"; String.concat " " (List.map (fun (a, c) -> Printf.sprintf "(%d,%d)" a c) expected_pairs) ];
    ];
  Printf.printf "\nquery cost: %d msgs, %.0f ms simulated, %d result rows\n" r.Engine.messages
    r.Engine.latency (List.length r.Engine.rows);
  Printf.printf "exact Pareto match: %b\n" (skyline_pairs = expected_pairs);
  (* Ranking-operator micro-cost: skyline over the joined candidates is
     local; the dominating cost is distributed retrieval. *)
  let goals = [ ("age", Ast.Min); ("cnt", Ast.Max) ] in
  let t0 = Sys.time () in
  for _ = 1 to 100 do
    ignore (Ranking.skyline goals r.Engine.rows)
  done;
  let dt = (Sys.time () -. t0) /. 100.0 *. 1e6 in
  Printf.printf "local skyline operator over %d rows: %.1f us (negligible vs. network)\n"
    (List.length r.Engine.rows) dt
