(* E5: storage load balancing under data skew.

   Paper (§2): "P-Grid includes a mature load-balancing technique able to
   deal with nearly arbitrary data skews" (Aberer et al., VLDB'05).

   Zipf-distributed values are inserted into (a) a data-aware trie
   (quantile splits = converged P-Grid load balancing) and (b) a uniform
   key-space trie (no load balancing). We compare per-peer storage. *)

module Rng = Unistore_util.Rng
module Stats = Unistore_util.Stats
module Skewed = Unistore_workload.Skewed
module Node = Unistore_pgrid.Node
module Overlay = Unistore_pgrid.Overlay
module Store = Unistore_pgrid.Store
module Tstore = Unistore_triple.Tstore

let imbalance store =
  match Unistore.pgrid store with
  | None -> (0.0, 0.0, 0)
  | Some ov ->
    let sizes =
      Overlay.nodes ov |> List.map (fun (nd : Node.t) -> float_of_int (Store.size nd.Node.store))
    in
    let s = Stats.summarize sizes in
    let loaded = List.length (List.filter (fun x -> x > 0.0) sizes) in
    (s.Stats.max /. Float.max 1.0 s.Stats.mean, s.Stats.max, loaded)

let run_one ~skew ~load_balanced =
  let rng = Rng.create 99 in
  let triples = Skewed.generate rng ~n:4000 ~skew () in
  let sample = if load_balanced then Skewed.sample_keys triples else [] in
  let store =
    Unistore.create ~sample_keys:sample
      {
        Unistore.default_config with
        peers = 64;
        seed = 17;
        qgram_index = false;
        load_balanced;
      }
  in
  let ts = Unistore.tstore store in
  List.iteri
    (fun idx tr -> ignore (Tstore.insert_sync ts ~origin:(idx mod 64) tr))
    triples;
  Unistore.settle store;
  imbalance store

let run () =
  Common.section "E5: load balancing under Zipf skew (64 peers, 4000 triples)"
    "\"a mature load-balancing technique able to deal with nearly arbitrary data \
     skews\"";
  let rows = ref [] in
  List.iter
    (fun skew ->
      let r_lb, max_lb, loaded_lb = run_one ~skew ~load_balanced:true in
      let r_un, max_un, loaded_un = run_one ~skew ~load_balanced:false in
      rows :=
        [
          Printf.sprintf "%.1f" skew;
          Common.f1 r_lb;
          Common.f1 max_lb;
          Common.i loaded_lb;
          Common.f1 r_un;
          Common.f1 max_un;
          Common.i loaded_un;
        ]
        :: !rows)
    [ 0.0; 0.8; 1.2 ];
  Common.print_table
    [
      "zipf_s";
      "lb:max/mean";
      "lb:max";
      "lb:peers>0";
      "uniform:max/mean";
      "uniform:max";
      "uniform:peers>0";
    ]
    (List.rev !rows);
  Printf.printf
    "\n(load-aware = quantile splits over a data sample; uniform = key-space bisection)\n";
  Printf.printf
    "verdict: data-aware partitioning keeps the max/mean storage ratio low even at \
     high skew; uniform partitioning concentrates hot values on few peers\n"
