(* E7: similarity selection — q-gram index vs. flooding.

   Paper (§2): "in [6] we introduced a q-gram index (q-gram: a substring
   of fixed length q) in order to be able to process string similarity
   efficiently." (Karnstedt et al., NetDB'06)

   Queries of the form edist(title, pattern) <= 2 are answered (a) via
   the distributed q-gram index (parallel exact lookups of the pattern's
   q-grams + local count filter + verification) and (b) by flooding every
   peer. The q-gram cost scales with pattern length x log(N); flooding
   with N — so there is a crossover in network size, and the cost model
   must pick the right side of it. *)

module Rng = Unistore_util.Rng
module Value = Unistore.Value
module Triple = Unistore.Triple
module Tstore = Unistore_triple.Tstore
module Strdist = Unistore_util.Strdist
module Cost = Unistore_qproc.Cost
module Namegen = Unistore_workload.Namegen
module Publications = Unistore_workload.Publications

let run () =
  Common.section "E7: string similarity via the distributed q-gram index"
    "\"a q-gram index in order to be able to process string similarity \
     efficiently\" (ref [6])";
  let rows = ref [] in
  List.iter
    (fun peers ->
      let store, ds = Common.build_pubs ~peers ~authors:50 ~typo_rate:0.2 ~seed:71 () in
      let ts = Unistore.tstore store in
      let rng = Rng.create 72 in
      let titles =
        List.filter_map
          (fun (tr : Triple.t) ->
            if String.equal tr.Triple.attr "title" then Value.as_string tr.Triple.value else None)
          ds.Publications.triples
      in
      let patterns =
        List.map (fun t -> Namegen.typo rng (Namegen.typo rng t)) (Rng.sample rng 5 titles)
      in
      let d = 2 in
      let oracle pattern =
        List.length
          (List.filter
             (fun (tr : Triple.t) ->
               String.equal tr.Triple.attr "title"
               &&
               match Value.as_string tr.Triple.value with
               | Some s -> Strdist.within_distance pattern s d
               | None -> false)
             ds.Publications.triples)
      in
      let q_msgs = ref 0 and f_msgs = ref 0 in
      let q_found = ref 0 and f_found = ref 0 and expect = ref 0 in
      List.iter
        (fun pattern ->
          expect := !expect + oracle pattern;
          let found, meta = Tstore.similar_sync ts ~origin:4 ~attr:"title" ~pattern ~d () in
          q_msgs := !q_msgs + meta.Tstore.messages;
          q_found := !q_found + List.length found;
          let found, meta =
            Tstore.scan_sync ts ~origin:4 ~pred:(fun tr ->
                String.equal tr.Triple.attr "title"
                &&
                match Value.as_string tr.Triple.value with
                | Some s -> Strdist.within_distance pattern s d
                | None -> false)
          in
          f_msgs := !f_msgs + meta.Tstore.messages;
          f_found := !f_found + List.length found)
        patterns;
      let n = List.length patterns in
      (* Which side does the cost model pick? *)
      let env = Cost.env_of_dht (Unistore.dht store) ~replication:2 in
      let stats = Unistore.stats store in
      let sim_est =
        Cost.estimate_access env stats (Cost.ASim (Some "title", List.hd patterns, d))
      in
      let flood_est = Cost.estimate_access env stats Cost.ABroadcast in
      let choice =
        if Cost.objective sim_est < Cost.objective flood_est then "qgram" else "flood"
      in
      rows :=
        [
          Common.i peers;
          Printf.sprintf "%d/%d" !q_found !expect;
          Common.i (!q_msgs / n);
          Printf.sprintf "%d/%d" !f_found !expect;
          Common.i (!f_msgs / n);
          choice;
        ]
        :: !rows)
    [ 64; 256; 1024 ];
  Common.print_table
    [ "peers"; "qgram:recall"; "qgram:msgs"; "flood:recall"; "flood:msgs"; "optimizer picks" ]
    (List.rev !rows);
  Common.subsection "completeness guard";
  let store, _ = Common.build_pubs ~peers:16 ~authors:5 ~seed:73 () in
  let ts = Unistore.tstore store in
  Printf.printf "qgram_applicable(\"ICDE\", d=2) = %b (falls back to flooding)\n"
    (Tstore.qgram_applicable ts ~pattern:"ICDE" ~d:2);
  Printf.printf "qgram_applicable(\"similarity queries\", d=2) = %b\n"
    (Tstore.qgram_applicable ts ~pattern:"similarity queries" ~d:2);
  Printf.printf
    "\nverdict: q-gram cost is ~|pattern| x log N while flooding is ~N: flooding \
     wins on small networks, the q-gram index wins at scale, at equal recall — \
     and the cost model picks the right one on each side of the crossover\n"
