(* E13: routing strategies — random vs. topology-aware reference choice.

   Paper (§1/§4): physical query processing "should exploit the features
   of the underlying infrastructure (e.g., hash-based placement,
   topology-aware routing ...)"; the demo planned to show "benefits we
   earn from implementing different ... routing techniques".

   Every routing step picks one of up to [refs_per_level] references into
   the target subtree. Random choice balances load; proximity-aware
   choice (pick the lowest-base-latency ref, as learned from keep-alive
   RTTs) trades that for latency. Under a LAN model the difference is
   noise; under the PlanetLab model it is substantial. *)

module Rng = Unistore_util.Rng
module Stats = Unistore_util.Stats
module Latency = Unistore_sim.Latency
module Config = Unistore_pgrid.Config
module Build = Unistore_pgrid.Build
module Overlay = Unistore_pgrid.Overlay
module Publications = Unistore_workload.Publications
module Keys = Unistore_triple.Keys
module Triple = Unistore.Triple

let run_one ~model ~proximity =
  let n = 128 in
  let sim = Unistore_sim.Sim.create () in
  let rng = Rng.create 141 in
  let latency = Latency.create model ~n ~rng in
  let config = { Config.default with Config.proximity_routing = proximity; refs_per_level = 4 } in
  let data_rng = Rng.create 142 in
  let ds = Publications.generate data_rng { Publications.default_params with n_authors = 40 } in
  let ov =
    Build.oracle sim ~latency ~rng ~config ~n ~sample_keys:(Publications.sample_keys ds) ()
  in
  (* Insert the A#v entries only (enough for lookup probes). *)
  List.iteri
    (fun idx (tr : Triple.t) ->
      ignore
        (Overlay.insert_sync ov ~origin:(idx mod n)
           ~key:(Keys.attr_value_key tr.Triple.attr tr.Triple.value)
           ~item_id:(string_of_int idx) ~payload:"x" ()))
    ds.Publications.triples;
  Unistore_sim.Sim.run_all sim;
  let probe_rng = Rng.create 143 in
  let probes = Rng.sample probe_rng 150 ds.Publications.triples in
  let lats = ref [] and hops = ref [] in
  List.iter
    (fun (tr : Triple.t) ->
      let origin = Rng.int probe_rng n in
      let r =
        Overlay.lookup_sync ov ~origin ~key:(Keys.attr_value_key tr.Triple.attr tr.Triple.value)
      in
      if r.Overlay.complete then begin
        lats := r.Overlay.latency :: !lats;
        hops := float_of_int r.Overlay.hops :: !hops
      end)
    probes;
  (Stats.summarize !lats, Stats.summarize !hops)

let run () =
  Common.section "E13: routing techniques — random vs. topology-aware"
    "\"benefits we earn from implementing different query processing strategies, \
     routing techniques and indexing methods\" (paper section 4)";
  let rows = ref [] in
  List.iter
    (fun (mname, model) ->
      List.iter
        (fun proximity ->
          let lat, hops = run_one ~model ~proximity in
          rows :=
            [
              mname;
              (if proximity then "proximity" else "random");
              Common.f2 hops.Stats.mean;
              Common.f1 lat.Stats.mean;
              Common.f1 lat.Stats.p90;
              Common.f1 lat.Stats.p99;
            ]
            :: !rows)
        [ false; true ])
    [ ("lan", Latency.Lan); ("planetlab", Latency.Planetlab) ];
  Common.print_table
    [ "latency model"; "ref choice"; "hops_mean"; "lat_mean_ms"; "lat_p90"; "lat_p99" ]
    (List.rev !rows);
  Printf.printf
    "\nverdict: hop counts are identical (same trie), but picking the nearest \
     reference at each hop cuts wide-area lookup latency substantially; on a \
     LAN the choice is irrelevant — exactly the 'depends on network state' \
     behaviour the demo advertises\n"
