(* E10: robustness under failures + loose-consistency updates.

   Paper (§3): the storage works "even if [environments] are unreliable
   and highly dynamic"; §2: "P-Grid comes with an update functionality
   with lose [loose] consistency guarantees [4]".

   Part A: fractions of peers are killed; we measure lookup success and
   range completeness as a function of failure rate and replication
   (averaged over 3 independent trials — with replication 1 a single
   unlucky death can erase a whole attribute region, so single runs are
   noisy).

   Part B: versioned updates reach the responsible peer and are pushed to
   a bounded rumor fanout; the replicas the rumor misses converge through
   anti-entropy rounds (the loose-consistency guarantee of ref [4]). *)

module Rng = Unistore_util.Rng
module Value = Unistore.Value
module Triple = Unistore.Triple
module Tstore = Unistore_triple.Tstore
module Overlay = Unistore_pgrid.Overlay
module Node = Unistore_pgrid.Node
module Gossip = Unistore_pgrid.Gossip
module Keys = Unistore_triple.Keys
module Publications = Unistore_workload.Publications

let trials = 3

let run_failures () =
  Common.subsection "A: query success under peer failures (mean of 3 trials)";
  let rows = ref [] in
  List.iter
    (fun replication ->
      List.iter
        (fun kill_frac ->
          let ok_total = ref 0 and probes_total = ref 0 and repaired_total = ref 0 in
          let recall_total = ref 0 and expect_total = ref 0 in
          for trial = 1 to trials do
            let store, ds =
              Common.build_pubs ~peers:64 ~authors:40 ~replication ~qgrams:false
                ~seed:(101 + (replication * 10) + trial)
                ()
            in
            let ts = Unistore.tstore store in
            let rng = Rng.create (1000 + trial) in
            let victims =
              Rng.sample rng
                (int_of_float (kill_frac *. 64.0))
                (List.init 63 (fun idx -> idx + 1) (* never kill the querying origin 0 *))
            in
            Unistore.kill_peers store victims;
            let probes = Rng.sample rng 50 ds.Publications.triples in
            let measure_lookups ok_counter =
              List.iter
                (fun (tr : Triple.t) ->
                  incr probes_total;
                  let found, meta =
                    Tstore.by_attr_value_sync ts ~origin:0 ~attr:tr.Triple.attr tr.Triple.value
                  in
                  if meta.Tstore.complete && List.exists (fun x -> Triple.equal x tr) found then
                    incr ok_counter)
                probes
            in
            measure_lookups ok_total;
            let expect =
              List.length
                (List.filter
                   (fun (tr : Triple.t) -> String.equal tr.Triple.attr "age")
                   ds.Publications.triples)
            in
            let got, _ =
              Tstore.by_attr_range_sync ts ~origin:0 ~attr:"age" ~lo:(Value.I 0) ~hi:(Value.I 200)
            in
            recall_total := !recall_total + List.length got;
            expect_total := !expect_total + expect;
            (* Now let routing-table maintenance stabilize and retry. *)
            (match Unistore.pgrid store with
            | Some ov -> Unistore_pgrid.Build.repair_refs ov
            | None -> ());
            probes_total := !probes_total - List.length probes (* count each probe once *);
            measure_lookups repaired_total
          done;
          rows :=
            [
              Common.i replication;
              Common.pct kill_frac;
              Common.pct (float_of_int !ok_total /. float_of_int !probes_total);
              Common.pct (float_of_int !repaired_total /. float_of_int !probes_total);
              Common.pct (float_of_int !recall_total /. float_of_int !expect_total);
            ]
            :: !rows)
        [ 0.0; 0.1; 0.3; 0.5 ])
    [ 1; 2; 4 ];
  Common.print_table
    [ "replication"; "killed"; "lookup ok"; "after repair"; "range recall" ]
    (List.rev !rows)

let run_updates () =
  Common.subsection "B: loose-consistency updates (rumor spreading + anti-entropy)";
  (* A large replica group so a bounded rumor fanout genuinely misses
     replicas. *)
  let store, _ = Common.build_pubs ~peers:32 ~authors:4 ~replication:8 ~qgrams:false ~seed:111 () in
  let ov = Option.get (Unistore.pgrid store) in
  let key = Keys.attr_value_key "probe" (Value.S "hot") in
  let r = Overlay.insert_sync ov ~origin:0 ~key ~item_id:"it" ~payload:"v0" () in
  assert r.Overlay.complete;
  Unistore.settle store;
  let group = List.length (Overlay.responsible ov key) in
  Printf.printf "replica group size for the probed key: %d\n" group;
  let rows = ref [] in
  List.iter
    (fun rounds ->
      let version = rounds + 1 in
      let _ =
        Overlay.update_sync ov ~origin:(version mod 32) ~key ~item_id:"it"
          ~payload:(Printf.sprintf "v%d" version)
          ~version ~rounds ()
      in
      Unistore.settle store;
      let after_rumor = Gossip.staleness ov ~key ~item_id:"it" ~version in
      let ae_rounds = ref 0 in
      while Gossip.staleness ov ~key ~item_id:"it" ~version > 0.0 && !ae_rounds < 10 do
        incr ae_rounds;
        Gossip.anti_entropy_round ov;
        Unistore.settle store
      done;
      rows :=
        [
          Common.i rounds;
          Common.pct after_rumor;
          Common.i !ae_rounds;
          Common.pct (Gossip.staleness ov ~key ~item_id:"it" ~version);
        ]
        :: !rows)
    [ 0; 1; 2; 3 ];
  Common.print_table
    [ "rumor rounds"; "stale after rumor"; "anti-entropy rounds"; "stale after" ]
    (List.rev !rows)

let run () =
  Common.section "E10: robustness and dynamicity"
    "\"robust, scalable and reliable ... even if they are unreliable and highly \
     dynamic\"; updates with loose consistency guarantees (ref [4])";
  run_failures ();
  run_updates ();
  Printf.printf
    "\nverdict: replication keeps lookups and ranges near-complete under heavy \
     failure rates (replication 1 loses whatever its dead peers owned); rumor \
     rounds cut post-update staleness and anti-entropy closes the rest\n"
