(* E4: operation at 1000+ peers.

   Paper (§3): "we exploit powerful features of DHTs to create a robust,
   scalable and reliable massively distributed (up to 1000 peers and
   more) storage".

   A 1024-peer deployment executes a mixed VQL workload; we report
   completion, message and latency distributions. *)

module Stats = Unistore_util.Stats
module Engine = Unistore_qproc.Engine

let workload =
  [
    "SELECT ?a WHERE { (?a,'series',?s) FILTER ?s = 'VLDB' }";
    "SELECT ?n WHERE { (?a,'name',?n) (?a,'age',?v) FILTER ?v >= 30 AND ?v < 40 }";
    "SELECT ?t, ?y WHERE { (?p,'title',?t) (?p,'year',?y) FILTER ?y >= 2004 }";
    "SELECT ?n, ?c WHERE { (?a,'name',?n) (?a,'num_of_pubs',?c) } ORDER BY ?c DESC LIMIT 10";
    "SELECT ?n, ?age, ?c WHERE { (?a,'name',?n) (?a,'age',?age) (?a,'num_of_pubs',?c) } \
     ORDER BY SKYLINE OF ?age MIN, ?c MAX";
    "SELECT ?a, ?attr WHERE { (?a,?attr,'databases') }";
    "SELECT ?n, ?t WHERE { (?a,'name',?n) (?a,'has_published',?t) (?p,'title',?t) \
     (?p,'published_in',?cn) (?c,'confname',?cn) (?c,'series',?sr) FILTER ?sr = 'ICDE' }";
  ]

let run () =
  Common.section "E4: a 1024-peer universal storage"
    "\"massively distributed (up to 1000 peers and more) storage\"";
  let store, ds = Common.build_pubs ~peers:1024 ~authors:80 ~seed:55 () in
  Printf.printf "deployment: 1024 peers, %d triples (plus q-gram index entries)\n\n"
    (List.length ds.Unistore_workload.Publications.triples);
  let rows = ref [] in
  let latencies = ref [] and messages = ref [] in
  let all_ok = ref true in
  List.iteri
    (fun idx src ->
      let r = Common.run_query_exn store ~origin:(idx * 131 mod 1024) src in
      if not r.Engine.complete then all_ok := false;
      latencies := r.Engine.latency :: !latencies;
      messages := float_of_int r.Engine.messages :: !messages;
      rows :=
        [
          Printf.sprintf "Q%d" (idx + 1);
          Common.i (List.length r.Engine.rows);
          Common.i r.Engine.messages;
          Common.f1 r.Engine.latency;
          (if r.Engine.complete then "yes" else "NO");
        ]
        :: !rows)
    workload;
  Common.print_table [ "query"; "rows"; "msgs"; "latency_ms"; "complete" ] (List.rev !rows);
  let l = Stats.summarize !latencies and m = Stats.summarize !messages in
  Printf.printf "\nlatency:  %s\n" (Format.asprintf "%a" Stats.pp_summary l);
  Printf.printf "messages: %s\n" (Format.asprintf "%a" Stats.pp_summary m);
  Printf.printf "verdict: %s\n"
    (if !all_ok then "all queries complete at 1024 peers" else "WARNING: incomplete queries")
