(* Bechamel microbenchmarks for the core local data structures and
   algorithms (one Test.make per kernel operation). These complement the
   simulation experiments: E1-E12 measure network cost in simulated
   time/messages; here we measure real CPU cost of the building blocks. *)

open Bechamel
open Toolkit
module Bitkey = Unistore_util.Bitkey
module Ophash = Unistore_util.Ophash
module Strdist = Unistore_util.Strdist
module Rng = Unistore_util.Rng
module Value = Unistore.Value
module Triple = Unistore.Triple
module Parser = Unistore_vql.Parser
module Binding = Unistore_qproc.Binding
module Ranking = Unistore_qproc.Ranking
module Ast = Unistore_vql.Ast
module Store = Unistore_pgrid.Store

let paper_query =
  "SELECT ?name,?age,?cnt WHERE {(?a,'name',?name) (?a,'age',?age) \
   (?a,'num_of_pubs',?cnt) (?a,'has_published',?title) (?p,'title',?title) \
   (?p,'published_in',?conf) (?c,'confname',?conf) (?c,'series',?sr) \
   FILTER edist(?sr,'ICDE')<3 } ORDER BY SKYLINE OF ?age MIN, ?cnt MAX"

let tests =
  let rng = Rng.create 7 in
  let key_a = Bitkey.random rng 64 and key_b = Bitkey.random rng 64 in
  let long_a = "similarity queries on structured data in structured overlays" in
  let long_b = "similarity query on structered data in structured overlay" in
  let skyline_rows =
    List.init 1000 (fun _ ->
        let b = Binding.empty in
        let b = Option.get (Binding.bind b "x" (Value.I (Rng.int rng 100))) in
        Option.get (Binding.bind b "y" (Value.I (Rng.int rng 100))))
  in
  let goals = [ ("x", Ast.Min); ("y", Ast.Max) ] in
  let store = Store.create () in
  List.iteri
    (fun idx w ->
      ignore
        (Store.put store
           { Store.key = w; item_id = string_of_int idx; payload = w; version = 0 }))
    (List.init 2000 (fun _ ->
         String.init (6 + Rng.int rng 6) (fun _ -> Char.chr (Char.code 'a' + Rng.int rng 26))));
  Test.make_grouped ~name:"kernel"
    [
      Test.make ~name:"bitkey.compare" (Staged.stage (fun () -> Bitkey.compare key_a key_b));
      Test.make ~name:"bitkey.common_prefix" (Staged.stage (fun () -> Bitkey.common_prefix_len key_a key_b));
      Test.make ~name:"ophash.encode_int" (Staged.stage (fun () -> Ophash.encode_int 123456789));
      Test.make ~name:"levenshtein.60ch" (Staged.stage (fun () -> Strdist.levenshtein long_a long_b));
      Test.make ~name:"within_distance.d2" (Staged.stage (fun () -> Strdist.within_distance long_a long_b 2));
      Test.make ~name:"qgrams.extract" (Staged.stage (fun () -> Strdist.distinct_qgrams ~q:3 long_a));
      Test.make ~name:"vql.parse_paper_query" (Staged.stage (fun () -> Parser.parse paper_query));
      Test.make ~name:"skyline.1000rows" (Staged.stage (fun () -> Ranking.skyline goals skyline_rows));
      Test.make ~name:"store.range_scan" (Staged.stage (fun () -> Store.range store ~lo:"d" ~hi:"f"));
      Test.make ~name:"triple.serialize" (Staged.stage (fun () ->
          Triple.serialize (Triple.make ~oid:"a12" ~attr:"confname" (Value.S "ICDE 2006"))));
    ]

let run () =
  Common.section "Microbenchmarks (Bechamel)"
    "CPU cost of the local building blocks (the simulation experiments above \
     measure network cost)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with Some [ e ] -> e | _ -> Float.nan
      in
      let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square ols_result) in
      rows := (name, ns, r2) :: !rows)
    results;
  let sorted = List.sort (fun (a, _, _) (b, _, _) -> compare a b) !rows in
  Common.print_table
    [ "benchmark"; "ns/run"; "r^2" ]
    (List.map (fun (n, ns, r2) -> [ n; Printf.sprintf "%.0f" ns; Printf.sprintf "%.3f" r2 ]) sorted)
