bench/exp_operators.ml: Common Format List Printf String Unistore Unistore_qproc Unistore_triple Unistore_util Unistore_vql Unistore_workload
