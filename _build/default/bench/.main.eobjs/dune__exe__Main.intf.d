bench/main.mli:
