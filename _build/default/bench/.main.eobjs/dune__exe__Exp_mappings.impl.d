bench/exp_mappings.ml: Common List Printf Unistore Unistore_qproc Unistore_util Unistore_workload
