bench/exp_fig2.ml: Common List Option Printf String Unistore Unistore_pgrid Unistore_triple Unistore_util
