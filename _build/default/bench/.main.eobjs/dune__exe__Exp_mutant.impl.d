bench/exp_mutant.ml: Common List Printf Unistore Unistore_qproc Unistore_sim
