bench/exp_simsel.ml: Common List Printf String Unistore Unistore_qproc Unistore_triple Unistore_util Unistore_workload
