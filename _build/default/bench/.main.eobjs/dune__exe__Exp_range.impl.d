bench/exp_range.ml: Common List Option Printf String Unistore Unistore_pgrid Unistore_triple Unistore_workload
