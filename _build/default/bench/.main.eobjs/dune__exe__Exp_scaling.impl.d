bench/exp_scaling.ml: Common List Printf Unistore Unistore_pgrid Unistore_triple Unistore_util Unistore_workload
