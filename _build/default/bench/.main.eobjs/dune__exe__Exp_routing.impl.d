bench/exp_routing.ml: Common List Printf Unistore Unistore_pgrid Unistore_sim Unistore_triple Unistore_util Unistore_workload
