bench/exp_loadbal.ml: Common Float List Printf Unistore Unistore_pgrid Unistore_triple Unistore_util Unistore_workload
