bench/exp_thousand.ml: Common Format List Printf Unistore_qproc Unistore_util Unistore_workload
