bench/common.ml: List Printf String Unistore Unistore_sim Unistore_util Unistore_workload
