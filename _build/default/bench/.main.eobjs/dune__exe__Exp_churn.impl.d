bench/exp_churn.ml: Common List Option Printf String Unistore Unistore_pgrid Unistore_triple Unistore_util Unistore_workload
