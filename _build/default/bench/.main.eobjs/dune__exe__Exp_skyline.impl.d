bench/exp_skyline.ml: Common List Option Printf String Sys Unistore Unistore_qproc Unistore_util Unistore_vql Unistore_workload
