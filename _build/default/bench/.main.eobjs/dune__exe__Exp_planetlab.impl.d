bench/exp_planetlab.ml: Common Format List Printf Unistore Unistore_qproc Unistore_sim Unistore_util
