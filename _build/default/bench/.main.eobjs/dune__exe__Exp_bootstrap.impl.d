bench/exp_bootstrap.ml: Common List Printf String Unistore_pgrid Unistore_sim Unistore_util Unistore_workload
