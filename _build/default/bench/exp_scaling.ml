(* E2: lookup scaling with network size.

   Paper (§2, §3): structured overlays "offer logarithmic search
   complexity in the number of nodes"; "for each physical operator ... we
   can determine worst-case guarantees (almost all are logarithmic)".

   We measure exact-match lookup hops/messages/latency for N = 16..1024
   peers with a fixed dataset, and fit mean hops against log2(N). *)

module Rng = Unistore_util.Rng
module Stats = Unistore_util.Stats
module Value = Unistore.Value
module Triple = Unistore.Triple
module Tstore = Unistore_triple.Tstore
module Publications = Unistore_workload.Publications

let run () =
  Common.section "E2: logarithmic lookup scaling (N = 16 .. 1024)"
    "\"logarithmic search complexity in the number of nodes\"; worst-case \
     guarantees are logarithmic";
  let sizes = [ 16; 32; 64; 128; 256; 512; 1024 ] in
  let rows = ref [] in
  let fit_points = ref [] in
  List.iter
    (fun peers ->
      let store, ds = Common.build_pubs ~peers ~authors:40 ~qgrams:false ~seed:21 () in
      let ts = Unistore.tstore store in
      let rng = Rng.create (1000 + peers) in
      (* Look up known A#v keys from random origins. *)
      let samples = Rng.sample rng 100 ds.Publications.triples in
      let hops = ref [] and msgs = ref [] and lats = ref [] in
      let incomplete = ref 0 in
      List.iter
        (fun (tr : Triple.t) ->
          let origin = Rng.int rng peers in
          let _, meta =
            Tstore.by_attr_value_sync ts ~origin ~attr:tr.Triple.attr tr.Triple.value
          in
          if not meta.Tstore.complete then incr incomplete;
          hops := float_of_int meta.Tstore.hops :: !hops;
          msgs := float_of_int meta.Tstore.messages :: !msgs;
          lats := meta.Tstore.latency :: !lats)
        samples;
      let h = Stats.summarize !hops and m = Stats.summarize !msgs and l = Stats.summarize !lats in
      let depth =
        match Unistore.pgrid store with
        | Some ov -> Unistore_pgrid.Overlay.depth ov
        | None -> 0
      in
      fit_points := (log (float_of_int peers) /. log 2.0, h.Stats.mean) :: !fit_points;
      rows :=
        [
          Common.i peers;
          Common.i depth;
          Common.f2 h.Stats.mean;
          Common.f1 h.Stats.p99;
          Common.f2 m.Stats.mean;
          Common.f1 l.Stats.mean;
          Common.i !incomplete;
        ]
        :: !rows)
    sizes;
  Common.print_table
    [ "peers"; "depth"; "hops_mean"; "hops_p99"; "msgs_mean"; "lat_ms"; "failed" ]
    (List.rev !rows);
  let slope, intercept, r2 = Stats.linear_fit !fit_points in
  Printf.printf "\nfit: mean_hops = %.3f * log2(N) + %.3f   (R^2 = %.3f)\n" slope intercept r2;
  Printf.printf "verdict: %s\n"
    (if r2 > 0.8 && slope > 0.0 then "hops grow logarithmically, as claimed"
     else "WARNING: fit does not support the logarithmic claim")
