module Ophash = Unistore_util.Ophash

type t = S of string | I of int | F of float | B of bool

let type_rank = function B _ -> 0 | F _ -> 1 | I _ -> 2 | S _ -> 3

let compare a b =
  match (a, b) with
  | S x, S y -> String.compare x y
  | I x, I y -> Int.compare x y
  | F x, F y -> Float.compare x y
  | B x, B y -> Bool.compare x y
  | _ -> Int.compare (type_rank a) (type_rank b)

let equal a b = compare a b = 0

let pp fmt = function
  | S s -> Format.fprintf fmt "%S" s
  | I i -> Format.fprintf fmt "%d" i
  | F f -> Format.fprintf fmt "%g" f
  | B b -> Format.fprintf fmt "%b" b

let to_display = function
  | S s -> s
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%g" f
  | B b -> string_of_bool b

(* Type tags chosen so that byte order of tags equals [type_rank] order. *)
let tag = function B _ -> 'b' | F _ -> 'f' | I _ -> 'i' | S _ -> 's'

let encode v =
  let body =
    match v with
    | S s -> Ophash.encode_string s
    | I i -> Ophash.encode_int i
    | F f -> Ophash.encode_float f
    | B b -> if b then "\001" else "\000"
  in
  Printf.sprintf "%c%s" (tag v) body

let decode s =
  if String.length s < 1 then None
  else
    let body = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 's' -> Some (S body)
    | 'i' -> if String.length body = 8 then Some (I (Ophash.decode_int body)) else None
    | 'f' -> if String.length body = 8 then Some (F (Ophash.decode_float body)) else None
    | 'b' -> (
      match body with "\000" -> Some (B false) | "\001" -> Some (B true) | _ -> None)
    | _ -> None

let type_min v =
  match v with
  | S _ -> "s"
  | I _ -> encode (I min_int)
  | F _ -> encode (F neg_infinity)
  | B _ -> encode (B false)

let type_max v =
  match v with
  | S _ -> "s" ^ String.make 64 '\xff'
  | I _ -> encode (I max_int)
  | F _ -> encode (F infinity)
  | B _ -> encode (B true)

let as_string = function S s -> Some s | I _ | F _ | B _ -> None
let as_int = function I i -> Some i | S _ | F _ | B _ -> None
let as_float = function F f -> Some f | S _ | I _ | B _ -> None

let to_float = function
  | I i -> Some (float_of_int i)
  | F f -> Some f
  | S _ | B _ -> None
