type t = { oid : string; attr : string; value : Value.t }

let validate_field what s =
  if String.length s = 0 then invalid_arg (Printf.sprintf "Triple.make: empty %s" what);
  if String.contains s '\000' then
    invalid_arg (Printf.sprintf "Triple.make: NUL byte in %s" what)

let make ~oid ~attr value =
  validate_field "oid" oid;
  validate_field "attr" attr;
  { oid; attr; value }

let compare a b =
  match String.compare a.oid b.oid with
  | 0 -> ( match String.compare a.attr b.attr with 0 -> Value.compare a.value b.value | c -> c)
  | c -> c

let equal a b = compare a b = 0

let pp fmt t = Format.fprintf fmt "(%s, %s, %a)" t.oid t.attr Value.pp t.value

let id t = Printf.sprintf "%s|%s|%08x" t.oid t.attr (Hashtbl.hash (Value.encode t.value))

let field s = Printf.sprintf "%d:%s" (String.length s) s

let serialize t = field t.oid ^ field t.attr ^ field (Value.encode t.value)

let read_field s pos =
  match String.index_from_opt s pos ':' with
  | None -> None
  | Some i ->
    (match int_of_string_opt (String.sub s pos (i - pos)) with
    | Some len when String.length s >= i + 1 + len ->
      Some (String.sub s (i + 1) len, i + 1 + len)
    | _ -> None)

let deserialize s =
  match read_field s 0 with
  | None -> None
  | Some (oid, p1) -> (
    match read_field s p1 with
    | None -> None
    | Some (attr, p2) -> (
      match read_field s p2 with
      | Some (venc, p3) when p3 = String.length s -> (
        match Value.decode venc with
        | Some value when oid <> "" && attr <> "" -> Some { oid; attr; value }
        | _ -> None)
      | _ -> None))

let namespace t =
  match String.index_opt t.attr ':' with Some i -> String.sub t.attr 0 i | None -> ""

let local_name t =
  match String.index_opt t.attr ':' with
  | Some i -> String.sub t.attr (i + 1) (String.length t.attr - i - 1)
  | None -> t.attr

let tuple_to_triples ~oid fields = List.map (fun (attr, v) -> make ~oid ~attr v) fields

let triples_to_tuples ts =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun t ->
      if not (Hashtbl.mem tbl t.oid) then begin
        order := t.oid :: !order;
        Hashtbl.replace tbl t.oid []
      end;
      Hashtbl.replace tbl t.oid ((t.attr, t.value) :: Hashtbl.find tbl t.oid))
    ts;
  List.rev_map (fun oid -> (oid, List.rev (Hashtbl.find tbl oid))) !order
