(** Typed attribute values.

    UniStore's universal relation stores heterogeneous data; values are
    dynamically typed. Each type has an order-preserving byte encoding
    (see {!encode}) so that the DHT's order-preserving hash keeps value
    order, enabling range predicates like [?age >= 30] as overlay range
    queries. *)

type t =
  | S of string
  | I of int
  | F of float
  | B of bool

(** Value ordering: within a type, natural order; across types, by type
    tag (B < F < I < S) — heterogeneous comparisons are allowed but
    queries normally stay within one type. *)
val compare : t -> t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Human-readable rendering ([S] values unquoted). *)
val to_display : t -> string

(** [encode v] is a type-tagged byte string such that
    [String.compare (encode a) (encode b)] agrees with [compare a b]. *)
val encode : t -> string

(** Inverse of {!encode}. [None] on malformed input. *)
val decode : string -> t option

(** Minimum/maximum encodings of the same type as [v] — the full value
    range used for open-ended predicates ([?x >= c] becomes the range
    [[encode c, type_max v]]). *)
val type_min : t -> string

val type_max : t -> string

(** The string payload of an [S] value, if any. *)
val as_string : t -> string option

val as_int : t -> int option
val as_float : t -> float option

(** Numeric view: [I] and [F] unify for comparisons in filters. *)
val to_float : t -> float option
