(** Triples: the universal storage's unit of data.

    A relational tuple [(OID, v1, ..., vn)] over schema [R(A1, ..., An)]
    is stored vertically as [n] triples [(OID, Ai, vi)] — the paper's §2
    layout, identical to RDF. Attribute names may carry a namespace
    prefix ["ns:attr"] to distinguish relations; null values are simply
    absent triples. *)

type t = { oid : string; attr : string; value : Value.t }

(** [make ~oid ~attr value] validates and builds a triple. [attr] and
    [oid] must be non-empty and must not contain NUL bytes (reserved as
    the index-key separator). *)
val make : oid:string -> attr:string -> Value.t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** Stable identity of the triple (OID, attribute and value digest):
    the DHT [item_id] shared by all three index entries, so that replicas
    and re-insertions deduplicate. *)
val id : t -> string

(** Wire encoding (length-prefixed fields). *)
val serialize : t -> string

(** Inverse of {!serialize}; [None] on malformed input. *)
val deserialize : string -> t option

(** Namespace helpers: ["dblp:title"] has namespace ["dblp"] and local
    name ["title"]; an un-prefixed attribute has namespace [""]. *)
val namespace : t -> string

val local_name : t -> string

(** [tuple_to_triples ~oid fields] is the vertical decomposition of one
    logical tuple. *)
val tuple_to_triples : oid:string -> (string * Value.t) list -> t list

(** [triples_to_tuples ts] regroups triples by OID, preserving the first
    occurrence order of OIDs; multi-valued attributes yield repeated
    fields. *)
val triples_to_tuples : t list -> (string * (string * Value.t) list) list
