lib/triple/value.mli: Format
