lib/triple/triple.mli: Format Value
