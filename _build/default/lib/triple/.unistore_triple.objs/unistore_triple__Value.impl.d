lib/triple/value.ml: Bool Float Format Int Printf String Unistore_util
