lib/triple/dht.mli: Unistore_chord Unistore_pgrid Unistore_sim
