lib/triple/keys.mli: Value
