lib/triple/tstore.ml: Dht Format Hashtbl Keys List Option String Triple Unistore_pgrid Unistore_sim Unistore_util Value
