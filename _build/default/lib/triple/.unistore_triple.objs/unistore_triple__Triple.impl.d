lib/triple/triple.ml: Format Hashtbl List Printf String Value
