lib/triple/dht.ml: List Option String Unistore_chord Unistore_pgrid Unistore_sim
