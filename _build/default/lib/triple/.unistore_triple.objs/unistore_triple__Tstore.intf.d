lib/triple/tstore.mli: Dht Format Triple Value
