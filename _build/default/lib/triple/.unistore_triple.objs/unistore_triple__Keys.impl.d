lib/triple/keys.ml: Value
