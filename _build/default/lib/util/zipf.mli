(** Zipfian sampling.

    Used by the workload generators and the load-balancing experiments: the
    paper's P-Grid substrate claims to handle "nearly arbitrary data skews"
    via its load balancing, which we exercise with Zipf-distributed
    attribute values. *)

type t

(** [create ~n ~s] prepares a sampler over ranks [1..n] with exponent [s]
    ([s = 0] is uniform; larger [s] is more skewed). [n >= 1]. *)
val create : n:int -> s:float -> t

val n : t -> int
val exponent : t -> float

(** [sample t rng] draws a rank in [1..n]; rank 1 is the most frequent. *)
val sample : t -> Rng.t -> int

(** [probability t rank] is the probability mass of [rank]. *)
val probability : t -> int -> float
