(** Packed bitstrings.

    A [Bitkey.t] is an immutable sequence of bits. P-Grid uses bitstrings
    both as peer {e paths} (positions in the virtual binary trie, i.e. key
    space partitions) and as data {e keys} (the output of the
    order-preserving hash, see {!Ophash}).

    Bit 0 is the most significant bit: the trie root branches on bit 0.
    Lexicographic ordering on bitstrings equals numeric ordering of the
    corresponding left-aligned binary fractions, which is what makes the
    encoding order preserving. *)

type t

(** The empty bitstring (the trie root). *)
val empty : t

(** Number of bits. *)
val length : t -> int

(** [get t i] is bit [i] (0-based from the most significant bit).
    Raises [Invalid_argument] if out of bounds. *)
val get : t -> int -> bool

(** [append_bit t b] is [t] with [b] appended (one level deeper). *)
val append_bit : t -> bool -> t

(** [concat a b] appends all bits of [b] to [a]. *)
val concat : t -> t -> t

(** [take t n] is the first [n] bits of [t]. Raises if [n > length t]. *)
val take : t -> int -> t

(** [drop t n] is [t] without its first [n] bits. *)
val drop : t -> int -> t

(** [flip t i] is [t] with bit [i] inverted. *)
val flip : t -> int -> t

(** [is_prefix ~prefix t] holds iff [prefix] is a (possibly equal) prefix
    of [t]. *)
val is_prefix : prefix:t -> t -> bool

(** Length of the longest common prefix. *)
val common_prefix_len : t -> t -> int

(** Lexicographic comparison; a proper prefix sorts before its
    extensions. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** Hash compatible with {!equal}. *)
val hash : t -> int

(** [of_string "0110"] parses a bitstring literal. Raises
    [Invalid_argument] on characters other than ['0']/['1']. *)
val of_string : string -> t

(** Inverse of {!of_string}: e.g. ["0110"]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** [of_int64 ~width x] is the [width] most significant of the low 64 bits
    of [x], MSB first. [width] must be within [0, 64]. *)
val of_int64 : width:int -> int64 -> t

(** [to_int64 t] packs the bits of [t] left-aligned into an int64 (bit 0 of
    [t] becomes the sign bit). Requires [length t <= 64]. Unsigned
    comparison of results equals {!compare} for equal-length keys. *)
val to_int64 : t -> int64

(** [successor t] is the next key of the same length in lexicographic
    order, or [None] if [t] is all ones. *)
val successor : t -> t option

(** [of_bytes_prefix s ~width] takes the first [width] bits of the byte
    string [s] (MSB of byte 0 first), zero-padding if [s] is short. The
    result preserves the lexicographic order of byte strings up to
    [width]-bit truncation: [s1 <= s2] implies
    [compare (of_bytes_prefix s1) (of_bytes_prefix s2) <= 0]. *)
val of_bytes_prefix : string -> width:int -> t

(** [random rng n] is a uniform bitstring of length [n]. *)
val random : Rng.t -> int -> t

(** [pad t ~width b] extends [t] to [width] bits by appending bit [b];
    returns [t] unchanged if already at least [width] long. Padding with
    [false] gives the smallest key in [t]'s region, with [true] the
    largest: the region covered by prefix [p] in a [width]-bit key space is
    [[pad p ~width false, pad p ~width true]]. *)
val pad : t -> width:int -> bool -> t

(** All [2^n] bitstrings of length [n], in lexicographic order. [n] must be
    small (used by tests and the Fig. 2 example). *)
val enumerate : int -> t list

(** [fold_bits f init t] folds [f] over the bits of [t] MSB first. *)
val fold_bits : ('a -> bool -> 'a) -> 'a -> t -> 'a
