(* Bits are packed MSB-first into bytes: bit [i] lives in byte [i/8] at
   bit position [7 - i mod 8]. Trailing bits of the last byte are kept
   zero, which makes [equal]/[hash]/[compare] on the raw bytes valid. *)

type t = { len : int; data : Bytes.t }

let empty = { len = 0; data = Bytes.empty }

let length t = t.len

let bytes_for_bits n = (n + 7) / 8

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Bitkey.get: index out of bounds";
  let byte = Char.code (Bytes.get t.data (i / 8)) in
  byte land (1 lsl (7 - (i mod 8))) <> 0

let unsafe_set data i b =
  let idx = i / 8 in
  let mask = 1 lsl (7 - (i mod 8)) in
  let cur = Char.code (Bytes.get data idx) in
  let v = if b then cur lor mask else cur land lnot mask in
  Bytes.set data idx (Char.chr v)

let make_zeroed len = Bytes.make (bytes_for_bits len) '\000'

let append_bit t b =
  let len = t.len + 1 in
  let data = make_zeroed len in
  Bytes.blit t.data 0 data 0 (Bytes.length t.data);
  unsafe_set data t.len b;
  { len; data }

let take t n =
  if n < 0 || n > t.len then invalid_arg "Bitkey.take";
  if n = t.len then t
  else begin
    let data = make_zeroed n in
    Bytes.blit t.data 0 data 0 (bytes_for_bits n);
    (* Clear trailing bits of the last byte beyond position n. *)
    let rem = n mod 8 in
    if rem <> 0 then begin
      let last = bytes_for_bits n - 1 in
      let keep = 0xFF lxor (0xFF lsr rem) in
      Bytes.set data last (Char.chr (Char.code (Bytes.get data last) land keep))
    end;
    { len = n; data }
  end

let drop t n =
  if n < 0 || n > t.len then invalid_arg "Bitkey.drop";
  let len = t.len - n in
  let data = make_zeroed len in
  for i = 0 to len - 1 do
    unsafe_set data i (get t (n + i))
  done;
  { len; data }

let concat a b =
  let len = a.len + b.len in
  let data = make_zeroed len in
  Bytes.blit a.data 0 data 0 (Bytes.length a.data);
  if a.len mod 8 = 0 then Bytes.blit b.data 0 data (a.len / 8) (Bytes.length b.data)
  else
    for i = 0 to b.len - 1 do
      unsafe_set data (a.len + i) (get b i)
    done;
  { len; data }

let flip t i =
  if i < 0 || i >= t.len then invalid_arg "Bitkey.flip";
  let data = Bytes.copy t.data in
  unsafe_set data i (not (get t i));
  { len = t.len; data }

let common_prefix_len a b =
  let n = min a.len b.len in
  let rec go i = if i >= n then n else if get a i <> get b i then i else go (i + 1) in
  go 0

let is_prefix ~prefix t =
  prefix.len <= t.len && common_prefix_len prefix t = prefix.len

let compare a b =
  let n = min a.len b.len in
  let rec go i =
    if i >= n then Stdlib.compare a.len b.len
    else
      match (get a i, get b i) with
      | false, true -> -1
      | true, false -> 1
      | _ -> go (i + 1)
  in
  go 0

let equal a b = a.len = b.len && Bytes.equal a.data b.data

let hash t = Hashtbl.hash (t.len, Bytes.to_string t.data)

let of_string s =
  let len = String.length s in
  let data = make_zeroed len in
  String.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> unsafe_set data i true
      | _ -> invalid_arg "Bitkey.of_string: expected only '0'/'1'")
    s;
  { len; data }

let to_string t = String.init t.len (fun i -> if get t i then '1' else '0')

let pp fmt t = Format.fprintf fmt "%s" (to_string t)

let of_int64 ~width x =
  if width < 0 || width > 64 then invalid_arg "Bitkey.of_int64: width";
  let data = make_zeroed width in
  for i = 0 to width - 1 do
    let bit = Int64.logand (Int64.shift_right_logical x (63 - i)) 1L in
    unsafe_set data i (Int64.equal bit 1L)
  done;
  { len = width; data }

let to_int64 t =
  if t.len > 64 then invalid_arg "Bitkey.to_int64: too long";
  let x = ref 0L in
  for i = 0 to t.len - 1 do
    if get t i then x := Int64.logor !x (Int64.shift_left 1L (63 - i))
  done;
  !x

let successor t =
  (* Find the last zero bit, set it, clear everything after. *)
  let rec last_zero i = if i < 0 then None else if get t i then last_zero (i - 1) else Some i in
  match last_zero (t.len - 1) with
  | None -> None
  | Some i ->
    let data = make_zeroed t.len in
    Bytes.blit t.data 0 data 0 (Bytes.length t.data);
    unsafe_set data i true;
    for j = i + 1 to t.len - 1 do
      unsafe_set data j false
    done;
    Some { len = t.len; data }

let of_bytes_prefix s ~width =
  if width < 0 then invalid_arg "Bitkey.of_bytes_prefix: width";
  let data = make_zeroed width in
  let avail = String.length s * 8 in
  (* [n] is a multiple of 8 whenever the source is shorter than [width]
     (strings hold whole bytes), so only truncation can leave stray bits in
     the last byte; they are cleared below. *)
  let n = min width avail in
  Bytes.blit_string s 0 data 0 (bytes_for_bits n);
  let rem_w = width mod 8 in
  if rem_w <> 0 then begin
    let last = bytes_for_bits width - 1 in
    let keep = 0xFF lxor (0xFF lsr rem_w) in
    Bytes.set data last (Char.chr (Char.code (Bytes.get data last) land keep))
  end;
  { len = width; data }

let random rng n =
  let data = make_zeroed n in
  for i = 0 to n - 1 do
    unsafe_set data i (Rng.bool rng ~p:0.5)
  done;
  { len = n; data }

let pad t ~width b =
  if t.len >= width then t
  else begin
    let data = make_zeroed width in
    Bytes.blit t.data 0 data 0 (Bytes.length t.data);
    if b then
      for i = t.len to width - 1 do
        unsafe_set data i true
      done;
    { len = width; data }
  end

let enumerate n =
  if n < 0 || n > 20 then invalid_arg "Bitkey.enumerate: n out of range";
  let count = 1 lsl n in
  List.init count (fun v -> of_int64 ~width:n (Int64.shift_left (Int64.of_int v) (64 - n)))

let fold_bits f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc (get t i)
  done;
  !acc
