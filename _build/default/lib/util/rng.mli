(** Deterministic pseudo-random number generator.

    A small, fast, splittable PRNG (splitmix64) used everywhere in the
    simulator so that every experiment is reproducible from a single seed.
    Not cryptographic. *)

type t

(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)
val create : int -> t

(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each subsystem its own stream so that adding draws in one
    subsystem does not perturb another. *)
val split : t -> t

(** [copy t] duplicates the current state (same future stream). *)
val copy : t -> t

(** Next raw 64 bits. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] if
    [bound <= 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)
val int_in : t -> int -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

(** [float_in t lo hi] is uniform in [lo, hi). *)
val float_in : t -> float -> float -> float

(** [bool t ~p] is [true] with probability [p]. *)
val bool : t -> p:float -> bool

(** [pick t arr] is a uniform element of [arr]. Raises on empty array. *)
val pick : t -> 'a array -> 'a

(** [pick_list t l] is a uniform element of [l]. Raises on empty list. *)
val pick_list : t -> 'a list -> 'a

(** [sample t k l] draws [min k (List.length l)] distinct elements of [l]
    uniformly (reservoir sampling); order is unspecified. *)
val sample : t -> int -> 'a list -> 'a list

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [shuffle_list t l] is a uniformly shuffled copy of [l]. *)
val shuffle_list : t -> 'a list -> 'a list

(** Exponentially distributed with the given mean. *)
val exponential : t -> mean:float -> float

(** Standard normal (Box-Muller). *)
val gaussian : t -> float

(** Log-normal: [exp (mu + sigma * gaussian)]. *)
val lognormal : t -> mu:float -> sigma:float -> float
