lib/util/bitkey.mli: Format Rng
