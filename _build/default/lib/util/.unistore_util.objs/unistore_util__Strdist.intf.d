lib/util/strdist.mli:
