lib/util/strdist.ml: Array Hashtbl List Option String
