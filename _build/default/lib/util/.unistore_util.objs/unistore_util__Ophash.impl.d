lib/util/ophash.ml: Bitkey Char Int64 String
