lib/util/bitkey.ml: Bytes Char Format Hashtbl Int64 List Rng Stdlib String
