lib/util/ophash.mli: Bitkey
