lib/util/rng.mli:
