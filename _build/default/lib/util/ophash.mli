(** Order-preserving hashing.

    P-Grid assigns data to key partitions with a {e prefix-preserving,
    order-preserving} hash function: nearby values hash to nearby keys, so
    range and prefix queries map to contiguous regions of the trie. This
    module provides the sortable byte encoding used as that hash.

    The encoding maps each value to a byte string such that byte-string
    lexicographic order equals value order within a type. Different types
    occupy disjoint, tagged regions of the key space. Routing uses a fixed
    number of leading bits of the encoding (see {!to_bitkey}); local stores
    keep the full encoding so truncation never loses data, only routing
    precision. *)

(** Width in bits of routing keys derived from encodings (32 bytes: enough
    for the index-family tag, attribute name and a value prefix to fall
    inside the routed portion). *)
val routing_bits : int

(** [encode_string s] is the sortable encoding of a raw string (identity:
    byte strings are already ordered). *)
val encode_string : string -> string

(** [encode_int i] is an 8-byte big-endian offset-binary encoding:
    [i1 <= i2] iff [encode_int i1 <= encode_int i2]. *)
val encode_int : int -> string

(** [encode_float f] is the IEEE-754 total-order trick: flip the sign bit
    of non-negative floats, complement all bits of negative ones. Orders
    all non-NaN floats correctly. *)
val encode_float : float -> string

val decode_int : string -> int
val decode_float : string -> float

(** [to_bitkey enc] truncates/pads the encoding to {!routing_bits} bits;
    preserves order up to truncation ties. *)
val to_bitkey : string -> Bitkey.t

(** [bitkey_of_string s] is [to_bitkey (encode_string s)]. *)
val bitkey_of_string : string -> Bitkey.t

(** [range_region ~lo ~hi] is the pair of routing keys delimiting the
    region responsible for encodings in [[lo, hi]] (inclusive). The high
    bound is padded with ones so that all extensions of [hi]'s truncation
    are included. *)
val range_region : lo:string -> hi:string -> Bitkey.t * Bitkey.t

(** [prefix_region p] is the key region covered by all strings extending
    byte-string prefix [p]. *)
val prefix_region : string -> Bitkey.t * Bitkey.t
