let routing_bits = 256

let encode_string s = s

let encode_int i =
  (* Offset binary: xor the sign bit so negative ints sort first. *)
  let x = Int64.logxor (Int64.of_int i) Int64.min_int in
  String.init 8 (fun k ->
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical x ((7 - k) * 8)) 0xFFL)))

let decode_int s =
  if String.length s <> 8 then invalid_arg "Ophash.decode_int";
  let x = ref 0L in
  String.iter (fun c -> x := Int64.logor (Int64.shift_left !x 8) (Int64.of_int (Char.code c))) s;
  Int64.to_int (Int64.logxor !x Int64.min_int)

let float_bits_sortable f =
  let bits = Int64.bits_of_float f in
  if Int64.compare bits 0L < 0 then Int64.lognot bits
  else Int64.logor bits Int64.min_int

let float_bits_unsortable x =
  if Int64.compare x 0L < 0 then Int64.logand x Int64.max_int |> fun b -> Int64.float_of_bits b
  else Int64.float_of_bits (Int64.lognot x)

let encode_float f =
  let x = float_bits_sortable f in
  String.init 8 (fun k ->
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical x ((7 - k) * 8)) 0xFFL)))

let decode_float s =
  if String.length s <> 8 then invalid_arg "Ophash.decode_float";
  let x = ref 0L in
  String.iter (fun c -> x := Int64.logor (Int64.shift_left !x 8) (Int64.of_int (Char.code c))) s;
  float_bits_unsortable !x

let to_bitkey enc = Bitkey.of_bytes_prefix enc ~width:routing_bits

let bitkey_of_string s = to_bitkey (encode_string s)

let range_region ~lo ~hi =
  let lo_k = to_bitkey lo in
  (* Truncating [hi] can only shrink it, so pad the truncation with ones to
     cover every key whose encoding extends the truncated prefix. *)
  let hi_trunc = Bitkey.of_bytes_prefix hi ~width:routing_bits in
  let hi_k =
    if String.length hi * 8 > routing_bits then Bitkey.pad hi_trunc ~width:routing_bits true
    else hi_trunc
  in
  (lo_k, hi_k)

let prefix_region p =
  let bits = String.length p * 8 in
  if bits >= routing_bits then
    let k = Bitkey.of_bytes_prefix p ~width:routing_bits in
    (k, Bitkey.pad k ~width:routing_bits true)
  else
    let k = Bitkey.of_bytes_prefix p ~width:bits in
    (Bitkey.pad k ~width:routing_bits false, Bitkey.pad k ~width:routing_bits true)
