(** Descriptive statistics for experiment reporting. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

(** [summarize xs] computes the summary of a sample. Raises
    [Invalid_argument] on the empty list. *)
val summarize : float list -> summary

(** [percentile xs p] with [p] in [0,100], linear interpolation between
    order statistics. *)
val percentile : float list -> float -> float

val mean : float list -> float
val stddev : float list -> float

(** [pp_summary] renders like ["n=100 mean=3.2 sd=0.4 p50=3 p99=5 max=6"]. *)
val pp_summary : Format.formatter -> summary -> unit

(** Online mean/variance accumulator (Welford). *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
end

(** [linear_fit xys] returns [(slope, intercept, r2)] of the least-squares
    line through the points; used to check logarithmic-cost claims by
    fitting hops against [log2 n]. *)
val linear_fit : (float * float) list -> float * float * float
