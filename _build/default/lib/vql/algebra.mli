(** Logical algebra for VQL.

    Queries translate to trees of "relational" operators (selection,
    projection, natural join, distinct, ordering, limit) extended with the
    paper's ranking/similarity operators (skyline; similarity predicates
    inside selections). Physical operator choice, join ordering and
    cost-based decisions live in [unistore_qproc]. *)

module Value = Unistore_triple.Value

type t =
  | Scan of Ast.pattern  (** produce bindings for one triple pattern *)
  | Select of Ast.expr * t
  | Project of string list * t
  | Distinct of t
  | Join of t * t  (** natural join on shared variables *)
  | Union of t * t  (** bag union of UNION branches *)
  | OrderBy of (string * Ast.dir) list * t
  | Skyline of (string * Ast.goal) list * t
  | Limit of int * t

(** Left-deep canonical translation: patterns joined in syntactic order,
    filters applied on top, then order/skyline, projection, distinct,
    limit. *)
val of_query : Ast.query -> t

(** Output variables of a plan. *)
val vars : t -> string list

val pp : Format.formatter -> t -> unit

(** {2 Filter analysis} — recognizing pushdown-able predicate shapes. *)

type constraint_ =
  | Ceq of Value.t  (** [?v = c] *)
  | Clower of Value.t * bool  (** [?v > c] / [?v >= c] (bool = inclusive) *)
  | Cupper of Value.t * bool  (** [?v < c] / [?v <= c] *)
  | Cedist of string * int  (** [edist(?v, 'p') <= d] *)
  | Cprefix of string  (** [prefix(?v, 'p')] *)
  | Ccontains of string  (** [contains(?v, 'p')] *)

val pp_constraint : Format.formatter -> constraint_ -> unit

(** [var_constraints filters] maps each variable to the index-exploitable
    constraints found among top-level conjuncts. Constraints are a sound
    over-approximation: applying the full residual filters afterwards is
    always required for [Neq], [Or], etc. *)
val var_constraints : Ast.expr list -> (string * constraint_ list) list

(** {2 Expression evaluation} (used by the executor) *)

(** [eval_expr lookup e] evaluates to a value; [None] on type errors or
    unbound variables. Comparisons yield [B]; [I]/[F] unify numerically. *)
val eval_expr : (string -> Value.t option) -> Ast.expr -> Value.t option

(** [eval_pred lookup e] is SPARQL-style: errors count as [false]. *)
val eval_pred : (string -> Value.t option) -> Ast.expr -> bool
