lib/vql/lexer.ml: Buffer Format List Printf String
