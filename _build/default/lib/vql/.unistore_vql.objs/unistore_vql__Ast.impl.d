lib/vql/ast.ml: Format List String Unistore_triple
