lib/vql/ast.mli: Format Unistore_triple
