lib/vql/lexer.mli: Format
