lib/vql/algebra.ml: Ast Bool Float Format Hashtbl List Option String Unistore_triple Unistore_util
