lib/vql/parser.ml: Array Ast Format Lexer List Printf String Unistore_triple
