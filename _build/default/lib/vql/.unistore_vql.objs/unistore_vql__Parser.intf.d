lib/vql/parser.mli: Ast
