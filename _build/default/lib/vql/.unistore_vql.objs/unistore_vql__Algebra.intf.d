lib/vql/algebra.mli: Ast Format Unistore_triple
