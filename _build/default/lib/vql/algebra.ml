module Value = Unistore_triple.Value
module Strdist = Unistore_util.Strdist

type t =
  | Scan of Ast.pattern
  | Select of Ast.expr * t
  | Project of string list * t
  | Distinct of t
  | Join of t * t
  | Union of t * t
  | OrderBy of (string * Ast.dir) list * t
  | Skyline of (string * Ast.goal) list * t
  | Limit of int * t

let of_query (q : Ast.query) =
  let branch (patterns, filters) =
    let scans = List.map (fun p -> Scan p) patterns in
    let joined =
      match scans with
      | [] -> invalid_arg "Algebra.of_query: no patterns"
      | first :: rest -> List.fold_left (fun acc s -> Join (acc, s)) first rest
    in
    List.fold_left (fun acc f -> Select (f, acc)) joined filters
  in
  let filtered =
    List.fold_left
      (fun acc b -> Union (acc, branch b))
      (branch (q.Ast.patterns, q.Ast.filters))
      q.Ast.union_branches
  in
  let ordered =
    match q.Ast.order with
    | Some (Ast.OrderBy items) -> OrderBy (items, filtered)
    | Some (Ast.Skyline items) -> Skyline (items, filtered)
    | None -> filtered
  in
  let projected =
    match q.Ast.projection with Some vs -> Project (vs, ordered) | None -> ordered
  in
  let distinct = if q.Ast.distinct then Distinct projected else projected in
  match q.Ast.limit with Some n -> Limit (n, distinct) | None -> distinct

let rec vars = function
  | Scan p -> Ast.pattern_vars p
  | Select (_, t) | Distinct t | OrderBy (_, t) | Skyline (_, t) | Limit (_, t) -> vars t
  | Project (vs, _) -> vs
  | Join (a, b) | Union (a, b) -> List.sort_uniq compare (vars a @ vars b)

let rec pp fmt = function
  | Scan p -> Format.fprintf fmt "Scan%a" Ast.pp_pattern p
  | Select (e, t) -> Format.fprintf fmt "@[<v 2>Select[%a]@,%a@]" Ast.pp_expr e pp t
  | Project (vs, t) ->
    Format.fprintf fmt "@[<v 2>Project[%s]@,%a@]"
      (String.concat "," (List.map (fun v -> "?" ^ v) vs))
      pp t
  | Distinct t -> Format.fprintf fmt "@[<v 2>Distinct@,%a@]" pp t
  | Join (a, b) -> Format.fprintf fmt "@[<v 2>Join@,%a@,%a@]" pp a pp b
  | Union (a, b) -> Format.fprintf fmt "@[<v 2>Union@,%a@,%a@]" pp a pp b
  | OrderBy (items, t) ->
    Format.fprintf fmt "@[<v 2>OrderBy[%s]@,%a@]"
      (String.concat ","
         (List.map (fun (v, d) -> "?" ^ v ^ match d with Ast.Asc -> "+" | Ast.Desc -> "-") items))
      pp t
  | Skyline (items, t) ->
    Format.fprintf fmt "@[<v 2>Skyline[%s]@,%a@]"
      (String.concat ","
         (List.map (fun (v, g) -> "?" ^ v ^ match g with Ast.Min -> " MIN" | Ast.Max -> " MAX") items))
      pp t
  | Limit (n, t) -> Format.fprintf fmt "@[<v 2>Limit[%d]@,%a@]" n pp t

(* ------------------------------------------------------------------ *)
(* Filter analysis                                                     *)

type constraint_ =
  | Ceq of Value.t
  | Clower of Value.t * bool
  | Cupper of Value.t * bool
  | Cedist of string * int
  | Cprefix of string
  | Ccontains of string

let pp_constraint fmt = function
  | Ceq v -> Format.fprintf fmt "= %a" Value.pp v
  | Clower (v, true) -> Format.fprintf fmt ">= %a" Value.pp v
  | Clower (v, false) -> Format.fprintf fmt "> %a" Value.pp v
  | Cupper (v, true) -> Format.fprintf fmt "<= %a" Value.pp v
  | Cupper (v, false) -> Format.fprintf fmt "< %a" Value.pp v
  | Cedist (p, d) -> Format.fprintf fmt "edist(·,'%s') <= %d" p d
  | Cprefix p -> Format.fprintf fmt "prefix(·,'%s')" p
  | Ccontains p -> Format.fprintf fmt "contains(·,'%s')" p

let rec conjuncts = function
  | Ast.EAnd (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let flip = function
  | Ast.Lt -> Ast.Gt
  | Ast.Le -> Ast.Ge
  | Ast.Gt -> Ast.Lt
  | Ast.Ge -> Ast.Le
  | (Ast.Eq | Ast.Neq) as op -> op

let constraint_of_conjunct e =
  let of_cmp op v c =
    match op with
    | Ast.Eq -> Some (v, Ceq c)
    | Ast.Lt -> Some (v, Cupper (c, false))
    | Ast.Le -> Some (v, Cupper (c, true))
    | Ast.Gt -> Some (v, Clower (c, false))
    | Ast.Ge -> Some (v, Clower (c, true))
    | Ast.Neq -> None
  in
  match e with
  | Ast.ECmp (op, EVar v, EConst c) -> of_cmp op v c
  | Ast.ECmp (op, EConst c, EVar v) -> of_cmp (flip op) v c
  | Ast.ECmp (op, EEdist (EVar v, EConst (Value.S p)), EConst (Value.I d))
  | Ast.ECmp (op, EEdist (EConst (Value.S p), EVar v), EConst (Value.I d)) -> (
    match op with
    | Ast.Lt -> Some (v, Cedist (p, d - 1))
    | Ast.Le -> Some (v, Cedist (p, d))
    | Ast.Eq -> Some (v, Cedist (p, d))
    | Ast.Neq | Ast.Gt | Ast.Ge -> None)
  | Ast.EPrefix (EVar v, EConst (Value.S p)) -> Some (v, Cprefix p)
  | Ast.EContains (EVar v, EConst (Value.S p)) -> Some (v, Ccontains p)
  | _ -> None

let var_constraints filters =
  let all = List.concat_map conjuncts filters in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match constraint_of_conjunct e with
      | Some (v, c) ->
        Hashtbl.replace tbl v (c :: Option.value ~default:[] (Hashtbl.find_opt tbl v))
      | None -> ())
    all;
  Hashtbl.fold (fun v cs acc -> (v, List.rev cs) :: acc) tbl [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)

let as_number = Value.to_float

let compare_values a b =
  (* Numeric types unify; otherwise fall back to Value.compare within a
     type. Cross-type non-numeric comparisons are errors. *)
  match (as_number a, as_number b) with
  | Some x, Some y -> Some (Float.compare x y)
  | _ -> (
    match (a, b) with
    | Value.S x, Value.S y -> Some (String.compare x y)
    | Value.B x, Value.B y -> Some (Bool.compare x y)
    | _ -> None)

let rec eval_expr lookup (e : Ast.expr) =
  match e with
  | EVar v -> lookup v
  | EConst c -> Some c
  | ECmp (op, a, b) -> (
    match (eval_expr lookup a, eval_expr lookup b) with
    | Some va, Some vb -> (
      match compare_values va vb with
      | Some c ->
        let r =
          match op with
          | Eq -> c = 0
          | Neq -> c <> 0
          | Lt -> c < 0
          | Le -> c <= 0
          | Gt -> c > 0
          | Ge -> c >= 0
        in
        Some (Value.B r)
      | None -> None)
    | _ -> None)
  | EAnd (a, b) -> (
    match (eval_expr lookup a, eval_expr lookup b) with
    | Some (Value.B x), Some (Value.B y) -> Some (Value.B (x && y))
    | _ -> None)
  | EOr (a, b) -> (
    (* SPARQL-ish: true OR error = true. *)
    match (eval_expr lookup a, eval_expr lookup b) with
    | Some (Value.B true), _ | _, Some (Value.B true) -> Some (Value.B true)
    | Some (Value.B x), Some (Value.B y) -> Some (Value.B (x || y))
    | _ -> None)
  | ENot a -> (
    match eval_expr lookup a with Some (Value.B x) -> Some (Value.B (not x)) | _ -> None)
  | EEdist (a, b) -> (
    match (eval_expr lookup a, eval_expr lookup b) with
    | Some (Value.S x), Some (Value.S y) -> Some (Value.I (Strdist.levenshtein x y))
    | _ -> None)
  | EContains (a, b) -> (
    match (eval_expr lookup a, eval_expr lookup b) with
    | Some (Value.S x), Some (Value.S y) ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        if nn = 0 then true
        else begin
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        end
      in
      Some (Value.B (contains x y))
    | _ -> None)
  | EPrefix (a, b) -> (
    match (eval_expr lookup a, eval_expr lookup b) with
    | Some (Value.S x), Some (Value.S y) ->
      Some
        (Value.B (String.length x >= String.length y && String.sub x 0 (String.length y) = y))
    | _ -> None)

let eval_pred lookup e = match eval_expr lookup e with Some (Value.B b) -> b | _ -> false
