module Value = Unistore_triple.Value
open Ast

exception Parse_error of { offset : int; message : string }

type state = { tokens : (Lexer.token * int) array; mutable pos : int }

let current st = st.tokens.(st.pos)

let fail_at offset fmt =
  Format.kasprintf (fun message -> raise (Parse_error { offset; message })) fmt

let fail st fmt =
  let _, off = current st in
  fail_at off fmt

let advance st = if st.pos < Array.length st.tokens - 1 then st.pos <- st.pos + 1

let eat st tok what =
  let t, _ = current st in
  if t = tok then advance st else fail st "expected %s, found %a" what Lexer.pp_token t

let accept st tok =
  let t, _ = current st in
  if t = tok then begin
    advance st;
    true
  end
  else false

let parse_var st =
  match current st with
  | Lexer.VAR v, _ ->
    advance st;
    v
  | t, _ -> fail st "expected a ?variable, found %a" Lexer.pp_token t

let parse_literal st =
  match current st with
  | Lexer.STRING s, _ ->
    advance st;
    Value.S s
  | Lexer.INT i, _ ->
    advance st;
    Value.I i
  | Lexer.FLOAT f, _ ->
    advance st;
    Value.F f
  | Lexer.TRUE, _ ->
    advance st;
    Value.B true
  | Lexer.FALSE, _ ->
    advance st;
    Value.B false
  | t, _ -> fail st "expected a literal, found %a" Lexer.pp_token t

let parse_term st =
  match current st with
  | Lexer.VAR v, _ ->
    advance st;
    TVar v
  | _ -> TConst (parse_literal st)

let parse_pattern st =
  eat st Lexer.LPAREN "'('";
  let subj = parse_term st in
  eat st Lexer.COMMA "','";
  let attr = parse_term st in
  eat st Lexer.COMMA "','";
  let obj = parse_term st in
  eat st Lexer.RPAREN "')'";
  { subj; attr; obj }

(* Expressions *)

let cmpop_of_token = function
  | Lexer.EQ -> Some Eq
  | Lexer.NEQ -> Some Neq
  | Lexer.LT -> Some Lt
  | Lexer.LE -> Some Le
  | Lexer.GT -> Some Gt
  | Lexer.GE -> Some Ge
  | _ -> None

let rec parse_expr st = parse_or st

and parse_or st =
  let left = parse_and st in
  if accept st Lexer.OR then EOr (left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if accept st Lexer.AND then EAnd (left, parse_and st) else left

and parse_not st = if accept st Lexer.NOT then ENot (parse_not st) else parse_cmp st

and parse_cmp st =
  let left = parse_primary st in
  match cmpop_of_token (fst (current st)) with
  | Some op ->
    advance st;
    let right = parse_primary st in
    ECmp (op, left, right)
  | None -> left

and parse_primary st =
  match current st with
  | Lexer.VAR v, _ ->
    advance st;
    EVar v
  | Lexer.LPAREN, _ ->
    advance st;
    let e = parse_expr st in
    eat st Lexer.RPAREN "')'";
    e
  | Lexer.IDENT f, off ->
    advance st;
    eat st Lexer.LPAREN "'(' after function name";
    let a = parse_expr st in
    eat st Lexer.COMMA "','";
    let b = parse_expr st in
    eat st Lexer.RPAREN "')'";
    (match String.lowercase_ascii f with
    | "edist" -> EEdist (a, b)
    | "contains" -> EContains (a, b)
    | "prefix" -> EPrefix (a, b)
    | other -> fail_at off "unknown function %S (expected edist/contains/prefix)" other)
  | _ -> EConst (parse_literal st)

(* Clauses *)

let parse_projection st =
  if accept st Lexer.STAR then None
  else begin
    let first = parse_var st in
    let rec more acc = if accept st Lexer.COMMA then more (parse_var st :: acc) else List.rev acc in
    Some (more [ first ])
  end

let parse_order st =
  if accept st Lexer.SKYLINE then begin
    eat st Lexer.OF "OF";
    let item () =
      let v = parse_var st in
      match current st with
      | Lexer.MIN, _ ->
        advance st;
        (v, Min)
      | Lexer.MAX, _ ->
        advance st;
        (v, Max)
      | t, _ -> fail st "expected MIN or MAX after skyline variable, found %a" Lexer.pp_token t
    in
    let first = item () in
    let rec more acc = if accept st Lexer.COMMA then more (item () :: acc) else List.rev acc in
    Skyline (more [ first ])
  end
  else begin
    let item () =
      let v = parse_var st in
      match current st with
      | Lexer.ASC, _ ->
        advance st;
        (v, Asc)
      | Lexer.DESC, _ ->
        advance st;
        (v, Desc)
      | _ -> (v, Asc)
    in
    let first = item () in
    let rec more acc = if accept st Lexer.COMMA then more (item () :: acc) else List.rev acc in
    OrderBy (more [ first ])
  end

let parse_group st =
  eat st Lexer.LBRACE "'{'";
  let patterns = ref [] and filters = ref [] in
  let rec body () =
    match current st with
    | Lexer.LPAREN, _ ->
      patterns := parse_pattern st :: !patterns;
      body ()
    | Lexer.FILTER, _ ->
      advance st;
      filters := parse_expr st :: !filters;
      body ()
    | Lexer.RBRACE, _ -> advance st
    | t, _ -> fail st "expected a pattern, FILTER or '}', found %a" Lexer.pp_token t
  in
  body ();
  (List.rev !patterns, List.rev !filters)

let parse_query st =
  eat st Lexer.SELECT "SELECT";
  let distinct = accept st Lexer.DISTINCT in
  let projection = parse_projection st in
  eat st Lexer.WHERE "WHERE";
  let patterns, filters = parse_group st in
  let patterns = ref (List.rev patterns) and filters = ref (List.rev filters) in
  if !patterns = [] then fail st "WHERE block needs at least one triple pattern";
  let union_branches = ref [] in
  while accept st Lexer.UNION do
    union_branches := parse_group st :: !union_branches
  done;
  let order =
    if accept st Lexer.ORDER then begin
      eat st Lexer.BY "BY";
      Some (parse_order st)
    end
    else None
  in
  let limit =
    if accept st Lexer.LIMIT then begin
      match current st with
      | Lexer.INT n, _ ->
        advance st;
        Some n
      | t, _ -> fail st "expected an integer after LIMIT, found %a" Lexer.pp_token t
    end
    else None
  in
  (match current st with
  | Lexer.EOF, _ -> ()
  | t, _ -> fail st "unexpected trailing input: %a" Lexer.pp_token t);
  {
    distinct;
    projection;
    patterns = List.rev !patterns;
    filters = List.rev !filters;
    union_branches = List.rev !union_branches;
    order;
    limit;
  }

let context src offset =
  let start = max 0 (offset - 20) in
  let stop = min (String.length src) (offset + 20) in
  String.sub src start (stop - start)

let parse src =
  match Lexer.tokenize src with
  | exception Lexer.Error { offset; message } ->
    Error (Printf.sprintf "lex error at offset %d (near %S): %s" offset (context src offset) message)
  | tokens -> (
    let st = { tokens = Array.of_list tokens; pos = 0 } in
    match parse_query st with
    | q -> (
      match Ast.validate q with
      | [] -> Ok q
      | problems -> Error ("invalid query: " ^ String.concat "; " problems))
    | exception Parse_error { offset; message } ->
      Error
        (Printf.sprintf "parse error at offset %d (near %S): %s" offset (context src offset)
           message))

let parse_exn src = match parse src with Ok q -> q | Error e -> failwith e
