(** Physical query plans.

    A plan is an ordered list of pattern-evaluation steps (the join
    order), each annotated with its chosen access path and whether it
    runs as a bind-join (per-binding direct lookups using already-bound
    variables — the distributed analogue of an index nested-loop join) or
    as a bulk access followed by a hash join at the evaluating site.
    Ranking/projection/limit run after the joins. *)

module Ast = Unistore_vql.Ast

type step = {
  pattern : Ast.pattern;
  access : Cost.access;  (** used when [bindjoin = false] *)
  bindjoin : bool;
  residual : Ast.expr list;
      (** filters whose variables are all bound after this step; applied
          eagerly to shrink intermediate results *)
  est : Cost.estimate;  (** predicted cost of this step *)
}

type t = {
  steps : step list;
  post_filters : Ast.expr list;  (** whatever could not be attached to a step *)
  order : Ast.order_clause option;
  projection : string list option;
  distinct : bool;
  limit : int option;
  expansions : (string * string list) list;
      (** schema-mapping expansion: attribute -> equivalent attributes *)
  total_est : Cost.estimate;
  branches : t list;
      (** plans of additional UNION branches (empty for plain queries) *)
}

val pp : Format.formatter -> t -> unit

(** Variables bound after executing a prefix of the steps. *)
val bound_after : step list -> string list
