module Ast = Unistore_vql.Ast

type step = {
  pattern : Ast.pattern;
  access : Cost.access;
  bindjoin : bool;
  residual : Ast.expr list;
  est : Cost.estimate;
}

type t = {
  steps : step list;
  post_filters : Ast.expr list;
  order : Ast.order_clause option;
  projection : string list option;
  distinct : bool;
  limit : int option;
  expansions : (string * string list) list;
  total_est : Cost.estimate;
  branches : t list;
}

let bound_after steps =
  List.concat_map (fun s -> Ast.pattern_vars s.pattern) steps |> List.sort_uniq compare

let rec pp fmt t =
  Format.fprintf fmt "@[<v>plan (est: %a):@," Cost.pp_estimate t.total_est;
  List.iteri
    (fun i s ->
      Format.fprintf fmt "  %d. %a via %s%a%s@," (i + 1) Ast.pp_pattern s.pattern
        (if s.bindjoin then "bind-join/" else "")
        Cost.pp_access s.access
        (if s.residual = [] then ""
         else
           " | "
           ^ String.concat " AND "
               (List.map (fun e -> Format.asprintf "%a" Ast.pp_expr e) s.residual)))
    t.steps;
  if t.post_filters <> [] then
    Format.fprintf fmt "  post-filters: %s@,"
      (String.concat " AND " (List.map (fun e -> Format.asprintf "%a" Ast.pp_expr e) t.post_filters));
  (match t.order with
  | Some (Ast.OrderBy items) ->
    Format.fprintf fmt "  order-by: %s@," (String.concat "," (List.map fst items))
  | Some (Ast.Skyline items) ->
    Format.fprintf fmt "  skyline: %s@," (String.concat "," (List.map fst items))
  | None -> ());
  (match t.limit with Some n -> Format.fprintf fmt "  limit: %d@," n | None -> ());
  if t.expansions <> [] then
    Format.fprintf fmt "  mapping expansions: %s@,"
      (String.concat "; "
         (List.map (fun (a, eqs) -> a ^ " -> {" ^ String.concat "," eqs ^ "}") t.expansions));
  List.iteri (fun i b -> Format.fprintf fmt "  UNION branch %d:@,  %a@," (i + 1) pp_branch b) t.branches;
  Format.fprintf fmt "@]"

and pp_branch fmt t = pp fmt t
