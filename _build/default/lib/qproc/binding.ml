module Value = Unistore_triple.Value
module Triple = Unistore_triple.Triple
module Ast = Unistore_vql.Ast
module SMap = Map.Make (String)

type t = Value.t SMap.t

let empty = SMap.empty
let find t v = SMap.find_opt v t
let bindings t = SMap.bindings t
let vars t = SMap.bindings t |> List.map fst

let bind t v x =
  match SMap.find_opt v t with
  | Some existing -> if Value.equal existing x then Some t else None
  | None -> Some (SMap.add v x t)

let bind_term t term (value : Value.t) =
  match (term : Ast.term) with
  | Ast.TConst c -> if Value.equal c value then Some t else None
  | Ast.TVar v -> bind t v value

let match_triple_into base (p : Ast.pattern) (tr : Triple.t) =
  Option.bind (bind_term base p.Ast.subj (Value.S tr.Triple.oid)) (fun b ->
      Option.bind (bind_term b p.Ast.attr (Value.S tr.Triple.attr)) (fun b ->
          bind_term b p.Ast.obj tr.Triple.value))

let match_triple p tr = match_triple_into empty p tr

let compatible a b =
  let ok = ref true in
  let merged =
    SMap.union
      (fun _ va vb ->
        if Value.equal va vb then Some va
        else begin
          ok := false;
          Some va
        end)
      a b
  in
  if !ok then Some merged else None

let join_key vs t =
  let buf = Buffer.create 32 in
  let rec go = function
    | [] -> Some (Buffer.contents buf)
    | v :: rest -> (
      match SMap.find_opt v t with
      | Some value ->
        Buffer.add_string buf (Value.encode value);
        Buffer.add_char buf '\000';
        go rest
      | None -> None)
  in
  go vs

let project vs t = SMap.filter (fun v _ -> List.mem v vs) t

let fingerprint t =
  let buf = Buffer.create 32 in
  SMap.iter
    (fun v x ->
      Buffer.add_string buf v;
      Buffer.add_char buf '=';
      Buffer.add_string buf (Value.encode x);
      Buffer.add_char buf ';')
    t;
  Buffer.contents buf

let bytes t =
  SMap.fold (fun v x acc -> acc + String.length v + String.length (Value.encode x) + 4) t 8

let equal a b = SMap.equal Value.equal a b

let pp fmt t =
  Format.fprintf fmt "{";
  let first = ref true in
  SMap.iter
    (fun v x ->
      if not !first then Format.fprintf fmt ", ";
      first := false;
      Format.fprintf fmt "?%s=%a" v Value.pp x)
    t;
  Format.fprintf fmt "}"

let lookup t v = find t v
