module Ast = Unistore_vql.Ast
module Value = Unistore_triple.Value

let compare_opt_values a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> 1 (* unbound last *)
  | Some _, None -> -1
  | Some x, Some y -> (
    match (Value.to_float x, Value.to_float y) with
    | Some fx, Some fy -> Float.compare fx fy
    | _ -> Value.compare x y)

let order_by items rows =
  let cmp a b =
    let rec go = function
      | [] -> 0
      | (v, dir) :: rest ->
        let c = compare_opt_values (Binding.find a v) (Binding.find b v) in
        let c = match dir with Ast.Asc -> c | Ast.Desc -> -c in
        if c <> 0 then c else go rest
    in
    go items
  in
  List.stable_sort cmp rows

let top_n n items rows = List.filteri (fun i _ -> i < n) (order_by items rows)

let dominates goals a b =
  let strictly_better = ref false in
  let ok =
    List.for_all
      (fun (v, goal) ->
        match (Binding.find a v, Binding.find b v) with
        | Some xa, Some xb -> (
          match (Value.to_float xa, Value.to_float xb) with
          | Some fa, Some fb ->
            let better, worse =
              match goal with Ast.Min -> (fa < fb, fa > fb) | Ast.Max -> (fa > fb, fa < fb)
            in
            if better then strictly_better := true;
            not worse
          | _ -> false)
        | _ -> false)
      goals
  in
  ok && !strictly_better

(* Block-nested-loop skyline: keep a window of non-dominated rows. *)
let skyline goals rows =
  let window = ref [] in
  List.iter
    (fun row ->
      let dominated = List.exists (fun w -> dominates goals w row) !window in
      if not dominated then
        window := row :: List.filter (fun w -> not (dominates goals row w)) !window)
    rows;
  List.rev !window
