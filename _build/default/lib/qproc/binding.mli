(** Variable bindings: the tuples flowing through query plans. *)

module Value = Unistore_triple.Value
module Triple = Unistore_triple.Triple
module Ast = Unistore_vql.Ast

type t

val empty : t
val find : t -> string -> Value.t option
val bindings : t -> (string * Value.t) list
val vars : t -> string list

(** [bind t v x] extends; [None] if [v] is already bound to a different
    value (consistency check). *)
val bind : t -> string -> Value.t -> t option

(** [match_triple pattern triple] tries to unify a triple with a pattern
    (constants must match; variables bind). *)
val match_triple : Ast.pattern -> Triple.t -> t option

(** [match_triple_into base pattern triple] unifies under an existing
    binding. *)
val match_triple_into : t -> Ast.pattern -> Triple.t -> t option

(** [compatible a b] merges two bindings if they agree on shared
    variables. *)
val compatible : t -> t -> t option

(** [join_key vars t] projects the join attributes to a hashable key;
    [None] if some var is unbound. *)
val join_key : string list -> t -> string option

(** [project vars t] keeps only [vars] (unbound projected vars are
    dropped silently). *)
val project : string list -> t -> t

(** Stable fingerprint of the full binding (for DISTINCT). *)
val fingerprint : t -> string

(** Approximate wire size in bytes (for plan-shipping accounting). *)
val bytes : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** SPARQL-style lookup function for {!Unistore_vql.Algebra.eval_pred}. *)
val lookup : t -> string -> Value.t option
