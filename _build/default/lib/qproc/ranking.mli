(** Ranking operators: ORDER BY, top-N, skyline.

    These are the paper's "advanced" operators ([SKYLINE OF], top-N);
    they run at the query origin over the joined bindings. The skyline
    uses block-nested-loop with dominance pruning. *)

module Ast = Unistore_vql.Ast

(** Stable sort by the given variables/directions. Unbound values sort
    last; numeric types unify. *)
val order_by : (string * Ast.dir) list -> Binding.t list -> Binding.t list

(** [top_n n items rows]: ORDER BY + LIMIT fused. *)
val top_n : int -> (string * Ast.dir) list -> Binding.t list -> Binding.t list

(** [dominates goals a b]: [a] is at least as good as [b] on every goal
    dimension and strictly better on at least one. Rows with missing or
    non-comparable dimensions never dominate nor get dominated. *)
val dominates : (string * Ast.goal) list -> Binding.t -> Binding.t -> bool

(** The Pareto-optimal subset under the goal list. *)
val skyline : (string * Ast.goal) list -> Binding.t list -> Binding.t list
