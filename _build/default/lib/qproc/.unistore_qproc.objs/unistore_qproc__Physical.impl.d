lib/qproc/physical.ml: Cost Format List String Unistore_vql
