lib/qproc/qstats.mli: Format Unistore_triple
