lib/qproc/optimizer.mli: Cost Physical Qstats Unistore_vql
