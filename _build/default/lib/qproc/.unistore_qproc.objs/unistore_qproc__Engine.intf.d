lib/qproc/engine.mli: Binding Exec Format Physical Qstats Unistore_triple Unistore_vql
