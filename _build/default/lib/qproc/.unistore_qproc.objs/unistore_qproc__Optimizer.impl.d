lib/qproc/optimizer.ml: Cost Float List Option Physical String Unistore_triple Unistore_util Unistore_vql
