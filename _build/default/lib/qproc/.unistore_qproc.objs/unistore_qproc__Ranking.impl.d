lib/qproc/ranking.ml: Binding Float List Unistore_triple Unistore_vql
