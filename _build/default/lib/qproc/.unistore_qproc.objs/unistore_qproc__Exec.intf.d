lib/qproc/exec.mli: Binding Cost Format Physical Qstats Unistore_triple Unistore_vql
