lib/qproc/binding.ml: Buffer Format List Map Option String Unistore_triple Unistore_vql
