lib/qproc/physical.mli: Cost Format Unistore_vql
