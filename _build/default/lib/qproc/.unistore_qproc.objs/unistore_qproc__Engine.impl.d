lib/qproc/engine.ml: Binding Cost Exec Format List Optimizer Physical String Unistore_triple Unistore_vql
