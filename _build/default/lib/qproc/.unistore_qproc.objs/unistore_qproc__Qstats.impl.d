lib/qproc/qstats.ml: Float Format Hashtbl List Option Unistore_triple
