lib/qproc/cost.ml: Float Format List Option Qstats Unistore_triple Unistore_util Unistore_vql
