lib/qproc/cost.mli: Format Qstats Unistore_triple Unistore_vql
