lib/qproc/ranking.mli: Binding Unistore_vql
