lib/qproc/binding.mli: Format Unistore_triple Unistore_vql
