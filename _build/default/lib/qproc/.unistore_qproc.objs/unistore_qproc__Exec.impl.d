lib/qproc/exec.ml: Binding Cost Format Hashtbl List Optimizer Option Physical Ranking Unistore_sim Unistore_triple Unistore_vql
