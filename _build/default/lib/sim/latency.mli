(** Network latency models.

    The paper demonstrates UniStore on LAN test machines and on up to 400
    PlanetLab nodes. We substitute latency models: [Lan] for the local
    setup and [Planetlab] for the wide-area one. The PlanetLab model places
    each node at a uniform point of a unit square and charges a
    distance-proportional base delay plus log-normal jitter — the standard
    shape of measured PlanetLab RTT distributions (tens to hundreds of ms,
    heavy upper tail). *)

type model =
  | Constant of float  (** fixed one-way delay in ms *)
  | Uniform of float * float  (** uniform in [lo, hi) ms *)
  | Lan  (** 0.5-2 ms, mild jitter *)
  | Planetlab  (** wide-area: ~20-300 ms one-way, heavy tail *)

type t

(** [create model ~n ~rng] fixes per-node placement (for [Planetlab]) for
    peer identifiers [0 .. n-1]. Sampling draws jitter from [rng]. *)
val create : model -> n:int -> rng:Unistore_util.Rng.t -> t

(** [sample t ~src ~dst] is a one-way message delay in ms. *)
val sample : t -> src:int -> dst:int -> float

(** [base t ~src ~dst] is the deterministic (jitter-free) component of the
    delay between two peers — what a topology-aware routing strategy can
    learn and exploit. *)
val base : t -> src:int -> dst:int -> float

(** Expected one-way delay of the model, for the cost model's latency
    predictions. *)
val expected : t -> float

val model : t -> model
val pp_model : Format.formatter -> model -> unit
