(** Mutable binary min-heap keyed by [(priority, sequence)].

    The sequence number makes the ordering total and FIFO among equal
    priorities, which keeps the event loop deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

(** [push t ~priority x] inserts [x]; ties broken by insertion order. *)
val push : 'a t -> priority:float -> 'a -> unit

(** [pop t] removes and returns the minimum element, or [None] if empty. *)
val pop : 'a t -> (float * 'a) option

(** [peek_priority t] is the minimum priority without removing it. *)
val peek_priority : 'a t -> float option

val clear : 'a t -> unit
