type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = { mutable arr : 'a entry array; mutable len : int; mutable next_seq : int }

let create () = { arr = [||]; len = 0; next_seq = 0 }

let is_empty t = t.len = 0
let size t = t.len

let entry_lt a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow t e =
  let cap = Array.length t.arr in
  if t.len = cap then begin
    let ncap = max 16 (cap * 2) in
    let narr = Array.make ncap e in
    Array.blit t.arr 0 narr 0 t.len;
    t.arr <- narr
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt t.arr.(i) t.arr.(parent) then begin
      let tmp = t.arr.(i) in
      t.arr.(i) <- t.arr.(parent);
      t.arr.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && entry_lt t.arr.(l) t.arr.(!smallest) then smallest := l;
  if r < t.len && entry_lt t.arr.(r) t.arr.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.arr.(i) in
    t.arr.(i) <- t.arr.(!smallest);
    t.arr.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~priority x =
  let e = { prio = priority; seq = t.next_seq; value = x } in
  t.next_seq <- t.next_seq + 1;
  grow t e;
  t.arr.(t.len) <- e;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.arr.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.arr.(0) <- t.arr.(t.len);
      sift_down t 0
    end;
    Some (top.prio, top.value)
  end

let peek_priority t = if t.len = 0 then None else Some t.arr.(0).prio

let clear t =
  t.arr <- [||];
  t.len <- 0
