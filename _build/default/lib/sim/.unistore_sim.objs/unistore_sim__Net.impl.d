lib/sim/net.ml: Format Hashtbl Latency List Sim Trace Unistore_util
