lib/sim/net.mli: Format Latency Sim Trace Unistore_util
