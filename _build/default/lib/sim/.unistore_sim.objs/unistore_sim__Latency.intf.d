lib/sim/latency.mli: Format Unistore_util
