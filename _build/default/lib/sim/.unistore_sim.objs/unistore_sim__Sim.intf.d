lib/sim/sim.mli:
