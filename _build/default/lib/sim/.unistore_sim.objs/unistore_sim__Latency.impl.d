lib/sim/latency.ml: Array Format Unistore_util
