lib/sim/trace.ml: Float Format Hashtbl List Option
