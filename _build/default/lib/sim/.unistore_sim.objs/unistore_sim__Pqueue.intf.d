lib/sim/pqueue.mli:
