lib/sim/sim.ml: Float Pqueue
