type t = { mutable now : float; queue : (unit -> unit) Pqueue.t; mutable processed : int }

let create () = { now = 0.0; queue = Pqueue.create (); processed = 0 }

let now t = t.now

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  Pqueue.push t.queue ~priority:(t.now +. delay) f

let schedule_at t ~time f =
  let time = Float.max time t.now in
  Pqueue.push t.queue ~priority:time f

let pending t = Pqueue.size t.queue
let processed t = t.processed

let step t =
  match Pqueue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.now <- Float.max t.now time;
    t.processed <- t.processed + 1;
    f ();
    true

let default_max = 20_000_000

let run_until ?(max_events = default_max) t pred =
  let rec go budget =
    if pred () then true
    else if budget <= 0 then failwith "Sim.run_until: event budget exhausted"
    else if step t then go (budget - 1)
    else false
  in
  go max_events

let run_all ?(max_events = default_max) t =
  let rec go budget =
    if budget <= 0 then failwith "Sim.run_all: event budget exhausted"
    else if step t then go (budget - 1)
  in
  go max_events

let run_for ?(max_events = default_max) t ~duration =
  if duration < 0.0 then invalid_arg "Sim.run_for: negative duration";
  let deadline = t.now +. duration in
  let rec go budget =
    if budget <= 0 then failwith "Sim.run_for: event budget exhausted"
    else
      match Pqueue.peek_priority t.queue with
      | Some p when p <= deadline ->
        ignore (step t);
        go (budget - 1)
      | _ -> ()
  in
  go max_events;
  t.now <- deadline
