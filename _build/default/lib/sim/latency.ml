module Rng = Unistore_util.Rng

type model = Constant of float | Uniform of float * float | Lan | Planetlab

type t = { model : model; rng : Rng.t; coords : (float * float) array }

let create model ~n ~rng =
  let rng = Rng.split rng in
  let coords =
    match model with
    | Planetlab -> Array.init (max n 1) (fun _ -> (Rng.float rng, Rng.float rng))
    | Constant _ | Uniform _ | Lan -> [||]
  in
  { model; rng; coords }

let planetlab_base t ~src ~dst =
  let coord i = t.coords.(i mod Array.length t.coords) in
  let x1, y1 = coord src and x2, y2 = coord dst in
  let d = sqrt (((x1 -. x2) ** 2.0) +. ((y1 -. y2) ** 2.0)) in
  (* unit-square diagonal ~ transcontinental: 20ms floor + up to ~200ms. *)
  20.0 +. (d *. 140.0)

let sample t ~src ~dst =
  match t.model with
  | Constant d -> d
  | Uniform (lo, hi) -> Rng.float_in t.rng lo hi
  | Lan -> 0.5 +. Rng.float_in t.rng 0.0 1.5
  | Planetlab ->
    let base = planetlab_base t ~src ~dst in
    (* Log-normal jitter, median 1x, occasional 3-5x spikes. *)
    let jitter = Rng.lognormal t.rng ~mu:0.0 ~sigma:0.35 in
    base *. jitter

let base t ~src ~dst =
  match t.model with
  | Constant d -> d
  | Uniform (lo, hi) -> (lo +. hi) /. 2.0
  | Lan -> 1.25
  | Planetlab -> planetlab_base t ~src ~dst

let expected t =
  match t.model with
  | Constant d -> d
  | Uniform (lo, hi) -> (lo +. hi) /. 2.0
  | Lan -> 1.25
  | Planetlab ->
    (* Mean pair distance on the unit square is ~0.5214; lognormal mean is
       exp(sigma^2/2). *)
    (20.0 +. (0.5214 *. 140.0)) *. exp (0.35 *. 0.35 /. 2.0)

let model t = t.model

let pp_model fmt = function
  | Constant d -> Format.fprintf fmt "constant(%.1fms)" d
  | Uniform (lo, hi) -> Format.fprintf fmt "uniform(%.1f-%.1fms)" lo hi
  | Lan -> Format.fprintf fmt "lan"
  | Planetlab -> Format.fprintf fmt "planetlab"
