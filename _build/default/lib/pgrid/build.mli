(** Overlay construction.

    Two construction paths, matching the paper:

    - {!oracle}: deterministic construction from a data sample, splitting
      the key space at data quantiles so every leaf carries a comparable
      share of the sample. This is the converged state the P-Grid
      load-balancing protocol (Aberer et al., VLDB'05) reaches; benches use
      it for large networks. Pass [~balanced:true] to force uniform
      key-space splits instead (the "no load balancing" baseline of
      experiment E5).

    - {!bootstrap}: the decentralized construction: peers start with empty
      paths and their own data, repeatedly meet pairwise at random, and
      split / specialize / exchange references — "constructed by pair-wise
      interactions between nodes without central coordination nor global
      knowledge" (paper §2). Runs inside the simulator; every meeting costs
      messages. *)

(** [oracle sim ~latency ~rng ~config ~n ~sample_keys ()] creates an
    [n]-peer overlay whose trie is shaped by [sample_keys] (full encoded
    keys, e.g. from the dataset about to be inserted). With an empty sample
    the split is uniform. *)
val oracle :
  Sim.t ->
  latency:Latency.t ->
  rng:Unistore_util.Rng.t ->
  ?drop:float ->
  config:Config.t ->
  n:int ->
  sample_keys:string list ->
  ?balanced:bool ->
  unit ->
  Overlay.t

type bootstrap_report = {
  rounds_run : int;
  exchanges : int;  (** pairwise meetings performed *)
  final_depth : int;
  coverage_ok : bool;  (** every key region owned by >= 1 peer *)
}

(** [bootstrap sim ~latency ~rng ~config ~n ~initial_data ()] runs the
    decentralized construction: peer [i] starts holding
    [List.assoc i initial_data] (if present). [rounds] meetings per peer
    are simulated (default 30); [split_threshold] is the combined local
    data volume above which two same-path peers split rather than
    replicate (default 16).

    With [groups = g] and [merge_at = r], peers meet only within [g]
    disjoint id-groups for the first [r] rounds and across the whole
    network afterwards — the paper's "merging of two, formerly
    independent, overlays" (§2): deterministic split boundaries make the
    groups' tries consistent, so merging needs no special protocol. *)
val bootstrap :
  Sim.t ->
  latency:Latency.t ->
  rng:Unistore_util.Rng.t ->
  ?drop:float ->
  config:Config.t ->
  n:int ->
  initial_data:(int * Store.item list) list ->
  ?rounds:int ->
  ?split_threshold:int ->
  ?groups:int ->
  ?merge_at:int ->
  unit ->
  Overlay.t * bootstrap_report

(** [join ov ~id ~bootstrap] adds peer [id] to a {e running} overlay by
    cloning [bootstrap]: same trie position and boundaries, copied routing
    references, membership in the replica group, and a full copy of the
    data (all transfers counted as messages). Returns [false] if the
    bootstrap peer was unreachable. This is how the demo lets "interested
    people include their own machines into a running P-Grid overlay"
    (paper §4). *)
val join : Overlay.t -> id:int -> bootstrap:int -> bool

(** [repair_refs overlay] models a converged round of P-Grid's periodic
    routing-table maintenance after failures: every alive peer's dead
    references are replaced by alive peers of the same complementary
    subtree. (The maintenance traffic itself is not charged — use this to
    compare queries on a stabilized vs. an unrepaired overlay.) *)
val repair_refs : Overlay.t -> unit

(** [check_invariants overlay] verifies structural soundness: key-space
    coverage (every probe key has a responsible peer), reference validity
    (each ref really lies in the complementary subtree), replica symmetry.
    Returns the list of violations (empty = sound). *)
val check_invariants : Overlay.t -> string list
