include Unistore_sim.Net
