lib/pgrid/sim.ml: Unistore_sim
