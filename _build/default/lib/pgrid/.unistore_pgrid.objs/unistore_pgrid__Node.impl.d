lib/pgrid/node.ml: Array Format List Store String Unistore_util
