lib/pgrid/overlay.ml: Array Config Hashtbl Latency List Message Net Node Option Printf Sim Store String Unistore_util
