lib/pgrid/store.ml: Format List Map Option Seq String
