lib/pgrid/store.mli: Format
