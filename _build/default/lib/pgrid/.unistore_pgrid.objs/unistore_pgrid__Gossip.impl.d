lib/pgrid/gossip.ml: List Message Net Node Option Overlay Store String Unistore_util
