lib/pgrid/build.mli: Config Latency Overlay Sim Store Unistore_util
