lib/pgrid/overlay.mli: Config Latency Message Net Node Sim Store Unistore_util
