lib/pgrid/gossip.mli: Overlay
