lib/pgrid/config.mli:
