lib/pgrid/build.ml: Array Bytes Char Config Float Format List Node Overlay Sim Store String Unistore_util
