lib/pgrid/latency.ml: Unistore_sim
