lib/pgrid/config.ml:
