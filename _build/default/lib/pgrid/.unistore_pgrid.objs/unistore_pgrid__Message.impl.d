lib/pgrid/message.ml: Format List Store String
