lib/pgrid/net.ml: Unistore_sim
