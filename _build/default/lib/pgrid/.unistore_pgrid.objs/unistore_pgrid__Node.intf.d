lib/pgrid/node.mli: Format Store Unistore_util
