lib/pgrid/message.mli: Format Store
