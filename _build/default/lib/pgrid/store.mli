(** Per-peer local data store.

    Items are keyed by their full order-preserving encoding (a byte
    string), so local range/prefix filtering is exact even though routing
    uses only the first {!Unistore_util.Ophash.routing_bits} bits. An
    [item_id] distinguishes distinct items that share a key (e.g. two
    triples with the same attribute/value); versions give last-writer-wins
    semantics for the update/replication protocol. *)

type item = {
  key : string;  (** full order-preserving encoding; routing uses its prefix *)
  item_id : string;  (** identity for updates; unique per logical datum *)
  payload : string;  (** opaque application payload (a serialized triple) *)
  version : int;  (** LWW version; inserts start at 0 *)
}

val pp_item : Format.formatter -> item -> unit

(** Approximate wire size of an item in bytes (for bandwidth accounting). *)
val item_bytes : item -> int

type t

val create : unit -> t

(** [put t item] inserts or updates. An existing entry with the same
    [(key, item_id)] is replaced iff the new version is greater or equal.
    Returns [true] if the store changed. *)
val put : t -> item -> bool

(** [remove t ~key ~item_id] removes an entry if present. *)
val remove : t -> key:string -> item_id:string -> unit

(** All items with exactly this key. *)
val find : t -> string -> item list

(** All items with [lo <= key <= hi] (byte-string order). *)
val range : t -> lo:string -> hi:string -> item list

(** All items whose key starts with [prefix]. *)
val with_prefix : t -> string -> item list

(** Number of stored items. *)
val size : t -> int

val iter : t -> (item -> unit) -> unit
val to_list : t -> item list

(** [filter_partition t pred] keeps items satisfying [pred] and returns the
    removed ones (used when a peer splits its path and hands data over). *)
val filter_partition : t -> (item -> bool) -> item list

(** [digest t] lists [(key, item_id, version)] for anti-entropy. *)
val digest : t -> (string * string * int) list

val clear : t -> unit
