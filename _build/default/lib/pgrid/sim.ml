include Unistore_sim.Sim
