lib/workload/demo_data.mli: Unistore_triple
