lib/workload/publications.ml: List Namegen Printf String Unistore_triple Unistore_util
