lib/workload/demo_data.ml: String Unistore_triple
