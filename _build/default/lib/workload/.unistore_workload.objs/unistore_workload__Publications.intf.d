lib/workload/publications.mli: Unistore_triple Unistore_util
