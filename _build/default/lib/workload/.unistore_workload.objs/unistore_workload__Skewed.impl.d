lib/workload/skewed.ml: List Printf Unistore_triple Unistore_util
