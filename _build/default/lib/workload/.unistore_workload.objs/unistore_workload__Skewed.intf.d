lib/workload/skewed.mli: Unistore_triple Unistore_util
