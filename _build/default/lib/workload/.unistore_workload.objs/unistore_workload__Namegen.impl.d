lib/workload/namegen.ml: Char List String Unistore_util
