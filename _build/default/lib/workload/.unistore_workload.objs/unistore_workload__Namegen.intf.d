lib/workload/namegen.mli: Unistore_util
