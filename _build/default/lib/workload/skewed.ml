module Rng = Unistore_util.Rng
module Zipf = Unistore_util.Zipf
module Value = Unistore_triple.Value
module Triple = Unistore_triple.Triple
module Keys = Unistore_triple.Keys

let generate rng ~n ~skew ?(distinct = 500) () =
  let rng = Rng.split rng in
  let zipf = Zipf.create ~n:distinct ~s:skew in
  List.init n (fun i ->
      let rank = Zipf.sample zipf rng in
      Triple.make ~oid:(Printf.sprintf "s%06d" i) ~attr:"v" (Value.S (Printf.sprintf "v%05d" rank)))

let sample_keys triples =
  List.concat_map
    (fun (tr : Triple.t) ->
      [
        Keys.oid_key tr.Triple.oid;
        Keys.attr_value_key tr.Triple.attr tr.Triple.value;
        Keys.value_key tr.Triple.value;
      ])
    triples
