module Value = Unistore_triple.Value

let r name cuisine price rating dist =
  ( "rest:" ^ String.lowercase_ascii (String.map (fun c -> if c = ' ' then '_' else c) name),
    [
      ("rest_name", Value.S name);
      ("cuisine", Value.S cuisine);
      ("price", Value.I price);
      ("rating", Value.I rating);
      ("distance", Value.I dist);
    ] )

let restaurants =
  [
    r "Golden Wok" "chinese" 18 7 400;
    r "La Piazza" "italian" 32 9 850;
    r "Curry Corner" "indian" 14 6 1200;
    r "Bistro Lumiere" "french" 55 9 300;
    r "Sushi Kai" "japanese" 40 8 950;
    r "Doner Palast" "turkish" 9 5 150;
    r "Trattoria Nonna" "italian" 27 8 600;
    r "Green Leaf" "vegetarian" 16 7 700;
    r "Brauhaus Eck" "german" 22 6 250;
    r "Le Petit Jardin" "french" 48 10 1100;
    r "Noodle Bar 21" "chinese" 12 6 500;
    r "Casa Miguel" "spanish" 25 8 900;
  ]

let contacts_fb =
  [
    ( "fb:u1",
      [
        ("fb:fullname", Value.S "Marcel Karnstedt");
        ("fb:years", Value.I 29);
        ("fb:mail", Value.S "marcel@example.org");
      ] );
    ( "fb:u2",
      [
        ("fb:fullname", Value.S "Manfred Hauswirth");
        ("fb:years", Value.I 38);
        ("fb:mail", Value.S "manfred@example.org");
      ] );
    ( "fb:u3",
      [
        ("fb:fullname", Value.S "Roman Schmidt");
        ("fb:years", Value.I 31);
        ("fb:mail", Value.S "roman@example.org");
      ] );
  ]

let contact_mappings = [ ("fb:fullname", "name"); ("fb:years", "age"); ("fb:mail", "email") ]
