(** Zipf-skewed synthetic data for the load-balancing experiment (E5):
    one attribute whose values follow a Zipf rank distribution, so that
    without data-aware partitioning a few peers absorb most triples. *)

module Triple = Unistore_triple.Triple

(** [generate rng ~n ~skew ()] makes [n] single-attribute tuples whose
    [value] attribute is drawn from Zipf(skew) over [distinct] ranks
    (default 500). *)
val generate :
  Unistore_util.Rng.t -> n:int -> skew:float -> ?distinct:int -> unit -> Triple.t list

val sample_keys : Triple.t list -> string list
