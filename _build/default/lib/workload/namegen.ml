module Rng = Unistore_util.Rng

let onsets = [| "b"; "d"; "f"; "g"; "h"; "k"; "l"; "m"; "n"; "p"; "r"; "s"; "t"; "v"; "w"; "st"; "br"; "kl" |]
let vowels = [| "a"; "e"; "i"; "o"; "u"; "ai"; "ei"; "ou" |]
let codas = [| ""; "n"; "r"; "s"; "t"; "l"; "ck"; "rn" |]

let syllable rng = Rng.pick rng onsets ^ Rng.pick rng vowels ^ Rng.pick rng codas

let word rng =
  let n = 2 + Rng.int rng 2 in
  String.concat "" (List.init n (fun _ -> syllable rng))

let capitalize s = String.capitalize_ascii s

let person rng = capitalize (word rng) ^ " " ^ capitalize (word rng)

let title rng ~words =
  String.concat " " (List.init (max 1 words) (fun i -> if i = 0 then capitalize (word rng) else word rng))

let rec typo rng s =
  if String.length s = 0 then s
  else begin
    let t = typo_once rng s in
    (* Degenerate edits (substituting the same character, swapping equal
       neighbours) can reproduce the input; retry so callers always get a
       string at edit distance >= 1. *)
    if String.equal t s then typo rng s else t
  end

and typo_once rng s =
  begin
    let i = Rng.int rng (String.length s) in
    let c = Char.chr (Char.code 'a' + Rng.int rng 26) in
    match Rng.int rng 4 with
    | 0 ->
      (* substitute *)
      String.mapi (fun j ch -> if j = i then c else ch) s
    | 1 ->
      (* delete *)
      String.sub s 0 i ^ String.sub s (i + 1) (String.length s - i - 1)
    | 2 ->
      (* insert *)
      String.sub s 0 i ^ String.make 1 c ^ String.sub s i (String.length s - i)
    | _ ->
      (* swap with the next character *)
      if i + 1 >= String.length s then String.mapi (fun j ch -> if j = i then c else ch) s
      else
        String.mapi
          (fun j ch -> if j = i then s.[i + 1] else if j = i + 1 then s.[i] else ch)
          s
  end
