(** Synthetic contacts-and-publications data following the paper's Fig. 3
    schema: Person (name, age, num_of_pubs, email, office, phone,
    has_published, has_friend, interested_in), Publication (title, year,
    published_in, classified_in), Conference (confname, series, year,
    belongs_to). *)

module Value = Unistore_triple.Value
module Triple = Unistore_triple.Triple

type tuple = string * (string * Value.t) list

type dataset = {
  tuples : tuple list;
  triples : Triple.t list;
  authors : int;
  publications : int;
  conferences : int;
  series_pool : string list;  (** conference series names (e.g. "ICDE") *)
}

type params = {
  n_authors : int;
  pubs_per_author : int;  (** mean; actual counts vary *)
  n_conferences : int;
  typo_rate : float;  (** probability a confname/series carries one typo *)
  namespace : string;  (** attribute prefix, e.g. "" or "dblp" *)
}

val default_params : params

(** The canonical conference series names the generator draws from. *)
val base_series : string list

val generate : Unistore_util.Rng.t -> params -> dataset

(** The encoded index keys of every triple in the dataset (OID, A#v, v
    families) — the sample fed to the load-aware overlay constructor. *)
val sample_keys : dataset -> string list

(** A local "oracle" evaluation of attribute equality over the dataset,
    for checking distributed answers. *)
val oracle_eq : dataset -> attr:string -> Value.t -> Triple.t list
