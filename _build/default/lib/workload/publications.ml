module Rng = Unistore_util.Rng
module Value = Unistore_triple.Value
module Triple = Unistore_triple.Triple
module Keys = Unistore_triple.Keys

type tuple = string * (string * Value.t) list

type dataset = {
  tuples : tuple list;
  triples : Triple.t list;
  authors : int;
  publications : int;
  conferences : int;
  series_pool : string list;
}

type params = {
  n_authors : int;
  pubs_per_author : int;
  n_conferences : int;
  typo_rate : float;
  namespace : string;
}

let default_params =
  { n_authors = 20; pubs_per_author = 3; n_conferences = 6; typo_rate = 0.0; namespace = "" }

let base_series = [ "ICDE"; "VLDB"; "SIGMOD"; "EDBT"; "CIDR"; "PODS"; "P2P"; "NETDB" ]

let attr ns a = if ns = "" then a else ns ^ ":" ^ a

let generate rng (p : params) =
  let rng = Rng.split rng in
  let ns = p.namespace in
  let series_pool =
    List.filteri (fun i _ -> i < max 1 (min p.n_conferences (List.length base_series))) base_series
  in
  let maybe_typo s = if Rng.bool rng ~p:p.typo_rate then Namegen.typo rng s else s in
  (* Conferences *)
  let conferences =
    List.init p.n_conferences (fun i ->
        let series = List.nth series_pool (i mod List.length series_pool) in
        let year = 1998 + Rng.int rng 10 in
        let oid = Printf.sprintf "c%03d" i in
        let confname = maybe_typo (Printf.sprintf "%s %d" series year) in
        ( oid,
          [
            (attr ns "confname", Value.S confname);
            (attr ns "series", Value.S (maybe_typo series));
            (attr ns "year", Value.I year);
          ] ))
  in
  let confname_of (_, fields) =
    match List.assoc (attr ns "confname") fields with Value.S s -> s | _ -> assert false
  in
  (* Publications *)
  let n_pubs = max 1 (p.n_authors * p.pubs_per_author) in
  let publications =
    List.init n_pubs (fun i ->
        let conf = List.nth conferences (Rng.int rng (List.length conferences)) in
        let year =
          match List.assoc (attr ns "year") (snd conf) with Value.I y -> y | _ -> 2000
        in
        let oid = Printf.sprintf "p%04d" i in
        ( oid,
          [
            (attr ns "title", Value.S (Namegen.title rng ~words:(3 + Rng.int rng 3)));
            (attr ns "year", Value.I year);
            (attr ns "published_in", Value.S (confname_of conf));
            (attr ns "classified_in", Value.S (Rng.pick rng [| "databases"; "networks"; "ir"; "systems" |]));
          ] ))
  in
  let title_of (_, fields) =
    match List.assoc (attr ns "title") fields with Value.S s -> s | _ -> assert false
  in
  (* Authors *)
  let authors =
    List.init p.n_authors (fun i ->
        let oid = Printf.sprintf "a%03d" i in
        let name = Namegen.person rng in
        let my_pubs =
          Rng.sample rng
            (1 + Rng.int rng (max 1 (2 * p.pubs_per_author)))
            publications
        in
        let base =
          [
            (attr ns "name", Value.S name);
            (attr ns "age", Value.I (24 + Rng.int rng 45));
            (attr ns "num_of_pubs", Value.I (List.length my_pubs));
            (attr ns "email", Value.S (String.lowercase_ascii (String.map (fun c -> if c = ' ' then '.' else c) name) ^ "@example.org"));
            (attr ns "office", Value.S (Printf.sprintf "Z%d%02d" (1 + Rng.int rng 4) (Rng.int rng 60)));
            (attr ns "phone", Value.I (100000 + Rng.int rng 899999));
            (attr ns "interested_in", Value.S (Rng.pick rng [| "databases"; "networks"; "ir"; "systems" |]));
          ]
        in
        let pubs = List.map (fun pb -> (attr ns "has_published", Value.S (title_of pb))) my_pubs in
        let friends =
          if i = 0 then []
          else
            [ (attr ns "has_friend", Value.S (Printf.sprintf "a%03d" (Rng.int rng i))) ]
        in
        (oid, base @ pubs @ friends))
  in
  let tuples = authors @ publications @ conferences in
  let triples =
    List.concat_map (fun (oid, fields) -> Triple.tuple_to_triples ~oid fields) tuples
  in
  {
    tuples;
    triples;
    authors = List.length authors;
    publications = List.length publications;
    conferences = List.length conferences;
    series_pool;
  }

let sample_keys d =
  List.concat_map
    (fun (tr : Triple.t) ->
      let base =
        [
          Keys.oid_key tr.Triple.oid;
          Keys.attr_value_key tr.Triple.attr tr.Triple.value;
          Keys.value_key tr.Triple.value;
        ]
      in
      (* The q-gram index dominates storage volume for string-heavy data;
         the trie must be shaped for it too. *)
      match tr.Triple.value with
      | Value.S s ->
        base
        @ List.map Keys.qgram_key (Unistore_util.Strdist.distinct_qgrams ~q:Keys.q s)
      | Value.I _ | Value.F _ | Value.B _ -> base)
    d.triples

let oracle_eq d ~attr:a v =
  List.filter
    (fun (tr : Triple.t) -> String.equal tr.Triple.attr a && Value.equal tr.Triple.value v)
    d.triples
