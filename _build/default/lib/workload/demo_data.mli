(** Curated demo data for the conference-sharing scenario (§4 of the
    paper: "people could also insert data about restaurants, bars, sights
    or anything other that is conceivable — and apply queries intended
    for such distributed public data collections, e.g., skyline
    operators"). *)

module Value = Unistore_triple.Value

(** Restaurant tuples: name, cuisine, price (per meal), rating (1-10),
    distance (meters from the venue). Good skyline fodder: price MIN,
    rating MAX. *)
val restaurants : (string * (string * Value.t) list) list

(** A handful of attendee contact tuples in a second, differently-named
    schema (namespace ["fb"]), for the heterogeneity demo. *)
val contacts_fb : (string * (string * Value.t) list) list

(** Attribute correspondences between the ["fb"] contact schema and the
    plain publications schema. *)
val contact_mappings : (string * string) list
