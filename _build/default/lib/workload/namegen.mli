(** Deterministic pseudo-natural name generation (syllable-based), used
    to synthesize the contacts-and-publications data the demonstration
    would have collected from conference participants. *)

val person : Unistore_util.Rng.t -> string
val word : Unistore_util.Rng.t -> string

(** Multi-word publication-like title with [words] words. *)
val title : Unistore_util.Rng.t -> words:int -> string

(** [typo rng s] applies one random edit (insert/delete/substitute/swap)
    — the "typos and similar" the paper's edit-distance filter tolerates. *)
val typo : Unistore_util.Rng.t -> string -> string
