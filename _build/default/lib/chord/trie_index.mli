(** Distributed trie index for range queries over Chord.

    Chord's placement hash destroys key order, so range queries need an
    additional structure: "in Chord an additional trie-structure is
    constructed on top of its ring-based overlay to support range queries"
    (paper §2). This module hosts that trie {e inside} the DHT itself:

    - a trie node for hex-digit prefix [p] is the set of items stored
      under key ["T:" ^ p], one item per present child digit;
    - leaf buckets at depth {!depth} store the actual data items under
      ["B:" ^ p].

    Every insert therefore costs [depth + 1] DHT puts (each O(log n)
    hops), and a range query is a client-driven parallel DFS of the trie,
    one DHT get per visited trie node — this is exactly the overhead the
    paper's P-Grid-native ranges avoid. *)

module Store = Unistore_pgrid.Store

(** Trie depth in hex digits (4 bits per level). *)
val depth : int

(** First {!depth} hex digits of an encoded key (bucket address). *)
val hex_of_key : string -> string

(** Unwrap a bucket payload into [(original_key, original_payload)]. *)
val decode_payload : string -> (string * string) option

(** [insert chord ~origin ~key ~item_id ~payload ()] stores an item and
    threads it through the trie. The continuation receives [false] if any
    constituent put failed. *)
val insert :
  Chord.t ->
  origin:int ->
  key:string ->
  item_id:string ->
  payload:string ->
  ?version:int ->
  k:(bool -> unit) ->
  unit ->
  unit

val insert_sync :
  Chord.t -> origin:int -> key:string -> item_id:string -> payload:string -> ?version:int ->
  unit -> bool

(** [range chord ~origin ~lo ~hi ~k] retrieves all items with
    [lo <= key <= hi] by DFS over the trie. The result's [peers_hit] counts
    DHT gets issued. *)
val range : Chord.t -> origin:int -> lo:string -> hi:string -> k:(Chord.result -> unit) -> unit

val range_sync : Chord.t -> origin:int -> lo:string -> hi:string -> Chord.result
