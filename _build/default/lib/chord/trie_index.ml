module Store = Unistore_pgrid.Store
module Sim = Unistore_sim.Sim

let depth = 6

let hex_digits = "0123456789abcdef"

let hex_of_key key =
  (* First [depth] hex digits (4 bits per digit) of the encoded key,
     zero-padded: preserves byte-string order on the prefix. *)
  let buf = Buffer.create depth in
  let n = String.length key in
  for d = 0 to depth - 1 do
    let byte = d / 2 in
    let v = if byte < n then Char.code key.[byte] else 0 in
    let nibble = if d mod 2 = 0 then v lsr 4 else v land 0xF in
    Buffer.add_char buf hex_digits.[nibble]
  done;
  Buffer.contents buf

(* Bucket payloads embed the original key so that range filtering stays
   exact after the placement hash destroyed key order. *)
let encode_payload ~key ~payload = Printf.sprintf "%d:%s%s" (String.length key) key payload

let decode_payload s =
  match String.index_opt s ':' with
  | None -> None
  | Some i ->
    let len = int_of_string_opt (String.sub s 0 i) in
    (match len with
    | Some len when String.length s >= i + 1 + len ->
      let key = String.sub s (i + 1) len in
      let payload = String.sub s (i + 1 + len) (String.length s - i - 1 - len) in
      Some (key, payload)
    | _ -> None)

let insert chord ~origin ~key ~item_id ~payload ?(version = 0) ~k () =
  let hex = hex_of_key key in
  let outstanding = ref (depth + 1) in
  let ok = ref true in
  let step (r : Chord.result) =
    if not r.Chord.complete then ok := false;
    decr outstanding;
    if !outstanding = 0 then k !ok
  in
  (* Trie markers: level-l node learns it has child hex.[l]. *)
  for l = 0 to depth - 1 do
    Chord.put chord ~origin
      ~key:("T:" ^ String.sub hex 0 l)
      ~item_id:(String.make 1 hex.[l])
      ~payload:"" ~k:step ()
  done;
  (* Leaf bucket holds the datum. *)
  Chord.put chord ~origin ~key:("B:" ^ hex) ~item_id:(item_id ^ "#" ^ key)
    ~payload:(encode_payload ~key ~payload) ~version ~k:step ()

let insert_sync chord ~origin ~key ~item_id ~payload ?version () =
  let cell = ref None in
  insert chord ~origin ~key ~item_id ~payload ?version ~k:(fun ok -> cell := Some ok) ();
  ignore (Sim.run_until (Chord.sim chord) (fun () -> !cell <> None));
  Option.value ~default:false !cell

let range chord ~origin ~lo ~hi ~k =
  (* A bucket prefix strictly below hex(lo) only holds keys < lo, and one
     strictly above hex(hi) only keys > hi (byte-string order is decided
     within the prefix); the boundary buckets filter exactly. *)
  let hex_lo = hex_of_key lo in
  let hex_hi = hex_of_key hi in
  let started = Sim.now (Chord.sim chord) in
  let outstanding = ref 0 in
  let items = ref [] in
  let hops = ref 0 in
  let gets = ref 0 in
  let complete = ref true in
  let finished = ref false in
  let check_done () =
    if !outstanding = 0 && not !finished then begin
      finished := true;
      k
        {
          Chord.items = !items;
          hops = !hops;
          peers_hit = !gets;
          complete = !complete;
          latency = Sim.now (Chord.sim chord) -. started;
        }
    end
  in
  let intersects prefix =
    let l = String.length prefix in
    let pmin = prefix ^ String.make (depth - l) '0' in
    let pmax = prefix ^ String.make (depth - l) 'f' in
    String.compare pmax hex_lo >= 0 && String.compare pmin hex_hi <= 0
  in
  let rec visit prefix =
    incr outstanding;
    incr gets;
    if String.length prefix = depth then
      Chord.get chord ~origin ~key:("B:" ^ prefix) ~k:(fun r ->
          if not r.Chord.complete then complete := false;
          hops := max !hops r.Chord.hops;
          List.iter
            (fun (i : Store.item) ->
              match decode_payload i.payload with
              | Some (key, payload) when String.compare key lo >= 0 && String.compare key hi <= 0 ->
                let item_id =
                  match String.index_opt i.item_id '#' with
                  | Some j -> String.sub i.item_id 0 j
                  | None -> i.item_id
                in
                items := { Store.key; item_id; payload; version = i.version } :: !items
              | _ -> ())
            r.Chord.items;
          decr outstanding;
          check_done ())
    else
      Chord.get chord ~origin ~key:("T:" ^ prefix) ~k:(fun r ->
          if not r.Chord.complete then complete := false;
          hops := max !hops r.Chord.hops;
          List.iter
            (fun (i : Store.item) ->
              let child = prefix ^ i.Store.item_id in
              if intersects child then visit child)
            r.Chord.items;
          decr outstanding;
          check_done ())
  in
  visit "";
  (* [visit] is fully asynchronous; nothing to do here. *)
  ()

let range_sync chord ~origin ~lo ~hi = Chord.await chord (fun k -> range chord ~origin ~lo ~hi ~k)
