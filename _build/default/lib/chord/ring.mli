(** Chord identifier-ring arithmetic.

    Identifiers live in [0, 2^bits). Unlike P-Grid's order-preserving
    hash, Chord's placement hash is uniform and destroys key order — the
    reason Chord needs an extra distributed index for range queries
    (see {!Trie_index}). *)

(** Identifier width in bits. *)
val bits : int

(** Ring size [2^bits]. *)
val size : int

(** Uniform (non-order-preserving) hash of an arbitrary string into the
    ring (FNV-1a folded). *)
val hash_key : string -> int

(** Ring id of a peer. *)
val hash_peer : int -> int

(** [in_oc a b x]: is [x] in the half-open arc ((a, b]] going clockwise? *)
val in_oc : int -> int -> int -> bool

(** [in_oo a b x]: is [x] in the open arc ((a, b))? *)
val in_oo : int -> int -> int -> bool

(** [add id k] is [(id + k) mod size]. *)
val add : int -> int -> int

(** [finger_start id i] is [id + 2^i mod size]. *)
val finger_start : int -> int -> int
