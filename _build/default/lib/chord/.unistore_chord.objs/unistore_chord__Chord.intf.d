lib/chord/chord.mli: Unistore_pgrid Unistore_sim Unistore_util
