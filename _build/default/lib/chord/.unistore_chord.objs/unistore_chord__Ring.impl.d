lib/chord/ring.ml: Char Int64 Printf String
