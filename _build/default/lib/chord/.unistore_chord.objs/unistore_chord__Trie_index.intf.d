lib/chord/trie_index.mli: Chord Unistore_pgrid
