lib/chord/ring.mli:
