lib/chord/trie_index.ml: Buffer Char Chord List Option Printf String Unistore_pgrid Unistore_sim
