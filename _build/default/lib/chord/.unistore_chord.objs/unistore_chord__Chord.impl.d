lib/chord/chord.ml: Array Hashtbl List Option Printf Ring String Unistore_pgrid Unistore_sim Unistore_util
