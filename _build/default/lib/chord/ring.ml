let bits = 30
let size = 1 lsl bits

let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

(* FNV's low bits avalanche poorly; finish with murmur3's fmix64. *)
let fmix64 h =
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xff51afd7ed558ccdL in
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
  Int64.logxor h (Int64.shift_right_logical h 33)

let hash_key s = Int64.to_int (Int64.logand (fmix64 (fnv1a s)) (Int64.of_int (size - 1)))
let hash_peer id = hash_key (Printf.sprintf "peer:%d" id)

let in_oc a b x = if a < b then a < x && x <= b else a = b || x > a || x <= b

let in_oo a b x = if a < b then a < x && x < b else (a = b && x <> a) || x > a || x < b

let add id k = (id + k) land (size - 1)
let finger_start id i = add id (1 lsl i)
