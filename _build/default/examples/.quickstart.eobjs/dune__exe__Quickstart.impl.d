examples/quickstart.ml: Format List Unistore
