examples/publications_skyline.mli:
