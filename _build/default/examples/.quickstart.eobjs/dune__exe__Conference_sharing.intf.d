examples/conference_sharing.mli:
