examples/observability.mli:
