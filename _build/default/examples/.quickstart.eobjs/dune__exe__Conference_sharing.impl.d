examples/conference_sharing.ml: Format List Unistore Unistore_triple Unistore_workload
