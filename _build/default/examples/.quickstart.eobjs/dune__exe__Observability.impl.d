examples/observability.ml: Format List Printf String Unistore Unistore_qproc Unistore_sim Unistore_util Unistore_workload
