examples/quickstart.mli:
