examples/schema_integration.mli:
