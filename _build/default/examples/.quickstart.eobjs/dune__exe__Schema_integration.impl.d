examples/schema_integration.ml: Format List Unistore Unistore_util Unistore_workload
