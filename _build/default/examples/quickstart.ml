(* Quickstart: spin up a small UniStore deployment, insert a few logical
   tuples, and run VQL queries over the DHT.

   Run with: dune exec examples/quickstart.exe *)

module Value = Unistore.Value

let () =
  (* A 16-peer P-Grid overlay on a simulated LAN. *)
  let store = Unistore.create { Unistore.default_config with peers = 16; seed = 1 } in

  (* Insert logical tuples: each becomes one triple per attribute, each
     triple indexed three ways (by OID, by attribute#value, by value). *)
  let tuples =
    [
      ("a1", [ ("name", Value.S "Alice"); ("age", Value.I 31); ("city", Value.S "Geneva") ]);
      ("a2", [ ("name", Value.S "Bob"); ("age", Value.I 45); ("city", Value.S "Ilmenau") ]);
      ("a3", [ ("name", Value.S "Carol"); ("age", Value.I 27); ("city", Value.S "Geneva") ]);
      ("a4", [ ("name", Value.S "Dave"); ("age", Value.I 52); ("city", Value.S "Lausanne") ]);
    ]
  in
  let stored = Unistore.load store tuples in
  Format.printf "Stored %d triples across %d peers.@.@." stored
    (List.length (Unistore.alive_peers store));

  (* Give the optimizer statistics (here: exact, from the data we hold). *)
  Unistore.set_stats_of_triples store
    (List.concat_map
       (fun (oid, fields) -> Unistore.Triple.tuple_to_triples ~oid fields)
       tuples);

  let run src =
    Format.printf "VQL> %s@." src;
    match Unistore.query store src with
    | Ok report -> Format.printf "%a@.@." Unistore.pp_table report
    | Error e -> Format.printf "error: %s@.@." e
  in

  (* Exact match on an arbitrary attribute. *)
  run "SELECT ?who WHERE { (?who,'city',?c) FILTER ?c = 'Geneva' }";

  (* Range predicate = one overlay range query on the A#v index. *)
  run "SELECT ?n, ?age WHERE { (?p,'name',?n) (?p,'age',?age) FILTER ?age >= 30 AND ?age < 50 }";

  (* Ordering and limits. *)
  run "SELECT ?n, ?age WHERE { (?p,'name',?n) (?p,'age',?age) } ORDER BY ?age DESC LIMIT 2";

  Format.printf "Total network messages: %d, simulated time: %.1f ms@."
    (Unistore.messages_sent store) (Unistore.now store)
