(* The paper's flagship scenario: contacts & publications (Fig. 3 schema)
   with the example skyline query of Section 2 — "a skyline of authors
   that reaches from the youngest authors to those authors published the
   most publications, whereby we only consider authors published in the
   ICDE series", tolerating up to 2 typos in the series name.

   Run with: dune exec examples/publications_skyline.exe *)

module Publications = Unistore_workload.Publications
module Rng = Unistore_util.Rng

let paper_query =
  "SELECT ?name,?age,?cnt\n\
   WHERE {(?a,'name',?name) (?a,'age',?age)\n\
  \       (?a,'num_of_pubs',?cnt)\n\
  \       (?a,'has_published',?title) (?p,'title',?title)\n\
  \       (?p,'published_in',?conf) (?c,'confname',?conf)\n\
  \       (?c,'series',?sr) FILTER edist(?sr,'ICDE')<3\n\
   }\n\
   ORDER BY SKYLINE OF ?age MIN, ?cnt MAX"

let () =
  let rng = Rng.create 2024 in
  (* 10% of series/confname strings carry a typo — the reason the paper's
     query uses an edit-distance filter instead of equality. *)
  let ds =
    Publications.generate rng
      { Publications.default_params with n_authors = 30; pubs_per_author = 3; typo_rate = 0.1 }
  in
  Format.printf "Dataset: %d authors, %d publications, %d conferences (%d triples).@."
    ds.Publications.authors ds.Publications.publications ds.Publications.conferences
    (List.length ds.Publications.triples);

  (* A 64-peer wide-area deployment; the overlay trie is shaped by the
     data sample (P-Grid load balancing). *)
  let store =
    Unistore.create
      ~sample_keys:(Publications.sample_keys ds)
      {
        Unistore.default_config with
        peers = 64;
        replication = 2;
        latency = Unistore_sim.Latency.Planetlab;
        seed = 7;
      }
  in
  ignore (Unistore.load store ds.Publications.tuples);
  Unistore.set_stats_of_triples store ds.Publications.triples;
  Unistore.settle store;

  Format.printf "@.The paper's example query:@.%s@.@." paper_query;

  (match Unistore.explain store paper_query with
  | Ok plan -> Format.printf "Optimizer plan:@.%a@.@." Unistore.pp_plan plan
  | Error e -> Format.printf "explain error: %s@." e);

  (match Unistore.query store paper_query with
  | Ok report ->
    Format.printf "Skyline of authors (young vs. prolific), ICDE series only:@.%a@.@."
      Unistore.pp_table report
  | Error e -> Format.printf "error: %s@." e);

  (* Same query, both execution strategies. *)
  List.iter
    (fun strategy ->
      match Unistore.query store ~strategy paper_query with
      | Ok r ->
        Format.printf "%a execution: %d rows, %d messages, %.0f ms simulated, %d bytes shipped@."
          Unistore.Report.pp_strategy strategy (List.length r.Unistore.Report.rows)
          r.Unistore.Report.messages r.Unistore.Report.latency r.Unistore.Report.bytes_shipped
      | Error e -> Format.printf "error: %s@." e)
    [ Unistore.Centralized; Unistore.Mutant ]
