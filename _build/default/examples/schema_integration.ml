(* Schema heterogeneity: two communities publish contact data under
   different schemas ("name"/"age"/"email" vs "fb:fullname"/"fb:years"/
   "fb:mail"). Schema-mapping triples — themselves ordinary triples,
   queryable at the metadata level — let a single query retrieve both.

   This demonstrates the paper's §2: "we allow to store triples
   representing a simple kind of schema mappings ... this additional
   metadata can be queried explicitly by the user — or even automatically
   by the system to retrieve relevant data without needing the user to
   interact."

   Run with: dune exec examples/schema_integration.exe *)

module Publications = Unistore_workload.Publications
module Demo_data = Unistore_workload.Demo_data
module Rng = Unistore_util.Rng

let () =
  let rng = Rng.create 4711 in
  let ds =
    Publications.generate rng { Publications.default_params with n_authors = 12 }
  in
  let store =
    Unistore.create
      ~sample_keys:(Publications.sample_keys ds)
      { Unistore.default_config with peers = 32; seed = 5 }
  in
  (* Community 1: the plain publications schema. *)
  ignore (Unistore.load store ds.Publications.tuples);
  (* Community 2: contacts under the fb: namespace. *)
  ignore (Unistore.load store Demo_data.contacts_fb);
  Unistore.set_stats_of_triples store ds.Publications.triples;

  (* Publish the correspondences (as triples, like any other data). *)
  List.iter
    (fun (a, b) ->
      if Unistore.add_mapping store a b then Format.printf "mapping: %s <-> %s@." a b)
    Demo_data.contact_mappings;
  Unistore.settle store;

  let q = "SELECT ?n, ?age WHERE { (?u,'name',?n) (?u,'age',?age) FILTER ?age < 40 }" in
  Format.printf "@.VQL> %s@.@." q;

  (match Unistore.query store q with
  | Ok r ->
    Format.printf "Without mapping expansion (only community 1 is visible):@.%a@.@."
      Unistore.pp_table r
  | Error e -> Format.printf "error: %s@." e);

  (match Unistore.query store ~expand_mappings:true q with
  | Ok r ->
    Format.printf "With automatic mapping expansion (both communities):@.%a@.@."
      Unistore.pp_table r
  | Error e -> Format.printf "error: %s@." e);

  (* The metadata level is directly queryable too. *)
  let meta = "SELECT ?from, ?to WHERE { (?m,'sys:maps_to',?to) (?m,'sys:maps_to',?to) \
              (?m,'sys:maps_to',?from) FILTER ?from != ?to }" in
  ignore meta;
  match Unistore.query store "SELECT ?m, ?to WHERE { (?m,'sys:maps_to',?to) }" with
  | Ok r -> Format.printf "The mapping metadata, queried as data:@.%a@." Unistore.pp_table r
  | Error e -> Format.printf "error: %s@." e
