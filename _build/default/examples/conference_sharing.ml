(* The demonstration scenario of Section 4: a conference data-sharing
   system. Participants contribute restaurant tips around the venue and
   query them with ranking operators ("people could also insert data
   about restaurants ... and apply queries intended for such distributed
   public data collections, e.g., skyline operators").

   Also shows the robustness story: peers fail mid-conference and queries
   keep working off replicas.

   Run with: dune exec examples/conference_sharing.exe *)

module Demo_data = Unistore_workload.Demo_data
module Value = Unistore.Value
module Triple = Unistore.Triple

let () =
  let sample =
    List.concat_map
      (fun (oid, fields) ->
        Triple.tuple_to_triples ~oid fields
        |> List.map (fun (tr : Triple.t) ->
               Unistore_triple.Keys.attr_value_key tr.Triple.attr tr.Triple.value))
      Demo_data.restaurants
  in
  let store =
    Unistore.create ~sample_keys:sample
      { Unistore.default_config with peers = 24; replication = 3; seed = 99 }
  in
  (* Each attendee inserts their own tips (round-robin origins). *)
  let stored = Unistore.load store Demo_data.restaurants in
  Format.printf "Conference data-sharing overlay: %d peers, %d triples of restaurant tips.@.@."
    (List.length (Unistore.alive_peers store))
    stored;
  Unistore.set_stats_of_triples store
    (List.concat_map
       (fun (oid, fields) -> Triple.tuple_to_triples ~oid fields)
       Demo_data.restaurants);
  Unistore.settle store;

  let run label src =
    Format.printf "-- %s@.VQL> %s@." label src;
    match Unistore.query store src with
    | Ok report -> Format.printf "%a@.@." Unistore.pp_table report
    | Error e -> Format.printf "error: %s@.@." e
  in

  run "Cheap and close? The lunch skyline (price MIN, distance MIN)"
    "SELECT ?n, ?price, ?dist WHERE { (?r,'rest_name',?n) (?r,'price',?price) \
     (?r,'distance',?dist) } ORDER BY SKYLINE OF ?price MIN, ?dist MIN";

  run "Best dinner regardless of price: top-3 by rating"
    "SELECT ?n, ?rating, ?price WHERE { (?r,'rest_name',?n) (?r,'rating',?rating) \
     (?r,'price',?price) } ORDER BY ?rating DESC LIMIT 3";

  run "Italian under 30"
    "SELECT ?n, ?price WHERE { (?r,'rest_name',?n) (?r,'cuisine',?c) (?r,'price',?price) \
     FILTER ?c = 'italian' AND ?price < 30 }";

  run "Typo-tolerant cuisine search (edist <= 1 of 'frensh')"
    "SELECT ?n WHERE { (?r,'rest_name',?n) (?r,'cuisine',?c) FILTER edist(?c,'frensh') <= 2 }";

  run "Cheap OR highly rated (a UNION of two selections)"
    "SELECT DISTINCT ?n WHERE { (?r,'rest_name',?n) (?r,'price',?p) FILTER ?p < 15 } UNION { \
     (?r,'rest_name',?n) (?r,'rating',?g) FILTER ?g >= 9 }";

  (* A latecomer's laptop joins the running overlay (paper section 4:
     "allowing interested people to include their own machines ... into a
     running P-Grid overlay"). *)
  let ok = Unistore.join_peer store ~id:100 ~bootstrap:4 in
  Format.printf "-- A new attendee's laptop joined the overlay (cloned peer 4): %b@.@." ok;

  (* Robustness: a third of the laptops leave for the keynote. *)
  let victims = [ 2; 5; 8; 11; 14; 17; 20; 23 ] in
  Unistore.kill_peers store victims;
  Format.printf "-- %d peers just left the network. Querying again:@." (List.length victims);
  (match
     Unistore.query store
       "SELECT ?n, ?rating WHERE { (?r,'rest_name',?n) (?r,'rating',?rating) } ORDER BY \
        ?rating DESC LIMIT 3"
   with
  | Ok report ->
    Format.printf "%a@." Unistore.pp_table report;
    Format.printf "(report flagged as %s)@.@."
      (if report.Unistore.Report.complete then "complete" else "partial")
  | Error e -> Format.printf "error: %s@." e);

  Format.printf "Total messages: %d, simulated time: %.0f ms@." (Unistore.messages_sent store)
    (Unistore.now store)
