(* Observability: the paper's Section 3 claims the platform's logging
   makes results "traceable, analyzable and (in limits) repeatable".
   This example runs the same query twice with message-level tracing and
   shows (a) what the analysis looks like and (b) that a fixed seed makes
   runs exactly repeatable.

   Run with: dune exec examples/observability.exe *)

module Publications = Unistore_workload.Publications
module Trace = Unistore_sim.Trace
module Rng = Unistore_util.Rng

let query =
  "SELECT ?n, ?t WHERE { (?a,'name',?n) (?a,'has_published',?t) (?p,'title',?t) \
   (?p,'year',?y) FILTER ?y >= 2003 }"

let run_once () =
  let rng = Rng.create 2026 in
  let ds = Publications.generate rng { Publications.default_params with n_authors = 25 } in
  let store =
    Unistore.create
      ~sample_keys:(Publications.sample_keys ds)
      { Unistore.default_config with peers = 48; seed = 17 }
  in
  ignore (Unistore.load store ds.Publications.tuples);
  Unistore.set_stats_of_triples store ds.Publications.triples;
  Unistore.settle store;
  let tr = Unistore.start_trace store in
  let report =
    match Unistore.query store ~origin:9 query with
    | Ok r -> r
    | Error e -> failwith e
  in
  Unistore.settle store;
  Unistore.stop_trace store;
  (tr, report)

let () =
  Format.printf "VQL> %s@.@." query;
  let tr, report = run_once () in
  Format.printf "%d rows in %.0f simulated ms.@.@." (List.length report.Unistore.Report.rows)
    report.Unistore.Report.latency;

  Format.printf "Per-operator execution trace:@.";
  List.iter
    (fun t -> Format.printf "  %a@." Unistore_qproc.Exec.pp_step_trace t)
    report.Unistore.Report.traces;

  Format.printf "@.Message-level analysis:@.%a@." Trace.pp_summary tr;

  Format.printf "@.Timeline (1 ms buckets):@.";
  List.iter
    (fun (t, c) -> Format.printf "  t=%5.1fms  %s@." t (String.make c '#'))
    (Trace.timeline tr ~bucket_ms:1.0);

  (* Repeatability: the same seed reproduces the exact same trace. *)
  let tr2, _ = run_once () in
  let fingerprint t =
    List.map
      (fun (e : Trace.event) -> Printf.sprintf "%.3f:%d->%d:%s" e.Trace.time e.Trace.src e.Trace.dst e.Trace.kind)
      (Trace.events t)
  in
  Format.printf "@.Re-running with the same seed: traces identical = %b (%d events)@."
    (fingerprint tr = fingerprint tr2)
    (Trace.length tr)
