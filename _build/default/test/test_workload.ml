(* Tests for the workload generators (unistore_workload). *)

open Unistore_util
module Value = Unistore_triple.Value
module Triple = Unistore_triple.Triple
module Namegen = Unistore_workload.Namegen
module Publications = Unistore_workload.Publications
module Skewed = Unistore_workload.Skewed
module Demo_data = Unistore_workload.Demo_data

let check = Alcotest.check

let test_namegen_deterministic () =
  let a = Namegen.person (Rng.create 5) and b = Namegen.person (Rng.create 5) in
  check Alcotest.string "same seed same name" a b;
  Alcotest.(check bool) "has two words" true (String.contains a ' ')

let test_typo_distance_one () =
  let rng = Rng.create 11 in
  for _ = 1 to 200 do
    let w = Namegen.word rng in
    let t = Namegen.typo rng w in
    let d = Strdist.levenshtein w t in
    if d < 1 || d > 2 then Alcotest.failf "typo of %S gave %S (distance %d)" w t d
  done

let test_publications_shape () =
  let rng = Rng.create 1 in
  let p = { Publications.default_params with n_authors = 10; pubs_per_author = 2; n_conferences = 4 } in
  let ds = Publications.generate rng p in
  check Alcotest.int "authors" 10 ds.Publications.authors;
  check Alcotest.int "conferences" 4 ds.Publications.conferences;
  check Alcotest.int "pubs" 20 ds.Publications.publications;
  check Alcotest.int "tuples" (10 + 20 + 4) (List.length ds.Publications.tuples);
  (* Every author tuple has the Fig. 3 core attributes. *)
  List.iter
    (fun (oid, fields) ->
      if String.length oid > 0 && oid.[0] = 'a' then begin
        List.iter
          (fun a ->
            if not (List.mem_assoc a fields) then Alcotest.failf "author %s missing %s" oid a)
          [ "name"; "age"; "num_of_pubs"; "email"; "has_published" ]
      end)
    ds.Publications.tuples

let test_publications_referential_integrity () =
  let rng = Rng.create 2 in
  let ds = Publications.generate rng Publications.default_params in
  let titles =
    List.filter_map
      (fun (tr : Triple.t) ->
        if tr.Triple.attr = "title" then Value.as_string tr.Triple.value else None)
      ds.Publications.triples
  in
  let confnames =
    List.filter_map
      (fun (tr : Triple.t) ->
        if tr.Triple.attr = "confname" then Value.as_string tr.Triple.value else None)
      ds.Publications.triples
  in
  (* has_published values reference existing titles; published_in
     reference existing confnames. *)
  List.iter
    (fun (tr : Triple.t) ->
      match (tr.Triple.attr, Value.as_string tr.Triple.value) with
      | "has_published", Some t ->
        if not (List.mem t titles) then Alcotest.failf "dangling has_published %S" t
      | "published_in", Some c ->
        if not (List.mem c confnames) then Alcotest.failf "dangling published_in %S" c
      | _ -> ())
    ds.Publications.triples

let test_publications_num_of_pubs_consistent () =
  let rng = Rng.create 3 in
  let ds = Publications.generate rng Publications.default_params in
  List.iter
    (fun (oid, fields) ->
      match List.assoc_opt "num_of_pubs" fields with
      | Some (Value.I n) ->
        let actual =
          List.length (List.filter (fun (a, _) -> String.equal a "has_published") fields)
        in
        if n <> actual then Alcotest.failf "%s: num_of_pubs=%d but %d has_published" oid n actual
      | _ -> ())
    ds.Publications.tuples

let test_publications_namespace () =
  let rng = Rng.create 4 in
  let ds = Publications.generate rng { Publications.default_params with namespace = "dblp" } in
  List.iter
    (fun (tr : Triple.t) ->
      if not (String.length tr.Triple.attr > 5 && String.sub tr.Triple.attr 0 5 = "dblp:") then
        Alcotest.failf "attr %s not namespaced" tr.Triple.attr)
    ds.Publications.triples

let test_publications_typos () =
  let rng = Rng.create 5 in
  let clean = Publications.generate (Rng.copy rng) { Publications.default_params with typo_rate = 0.0 } in
  let noisy = Publications.generate rng { Publications.default_params with typo_rate = 1.0 } in
  let series ds =
    List.filter_map
      (fun (tr : Triple.t) ->
        if tr.Triple.attr = "series" then Value.as_string tr.Triple.value else None)
      ds.Publications.triples
    |> List.sort_uniq compare
  in
  let clean_ok = List.for_all (fun s -> List.mem s Publications.base_series) (series clean) in
  Alcotest.(check bool) "clean series are canonical" true clean_ok;
  Alcotest.(check bool) "noisy series deviate" true
    (List.exists (fun s -> not (List.mem s Publications.base_series)) (series noisy))

let test_skewed_distribution () =
  let rng = Rng.create 6 in
  let triples = Skewed.generate rng ~n:2000 ~skew:1.2 () in
  check Alcotest.int "count" 2000 (List.length triples);
  let freq = Hashtbl.create 64 in
  List.iter
    (fun (tr : Triple.t) ->
      let v = Option.get (Value.as_string tr.Triple.value) in
      Hashtbl.replace freq v (1 + Option.value ~default:0 (Hashtbl.find_opt freq v)))
    triples;
  let top = Hashtbl.fold (fun _ c acc -> max c acc) freq 0 in
  Alcotest.(check bool)
    (Printf.sprintf "skewed: top value has %d/2000" top)
    true
    (top > 200)

let test_demo_data_valid () =
  (* All demo tuples must decompose into valid triples. *)
  List.iter
    (fun (oid, fields) -> ignore (Triple.tuple_to_triples ~oid fields))
    (Demo_data.restaurants @ Demo_data.contacts_fb);
  check Alcotest.int "restaurants" 12 (List.length Demo_data.restaurants);
  check Alcotest.int "mappings" 3 (List.length Demo_data.contact_mappings)

let () =
  Alcotest.run "unistore_workload"
    [
      ( "namegen",
        [
          Alcotest.test_case "deterministic" `Quick test_namegen_deterministic;
          Alcotest.test_case "typo distance" `Quick test_typo_distance_one;
        ] );
      ( "publications",
        [
          Alcotest.test_case "shape" `Quick test_publications_shape;
          Alcotest.test_case "referential integrity" `Quick test_publications_referential_integrity;
          Alcotest.test_case "num_of_pubs consistent" `Quick test_publications_num_of_pubs_consistent;
          Alcotest.test_case "namespacing" `Quick test_publications_namespace;
          Alcotest.test_case "typo injection" `Quick test_publications_typos;
        ] );
      ( "skewed",
        [ Alcotest.test_case "zipf distribution" `Quick test_skewed_distribution ] );
      ( "demo_data",
        [ Alcotest.test_case "valid tuples" `Quick test_demo_data_valid ] );
    ]
