(* Tests for the Chord baseline DHT and its trie range index. *)

open Unistore_util
module Sim = Unistore_sim.Sim
module Latency = Unistore_sim.Latency
module Store = Unistore_pgrid.Store
module Chord = Unistore_chord.Chord
module Ring = Unistore_chord.Ring
module Trie_index = Unistore_chord.Trie_index

let check = Alcotest.check

let mkchord ?(n = 32) ?(seed = 42) ?(config = Chord.default_config) () =
  let sim = Sim.create () in
  let rng = Rng.create seed in
  let latency = Latency.create (Latency.Constant 1.0) ~n ~rng in
  Chord.create sim ~latency ~rng ~config ~n ()

let random_words rng n =
  List.init n (fun _ ->
      String.init (4 + Rng.int rng 8) (fun _ -> Char.chr (Char.code 'a' + Rng.int rng 26)))

(* ------------------------------------------------------------------ *)
(* Ring *)

let test_ring_in_oc () =
  Alcotest.(check bool) "normal arc" true (Ring.in_oc 10 20 15);
  Alcotest.(check bool) "boundary hi" true (Ring.in_oc 10 20 20);
  Alcotest.(check bool) "boundary lo excluded" false (Ring.in_oc 10 20 10);
  Alcotest.(check bool) "wrap" true (Ring.in_oc (Ring.size - 5) 5 2);
  Alcotest.(check bool) "wrap outside" false (Ring.in_oc (Ring.size - 5) 5 100)

let test_ring_hash_range () =
  List.iter
    (fun s ->
      let h = Ring.hash_key s in
      if h < 0 || h >= Ring.size then Alcotest.failf "hash out of range: %d" h)
    [ ""; "a"; "hello"; String.make 100 'x' ]

let test_ring_hash_spread () =
  (* Uniformity smoke test: 1000 keys into 8 octants, none empty. *)
  let buckets = Array.make 8 0 in
  for i = 0 to 999 do
    let h = Ring.hash_key (Printf.sprintf "key%d" i) in
    let b = h / (Ring.size / 8) in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri (fun i c -> if c < 50 then Alcotest.failf "octant %d only got %d keys" i c) buckets

(* ------------------------------------------------------------------ *)
(* Chord core *)

let test_put_get_roundtrip () =
  let c = mkchord ~n:32 () in
  let rng = Rng.create 1 in
  let keys = List.sort_uniq compare (random_words rng 100) in
  List.iteri
    (fun i k ->
      let r = Chord.put_sync c ~origin:(i mod 32) ~key:k ~item_id:(string_of_int i) ~payload:k () in
      if not r.Chord.complete then Alcotest.failf "put %S failed" k)
    keys;
  List.iteri
    (fun i k ->
      let r = Chord.get_sync c ~origin:((i * 5) mod 32) ~key:k in
      if not (r.Chord.complete && r.Chord.items <> []) then Alcotest.failf "get %S failed" k)
    keys

let test_get_missing () =
  let c = mkchord () in
  let r = Chord.get_sync c ~origin:0 ~key:"missing" in
  Alcotest.(check bool) "complete" true r.Chord.complete;
  check Alcotest.int "empty" 0 (List.length r.Chord.items)

let test_hops_logarithmic () =
  let c = mkchord ~n:256 () in
  let rng = Rng.create 2 in
  let keys = random_words rng 100 in
  List.iter (fun k -> ignore (Chord.put_sync c ~origin:0 ~key:k ~item_id:k ~payload:k ())) keys;
  let hops =
    List.map (fun k -> float_of_int (Chord.get_sync c ~origin:7 ~key:k).Chord.hops) keys
  in
  let s = Stats.summarize hops in
  Alcotest.(check bool)
    (Printf.sprintf "mean hops %.2f <= 1.5*log2(256)" s.Stats.mean)
    true
    (s.Stats.mean <= 12.0)

let test_replication_survives_failure () =
  let config = { Chord.succ_list = 4; timeout_ms = 500.0; retries = 3 } in
  let c = mkchord ~n:32 ~config () in
  ignore (Chord.put_sync c ~origin:0 ~key:"precious" ~item_id:"a" ~payload:"data" ());
  Sim.run_all (Chord.sim c);
  let holder = Chord.responsible c "precious" in
  Chord.kill c holder;
  let r = Chord.get_sync c ~origin:(if holder = 0 then 1 else 0) ~key:"precious" in
  Alcotest.(check bool) "found on replica" true (r.Chord.complete && r.Chord.items <> [])

let test_broadcast_reaches_all () =
  let c = mkchord ~n:48 () in
  let rng = Rng.create 3 in
  let keys = List.sort_uniq compare (random_words rng 60) in
  List.iteri
    (fun i k -> ignore (Chord.put_sync c ~origin:(i mod 48) ~key:k ~item_id:k ~payload:k ()))
    keys;
  Sim.run_all (Chord.sim c);
  let r = Chord.broadcast_sync c ~origin:5 ~pred:(fun _ -> true) in
  Alcotest.(check bool) "complete" true r.Chord.complete;
  check Alcotest.int "visited every peer" 48 r.Chord.peers_hit;
  (* Every key present (replicas may duplicate). *)
  let got = List.map (fun (i : Store.item) -> i.Store.key) r.Chord.items |> List.sort_uniq compare in
  check Alcotest.(list string) "all keys seen" keys got

let test_delete () =
  let c = mkchord ~n:16 () in
  ignore (Chord.put_sync c ~origin:0 ~key:"k" ~item_id:"a" ~payload:"p1" ());
  ignore (Chord.put_sync c ~origin:1 ~key:"k" ~item_id:"b" ~payload:"p2" ());
  Sim.run_all (Chord.sim c);
  let r = Chord.del_sync c ~origin:3 ~key:"k" ~item_id:"a" in
  Alcotest.(check bool) "delete completes" true r.Chord.complete;
  Sim.run_all (Chord.sim c);
  (match (Chord.get_sync c ~origin:5 ~key:"k").Chord.items with
  | [ i ] -> check Alcotest.string "b remains" "b" i.Store.item_id
  | l -> Alcotest.failf "expected 1 item, got %d" (List.length l));
  (* Replicas purged: killing the primary must not resurrect it. *)
  Chord.kill c (Chord.responsible c "k");
  let r = Chord.get_sync c ~origin:0 ~key:"k" in
  Alcotest.(check bool) "replica view clean" true
    (List.for_all (fun (i : Store.item) -> i.Store.item_id <> "a") r.Chord.items)

let test_version_lww () =
  let c = mkchord () in
  ignore (Chord.put_sync c ~origin:0 ~key:"k" ~item_id:"x" ~payload:"v1" ~version:1 ());
  ignore (Chord.put_sync c ~origin:1 ~key:"k" ~item_id:"x" ~payload:"v2" ~version:2 ());
  ignore (Chord.put_sync c ~origin:2 ~key:"k" ~item_id:"x" ~payload:"stale" ~version:0 ());
  let r = Chord.get_sync c ~origin:3 ~key:"k" in
  match r.Chord.items with
  | [ i ] -> check Alcotest.string "newest payload" "v2" i.Store.payload
  | l -> Alcotest.failf "expected 1 item, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Trie index *)

let test_trie_insert_range () =
  let c = mkchord ~n:32 () in
  let keys = [ "apple"; "apricot"; "banana"; "cherry"; "damson"; "elder"; "fig" ] in
  List.iteri
    (fun i k ->
      let ok = Trie_index.insert_sync c ~origin:(i mod 32) ~key:k ~item_id:(string_of_int i) ~payload:k () in
      Alcotest.(check bool) (Printf.sprintf "insert %s" k) true ok)
    keys;
  let r = Trie_index.range_sync c ~origin:0 ~lo:"apricot" ~hi:"damson" in
  Alcotest.(check bool) "complete" true r.Chord.complete;
  let got = List.map (fun (i : Store.item) -> i.Store.key) r.Chord.items |> List.sort_uniq compare in
  check Alcotest.(list string) "range" [ "apricot"; "banana"; "cherry"; "damson" ] got

let test_trie_range_matches_oracle () =
  let c = mkchord ~n:48 ~seed:7 () in
  let rng = Rng.create 8 in
  let keys = List.sort_uniq compare (random_words rng 80) in
  List.iteri
    (fun i k -> ignore (Trie_index.insert_sync c ~origin:(i mod 48) ~key:k ~item_id:(string_of_int i) ~payload:k ()))
    keys;
  List.iter
    (fun (lo, hi) ->
      let expected = List.filter (fun k -> k >= lo && k <= hi) keys in
      let r = Trie_index.range_sync c ~origin:3 ~lo ~hi in
      let got = List.map (fun (i : Store.item) -> i.Store.key) r.Chord.items |> List.sort_uniq compare in
      check Alcotest.(list string) (Printf.sprintf "range [%s,%s]" lo hi) expected got)
    [ ("a", "g"); ("c", "czzzz"); ("", "zzzzzzzz") ]

let test_trie_range_cost_exceeds_exact () =
  (* The trie traversal must cost several DHT gets (the paper's point:
     extra structure, extra messages). *)
  let c = mkchord ~n:64 () in
  let rng = Rng.create 9 in
  let keys = random_words rng 100 in
  List.iteri
    (fun i k -> ignore (Trie_index.insert_sync c ~origin:(i mod 64) ~key:k ~item_id:(string_of_int i) ~payload:k ()))
    keys;
  let before = Chord.total_sent c in
  let r = Trie_index.range_sync c ~origin:0 ~lo:"a" ~hi:"m" in
  let msgs = Chord.total_sent c - before in
  Alcotest.(check bool) "complete" true r.Chord.complete;
  Alcotest.(check bool)
    (Printf.sprintf "trie range needed %d msgs (> 3x a lookup)" msgs)
    true (msgs > 30)

let test_trie_payload_roundtrip () =
  let c = mkchord () in
  let payload = "some:payload:with:colons\nand newlines" in
  ignore (Trie_index.insert_sync c ~origin:0 ~key:"thekey" ~item_id:"a" ~payload ());
  let r = Trie_index.range_sync c ~origin:1 ~lo:"thekey" ~hi:"thekey" in
  match r.Chord.items with
  | [ i ] ->
    check Alcotest.string "key restored" "thekey" i.Store.key;
    check Alcotest.string "payload restored" payload i.Store.payload;
    check Alcotest.string "item_id restored" "a" i.Store.item_id
  | l -> Alcotest.failf "expected 1 item, got %d" (List.length l)

let () =
  Alcotest.run "unistore_chord"
    [
      ( "ring",
        [
          Alcotest.test_case "in_oc arcs" `Quick test_ring_in_oc;
          Alcotest.test_case "hash range" `Quick test_ring_hash_range;
          Alcotest.test_case "hash spread" `Quick test_ring_hash_spread;
        ] );
      ( "chord",
        [
          Alcotest.test_case "put/get roundtrip" `Quick test_put_get_roundtrip;
          Alcotest.test_case "get missing" `Quick test_get_missing;
          Alcotest.test_case "hops logarithmic" `Slow test_hops_logarithmic;
          Alcotest.test_case "replication survives failure" `Quick test_replication_survives_failure;
          Alcotest.test_case "broadcast reaches all" `Quick test_broadcast_reaches_all;
          Alcotest.test_case "version LWW" `Quick test_version_lww;
          Alcotest.test_case "delete" `Quick test_delete;
        ] );
      ( "trie_index",
        [
          Alcotest.test_case "insert + range" `Quick test_trie_insert_range;
          Alcotest.test_case "range matches oracle" `Quick test_trie_range_matches_oracle;
          Alcotest.test_case "range cost exceeds exact lookup" `Quick test_trie_range_cost_exceeds_exact;
          Alcotest.test_case "payload roundtrip" `Quick test_trie_payload_roundtrip;
        ] );
    ]
