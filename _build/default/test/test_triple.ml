(* Tests for the triple storage layer (unistore_triple). *)

open Unistore_util
module Sim = Unistore_sim.Sim
module Latency = Unistore_sim.Latency
module Config = Unistore_pgrid.Config
module Build = Unistore_pgrid.Build
module Chord = Unistore_chord.Chord
module Value = Unistore_triple.Value
module Triple = Unistore_triple.Triple
module Keys = Unistore_triple.Keys
module Dht = Unistore_triple.Dht
module Tstore = Unistore_triple.Tstore

let check = Alcotest.check
let qtest ?(count = 300) name gen prop = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let value_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun s -> Value.S s) (string_size ~gen:(char_range 'a' 'z') (0 -- 16));
        map (fun i -> Value.I i) int;
        map (fun f -> Value.F (if Float.is_nan f then 0.0 else f)) float;
        map (fun b -> Value.B b) bool;
      ])

(* ------------------------------------------------------------------ *)
(* Value *)

let test_value_compare_types () =
  Alcotest.(check bool) "B < F" true (Value.compare (Value.B true) (Value.F 0.0) < 0);
  Alcotest.(check bool) "F < I" true (Value.compare (Value.F 9e9) (Value.I 0) < 0);
  Alcotest.(check bool) "I < S" true (Value.compare (Value.I max_int) (Value.S "") < 0)

let prop_value_encode_order =
  qtest "value: encode preserves order" QCheck2.Gen.(pair value_gen value_gen) (fun (a, b) ->
      let c1 = String.compare (Value.encode a) (Value.encode b) in
      compare c1 0 = compare (Value.compare a b) 0)

let prop_value_roundtrip =
  qtest "value: decode (encode v) = v" value_gen (fun v ->
      match Value.decode (Value.encode v) with Some v' -> Value.equal v v' | None -> false)

let test_value_decode_garbage () =
  check Alcotest.(option reject) "empty" None (Option.map (fun _ -> ()) (Value.decode ""));
  check Alcotest.(option reject) "bad tag" None (Option.map (fun _ -> ()) (Value.decode "zfoo"));
  check
    Alcotest.(option reject)
    "short int" None
    (Option.map (fun _ -> ()) (Value.decode "i123"))

let test_value_type_bounds () =
  let v = Value.I 42 in
  Alcotest.(check bool) "min <= enc" true (String.compare (Value.type_min v) (Value.encode v) <= 0);
  Alcotest.(check bool) "enc <= max" true (String.compare (Value.encode v) (Value.type_max v) <= 0)

let test_value_numeric_view () =
  check Alcotest.(option (float 1e-9)) "int" (Some 42.0) (Value.to_float (Value.I 42));
  check Alcotest.(option (float 1e-9)) "float" (Some 1.5) (Value.to_float (Value.F 1.5));
  check Alcotest.(option (float 1e-9)) "string" None (Value.to_float (Value.S "x"))

(* ------------------------------------------------------------------ *)
(* Triple *)

let triple_gen =
  QCheck2.Gen.(
    let name = string_size ~gen:(char_range 'a' 'z') (1 -- 10) in
    map
      (fun ((oid, attr), v) -> Triple.make ~oid ~attr v)
      (pair (pair name name) value_gen))

let prop_triple_serialize_roundtrip =
  qtest "triple: serialize roundtrip" triple_gen (fun tr ->
      match Triple.deserialize (Triple.serialize tr) with
      | Some tr' -> Triple.equal tr tr'
      | None -> false)

let test_triple_validation () =
  Alcotest.check_raises "empty oid" (Invalid_argument "Triple.make: empty oid") (fun () ->
      ignore (Triple.make ~oid:"" ~attr:"a" (Value.I 1)));
  Alcotest.check_raises "NUL in attr" (Invalid_argument "Triple.make: NUL byte in attr") (fun () ->
      ignore (Triple.make ~oid:"x" ~attr:"a\000b" (Value.I 1)))

let test_triple_deserialize_garbage () =
  List.iter
    (fun s ->
      match Triple.deserialize s with
      | None -> ()
      | Some _ -> Alcotest.failf "deserialized garbage %S" s)
    [ ""; "nonsense"; "1:a"; "1:a1:b"; "1:a1:b3:zzz"; "1:a1:b1:i trailing" ]

let test_triple_namespace () =
  let tr = Triple.make ~oid:"o" ~attr:"dblp:title" (Value.S "x") in
  check Alcotest.string "ns" "dblp" (Triple.namespace tr);
  check Alcotest.string "local" "title" (Triple.local_name tr);
  let tr2 = Triple.make ~oid:"o" ~attr:"title" (Value.S "x") in
  check Alcotest.string "no ns" "" (Triple.namespace tr2)

let test_tuple_decomposition () =
  (* The paper's Fig. 2 example: a 3-attribute tuple becomes 3 triples. *)
  let fields =
    [ ("title", Value.S "Similarity..."); ("confname", Value.S "ICDE 2006 - WS"); ("year", Value.I 2006) ]
  in
  let triples = Triple.tuple_to_triples ~oid:"a12" fields in
  check Alcotest.int "3 triples" 3 (List.length triples);
  match Triple.triples_to_tuples triples with
  | [ (oid, fields') ] ->
    check Alcotest.string "oid" "a12" oid;
    check Alcotest.int "3 fields" 3 (List.length fields')
  | l -> Alcotest.failf "expected 1 tuple, got %d" (List.length l)

let test_triple_id_stable () =
  let t1 = Triple.make ~oid:"o" ~attr:"a" (Value.I 5) in
  let t2 = Triple.make ~oid:"o" ~attr:"a" (Value.I 5) in
  let t3 = Triple.make ~oid:"o" ~attr:"a" (Value.I 6) in
  check Alcotest.string "same id" (Triple.id t1) (Triple.id t2);
  Alcotest.(check bool) "value changes id" false (String.equal (Triple.id t1) (Triple.id t3))

(* ------------------------------------------------------------------ *)
(* Keys *)

let test_keys_families_disjoint () =
  let k1 = Keys.oid_key "x" and k2 = Keys.attr_value_key "x" (Value.S "x") in
  let k3 = Keys.value_key (Value.S "x") and k4 = Keys.qgram_key "xyz" in
  Alcotest.(check bool) "O < A is false (A < O)" true (String.compare k2 k1 < 0);
  Alcotest.(check bool) "A < Q" true (String.compare k2 k4 < 0);
  Alcotest.(check bool) "Q < V" true (String.compare k4 k3 < 0)

let test_keys_attr_region_contains () =
  let lo, hi = Keys.attr_range "year" ~lo:(Value.I 2000) ~hi:(Value.I 2010) in
  let inside = Keys.attr_value_key "year" (Value.I 2005) in
  let outside = Keys.attr_value_key "year" (Value.I 1999) in
  let other_attr = Keys.attr_value_key "yearly" (Value.I 2005) in
  Alcotest.(check bool) "2005 inside" true (lo <= inside && inside <= hi);
  Alcotest.(check bool) "1999 outside" false (lo <= outside && outside <= hi);
  Alcotest.(check bool) "other attr outside" false (lo <= other_attr && other_attr <= hi)

let test_keys_attr_prefix_isolated () =
  (* "year" region must not capture "yearly" keys. *)
  let p = Keys.attr_prefix "year" in
  let k_year = Keys.attr_value_key "year" (Value.I 2005) in
  let k_yearly = Keys.attr_value_key "yearly" (Value.I 2005) in
  let has_prefix s = String.length s >= String.length p && String.sub s 0 (String.length p) = p in
  Alcotest.(check bool) "year captured" true (has_prefix k_year);
  Alcotest.(check bool) "yearly not captured" false (has_prefix k_yearly)

(* ------------------------------------------------------------------ *)
(* Tstore over both substrates *)

let make_pgrid_dht ?(n = 24) ?(seed = 42) ~sample () =
  let sim = Sim.create () in
  let rng = Rng.create seed in
  let latency = Latency.create (Latency.Constant 1.0) ~n ~rng in
  let ov = Build.oracle sim ~latency ~rng ~config:Config.default ~n ~sample_keys:sample () in
  Dht.of_pgrid ov

let make_chord_dht ?(n = 24) ?(seed = 42) () =
  let sim = Sim.create () in
  let rng = Rng.create seed in
  let latency = Latency.create (Latency.Constant 1.0) ~n ~rng in
  let chord = Chord.create sim ~latency ~rng ~config:Chord.default_config ~n () in
  Dht.of_chord_trie chord

let fig3_tuples =
  (* Authors / publications / conferences in the spirit of Fig. 3. *)
  [
    ("a1", [ ("name", Value.S "alice"); ("age", Value.I 30); ("num_of_pubs", Value.I 4) ]);
    ("a2", [ ("name", Value.S "bob"); ("age", Value.I 45); ("num_of_pubs", Value.I 12) ]);
    ("p1", [ ("title", Value.S "similarity queries"); ("year", Value.I 2006); ("published_in", Value.S "ICDE") ]);
    ("p2", [ ("title", Value.S "progressive skylines"); ("year", Value.I 2005); ("published_in", Value.S "VLDB") ]);
    ("c1", [ ("confname", Value.S "ICDE 2006"); ("series", Value.S "ICDE") ]);
    ("c2", [ ("confname", Value.S "VLDB 2005"); ("series", Value.S "VLDB") ]);
  ]

let load_fig3 ts =
  List.iter
    (fun (oid, fields) ->
      let n = Tstore.insert_tuple_sync ts ~origin:0 ~oid fields in
      check Alcotest.int (Printf.sprintf "all triples of %s stored" oid) (List.length fields) n)
    fig3_tuples

let sample_keys_of_tuples tuples =
  List.concat_map
    (fun (oid, fields) ->
      List.concat_map
        (fun (attr, v) ->
          let tr = Triple.make ~oid ~attr v in
          ignore tr;
          [ Keys.oid_key oid; Keys.attr_value_key attr v; Keys.value_key v ])
        fields)
    tuples

let with_both_substrates f =
  let pg = make_pgrid_dht ~sample:(sample_keys_of_tuples fig3_tuples) () in
  f "pgrid" (Tstore.create pg);
  let ch = make_chord_dht () in
  f "chord+trie" (Tstore.create ch)

let test_tstore_by_oid () =
  with_both_substrates (fun name ts ->
      load_fig3 ts;
      let triples, meta = Tstore.by_oid_sync ts ~origin:1 "a1" in
      Alcotest.(check bool) (name ^ ": complete") true meta.Tstore.complete;
      check Alcotest.int (name ^ ": tuple reassembled") 3 (List.length triples);
      List.iter (fun (tr : Triple.t) -> check Alcotest.string "oid" "a1" tr.Triple.oid) triples)

let test_tstore_by_attr_value () =
  with_both_substrates (fun name ts ->
      load_fig3 ts;
      let triples, _ = Tstore.by_attr_value_sync ts ~origin:2 ~attr:"name" (Value.S "bob") in
      (match triples with
      | [ tr ] -> check Alcotest.string (name ^ ": bob's oid") "a2" tr.Triple.oid
      | l -> Alcotest.failf "%s: expected 1 triple, got %d" name (List.length l));
      let none, _ = Tstore.by_attr_value_sync ts ~origin:2 ~attr:"name" (Value.S "eve") in
      check Alcotest.int (name ^ ": no eve") 0 (List.length none))

let test_tstore_by_attr_range () =
  with_both_substrates (fun name ts ->
      load_fig3 ts;
      let triples, meta =
        Tstore.by_attr_range_sync ts ~origin:3 ~attr:"year" ~lo:(Value.I 2005) ~hi:(Value.I 2006)
      in
      Alcotest.(check bool) (name ^ ": complete") true meta.Tstore.complete;
      check Alcotest.int (name ^ ": both years") 2 (List.length triples);
      let triples, _ =
        Tstore.by_attr_range_sync ts ~origin:3 ~attr:"year" ~lo:(Value.I 2006) ~hi:(Value.I 2010)
      in
      check Alcotest.int (name ^ ": one year") 1 (List.length triples))

let test_tstore_range_excludes_other_attrs () =
  with_both_substrates (fun name ts ->
      load_fig3 ts;
      (* age and num_of_pubs share the integer domain; a range on age must
         not return num_of_pubs triples. *)
      let triples, _ =
        Tstore.by_attr_range_sync ts ~origin:0 ~attr:"age" ~lo:(Value.I 0) ~hi:(Value.I 100)
      in
      check Alcotest.int (name ^ ": only ages") 2 (List.length triples);
      List.iter (fun (tr : Triple.t) -> check Alcotest.string "attr" "age" tr.Triple.attr) triples)

let test_tstore_by_attr_all () =
  with_both_substrates (fun name ts ->
      load_fig3 ts;
      let triples, _ = Tstore.by_attr_all_sync ts ~origin:1 ~attr:"title" in
      check Alcotest.int (name ^ ": all titles") 2 (List.length triples))

let test_tstore_by_value () =
  with_both_substrates (fun name ts ->
      load_fig3 ts;
      (* The v index finds "ICDE" wherever it appears: published_in of p1
         and series of c1. *)
      let triples, _ = Tstore.by_value_sync ts ~origin:4 (Value.S "ICDE") in
      check Alcotest.int (name ^ ": two attrs carry ICDE") 2 (List.length triples);
      let attrs = List.map (fun (tr : Triple.t) -> tr.Triple.attr) triples |> List.sort compare in
      check Alcotest.(list string) (name ^ ": attrs") [ "published_in"; "series" ] attrs)

let test_tstore_string_prefix () =
  with_both_substrates (fun name ts ->
      load_fig3 ts;
      let triples, _ =
        Tstore.by_attr_string_prefix_sync ts ~origin:0 ~attr:"confname" ~string_prefix:"ICDE"
      in
      check Alcotest.int (name ^ ": ICDE confs") 1 (List.length triples))

let test_tstore_scan () =
  with_both_substrates (fun name ts ->
      load_fig3 ts;
      let triples, meta =
        Tstore.scan_sync ts ~origin:0 ~pred:(fun tr ->
            match Value.as_int tr.Triple.value with Some i -> i > 2000 | None -> false)
      in
      Alcotest.(check bool) (name ^ ": complete") true meta.Tstore.complete;
      check Alcotest.int (name ^ ": years found by flooding") 2 (List.length triples))

let test_tstore_similar_qgram () =
  let pg = make_pgrid_dht ~sample:(sample_keys_of_tuples fig3_tuples) () in
  let ts = Tstore.create pg in
  load_fig3 ts;
  (* "similarty queries" (typo) within distance 2 of the stored title. *)
  Alcotest.(check bool) "qgram applicable" true
    (Tstore.qgram_applicable ts ~pattern:"similarty queries" ~d:2);
  let triples, meta = Tstore.similar_sync ts ~origin:0 ~pattern:"similarty queries" ~d:2 () in
  Alcotest.(check bool) "complete" true meta.Tstore.complete;
  (match triples with
  | [ tr ] -> check Alcotest.string "found the title" "p1" tr.Triple.oid
  | l -> Alcotest.failf "expected 1 match, got %d" (List.length l));
  (* Attribute restriction filters out matches on other attributes. *)
  let none, _ =
    Tstore.similar_sync ts ~origin:0 ~attr:"confname" ~pattern:"similarty queries" ~d:2 ()
  in
  check Alcotest.int "restricted to confname" 0 (List.length none)

let test_tstore_similar_fallback () =
  let pg = make_pgrid_dht ~sample:(sample_keys_of_tuples fig3_tuples) () in
  let ts = Tstore.create pg in
  load_fig3 ts;
  (* Short pattern + large d: the count bound collapses, so the q-gram
     index cannot guarantee completeness and the scan fallback fires. *)
  Alcotest.(check bool) "not applicable" false (Tstore.qgram_applicable ts ~pattern:"ICDE" ~d:2);
  let triples, _ = Tstore.similar_sync ts ~origin:0 ~attr:"series" ~pattern:"ICDA" ~d:2 () in
  (match triples with
  | [ tr ] -> (
    match Value.as_string tr.Triple.value with
    | Some s -> check Alcotest.string "found by fallback" "ICDE" s
    | None -> Alcotest.fail "non-string match")
  | l -> Alcotest.failf "expected 1 match, got %d" (List.length l))

let test_tstore_similar_equals_scan () =
  (* The q-gram path must return exactly what flooding returns. *)
  let pg = make_pgrid_dht ~sample:[] ~n:16 () in
  let ts = Tstore.create pg in
  let words = [ "karnstedt"; "karnstadt"; "sattler"; "hauswirth"; "schmidt"; "karlstedt" ] in
  List.iteri
    (fun i w ->
      ignore (Tstore.insert_sync ts ~origin:0 (Triple.make ~oid:(Printf.sprintf "o%d" i) ~attr:"name" (Value.S w))))
    words;
  let via_index, _ = Tstore.similar_sync ts ~origin:0 ~pattern:"karnstedt" ~d:2 () in
  let via_scan, _ =
    Tstore.scan_sync ts ~origin:0 ~pred:(fun tr ->
        match Value.as_string tr.Triple.value with
        | Some s -> Unistore_util.Strdist.within_distance "karnstedt" s 2
        | None -> false)
  in
  let norm l = List.map Triple.id l |> List.sort compare in
  check Alcotest.(list string) "index = scan" (norm via_scan) (norm via_index);
  check Alcotest.int "three matches" 3 (List.length via_index)

let test_tstore_mappings () =
  with_both_substrates (fun name ts ->
      load_fig3 ts;
      Alcotest.(check bool)
        (name ^ ": mapping stored")
        true
        (Tstore.add_mapping_sync ts ~origin:0 "name" "fullname");
      Alcotest.(check bool)
        (name ^ ": chained mapping stored")
        true
        (Tstore.add_mapping_sync ts ~origin:1 "fullname" "person_name");
      let eq = Tstore.equivalent_attrs_sync ts ~origin:2 "name" in
      check
        Alcotest.(list string)
        (name ^ ": closure")
        [ "fullname"; "name"; "person_name" ]
        eq)

let test_tstore_containing () =
  with_both_substrates (fun name ts ->
      load_fig3 ts;
      (* 'skyline' occurs inside one title; 'ICDE' inside confname/series/
         published_in values. *)
      let hits, meta = Tstore.containing_sync ts ~origin:1 ~pattern:"skyline" () in
      Alcotest.(check bool) (name ^ ": complete") true meta.Tstore.complete;
      (match hits with
      | [ tr ] -> check Alcotest.string (name ^ ": found in titles") "p2" tr.Triple.oid
      | l -> Alcotest.failf "%s: expected 1 hit, got %d" name (List.length l));
      (* Attribute restriction. *)
      let hits, _ = Tstore.containing_sync ts ~origin:2 ~attr:"series" ~pattern:"ICD" () in
      check Alcotest.int (name ^ ": ICD in series") 1 (List.length hits);
      (* Must equal the flooding answer. *)
      let via_scan, _ =
        Tstore.scan_sync ts ~origin:3 ~pred:(fun tr ->
            match Unistore_triple.Value.as_string tr.Triple.value with
            | Some s ->
              let rec go i =
                i + 3 <= String.length s && (String.sub s i 3 = "ICD" || go (i + 1))
              in
              go 0
            | None -> false)
      in
      let via_index, _ = Tstore.containing_sync ts ~origin:4 ~pattern:"ICD" () in
      let norm l = List.map Triple.id l |> List.sort compare in
      check Alcotest.(list string) (name ^ ": index = scan") (norm via_scan) (norm via_index))

let test_tstore_containing_fallback () =
  let pg = make_pgrid_dht ~sample:(sample_keys_of_tuples fig3_tuples) () in
  let ts = Tstore.create pg in
  load_fig3 ts;
  Alcotest.(check bool) "short pattern not applicable" false
    (Tstore.substring_applicable ts ~pattern:"ab");
  (* Short patterns still answer correctly via flooding. *)
  let hits, _ = Tstore.containing_sync ts ~origin:0 ~attr:"name" ~pattern:"ob" () in
  match hits with
  | [ tr ] -> check Alcotest.string "bob found" "a2" tr.Triple.oid
  | l -> Alcotest.failf "expected 1 hit, got %d" (List.length l)

let test_tstore_delete () =
  with_both_substrates (fun name ts ->
      load_fig3 ts;
      let tr = Triple.make ~oid:"a1" ~attr:"age" (Value.I 30) in
      Alcotest.(check bool) (name ^ ": delete ok") true (Tstore.delete_sync ts ~origin:3 tr);
      (* Gone from every access path. *)
      let by_av, _ = Tstore.by_attr_value_sync ts ~origin:1 ~attr:"age" (Value.I 30) in
      Alcotest.(check bool)
        (name ^ ": gone from A#v")
        true
        (List.for_all (fun (x : Triple.t) -> x.Triple.oid <> "a1") by_av);
      let by_oid, _ = Tstore.by_oid_sync ts ~origin:2 "a1" in
      check Alcotest.int (name ^ ": tuple lost one field") 2 (List.length by_oid);
      let by_v, _ = Tstore.by_value_sync ts ~origin:4 (Value.I 30) in
      Alcotest.(check bool)
        (name ^ ": gone from v")
        true
        (List.for_all (fun (x : Triple.t) -> x.Triple.oid <> "a1") by_v))

let test_tstore_update_value () =
  with_both_substrates (fun name ts ->
      load_fig3 ts;
      Alcotest.(check bool)
        (name ^ ": update ok")
        true
        (Tstore.update_value_sync ts ~origin:0 ~oid:"a1" ~attr:"age" ~old_value:(Value.I 30)
           (Value.I 31));
      let old_hits, _ = Tstore.by_attr_value_sync ts ~origin:1 ~attr:"age" (Value.I 30) in
      Alcotest.(check bool)
        (name ^ ": old value unfindable")
        true
        (List.for_all (fun (x : Triple.t) -> x.Triple.oid <> "a1") old_hits);
      let new_hits, _ = Tstore.by_attr_value_sync ts ~origin:2 ~attr:"age" (Value.I 31) in
      check Alcotest.int (name ^ ": new value findable") 1 (List.length new_hits);
      (* Range queries see the new value exactly once. *)
      let in_range, _ =
        Tstore.by_attr_range_sync ts ~origin:3 ~attr:"age" ~lo:(Value.I 31) ~hi:(Value.I 31)
      in
      check Alcotest.int (name ^ ": range sees update") 1 (List.length in_range))

let test_tstore_insert_counts_messages () =
  let pg = make_pgrid_dht ~sample:[] ~n:16 () in
  let ts = Tstore.create ~qgrams:false pg in
  let dht = Tstore.dht ts in
  let before = dht.Dht.total_sent () in
  ignore (Tstore.insert_sync ts ~origin:0 (Triple.make ~oid:"o" ~attr:"a" (Value.I 1)));
  let msgs = dht.Dht.total_sent () - before in
  (* Three index entries, each routed through the overlay. *)
  Alcotest.(check bool) (Printf.sprintf "3 index inserts cost messages (%d)" msgs) true (msgs >= 3)

let () =
  Alcotest.run "unistore_triple"
    [
      ( "value",
        [
          Alcotest.test_case "type order" `Quick test_value_compare_types;
          Alcotest.test_case "decode garbage" `Quick test_value_decode_garbage;
          Alcotest.test_case "type bounds" `Quick test_value_type_bounds;
          Alcotest.test_case "numeric view" `Quick test_value_numeric_view;
          prop_value_encode_order;
          prop_value_roundtrip;
        ] );
      ( "triple",
        [
          Alcotest.test_case "validation" `Quick test_triple_validation;
          Alcotest.test_case "deserialize garbage" `Quick test_triple_deserialize_garbage;
          Alcotest.test_case "namespace" `Quick test_triple_namespace;
          Alcotest.test_case "tuple decomposition (Fig. 2)" `Quick test_tuple_decomposition;
          Alcotest.test_case "id stability" `Quick test_triple_id_stable;
          prop_triple_serialize_roundtrip;
        ] );
      ( "keys",
        [
          Alcotest.test_case "families disjoint" `Quick test_keys_families_disjoint;
          Alcotest.test_case "attr region" `Quick test_keys_attr_region_contains;
          Alcotest.test_case "attr prefix isolated" `Quick test_keys_attr_prefix_isolated;
        ] );
      ( "tstore",
        [
          Alcotest.test_case "by_oid" `Quick test_tstore_by_oid;
          Alcotest.test_case "by_attr_value" `Quick test_tstore_by_attr_value;
          Alcotest.test_case "by_attr_range" `Quick test_tstore_by_attr_range;
          Alcotest.test_case "range excludes other attrs" `Quick test_tstore_range_excludes_other_attrs;
          Alcotest.test_case "by_attr_all" `Quick test_tstore_by_attr_all;
          Alcotest.test_case "by_value" `Quick test_tstore_by_value;
          Alcotest.test_case "string prefix" `Quick test_tstore_string_prefix;
          Alcotest.test_case "scan (flooding)" `Quick test_tstore_scan;
          Alcotest.test_case "similar via q-grams" `Quick test_tstore_similar_qgram;
          Alcotest.test_case "similar fallback" `Quick test_tstore_similar_fallback;
          Alcotest.test_case "similar = scan" `Quick test_tstore_similar_equals_scan;
          Alcotest.test_case "schema mappings" `Quick test_tstore_mappings;
          Alcotest.test_case "insert message cost" `Quick test_tstore_insert_counts_messages;
          Alcotest.test_case "substring search" `Quick test_tstore_containing;
          Alcotest.test_case "substring fallback" `Quick test_tstore_containing_fallback;
          Alcotest.test_case "delete" `Quick test_tstore_delete;
          Alcotest.test_case "update value" `Quick test_tstore_update_value;
        ] );
    ]
