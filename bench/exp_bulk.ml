(* E-bulk: the bulk-operation pipeline, measured.

   Two identical deployments — same seed, same dataset, same workload —
   differ only in the batch configuration: one routes every operation
   per item (the `no_batch` baseline), the other runs the full pipeline
   (batched shower inserts, in-network range aggregation, multi-key
   bind-join probes). Three phases:

   - bulk load: the whole publications dataset inserted via
     {!Unistore.load}. Batched, each origin's triples travel as one
     splitting [InsertBatch] with per-region [AckBatch] replies; the
     per-item baseline routes one Insert + one Ack per index entry
     (messages, bytes, latency);
   - narrow range scans: repeated small windows over the `year`
     attribute. Batched, [RangeHit] replies converge-cast up the split
     tree, merging per hop and eliding single-child chains (bytes);
   - a bind-join workload: queries whose probe rounds ship many bound
     keys. Batched, deduplicated keys travel as region-splitting
     [MultiLookup]s instead of one routed lookup per key (messages).

   Both arms must return identical rows — asserted here, not just in
   the test suite. Writes BENCH_bulk.json; `make bench-smoke` runs the
   small variant without touching the file. *)

module Rng = Unistore_util.Rng
module Metrics = Unistore_obs.Metrics
module Json = Unistore_obs.Json
module Publications = Unistore_workload.Publications
module Binding = Unistore_qproc.Binding
module Keys = Unistore_triple.Keys

let out_file = "BENCH_bulk.json"

type arm = {
  label : string;
  load_messages : int;
  load_bytes : int;
  load_latency : float;
  load_stored : int;
  bulk_batches : int;
  retransmits : int;
  range_messages : int;
  range_bytes : int;
  range_rows : string list;
  agg_elided : int;
  wide_messages : int;
  wide_bytes : int;
  wide_rows : string list;
  wide_origin_hits : int;
  agg_merged : int;
  join_messages : int;
  join_latency : float;
  join_rows : string list;
  probe_batches : int;
}

(* Narrow windows: a handful of rows per scan, so the shower's
   traversal overhead — routed [Range] forwards and per-node reply
   headers — dominates the item payload. That is the regime in-network
   aggregation is built for: single-child chains forward their child's
   token instead of emitting an empty [RangeHit] of their own. *)
let range_queries =
  [
    "SELECT ?a,?g WHERE { (?a,'age',?g) FILTER ?g >= 25 FILTER ?g <= 27 }";
    "SELECT ?a,?g WHERE { (?a,'age',?g) FILTER ?g >= 33 FILTER ?g <= 35 }";
    "SELECT ?a,?g WHERE { (?a,'age',?g) FILTER ?g >= 41 FILTER ?g <= 43 }";
    "SELECT ?a,?g WHERE { (?a,'age',?g) FILTER ?g >= 50 FILTER ?g <= 52 }";
    "SELECT ?p,?y WHERE { (?p,'year',?y) FILTER ?y >= 1999 FILTER ?y <= 1999 }";
    "SELECT ?p,?y WHERE { (?p,'year',?y) FILTER ?y >= 2004 FILTER ?y <= 2004 }";
  ]

let range_origins = [| 5; 11; 23; 2 |]

(* Whole-attribute windows: the shower fans out to every leaf of the
   region, so the reply tree has real forks — the converge-cast merges
   child hits per hop and the origin receives one reply instead of one
   per visited node (the inbound-concentration relief; total bytes go
   the other way, since merge points retransmit their subtree's items). *)
let wide_origin = 9

let wide_queries =
  [
    "SELECT ?a,?g WHERE { (?a,'age',?g) FILTER ?g >= 24 FILTER ?g <= 68 }";
    "SELECT ?p,?y WHERE { (?p,'year',?y) FILTER ?y >= 1998 FILTER ?y <= 2007 }";
  ]

(* The second pattern's attribute is a variable, so its only bulk
   access is flooding — the probe round over the year-bound OIDs is
   the cheap plan, and with multi-key probes its message cost scales
   with touched regions instead of bound keys. The third query is a
   conventional chain join for contrast. *)
let join_queries =
  [
    "SELECT ?a,?att,?v WHERE { (?a,'num_of_pubs',2) (?a,?att,?v) }";
    "SELECT ?a,?att,?v WHERE { (?a,'num_of_pubs',3) (?a,?att,?v) }";
    "SELECT ?a,?att,?v WHERE { (?a,'num_of_pubs',4) (?a,?att,?v) }";
    "SELECT ?n,?t WHERE { (?a,'name',?n) (?a,'has_published',?t) (?p,'title',?t) }";
  ]

(* Sorted row fingerprints: order-independent result identity. *)
let row_set (r : Unistore.Report.report) =
  List.sort compare (List.map Binding.fingerprint r.Unistore.Report.rows)

let run_arm ~peers ~authors ~scans ~batched () =
  let batch = if batched then Unistore.default_batch_config else Unistore.no_batch in
  let rng = Rng.create 43 in
  let ds =
    Publications.generate rng { Publications.default_params with n_authors = authors }
  in
  (* Caching off in both arms: this experiment isolates batching, and a
     result-cache hit would zero out repeated queries on both sides.
     The q-gram index is off too — none of the workloads use similarity
     selections, and its keys otherwise dominate the key space, leaving
     the attribute regions the range scans traverse too small to span
     several peers. The trie is shaped accordingly (three-way index
     keys only). *)
  let sample_keys =
    List.concat_map
      (fun (tr : Unistore.Triple.t) ->
        [
          Keys.oid_key tr.Unistore.Triple.oid;
          Keys.attr_value_key tr.Unistore.Triple.attr tr.Unistore.Triple.value;
          Keys.value_key tr.Unistore.Triple.value;
        ])
      ds.Publications.triples
  in
  let store =
    Unistore.create ~sample_keys
      {
        Unistore.default_config with
        peers;
        seed = 42;
        qgram_index = false;
        cache = Unistore.no_cache;
        batch;
      }
  in
  let m = Unistore.metrics store in
  (* Phase 1: bulk load. *)
  Metrics.clear m;
  let t0 = Unistore.now store in
  let load_stored = Unistore.load store ds.Publications.tuples in
  let load_latency = Unistore.now store -. t0 in
  Unistore.settle store;
  let load_messages = Metrics.counter m "net.sent" in
  let load_bytes = Metrics.counter m "net.bytes.sent" in
  let bulk_batches = Metrics.counter m "batch.bulk.batches" in
  let retransmits = Metrics.counter m "batch.retransmit" in
  Unistore.set_stats_of_triples store ds.Publications.triples;
  (* Phase 2: narrow range scans. *)
  Metrics.clear m;
  let range_rows = ref [] in
  for round = 1 to scans do
    List.iteri
      (fun i vql ->
        let origin = range_origins.((round + i) mod Array.length range_origins) in
        let r = Common.run_query_exn store ~origin vql in
        if not r.Unistore.Report.complete then failwith "bulk bench range query incomplete";
        range_rows := List.rev_append (row_set r) !range_rows)
      range_queries
  done;
  let range_messages = Metrics.counter m "net.sent" in
  let range_bytes = Metrics.counter m "net.bytes.sent" in
  let agg_elided = Metrics.counter m "batch.agg.elided" in
  (* Phase 2b: whole-attribute scans, traced to count how many range
     replies converge on the querying peer. *)
  Metrics.clear m;
  let trace = Unistore.start_trace store in
  let wide_rows = ref [] in
  List.iter
    (fun vql ->
      let r = Common.run_query_exn store ~origin:wide_origin vql in
      if not r.Unistore.Report.complete then failwith "bulk bench wide scan incomplete";
      wide_rows := List.rev_append (row_set r) !wide_rows)
    wide_queries;
  Unistore.stop_trace store;
  let wide_origin_hits =
    List.length
      (List.filter
         (fun (e : Unistore_sim.Trace.event) ->
           String.equal e.Unistore_sim.Trace.kind "range-hit"
           && e.Unistore_sim.Trace.dst = wide_origin)
         (Unistore_sim.Trace.events trace))
  in
  let wide_messages = Metrics.counter m "net.sent" in
  let wide_bytes = Metrics.counter m "net.bytes.sent" in
  let agg_merged = Metrics.counter m "batch.agg.merged" in
  (* Phase 3: bind-join probe rounds. *)
  Metrics.clear m;
  let t0 = Unistore.now store in
  let join_rows = ref [] in
  List.iter
    (fun vql ->
      let r = Common.run_query_exn store ~origin:7 vql in
      if not r.Unistore.Report.complete then failwith "bulk bench join query incomplete";
      join_rows := List.rev_append (row_set r) !join_rows)
    join_queries;
  let join_messages = Metrics.counter m "net.sent" in
  let join_latency = Unistore.now store -. t0 in
  {
    label = (if batched then "batched" else "unbatched");
    load_messages;
    load_bytes;
    load_latency;
    load_stored;
    bulk_batches;
    retransmits;
    range_messages;
    range_bytes;
    range_rows = List.sort compare !range_rows;
    agg_elided;
    wide_messages;
    wide_bytes;
    wide_rows = List.sort compare !wide_rows;
    wide_origin_hits;
    agg_merged;
    join_messages;
    join_latency;
    join_rows = List.sort compare !join_rows;
    probe_batches = Metrics.counter m "batch.probe.batches";
  }

let arm_json a =
  Json.Obj
    [
      ("label", Json.Str a.label);
      ( "load",
        Json.Obj
          [
            ("messages", Json.Int a.load_messages);
            ("bytes", Json.Int a.load_bytes);
            ("latency_ms", Json.Float a.load_latency);
            ("triples_stored", Json.Int a.load_stored);
            ("insert_batches", Json.Int a.bulk_batches);
            ("retransmits", Json.Int a.retransmits);
          ] );
      ( "narrow_range_scans",
        Json.Obj
          [
            ("messages", Json.Int a.range_messages);
            ("bytes", Json.Int a.range_bytes);
            ("rows", Json.Int (List.length a.range_rows));
            ("hits_elided", Json.Int a.agg_elided);
          ] );
      ( "wide_range_scans",
        Json.Obj
          [
            ("messages", Json.Int a.wide_messages);
            ("bytes", Json.Int a.wide_bytes);
            ("rows", Json.Int (List.length a.wide_rows));
            ("replies_into_origin", Json.Int a.wide_origin_hits);
            ("hits_merged_in_network", Json.Int a.agg_merged);
          ] );
      ( "bind_joins",
        Json.Obj
          [
            ("messages", Json.Int a.join_messages);
            ("latency_ms", Json.Float a.join_latency);
            ("rows", Json.Int (List.length a.join_rows));
            ("probe_batches", Json.Int a.probe_batches);
          ] );
    ]

let reduction ~unbatched ~batched =
  if unbatched <= 0.0 then 0.0 else (unbatched -. batched) /. unbatched

let ired ~unbatched ~batched =
  reduction ~unbatched:(float_of_int unbatched) ~batched:(float_of_int batched)

let measure ~peers ~authors ~scans =
  let unbatched = run_arm ~peers ~authors ~scans ~batched:false () in
  let batched = run_arm ~peers ~authors ~scans ~batched:true () in
  if unbatched.load_stored <> batched.load_stored then
    failwith "bulk bench: arms stored different triple counts";
  if not (List.equal String.equal unbatched.range_rows batched.range_rows) then
    failwith "bulk bench: range arms returned different rows";
  if not (List.equal String.equal unbatched.wide_rows batched.wide_rows) then
    failwith "bulk bench: wide-scan arms returned different rows";
  if not (List.equal String.equal unbatched.join_rows batched.join_rows) then
    failwith "bulk bench: join arms returned different rows";
  let load_msg_red = ired ~unbatched:unbatched.load_messages ~batched:batched.load_messages in
  let load_byte_red = ired ~unbatched:unbatched.load_bytes ~batched:batched.load_bytes in
  let range_byte_red = ired ~unbatched:unbatched.range_bytes ~batched:batched.range_bytes in
  let range_msg_red = ired ~unbatched:unbatched.range_messages ~batched:batched.range_messages in
  let origin_hit_red =
    ired ~unbatched:unbatched.wide_origin_hits ~batched:batched.wide_origin_hits
  in
  let join_msg_red = ired ~unbatched:unbatched.join_messages ~batched:batched.join_messages in
  Common.print_table
    [ "metric"; "unbatched"; "batched"; "reduction" ]
    [
      [ "load messages"; Common.i unbatched.load_messages; Common.i batched.load_messages;
        Common.pct load_msg_red ];
      [ "load bytes"; Common.i unbatched.load_bytes; Common.i batched.load_bytes;
        Common.pct load_byte_red ];
      [ "load latency (ms)"; Common.f1 unbatched.load_latency; Common.f1 batched.load_latency;
        Common.pct
          (reduction ~unbatched:unbatched.load_latency ~batched:batched.load_latency) ];
      [ "narrow scan messages"; Common.i unbatched.range_messages;
        Common.i batched.range_messages; Common.pct range_msg_red ];
      [ "narrow scan bytes"; Common.i unbatched.range_bytes; Common.i batched.range_bytes;
        Common.pct range_byte_red ];
      [ "wide scan replies into origin"; Common.i unbatched.wide_origin_hits;
        Common.i batched.wide_origin_hits; Common.pct origin_hit_red ];
      [ "bind-join messages"; Common.i unbatched.join_messages; Common.i batched.join_messages;
        Common.pct join_msg_red ];
    ];
  Printf.printf
    "\nbatched arm: %d insert batches, %d probe batches, %d hits elided on narrow scans, %d \
     merged in-network on wide scans, %d retransmits; identical rows in both arms\n"
    batched.bulk_batches batched.probe_batches batched.agg_elided batched.agg_merged
    batched.retransmits;
  (unbatched, batched, load_msg_red, range_byte_red, origin_hit_red, join_msg_red)

let run () =
  Common.section "E-bulk: bulk-operation pipeline"
    "batched splitting inserts cut bulk-load traffic by the per-item routing factor; \
     converge-cast aggregation trims range-scan reply bytes; multi-key probes make \
     bind-join rounds scale with touched regions, not bound keys";
  let peers, authors, scans = (192, 60, 10) in
  let unbatched, batched, load_msg_red, range_byte_red, origin_hit_red, join_msg_red =
    measure ~peers ~authors ~scans
  in
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Int 1);
        ( "description",
          Json.Str
            "UniStore bulk-operation pipeline: identical deployments and workloads, batching \
             disabled (per-item baseline) vs enabled. Load phase: the publications dataset \
             via splitting InsertBatch messages. Narrow-scan phase: repeated small windows \
             over 'age'/'year' (single-child chains elide their empty hits). Wide-scan \
             phase: whole-attribute windows (converge-cast merging; replies into the origin \
             counted from a trace). Join phase: bind-join queries (multi-key probes). Both \
             arms returned identical rows. Regenerate with `dune exec bench/main.exe -- \
             bulk` (or `make bench-bulk`). See EXPERIMENTS.md, section 'Bulk operations'." );
        ( "config",
          Json.Obj
            [
              ("peers", Json.Int peers);
              ("seed", Json.Int 42);
              ("latency_model", Json.Str "lan");
              ("workload", Json.Str (Printf.sprintf "publications(authors=%d)" authors));
              ("range_scan_rounds", Json.Int scans);
              ("caching", Json.Str "disabled in both arms");
            ] );
        ("unbatched", arm_json unbatched);
        ("batched", arm_json batched);
        ( "reductions",
          Json.Obj
            [
              ("load_messages", Json.Float load_msg_red);
              ( "load_bytes",
                Json.Float (ired ~unbatched:unbatched.load_bytes ~batched:batched.load_bytes) );
              ("narrow_scan_bytes", Json.Float range_byte_red);
              ( "narrow_scan_messages",
                Json.Float
                  (ired ~unbatched:unbatched.range_messages ~batched:batched.range_messages) );
              ("wide_scan_replies_into_origin", Json.Float origin_hit_red);
              ("bind_join_messages", Json.Float join_msg_red);
            ] );
      ]
  in
  let oc = open_out out_file in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" out_file

(* The CI smoke variant: small enough for a PR gate, asserts the
   pipeline engages and pays for itself, writes no file. *)
let run_smoke () =
  Common.section "E-bulk (smoke)" "bulk-operation pipeline engages and pays for itself";
  let _, batched, load_msg_red, range_byte_red, origin_hit_red, join_msg_red =
    measure ~peers:128 ~authors:20 ~scans:5
  in
  if batched.bulk_batches = 0 then failwith "bench-smoke: no insert batches";
  if batched.probe_batches = 0 then failwith "bench-smoke: no multi-key probe batches";
  if batched.agg_merged = 0 then failwith "bench-smoke: no in-network range aggregation";
  if load_msg_red < 0.4 then
    failwith
      (Printf.sprintf "bench-smoke: bulk-load message reduction %.0f%% < 40%%"
         (100.0 *. load_msg_red));
  if range_byte_red <= 0.0 then failwith "bench-smoke: range aggregation saved no bytes";
  if origin_hit_red <= 0.0 then
    failwith "bench-smoke: converge-cast did not concentrate wide-scan replies";
  if join_msg_red <= 0.0 then failwith "bench-smoke: multi-key probes saved no messages";
  Printf.printf "\nbench-smoke: OK\n"
