(* E-cache: the multi-level caching subsystem (lib/cache), measured.

   Two identical deployments — same seed, same dataset, same workload —
   differ only in the cache configuration: one runs with every level
   disabled (the uncached baseline), the other with the defaults
   (routing shortcuts, result caches, gossiped statistics). Two phases:

   - repeated skewed lookups from a few client origins: routing
     shortcuts should collapse the O(log n) greedy walk into a direct
     hop for popular regions (mean hops, messages, latency);
   - a repeated-query VQL workload from one origin: the result cache
     should absorb re-executed accesses and bind-join probes entirely
     (messages, latency, hit/miss counters), while the optimizer plans
     from gossiped statistics instead of the oracle.

   Writes BENCH_cache.json; `make bench-smoke` runs the small variant
   without touching the file. *)

module Rng = Unistore_util.Rng
module Metrics = Unistore_obs.Metrics
module Histogram = Unistore_obs.Histogram
module Json = Unistore_obs.Json
module Publications = Unistore_workload.Publications
module Keys = Unistore_triple.Keys
module Dht = Unistore_triple.Dht
module Triple = Unistore.Triple

let out_file = "BENCH_cache.json"

(* Skewed popularity: index ~ n * u^3 concentrates most draws on the
   first few keys, like repeated point queries for hot items. *)
let skewed_index rng n = int_of_float (float_of_int n *. (Rng.float rng ** 3.0))

type arm = {
  label : string;
  mean_hops : float;
  p95_hops : float;
  lookup_messages : int;
  lookup_latency_mean : float;
  shortcut_hits : int;
  shortcut_misses : int;
  query_messages : int;
  query_latency : float;
  result_hits : int;
  result_misses : int;
  bind_hits : int;
  bind_misses : int;
  gossip_messages : int;
  planned_cost : float;
}

let queries =
  [
    "SELECT ?n,?age WHERE { (?a,'name',?n) (?a,'age',?age) FILTER ?age > 30 }";
    "SELECT ?t,?y WHERE { (?p,'title',?t) (?p,'year',?y) FILTER ?y >= 2000 } ORDER BY ?y DESC \
     LIMIT 5";
    "SELECT ?n,?t WHERE { (?a,'name',?n) (?a,'has_published',?t) (?p,'title',?t) }";
  ]

let run_arm ~peers ~authors ~lookups ~repeats ~cached () =
  let cache = if cached then Unistore.default_cache_config else Unistore.no_cache in
  let store, ds = Common.build_pubs ~peers ~authors ~cache () in
  let m = Unistore.metrics store in
  (* Statistics gossip (cached arm only): sample + push until summaries
     have spread; its message cost is accounted separately below. *)
  Metrics.clear m;
  if cached then
    for _ = 1 to 4 do
      Unistore.gossip_stats_round store
    done;
  let gossip_messages = Metrics.counter m "net.sent" in
  (* Phase 1: skewed repeated lookups from a handful of clients. *)
  Metrics.clear m;
  let rng = Rng.create 4242 in
  let triples = Array.of_list ds.Publications.triples in
  let clients = [| 1; 9; 17; 25 |] in
  let dht = Unistore.dht store in
  for _ = 1 to lookups do
    let tr = triples.(skewed_index rng (Array.length triples)) in
    let origin = clients.(Rng.int rng (Array.length clients)) in
    let key = Keys.attr_value_key tr.Triple.attr tr.Triple.value in
    ignore (Dht.lookup_sync dht ~origin ~key)
  done;
  let hops = Metrics.histogram m "overlay.lookup.hops" in
  let lat = Metrics.histogram m "overlay.lookup.latency_ms" in
  let mean_hops = Histogram.mean hops in
  let p95_hops = Histogram.percentile hops 95.0 in
  let lookup_messages = Metrics.counter m "net.sent" in
  let lookup_latency_mean = Histogram.mean lat in
  let shortcut_hits = Metrics.counter m "cache.shortcut.hit" in
  let shortcut_misses = Metrics.counter m "cache.shortcut.miss" in
  (* Phase 2: a repeated VQL workload from one origin. *)
  Metrics.clear m;
  let t0 = Unistore.now store in
  let planned_cost = ref 0.0 in
  for round = 1 to repeats do
    List.iter
      (fun vql ->
        let r = Common.run_query_exn store ~origin:3 vql in
        if not r.Unistore.Report.complete then failwith "cache bench query incomplete";
        if round = 1 then
          planned_cost :=
            !planned_cost
            +. Unistore_qproc.Cost.objective
                 r.Unistore.Report.plan.Unistore_qproc.Physical.total_est)
      queries
  done;
  let query_messages = Metrics.counter m "net.sent" in
  let query_latency = Unistore.now store -. t0 in
  {
    label = (if cached then "cached" else "uncached");
    mean_hops;
    p95_hops;
    lookup_messages;
    lookup_latency_mean;
    shortcut_hits;
    shortcut_misses;
    query_messages;
    query_latency;
    result_hits = Metrics.counter m "cache.result.hit";
    result_misses = Metrics.counter m "cache.result.miss";
    bind_hits = Metrics.counter m "cache.bind.hit";
    bind_misses = Metrics.counter m "cache.bind.miss";
    gossip_messages;
    planned_cost = !planned_cost;
  }

let arm_json a =
  Json.Obj
    [
      ("label", Json.Str a.label);
      ( "lookups",
        Json.Obj
          [
            ("mean_hops", Json.Float a.mean_hops);
            ("p95_hops", Json.Float a.p95_hops);
            ("messages", Json.Int a.lookup_messages);
            ("mean_latency_ms", Json.Float a.lookup_latency_mean);
            ("shortcut_hits", Json.Int a.shortcut_hits);
            ("shortcut_misses", Json.Int a.shortcut_misses);
          ] );
      ( "queries",
        Json.Obj
          [
            ("messages", Json.Int a.query_messages);
            ("latency_ms", Json.Float a.query_latency);
            ("result_hits", Json.Int a.result_hits);
            ("result_misses", Json.Int a.result_misses);
            ("bind_hits", Json.Int a.bind_hits);
            ("bind_misses", Json.Int a.bind_misses);
            ("planned_cost_first_round", Json.Float a.planned_cost);
          ] );
      ("stats_gossip_messages", Json.Int a.gossip_messages);
    ]

let reduction ~uncached ~cached =
  if uncached <= 0.0 then 0.0 else (uncached -. cached) /. uncached

let measure ~peers ~authors ~lookups ~repeats =
  let uncached = run_arm ~peers ~authors ~lookups ~repeats ~cached:false () in
  let cached = run_arm ~peers ~authors ~lookups ~repeats ~cached:true () in
  let hops_red = reduction ~uncached:uncached.mean_hops ~cached:cached.mean_hops in
  let lookup_msg_red =
    reduction
      ~uncached:(float_of_int uncached.lookup_messages)
      ~cached:(float_of_int cached.lookup_messages)
  in
  let query_msg_red =
    reduction
      ~uncached:(float_of_int uncached.query_messages)
      ~cached:(float_of_int cached.query_messages)
  in
  Common.print_table
    [ "metric"; "uncached"; "cached"; "reduction" ]
    [
      [ "mean lookup hops"; Common.f2 uncached.mean_hops; Common.f2 cached.mean_hops;
        Common.pct hops_red ];
      [ "lookup messages"; Common.i uncached.lookup_messages; Common.i cached.lookup_messages;
        Common.pct lookup_msg_red ];
      [ "mean lookup latency (ms)"; Common.f1 uncached.lookup_latency_mean;
        Common.f1 cached.lookup_latency_mean;
        Common.pct
          (reduction ~uncached:uncached.lookup_latency_mean ~cached:cached.lookup_latency_mean) ];
      [ "query workload messages"; Common.i uncached.query_messages;
        Common.i cached.query_messages; Common.pct query_msg_red ];
      [ "query workload latency (ms)"; Common.f1 uncached.query_latency;
        Common.f1 cached.query_latency;
        Common.pct (reduction ~uncached:uncached.query_latency ~cached:cached.query_latency) ];
    ];
  Printf.printf
    "\ncached arm: %d/%d shortcut hits, %d result + %d bind-probe cache hits, %d gossip msgs\n"
    cached.shortcut_hits
    (cached.shortcut_hits + cached.shortcut_misses)
    cached.result_hits cached.bind_hits cached.gossip_messages;
  (uncached, cached, hops_red, lookup_msg_red, query_msg_red)

let run () =
  Common.section "E-cache: multi-level caching subsystem"
    "routing shortcuts beat the O(log n) hop bound for repeated traffic; result caches \
     absorb repeated accesses; the optimizer plans from gossiped statistics instead of a \
     statistics oracle";
  let peers, authors, lookups, repeats = (64, 40, 400, 5) in
  let uncached, cached, hops_red, lookup_msg_red, query_msg_red =
    measure ~peers ~authors ~lookups ~repeats
  in
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Int 1);
        ( "description",
          Json.Str
            "UniStore caching subsystem (lib/cache): identical deployments and workloads, \
             caching disabled vs enabled. Lookup phase: skewed repeated key lookups from 4 \
             client origins (routing-shortcut cache). Query phase: 3 VQL queries repeated 5 \
             times from one origin (result + bind caches, gossiped statistics). Regenerate \
             with `dune exec bench/main.exe -- cache`. See EXPERIMENTS.md, section \
             'Caching'." );
        ( "config",
          Json.Obj
            [
              ("peers", Json.Int peers);
              ("seed", Json.Int 42);
              ("latency_model", Json.Str "lan");
              ("workload", Json.Str (Printf.sprintf "publications(authors=%d)" authors));
              ("lookups", Json.Int lookups);
              ("query_repeats", Json.Int repeats);
            ] );
        ("uncached", arm_json uncached);
        ("cached", arm_json cached);
        ( "reductions",
          Json.Obj
            [
              ("mean_lookup_hops", Json.Float hops_red);
              ("lookup_messages", Json.Float lookup_msg_red);
              ("query_messages", Json.Float query_msg_red);
            ] );
      ]
  in
  let oc = open_out out_file in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" out_file

(* The CI smoke variant: small enough for a PR gate, asserts the caches
   actually engage, writes no file. *)
let run_smoke () =
  Common.section "E-cache (smoke)" "caching subsystem engages and pays for itself";
  let _, cached, hops_red, lookup_msg_red, query_msg_red =
    measure ~peers:32 ~authors:20 ~lookups:150 ~repeats:3
  in
  if cached.shortcut_hits = 0 then failwith "bench-smoke: no shortcut hits";
  if cached.result_hits = 0 then failwith "bench-smoke: no result-cache hits";
  if hops_red < 0.05 && lookup_msg_red < 0.05 && query_msg_red < 0.05 then
    failwith "bench-smoke: caching produced no measurable reduction";
  Printf.printf "\nbench-smoke: OK\n"
