(* Shared helpers for the experiment harness. *)

module Rng = Unistore_util.Rng
module Stats = Unistore_util.Stats
module Latency = Unistore_sim.Latency
module Publications = Unistore_workload.Publications
module Value = Unistore.Value
module Triple = Unistore.Triple

let section id claim =
  Printf.printf "\n=== %s ===\n" id;
  Printf.printf "paper claim: %s\n\n" claim

let subsection title = Printf.printf "\n-- %s --\n" title

(* Build a deployment preloaded with a publications dataset. *)
let build_pubs ?(peers = 64) ?(authors = 40) ?(seed = 42) ?(latency = Latency.Lan)
    ?(overlay = Unistore.Pgrid) ?(replication = 2) ?(typo_rate = 0.1) ?(qgrams = true)
    ?(load_balanced = true) ?(cache = Unistore.default_cache_config)
    ?(batch = Unistore.default_batch_config) ?(retry = Unistore.default_retry_config) () =
  let rng = Rng.create (seed + 1) in
  let ds =
    Publications.generate rng { Publications.default_params with n_authors = authors; typo_rate }
  in
  let store =
    Unistore.create
      ~sample_keys:(Publications.sample_keys ds)
      {
        Unistore.default_config with
        peers;
        seed;
        latency;
        overlay;
        replication;
        qgram_index = qgrams;
        load_balanced;
        cache;
        batch;
        retry;
      }
  in
  ignore (Unistore.load store ds.Publications.tuples);
  Unistore.set_stats_of_triples store ds.Publications.triples;
  Unistore.settle store;
  (store, ds)

let run_query_exn store ?origin ?strategy ?expand_mappings src =
  match Unistore.query store ?origin ?strategy ?expand_mappings src with
  | Ok r -> r
  | Error e -> failwith ("query failed: " ^ e)

(* Simple fixed-width table printing. *)
let print_row widths cells =
  List.iter2 (fun w c -> Printf.printf "%-*s  " w c) widths cells;
  print_newline ()

let print_table header rows =
  let widths =
    List.mapi
      (fun i h -> List.fold_left (fun w r -> max w (String.length (List.nth r i))) (String.length h) rows)
      header
  in
  print_row widths header;
  print_row widths (List.map (fun w -> String.make w '-') widths);
  List.iter (print_row widths) rows

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let i x = string_of_int x
let pct x = Printf.sprintf "%.0f%%" (100.0 *. x)
