(* CORE: the measured performance baseline, exported as BENCH_core.json.

   The ROADMAP's north star ("fast as the hardware allows") needs a
   number to improve against; this experiment distills the harness into
   four machine-readable series — routing hop counts, range-query cost,
   end-to-end query latency (including the paper's example skyline
   query), and per-operator throughput — all read back from the
   observability layer (lib/obs) rather than ad-hoc accumulators, so the
   baseline exercises the same metrics pipeline production code uses.

   Every later optimisation PR regenerates this file (make
   bench-baseline) and diffs it; EXPERIMENTS.md "Baseline numbers"
   documents each field. *)

module Rng = Unistore_util.Rng
module Histogram = Unistore_obs.Histogram
module Metrics = Unistore_obs.Metrics
module Json = Unistore_obs.Json
module Profile = Unistore_obs.Profile
module Publications = Unistore_workload.Publications
module Keys = Unistore_triple.Keys
module Dht = Unistore_triple.Dht
module Value = Unistore.Value
module Triple = Unistore.Triple

let out_file = "BENCH_core.json"

let paper_query =
  "SELECT ?name,?age,?cnt WHERE {(?a,'name',?name) (?a,'age',?age) \
   (?a,'num_of_pubs',?cnt) (?a,'has_published',?title) (?p,'title',?title) \
   (?p,'published_in',?conf) (?c,'confname',?conf) (?c,'series',?sr) \
   FILTER edist(?sr,'ICDE')<3 } ORDER BY SKYLINE OF ?age MIN, ?cnt MAX"

let histo_json m name =
  let h = Metrics.histogram m name in
  Json.Obj
    [
      ("mean", Json.Float (Histogram.mean h));
      ("p50", Json.Float (Histogram.percentile h 50.0));
      ("p95", Json.Float (Histogram.percentile h 95.0));
      ("p99", Json.Float (Histogram.percentile h 99.0));
      ("max", Json.Float (Histogram.max_value h));
    ]

(* ------------------------------------------------------------------ *)
(* 1. Routing: lookup hops and latency vs. overlay size                *)

let routing_at peers =
  let store, ds = Common.build_pubs ~peers ~authors:40 () in
  let m = Unistore.metrics store in
  Metrics.clear m;
  let probe_rng = Rng.create (1000 + peers) in
  let probes = Rng.sample probe_rng 120 ds.Publications.triples in
  let dht = Unistore.dht store in
  List.iter
    (fun (tr : Triple.t) ->
      let origin = Rng.int probe_rng peers in
      let key = Keys.attr_value_key tr.Triple.attr tr.Triple.value in
      ignore (Dht.lookup_sync dht ~origin ~key))
    probes;
  let lookups = List.length probes in
  Json.Obj
    [
      ("peers", Json.Int peers);
      ("lookups", Json.Int lookups);
      ("complete", Json.Int (Metrics.counter m "overlay.lookup.ok"));
      ("hops", histo_json m "overlay.lookup.hops");
      ("latency_ms", histo_json m "overlay.lookup.latency_ms");
      ( "msgs_per_lookup",
        Json.Float (float_of_int (Metrics.counter m "net.sent") /. float_of_int lookups) );
    ]

(* ------------------------------------------------------------------ *)
(* 2. Range queries: cost vs. selectivity (shower strategy)            *)

let range_cost store (label, lo, hi) =
  let m = Unistore.metrics store in
  Metrics.clear m;
  let vql =
    Printf.sprintf "SELECT ?p WHERE { (?p,'year',?y) FILTER ?y >= %d FILTER ?y <= %d }" lo hi
  in
  let r = Common.run_query_exn store vql in
  Json.Obj
    [
      ("selectivity", Json.Str label);
      ("vql", Json.Str vql);
      ("rows", Json.Int (List.length r.Unistore.Report.rows));
      ("messages", Json.Int r.Unistore.Report.messages);
      ("latency_ms", Json.Float r.Unistore.Report.latency);
      ("complete", Json.Bool r.Unistore.Report.complete);
      ("fanout", histo_json m "overlay.range.fanout");
    ]

(* ------------------------------------------------------------------ *)
(* 3. End-to-end query latency (the paper's workload shapes)           *)

let query_latency store ds =
  (* A value known to exist, for the point-lookup shape. *)
  let some_name =
    List.find_map
      (fun (tr : Triple.t) ->
        if String.equal tr.Triple.attr "name" then Value.as_string tr.Triple.value else None)
      ds.Publications.triples
    |> Option.get
  in
  let shapes =
    [
      ("point", Printf.sprintf "SELECT ?a WHERE { (?a,'name','%s') }" some_name, Unistore.Centralized);
      ( "join3",
        "SELECT ?n,?t WHERE { (?a,'name',?n) (?a,'has_published',?t) (?p,'title',?t) }",
        Unistore.Centralized );
      ("skyline_paper", paper_query, Unistore.Centralized);
      ("skyline_paper_mutant", paper_query, Unistore.Mutant);
    ]
  in
  List.map
    (fun (name, vql, strategy) ->
      match Unistore.query store ~strategy vql with
      | Error e -> failwith (name ^ ": " ^ e)
      | Ok r ->
        Json.Obj
          [
            ("name", Json.Str name);
            ("strategy", Json.Str (Format.asprintf "%a" Unistore.Report.pp_strategy strategy));
            ("rows", Json.Int (List.length r.Unistore.Report.rows));
            ("messages", Json.Int r.Unistore.Report.messages);
            ("latency_ms", Json.Float r.Unistore.Report.latency);
            ("bytes_shipped", Json.Int r.Unistore.Report.bytes_shipped);
            ("complete", Json.Bool r.Unistore.Report.complete);
          ])
    shapes

(* ------------------------------------------------------------------ *)
(* 4. Per-operator throughput, from the paper query's profile          *)

let operator_throughput store =
  let r = Common.run_query_exn store paper_query in
  let profile = Unistore.profile ~query:paper_query r in
  List.map
    (fun (o : Profile.op) ->
      Json.Obj
        [
          ("operator", Json.Str o.Profile.label);
          ("access", Json.Str o.Profile.access);
          ("rows_in", Json.Int o.Profile.rows_in);
          ("rows_out", Json.Int o.Profile.rows_out);
          ("messages", Json.Int o.Profile.messages);
          ("latency_ms", Json.Float o.Profile.latency_ms);
          ( "rows_per_sim_s",
            if o.Profile.latency_ms > 0.0 then
              Json.Float (float_of_int o.Profile.rows_out /. (o.Profile.latency_ms /. 1000.0))
            else Json.Null );
        ])
    profile.Profile.ops

let run () =
  Common.section "CORE: performance baseline"
    "the platform makes results \"traceable, analyzable and (in limits) repeatable\" \
     (section 3) — this distills the harness into the machine-readable baseline \
     every optimisation PR is measured against";
  let routing = List.map routing_at [ 16; 64; 256 ] in
  Printf.printf "routing: lookup hop/latency percentiles at 16/64/256 peers\n";
  let store, ds = Common.build_pubs ~peers:64 ~authors:40 () in
  (* Warm up statistics gossip so the query series measures the default
     production path (plans built from gossiped statistics), matching
     the CLI; the warm-up messages stay outside the measured windows. *)
  for _ = 1 to 4 do
    Unistore.gossip_stats_round store
  done;
  (* The range series measures shower cost, so it runs on an uncached
     deployment: with caching on, a gossiped-statistics tie can flip the
     plan to a whole-attribute scan whose later windows are result-cache
     hits (0 messages) — real behavior, but measured by BENCH_cache.json,
     not by this series. *)
  let rstore, _ = Common.build_pubs ~peers:64 ~authors:40 ~cache:Unistore.no_cache () in
  let ranges =
    List.map (range_cost rstore)
      [ ("narrow (1 year)", 2004, 2004); ("half (4 years)", 2001, 2004); ("full (all years)", 1990, 2010) ]
  in
  Printf.printf "range: shower cost at three selectivities (64 peers)\n";
  Unistore.reset_metrics store;
  let queries = query_latency store ds in
  let messages_by_kind =
    List.filter_map
      (fun (k, v) ->
        if String.length k > 9 && String.sub k 0 9 = "net.sent." then
          Some (String.sub k 9 (String.length k - 9), Json.Int v)
        else None)
      (Metrics.counters (Unistore.metrics store))
  in
  Printf.printf "queries: point / 3-way join / paper skyline (centralized + mutant)\n";
  let operators = operator_throughput store in
  Printf.printf "operators: per-step rows/messages/latency of the paper query\n";
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Int 1);
        ( "description",
          Json.Str
            "UniStore performance baseline: simulated-network cost of routing, range \
             queries, end-to-end VQL queries and physical operators. Regenerate with \
             `make bench-baseline` (= dune exec bench/main.exe -- core). All times are \
             simulated ms under the LAN latency model; messages are what a deployment \
             pays for. See EXPERIMENTS.md, section 'Baseline numbers'." );
        ( "config",
          Json.Obj
            [
              ("seed", Json.Int 42);
              ("latency_model", Json.Str "lan");
              ("workload", Json.Str "publications(authors=40, typo_rate=0.1)");
              ("replication", Json.Int 2);
            ] );
        ("routing", Json.Arr routing);
        ("range", Json.Arr ranges);
        ("queries", Json.Arr queries);
        ("messages_by_kind", Json.Obj messages_by_kind);
        ("operators", Json.Arr operators);
      ]
  in
  let oc = open_out out_file in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" out_file
