(* E-rank: similarity & ranking at scale — optimized vs naive hot
   paths, raced on both in-tree overlays.

   Two identical deployments — same overlay, seed, dataset and
   workload — differ only in the ranking configuration: one runs every
   fast path ({!Unistore.default_rank_config}), the other the naive
   algorithms ({!Unistore.no_rank_config}). Four measured operators:

   - top-N: `ORDER BY ?v ASC LIMIT n` over a dense numeric attribute.
     Optimized, the planner picks the budgeted sequential traversal
     ([ATopN], {!Dht.t.range_topn}) that early-terminates after the
     first n items plus a replication-deep confirmation; naive, the
     whole A#v region showers to the origin and is sorted there.
     P-Grid only — Chord's trie has no ordered traversal, so both arms
     fetch the full region (that asymmetry is the head-to-head).
   - skyline: the canonical two-goal query. Optimized (P-Grid), the
     leaf-local partial skyline runs where the tuples live — all
     triples of one logical tuple share their OID key, so dominance
     against co-located candidates is globally sound — and dominated
     rows never cross the network; naive, every x and y triple travels
     to the origin first.
   - similarity selection: edit-distance-1 lookup via the q-gram
     index. Optimized, only a count-filter-covering rarest-first
     prefix of the pattern's grams is fetched (recall-complete by the
     prefix-filter bound), shipped as one MultiLookup batch where the
     substrate has it; naive, one routed lookup per distinct gram.
   - substring selection: positional pruning to at most 3 grams
     (any subset of the pattern's grams is recall-complete here).

   Both arms must return identical rows and full recall against a
   locally computed oracle — asserted, not sampled. Writes
   BENCH_rank.json; `make bench-smoke` runs the small variant without
   touching the file. *)

module Metrics = Unistore_obs.Metrics
module Json = Unistore_obs.Json
module Binding = Unistore_qproc.Binding
module Keys = Unistore_triple.Keys
module Tstore = Unistore_triple.Tstore
module Strdist = Unistore_util.Strdist
module Value = Unistore.Value
module Triple = Unistore.Triple

let out_file = "BENCH_rank.json"

(* ------------------------------------------------------------------ *)
(* Synthetic dataset: one logical tuple per OID with a unique numeric
   score (top-N), two independent skyline dimensions, and a name drawn
   Zipf-style from a small vocabulary with deterministic single-edit
   mutations (so edit-distance-1 queries have non-trivial answers).   *)

type row = { oid : string; score : int; x : int; y : int; name : string }

let vocab =
  [|
    "saffron"; "marzipan"; "gossamer"; "lanterns"; "obsidian"; "meridian";
    "cascade"; "thimble"; "juniper"; "paradox"; "velveteen"; "embering";
    "quartzite"; "willowing"; "harborage"; "nimbus"; "coppered"; "sableword";
    "tundras"; "mosaics"; "cinders"; "fathoms"; "grottoes"; "zephyrs";
  |]

(* Zipf weights 1/(k+1) over the vocabulary, picked with a fixed
   multiplicative hash of the row index — skewed and deterministic. *)
let zipf_word r =
  let n = Array.length vocab in
  let total = ref 0.0 in
  for k = 0 to n - 1 do
    total := !total +. (1.0 /. float_of_int (k + 1))
  done;
  let u =
    float_of_int (((r * 48271) + 11) mod 9973) /. 9973.0 *. !total
  in
  let rec pick k acc =
    if k >= n - 1 then vocab.(n - 1)
    else
      let acc = acc +. (1.0 /. float_of_int (k + 1)) in
      if u < acc then vocab.(k) else pick (k + 1) acc
  in
  pick 0 0.0

(* Every third row mutates its word by one substitution, every other
   third by one deletion — edit distance exactly 1 from the vocabulary
   word, so d=1 similarity queries must pull them in. *)
let mutate r s =
  match r mod 3 with
  | 1 ->
    let b = Bytes.of_string s in
    let p = r / 3 mod String.length s in
    let c = Bytes.get b p in
    Bytes.set b p (if c = 'z' then 'a' else Char.chr (Char.code c + 1));
    Bytes.to_string b
  | 2 -> String.sub s 0 (String.length s - 1)
  | _ -> s

let make_rows n =
  List.init n (fun r ->
      {
        oid = Printf.sprintf "o%05d" r;
        score = r * 7919 mod 10007;
        x = ((r * 104729) + 13) mod 997;
        y = ((r * 15485863) + 7) mod 983;
        name = mutate r (zipf_word r);
      })

let tuples_of data =
  List.map
    (fun rw ->
      ( rw.oid,
        [
          ("score", Value.I rw.score);
          ("x", Value.I rw.x);
          ("y", Value.I rw.y);
          ("name", Value.S rw.name);
        ] ))
    data

let triples_of data =
  List.concat_map
    (fun rw ->
      [
        { Triple.oid = rw.oid; attr = "score"; value = Value.I rw.score };
        { Triple.oid = rw.oid; attr = "x"; value = Value.I rw.x };
        { Triple.oid = rw.oid; attr = "y"; value = Value.I rw.y };
        { Triple.oid = rw.oid; attr = "name"; value = Value.S rw.name };
      ])
    data

let sample_keys_of triples =
  List.concat_map
    (fun (tr : Triple.t) ->
      let base =
        [
          Keys.oid_key tr.Triple.oid;
          Keys.attr_value_key tr.Triple.attr tr.Triple.value;
          Keys.value_key tr.Triple.value;
        ]
      in
      match tr.Triple.value with
      | Value.S s ->
        base @ List.map Keys.qgram_key (Strdist.distinct_qgrams ~q:Keys.q s)
      | _ -> base)
    triples

(* ------------------------------------------------------------------ *)
(* Local oracles: exact answers computed outside the network.         *)

let topn_limit = 10

let topn_oracle data =
  List.sort (fun a b -> compare a.score b.score) data
  |> List.filteri (fun i _ -> i < topn_limit)
  |> List.map (fun rw -> rw.oid)

(* x MIN, y MAX; strict dominance. *)
let skyline_oracle data =
  List.filter
    (fun a ->
      not
        (List.exists
           (fun b ->
             b.x <= a.x && b.y >= a.y && (b.x < a.x || b.y > a.y))
           data))
    data
  |> List.map (fun rw -> rw.oid)

let sim_oracle data pattern =
  List.filter (fun rw -> Strdist.within_distance pattern rw.name 1) data
  |> List.map (fun rw -> rw.oid)

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  n = 0 || go 0

let substring_oracle data pattern =
  List.filter (fun rw -> contains_sub ~sub:pattern rw.name) data
  |> List.map (fun rw -> rw.oid)

let recall ~got ~want =
  match List.sort_uniq compare want with
  | [] -> 1.0
  | want ->
    let got = List.sort_uniq compare got in
    let hit = List.length (List.filter (fun w -> List.mem w got) want) in
    float_of_int hit /. float_of_int (List.length want)

(* ------------------------------------------------------------------ *)

type op = {
  messages : int;
  bytes : int;
  latency : float;
  rows : string list;  (** sorted identity fingerprints, arm-comparable *)
  recall : float;
}

type arm = {
  label : string;
  topn : op;
  skyline : op;
  sim : op;
  substring : op;
  skyline_bytes_saved : int;  (** dropped at the leaves, optimized arm only *)
}

let topn_query = "SELECT ?s,?v WHERE { (?s,'score',?v) } ORDER BY ?v ASC LIMIT 10"
let topn_origins = [ 3; 17; 29 ]

let skyline_query =
  "SELECT ?s,?x,?y WHERE { (?s,'x',?x) (?s,'y',?y) } ORDER BY SKYLINE OF ?x MIN, ?y MAX"

let skyline_origins = [ 5; 23 ]

(* Patterns long enough that gram pruning has something to prune:
   'saffron' carries 9 padded grams, the count-filter prefix for d=1
   needs d*q+1 = 4 occurrences. *)
let sim_specs = [ ("saffron", 3); ("marzipan", 11); ("gossamer", 29) ]

(* Substrings with >= 4 unpadded grams, pruned to 3. *)
let substring_specs = [ ("saffro", 7); ("arzipan", 13); ("ossamer", 19) ]

let row_set (r : Unistore.Report.report) =
  List.sort compare (List.map Binding.fingerprint r.Unistore.Report.rows)

let oids_of_report (r : Unistore.Report.report) var =
  List.filter_map
    (fun b ->
      match Binding.find b var with Some (Value.S s) -> Some s | _ -> None)
    r.Unistore.Report.rows

let run_arm ~overlay ~peers ~nrows ~optimized () =
  let data = make_rows nrows in
  let triples = triples_of data in
  let store =
    Unistore.create
      ~sample_keys:(sample_keys_of triples)
      {
        Unistore.default_config with
        peers;
        seed = 42;
        overlay;
        qgram_index = true;
        (* caching off in both arms: a result-cache hit would zero out
           repeated queries on both sides and measure nothing. *)
        cache = Unistore.no_cache;
        rank = (if optimized then Unistore.default_rank_config else Unistore.no_rank_config);
      }
  in
  let stored = Unistore.load store (tuples_of data) in
  if stored = 0 then failwith "rank bench: nothing stored";
  Unistore.settle store;
  Unistore.set_stats_of_triples store triples;
  let m = Unistore.metrics store in
  let ts = Unistore.tstore store in
  let query_phase vql origins oracle var =
    Metrics.clear m;
    let t0 = Unistore.now store in
    let reports =
      List.map
        (fun origin ->
          let r = Common.run_query_exn store ~origin vql in
          if not r.Unistore.Report.complete then failwith "rank bench: incomplete query";
          r)
        origins
    in
    let latency = Unistore.now store -. t0 in
    {
      messages = Metrics.counter m "net.sent";
      bytes = Metrics.counter m "net.bytes.sent";
      latency;
      rows = List.sort compare (List.concat_map row_set reports);
      recall = recall ~got:(oids_of_report (List.hd reports) var) ~want:oracle;
    }
  in
  let tstore_phase specs run oracle_of =
    Metrics.clear m;
    let t0 = Unistore.now store in
    let per_pattern =
      List.map
        (fun (pattern, origin) ->
          let found, (meta : Tstore.meta) = run ~pattern ~origin in
          if not meta.Tstore.complete then failwith "rank bench: incomplete selection";
          let ids =
            List.sort_uniq compare
              (List.map
                 (fun (tr : Triple.t) ->
                   tr.Triple.oid ^ "/" ^ Value.to_display tr.Triple.value)
                 found)
          in
          let got = List.map (fun (tr : Triple.t) -> tr.Triple.oid) found in
          (ids, recall ~got ~want:(oracle_of pattern)))
        specs
    in
    let latency = Unistore.now store -. t0 in
    {
      messages = Metrics.counter m "net.sent";
      bytes = Metrics.counter m "net.bytes.sent";
      latency;
      rows = List.sort compare (List.concat_map fst per_pattern);
      recall = List.fold_left (fun acc (_, r) -> Float.min acc r) 1.0 per_pattern;
    }
  in
  let topn = query_phase topn_query topn_origins (topn_oracle data) "s" in
  let skyline = query_phase skyline_query skyline_origins (skyline_oracle data) "s" in
  let skyline_bytes_saved = Metrics.counter m "probe.reduce.bytes.saved" in
  let sim =
    tstore_phase sim_specs
      (fun ~pattern ~origin -> Tstore.similar_sync ts ~origin ~attr:"name" ~pattern ~d:1 ())
      (sim_oracle data)
  in
  let substring =
    tstore_phase substring_specs
      (fun ~pattern ~origin -> Tstore.containing_sync ts ~origin ~attr:"name" ~pattern ())
      (substring_oracle data)
  in
  { label = (if optimized then "optimized" else "naive"); topn; skyline; sim; substring;
    skyline_bytes_saved }

(* ------------------------------------------------------------------ *)

let reduction ~naive ~optimized =
  if naive <= 0 then 0.0 else float_of_int (naive - optimized) /. float_of_int naive

let ops = [ "topn"; "skyline"; "sim"; "substring" ]
let op_of a = function
  | "topn" -> a.topn
  | "skyline" -> a.skyline
  | "sim" -> a.sim
  | _ -> a.substring

let measure ~overlay_name ~overlay ~peers ~nrows =
  let naive = run_arm ~overlay ~peers ~nrows ~optimized:false () in
  let optimized = run_arm ~overlay ~peers ~nrows ~optimized:true () in
  List.iter
    (fun name ->
      let n = op_of naive name and o = op_of optimized name in
      if not (List.equal String.equal n.rows o.rows) then
        failwith
          (Printf.sprintf "rank bench: %s/%s arms returned different rows" overlay_name name);
      if n.recall < 1.0 || o.recall < 1.0 then
        failwith
          (Printf.sprintf "rank bench: %s/%s recall below 1 (naive %.3f, optimized %.3f)"
             overlay_name name n.recall o.recall))
    ops;
  Common.subsection (Printf.sprintf "%s, %d peers, %d tuples" overlay_name peers nrows);
  Common.print_table
    [ "operator"; "naive msgs"; "opt msgs"; "msg red"; "naive bytes"; "opt bytes"; "byte red" ]
    (List.map
       (fun name ->
         let n = op_of naive name and o = op_of optimized name in
         [
           name; Common.i n.messages; Common.i o.messages;
           Common.pct (reduction ~naive:n.messages ~optimized:o.messages);
           Common.i n.bytes; Common.i o.bytes;
           Common.pct (reduction ~naive:n.bytes ~optimized:o.bytes);
         ])
       ops);
  Printf.printf "skyline bytes dropped at the leaves: %d; identical rows, full recall\n"
    optimized.skyline_bytes_saved;
  (naive, optimized)

let op_json (o : op) =
  Json.Obj
    [
      ("messages", Json.Int o.messages);
      ("bytes", Json.Int o.bytes);
      ("latency_ms", Json.Float o.latency);
      ("rows", Json.Int (List.length o.rows));
      ("recall", Json.Float o.recall);
    ]

let arm_json a =
  Json.Obj
    (("label", Json.Str a.label)
     :: List.map (fun name -> (name, op_json (op_of a name))) ops
    @ [ ("skyline_bytes_saved_in_network", Json.Int a.skyline_bytes_saved) ])

let cell_json ~overlay_name ~peers ~nrows (naive, optimized) =
  Json.Obj
    [
      ("overlay", Json.Str overlay_name);
      ("peers", Json.Int peers);
      ("tuples", Json.Int nrows);
      ("naive", arm_json naive);
      ("optimized", arm_json optimized);
      ( "reductions",
        Json.Obj
          (List.map
             (fun name ->
               let n = op_of naive name and o = op_of optimized name in
               ( name,
                 Json.Obj
                   [
                     ("messages", Json.Float (reduction ~naive:n.messages ~optimized:o.messages));
                     ("bytes", Json.Float (reduction ~naive:n.bytes ~optimized:o.bytes));
                   ] ))
             ops) );
    ]

let overlays = [ ("pgrid", Unistore.Pgrid); ("chord", Unistore.Chord_trie) ]
let sizes = [ (48, 192); (96, 384); (192, 768) ]

let run () =
  Common.section "E-rank: similarity & ranking fast paths, P-Grid vs Chord head-to-head"
    "budgeted top-N traversal, leaf-local partial skylines, count-filter gram pruning and \
     batched gram fetches cut ranking/similarity traffic without losing a single row";
  let cells =
    List.concat_map
      (fun (overlay_name, overlay) ->
        List.map
          (fun (peers, nrows) ->
            let r = measure ~overlay_name ~overlay ~peers ~nrows in
            cell_json ~overlay_name ~peers ~nrows r)
          sizes)
      overlays
  in
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Int 1);
        ( "description",
          Json.Str
            "UniStore ranking/similarity hot paths: identical deployments and workloads per \
             cell, every fast path disabled (naive arm) vs enabled (optimized arm), raced \
             on both overlays and three network sizes. Operators: top-N (budgeted ordered \
             traversal vs full-region fetch), skyline (leaf-local partial skyline pushdown \
             vs ship-everything), similarity selection (count-filter gram pruning + batched \
             MultiLookup vs one lookup per gram), substring selection (3-gram positional \
             pruning vs all grams). Both arms returned identical rows at recall 1.0 against \
             local oracles — asserted. Chord has no ordered traversal and no closure \
             shipping, so its top-N/skyline arms coincide: the P-Grid advantage is the \
             head-to-head. Regenerate with `dune exec bench/main.exe -- rank` (or `make \
             bench-rank`). See EXPERIMENTS.md, section 'Ranking & similarity'." );
        ( "config",
          Json.Obj
            [
              ("seed", Json.Int 42);
              ("latency_model", Json.Str "lan");
              ("workload", Json.Str "synthetic zipf-named tuples (score, x, y, name)");
              ("topn_limit", Json.Int topn_limit);
              ("edit_distance", Json.Int 1);
              ("caching", Json.Str "disabled in both arms");
            ] );
        ("results", Json.Arr cells);
      ]
  in
  let oc = open_out out_file in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" out_file

(* The CI smoke variant: one size per overlay, asserts the fast paths
   engage and pay for themselves, writes no file. *)
let run_smoke () =
  Common.section "E-rank (smoke)" "ranking/similarity fast paths engage and pay for themselves";
  let peers, nrows = (48, 192) in
  let pg_naive, pg_opt = measure ~overlay_name:"pgrid" ~overlay:Unistore.Pgrid ~peers ~nrows in
  let ch_naive, ch_opt =
    measure ~overlay_name:"chord" ~overlay:Unistore.Chord_trie ~peers ~nrows
  in
  let red sel naive opt =
    let n = op_of naive sel and o = op_of opt sel in
    Float.max
      (reduction ~naive:n.messages ~optimized:o.messages)
      (reduction ~naive:n.bytes ~optimized:o.bytes)
  in
  let big =
    List.length (List.filter (fun name -> red name pg_naive pg_opt >= 0.3) ops)
  in
  if big < 2 then
    failwith
      (Printf.sprintf "bench-smoke: only %d pgrid operator(s) hit a 30%% reduction" big);
  if pg_opt.skyline_bytes_saved <= 0 then
    failwith "bench-smoke: skyline pushdown dropped nothing at the leaves";
  if red "sim" pg_naive pg_opt <= 0.0 then
    failwith "bench-smoke: gram pruning saved nothing on pgrid";
  if red "sim" ch_naive ch_opt <= 0.0 then
    failwith "bench-smoke: gram pruning saved nothing on chord";
  Printf.printf "\nbench-smoke: OK\n"
