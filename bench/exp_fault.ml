(* E-churn: query recall and overhead under crash/revive churn.

   Two arms — robust execution (timeout retries with exponential backoff
   and jitter, replica failover) vs the `no_retry` baseline (first
   timeout yields a partial result, routing never falls back to
   replicas) — each run against churn rates 0%, 10%, 30%. Every cell is
   a fresh deployment with the same seed and dataset; only the retry
   configuration and the injected fault scenario differ, and the fault
   scenario draws its randomness from its own seed, so the failure
   schedule is identical across arms.

   Recall is measured against the same arm's own 0%-churn run: per
   query, the fraction of the reference row multiset that came back.
   At 0% churn the two arms must return identical rows (the retry
   machinery is pure overhead-free insurance when nothing fails) — that
   is asserted, not assumed. No query may hang: every query's timeout
   is in the simulator queue from the moment its first request leaves,
   so the run terminating at all is the liveness check.

   Writes BENCH_churn.json; `make bench-smoke` runs the small variant
   (churn-smoke) without touching the file. *)

module Metrics = Unistore_obs.Metrics
module Json = Unistore_obs.Json
module Binding = Unistore_qproc.Binding

let out_file = "BENCH_churn.json"

(* One exact lookup, one shower range, one chain join over two shower
   scans, one bind-join probe round — the access paths churn can hurt. *)
let workload =
  [
    "SELECT ?a WHERE { (?a,'num_of_pubs',2) }";
    "SELECT ?a,?g WHERE { (?a,'age',?g) FILTER ?g >= 30 FILTER ?g <= 55 }";
    "SELECT ?n,?g WHERE { (?a,'name',?n) (?a,'age',?g) }";
    "SELECT ?a,?att,?v WHERE { (?a,'num_of_pubs',3) (?a,?att,?v) }";
  ]

(* Query origin; protected from the killer so the client itself never
   dies mid-query. *)
let origin = 0

let row_set (r : Unistore.Report.report) =
  List.sort compare (List.map Binding.fingerprint r.Unistore.Report.rows)

type cell = {
  rate : float;
  per_query_rows : string list list;  (** sorted fingerprints, per workload query *)
  messages : int;
  latency : float;
  avg_completeness : float;
  crashes : int;
  revives : int;
  retries : int;
  failovers : int;
  giveups : int;
  partials : int;
}

(* Churn cadence: fast waves and short outages relative to the request
   timeout, so a retried request usually meets the victim revived while
   the brittle arm has already given up. With [down_ms = interval_ms],
   the steady-state fraction of dead peers stays close to the wave rate
   (rate r kills r*(1-d) of the population per interval and each victim
   is down for one interval, so d = r*(1-d)), which is what "r churn"
   should mean. Waves come faster than a healthy query finishes, so
   every query runs through at least one kill wave. *)
let interval_ms = 10.0
let down_ms = 10.0

let run_cell ~peers ~authors ~rounds ~retry ~fault_seed rate =
  let store, _ds =
    Common.build_pubs ~peers ~authors ~cache:Unistore.no_cache
      ~retry:(if retry then Unistore.default_retry_config else Unistore.no_retry)
      ()
  in
  let m = Unistore.metrics store in
  Metrics.clear m;
  let faults =
    if rate > 0.0 then
      Unistore.inject_faults store
        (Unistore.Faults.spec ~seed:fault_seed ~duration_ms:600_000.0
           ~churn:{ Unistore.Faults.rate; interval_ms; down_ms }
           ~protected:[ origin ] ())
    else None
  in
  let t0 = Unistore.now store in
  let covs = ref [] in
  let per_query_rows =
    List.concat
      (List.init rounds (fun _ ->
           List.map
             (fun vql ->
               let r = Common.run_query_exn store ~origin vql in
               covs := r.Unistore.Report.completeness :: !covs;
               row_set r)
             workload))
  in
  let latency = Unistore.now store -. t0 in
  let crashes, revives =
    match faults with
    | Some h -> (Unistore.Faults.crashes h, Unistore.Faults.revives h)
    | None -> (0, 0)
  in
  {
    rate;
    per_query_rows;
    messages = Metrics.counter m "net.sent";
    latency;
    avg_completeness =
      (match !covs with
      | [] -> 1.0
      | cs -> List.fold_left ( +. ) 0.0 cs /. float_of_int (List.length cs));
    crashes;
    revives;
    retries = Metrics.counter m "retry.attempt";
    failovers = Metrics.counter m "retry.failover";
    giveups = Metrics.counter m "retry.giveup";
    partials = Metrics.counter m "fault.partial";
  }

(* Multiset intersection size of two sorted lists. *)
let rec inter a b =
  match (a, b) with
  | [], _ | _, [] -> 0
  | x :: xs, y :: ys ->
    let c = compare (x : string) y in
    if c = 0 then 1 + inter xs ys else if c < 0 then inter xs b else inter a ys

(* Recall of [cell] against the same arm's 0%-churn reference: matched
   reference rows / reference rows, over the whole workload. *)
let recall ~reference cell =
  let matched, total =
    List.fold_left2
      (fun (m, t) ref_rows rows -> (m + inter ref_rows rows, t + List.length ref_rows))
      (0, 0) reference.per_query_rows cell.per_query_rows
  in
  if total = 0 then 1.0 else float_of_int matched /. float_of_int total

type arm = { label : string; cells : cell list }

let run_arm ~peers ~authors ~rounds ~retry ~fault_seed rates =
  {
    label = (if retry then "retry" else "no_retry");
    cells = List.map (run_cell ~peers ~authors ~rounds ~retry ~fault_seed) rates;
  }

let cell_json ~reference c =
  Json.Obj
    [
      ("churn_rate", Json.Float c.rate);
      ("recall", Json.Float (recall ~reference c));
      ("rows", Json.Int (List.fold_left (fun a r -> a + List.length r) 0 c.per_query_rows));
      ("messages", Json.Int c.messages);
      ("latency_ms", Json.Float c.latency);
      ("avg_completeness", Json.Float c.avg_completeness);
      ("crashes", Json.Int c.crashes);
      ("revives", Json.Int c.revives);
      ("retries", Json.Int c.retries);
      ("failovers", Json.Int c.failovers);
      ("giveups", Json.Int c.giveups);
      ("partial_results", Json.Int c.partials);
    ]

let arm_json a =
  let reference = List.hd a.cells in
  Json.Obj
    [
      ("label", Json.Str a.label);
      ("cells", Json.Arr (List.map (cell_json ~reference) a.cells));
    ]

let measure ~peers ~authors ~rounds ~fault_seed ~rates =
  let robust = run_arm ~peers ~authors ~rounds ~retry:true ~fault_seed rates in
  let brittle = run_arm ~peers ~authors ~rounds ~retry:false ~fault_seed rates in
  let ref_r = List.hd robust.cells in
  let ref_b = List.hd brittle.cells in
  (* At 0% churn the arms must be indistinguishable row-wise. *)
  if not (List.equal (List.equal String.equal) ref_r.per_query_rows ref_b.per_query_rows) then
    failwith "churn bench: arms returned different rows at 0% churn";
  Common.print_table
    [ "churn"; "arm"; "recall"; "msgs"; "latency"; "crashes"; "retries"; "failovers";
      "partials" ]
    (List.concat_map
       (fun (arm, reference) ->
         List.map
           (fun c ->
             [
               Common.pct c.rate; arm.label; Common.f2 (recall ~reference c);
               Common.i c.messages; Common.f1 c.latency; Common.i c.crashes;
               Common.i c.retries; Common.i c.failovers; Common.i c.partials;
             ])
           arm.cells)
       [ (robust, ref_r); (brittle, ref_b) ]);
  let worst = List.nth robust.cells (List.length robust.cells - 1) in
  let worst_b = List.nth brittle.cells (List.length brittle.cells - 1) in
  let r_recall = recall ~reference:ref_r worst in
  let b_recall = recall ~reference:ref_b worst_b in
  Printf.printf
    "\nat %.0f%% churn: retry arm recall %.3f (%d retries, %d failovers), no-retry recall \
     %.3f (%d partial results); identical rows at 0%%\n"
    (100.0 *. worst.rate) r_recall worst.retries worst.failovers b_recall worst_b.partials;
  (robust, brittle, r_recall, b_recall)

let assert_claims ~label (r_recall, b_recall) =
  if r_recall < 0.95 then
    failwith
      (Printf.sprintf "%s: retry-arm recall %.3f < 0.95 at the worst churn rate" label r_recall);
  if b_recall >= r_recall then
    failwith
      (Printf.sprintf "%s: no-retry arm (recall %.3f) not worse than retry arm (%.3f)" label
         b_recall r_recall)

let run () =
  Common.section "E-churn: robust query execution under churn"
    "with timeout retries, backoff and replica failover, queries keep >= 95% recall under \
     30% churn; without them, recall collapses while the network stays quieter";
  let peers, authors, rounds, fault_seed = (128, 40, 3, 7) in
  let rates = [ 0.0; 0.1; 0.3 ] in
  let robust, brittle, r_recall, b_recall =
    measure ~peers ~authors ~rounds ~fault_seed ~rates
  in
  assert_claims ~label:"churn bench" (r_recall, b_recall);
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Int 1);
        ( "description",
          Json.Str
            "UniStore robust query execution under churn: identical deployments and \
             workloads, retries+failover enabled vs the no_retry baseline, against \
             crash/revive churn injected by the deterministic fault driver (all scenario \
             randomness from fault_seed). Recall is measured per arm against its own \
             0%-churn run; both arms must return identical rows at 0% churn. Regenerate \
             with `dune exec bench/main.exe -- churn` (or `make bench-churn`). See \
             EXPERIMENTS.md, section 'Churn'." );
        ( "config",
          Json.Obj
            [
              ("peers", Json.Int peers);
              ("seed", Json.Int 42);
              ("fault_seed", Json.Int fault_seed);
              ("latency_model", Json.Str "lan");
              ("workload", Json.Str (Printf.sprintf "publications(authors=%d)" authors));
              ("workload_rounds", Json.Int rounds);
              ("queries_per_round", Json.Int (List.length workload));
              ("churn_interval_ms", Json.Float interval_ms);
              ("churn_down_ms", Json.Float down_ms);
              ("caching", Json.Str "disabled in both arms");
            ] );
        ("arms", Json.Arr [ arm_json robust; arm_json brittle ]);
        ( "summary",
          Json.Obj
            [
              ("retry_recall_at_worst_churn", Json.Float r_recall);
              ("no_retry_recall_at_worst_churn", Json.Float b_recall);
              ("identical_rows_at_zero_churn", Json.Bool true);
            ] );
      ]
  in
  let oc = open_out out_file in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" out_file

(* The CI smoke variant: two rates, fewer peers, writes no file. *)
let run_smoke () =
  Common.section "E-churn (smoke)"
    "retries+failover keep recall >= 95% under 30% churn; the no-retry baseline loses rows";
  let _, _, r_recall, b_recall =
    measure ~peers:64 ~authors:20 ~rounds:2 ~fault_seed:7 ~rates:[ 0.0; 0.3 ]
  in
  assert_claims ~label:"churn-smoke" (r_recall, b_recall);
  Printf.printf "\nchurn-smoke: OK\n"
