(* E-traffic: serving a hot-spot flash crowd, adaptive load balancing
   vs the static baseline.

   Two arms over identical deployments (same build seed, same data) and
   a byte-identical open-loop request stream (the traffic engine seeds
   its own arrival/key/origin RNG streams independently of the system):

   - adaptive: per-peer EWMA retry deadlines, hot-region boost
     replication driven by the gossiped load signal, and serving-set
     rotation at the origins;
   - no_balancing: fixed deadlines, no boosts, single-target shortcuts.

   Every peer runs the service-queue model (fixed per-message service
   time), so a Zipf-clustered flash crowd piles a backlog onto the hot
   region's owner. The baseline still answers everything — open loop
   plus drain — but late: its served throughput drops and its p99
   inflates with queueing delay. The adaptive arm spreads the hot
   region over boost replicas and keeps serving inside the window.

   Both arms must return byte-identical per-request results (the
   digest covers every measured request's key, completeness and item
   ids/versions): balancing may only change performance, never answers.

   Writes BENCH_traffic.json; `make bench-smoke` runs the small variant
   (traffic-smoke) without touching the file. *)

module Json = Unistore_obs.Json
module Publications = Unistore_workload.Publications

let out_file = "BENCH_traffic.json"

let run_arm ~peers ~authors ~cfg ~balance =
  let store, ds = Common.build_pubs ~peers ~authors () in
  let keys = List.sort_uniq String.compare (Publications.sample_keys ds) in
  Unistore.reset_metrics store;
  Unistore.run_traffic store ~keys { cfg with Unistore.balance }

let arm_json label (r : Unistore.traffic_report) =
  Json.Obj
    [
      ("label", Json.Str label);
      ("offered", Json.Int r.engine.Unistore.Traffic.offered);
      ("measured", Json.Int r.engine.measured);
      ("ok", Json.Int r.engine.ok);
      ("served_in_window", Json.Int r.engine.served_in_window);
      ("giveups", Json.Int r.engine.giveups);
      ("throughput_qps", Json.Float r.engine.throughput_qps);
      ("latency_mean_ms", Json.Float r.engine.lat_mean_ms);
      ("latency_p50_ms", Json.Float r.engine.lat_p50_ms);
      ("latency_p90_ms", Json.Float r.engine.lat_p90_ms);
      ("latency_p99_ms", Json.Float r.engine.lat_p99_ms);
      ("latency_max_ms", Json.Float r.engine.lat_max_ms);
      ("queue_msgs", Json.Int r.queue_msgs);
      ("queue_delayed", Json.Int r.queue_delayed);
      ("queue_p50_ms", Json.Float r.queue_p50_ms);
      ("queue_p99_ms", Json.Float r.queue_p99_ms);
      ("queue_max_ms", Json.Float r.queue_max_ms);
      ("retries", Json.Int r.retries);
      ("boosts_spawned", Json.Int r.boosts_spawned);
      ("boosts_retired", Json.Int r.boosts_retired);
      ("hot_serves", Json.Int r.hot_serves);
      ("results_digest", Json.Str r.results_digest);
    ]

let measure ~peers ~authors ~cfg =
  let adaptive = run_arm ~peers ~authors ~cfg ~balance:Unistore.default_balance_config in
  let baseline = run_arm ~peers ~authors ~cfg ~balance:Unistore.no_balancing in
  Common.print_table
    [ "arm"; "qps"; "p50"; "p99"; "queue p99"; "ok"; "in-window"; "giveups"; "boosts";
      "hot serves" ]
    (List.map
       (fun (label, (r : Unistore.traffic_report)) ->
         [
           label;
           Common.f1 r.engine.Unistore.Traffic.throughput_qps;
           Common.f1 r.engine.lat_p50_ms;
           Common.f1 r.engine.lat_p99_ms;
           Common.f1 r.queue_p99_ms;
           Common.i r.engine.ok;
           Common.i r.engine.served_in_window;
           Common.i r.engine.giveups;
           Common.i r.boosts_spawned;
           Common.i r.hot_serves;
         ])
       [ ("adaptive", adaptive); ("no_balancing", baseline) ]);
  Printf.printf
    "\nadaptive %.1f qps / p99 %.0f ms vs static %.1f qps / p99 %.0f ms; digests %s\n"
    adaptive.engine.Unistore.Traffic.throughput_qps adaptive.engine.lat_p99_ms
    baseline.engine.throughput_qps baseline.engine.lat_p99_ms
    (if String.equal adaptive.results_digest baseline.results_digest then "identical"
     else "DIFFER");
  (adaptive, baseline)

let assert_claims ~label (adaptive : Unistore.traffic_report)
    (baseline : Unistore.traffic_report) =
  if not (String.equal adaptive.results_digest baseline.results_digest) then
    failwith (label ^ ": arms returned different per-request results");
  if adaptive.engine.Unistore.Traffic.giveups > 0 || baseline.engine.Unistore.Traffic.giveups > 0
  then failwith (label ^ ": a request gave up; the comparison is not answer-preserving");
  if adaptive.engine.throughput_qps <= baseline.engine.throughput_qps then
    failwith
      (Printf.sprintf "%s: adaptive throughput %.1f qps not above static %.1f qps" label
         adaptive.engine.throughput_qps baseline.engine.throughput_qps);
  if adaptive.engine.lat_p99_ms >= baseline.engine.lat_p99_ms then
    failwith
      (Printf.sprintf "%s: adaptive p99 %.1f ms not below static %.1f ms" label
         adaptive.engine.lat_p99_ms baseline.engine.lat_p99_ms);
  if adaptive.boosts_spawned = 0 then failwith (label ^ ": the balancer never spawned a boost");
  if adaptive.hot_serves = 0 then failwith (label ^ ": no lookup was served by a boost replica")

let run () =
  Common.section "E-traffic: heavy traffic, adaptive balancing vs static"
    "under a Zipf hot-spot flash crowd with per-peer service queues, EWMA deadlines + \
     hot-region boost replication + serving-set rotation yield strictly higher served \
     throughput and lower p99 than the static baseline, with identical answers";
  let peers, authors = (128, 40) in
  let cfg = { Unistore.default_traffic_config with Unistore.traffic_duration_ms = 40_000.0 } in
  let adaptive, baseline = measure ~peers ~authors ~cfg in
  assert_claims ~label:"traffic bench" adaptive baseline;
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Int 1);
        ( "description",
          Json.Str
            "UniStore heavy-traffic engine: open-loop Poisson arrivals with a Zipf \
             hot-spot flash crowd against identical 128-peer deployments running the \
             per-peer service-queue model. Arms differ only in the balancing config: \
             adaptive (per-peer EWMA retry deadlines, gossip-driven hot-region boost \
             replication, serving-set rotation) vs no_balancing (fixed deadlines, no \
             boosts). The request stream is byte-identical across arms (engine-owned \
             seed) and both arms must produce identical per-request results. \
             Throughput counts completions landing inside the measurement window. \
             Regenerate with `dune exec bench/main.exe -- traffic` (or `make \
             bench-traffic`). See EXPERIMENTS.md, section 'Traffic'." );
        ( "config",
          Json.Obj
            [
              ("peers", Json.Int peers);
              ("seed", Json.Int 42);
              ("traffic_seed", Json.Int cfg.Unistore.traffic_seed);
              ("latency_model", Json.Str "lan");
              ("workload", Json.Str (Printf.sprintf "publications(authors=%d)" authors));
              ("scenario", Json.Str "flash_crowd");
              ("arrival", Json.Str "poisson");
              ("arrival_rate_qps", Json.Float cfg.Unistore.arrival_rate);
              ("flash_peak", Json.Float cfg.Unistore.peak);
              ("duration_ms", Json.Float cfg.Unistore.traffic_duration_ms);
              ("warmup_ms", Json.Float cfg.Unistore.traffic_warmup_ms);
              ("zipf_s", Json.Float cfg.Unistore.traffic_zipf_s);
              ("service_ms", Json.Float cfg.Unistore.service_ms);
              ("balance_interval_ms", Json.Float cfg.Unistore.balance_interval_ms);
            ] );
        ("arms", Json.Arr [ arm_json "adaptive" adaptive; arm_json "no_balancing" baseline ]);
        ( "summary",
          Json.Obj
            [
              ("adaptive_throughput_qps", Json.Float adaptive.engine.Unistore.Traffic.throughput_qps);
              ("static_throughput_qps", Json.Float baseline.engine.throughput_qps);
              ("adaptive_p99_ms", Json.Float adaptive.engine.lat_p99_ms);
              ("static_p99_ms", Json.Float baseline.engine.lat_p99_ms);
              ("identical_results", Json.Bool true);
            ] );
      ]
  in
  let oc = open_out out_file in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" out_file

(* The CI smoke variant: smaller deployment and window, writes no file. *)
let run_smoke () =
  Common.section "E-traffic (smoke)"
    "adaptive balancing beats the static baseline on served throughput and p99 under a \
     flash crowd, with identical answers";
  let cfg =
    {
      Unistore.default_traffic_config with
      Unistore.traffic_duration_ms = 16_000.0;
      traffic_warmup_ms = 2_000.0;
    }
  in
  let adaptive, baseline = measure ~peers:64 ~authors:20 ~cfg in
  assert_claims ~label:"traffic-smoke" adaptive baseline;
  Printf.printf "\ntraffic-smoke: OK\n"
