(* SCALE: simulator-kernel throughput sweep -> BENCH_scale.json.

   The paper's evaluation argues every operator scales logarithmically
   with network size; checking that claim needs deployments orders of
   magnitude past the few hundred peers the old kernel could hold. This
   experiment measures the kernel itself — no query processor, no
   workload generator — by building a balanced P-Grid overlay at
   10x-increasing sizes up to 100k+ peers and draining an insert+lookup
   event storm through the scheduler, recording wall-clock, events/sec
   and resident bytes/peer per size.

   Unlike the protocol experiments, the times here are REAL seconds
   (the whole point is host-machine throughput); simulated time only
   shapes the event order. Regenerate with `make bench-scale`; the
   CI gate is the `scale-smoke` variant. *)

module Rng = Unistore_util.Rng
module Bitkey = Unistore_util.Bitkey
module Sim = Unistore_sim.Sim
module Latency = Unistore_sim.Latency
module Json = Unistore_obs.Json
module Config = Unistore_pgrid.Config
module Build = Unistore_pgrid.Build
module Overlay = Unistore_pgrid.Overlay

let out_file = "BENCH_scale.json"

(* Uniform raw-byte keys probe the whole key space (split boundaries are
   32-byte midpoints, so 8 random bytes are plenty of resolution). *)
let key_of rng = String.init 8 (fun _ -> Char.chr (Rng.int rng 256))

type point = {
  n : int;
  build_s : float;
  bytes_per_peer : float;
  depth : int;
  ops : int;
  completed : int;
  events : int;
  wall_s : float;
  events_per_s : float;
  mean_hops : float;
}

let live_bytes () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words * (Sys.word_size / 8)

let measure_at ~n =
  let mem0 = live_bytes () in
  let t0 = Unix.gettimeofday () in
  let sim = Sim.create () in
  let rng = Rng.create (9000 + n) in
  let latency = Latency.create Latency.Lan ~n ~rng in
  let ov =
    Build.oracle sim ~latency ~rng ~config:Config.default ~n ~sample_keys:[] ~balanced:true ()
  in
  let build_s = Unix.gettimeofday () -. t0 in
  let bytes_per_peer = float_of_int (live_bytes () - mem0) /. float_of_int n in
  let depth = Overlay.depth ov in
  (* Event storm: issue every insert up front and drain, then the same
     for lookups — measuring raw scheduler + delivery throughput with
     the full routing stack in the closures. *)
  let ops = min 20_000 (max 1_000 n) in
  let wrng = Rng.create (77 + n) in
  let keys = Array.init ops (fun _ -> key_of wrng) in
  let completed = ref 0 in
  let hops = ref 0 in
  let ev0 = Sim.processed sim in
  let w0 = Unix.gettimeofday () in
  Array.iteri
    (fun i key ->
      let origin = Rng.int wrng n in
      Overlay.insert ov ~origin ~key ~item_id:(string_of_int i) ~payload:"x"
        ~k:(fun r ->
          incr completed;
          hops := !hops + r.Overlay.hops)
        ())
    keys;
  Sim.run_all ~max_events:200_000_000 sim;
  Array.iter
    (fun key ->
      let origin = Rng.int wrng n in
      Overlay.lookup ov ~origin ~key ~k:(fun r ->
          incr completed;
          hops := !hops + r.Overlay.hops))
    keys;
  Sim.run_all ~max_events:200_000_000 sim;
  let wall_s = Unix.gettimeofday () -. w0 in
  let events = Sim.processed sim - ev0 in
  {
    n;
    build_s;
    bytes_per_peer;
    depth;
    ops = 2 * ops;
    completed = !completed;
    events;
    wall_s;
    events_per_s = (if wall_s > 0.0 then float_of_int events /. wall_s else 0.0);
    mean_hops = float_of_int !hops /. float_of_int (max 1 !completed);
  }

let point_json p =
  Json.Obj
    [
      ("peers", Json.Int p.n);
      ("build_wall_s", Json.Float p.build_s);
      ("bytes_per_peer", Json.Float p.bytes_per_peer);
      ("trie_depth", Json.Int p.depth);
      ("operations", Json.Int p.ops);
      ("completed", Json.Int p.completed);
      ("events", Json.Int p.events);
      ("workload_wall_s", Json.Float p.wall_s);
      ("events_per_s", Json.Float p.events_per_s);
      ("mean_hops", Json.Float p.mean_hops);
    ]

let print_points points =
  Common.print_table
    [ "peers"; "build s"; "KB/peer"; "depth"; "ops"; "events"; "wall s"; "events/s"; "hops" ]
    (List.map
       (fun p ->
         [
           Common.i p.n;
           Common.f2 p.build_s;
           Common.f1 (p.bytes_per_peer /. 1024.0);
           Common.i p.depth;
           Common.i p.ops;
           Common.i p.events;
           Common.f2 p.wall_s;
           Printf.sprintf "%.0f" p.events_per_s;
           Common.f2 p.mean_hops;
         ])
       points)

let run () =
  Common.section "SCALE: kernel throughput sweep"
    "operator cost scales logarithmically with network size (section 6) — checkable \
     only if the simulator itself scales to 100k+ peers";
  let points = List.map (fun n -> measure_at ~n) [ 100; 1_000; 10_000; 100_000 ] in
  print_points points;
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Int 1);
        ( "description",
          Json.Str
            "Simulator-kernel scale sweep: balanced P-Grid overlays at 10x-increasing \
             sizes, an insert+lookup event storm per size. build_wall_s and \
             workload_wall_s are REAL seconds on the build host; events_per_s is \
             scheduler events drained per real second; bytes_per_peer is resident \
             heap delta after construction. Regenerate with `make bench-scale`. See \
             EXPERIMENTS.md, section 'Scale'." );
        ( "config",
          Json.Obj
            [
              ("latency_model", Json.Str "lan");
              ("balanced", Json.Bool true);
              ("replication", Json.Int Config.default.Config.replication);
              ("refs_per_level", Json.Int Config.default.Config.refs_per_level);
            ] );
        ("sweep", Json.Arr (List.map point_json points));
      ]
  in
  let oc = open_out out_file in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" out_file

(* CI gate: a 1k and a 10k build must stay fast and the kernel must keep
   draining events at rate. The thresholds are ~10x slacker than the
   committed BENCH_scale.json numbers, so only a kernel regression (an
   O(n) scan creeping back onto a hot path), not machine noise, trips
   them. *)
let run_smoke () =
  Common.section "SCALE (smoke)" "kernel throughput does not regress";
  let budget_s = 30.0 in
  let floor_events_per_s = 50_000.0 in
  let t0 = Unix.gettimeofday () in
  let points = List.map (fun n -> measure_at ~n) [ 1_000; 10_000 ] in
  let total = Unix.gettimeofday () -. t0 in
  print_points points;
  List.iter
    (fun p ->
      if p.completed < p.ops then
        failwith
          (Printf.sprintf "bench-smoke: %d/%d operations completed at %d peers" p.completed
             p.ops p.n);
      if p.events_per_s < floor_events_per_s then
        failwith
          (Printf.sprintf "bench-smoke: %.0f events/s at %d peers (floor %.0f)"
             p.events_per_s p.n floor_events_per_s))
    points;
  if total > budget_s then
    failwith (Printf.sprintf "bench-smoke: scale smoke took %.1fs (budget %.0fs)" total budget_s);
  Printf.printf "\nbench-smoke: OK (%.1fs, budget %.0fs)\n" total budget_s
