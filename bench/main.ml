(* Experiment harness: regenerates every evaluation result of the
   UniStore reproduction (see DESIGN.md section 4 for the experiment
   index and EXPERIMENTS.md for paper-vs-measured records).

   Usage:
     dune exec bench/main.exe            # run everything
     dune exec bench/main.exe -- e2 e6   # run selected experiments *)

let experiments =
  [
    ("core", "CORE: performance baseline -> BENCH_core.json", Bench_core.run);
    ("fig2", "E1: Fig. 2 triple placement", Exp_fig2.run);
    ("e2", "E2: logarithmic lookup scaling", Exp_scaling.run);
    ("e3", "E3: 400 peers, PlanetLab latency", Exp_planetlab.run);
    ("e4", "E4: 1024-peer deployment", Exp_thousand.run);
    ("e5", "E5: load balancing under skew", Exp_loadbal.run);
    ("e6", "E6: range queries, P-Grid vs Chord+trie", Exp_range.run);
    ("e7", "E7: q-gram similarity index", Exp_simsel.run);
    ("e8", "E8: physical operators + cost model", Exp_operators.run);
    ("e9", "E9: mutant vs centralized execution", Exp_mutant.run);
    ("e10", "E10: failures and loose-consistency updates", Exp_churn.run);
    ("e11", "E11: the example skyline query", Exp_skyline.run);
    ("e12", "E12: schema mappings", Exp_mappings.run);
    ("e13", "E13: routing techniques (random vs proximity)", Exp_routing.run);
    ("e14", "E14: decentralized construction + merging", Exp_bootstrap.run);
    ("cache", "E-cache: multi-level caching, cached vs uncached -> BENCH_cache.json", Exp_cache.run);
    ("cache-smoke", "E-cache smoke variant (CI gate, no file output)", Exp_cache.run_smoke);
    ("bulk", "E-bulk: bulk-operation pipeline, batched vs unbatched -> BENCH_bulk.json", Exp_bulk.run);
    ("bulk-smoke", "E-bulk smoke variant (CI gate, no file output)", Exp_bulk.run_smoke);
    ("churn", "E-churn: query robustness under churn, retry vs no-retry -> BENCH_churn.json", Exp_fault.run);
    ("churn-smoke", "E-churn smoke variant (CI gate, no file output)", Exp_fault.run_smoke);
    ("scale", "E-scale: kernel throughput sweep to 100k+ peers -> BENCH_scale.json", Exp_scale.run);
    ("scale-smoke", "E-scale smoke variant (CI gate, no file output)", Exp_scale.run_smoke);
    ("traffic", "E-traffic: heavy traffic, adaptive balancing vs static -> BENCH_traffic.json", Exp_traffic.run);
    ("traffic-smoke", "E-traffic smoke variant (CI gate, no file output)", Exp_traffic.run_smoke);
    ("rank", "E-rank: ranking/similarity fast paths, P-Grid vs Chord -> BENCH_rank.json", Exp_rank.run);
    ("rank-smoke", "E-rank smoke variant (CI gate, no file output)", Exp_rank.run_smoke);
    ("store", "E-store: storage-backend shootout, hash vs log vs packed -> BENCH_store.json", Exp_store.run);
    ("store-smoke", "E-store smoke variant (CI gate, no file output)", Exp_store.run_smoke);
    ("micro", "Bechamel microbenchmarks", Micro.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map (fun (n, _, _) -> n) experiments
  in
  Printf.printf "UniStore experiment harness (%d experiments)\n" (List.length requested);
  Printf.printf "All times are simulated network time unless stated otherwise.\n";
  let t0 = Sys.time () in
  List.iter
    (fun name ->
      match List.find_opt (fun (n, _, _) -> String.equal n name) experiments with
      | Some (_, _, run) -> run ()
      | None ->
        Printf.printf "unknown experiment %S; available: %s\n" name
          (String.concat ", " (List.map (fun (n, _, _) -> n) experiments)))
    requested;
  Printf.printf "\n[harness done in %.1f real seconds]\n" (Sys.time () -. t0)
