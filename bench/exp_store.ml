(* E-store: storage-backend shootout -> BENCH_store.json.

   One Zipf-keyed triple dataset (repeated (attr,value) index keys,
   unique ids/payloads — the shape the triple layer actually stores) is
   loaded into each backend behind {!Unistore_pgrid.Store_intf}: the
   hash reference, the file-backed log, and the dictionary-packed
   in-memory layout. Measured per backend:

   - bytes/triple from [Store.stats] (the same deterministic memory
     model the tests assert on, not GC sampling);
   - insert, point-lookup and prefix-scan throughput in REAL seconds
     (like exp_scale, host throughput is the point here);
   - crash-restart recall: items recovered after [Store.crash_restart]
     as a fraction of items held — 1.0 for a clean log replay, lower
     with an injected torn tail, 0.0 for the memory-only backends
     (their recovery path is repair/anti-entropy, exercised in
     test/test_store.ml, not local replay).

   Regenerate with `make bench-store`; the CI gate is `store-smoke`. *)

module Rng = Unistore_util.Rng
module Zipf = Unistore_util.Zipf
module Json = Unistore_obs.Json
module Store = Unistore_pgrid.Store

let out_file = "BENCH_store.json"

(* ------------------------------------------------------------------ *)
(* Dataset and log housekeeping                                        *)

let make_items n =
  let rng = Rng.create 7 in
  let z = Zipf.create ~n:5_000 ~s:1.1 in
  Array.init n (fun i ->
      let rank = Zipf.sample z rng in
      {
        Store.key = Printf.sprintf "pubs#value#%05d" rank;
        item_id = Printf.sprintf "oid%06d" i;
        payload = Printf.sprintf "{\"oid\":%d,\"attr\":\"value\",\"rank\":%d}" i rank;
        version = 0;
      })

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_log_dir f =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "unistore-bench-store" in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)

type point = {
  label : string;
  triples : int;
  bytes_per_triple : float;
  insert_s : float;
  inserts_per_s : float;
  lookups_per_s : float;
  scan_items_per_s : float;
  recall_clean : float;
  recall_torn : float;
}

let throughput ops seconds = if seconds > 0.0 then float_of_int ops /. seconds else 0.0

let measure ~items ~lookups store =
  let n = Array.length items in
  let t0 = Unix.gettimeofday () in
  Array.iter (fun it -> ignore (Store.put store it)) items;
  let insert_s = Unix.gettimeofday () -. t0 in
  let stats = Store.stats store in
  (* Point lookups over the Zipf-hot key set. *)
  let lrng = Rng.create 13 in
  let t0 = Unix.gettimeofday () in
  let hits = ref 0 in
  for _ = 1 to lookups do
    let it = items.(Rng.int lrng n) in
    if Store.find store it.Store.key <> [] then incr hits
  done;
  let lookup_s = Unix.gettimeofday () -. t0 in
  if !hits < lookups then failwith "bench store: point lookup missed a stored key";
  (* Prefix scans: ten passes over the whole attribute region. *)
  let t0 = Unix.gettimeofday () in
  let scanned = ref 0 in
  for _ = 1 to 10 do
    scanned := !scanned + List.length (Store.with_prefix store "pubs#value#")
  done;
  let scan_s = Unix.gettimeofday () -. t0 in
  if !scanned <> 10 * n then failwith "bench store: prefix scan lost items";
  (* Crash-restart recall: clean, then with a torn tail over a reload. *)
  let held = Store.size store in
  let recall_clean = float_of_int (Store.crash_restart store) /. float_of_int held in
  let recall_torn =
    match Store.kind store with
    | Store.Log _ ->
      (* Fresh log, then tear half of it: clearing first keeps the
         replayed-and-reloaded log from still covering every item. *)
      Store.clear store;
      Array.iter (fun it -> ignore (Store.put store it)) items;
      float_of_int (Store.crash_restart ~keep_frac:0.5 store) /. float_of_int held
    | _ -> 0.0
  in
  {
    label = Store.backend_label (Store.kind store);
    triples = stats.Store.triples;
    bytes_per_triple = float_of_int stats.Store.bytes /. float_of_int n;
    insert_s;
    inserts_per_s = throughput n insert_s;
    lookups_per_s = throughput lookups lookup_s;
    scan_items_per_s = throughput !scanned scan_s;
    recall_clean;
    recall_torn;
  }

let measure_all ~n ~lookups dir =
  let items = make_items n in
  List.map
    (measure ~items ~lookups)
    [
      Store.create ();
      Store.create ~backend:(Store.Log { dir }) ~name:"bench" ();
      Store.create ~backend:Store.Packed ();
    ]

let point_json p =
  Json.Obj
    [
      ("backend", Json.Str p.label);
      ("triples", Json.Int p.triples);
      ("bytes_per_triple", Json.Float p.bytes_per_triple);
      ("insert_wall_s", Json.Float p.insert_s);
      ("inserts_per_s", Json.Float p.inserts_per_s);
      ("lookups_per_s", Json.Float p.lookups_per_s);
      ("scan_items_per_s", Json.Float p.scan_items_per_s);
      ("crash_restart_recall_clean", Json.Float p.recall_clean);
      ("crash_restart_recall_torn_half", Json.Float p.recall_torn);
    ]

let print_points points =
  Common.print_table
    [ "backend"; "triples"; "B/triple"; "ins/s"; "find/s"; "scan items/s"; "recall"; "torn" ]
    (List.map
       (fun p ->
         [
           p.label;
           Common.i p.triples;
           Common.f1 p.bytes_per_triple;
           Printf.sprintf "%.0f" p.inserts_per_s;
           Printf.sprintf "%.0f" p.lookups_per_s;
           Printf.sprintf "%.0f" p.scan_items_per_s;
           Common.f2 p.recall_clean;
           Common.f2 p.recall_torn;
         ])
       points)

let find_point points label = List.find (fun p -> String.equal p.label label) points

let check_invariants ~n points =
  let hash = find_point points "hash"
  and log = find_point points "log"
  and packed = find_point points "packed" in
  List.iter
    (fun p ->
      if p.triples <> n then
        failwith (Printf.sprintf "bench store: %s holds %d/%d triples" p.label p.triples n))
    points;
  if packed.bytes_per_triple >= hash.bytes_per_triple then
    failwith
      (Printf.sprintf "bench store: packed (%.1f B/triple) not below hash (%.1f B/triple)"
         packed.bytes_per_triple hash.bytes_per_triple);
  if log.recall_clean < 1.0 then failwith "bench store: clean log replay lost items";
  if log.recall_torn >= 1.0 then failwith "bench store: torn tail lost nothing"

let run () =
  Common.section "STORE: storage-backend shootout"
    "a universal storage must hold arbitrary triples cheaply (section 3) — compare the \
     hash reference against the log-structured and dictionary-packed backends";
  let n = 100_000 and lookups = 50_000 in
  with_log_dir (fun dir ->
      let points = measure_all ~n ~lookups dir in
      print_points points;
      check_invariants ~n points;
      let doc =
        Json.Obj
          [
            ("schema_version", Json.Int 1);
            ( "description",
              Json.Str
                "Storage-backend shootout: one 100k-triple Zipf-keyed dataset (5000 \
                 distinct index keys, s=1.1, unique ids/payloads) loaded into each \
                 Store_intf backend. bytes_per_triple comes from Store.stats (the \
                 deterministic memory model, not GC sampling); throughputs are REAL \
                 seconds on the build host; crash_restart_recall_* is the fraction of \
                 held items recovered by Store.crash_restart (log: replay, clean and \
                 with half the log torn; hash/packed: memory-only, 0.0 — overlay-level \
                 recovery is repair/anti-entropy). Regenerate with `make bench-store`. \
                 See EXPERIMENTS.md, section 'Storage'." );
            ( "config",
              Json.Obj
                [
                  ("triples", Json.Int n);
                  ("distinct_keys", Json.Int 5_000);
                  ("zipf_s", Json.Float 1.1);
                  ("lookups", Json.Int lookups);
                  ("scan_passes", Json.Int 10);
                ] );
            ("backends", Json.Arr (List.map point_json points));
          ]
      in
      let oc = open_out out_file in
      output_string oc (Json.to_string doc);
      output_char oc '\n';
      close_out oc;
      Printf.printf "\nwrote %s\n" out_file)

(* CI gate: the three backends must agree on content, packed must stay
   below hash on bytes/triple, and the log must replay cleanly — at a
   size small enough to run in seconds, without touching the file. *)
let run_smoke () =
  Common.section "STORE (smoke)" "backend invariants hold on a small Zipf dataset";
  let n = 10_000 in
  with_log_dir (fun dir ->
      let points = measure_all ~n ~lookups:2_000 dir in
      print_points points;
      check_invariants ~n points;
      Printf.printf "\nstore-smoke OK: all backends hold %d triples, packed < hash, log replays\n" n)
