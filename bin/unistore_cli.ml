(* unistore-cli: the command-line counterpart of the paper's demo UI.

   Subcommands:
   - query:   spin up a deployment, load the publications workload (or
              demo restaurants), run one VQL query, print plan + results.
   - repl:    interactive loop — type VQL queries against a live overlay
              (plus \commands to inspect it), like the demo's tabbed UI.
   - inspect: print the overlay structure: peer paths, routing-table and
              storage-load distribution. *)

module Latency = Unistore_sim.Latency
module Publications = Unistore_workload.Publications
module Demo_data = Unistore_workload.Demo_data
module Node = Unistore_pgrid.Node
module Overlay = Unistore_pgrid.Overlay
module Store = Unistore_pgrid.Store
module Bitkey = Unistore_util.Bitkey
module Stats = Unistore_util.Stats

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared options                                                      *)

let peers_t =
  Arg.(value & opt int 32 & info [ "p"; "peers" ] ~docv:"N" ~doc:"Number of simulated peers.")

let seed_t = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let overlay_t =
  let enumc = Arg.enum [ ("pgrid", Unistore.Pgrid); ("chord", Unistore.Chord_trie) ] in
  Arg.(value & opt enumc Unistore.Pgrid & info [ "overlay" ] ~docv:"KIND" ~doc:"Overlay substrate: $(b,pgrid) or $(b,chord).")

let latency_t =
  let enumc = Arg.enum [ ("lan", Latency.Lan); ("planetlab", Latency.Planetlab) ] in
  Arg.(value & opt enumc Latency.Lan & info [ "latency" ] ~docv:"MODEL" ~doc:"Latency model: $(b,lan) or $(b,planetlab).")

let backend_t =
  let enumc = Arg.enum [ ("hash", `Hash); ("log", `Log); ("packed", `Packed) ] in
  Arg.(value & opt enumc `Hash
       & info [ "backend" ] ~docv:"KIND"
           ~doc:"Per-peer storage backend (P-Grid only): $(b,hash) (in-memory ordered map, \
                 the default), $(b,log) (file-backed log-structured, one append-only file \
                 per peer under a temp directory, crash-restart capable) or $(b,packed) \
                 (dictionary-compressed in-memory).")

(* [log] keeps one append-only file per peer; key the directory by seed
   so two concurrent invocations don't replay each other's segments. *)
let resolve_backend ~seed = function
  | `Hash -> Unistore_pgrid.Store_intf.Hash
  | `Packed -> Unistore_pgrid.Store_intf.Packed
  | `Log ->
    let dir =
      Filename.concat (Filename.get_temp_dir_name ()) (Printf.sprintf "unistore-log-%d" seed)
    in
    Unistore_pgrid.Store_intf.Log { dir }

let authors_t =
  Arg.(value & opt int 20 & info [ "authors" ] ~docv:"N" ~doc:"Authors in the generated publications dataset.")

let dataset_t =
  let enumc = Arg.enum [ ("publications", `Publications); ("restaurants", `Restaurants) ] in
  Arg.(value & opt enumc `Publications & info [ "dataset" ] ~docv:"NAME" ~doc:"Workload to preload: $(b,publications) or $(b,restaurants).")

let strategy_t =
  let enumc = Arg.enum [ ("centralized", Unistore.Centralized); ("mutant", Unistore.Mutant) ] in
  Arg.(value & opt enumc Unistore.Centralized & info [ "strategy" ] ~docv:"S" ~doc:"Execution strategy: $(b,centralized) or $(b,mutant).")

let no_cache_t =
  Arg.(value & flag
       & info [ "no-cache" ]
           ~doc:"Disable the caching subsystem (routing shortcuts, result caches, gossiped \
                 statistics); the optimizer then plans from oracle statistics.")

let no_batch_t =
  Arg.(value & flag
       & info [ "no-batch" ]
           ~doc:"Disable the bulk-operation pipeline (batched inserts, in-network range \
                 aggregation, multi-key bind-join probes); every operation routes per item.")

let no_retry_t =
  Arg.(value & flag
       & info [ "no-retry" ]
           ~doc:"Disable robust query execution (timeout retries with backoff, replica \
                 failover); timed-out requests immediately yield partial results.")

let churn_t =
  Arg.(value & opt float 0.0
       & info [ "churn" ] ~docv:"RATE"
           ~doc:"Inject crash/revive churn: every 10ms of simulated time, kill this fraction \
                 of the alive peers (each revives 10ms later), so even a single query runs \
                 through several kill waves. 0 disables.")

let fault_seed_t =
  Arg.(value & opt int 7
       & info [ "fault-seed" ] ~docv:"N"
           ~doc:"Seed of the fault-injection scenario. The same seed against the same \
                 deployment replays the identical failure schedule.")

let setup_keys ~peers ~seed ~overlay ~latency ~authors ~dataset ~no_cache ~no_batch
    ?(no_retry = false) ?(store = Unistore_pgrid.Store_intf.Hash) () =
  let rng = Unistore_util.Rng.create (seed + 1) in
  let tuples, triples, sample =
    match dataset with
    | `Publications ->
      let ds =
        Publications.generate rng { Publications.default_params with n_authors = authors; typo_rate = 0.1 }
      in
      (ds.Publications.tuples, ds.Publications.triples, Publications.sample_keys ds)
    | `Restaurants ->
      let tuples = Demo_data.restaurants in
      let triples =
        List.concat_map
          (fun (oid, fields) -> Unistore.Triple.tuple_to_triples ~oid fields)
          tuples
      in
      let sample =
        List.map
          (fun (tr : Unistore.Triple.t) ->
            Unistore_triple.Keys.attr_value_key tr.Unistore.Triple.attr tr.Unistore.Triple.value)
          triples
      in
      (tuples, triples, sample)
  in
  let cache = if no_cache then Unistore.no_cache else Unistore.default_cache_config in
  let batch = if no_batch then Unistore.no_batch else Unistore.default_batch_config in
  let retry = if no_retry then Unistore.no_retry else Unistore.default_retry_config in
  let store =
    Unistore.create ~sample_keys:sample
      { Unistore.default_config with peers; seed; overlay; latency; cache; batch; retry; store }
  in
  let n = Unistore.load store tuples in
  Unistore.set_stats_of_triples store triples;
  Unistore.settle store;
  (* With caching on, let the statistics gossip converge so the optimizer
     plans from gossiped summaries rather than the oracle statistics. *)
  if not no_cache then
    for _ = 1 to 4 do
      Unistore.gossip_stats_round store
    done;
  Format.printf "[%d peers, %s overlay, %d triples loaded]@."
    peers
    (match overlay with Unistore.Pgrid -> "P-Grid" | Unistore.Chord_trie -> "Chord+trie")
    n;
  (store, sample)

let setup ~peers ~seed ~overlay ~latency ~authors ~dataset ~no_cache ~no_batch
    ?(no_retry = false) ?(store = Unistore_pgrid.Store_intf.Hash) () =
  fst
    (setup_keys ~peers ~seed ~overlay ~latency ~authors ~dataset ~no_cache ~no_batch ~no_retry
       ~store ())

(* ------------------------------------------------------------------ *)
(* query                                                               *)

(* EXPLAIN ANALYZE: the chosen physical plan with the optimizer's cost
   estimate next to what each step actually did (from the execution
   traces that also feed {!Unistore_obs.Profile}). *)
let print_explain_analyze (report : Unistore.Report.report) =
  Format.printf "@.plan (estimated vs actual):@.";
  List.iter
    (fun (t : Unistore_qproc.Exec.step_trace) ->
      let step = t.Unistore_qproc.Exec.step in
      Format.printf "  %a via %a%s at peer%d@."
        Unistore_vql.Ast.pp_pattern step.Unistore_qproc.Physical.pattern
        Unistore_qproc.Cost.pp_access step.Unistore_qproc.Physical.access
        (if step.Unistore_qproc.Physical.bindjoin then " (bind-join)" else "")
        t.Unistore_qproc.Exec.carrier;
      Format.printf "    estimated: %a@." Unistore_qproc.Cost.pp_estimate
        step.Unistore_qproc.Physical.est;
      Format.printf "    actual:    msgs=%d latency=%.1fms rows=%d -> %d@."
        t.Unistore_qproc.Exec.messages t.Unistore_qproc.Exec.latency
        t.Unistore_qproc.Exec.rows_in t.Unistore_qproc.Exec.actual_card)
    report.Unistore.Report.traces;
  Format.printf "  total estimated: %a@." Unistore_qproc.Cost.pp_estimate
    report.Unistore.Report.plan.Unistore_qproc.Physical.total_est;
  Format.printf "  total actual:    msgs=%d latency=%.1fms rows=%d@."
    report.Unistore.Report.messages report.Unistore.Report.latency
    (List.length report.Unistore.Report.rows)

let run_query peers seed overlay latency authors dataset backend strategy no_cache no_batch
    no_retry churn fault_seed explain explain_only trace profile metrics check vql =
  let store =
    setup ~peers ~seed ~overlay ~latency ~authors ~dataset ~no_cache ~no_batch ~no_retry
      ~store:(resolve_backend ~seed backend) ()
  in
  let faults =
    if churn > 0.0 then begin
      let spec =
        (* A single query lives for tens of simulated ms, so the CLI uses
           the bench cadence (kill wave every 10ms, peers down 10ms):
           steady-state dead fraction ~ rate, and every query actually
           meets churn. *)
        Unistore.Faults.spec ~seed:fault_seed
          ~churn:(Unistore.Faults.churn_spec ~interval_ms:10.0 ~down_ms:10.0 ~rate:churn ())
          ~protected:[ 0 ] ()
      in
      match Unistore.inject_faults store spec with
      | Some h ->
        Format.printf "[churn %.0f%% every 10ms, fault seed %d]@." (100.0 *. churn) fault_seed;
        Some h
      | None ->
        Format.printf "[churn ignored: fault injection needs the P-Grid overlay]@.";
        None
    end
    else None
  in
  if check then begin
    (* Static analysis only: parse, run the semantic analyzer against the
       catalog derived from the loaded dataset's statistics, report
       rustc-style diagnostics. Non-zero exit on parse or Error-severity
       diagnostics; the query is never executed. *)
    match Unistore.check store vql with
    | Error e ->
      Format.printf "%s@." e;
      exit 1
    | Ok diags ->
      Format.printf "%s@." (Unistore.Diagnostic.render_all ~src:vql diags);
      exit (if Unistore.Diagnostic.has_errors diags then 1 else 0)
  end;
  (* Scope the metrics dump to the query itself, not the bulk load. *)
  if metrics then Unistore.reset_metrics store;
  (match Unistore.explain store vql with
  | Ok plan -> Format.printf "@.%a@." Unistore.pp_plan plan
  | Error e ->
    Format.printf "error: %s@." e;
    exit 1);
  if not explain_only then begin
    match Unistore.query store ~strategy vql with
    | Ok report ->
      Format.printf "@.%a@." Unistore.pp_table report;
      Format.printf "strategy=%a bytes_shipped=%d@." Unistore.Report.pp_strategy
        report.Unistore.Report.strategy report.Unistore.Report.bytes_shipped;
      if explain then print_explain_analyze report;
      if trace then begin
        (* The paper's traceability story: per-step execution log. *)
        Format.printf "@.execution trace:@.";
        List.iter
          (fun t -> Format.printf "  %a@." Unistore_qproc.Exec.pp_step_trace t)
          report.Unistore.Report.traces
      end;
      if profile then
        (* EXPLAIN ANALYZE: per-operator rows/messages/latency. *)
        Format.printf "@.query profile:@.%a@." Unistore.pp_profile
          (Unistore.profile ~query:vql report);
      if metrics then Format.printf "@.deployment metrics:@.%s@." (Unistore.metrics_json store);
      (match faults with
      | Some h -> Format.printf "@.faults fired: %a@." Unistore.Faults.pp h
      | None -> ())
    | Error e ->
      Format.printf "error: %s@." e;
      exit 1
  end

let query_cmd =
  let vql_t = Arg.(required & pos 0 (some string) None & info [] ~docv:"VQL" ~doc:"The VQL query.") in
  let explain_t =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Execute, then print the chosen physical plan with each step's estimated cost \
                   (messages/latency/cardinality) next to what it actually cost.")
  in
  let explain_only_t =
    Arg.(value & flag & info [ "explain-only" ] ~doc:"Only show the plan; do not execute.")
  in
  let trace_t =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the per-step execution trace (operator, carrier peer, rows, messages).")
  in
  let profile_t =
    Arg.(value & flag & info [ "profile" ] ~doc:"Print the per-operator query profile: rows in/out, messages, simulated latency per executed step, plus end-to-end totals.")
  in
  let metrics_t =
    Arg.(value & flag & info [ "metrics" ] ~doc:"Print the deployment metrics registry (per-kind message counts, hop/latency histograms) as JSON, scoped to the query.")
  in
  let check_t =
    Arg.(value & flag & info [ "check" ] ~doc:"Static analysis only: run the VQL semantic analyzer (unbound variables, type clashes against the dataset catalog, unsatisfiable filters, Cartesian products, LIMIT/ORDER problems) and exit without executing. Exit status is non-zero on parse errors or error-severity diagnostics.")
  in
  let term =
    Term.(
      const run_query $ peers_t $ seed_t $ overlay_t $ latency_t $ authors_t $ dataset_t
      $ backend_t $ strategy_t $ no_cache_t $ no_batch_t $ no_retry_t $ churn_t $ fault_seed_t
      $ explain_t $ explain_only_t $ trace_t $ profile_t $ metrics_t $ check_t $ vql_t)
  in
  Cmd.v (Cmd.info "query" ~doc:"Run one VQL query over a freshly built deployment") term

(* ------------------------------------------------------------------ *)
(* lint — run the whole static-analysis layer against a live deployment *)

(* The paper's running example (section 2): authors, publications,
   conferences; skyline over age/productivity with a similarity filter. *)
let paper_query =
  "SELECT ?name,?age,?cnt\n\
   WHERE {(?a,'name',?name) (?a,'age',?age)\n\
   (?a,'num_of_pubs',?cnt)\n\
   (?a,'has_published',?title) (?p,'title',?title)\n\
   (?p,'published_in',?conf) (?c,'confname',?conf)\n\
   (?c,'series',?sr) FILTER edist(?sr,'ICDE')<3\n\
   }\n\
   ORDER BY SKYLINE OF ?age MIN, ?cnt MAX"

let demo_workload = function
  | `Publications ->
    [
      "SELECT ?name,?age WHERE { (?a,'name',?name) (?a,'age',?age) FILTER ?age > 30 }";
      "SELECT ?t,?y WHERE { (?p,'title',?t) (?p,'year',?y) FILTER ?y >= 2000 } ORDER BY ?y DESC LIMIT 5";
      paper_query;
    ]
  | `Restaurants ->
    [
      "SELECT ?n WHERE { (?r,'rest_name',?n) (?r,'cuisine',?c) FILTER contains(?c,'ital') }";
      "SELECT ?n,?p WHERE { (?r,'rest_name',?n) (?r,'price',?p) } ORDER BY ?p LIMIT 3";
    ]

let lint peers seed overlay latency authors dataset allowed_revisits =
  let store = setup ~peers ~seed ~overlay ~latency ~authors ~dataset ~no_cache:false ~no_batch:false () in
  let failures = ref 0 in
  let report section diags =
    Format.printf "@.%s:@." section;
    Format.printf "  %s@."
      (String.concat "\n  " (String.split_on_char '\n' (Unistore.Diagnostic.render_all diags)));
    if Unistore.Diagnostic.has_errors diags then incr failures
  in
  (* 1. Semantic analysis of the demo workload (should be clean). *)
  let sem_diags =
    List.concat_map
      (fun src ->
        match Unistore.check store src with
        | Ok ds -> ds
        | Error e ->
          [ Unistore.Diagnostic.makef ~severity:Unistore.Diagnostic.Error ~code:"parse-error"
              "demo query failed to parse: %s" (String.trim e) ])
      (demo_workload dataset)
  in
  report "semantic analyzer (demo workload)" sem_diags;
  (* 2. Trace linting: record a traced window covering the workload plus
     one write, then check request/reply matching, routing loops, clock
     monotonicity and message-count conservation against the metrics
     registry (both attached at the same instant, so they cover the same
     window). *)
  Unistore.reset_metrics store;
  let tr = Unistore.start_trace store in
  List.iter
    (fun src ->
      match Unistore.query store src with
      | Ok _ -> ()
      | Error e -> Format.printf "warning: demo query failed: %s@." (String.trim e))
    (demo_workload dataset);
  ignore
    (Unistore.insert_tuple store ~oid:"lint-probe"
       [ ("name", Unistore.Value.S "lint probe"); ("age", Unistore.Value.I 1) ]);
  Unistore.settle store;
  Unistore.stop_trace store;
  report "trace linter"
    (Unistore.lint_trace store ~allowed_revisits ~against_metrics:true tr);
  (* 3. Overlay invariant audit (trie consistency / ring well-formedness,
     data placement, replica agreement). *)
  report "overlay auditor" (Unistore.audit store);
  if !failures = 0 then Format.printf "@.lint: OK@."
  else Format.printf "@.lint: %d section(s) with errors@." !failures;
  exit (if !failures = 0 then 0 else 1)

let lint_cmd =
  let revisits_t =
    Arg.(value & opt int 0
         & info [ "allowed-revisits" ] ~docv:"N"
             ~doc:"Times a correlated message may revisit the same peer before the trace linter calls it a routing loop (raise for retry-heavy runs).")
  in
  let term =
    Term.(
      const lint $ peers_t $ seed_t $ overlay_t $ latency_t $ authors_t $ dataset_t $ revisits_t)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the full static-analysis layer: semantic-check the demo workload, lint a recorded message trace, audit overlay invariants")
    term

(* ------------------------------------------------------------------ *)
(* lint-src — the source-level linter over this repo's own tree         *)

let lint_src rule_names paths =
  let rules =
    match rule_names with
    | [] -> Unistore.Srclint.all_rules
    | names ->
      List.map
        (fun n ->
          match Unistore.Srclint.rule_of_name n with
          | Some r -> r
          | None ->
            Format.eprintf "lint-src: unknown rule '%s'; known: %s@." n
              (String.concat ", "
                 (List.map Unistore.Srclint.rule_name Unistore.Srclint.all_rules));
            exit 2)
        names
  in
  let paths = match paths with [] -> [ "lib"; "bin" ] | ps -> ps in
  (match List.filter (fun p -> not (Sys.file_exists p)) paths with
  | [] -> ()
  | missing ->
    Format.eprintf "lint-src: no such path: %s@." (String.concat ", " missing);
    exit 2);
  let reports = Unistore.lint_src ~rules paths in
  print_string (Unistore.Srclint.render_reports reports);
  exit (if Unistore.Srclint.has_errors reports then 1 else 0)

let lint_src_cmd =
  let rules_t =
    Arg.(value & opt_all string []
         & info [ "rule" ] ~docv:"RULE"
             ~doc:"Enable only this rule (repeatable). Default: all of unordered-iteration, ambient-effects, polymorphic-compare, protocol-exhaustiveness.")
  in
  let paths_t = Arg.(value & pos_all string [] & info [] ~docv:"PATH") in
  let term = Term.(const lint_src $ rules_t $ paths_t) in
  Cmd.v
    (Cmd.info "lint-src"
       ~doc:"Lint this repository's OCaml sources for determinism hazards (unordered hashtable iteration, ambient randomness/time, polymorphic compare at float/Bitkey positions) and protocol-table exhaustiveness")
    term

(* ------------------------------------------------------------------ *)
(* traffic — open-loop load generation against a live deployment        *)

let run_traffic peers seed latency authors dataset scenario arrival_rate peak duration warmup
    zipf_s service_ms traffic_seed no_balancing =
  let store, keys =
    setup_keys ~peers ~seed ~overlay:Unistore.Pgrid ~latency ~authors ~dataset ~no_cache:false
      ~no_batch:false ()
  in
  let keys = List.sort_uniq String.compare keys in
  let cfg =
    {
      Unistore.default_traffic_config with
      Unistore.scenario;
      arrival_rate;
      peak;
      traffic_duration_ms = duration;
      traffic_warmup_ms = warmup;
      traffic_zipf_s = zipf_s;
      service_ms;
      traffic_seed;
      balance = (if no_balancing then Unistore.no_balancing else Unistore.default_balance_config);
    }
  in
  Format.printf "[traffic: %s, %.0f q/s base%s, zipf %.2f, service %.1fms/msg, %s]@."
    (match scenario with
    | Unistore.Steady_load -> "steady"
    | Unistore.Flash_crowd -> "flash crowd"
    | Unistore.Diurnal_load -> "diurnal")
    arrival_rate
    (match scenario with
    | Unistore.Flash_crowd -> Printf.sprintf " (peak x%.1f)" peak
    | _ -> "")
    zipf_s service_ms
    (if no_balancing then "static baseline (no balancing)" else "adaptive balancing");
  Unistore.reset_metrics store;
  let r = Unistore.run_traffic store ~keys cfg in
  let e = r.Unistore.engine in
  Format.printf "@.traffic profile (measurement window):@.";
  Format.printf "  offered %d, measured %d, ok %d, served in-window %d, gave up %d@."
    e.Unistore.Traffic.offered e.Unistore.Traffic.measured e.Unistore.Traffic.ok
    e.Unistore.Traffic.served_in_window e.Unistore.Traffic.giveups;
  Format.printf "  served throughput: %.1f q/s@." e.Unistore.Traffic.throughput_qps;
  Format.printf "  query latency ms: mean %.1f / p50 %.1f / p90 %.1f / p99 %.1f / max %.1f@."
    e.Unistore.Traffic.lat_mean_ms e.Unistore.Traffic.lat_p50_ms e.Unistore.Traffic.lat_p90_ms
    e.Unistore.Traffic.lat_p99_ms e.Unistore.Traffic.lat_max_ms;
  Format.printf "  queueing delay ms: p50 %.1f / p99 %.1f / max %.1f (%d of %d messages waited)@."
    r.Unistore.queue_p50_ms r.Unistore.queue_p99_ms r.Unistore.queue_max_ms
    r.Unistore.queue_delayed r.Unistore.queue_msgs;
  Format.printf "  retries %d; boosts spawned %d, retired %d; boost-served lookups %d@."
    r.Unistore.retries r.Unistore.boosts_spawned r.Unistore.boosts_retired r.Unistore.hot_serves;
  Format.printf "  results digest: %s@." r.Unistore.results_digest

let traffic_cmd =
  let scenario_t =
    let enumc =
      Arg.enum
        [
          ("steady", Unistore.Steady_load);
          ("flash", Unistore.Flash_crowd);
          ("diurnal", Unistore.Diurnal_load);
        ]
    in
    Arg.(value & opt enumc Unistore.Flash_crowd
         & info [ "traffic" ] ~docv:"SCENARIO"
             ~doc:"Load schedule: $(b,steady), $(b,flash) (crowd ramps to a peak and holds it \
                   until the stream ends) or $(b,diurnal) (sinusoidal day/night cycle).")
  in
  let rate_t =
    Arg.(value & opt float 120.0
         & info [ "arrival-rate" ] ~docv:"QPS"
             ~doc:"Base offered load in queries per second. The open-loop generator never slows \
                   down when the system backs up; that is the point.")
  in
  let peak_t =
    Arg.(value & opt float 10.0
         & info [ "peak" ] ~docv:"X" ~doc:"Flash-crowd peak multiplier (flash scenario only).")
  in
  let duration_t =
    Arg.(value & opt float 16_000.0
         & info [ "duration" ] ~docv:"MS" ~doc:"Arrival stream length, simulated ms.")
  in
  let warmup_t =
    Arg.(value & opt float 2_000.0
         & info [ "warmup" ] ~docv:"MS" ~doc:"Requests issued before this instant are not measured.")
  in
  let zipf_t =
    Arg.(value & opt float 1.1
         & info [ "zipf" ] ~docv:"S" ~doc:"Key-popularity skew: Zipf exponent over the sorted key population.")
  in
  let service_t =
    Arg.(value & opt float 3.0
         & info [ "service-ms" ] ~docv:"MS"
             ~doc:"Per-message service time of every peer's FIFO queue; 0 disables the queueing model.")
  in
  let traffic_seed_t =
    Arg.(value & opt int 0x7AF1C
         & info [ "traffic-seed" ] ~docv:"SEED"
             ~doc:"Seed of the workload stream, independent of the deployment seed: the same \
                   value replays a byte-identical request sequence.")
  in
  let no_balancing_t =
    Arg.(value & flag
         & info [ "no-balancing" ]
             ~doc:"Disable adaptive load balancing (per-peer EWMA retry deadlines, hot-region \
                   boost replication, serving-set rotation); the experimental static baseline.")
  in
  let term =
    Term.(
      const run_traffic $ peers_t $ seed_t $ latency_t $ authors_t $ dataset_t $ scenario_t
      $ rate_t $ peak_t $ duration_t $ warmup_t $ zipf_t $ service_t $ traffic_seed_t
      $ no_balancing_t)
  in
  Cmd.v
    (Cmd.info "traffic"
       ~doc:"Drive an open-loop traffic stream (steady, flash crowd or diurnal) against a live \
             P-Grid deployment and print served throughput, latency and queueing-delay \
             percentiles")
    term

(* ------------------------------------------------------------------ *)
(* repl                                                                *)

let repl peers seed overlay latency authors dataset backend =
  let store =
    setup ~peers ~seed ~overlay ~latency ~authors ~dataset ~no_cache:false ~no_batch:false
      ~store:(resolve_backend ~seed backend) ()
  in
  Format.printf
    "Interactive VQL. End with ';' on its own line. Commands: \\help \\stats \\peers \\quit@.";
  let buf = Buffer.create 256 in
  let rec loop () =
    if Buffer.length buf = 0 then Format.printf "vql> @?" else Format.printf "...> @?";
    match In_channel.input_line stdin with
    | None -> ()
    | Some line ->
      let trimmed = String.trim line in
      if trimmed = "\\quit" || trimmed = "\\q" then ()
      else if trimmed = "\\help" then begin
        Format.printf
          "Enter a VQL query terminated by ';'. \\stats = data statistics, \\peers = overlay \
           summary, \\quit = exit.@.";
        loop ()
      end
      else if trimmed = "\\stats" then begin
        Format.printf "%a@." Unistore_qproc.Qstats.pp (Unistore.stats store);
        loop ()
      end
      else if trimmed = "\\peers" then begin
        (match Unistore.pgrid store with
        | Some ov ->
          List.iter (fun nd -> Format.printf "  %a@." Node.pp nd) (Overlay.nodes ov)
        | None -> Format.printf "  (chord overlay: %d peers)@." peers);
        loop ()
      end
      else begin
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        if String.length trimmed > 0 && trimmed.[String.length trimmed - 1] = ';' then begin
          let src = Buffer.contents buf in
          Buffer.clear buf;
          let src = String.sub src 0 (String.rindex src ';') in
          (match Unistore.query store src with
          | Ok report -> Format.printf "%a@." Unistore.pp_table report
          | Error e -> Format.printf "error: %s@." e);
          loop ()
        end
        else loop ()
      end
  in
  loop ()

let repl_cmd =
  let term =
    Term.(
      const repl $ peers_t $ seed_t $ overlay_t $ latency_t $ authors_t $ dataset_t $ backend_t)
  in
  Cmd.v (Cmd.info "repl" ~doc:"Interactive VQL shell against a live simulated overlay") term

(* ------------------------------------------------------------------ *)
(* inspect                                                             *)

let inspect peers seed overlay latency authors dataset =
  let store = setup ~peers ~seed ~overlay ~latency ~authors ~dataset ~no_cache:false ~no_batch:false () in
  match Unistore.pgrid store with
  | None -> Format.printf "inspect currently supports the P-Grid overlay only@."
  | Some ov ->
    Format.printf "@.Trie depth: %d@." (Overlay.depth ov);
    Format.printf "@.Peer paths, routing tables and storage load:@.";
    List.iter
      (fun (nd : Node.t) ->
        Format.printf "  peer%-4d path=%-12s refs=%-3d replicas=%d items=%d@." nd.Node.id
          (Bitkey.to_string nd.Node.path) (Node.table_size nd)
          (List.length nd.Node.replicas) (Store.size nd.Node.store))
      (Overlay.nodes ov);
    let sizes =
      Overlay.nodes ov |> List.map (fun (nd : Node.t) -> float_of_int (Store.size nd.Node.store))
    in
    let s = Stats.summarize sizes in
    Format.printf "@.Storage balance: %a@." Stats.pp_summary s;
    let violations = Unistore_pgrid.Build.check_invariants ov in
    if violations = [] then Format.printf "Structural invariants: OK@."
    else begin
      Format.printf "Structural violations:@.";
      List.iter (fun v -> Format.printf "  %s@." v) violations
    end

let inspect_cmd =
  let term =
    Term.(const inspect $ peers_t $ seed_t $ overlay_t $ latency_t $ authors_t $ dataset_t)
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Print overlay structure: paths, routing tables, storage balance")
    term

let () =
  let doc = "UniStore: querying a DHT-based universal storage (simulated deployment)" in
  let info = Cmd.info "unistore-cli" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ query_cmd; traffic_cmd; repl_cmd; inspect_cmd; lint_cmd; lint_src_cmd ]))
