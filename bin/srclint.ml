(* srclint — the source-level determinism & protocol-exhaustiveness
   linter (see Unistore_analysis.Srclint). Exit status 1 when any
   non-suppressed error-severity finding remains, so it gates CI. *)

module Srclint = Unistore_analysis.Srclint

let usage = "srclint [--rule RULE]... [PATH]...\nLint OCaml sources (default paths: lib bin)."

let () =
  let paths = ref [] in
  let rules = ref [] in
  let add_rule name =
    match Srclint.rule_of_name name with
    | Some r -> rules := r :: !rules
    | None ->
      prerr_endline
        ("srclint: unknown rule '" ^ name ^ "'; known: "
        ^ String.concat ", " (List.map Srclint.rule_name Srclint.all_rules));
      exit 2
  in
  let spec =
    [
      ( "--rule",
        Arg.String add_rule,
        "RULE Enable only this rule (repeatable; default: all rules)" );
      ( "--list-rules",
        Arg.Unit
          (fun () ->
            List.iter (fun r -> print_endline (Srclint.rule_name r)) Srclint.all_rules;
            exit 0),
        " List the rule names and exit" );
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let paths = match List.rev !paths with [] -> [ "lib"; "bin" ] | ps -> ps in
  let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
  if missing <> [] then begin
    prerr_endline ("srclint: no such path: " ^ String.concat ", " missing);
    exit 2
  end;
  let rules = match !rules with [] -> Srclint.all_rules | rs -> List.rev rs in
  let reports = Srclint.lint_paths ~rules paths in
  print_string (Srclint.render_reports reports);
  exit (if Srclint.has_errors reports then 1 else 0)
