let q = 3

let oid_key oid = "O\000" ^ oid
let oid_prefix = "O\000"
let oid_region_end = "O\001"
let attr_value_key attr v = "A\000" ^ attr ^ "\000" ^ Value.encode v
let value_key v = "V\000" ^ Value.encode v
let qgram_key gram = "Q\000" ^ gram

let attr_range attr ~lo ~hi =
  ("A\000" ^ attr ^ "\000" ^ Value.encode lo, "A\000" ^ attr ^ "\000" ^ Value.encode hi)

let attr_prefix attr = "A\000" ^ attr ^ "\000"

let attr_string_prefix attr ~string_prefix = "A\000" ^ attr ^ "\000s" ^ string_prefix

let value_range ~lo ~hi = ("V\000" ^ Value.encode lo, "V\000" ^ Value.encode hi)
