module Store = Unistore_pgrid.Store
module Sim = Unistore_sim.Sim
module Net = Unistore_sim.Net
module Overlay = Unistore_pgrid.Overlay
module Chord = Unistore_chord.Chord
module Trie_index = Unistore_chord.Trie_index

type result = {
  items : Store.item list;
  hops : int;
  peers_hit : int;
  complete : bool;
  completeness : float;
      (* coverage estimate in [0,1] (regions reached / regions
         addressed); 1.0 iff [complete] -- see {!Unistore_pgrid.Overlay} *)
  latency : float;
}

type t = {
  name : string;
  peers : int;
  sim : Sim.t;
  insert :
    origin:int -> key:string -> item_id:string -> payload:string -> k:(bool -> unit) -> unit;
  delete : origin:int -> key:string -> item_id:string -> k:(bool -> unit) -> unit;
  lookup : origin:int -> key:string -> k:(result -> unit) -> unit;
  range : origin:int -> lo:string -> hi:string -> k:(result -> unit) -> unit;
  range_topn :
    (origin:int -> lo:string -> hi:string -> n:int -> k:(result -> unit) -> unit) option;
  prefix : origin:int -> prefix:string -> k:(result -> unit) -> unit;
  broadcast : origin:int -> pred:(Store.item -> bool) -> k:(result -> unit) -> unit;
  scan_reduce :
    (origin:int ->
    lo:string ->
    hi:string ->
    pred:(Store.item -> bool) ->
    reduce:(Store.item list -> Store.item list) ->
    k:(result -> unit) ->
    unit)
    option;
  bulk_insert : (origin:int -> items:Store.item list -> k:(result -> unit) -> unit) option;
  multi_lookup :
    (origin:int ->
    keys:string list ->
    k:((string * Store.item list) list * result -> unit) ->
    unit)
    option;
  send_task : (src:int -> dst:int -> bytes:int -> (int -> unit) -> unit) option;
  total_sent : unit -> int;
  expected_latency : float;
  depth : unit -> int;
  alive_peers : unit -> int list;
  responsible_peer : string -> int option;
  stat_gossip_round : (unit -> unit) option;
  statcache_of : (int -> Unistore_cache.Statcache.t) option;
}

let await t f =
  let cell = ref None in
  f (fun r -> cell := Some r);
  ignore (Sim.run_until t.sim (fun () -> !cell <> None));
  match !cell with
  | Some r -> r
  | None ->
    { items = []; hops = 0; peers_hit = 0; complete = false; completeness = 0.0; latency = 0.0 }

let insert_sync t ~origin ~key ~item_id ~payload =
  let cell = ref None in
  t.insert ~origin ~key ~item_id ~payload ~k:(fun ok -> cell := Some ok);
  ignore (Sim.run_until t.sim (fun () -> !cell <> None));
  Option.value ~default:false !cell

let delete_sync t ~origin ~key ~item_id =
  let cell = ref None in
  t.delete ~origin ~key ~item_id ~k:(fun ok -> cell := Some ok);
  ignore (Sim.run_until t.sim (fun () -> !cell <> None));
  Option.value ~default:false !cell

let lookup_sync t ~origin ~key = await t (fun k -> t.lookup ~origin ~key ~k)
let range_sync t ~origin ~lo ~hi = await t (fun k -> t.range ~origin ~lo ~hi ~k)
let prefix_sync t ~origin ~prefix = await t (fun k -> t.prefix ~origin ~prefix ~k)
let broadcast_sync t ~origin ~pred = await t (fun k -> t.broadcast ~origin ~pred ~k)

(* ------------------------------------------------------------------ *)

let of_overlay_result (r : Overlay.result) =
  {
    items = r.Overlay.items;
    hops = r.Overlay.hops;
    peers_hit = r.Overlay.peers_hit;
    complete = r.Overlay.complete;
    completeness = r.Overlay.completeness;
    latency = r.Overlay.latency;
  }

let of_pgrid ov =
  let net = Overlay.net ov in
  {
    name = "pgrid";
    peers = Overlay.node_count ov;
    sim = Overlay.sim ov;
    insert =
      (fun ~origin ~key ~item_id ~payload ~k ->
        Overlay.insert ov ~origin ~key ~item_id ~payload
          ~k:(fun r -> k r.Overlay.complete)
          ());
    delete =
      (fun ~origin ~key ~item_id ~k ->
        Overlay.delete ov ~origin ~key ~item_id ~k:(fun r -> k r.Overlay.complete));
    lookup = (fun ~origin ~key ~k -> Overlay.lookup ov ~origin ~key ~k:(fun r -> k (of_overlay_result r)));
    range =
      (fun ~origin ~lo ~hi ~k ->
        Overlay.range ov ~origin ~lo ~hi ~k:(fun r -> k (of_overlay_result r)) ());
    range_topn =
      Some
        (fun ~origin ~lo ~hi ~n ~k ->
          Overlay.range ov ~origin ~strategy:Unistore_pgrid.Message.Sequential ~budget:n ~lo ~hi
            ~k:(fun r -> k (of_overlay_result r))
            ());
    prefix =
      (fun ~origin ~prefix ~k ->
        Overlay.prefix ov ~origin ~prefix ~k:(fun r -> k (of_overlay_result r)));
    broadcast =
      (fun ~origin ~pred ~k ->
        Overlay.broadcast ov ~origin ~pred ~k:(fun r -> k (of_overlay_result r)) ());
    scan_reduce =
      Some
        (fun ~origin ~lo ~hi ~pred ~reduce ~k ->
          Overlay.broadcast ov ~origin ~lo ~hi ~reduce ~pred
            ~k:(fun r -> k (of_overlay_result r))
            ());
    bulk_insert =
      (if (Overlay.config ov).Unistore_pgrid.Config.bulk_insert then
         Some
           (fun ~origin ~items ~k ->
             Overlay.bulk_insert ov ~origin ~items ~k:(fun r -> k (of_overlay_result r)))
       else None);
    multi_lookup =
      (if (Overlay.config ov).Unistore_pgrid.Config.multi_probe then
         Some
           (fun ~origin ~keys ~k ->
             Overlay.multi_lookup ov ~origin ~keys ~k:(fun (found, r) ->
                 k (found, of_overlay_result r)))
       else None);
    send_task = Some (fun ~src ~dst ~bytes run -> Overlay.send_task ov ~src ~dst ~bytes run);
    total_sent = (fun () -> Net.total_sent net);
    expected_latency = Unistore_sim.Latency.expected (Net.latency net);
    depth = (fun () -> Overlay.depth ov);
    alive_peers = (fun () -> Net.alive_peers net);
    responsible_peer =
      (fun key ->
        Overlay.responsible ov key
        |> List.filter_map (fun (nd : Unistore_pgrid.Node.t) ->
               if Net.is_alive net nd.Unistore_pgrid.Node.id then Some nd.Unistore_pgrid.Node.id
               else None)
        |> function
        | [] -> None
        | p :: _ -> Some p);
    stat_gossip_round =
      Some
        (fun () ->
          Unistore_pgrid.Gossip.stats_round ov ~sample:Stat_sample.of_node;
          Sim.run_all (Overlay.sim ov));
    statcache_of = Some (fun peer -> (Overlay.node ov peer).Unistore_pgrid.Node.stat_cache);
  }

(* ------------------------------------------------------------------ *)

let of_chord_result (r : Chord.result) =
  {
    items = r.Chord.items;
    hops = r.Chord.hops;
    peers_hit = r.Chord.peers_hit;
    complete = r.Chord.complete;
    completeness = (if r.Chord.complete then 1.0 else 0.0);
    latency = r.Chord.latency;
  }

(* Chord stores bucket-wrapped items; unwrap to the caller's view. *)
let decode_bucket_item (i : Store.item) =
  if String.length i.Store.key >= 2 && String.sub i.Store.key 0 2 = "B:" then
    match Trie_index.decode_payload i.Store.payload with
    | Some (key, payload) ->
      let item_id =
        match String.index_opt i.Store.item_id '#' with
        | Some j -> String.sub i.Store.item_id 0 j
        | None -> i.Store.item_id
      in
      Some { Store.key; item_id; payload; version = i.Store.version }
    | None -> None
  else None

let of_chord_trie chord =
  let n = Chord.node_count chord in
  let log2n =
    let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
    go 0 n
  in
  {
    name = "chord+trie";
    peers = n;
    sim = Chord.sim chord;
    insert =
      (fun ~origin ~key ~item_id ~payload ~k ->
        Trie_index.insert chord ~origin ~key ~item_id ~payload ~k ());
    delete =
      (fun ~origin ~key ~item_id ~k ->
        (* Remove the bucket entry; trie markers stay (they are hints and
           merely cost an empty bucket probe later). *)
        let hex = Trie_index.hex_of_key key in
        Chord.del chord ~origin ~key:("B:" ^ hex) ~item_id:(item_id ^ "#" ^ key)
          ~k:(fun r -> k r.Chord.complete));
    lookup =
      (fun ~origin ~key ~k ->
        let hex = Trie_index.hex_of_key key in
        Chord.get chord ~origin ~key:("B:" ^ hex) ~k:(fun r ->
            let items =
              List.filter_map decode_bucket_item r.Chord.items
              |> List.filter (fun (i : Store.item) -> String.equal i.Store.key key)
            in
            k { (of_chord_result r) with items }));
    range =
      (fun ~origin ~lo ~hi ~k ->
        Trie_index.range chord ~origin ~lo ~hi ~k:(fun r -> k (of_chord_result r)));
    range_topn = None;
    prefix =
      (fun ~origin ~prefix ~k ->
        let hi = prefix ^ String.make 64 '\xff' in
        Trie_index.range chord ~origin ~lo:prefix ~hi ~k:(fun r -> k (of_chord_result r)));
    broadcast =
      (fun ~origin ~pred ~k ->
        let wrapped raw =
          match decode_bucket_item raw with Some i -> pred i | None -> false
        in
        Chord.broadcast chord ~origin ~pred:wrapped ~k:(fun r ->
            let items = List.filter_map decode_bucket_item r.Chord.items in
            k { (of_chord_result r) with items }));
    scan_reduce = None;
    bulk_insert = None;
    multi_lookup = None;
    send_task = None;
    total_sent = (fun () -> Chord.total_sent chord);
    expected_latency = Chord.expected_latency chord;
    depth = (fun () -> log2n);
    alive_peers = (fun () -> Chord.alive_peers chord);
    responsible_peer =
      (fun key ->
        let hex = Trie_index.hex_of_key key in
        let p = Chord.responsible chord ("B:" ^ hex) in
        if Chord.is_alive chord p then Some p else None);
    stat_gossip_round = None;
    statcache_of = None;
  }
