module Store = Unistore_pgrid.Store
module Sim = Unistore_sim.Sim
module Strdist = Unistore_util.Strdist
module Topk = Unistore_util.Topk

type rank_config = {
  prune_grams : bool;
  batch_grams : bool;
  topn_budget : bool;
  skyline_pushdown : bool;
}

let default_rank =
  { prune_grams = true; batch_grams = true; topn_budget = true; skyline_pushdown = true }

let no_rank =
  { prune_grams = false; batch_grams = false; topn_budget = false; skyline_pushdown = false }

type t = { dht : Dht.t; qgrams : bool; rank : rank_config }

type meta = {
  hops : int;
  peers_hit : int;
  complete : bool;
  completeness : float;
  latency : float;
  messages : int;
}

let pp_meta fmt m =
  Format.fprintf fmt "hops=%d peers=%d complete=%b coverage=%.2f latency=%.1fms msgs=%d" m.hops
    m.peers_hit m.complete m.completeness m.latency m.messages

let create ?(qgrams = true) ?(rank = default_rank) dht = { dht; qgrams; rank }
let dht t = t.dht
let qgrams_enabled t = t.qgrams
let rank t = t.rank

(* ------------------------------------------------------------------ *)
(* Insertion                                                           *)

let index_keys t (tr : Triple.t) =
  let base =
    [ Keys.oid_key tr.Triple.oid; Keys.attr_value_key tr.Triple.attr tr.Triple.value;
      Keys.value_key tr.Triple.value ]
  in
  let grams =
    if t.qgrams then
      match Value.as_string tr.Triple.value with
      | Some s -> List.map Keys.qgram_key (Strdist.distinct_qgrams ~q:Keys.q s)
      | None -> []
    else []
  in
  base @ grams

let insert t ~origin tr ~k =
  let payload = Triple.serialize tr in
  let item_id = Triple.id tr in
  let keys = index_keys t tr in
  let outstanding = ref (List.length keys) in
  let ok = ref true in
  List.iter
    (fun key ->
      t.dht.Dht.insert ~origin ~key ~item_id ~payload ~k:(fun success ->
          if not success then ok := false;
          decr outstanding;
          if !outstanding = 0 then k !ok))
    keys

let insert_sync t ~origin tr =
  let cell = ref None in
  insert t ~origin tr ~k:(fun ok -> cell := Some ok);
  ignore (Sim.run_until t.dht.Dht.sim (fun () -> !cell <> None));
  Option.value ~default:false !cell

let delete t ~origin tr ~k =
  let item_id = Triple.id tr in
  let keys = index_keys t tr in
  let outstanding = ref (List.length keys) in
  let ok = ref true in
  List.iter
    (fun key ->
      t.dht.Dht.delete ~origin ~key ~item_id ~k:(fun success ->
          if not success then ok := false;
          decr outstanding;
          if !outstanding = 0 then k !ok))
    keys

let delete_sync t ~origin tr =
  let cell = ref None in
  delete t ~origin tr ~k:(fun ok -> cell := Some ok);
  ignore (Sim.run_until t.dht.Dht.sim (fun () -> !cell <> None));
  Option.value ~default:false !cell

(* Replacing the value of one (OID, attribute, old) triple is a delete of
   the old index entries plus an insert of the new ones — the key changes
   with the value, so LWW versioning alone cannot express it. *)
let update_value_sync t ~origin ~oid ~attr ~old_value new_value =
  let old_triple = Triple.make ~oid ~attr old_value in
  let new_triple = Triple.make ~oid ~attr new_value in
  let deleted = delete_sync t ~origin old_triple in
  let inserted = insert_sync t ~origin new_triple in
  deleted && inserted

let insert_tuple_sync t ~origin ~oid fields =
  let triples = Triple.tuple_to_triples ~oid fields in
  List.fold_left (fun acc tr -> if insert_sync t ~origin tr then acc + 1 else acc) 0 triples

(* Bulk insertion: materialize every index entry of every triple and ship
   them as one batch. Falls back to per-triple insertion when the
   substrate has no batch path. *)
let items_of_triples t triples =
  List.concat_map
    (fun tr ->
      let payload = Triple.serialize tr in
      let item_id = Triple.id tr in
      List.map
        (fun key -> { Store.key; item_id; payload; version = 0 })
        (index_keys t tr))
    triples

let insert_bulk t ~origin triples ~k =
  match (triples, t.dht.Dht.bulk_insert) with
  | [], _ -> k true
  | _, Some bulk -> bulk ~origin ~items:(items_of_triples t triples) ~k:(fun r -> k r.Dht.complete)
  | _, None ->
    let outstanding = ref (List.length triples) in
    let ok = ref true in
    List.iter
      (fun tr ->
        insert t ~origin tr ~k:(fun success ->
            if not success then ok := false;
            decr outstanding;
            if !outstanding = 0 then k !ok))
      triples

let insert_bulk_sync t ~origin triples =
  let cell = ref None in
  insert_bulk t ~origin triples ~k:(fun ok -> cell := Some ok);
  ignore (Sim.run_until t.dht.Dht.sim (fun () -> !cell <> None));
  Option.value ~default:false !cell

(* ------------------------------------------------------------------ *)
(* Result decoding                                                     *)

(* First-seen dedup: when two replicas answer with different versions
   of a triple, the one earlier in the reply list wins. That is only
   deterministic because store scans are — every backend yields items
   in ascending key order, newest-first within a key (the ordering
   contract of {!Unistore_pgrid.Store_intf}, checked differentially by
   test/test_store.ml), and the overlay sorts merged multi-peer replies
   ([Overlay.dedupe_items]) before they reach us. If backends disagreed
   on scan order, same-seed runs with different [--backend] settings
   would return different triples here. *)
let decode_items items =
  let seen = Hashtbl.create (List.length items) in
  List.filter_map
    (fun (i : Store.item) ->
      match Triple.deserialize i.Store.payload with
      | Some tr ->
        let id = Triple.id tr in
        if Hashtbl.mem seen id then None
        else begin
          Hashtbl.replace seen id ();
          Some tr
        end
      | None -> None)
    items

let decoded k (r : Dht.result) = k (decode_items r.Dht.items, r)

(* ------------------------------------------------------------------ *)
(* Access paths                                                        *)

let by_oid t ~origin oid ~k = t.dht.Dht.lookup ~origin ~key:(Keys.oid_key oid) ~k:(decoded k)

let by_attr_value t ~origin ~attr v ~k =
  t.dht.Dht.lookup ~origin ~key:(Keys.attr_value_key attr v) ~k:(decoded k)

let by_attr_range t ~origin ~attr ~lo ~hi ~k =
  let lo, hi = Keys.attr_range attr ~lo ~hi in
  t.dht.Dht.range ~origin ~lo ~hi ~k:(decoded k)

let by_attr_all t ~origin ~attr ~k =
  t.dht.Dht.prefix ~origin ~prefix:(Keys.attr_prefix attr) ~k:(decoded k)

let by_attr_string_prefix t ~origin ~attr ~string_prefix ~k =
  t.dht.Dht.prefix ~origin ~prefix:(Keys.attr_string_prefix attr ~string_prefix) ~k:(decoded k)

let by_value t ~origin v ~k = t.dht.Dht.lookup ~origin ~key:(Keys.value_key v) ~k:(decoded k)

let by_value_range t ~origin ~lo ~hi ~k =
  let lo, hi = Keys.value_range ~lo ~hi in
  t.dht.Dht.range ~origin ~lo ~hi ~k:(decoded k)

let top_n_by_attr t ~origin ~attr ~n ?lo ?hi ~k () =
  let lo_key =
    match lo with
    | Some v -> Keys.attr_value_key attr v
    | None -> Keys.attr_prefix attr
  in
  let hi_key =
    match hi with
    | Some v -> Keys.attr_value_key attr v
    | None -> Keys.attr_prefix attr ^ String.make 64 '\xff'
  in
  let finish (r : Dht.result) =
    let triples = decode_items r.Dht.items in
    let cmp (a : Triple.t) b = Value.compare a.Triple.value b.Triple.value in
    k (Topk.smallest ~cmp n triples, r)
  in
  match (if t.rank.topn_budget then t.dht.Dht.range_topn else None) with
  | Some range_topn -> range_topn ~origin ~lo:lo_key ~hi:hi_key ~n ~k:finish
  | None -> t.dht.Dht.range ~origin ~lo:lo_key ~hi:hi_key ~k:finish

let scan t ~origin ~pred ~k =
  (* Scan only the A#v index family so each triple is considered once. *)
  let item_pred (i : Store.item) =
    String.length i.Store.key >= 2
    && i.Store.key.[0] = 'A'
    && i.Store.key.[1] = '\000'
    &&
    match Triple.deserialize i.Store.payload with Some tr -> pred tr | None -> false
  in
  t.dht.Dht.broadcast ~origin ~pred:item_pred ~k:(decoded k)

(* ------------------------------------------------------------------ *)
(* Reduced OID-region scan (skyline pushdown)                          *)

let skyline_scan_supported t = t.rank.skyline_pushdown && t.dht.Dht.scan_reduce <> None

let oid_scan_reduce t ~origin ~pred ~reduce ~k =
  let item_pred (i : Store.item) =
    String.length i.Store.key >= 2
    && i.Store.key.[0] = 'O'
    && i.Store.key.[1] = '\000'
    &&
    match Triple.deserialize i.Store.payload with Some tr -> pred tr | None -> false
  in
  match (if t.rank.skyline_pushdown then t.dht.Dht.scan_reduce else None) with
  | Some scan_reduce ->
    (* Lift the triple-level reduction to items: decode, reduce, keep
       exactly the items whose triples survived (reduce only drops, so
       id membership is a faithful back-mapping). *)
    let item_reduce items =
      let decoded =
        List.filter_map
          (fun (i : Store.item) ->
            match Triple.deserialize i.Store.payload with
            | Some tr -> Some (i, tr)
            | None -> None)
          items
      in
      let survivors = reduce (List.map snd decoded) in
      let keep = Hashtbl.create (max 1 (List.length survivors)) in
      List.iter (fun tr -> Hashtbl.replace keep (Triple.id tr) ()) survivors;
      List.filter_map
        (fun (i, tr) -> if Hashtbl.mem keep (Triple.id tr) then Some i else None)
        decoded
    in
    scan_reduce ~origin ~lo:Keys.oid_prefix ~hi:Keys.oid_region_end ~pred:item_pred
      ~reduce:item_reduce ~k:(decoded k)
  | None -> t.dht.Dht.broadcast ~origin ~pred:item_pred ~k:(decoded k)

(* ------------------------------------------------------------------ *)
(* q-gram candidate fetch (shared by similarity and substring search)  *)

(* Fetch the union of items indexed under [grams]: one batched
   [MultiLookup] when [batch] is on and the substrate has the bulk path,
   otherwise one routed lookup per gram. The result record carries the
   merged cost (worst hops/coverage, summed peers); items are returned
   separately and [result.items] is left empty. *)
let fetch_gram_items t ~origin ~batch grams ~k =
  let keys = List.map Keys.qgram_key grams in
  match keys with
  | [] ->
    k
      ( [],
        {
          Dht.items = [];
          hops = 0;
          peers_hit = 0;
          complete = true;
          completeness = 1.0;
          latency = 0.0;
        } )
  | _ -> (
    match (batch, t.dht.Dht.multi_lookup) with
    | true, Some multi_lookup ->
      multi_lookup ~origin ~keys ~k:(fun (found, r) ->
          k (List.concat_map snd found, { r with Dht.items = [] }))
    | _ ->
      let outstanding = ref (List.length keys) in
      let acc = ref [] in
      let hops = ref 0 and peers = ref 0 and complete = ref true and cov = ref 1.0 in
      let started = Sim.now t.dht.Dht.sim in
      List.iter
        (fun key ->
          t.dht.Dht.lookup ~origin ~key ~k:(fun r ->
              acc := List.rev_append r.Dht.items !acc;
              hops := max !hops r.Dht.hops;
              peers := !peers + r.Dht.peers_hit;
              if not r.Dht.complete then complete := false;
              cov := Float.min !cov r.Dht.completeness;
              decr outstanding;
              if !outstanding = 0 then
                k
                  ( !acc,
                    {
                      Dht.items = [];
                      hops = !hops;
                      peers_hit = !peers;
                      complete = !complete;
                      completeness = !cov;
                      latency = Sim.now t.dht.Dht.sim -. started;
                    } )))
        keys)

(* ------------------------------------------------------------------ *)
(* Similarity selection                                                *)

(* The q-gram index is complete for this predicate iff every string
   within distance [d] of [pattern] must share at least one q-gram with
   it: max(|p|,|s|) + q - 1 - d*q >= 1, and max >= |p|. *)
let qgram_applicable t ~pattern ~d =
  t.qgrams && String.length pattern + Keys.q - 1 - (d * Keys.q) >= 1

let similar t ~origin ~attr ~pattern ~d ~k =
  let matches (tr : Triple.t) =
    (match attr with None -> true | Some a -> String.equal a tr.Triple.attr)
    &&
    match Value.as_string tr.Triple.value with
    | Some s ->
      Strdist.passes_count_filter ~q:Keys.q pattern s d && Strdist.within_distance pattern s d
    | None -> false
  in
  if not (qgram_applicable t ~pattern ~d) then scan t ~origin ~pred:matches ~k
  else begin
    (* With pruning on, look up only a count-filter-covering prefix of
       the pattern's grams (rarest first): any string within distance [d]
       still shares at least one of them, so recall is unchanged while
       the per-gram lookups shrink from |p|+q-1 to about d*q+1. *)
    let grams =
      if t.rank.prune_grams then Strdist.prefix_grams ~q:Keys.q ~d pattern
      else Strdist.distinct_qgrams ~q:Keys.q pattern
    in
    fetch_gram_items t ~origin ~batch:t.rank.batch_grams grams ~k:(fun (items, r) ->
        let triples = decode_items items |> List.filter matches in
        k (triples, r))
  end

(* ------------------------------------------------------------------ *)
(* Substring search                                                    *)

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 then true
  else begin
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  end

let substring_applicable t ~pattern = t.qgrams && String.length pattern >= Keys.q

let containing t ~origin ~attr ~pattern ~k =
  let matches (tr : Triple.t) =
    (match attr with None -> true | Some a -> String.equal a tr.Triple.attr)
    &&
    match Value.as_string tr.Triple.value with
    | Some s -> contains_sub s pattern
    | None -> false
  in
  if not (substring_applicable t ~pattern) then scan t ~origin ~pred:matches ~k
  else begin
    (* A containing value holds every pattern gram, so any subset of the
       grams is recall-complete — candidates are verified locally anyway.
       With pruning on we fetch at most 3 grams spread across the
       pattern (cheap intersection pruning without the full gram fan-out);
       the unpruned arm fetches them all, the naive full intersection. *)
    let all = Strdist.substring_qgrams ~q:Keys.q pattern in
    let grams =
      if not t.rank.prune_grams then all
      else begin
        let arr = Array.of_list all in
        let n = Array.length arr in
        if n <= 3 then all
        else [ 0; n / 2; n - 1 ] |> List.sort_uniq Int.compare |> List.map (Array.get arr)
      end
    in
    fetch_gram_items t ~origin ~batch:t.rank.batch_grams grams ~k:(fun (items, r) ->
        let triples = decode_items items |> List.filter matches in
        k (triples, r))
  end

(* ------------------------------------------------------------------ *)
(* Schema mappings                                                     *)

let mapping_attr = "sys:maps_to"
let mapping_oid attr = "map:" ^ attr

let add_mapping t ~origin a b ~k =
  let t1 = Triple.make ~oid:(mapping_oid a) ~attr:mapping_attr (Value.S b) in
  let t2 = Triple.make ~oid:(mapping_oid b) ~attr:mapping_attr (Value.S a) in
  let outstanding = ref 2 in
  let ok = ref true in
  let step success =
    if not success then ok := false;
    decr outstanding;
    if !outstanding = 0 then k !ok
  in
  insert t ~origin t1 ~k:step;
  insert t ~origin t2 ~k:step

let equivalent_attrs t ~origin attr ~k =
  (* Bounded BFS over maps_to edges; each frontier level is one round of
     parallel OID lookups. *)
  let max_depth = 3 in
  let seen = Hashtbl.create 8 in
  Hashtbl.replace seen attr ();
  let rec expand frontier depth =
    if frontier = [] || depth >= max_depth then
      k (Hashtbl.fold (fun a () acc -> a :: acc) seen [] |> List.sort compare)
    else begin
      let outstanding = ref (List.length frontier) in
      let next = ref [] in
      List.iter
        (fun a ->
          by_oid t ~origin (mapping_oid a) ~k:(fun (triples, _) ->
              List.iter
                (fun (tr : Triple.t) ->
                  match Value.as_string tr.Triple.value with
                  | Some b when not (Hashtbl.mem seen b) ->
                    Hashtbl.replace seen b ();
                    next := b :: !next
                  | _ -> ())
                triples;
              decr outstanding;
              if !outstanding = 0 then expand !next (depth + 1)))
        frontier
    end
  in
  expand [ attr ] 0

(* ------------------------------------------------------------------ *)
(* Synchronous wrappers                                                *)

let metered t f =
  let before = t.dht.Dht.total_sent () in
  let cell = ref None in
  f (fun r -> cell := Some r);
  ignore (Sim.run_until t.dht.Dht.sim (fun () -> !cell <> None));
  let messages = t.dht.Dht.total_sent () - before in
  match !cell with
  | Some (triples, (r : Dht.result)) ->
    ( triples,
      {
        hops = r.Dht.hops;
        peers_hit = r.Dht.peers_hit;
        complete = r.Dht.complete;
        completeness = r.Dht.completeness;
        latency = r.Dht.latency;
        messages;
      } )
  | None ->
    ([], { hops = 0; peers_hit = 0; complete = false; completeness = 0.0; latency = 0.0; messages })

let by_oid_sync t ~origin oid = metered t (fun k -> by_oid t ~origin oid ~k)

let by_attr_value_sync t ~origin ~attr v = metered t (fun k -> by_attr_value t ~origin ~attr v ~k)

let by_attr_range_sync t ~origin ~attr ~lo ~hi =
  metered t (fun k -> by_attr_range t ~origin ~attr ~lo ~hi ~k)

let by_attr_all_sync t ~origin ~attr = metered t (fun k -> by_attr_all t ~origin ~attr ~k)

let by_attr_string_prefix_sync t ~origin ~attr ~string_prefix =
  metered t (fun k -> by_attr_string_prefix t ~origin ~attr ~string_prefix ~k)

let by_value_sync t ~origin v = metered t (fun k -> by_value t ~origin v ~k)

let top_n_by_attr_sync t ~origin ~attr ~n ?lo ?hi () =
  metered t (fun k -> top_n_by_attr t ~origin ~attr ~n ?lo ?hi ~k ())
let scan_sync t ~origin ~pred = metered t (fun k -> scan t ~origin ~pred ~k)

let oid_scan_reduce_sync t ~origin ~pred ~reduce =
  metered t (fun k -> oid_scan_reduce t ~origin ~pred ~reduce ~k)

let similar_sync t ~origin ?attr ~pattern ~d () =
  metered t (fun k -> similar t ~origin ~attr ~pattern ~d ~k)

let containing_sync t ~origin ?attr ~pattern () =
  metered t (fun k -> containing t ~origin ~attr ~pattern ~k)

let add_mapping_sync t ~origin a b =
  let cell = ref None in
  add_mapping t ~origin a b ~k:(fun ok -> cell := Some ok);
  ignore (Sim.run_until t.dht.Dht.sim (fun () -> !cell <> None));
  Option.value ~default:false !cell

let equivalent_attrs_sync t ~origin attr =
  let cell = ref None in
  equivalent_attrs t ~origin attr ~k:(fun l -> cell := Some l);
  ignore (Sim.run_until t.dht.Dht.sim (fun () -> !cell <> None));
  Option.value ~default:[ attr ] !cell
