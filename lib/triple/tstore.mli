(** The distributed triple store: UniStore's storage layer.

    Inserting a triple creates the three index entries of the paper's
    Fig. 2 (OID, A#v, v) — plus, when the q-gram index is enabled, one
    entry per distinct q-gram of every string value. All access paths
    return the deduplicated triples plus a cost record (hops, peers,
    latency, completeness), which the query processor's cost model is
    calibrated against. *)

type t

(** Aggregate cost of a (possibly multi-request) storage operation. *)
type meta = {
  hops : int;  (** deepest message chain *)
  peers_hit : int;  (** peers that did local work *)
  complete : bool;
  completeness : float;
      (** coverage estimate in [0,1]; for multi-request operations, the
          worst (minimum) coverage across the constituent requests *)
  latency : float;  (** ms of simulated time *)
  messages : int;  (** network messages (sync wrappers only; 0 in CPS) *)
}

val pp_meta : Format.formatter -> meta -> unit

(** Ranking/similarity fast-path knobs — each gates one optimization so
    benchmarks can race optimized against naive arms on the same
    deployment (the pattern of the cache/batching knobs in
    {!Unistore_core.Unistore.config}). All default on. *)
type rank_config = {
  prune_grams : bool;
      (** similarity: fetch only a count-filter-covering rarest-first
          prefix of the pattern's q-grams ({!Unistore_util.Strdist.prefix_grams})
          instead of all of them; substring: fetch at most 3 grams *)
  batch_grams : bool;
      (** ship the selected gram lookups as one batched [MultiLookup]
          when the substrate has the bulk path *)
  topn_budget : bool;
      (** top-N: budgeted sequential traversal with early termination
          ({!Dht.t.range_topn}) instead of fetching the whole region *)
  skyline_pushdown : bool;
      (** skyline: leaf-local partial skyline via {!Dht.t.scan_reduce},
          so dominated rows never cross the network *)
}

(** All optimizations on. *)
val default_rank : rank_config

(** All optimizations off — the naive arm for A/B benchmarks. *)
val no_rank : rank_config

(** [create ?qgrams ?rank dht] — [qgrams] (default true) controls the
    string similarity index; [rank] (default {!default_rank}) the
    ranking/similarity fast paths. *)
val create : ?qgrams:bool -> ?rank:rank_config -> Dht.t -> t

val dht : t -> Dht.t
val qgrams_enabled : t -> bool
val rank : t -> rank_config

(** {2 Insertion} *)

(** [insert t ~origin triple ~k]: [k true] iff every index entry was
    stored. *)
val insert : t -> origin:int -> Triple.t -> k:(bool -> unit) -> unit

val insert_sync : t -> origin:int -> Triple.t -> bool

(** [insert_tuple_sync t ~origin ~oid fields] vertically decomposes and
    inserts a logical tuple; returns the number of triples stored. *)
val insert_tuple_sync : t -> origin:int -> oid:string -> (string * Value.t) list -> int

(** [insert_bulk t ~origin triples ~k] stores many triples at once: all
    their index entries travel as one batch through
    {!Dht.t.bulk_insert} (one splitting message per touched subtree
    instead of one routed exchange per entry). Falls back to per-triple
    {!insert} when the substrate has no batch path. [k true] iff every
    entry was acked. *)
val insert_bulk : t -> origin:int -> Triple.t list -> k:(bool -> unit) -> unit

val insert_bulk_sync : t -> origin:int -> Triple.t list -> bool

(** {2 Deletion & update}

    Deleting a triple removes all of its index entries. Caveat (inherent
    to loose consistency, cf. Datta et al.): deletions are not tombstoned,
    so an anti-entropy round against a replica partitioned away during the
    delete can resurrect the item; versioned {e updates} through
    {!Unistore_pgrid.Overlay.update} are the conflict-safe path. *)

val delete : t -> origin:int -> Triple.t -> k:(bool -> unit) -> unit
val delete_sync : t -> origin:int -> Triple.t -> bool

(** [update_value_sync t ~origin ~oid ~attr ~old_value v] replaces one
    triple's value (delete old index entries + insert new ones). *)
val update_value_sync :
  t -> origin:int -> oid:string -> attr:string -> old_value:Value.t -> Value.t -> bool

(** {2 Access paths} — each returns the matching triples and its cost.
    The [*_sync] wrappers additionally meter messages. *)

(** All triples of one logical tuple (OID index). *)
val by_oid : t -> origin:int -> string -> k:(Triple.t list * Dht.result -> unit) -> unit

(** Exact [A = v] (A#v index). *)
val by_attr_value :
  t -> origin:int -> attr:string -> Value.t -> k:(Triple.t list * Dht.result -> unit) -> unit

(** Range [lo <= A <= hi] (A#v index, overlay range query). *)
val by_attr_range :
  t ->
  origin:int ->
  attr:string ->
  lo:Value.t ->
  hi:Value.t ->
  k:(Triple.t list * Dht.result -> unit) ->
  unit

(** Every triple of one attribute (A#v region scan). *)
val by_attr_all : t -> origin:int -> attr:string -> k:(Triple.t list * Dht.result -> unit) -> unit

(** String-prefix search on one attribute's values. *)
val by_attr_string_prefix :
  t ->
  origin:int ->
  attr:string ->
  string_prefix:string ->
  k:(Triple.t list * Dht.result -> unit) ->
  unit

(** Exact value on {e any} attribute (v index). *)
val by_value : t -> origin:int -> Value.t -> k:(Triple.t list * Dht.result -> unit) -> unit

(** Value range on any attribute (v index). *)
val by_value_range :
  t -> origin:int -> lo:Value.t -> hi:Value.t -> k:(Triple.t list * Dht.result -> unit) -> unit

(** [top_n_by_attr t ~origin ~attr ~n ?lo ?hi]: the [n] smallest values
    of [attr] (within the optional bounds), retrieved with an
    early-terminating sequential traversal of the A#v region in key
    order — the paper's top-N ranking operator with a physical
    implementation that does not fetch the whole region. Falls back to a
    full range scan on substrates without budgeted traversals. *)
val top_n_by_attr :
  t ->
  origin:int ->
  attr:string ->
  n:int ->
  ?lo:Value.t ->
  ?hi:Value.t ->
  k:(Triple.t list * Dht.result -> unit) ->
  unit ->
  unit

val top_n_by_attr_sync :
  t -> origin:int -> attr:string -> n:int -> ?lo:Value.t -> ?hi:Value.t -> unit ->
  Triple.t list * meta

(** Full network scan with an arbitrary predicate (flooding fallback). *)
val scan : t -> origin:int -> pred:(Triple.t -> bool) -> k:(Triple.t list * Dht.result -> unit) -> unit

(** Whether {!oid_scan_reduce} will actually reduce at the leaves
    (substrate ships closures and the [skyline_pushdown] knob is on). *)
val skyline_scan_supported : t -> bool

(** [oid_scan_reduce t ~origin ~pred ~reduce ~k] scans the OID region
    (where all triples of one logical tuple share a single key and are
    therefore collocated on one peer), keeps triples matching [pred] and
    runs [reduce] at {e each leaf} over its locally matched triples
    before the reply travels back — the skyline-pushdown primitive: a
    leaf-local partial skyline drops dominated tuples at the source.
    [reduce] must only drop triples, never invent them; because tuples
    are collocated, any per-tuple decision it makes (e.g. "this tuple is
    incomplete" or "this tuple is dominated by a co-located one") is
    globally sound. Falls back to an unreduced broadcast when
    unsupported or the knob is off. *)
val oid_scan_reduce :
  t ->
  origin:int ->
  pred:(Triple.t -> bool) ->
  reduce:(Triple.t list -> Triple.t list) ->
  k:(Triple.t list * Dht.result -> unit) ->
  unit

(** [similar t ~origin ?attr ~pattern ~d]: triples whose string value is
    within edit distance [d] of [pattern] (restricted to [attr] when
    given). Uses the q-gram index when it can guarantee completeness
    ([pattern] long enough relative to [d]); falls back to flooding
    otherwise or when the index is disabled. *)
val similar :
  t ->
  origin:int ->
  attr:string option ->
  pattern:string ->
  d:int ->
  k:(Triple.t list * Dht.result -> unit) ->
  unit

(** Whether [similar] would use the q-gram index for this predicate. *)
val qgram_applicable : t -> pattern:string -> d:int -> bool

(** [containing t ~origin ~attr ~pattern]: triples whose string value
    contains [pattern] as a substring (the paper's "efficient substring
    search"). Uses the q-gram index when [pattern] is at least
    {!Keys.q} long (every unpadded q-gram of the pattern occurs in a
    containing value's indexed gram set); floods otherwise. *)
val containing :
  t ->
  origin:int ->
  attr:string option ->
  pattern:string ->
  k:(Triple.t list * Dht.result -> unit) ->
  unit

(** Whether [containing] can use the q-gram index for this pattern. *)
val substring_applicable : t -> pattern:string -> bool

(** {2 Schema mappings} — attribute correspondences stored as ordinary
    triples (attribute [sys:maps_to]), queryable like any other data. *)

val add_mapping : t -> origin:int -> string -> string -> k:(bool -> unit) -> unit
val add_mapping_sync : t -> origin:int -> string -> string -> bool

(** Transitive closure (bounded depth) of [sys:maps_to] around [attr];
    always contains [attr] itself. *)
val equivalent_attrs : t -> origin:int -> string -> k:(string list -> unit) -> unit

val equivalent_attrs_sync : t -> origin:int -> string -> string list

(** {2 Synchronous wrappers} *)

val by_oid_sync : t -> origin:int -> string -> Triple.t list * meta
val by_attr_value_sync : t -> origin:int -> attr:string -> Value.t -> Triple.t list * meta

val by_attr_range_sync :
  t -> origin:int -> attr:string -> lo:Value.t -> hi:Value.t -> Triple.t list * meta

val by_attr_all_sync : t -> origin:int -> attr:string -> Triple.t list * meta

val by_attr_string_prefix_sync :
  t -> origin:int -> attr:string -> string_prefix:string -> Triple.t list * meta

val by_value_sync : t -> origin:int -> Value.t -> Triple.t list * meta
val scan_sync : t -> origin:int -> pred:(Triple.t -> bool) -> Triple.t list * meta

val oid_scan_reduce_sync :
  t ->
  origin:int ->
  pred:(Triple.t -> bool) ->
  reduce:(Triple.t list -> Triple.t list) ->
  Triple.t list * meta
val similar_sync : t -> origin:int -> ?attr:string -> pattern:string -> d:int -> unit -> Triple.t list * meta

val containing_sync :
  t -> origin:int -> ?attr:string -> pattern:string -> unit -> Triple.t list * meta
