(** Local statistics sampling for the gossiped statistics cache.

    A responsible peer can summarize its share of the data without any
    network traffic: its store holds, among the three index families,
    the A#v entries of every triple whose (attribute, value) pair hashes
    into its region. This module decodes those entries into the
    per-attribute {!Unistore_cache.Statcache.summary} records that
    {!Unistore_pgrid.Gossip.stats_round} spreads — the decoding lives
    here because only the triple layer knows the index key layout
    ({!Keys}) and the value encodings ({!Value}).

    Replica-group safety: summaries carry the peer's region, and the
    statistics cache deduplicates by (attribute, region), so replicas
    holding the same region never double count. *)

(** [of_node ~now node] summarizes [node]'s local A#v entries, one
    summary per attribute present, stamped with the node's write epoch
    and [now]. *)
val of_node : now:float -> Unistore_pgrid.Node.t -> Unistore_cache.Statcache.summary list
