(** Substrate-independent DHT interface.

    The triple layer and the query processor talk to the overlay through
    this record, so every experiment can run over P-Grid ({!of_pgrid}) or
    over the Chord baseline with its trie range index ({!of_chord_trie})
    without code changes — that is how the E6 substrate comparison is
    made. *)

module Store = Unistore_pgrid.Store

type result = {
  items : Store.item list;
  hops : int;
  peers_hit : int;
  complete : bool;
  completeness : float;
      (** coverage estimate in [0,1] — regions reached / regions
          addressed; [1.0] iff [complete]. P-Grid reports exact token /
          key coverage (see {!Unistore_pgrid.Overlay.result}); the Chord
          baseline reports all-or-nothing. *)
  latency : float;
}

type t = {
  name : string;
  peers : int;
  sim : Unistore_sim.Sim.t;
  insert :
    origin:int -> key:string -> item_id:string -> payload:string -> k:(bool -> unit) -> unit;
  delete : origin:int -> key:string -> item_id:string -> k:(bool -> unit) -> unit;
  lookup : origin:int -> key:string -> k:(result -> unit) -> unit;
  range : origin:int -> lo:string -> hi:string -> k:(result -> unit) -> unit;
  range_topn :
    (origin:int -> lo:string -> hi:string -> n:int -> k:(result -> unit) -> unit) option;
      (** budgeted sequential traversal in key order (P-Grid only): stops
          after [n] items, giving the n smallest matches *)
  prefix : origin:int -> prefix:string -> k:(result -> unit) -> unit;
  broadcast : origin:int -> pred:(Store.item -> bool) -> k:(result -> unit) -> unit;
  scan_reduce :
    (origin:int ->
    lo:string ->
    hi:string ->
    pred:(Store.item -> bool) ->
    reduce:(Store.item list -> Store.item list) ->
    k:(result -> unit) ->
    unit)
    option;
      (** clipped scan with leaf-side partial reduction (P-Grid only): a
          probe shower over the key region \[[lo],[hi]) that runs
          [reduce] at every leaf over its matched items before replying —
          e.g. a local skyline, so dominated rows never cross the
          network. [reduce] must be a pure filter (only drop items);
          the origin re-runs the full operator over the survivors.
          [None] when the substrate cannot ship closures. *)
  bulk_insert : (origin:int -> items:Store.item list -> k:(result -> unit) -> unit) option;
      (** batched insert: one splitting [InsertBatch] instead of one
          routed exchange per item; [None] when the substrate has no
          batch path or it is disabled ({!Unistore_pgrid.Config.t}) *)
  multi_lookup :
    (origin:int ->
    keys:string list ->
    k:((string * Store.item list) list * result -> unit) ->
    unit)
    option;
      (** batched exact-key lookups grouped by responsible region (the
          bind-join probe pattern); the continuation receives per-key
          answers plus the combined result *)
  send_task : (src:int -> dst:int -> bytes:int -> (int -> unit) -> unit) option;
      (** application-level plan shipping; [None] when the substrate does
          not support it (plain Chord) *)
  total_sent : unit -> int;
  expected_latency : float;  (** mean one-way delay, for the cost model *)
  depth : unit -> int;  (** trie depth / log ring size: the hop bound *)
  alive_peers : unit -> int list;
  responsible_peer : string -> int option;
      (** an alive peer responsible for a key (used to pick the next
          carrier when shipping mutant query plans) *)
  stat_gossip_round : (unit -> unit) option;
      (** one round of statistics sampling + epidemic spread (see
          {!Unistore_pgrid.Gossip.stats_round}), driven to completion;
          [None] when the substrate has no statistics gossip *)
  statcache_of : (int -> Unistore_cache.Statcache.t) option;
      (** a peer's gossiped-statistics cache — what the optimizer plans
          from in the distributed path; [None] on substrates without it *)
}

(** {2 Synchronous wrappers} *)

val insert_sync :
  t -> origin:int -> key:string -> item_id:string -> payload:string -> bool

val delete_sync : t -> origin:int -> key:string -> item_id:string -> bool
val lookup_sync : t -> origin:int -> key:string -> result
val range_sync : t -> origin:int -> lo:string -> hi:string -> result
val prefix_sync : t -> origin:int -> prefix:string -> result
val broadcast_sync : t -> origin:int -> pred:(Store.item -> bool) -> result

(** {2 Adapters} *)

val of_pgrid : Unistore_pgrid.Overlay.t -> t

(** Chord with the distributed trie index threading every insert and
    serving every range scan. *)
val of_chord_trie : Unistore_chord.Chord.t -> t
