(** Index key construction — the three-way indexing of the paper's §2.

    Every triple [(OID, A, v)] is inserted under three keys:
    - [oid_key OID]: reproduce whole logical tuples from their unique key;
    - [attr_value_key A v] (the "A#v" index): queries of the form
      [A op v], including ranges, on a named attribute;
    - [value_key v]: queries on an arbitrary attribute ("keyword"-style
      access by value alone).

    Optionally, string values are additionally indexed under their
    q-grams ([qgram_key]) to support edit-distance predicates (the
    NetDB'06 q-gram index).

    NUL bytes separate components; the leading tag byte partitions the
    key space by index family, so each family is a contiguous region. *)

(** [oid_key oid] *)
val oid_key : string -> string

(** Prefix covering the whole OID region — every triple of every logical
    tuple lives in \[[oid_prefix],[oid_region_end]), and all triples of
    one tuple share a single key (so they are collocated on one peer,
    which is what makes leaf-local per-tuple reductions sound). *)
val oid_prefix : string

(** Exclusive upper bound of the OID region. *)
val oid_region_end : string

(** [attr_value_key attr v] *)
val attr_value_key : string -> Value.t -> string

(** [value_key v] *)
val value_key : Value.t -> string

(** [qgram_key gram] *)
val qgram_key : string -> string

(** Bounds of the [A#v] region of one attribute restricted to a value
    range (inclusive). *)
val attr_range : string -> lo:Value.t -> hi:Value.t -> string * string

(** Prefix covering the whole [A#v] region of one attribute. *)
val attr_prefix : string -> string

(** Prefix covering string values of one attribute extending
    [string_prefix] (substring/prefix search on an attribute). *)
val attr_string_prefix : string -> string_prefix:string -> string

(** Bounds of the [v] (value) region for a value range. *)
val value_range : lo:Value.t -> hi:Value.t -> string * string

(** q-gram length used by the similarity index. *)
val q : int
