module Node = Unistore_pgrid.Node
module Store = Unistore_pgrid.Store
module Statcache = Unistore_cache.Statcache

(* An A#v index key is "A\000" ^ attr ^ "\000" ^ encoded-value. *)
let parse_av_key key =
  let n = String.length key in
  if n < 2 || key.[0] <> 'A' || key.[1] <> '\000' then None
  else
    match String.index_from_opt key 2 '\000' with
    | Some sep when sep > 2 ->
      Some (String.sub key 2 (sep - 2), String.sub key (sep + 1) (n - sep - 1))
    | _ -> None

type acc = {
  mutable count : int;
  distinct : (string, unit) Hashtbl.t;
  mutable lo : string;
  mutable hi : string;
  mutable string_valued : bool;
}

let of_node ~now (nd : Node.t) =
  let per_attr : (string, acc) Hashtbl.t = Hashtbl.create 16 in
  Store.iter nd.Node.store (fun (i : Store.item) ->
      match parse_av_key i.Store.key with
      | None -> ()
      | Some (attr, enc) ->
        let a =
          match Hashtbl.find_opt per_attr attr with
          | Some a -> a
          | None ->
            let a =
              { count = 0; distinct = Hashtbl.create 8; lo = enc; hi = enc; string_valued = false }
            in
            Hashtbl.replace per_attr attr a;
            a
        in
        a.count <- a.count + 1;
        Hashtbl.replace a.distinct enc ();
        if String.compare enc a.lo < 0 then a.lo <- enc;
        if String.compare enc a.hi > 0 then a.hi <- enc;
        if (not a.string_valued)
           && (match Value.decode enc with Some v -> Option.is_some (Value.as_string v) | None -> false)
        then a.string_valued <- true)
      ;
  let region_lo, _ = Node.region nd in
  (* One sample per round per node: every summary of this node carries
     the same served-request delta (consumers take the max per region,
     not the sum). *)
  let load = Node.served_delta nd in
  Hashtbl.fold
    (fun attr a l ->
      {
        Statcache.attr;
        region_lo;
        peer = nd.Node.id;
        count = a.count;
        distinct = Hashtbl.length a.distinct;
        lo = a.lo;
        hi = a.hi;
        string_valued = a.string_valued;
        version = nd.Node.write_epoch;
        sampled_at = now;
        load;
      }
      :: l)
    per_attr []
  |> List.sort (fun (a : Statcache.summary) b -> String.compare a.attr b.attr)
