module Rng = Unistore_util.Rng
module Sim = Unistore_sim.Sim
module Latency = Unistore_sim.Latency
module Config = Unistore_pgrid.Config
module Build = Unistore_pgrid.Build
module Overlay = Unistore_pgrid.Overlay
module Gossip = Unistore_pgrid.Gossip
module Chord = Unistore_chord.Chord
module Value = Unistore_triple.Value
module Triple = Unistore_triple.Triple
module Dht = Unistore_triple.Dht
module Tstore = Unistore_triple.Tstore
module Qstats = Unistore_qproc.Qstats
module Engine = Unistore_qproc.Engine
module Physical = Unistore_qproc.Physical
module Report = Unistore_qproc.Engine
module Metrics = Unistore_obs.Metrics
module Profile = Unistore_obs.Profile
module Json = Unistore_obs.Json
module Statcache = Unistore_cache.Statcache
module Qcache = Unistore_qproc.Qcache

type overlay_kind = Pgrid | Chord_trie

type cache_config = {
  shortcut_capacity : int;
  result_capacity : int;
  result_ttl_ms : float;
  stats_half_life_ms : float;
}

let default_cache_config =
  {
    shortcut_capacity = 128;
    result_capacity = 256;
    result_ttl_ms = 30_000.0;
    stats_half_life_ms = 120_000.0;
  }

let no_cache =
  { shortcut_capacity = 0; result_capacity = 0; result_ttl_ms = 0.0; stats_half_life_ms = 0.0 }

type retry_config = {
  retries : int;
  backoff : float;
  jitter : float;
  failover : bool;
}

let default_retry_config =
  {
    retries = Config.default.Config.retries;
    backoff = Config.default.Config.retry_backoff;
    jitter = Config.default.Config.retry_jitter;
    failover = Config.default.Config.failover;
  }

let no_retry = { retries = 0; backoff = 1.0; jitter = 0.0; failover = false }

type batch_config = {
  bulk_insert : bool;
  range_aggregation : bool;
  multi_probe : bool;
  agg_fanin : int;
  agg_flush_ms : float;
}

let default_batch_config =
  {
    bulk_insert = Config.default.Config.bulk_insert;
    range_aggregation = Config.default.Config.range_aggregation;
    multi_probe = Config.default.Config.multi_probe;
    agg_fanin = Config.default.Config.agg_fanin;
    agg_flush_ms = Config.default.Config.agg_flush_ms;
  }

let no_batch =
  {
    bulk_insert = false;
    range_aggregation = false;
    multi_probe = false;
    agg_fanin = 0;
    agg_flush_ms = 0.0;
  }

type config = {
  peers : int;
  replication : int;
  refs_per_level : int;
  seed : int;
  latency : Latency.model;
  drop : float;
  overlay : overlay_kind;
  qgram_index : bool;
  load_balanced : bool;
  cache : cache_config;
  batch : batch_config;
  retry : retry_config;
  rank : Tstore.rank_config;
  store : Unistore_pgrid.Store_intf.backend;
}

let default_rank_config = Tstore.default_rank
let no_rank_config = Tstore.no_rank

let default_config =
  {
    peers = 32;
    replication = 2;
    refs_per_level = 3;
    seed = 42;
    latency = Latency.Lan;
    drop = 0.0;
    overlay = Pgrid;
    qgram_index = true;
    load_balanced = true;
    cache = default_cache_config;
    batch = default_batch_config;
    retry = default_retry_config;
    rank = default_rank_config;
    store = Unistore_pgrid.Store_intf.Hash;
  }

type t = {
  config : config;
  sim : Sim.t;
  dht : Dht.t;
  tstore : Tstore.t;
  pgrid : Overlay.t option;
  chord : Chord.t option;
  metrics : Metrics.t;
  qcaches : (int, Qcache.t) Hashtbl.t;  (* per-origin result caches, lazily built *)
  write_versions : (string, int) Hashtbl.t;
  global_writes : int ref;
  read_log : Unistore_analysis.Tracelint.read_obs list ref;
  mutable stats : Qstats.t;
  mutable next_origin : int;
}

let create ?(sample_keys = []) config =
  let sim = Sim.create () in
  let rng = Rng.create config.seed in
  let latency = Latency.create config.latency ~n:config.peers ~rng in
  let pgrid, chord, dht =
    match config.overlay with
    | Pgrid ->
      let pconfig =
        {
          Config.default with
          Config.replication = config.replication;
          refs_per_level = config.refs_per_level;
          shortcut_capacity = config.cache.shortcut_capacity;
          bulk_insert = config.batch.bulk_insert;
          range_aggregation = config.batch.range_aggregation;
          multi_probe = config.batch.multi_probe;
          agg_fanin = max 1 config.batch.agg_fanin;
          agg_flush_ms =
            (if config.batch.agg_flush_ms > 0.0 then config.batch.agg_flush_ms
             else Config.default.Config.agg_flush_ms);
          retries = config.retry.retries;
          retry_backoff = config.retry.backoff;
          retry_jitter = config.retry.jitter;
          failover = config.retry.failover;
          store_backend = config.store;
        }
      in
      let ov =
        Build.oracle sim ~latency ~rng ~drop:config.drop ~config:pconfig ~n:config.peers
          ~sample_keys ~balanced:(not config.load_balanced) ()
      in
      (Some ov, None, Dht.of_pgrid ov)
    | Chord_trie ->
      let cconfig = { Chord.default_config with Chord.succ_list = max 2 config.replication } in
      let c =
        Chord.create sim ~latency ~rng ~drop:config.drop ~config:cconfig ~n:config.peers ()
      in
      (None, Some c, Dht.of_chord_trie c)
  in
  let tstore = Tstore.create ~qgrams:config.qgram_index ~rank:config.rank dht in
  let metrics = Metrics.create () in
  (match (pgrid, chord) with
  | Some ov, _ -> Overlay.set_metrics ov (Some metrics)
  | _, Some c -> Chord.set_metrics c (Some metrics)
  | None, None -> ());
  {
    config;
    sim;
    dht;
    tstore;
    pgrid;
    chord;
    metrics;
    qcaches = Hashtbl.create 8;
    write_versions = Hashtbl.create 16;
    global_writes = ref 0;
    read_log = ref [];
    stats = Qstats.empty;
    next_origin = 0;
  }

let config t = t.config
let sim t = t.sim
let tstore t = t.tstore
let dht t = t.dht
let pgrid t = t.pgrid

(* The result cache's invalidation version for an attribute (or for
   attribute-agnostic accesses, [None]): writes issued through this
   facade bump the local counters immediately; write epochs arriving
   with gossiped statistics ({!Statcache.attr_version}) cover writes
   this client never saw. *)
let version_of t ~origin attr =
  let gossiped =
    match t.dht.Dht.statcache_of with
    | None -> 0
    | Some cache_of -> (
      let sc = cache_of origin in
      match attr with
      | Some a -> Statcache.attr_version sc a
      | None -> Statcache.total_version sc)
  in
  match attr with
  | Some a -> gossiped + Option.value ~default:0 (Hashtbl.find_opt t.write_versions a)
  | None -> gossiped + !(t.global_writes)

(* Result caches are per query origin — a hit must mean {e this} client
   asked recently, not that any peer in the deployment did. *)
let result_cache t ~origin =
  if t.config.cache.result_capacity <= 0 then None
  else
    Some
      (match Hashtbl.find_opt t.qcaches origin with
      | Some c -> c
      | None ->
        let c =
          Qcache.create ~metrics:t.metrics ~capacity:t.config.cache.result_capacity
            ~ttl_ms:t.config.cache.result_ttl_ms
            ~now:(fun () -> Sim.now t.sim)
            ~version_of:(version_of t ~origin) ()
        in
        Hashtbl.add t.qcaches origin c;
        c)

let bump_write t attr =
  incr t.global_writes;
  match attr with
  | Some a ->
    Hashtbl.replace t.write_versions a
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.write_versions a))
  | None -> ()

let pick_origin t =
  let o = t.next_origin in
  t.next_origin <- (t.next_origin + 1) mod t.config.peers;
  o

let insert_triple t ?origin tr =
  let origin = match origin with Some o -> o | None -> pick_origin t in
  bump_write t (Some tr.Triple.attr);
  Tstore.insert_sync t.tstore ~origin tr

let insert_tuple t ?origin ~oid fields =
  let origin = match origin with Some o -> o | None -> pick_origin t in
  List.iter (fun (a, _) -> bump_write t (Some a)) fields;
  Tstore.insert_tuple_sync t.tstore ~origin ~oid fields

let delete_triple t ?origin tr =
  let origin = match origin with Some o -> o | None -> pick_origin t in
  bump_write t (Some tr.Triple.attr);
  Tstore.delete_sync t.tstore ~origin tr

let update_value t ?origin ~oid ~attr ~old_value new_value =
  let origin = match origin with Some o -> o | None -> pick_origin t in
  bump_write t (Some attr);
  Tstore.update_value_sync t.tstore ~origin ~oid ~attr ~old_value new_value

(* Bulk load: assign each tuple its round-robin origin as before, then
   ship every origin's triples as one batched insert
   ({!Tstore.insert_bulk}) instead of one routed exchange per index
   entry. Per-triple insertion remains the fallback when batching is off
   or a batch comes back incomplete. *)
let load t tuples =
  match t.dht.Dht.bulk_insert with
  | None -> List.fold_left (fun acc (oid, fields) -> acc + insert_tuple t ~oid fields) 0 tuples
  | Some _ ->
    let groups = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun (oid, fields) ->
        let origin = pick_origin t in
        List.iter (fun (a, _) -> bump_write t (Some a)) fields;
        let triples = Triple.tuple_to_triples ~oid fields in
        match Hashtbl.find_opt groups origin with
        | Some r -> r := List.rev_append triples !r
        | None ->
          order := origin :: !order;
          Hashtbl.add groups origin (ref (List.rev triples)))
      tuples;
    List.fold_left
      (fun acc origin ->
        let triples = List.rev !(Hashtbl.find groups origin) in
        if Tstore.insert_bulk_sync t.tstore ~origin triples then acc + List.length triples
        else
          acc
          + List.fold_left
              (fun a tr -> if Tstore.insert_sync t.tstore ~origin tr then a + 1 else a)
              0 triples)
      0 (List.rev !order)

let add_mapping t ?origin a b =
  let origin = match origin with Some o -> o | None -> pick_origin t in
  bump_write t None;
  Tstore.add_mapping_sync t.tstore ~origin a b

let refresh_stats t = t.stats <- Qstats.collect t.tstore ~origin:0
let set_stats_of_triples t triples = t.stats <- Qstats.of_triples triples
let stats t = t.stats

(* ------------------------------------------------------------------ *)
(* Gossiped statistics (level 3 of the caching subsystem)              *)

let gossip_stats_round t =
  match t.dht.Dht.stat_gossip_round with Some round -> round () | None -> ()

let gossiped_stats t ~origin =
  match t.dht.Dht.statcache_of with
  | None -> None
  | Some cache_of ->
    let sc = cache_of origin in
    if Statcache.length sc = 0 then None
    else
      Some
        (Qstats.of_summaries
           (Statcache.aggregate sc ~now:(Sim.now t.sim)
              ~half_life_ms:t.config.cache.stats_half_life_ms))

(* The optimizer's statistics for a query from [origin]: what gossip has
   delivered there, falling back to the facade-held (oracle or flooded)
   statistics only when no summary has arrived yet. *)
let stats_for t ~origin =
  match gossiped_stats t ~origin with Some s -> s | None -> t.stats

type strategy = Engine.strategy = Centralized | Mutant

let query t ?(origin = 0) ?strategy ?expand_mappings src =
  Engine.run_string t.tstore (stats_for t ~origin) ~replication:t.config.replication
    ~metrics:t.metrics
    ?cache:(result_cache t ~origin)
    ?strategy ?expand_mappings ~origin src

let explain t ?(origin = 0) ?expand_mappings src =
  match Unistore_vql.Parser.parse src with
  | Error e -> Error e
  | Ok q ->
    Ok
      (Engine.plan_query t.tstore (stats_for t ~origin) ~replication:t.config.replication
         ?cache:(result_cache t ~origin)
         ?expand_mappings ~origin q)

let pp_table = Engine.pp_table
let pp_plan = Physical.pp

let kill_peers t ids =
  List.iter
    (fun id ->
      match (t.pgrid, t.chord) with
      | Some ov, _ -> Overlay.kill ov id
      | _, Some c -> Chord.kill c id
      | None, None -> ())
    ids

let revive_peers t ids =
  List.iter
    (fun id ->
      match (t.pgrid, t.chord) with
      | Some ov, _ -> Overlay.revive ov id
      | _, Some c -> Chord.revive c id
      | None, None -> ())
    ids

let alive_peers t = t.dht.Dht.alive_peers ()

let join_peer t ~id ~bootstrap =
  match t.pgrid with Some ov -> Build.join ov ~id ~bootstrap | None -> false

(* Scenario-driven fault injection (P-Grid only: the driver needs the
   overlay's network handle). The scenario fires as the caller advances
   the simulation; all its randomness comes from [spec.seed], never from
   the deployment's RNG, so queries replay identically with faults on. *)

module Faults = Unistore_sim.Faults

type faults = Unistore_pgrid.Message.t Faults.t

let inject_faults t spec =
  match t.pgrid with Some ov -> Some (Faults.inject (Overlay.net ov) spec) | None -> None

module Repair = Unistore_pgrid.Repair

let repair_round t =
  match t.pgrid with
  | Some ov ->
    let r = Repair.round ov in
    Sim.run_all t.sim;
    Some r
  | None -> None

let anti_entropy_round t =
  match t.pgrid with
  | Some ov ->
    Gossip.anti_entropy_round ov;
    Sim.run_all t.sim
  | None -> ()

(* Message-level tracing (paper section 3: results are "traceable,
   analyzable and (in limits) repeatable"). *)
let start_trace t =
  let tr = Unistore_sim.Trace.create () in
  (match (t.pgrid, t.chord) with
  | Some ov, _ -> Unistore_sim.Net.set_trace (Overlay.net ov) (Some tr)
  | _, Some c -> Chord.set_trace c (Some tr)
  | None, None -> ());
  tr

let stop_trace t =
  match (t.pgrid, t.chord) with
  | Some ov, _ -> Unistore_sim.Net.set_trace (Overlay.net ov) None
  | _, Some c -> Chord.set_trace c None
  | None, None -> ()

(* Metrics (the unified accounting layer: per-kind message counts from
   the network, hop/retry/fan-out histograms from the overlay, plus
   anything callers add). One registry per deployment, attached at
   creation — reading it is always safe. *)
let metrics t = t.metrics
let reset_metrics t = Metrics.clear t.metrics

(* Publish [store.bytes]/[store.items]/[store.log_bytes] gauges from
   the current per-peer stores (P-Grid only; the Chord baseline does
   not carry pluggable storage). *)
let refresh_store_gauges t =
  match t.pgrid with Some ov -> Overlay.refresh_store_gauges ov | None -> ()
let metrics_json t = Json.to_string (Metrics.to_json t.metrics)

(* Per-operator query profiling (EXPLAIN ANALYZE). *)
let profile ?query report = Engine.profile ?query report
let pp_profile = Profile.pp

let query_profiled t ?origin ?strategy ?expand_mappings src =
  match query t ?origin ?strategy ?expand_mappings src with
  | Error e -> Error e
  | Ok report -> Ok (report, Engine.profile ~query:src report)

let settle t = Sim.run_all t.sim
let messages_sent t = t.dht.Dht.total_sent ()
let now t = Sim.now t.sim

(* ------------------------------------------------------------------ *)
(* Heavy-traffic engine: open-loop load, per-peer queueing, adaptive
   balancing (lib/traffic + Overlay adaptive deadlines + Balance). *)

module Traffic = Unistore_traffic.Engine
module Traffic_schedule = Unistore_traffic.Schedule
module Traffic_arrivals = Unistore_traffic.Arrivals
module Hotkeys = Unistore_traffic.Hotkeys
module Balance = Unistore_pgrid.Balance

type balance_config = {
  adaptive_timeout : bool;  (* per-peer EWMA retry deadlines *)
  hot_replication : bool;  (* spawn boost replicas for hot regions *)
  spread_load : bool;  (* origins rotate across the serving set *)
}

let default_balance_config =
  { adaptive_timeout = true; hot_replication = true; spread_load = true }

(* The experimental baseline arm: fixed deadlines, no boosts. *)
let no_balancing = { adaptive_timeout = false; hot_replication = false; spread_load = false }

type traffic_scenario = Steady_load | Flash_crowd | Diurnal_load

type traffic_config = {
  scenario : traffic_scenario;
  poisson : bool;  (* exponential vs. fixed inter-arrival gaps *)
  arrival_rate : float;  (* base offered load, queries/s *)
  peak : float;  (* flash-crowd peak multiplier (Flash_crowd only) *)
  traffic_duration_ms : float;
  traffic_warmup_ms : float;
  traffic_zipf_s : float;  (* key popularity skew *)
  service_ms : float;  (* per-peer service time (queueing model) *)
  traffic_seed : int;  (* workload stream seed, independent of [config.seed] *)
  balance_interval_ms : float;  (* gossip + balance control cadence *)
  balance : balance_config;
}

let default_traffic_config =
  {
    scenario = Flash_crowd;
    poisson = true;
    arrival_rate = 120.0;
    peak = 10.0;
    traffic_duration_ms = 30_000.0;
    traffic_warmup_ms = 4_000.0;
    traffic_zipf_s = 1.1;
    service_ms = 3.0;
    traffic_seed = 0x7AF1C;
    balance_interval_ms = 1_000.0;
    balance = default_balance_config;
  }

type traffic_report = {
  engine : Traffic.report;
  results_digest : string;
      (* MD5 over every measured (seq, key, sorted item ids/versions):
         equal digests across arms = balancing changed performance, not
         answers *)
  retries : int;
  queue_msgs : int;  (* messages that passed a service queue *)
  queue_delayed : int;  (* of those, how many actually waited *)
  queue_p50_ms : float;  (* queueing-delay percentiles, measurement window *)
  queue_p99_ms : float;
  queue_max_ms : float;
  boosts_spawned : int;
  boosts_retired : int;
  hot_serves : int;  (* lookups answered by a boost replica *)
}

let histo_percentile t name p =
  match List.assoc_opt name (Metrics.histograms t.metrics) with
  | Some h when Unistore_obs.Histogram.count h > 0 -> Unistore_obs.Histogram.percentile h p
  | _ -> 0.0

(* Drive one open-loop traffic run against this deployment (P-Grid
   only: the queueing model and balancer live on the overlay's network).
   [keys] is the lookup key population; the caller loads the data first.
   The workload stream is seeded by [cfg.traffic_seed] alone, so two
   deployments driven with the same [cfg] — e.g. an adaptive arm and a
   [no_balancing] arm — face a byte-identical request sequence. *)
let run_traffic t ~keys cfg =
  match t.pgrid with
  | None -> invalid_arg "Unistore.run_traffic: P-Grid overlay required"
  | Some ov ->
    if List.is_empty keys then invalid_arg "Unistore.run_traffic: empty key population";
    let pconfig =
      {
        (Overlay.config ov) with
        Config.adaptive_timeout = cfg.balance.adaptive_timeout;
        hot_replication = cfg.balance.hot_replication;
        spread_load = cfg.balance.spread_load;
        (* Patience is not the treatment variable: both arms get a
           generous retry budget so a transient backlog spike costs
           latency, never answers. Adaptive deadlines make retries
           *timely*; the budget makes them *sufficient*. *)
        retries = 6;
      }
    in
    Overlay.set_config ov pconfig;
    let net = Overlay.net ov in
    if cfg.service_ms > 0.0 then Unistore_sim.Net.set_service_all net ~ms:cfg.service_ms;
    let hotkeys = Hotkeys.create ~keys:(Array.of_list keys) ~s:cfg.traffic_zipf_s in
    let origins = Array.of_list (alive_peers t) in
    let span = cfg.traffic_duration_ms -. cfg.traffic_warmup_ms in
    let schedule =
      match cfg.scenario with
      | Steady_load -> Traffic_schedule.Steady
      | Flash_crowd ->
        (* Spike inside the measurement window: ramp up over 10% of it,
           then hold the peak until the arrival stream ends. The crowd
           is still raging when the window closes, so an arm that falls
           behind is caught red-handed: its backlog at stream end is
           exactly the throughput it failed to serve in-window. *)
        Traffic_schedule.Flash
          {
            peak = cfg.peak;
            at_ms = cfg.traffic_warmup_ms +. (0.3 *. span);
            ramp_ms = 0.1 *. span;
            hold_ms = 0.6 *. span;
          }
      | Diurnal_load -> Traffic_schedule.Diurnal { period_ms = span; trough = 0.3 }
    in
    let ecfg =
      {
        Traffic.arrival =
          (if cfg.poisson then Traffic_arrivals.Poisson else Traffic_arrivals.Deterministic);
        rate_per_s = cfg.arrival_rate;
        schedule;
        zipf_s = cfg.traffic_zipf_s;
        duration_ms = cfg.traffic_duration_ms;
        warmup_ms = cfg.traffic_warmup_ms;
        seed = cfg.traffic_seed;
        control_interval_ms = cfg.balance_interval_ms;
      }
    in
    let outcomes : (int, string) Hashtbl.t = Hashtbl.create 1024 in
    let issue ~seq ~origin ~key ~k =
      Overlay.lookup ov ~origin ~key ~k:(fun (r : Overlay.result) ->
          let ids =
            List.map
              (fun (i : Unistore_pgrid.Store.item) ->
                Printf.sprintf "%s#%d" i.Unistore_pgrid.Store.item_id
                  i.Unistore_pgrid.Store.version)
              r.items
            |> List.sort String.compare
          in
          Hashtbl.replace outcomes seq
            (Printf.sprintf "%d:%s:%b:%s" seq key r.complete (String.concat "," ids));
          k { Traffic.ok = r.complete; items = List.length r.items })
    in
    let control ~now:_ =
      Metrics.incr t.metrics "traffic.control_rounds";
      (* Not [gossip_stats_round]: the facade wrapper drains the event
         queue ([Sim.run_all]), which must not happen from inside the
         running simulation — it would swallow the open-loop arrival
         stream in one gulp. The raw round just enqueues messages. *)
      Gossip.stats_round ov ~sample:Unistore_triple.Stat_sample.of_node;
      if cfg.balance.hot_replication then ignore (Balance.round ov)
    in
    let on_warmup () =
      Metrics.reset_histograms ~prefix:"queue." t.metrics;
      Metrics.reset_histograms ~prefix:"overlay." t.metrics
    in
    let engine = Traffic.run ~sim:t.sim ~origins ~hotkeys ~on_warmup ~control ~issue ecfg in
    let buf = Buffer.create (64 * engine.Traffic.offered) in
    for seq = 0 to engine.Traffic.offered - 1 do
      match Hashtbl.find_opt outcomes seq with
      | Some line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n'
      | None -> Buffer.add_string buf (Printf.sprintf "%d:lost\n" seq)
    done;
    {
      engine;
      results_digest = Digest.to_hex (Digest.string (Buffer.contents buf));
      retries = Metrics.counter t.metrics "overlay.resend";
      queue_msgs = Metrics.counter t.metrics "queue.msgs";
      queue_delayed = Metrics.counter t.metrics "queue.delayed";
      queue_p50_ms = histo_percentile t "queue.wait_ms" 50.0;
      queue_p99_ms = histo_percentile t "queue.wait_ms" 99.0;
      queue_max_ms = histo_percentile t "queue.wait_ms" 100.0;
      boosts_spawned = Metrics.counter t.metrics "balance.spawned";
      boosts_retired = Metrics.counter t.metrics "balance.retired";
      hot_serves = Metrics.counter t.metrics "balance.hot_serve";
    }

(* ------------------------------------------------------------------ *)
(* Static analysis (lib/analysis): semantic query checking, trace
   linting and overlay auditing, surfaced through the facade. *)

module Diagnostic = Unistore_analysis.Diagnostic
module Semantic = Unistore_analysis.Semantic
module Tracelint = Unistore_analysis.Tracelint
module Audit = Unistore_analysis.Audit
module Srclint = Unistore_analysis.Srclint
module Protocol = Unistore_analysis.Protocol

let check t src =
  Semantic.analyze_string ~catalog:(Engine.catalog_of_stats t.stats) src
  |> Result.map snd

(* Read observations for the monotone-reads (cache staleness) lint. *)

let record_reads t =
  match t.pgrid with
  | None -> ()
  | Some ov ->
    Overlay.set_read_observer ov
      (Some
         (fun ~origin items ->
           List.iter
             (fun (i : Unistore_pgrid.Store.item) ->
               t.read_log :=
                 {
                   Tracelint.origin;
                   key = i.Unistore_pgrid.Store.key;
                   item_id = i.Unistore_pgrid.Store.item_id;
                   version = i.Unistore_pgrid.Store.version;
                 }
                 :: !(t.read_log))
             items))

let stop_recording_reads t =
  match t.pgrid with None -> () | Some ov -> Overlay.set_read_observer ov None

let read_log t = List.rev !(t.read_log)
let lint_reads t = Tracelint.monotone_reads (read_log t)

let audit t =
  match (t.pgrid, t.chord) with
  | Some ov, _ -> Audit.pgrid ov
  | _, Some c -> Audit.chord c
  | None, None -> []

let lint_trace t ?allowed_revisits ?(against_metrics = false) tr =
  let rules =
    match t.chord with Some _ -> Tracelint.chord_rules | None -> Tracelint.pgrid_rules
  in
  let metrics = if against_metrics then Some t.metrics else None in
  Tracelint.lint ?allowed_revisits ?metrics ~rules tr

(* Source-level determinism/protocol linting of this repo's own tree
   (the [srclint] binary is the CI entry point; this is the library
   one, for tools that already hold a facade). *)
let lint_src ?rules paths = Srclint.lint_paths ?rules paths
