(** UniStore: a DHT-based universal storage — the public facade.

    One value of type {!t} is a whole simulated deployment: a structured
    overlay (P-Grid by default, Chord+trie as baseline) of [peers]
    simulated nodes, the triple storage layer with its three-way
    indexing, and the VQL query processor with cost-based adaptive
    optimization.

    {[
      let store =
        Unistore.create { Unistore.default_config with peers = 64 }
      in
      ignore (Unistore.insert_tuple store ~oid:"a1"
                [ ("name", Value.S "alice"); ("age", Value.I 30) ]);
      Unistore.refresh_stats store;
      match Unistore.query store "SELECT ?n WHERE { (?a,'name',?n) }" with
      | Ok report -> Format.printf "%a@." Unistore.pp_table report
      | Error e -> prerr_endline e
    ]} *)

module Value = Unistore_triple.Value
module Triple = Unistore_triple.Triple
module Report = Unistore_qproc.Engine

type overlay_kind =
  | Pgrid  (** the paper's substrate: order-preserving trie overlay *)
  | Chord_trie  (** baseline: Chord ring + DHT-hosted trie for ranges *)

(** Knobs of the multi-level caching subsystem ([unistore.cache]):
    per-peer routing-shortcut slots (level 1), the query origin's result
    cache (level 2) and the decay applied when aggregating gossiped
    statistics (level 3). Zero capacities disable a level; {!no_cache}
    disables everything (the uncached baseline of the E-cache
    benchmark). *)
type cache_config = {
  shortcut_capacity : int;  (** routing shortcuts per peer; 0 disables *)
  result_capacity : int;  (** entries per result cache; 0 disables *)
  result_ttl_ms : float;  (** result-cache TTL safety net *)
  stats_half_life_ms : float;
      (** age at which a gossiped summary's weight halves; <= 0 disables
          decay *)
}

val default_cache_config : cache_config
val no_cache : cache_config

(** Knobs of robust query execution under churn (P-Grid only): how many
    times a timed-out request is re-sent (with exponential backoff and
    jitter, see {!Unistore_pgrid.Config}), and whether routing falls
    back to alive replicas of dead references. {!no_retry} turns all of
    it off — the brittle baseline of the churn benchmark, mirroring
    {!no_cache}/{!no_batch}. *)
type retry_config = {
  retries : int;  (** re-sends after the first timeout; 0 disables *)
  backoff : float;  (** timeout multiplier per attempt (>= 1) *)
  jitter : float;  (** +/- fraction randomizing each retry delay *)
  failover : bool;  (** route to alive replicas of dead references *)
}

val default_retry_config : retry_config
val no_retry : retry_config

(** Knobs of the bulk-operation pipeline (P-Grid only): batched shower
    inserts, in-network range aggregation and multi-key bind-join
    probes. {!no_batch} turns every batch path off — the per-item
    baseline of the E-bulk benchmark, mirroring {!no_cache}. *)
type batch_config = {
  bulk_insert : bool;  (** load via splitting [InsertBatch] messages *)
  range_aggregation : bool;  (** converge-cast shower range replies *)
  multi_probe : bool;  (** group bind-join lookups by region *)
  agg_fanin : int;  (** children merged per aggregation node *)
  agg_flush_ms : float;  (** partial-merge flush (loss tolerance) *)
}

val default_batch_config : batch_config
val no_batch : batch_config

type config = {
  peers : int;
  replication : int;
  refs_per_level : int;
  seed : int;
  latency : Unistore_sim.Latency.model;
  drop : float;  (** iid message-loss probability *)
  overlay : overlay_kind;
  qgram_index : bool;  (** maintain the string-similarity index *)
  load_balanced : bool;  (** P-Grid data-aware partitioning (needs sample) *)
  cache : cache_config;
  batch : batch_config;
  retry : retry_config;
  rank : Unistore_triple.Tstore.rank_config;
      (** ranking/similarity fast paths (gram pruning & batching,
          budgeted top-N traversal, skyline pushdown) *)
  store : Unistore_pgrid.Store_intf.backend;
      (** per-peer storage backend (P-Grid only; the Chord baseline
          ignores it): [Hash] (default), [Packed] (dictionary-
          compressed), or [Log { dir }] (file-backed, crash-restart
          capable — see {!Unistore_pgrid.Overlay.crash}) *)
}

(** {!Unistore_triple.Tstore.default_rank}: every ranking fast path on. *)
val default_rank_config : Unistore_triple.Tstore.rank_config

(** {!Unistore_triple.Tstore.no_rank}: the naive arm for the E-rank
    benchmark — all pattern grams fetched one lookup each, full-region
    top-N, origin-side skyline. *)
val no_rank_config : Unistore_triple.Tstore.rank_config

val default_config : config

type t

(** [create ?sample_keys config] builds a fresh deployment. For a
    load-balanced P-Grid overlay, pass the (encoded) keys of the data you
    are about to insert — e.g. [Publications.sample_keys ds] — so the
    trie can be shaped to the distribution (the converged state of
    P-Grid's load balancing). *)
val create : ?sample_keys:string list -> config -> t

val config : t -> config
val sim : t -> Unistore_sim.Sim.t
val tstore : t -> Unistore_triple.Tstore.t
val dht : t -> Unistore_triple.Dht.t

(** The P-Grid overlay handle, when [overlay = Pgrid]. *)
val pgrid : t -> Unistore_pgrid.Overlay.t option

(** {2 Loading data} *)

(** [insert_triple t tr] returns [true] if all index entries stored. *)
val insert_triple : t -> ?origin:int -> Triple.t -> bool

(** [insert_tuple t ~oid fields] returns the number of triples stored. *)
val insert_tuple : t -> ?origin:int -> oid:string -> (string * Value.t) list -> int

(** [delete_triple t tr] removes a triple and all its index entries.
    (Deletes are not tombstoned — see {!Unistore_triple.Tstore}.) *)
val delete_triple : t -> ?origin:int -> Triple.t -> bool

(** [update_value t ~oid ~attr ~old_value v] replaces one field of a
    logical tuple (delete + re-insert, since index keys embed values). *)
val update_value :
  t -> ?origin:int -> oid:string -> attr:string -> old_value:Value.t -> Value.t -> bool

(** [load t tuples] inserts tuples from round-robin origins (as if each
    participant contributed its own data); returns triples stored. With
    [batch.bulk_insert] on, each origin's triples travel as one batched
    insert ({!Unistore_triple.Tstore.insert_bulk}); per-triple insertion
    is the fallback when batching is off or a batch stays incomplete. *)
val load : t -> (string * (string * Value.t) list) list -> int

(** [add_mapping t a b] publishes an attribute correspondence. *)
val add_mapping : t -> ?origin:int -> string -> string -> bool

(** {2 Statistics} — the cost model's input. [refresh_stats] floods the
    network once (decentralized collection); [set_stats_of_triples] is
    the zero-cost oracle variant when the dataset is known. *)

val refresh_stats : t -> unit
val set_stats_of_triples : t -> Triple.t list -> unit
val stats : t -> Unistore_qproc.Qstats.t

(** {2 Gossiped statistics} — the decentralized replacement for the two
    collectors above. Responsible peers sample their local stores into
    per-attribute summaries which spread epidemically; each round is one
    {!Unistore_pgrid.Gossip.stats_round} (P-Grid only, driven to
    completion). Once summaries have arrived, {!query} and {!explain}
    plan from them instead of the facade-held statistics. *)

(** One sampling + push round; no-op on substrates without statistics
    gossip (Chord). *)
val gossip_stats_round : t -> unit

(** [gossiped_stats t ~origin] aggregates the statistics cache gossip has
    built at [origin] (with age decay, see {!cache_config}); [None] while
    no summary has arrived there — callers fall back to {!stats}. *)
val gossiped_stats : t -> origin:int -> Unistore_qproc.Qstats.t option

(** [result_cache t ~origin] is that origin's result cache (caches are
    per query origin: a hit must mean {e this} client asked recently,
    not that any peer did), created on first use — exposed for tests and
    the CLI. [None] iff [cache.result_capacity = 0]. *)
val result_cache : t -> origin:int -> Unistore_qproc.Qcache.t option

(** {2 Querying} *)

type strategy = Unistore_qproc.Engine.strategy = Centralized | Mutant

(** [query t vql] parses, optimizes and executes a VQL query.
    [expand_mappings] rewrites constant attributes through published
    schema correspondences. Plans from gossiped statistics when
    available (see {!gossiped_stats}) and serves repeated accesses from
    the result cache (hit/miss counters land in {!metrics} under
    ["cache.result.*"] / ["cache.bind.*"]). *)
val query :
  t ->
  ?origin:int ->
  ?strategy:strategy ->
  ?expand_mappings:bool ->
  string ->
  (Unistore_qproc.Engine.report, string) result

(** The static physical plan, without executing (EXPLAIN). *)
val explain :
  t -> ?origin:int -> ?expand_mappings:bool -> string ->
  (Unistore_qproc.Physical.t, string) result

val pp_table : Format.formatter -> Unistore_qproc.Engine.report -> unit
val pp_plan : Format.formatter -> Unistore_qproc.Physical.t -> unit

(** {2 Operations & failure injection} *)

val kill_peers : t -> int list -> unit
val revive_peers : t -> int list -> unit
val alive_peers : t -> int list

(** [join_peer t ~id ~bootstrap] adds a brand-new peer to the running
    overlay by cloning [bootstrap] (P-Grid only; false on Chord or if the
    bootstrap peer is dead). *)
val join_peer : t -> id:int -> bootstrap:int -> bool

(** One anti-entropy round among replica groups (P-Grid only; no-op on
    Chord). *)
val anti_entropy_round : t -> unit

(** Deterministic, seeded fault scenarios ({!Unistore_sim.Faults}):
    churn waves, loss bursts, slow peers, partitions. *)
module Faults = Unistore_sim.Faults

type faults = Unistore_pgrid.Message.t Faults.t

(** [inject_faults t spec] schedules the scenario over the overlay
    network and returns the handle for inspecting what fired
    ([Faults.log], [render_log], [crashes], ...). [None] on Chord (the
    driver needs the P-Grid network handle). The scenario's randomness
    comes from [spec.seed] only, never from the deployment's RNG. *)
val inject_faults : t -> Faults.spec -> faults option

(** Self-healing maintenance ({!Unistore_pgrid.Repair}). *)
module Repair = Unistore_pgrid.Repair

(** [repair_round t] runs one repair round — re-point dead references,
    adopt strays, re-replicate depleted leaf groups from spare peers,
    drop stale shortcuts — and drives the resulting state transfers to
    completion. [None] on Chord. *)
val repair_round : t -> Repair.report option

(** [start_trace t] attaches a fresh message-level trace to the overlay
    network (P-Grid or Chord) and returns it; analyze with
    {!Unistore_sim.Trace.pp_summary}, [by_kind], [busiest_peers],
    [timeline], or lint it with {!lint_trace}. *)
val start_trace : t -> Unistore_sim.Trace.t

val stop_trace : t -> unit

(** {2 Metrics & profiling}

    Every deployment carries a {!Unistore_obs.Metrics} registry,
    attached to its network and overlay at creation: per-kind message
    counters ([net.sent.lookup], [net.bytes.sent.range],
    [net.bytes.delivered], ...), outcome
    counters, and per-operation hop/retry/latency/fan-out histograms
    ([overlay.lookup.hops], [overlay.range.fanout], ...). Unlike a
    trace it is always on; [reset_metrics] after loading to scope a
    measurement. *)

val metrics : t -> Unistore_obs.Metrics.t

(** Drop all recorded series (e.g. after bulk loading, before the
    measured phase). *)
val reset_metrics : t -> unit

(** Publish the storage gauges [store.bytes] / [store.items] /
    [store.log_bytes] (summed over alive peers, deterministic
    memory-model estimates) into the registry. No-op on the Chord
    baseline. Call before snapshotting metrics. *)
val refresh_store_gauges : t -> unit

(** The registry as an indented JSON document (the machine-readable
    export; [BENCH_core.json] is built from these). *)
val metrics_json : t -> string

(** [profile ?query report] is the per-operator execution profile of a
    query report: rows in/out, messages and simulated latency per
    executed step (EXPLAIN ANALYZE). Render with {!pp_profile} or
    export via {!Unistore_obs.Profile.to_json}. *)
val profile : ?query:string -> Unistore_qproc.Engine.report -> Unistore_obs.Profile.t

val pp_profile : Format.formatter -> Unistore_obs.Profile.t -> unit

(** [query_profiled t src] = {!query} plus the attached profile. *)
val query_profiled :
  t ->
  ?origin:int ->
  ?strategy:strategy ->
  ?expand_mappings:bool ->
  string ->
  (Unistore_qproc.Engine.report * Unistore_obs.Profile.t, string) result

(** Let background traffic (replication pushes, gossip) drain. *)
val settle : t -> unit

(** {2 Heavy-traffic engine}

    Open-loop load generation ({!Unistore_traffic}) against this
    deployment, with the per-peer service-queue model
    ({!Unistore_sim.Net.set_service}) and the adaptive response layer:
    per-peer EWMA retry deadlines ({!Unistore_pgrid.Rtt}), hot-region
    boost replication ({!Unistore_pgrid.Balance}) and serving-set
    rotation. The workload stream is seeded independently of the
    deployment, so an adaptive arm and a {!no_balancing} arm face a
    byte-identical request sequence. *)

module Traffic = Unistore_traffic.Engine
module Traffic_schedule = Unistore_traffic.Schedule
module Traffic_arrivals = Unistore_traffic.Arrivals
module Hotkeys = Unistore_traffic.Hotkeys
module Balance = Unistore_pgrid.Balance

type balance_config = {
  adaptive_timeout : bool;  (** per-peer EWMA retry deadlines *)
  hot_replication : bool;  (** spawn boost replicas for hot regions *)
  spread_load : bool;  (** origins rotate across the serving set *)
}

val default_balance_config : balance_config

(** The experimental baseline arm: fixed deadlines, no boosts, no
    rotation. *)
val no_balancing : balance_config

type traffic_scenario = Steady_load | Flash_crowd | Diurnal_load

type traffic_config = {
  scenario : traffic_scenario;
  poisson : bool;  (** exponential vs. fixed inter-arrival gaps *)
  arrival_rate : float;  (** base offered load, queries/s *)
  peak : float;  (** flash-crowd peak multiplier ([Flash_crowd] only) *)
  traffic_duration_ms : float;
  traffic_warmup_ms : float;  (** measurement window starts here *)
  traffic_zipf_s : float;  (** key popularity skew *)
  service_ms : float;  (** per-peer service time (enables queueing) *)
  traffic_seed : int;  (** workload stream seed *)
  balance_interval_ms : float;  (** gossip + balance cadence *)
  balance : balance_config;
}

val default_traffic_config : traffic_config

type traffic_report = {
  engine : Traffic.report;
  results_digest : string;
      (** MD5 over every measured (seq, key, sorted item ids/versions):
          equal digests across arms mean balancing changed performance,
          not answers *)
  retries : int;
  queue_msgs : int;  (** messages that passed a service queue *)
  queue_delayed : int;  (** of those, how many actually waited *)
  queue_p50_ms : float;  (** queueing-delay percentiles (window) *)
  queue_p99_ms : float;
  queue_max_ms : float;
  boosts_spawned : int;
  boosts_retired : int;
  hot_serves : int;  (** lookups answered by a boost replica *)
}

(** [run_traffic t ~keys cfg] drives one open-loop lookup workload over
    the key population [keys] (P-Grid only; load the data first). Runs
    the simulator to completion and reports measurement-window
    throughput, latency and queueing percentiles. Raises
    [Invalid_argument] on a Chord deployment or an empty key set. *)
val run_traffic : t -> keys:string list -> traffic_config -> traffic_report

(** Network messages sent since creation. *)
val messages_sent : t -> int

(** Simulated time (ms). *)
val now : t -> float

(** {2 Static analysis}

    The [unistore.analysis] layer surfaced through the facade: semantic
    query checking against the deployment's statistics, post-run trace
    linting and overlay invariant auditing. *)

module Diagnostic = Unistore_analysis.Diagnostic
module Semantic = Unistore_analysis.Semantic
module Tracelint = Unistore_analysis.Tracelint
module Audit = Unistore_analysis.Audit
module Srclint = Unistore_analysis.Srclint
module Protocol = Unistore_analysis.Protocol

(** [check t src] parses [src] and runs the semantic analyzer against
    the catalog derived from {!stats} (call {!refresh_stats} first for
    data-aware type checking). [Error] is a positioned parse error;
    [Ok] carries the diagnostics (possibly empty). *)
val check : t -> string -> (Diagnostic.t list, string) result

(** [audit t] runs the overlay invariant auditor
    ({!Unistore_analysis.Audit}) against the deployment's substrate. *)
val audit : t -> Diagnostic.t list

(** [lint_trace t tr] runs the trace linter with the substrate's rules.
    [against_metrics] additionally checks message-count conservation
    against the deployment's metrics registry — only sound if [tr] and
    the registry cover the same window (attach the trace right after
    {!reset_metrics}). *)
val lint_trace :
  t -> ?allowed_revisits:int -> ?against_metrics:bool -> Unistore_sim.Trace.t ->
  Diagnostic.t list

(** [lint_src paths] runs the source-level determinism and
    protocol-exhaustiveness linter ({!Srclint}) over the given files or
    directories — the library entry behind [make lint-src] and the
    [unistore-srclint] binary. *)
val lint_src : ?rules:Srclint.rule list -> string list -> Srclint.report list

(** {2 Read-staleness linting}

    [record_reads] starts logging every successful lookup (P-Grid only)
    as a {!Unistore_analysis.Tracelint.read_obs}; {!lint_reads} then
    replays the log through the monotone-reads check — a read returning
    a version older than one this client already observed means a cache
    (shortcut or result) served past its invalidation. *)

val record_reads : t -> unit
val stop_recording_reads : t -> unit
val read_log : t -> Tracelint.read_obs list
val lint_reads : t -> Diagnostic.t list
