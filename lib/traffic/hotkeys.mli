(** Zipf-skewed key popularity. Keys are sorted before ranking so the
    hot head is lexicographically clustered — a {e regional} hot spot
    in the key-order-preserving P-Grid trie. *)

type t

(** [create ~keys ~s] ranks a copy of [keys] (sorted) under a Zipf
    distribution with exponent [s]. Raises on an empty key set. *)
val create : keys:string array -> s:float -> t

(** Draw one key (exactly one RNG draw). *)
val sample : t -> Unistore_util.Rng.t -> string

val n : t -> int

(** [head_mass t k] is the probability mass of the [k] hottest keys. *)
val head_mass : t -> int -> float
