(** Open-loop traffic engine: a seeded arrival stream over the shared
    simulator clock. The offered workload (key, origin, instant of each
    request) depends only on the engine's own seed — never on how fast
    the system answers — so two system configurations driven with the
    same config face a byte-identical request sequence. *)

type config = {
  arrival : Arrivals.t;
  rate_per_s : float;  (** base offered load, queries per second *)
  schedule : Schedule.t;
  zipf_s : float;  (** key-popularity skew recorded for reports; the
                       caller bakes it into [hotkeys] *)
  duration_ms : float;  (** arrival stream length *)
  warmup_ms : float;  (** requests issued before this are not measured *)
  seed : int;
  control_interval_ms : float;  (** cadence of the [control] hook; 0 disables *)
}

val default : config

(** What the system reports back for one completed request. *)
type completion = { ok : bool; items : int }

type report = {
  offered : int;
  measured : int;
  ok : int;
  served_in_window : int;
      (** ok completions that landed before the arrival stream ended —
          the numerator of [throughput_qps]; a backlogged system
          completes everything eventually, but late *)
  giveups : int;
  items : int;
  throughput_qps : float;
  lat_mean_ms : float;
  lat_p50_ms : float;
  lat_p90_ms : float;
  lat_p99_ms : float;
  lat_max_ms : float;
}

(** [run ~sim ~origins ~hotkeys ~issue cfg] schedules the arrival
    stream, drives [sim] until every request resolved, and reports
    measurement-window throughput and latency percentiles. [issue] must
    start one asynchronous query and call [k] exactly once when it
    completes. [on_warmup] fires when the measurement window opens;
    [control ~now] fires every [control_interval_ms] while arrivals
    last. *)
val run :
  sim:Unistore_sim.Sim.t ->
  origins:int array ->
  hotkeys:Hotkeys.t ->
  ?on_warmup:(unit -> unit) ->
  ?control:(now:float -> unit) ->
  issue:(seq:int -> origin:int -> key:string -> k:(completion -> unit) -> unit) ->
  config ->
  report
