(** Open-loop arrival processes: inter-arrival gaps independent of
    completions. *)

type t =
  | Poisson  (** exponential gaps — memoryless, bursty *)
  | Deterministic  (** fixed gaps — smooth offered load *)

(** [gap t rng ~rate_per_ms] draws the milliseconds until the next
    arrival. Poisson consumes exactly one RNG draw, Deterministic none.
    Raises [Invalid_argument] on non-positive rate. *)
val gap : t -> Unistore_util.Rng.t -> rate_per_ms:float -> float
