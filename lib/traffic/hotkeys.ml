module Zipf = Unistore_util.Zipf

(* Zipf-skewed key popularity over a fixed key population. The keys are
   sorted before ranking, so the popular head ranks are lexicographic
   neighbors — they land in one (or a few) trie regions, which is what
   makes the skew a *regional* hot spot rather than diffuse load. *)

type t = { keys : string array; zipf : Zipf.t }

let create ~keys ~s =
  if Array.length keys = 0 then invalid_arg "Hotkeys.create: empty key set";
  let keys = Array.copy keys in
  Array.sort String.compare keys;
  { keys; zipf = Zipf.create ~n:(Array.length keys) ~s }

let sample t rng = t.keys.(Zipf.sample t.zipf rng - 1)
let n t = Array.length t.keys

(* The cumulative probability mass of the [k] hottest keys — handy for
   sizing a flash experiment ("the top 5 keys draw 60% of traffic"). *)
let head_mass t k =
  let k = min k (Zipf.n t.zipf) in
  let acc = ref 0.0 in
  for rank = 1 to k do
    acc := !acc +. Zipf.probability t.zipf rank
  done;
  !acc
