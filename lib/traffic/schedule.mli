(** Rate schedules for the open-loop traffic generator: a deterministic
    time-varying multiplier on the base arrival rate. *)

type t =
  | Steady  (** constant multiplier 1 *)
  | Flash of { peak : float; at_ms : float; ramp_ms : float; hold_ms : float }
      (** flash crowd: ramp linearly from 1 to [peak] over [ramp_ms]
          starting at [at_ms], hold for [hold_ms], ramp back down *)
  | Diurnal of { period_ms : float; trough : float }
      (** sinusoidal day/night cycle between [trough] and 1 *)

(** [factor sched ~t] is the rate multiplier at [t] milliseconds into
    the run. Pure — same inputs, same output. *)
val factor : t -> t:float -> float
