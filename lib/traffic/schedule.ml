(* Rate schedules: a time-varying multiplier applied to the base
   arrival rate. [t] is milliseconds since the start of the run. *)

type t =
  | Steady
  | Flash of { peak : float; at_ms : float; ramp_ms : float; hold_ms : float }
  | Diurnal of { period_ms : float; trough : float }

let pi = 4.0 *. atan 1.0

let factor sched ~t =
  match sched with
  | Steady -> 1.0
  | Flash { peak; at_ms; ramp_ms; hold_ms } ->
    (* Piecewise-linear spike: 1 -> peak over [at, at+ramp], hold at
       peak for [hold], back down to 1 over another [ramp]. *)
    if t < at_ms then 1.0
    else if t < at_ms +. ramp_ms then
      1.0 +. ((peak -. 1.0) *. ((t -. at_ms) /. ramp_ms))
    else if t < at_ms +. ramp_ms +. hold_ms then peak
    else if t < at_ms +. (2.0 *. ramp_ms) +. hold_ms then
      peak -. ((peak -. 1.0) *. ((t -. at_ms -. ramp_ms -. hold_ms) /. ramp_ms))
    else 1.0
  | Diurnal { period_ms; trough } ->
    (* Sinusoid between [trough] and 1, starting (and peaking) at the
       quarter-period: factor(0) = midpoint rising. *)
    let mid = (1.0 +. trough) /. 2.0 in
    let amp = (1.0 -. trough) /. 2.0 in
    mid +. (amp *. sin (2.0 *. pi *. t /. period_ms))
