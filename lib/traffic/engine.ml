module Rng = Unistore_util.Rng
module Stats = Unistore_util.Stats
module Sim = Unistore_sim.Sim

(* The open-loop load generator. Arrivals are scheduled on the shared
   simulator clock from the engine's own seeded RNG (three split
   streams: arrival gaps, key choice, origin choice), so the offered
   workload — which key, from which origin, at which instant — is
   byte-identical across runs and across system configurations. That is
   what makes two-arm comparisons (adaptive balancing on vs. off) sound:
   both arms face exactly the same request sequence. *)

type config = {
  arrival : Arrivals.t;
  rate_per_s : float;  (* base offered load, queries per second *)
  schedule : Schedule.t;
  zipf_s : float;  (* key popularity skew; 0 = uniform *)
  duration_ms : float;
  warmup_ms : float;  (* completions of requests issued before this are discarded *)
  seed : int;
  control_interval_ms : float;  (* cadence of the [control] hook; 0 disables *)
}

let default =
  {
    arrival = Arrivals.Poisson;
    rate_per_s = 200.0;
    schedule = Schedule.Steady;
    zipf_s = 0.9;
    duration_ms = 30_000.0;
    warmup_ms = 3_000.0;
    seed = 0x7AF1C;
    control_interval_ms = 1_000.0;
  }

type completion = { ok : bool; items : int }

type report = {
  offered : int;  (* requests issued over the whole run *)
  measured : int;  (* issued inside the measurement window *)
  ok : int;  (* measured requests that completed successfully *)
  served_in_window : int;
      (* ok completions that landed before the arrival stream ended —
         the numerator of [throughput_qps]. A backlogged system answers
         everything eventually (open loop + drain), but late: served
         throughput, not eventual completion, is what degrades. *)
  giveups : int;  (* measured requests that gave up (timeout budget) *)
  items : int;  (* items returned by measured requests *)
  throughput_qps : float;  (* served_in_window / window length *)
  lat_mean_ms : float;
  lat_p50_ms : float;
  lat_p90_ms : float;
  lat_p99_ms : float;
  lat_max_ms : float;
}

let percentiles lats =
  match lats with
  | [] -> (0.0, 0.0, 0.0, 0.0, 0.0)
  | l ->
    ( Stats.mean l,
      Stats.percentile l 50.0,
      Stats.percentile l 90.0,
      Stats.percentile l 99.0,
      Stats.percentile l 100.0 )

(* [run ~sim ~origins ~hotkeys ~issue cfg] drives the whole experiment:
   schedules the arrival stream, runs the simulator to completion (open
   loop ends at [duration_ms]; the drain after it lets stragglers and
   timeouts resolve), and reports windowed throughput and latency.

   [issue ~seq ~origin ~key ~k] must start one asynchronous query and
   eventually call [k] exactly once. [on_warmup] fires once when the
   measurement window opens (reset steady-state histograms there).
   [control ~now] fires every [control_interval_ms] until the end of
   the arrival stream (gossip, balance rounds). *)
let run ~sim ~origins ~hotkeys ?(on_warmup = fun () -> ()) ?(control = fun ~now:_ -> ()) ~issue
    cfg =
  if Array.length origins = 0 then invalid_arg "Engine.run: no origins";
  if cfg.duration_ms <= 0.0 then invalid_arg "Engine.run: duration must be positive";
  let rng = Rng.create cfg.seed in
  let arrival_rng = Rng.split rng in
  let key_rng = Rng.split rng in
  let origin_rng = Rng.split rng in
  let t0 = Sim.now sim in
  let t_end = t0 +. cfg.duration_ms in
  let t_meas = t0 +. cfg.warmup_ms in
  let offered = ref 0 in
  let measured_n = ref 0 in
  let ok = ref 0 in
  let in_window = ref 0 in
  let giveups = ref 0 in
  let items = ref 0 in
  let lats = ref [] in
  let rec tick () =
    let now = Sim.now sim in
    if now < t_end then begin
      let seq = !offered in
      incr offered;
      let key = Hotkeys.sample hotkeys key_rng in
      let origin = origins.(Rng.int origin_rng (Array.length origins)) in
      let measured = now >= t_meas in
      if measured then incr measured_n;
      let issued_at = now in
      issue ~seq ~origin ~key ~k:(fun (c : completion) ->
          if measured then begin
            let done_at = Sim.now sim in
            if c.ok then begin
              incr ok;
              if done_at <= t_end then incr in_window
            end
            else incr giveups;
            items := !items + c.items;
            lats := (done_at -. issued_at) :: !lats
          end);
      let factor = Schedule.factor cfg.schedule ~t:(now -. t0) in
      let rate_per_ms = cfg.rate_per_s *. factor /. 1000.0 in
      Sim.schedule sim ~delay:(Arrivals.gap cfg.arrival arrival_rng ~rate_per_ms) tick
    end
  in
  (* First arrival after one gap at the base rate. *)
  Sim.schedule sim
    ~delay:(Arrivals.gap cfg.arrival arrival_rng ~rate_per_ms:(cfg.rate_per_s /. 1000.0))
    tick;
  if cfg.warmup_ms > 0.0 then Sim.schedule_at sim ~time:t_meas on_warmup;
  if cfg.control_interval_ms > 0.0 then begin
    let rec ctl () =
      let now = Sim.now sim in
      if now < t_end then begin
        (* Reschedule before running the hook: a control hook that
           pumps the simulator (drains events) must not be able to
           starve its own successor out of the queue. *)
        Sim.schedule sim ~delay:cfg.control_interval_ms ctl;
        control ~now
      end
    in
    Sim.schedule sim ~delay:cfg.control_interval_ms ctl
  end;
  Sim.run_all sim;
  let window_s = (cfg.duration_ms -. cfg.warmup_ms) /. 1000.0 in
  let mean, p50, p90, p99, mx = percentiles !lats in
  {
    offered = !offered;
    measured = !measured_n;
    ok = !ok;
    served_in_window = !in_window;
    giveups = !giveups;
    items = !items;
    throughput_qps = (if window_s > 0.0 then float_of_int !in_window /. window_s else 0.0);
    lat_mean_ms = mean;
    lat_p50_ms = p50;
    lat_p90_ms = p90;
    lat_p99_ms = p99;
    lat_max_ms = mx;
  }
