module Rng = Unistore_util.Rng

(* Arrival processes. Open-loop: the gap to the next arrival never
   depends on completions, so offered load keeps coming whether or not
   the system keeps up — the regime where queueing delay shows. *)

type t = Poisson | Deterministic

(* Milliseconds until the next arrival at instantaneous [rate_per_ms].
   Poisson draws exactly one RNG sample; Deterministic draws none. *)
let gap t rng ~rate_per_ms =
  if rate_per_ms <= 0.0 then invalid_arg "Arrivals.gap: rate must be positive";
  let mean = 1.0 /. rate_per_ms in
  match t with
  | Poisson -> Rng.exponential rng ~mean
  | Deterministic -> mean
