type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no nan/inf literals; map them to null rather than emit an
   unparseable document. *)
let add_float buf f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    Buffer.add_string buf "null"
  else begin
    let s = Printf.sprintf "%.12g" f in
    Buffer.add_string buf s;
    (* Keep integral floats distinguishable from ints so decode(encode x)
       preserves the constructor. *)
    if not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s) then
      Buffer.add_string buf ".0"
  end

let rec encode buf ~indent ~level t =
  let pad n = Buffer.add_string buf (String.make (n * 2) ' ') in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | Str s -> add_escaped buf s
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        if indent then begin
          Buffer.add_char buf '\n';
          pad (level + 1)
        end;
        encode buf ~indent ~level:(level + 1) x)
      xs;
    if indent then begin
      Buffer.add_char buf '\n';
      pad level
    end;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        if indent then begin
          Buffer.add_char buf '\n';
          pad (level + 1)
        end;
        add_escaped buf k;
        Buffer.add_string buf (if indent then ": " else ":");
        encode buf ~indent ~level:(level + 1) v)
      kvs;
    if indent then begin
      Buffer.add_char buf '\n';
      pad level
    end;
    Buffer.add_char buf '}'

let to_string ?(minify = false) t =
  let buf = Buffer.create 1024 in
  encode buf ~indent:(not minify) ~level:0 t;
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* ------------------------------------------------------------------ *)
(* Decoding (recursive descent; enough for round-trips and tooling)    *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %c" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
  let s = String.sub st.src st.pos 4 in
  st.pos <- st.pos + 4;
  match int_of_string_opt ("0x" ^ s) with
  | Some c -> c
  | None -> fail st "invalid \\u escape"

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char buf '"'; advance st
      | Some '\\' -> Buffer.add_char buf '\\'; advance st
      | Some '/' -> Buffer.add_char buf '/'; advance st
      | Some 'n' -> Buffer.add_char buf '\n'; advance st
      | Some 'r' -> Buffer.add_char buf '\r'; advance st
      | Some 't' -> Buffer.add_char buf '\t'; advance st
      | Some 'b' -> Buffer.add_char buf '\b'; advance st
      | Some 'f' -> Buffer.add_char buf '\012'; advance st
      | Some 'u' ->
        advance st;
        let c = parse_hex4 st in
        (match Uchar.of_int c with
        | u -> Buffer.add_utf_8_uchar buf u
        | exception Invalid_argument _ -> fail st "invalid codepoint")
      | _ -> fail st "bad escape");
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c when is_num_char c -> true | _ -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then
    match float_of_string_opt s with Some f -> Float f | None -> fail st "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with Some f -> Float f | None -> fail st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> Str (parse_string st)
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st "expected , or ]"
      in
      Arr (items [])
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let member () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let rec members acc =
        let kv = member () in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members (kv :: acc)
        | Some '}' ->
          advance st;
          List.rev (kv :: acc)
        | _ -> fail st "expected , or }"
      in
      Obj (members [])
    end
  | Some _ -> parse_number st

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then Error (Printf.sprintf "trailing input at offset %d" st.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
