type op = {
  label : string;
  access : string;
  carrier : int;
  rows_in : int;
  rows_out : int;
  messages : int;
  latency_ms : float;
}

type t = {
  query : string option;
  strategy : string;
  rows : int;
  messages : int;
  latency_ms : float;
  bytes_shipped : int;
  complete : bool;
  completeness : float;
  ops : op list;
}

let op_to_json o =
  Json.Obj
    [
      ("operator", Json.Str o.label);
      ("access", Json.Str o.access);
      ("carrier", Json.Int o.carrier);
      ("rows_in", Json.Int o.rows_in);
      ("rows_out", Json.Int o.rows_out);
      ("messages", Json.Int o.messages);
      ("latency_ms", Json.Float o.latency_ms);
    ]

let to_json t =
  Json.Obj
    ((match t.query with Some q -> [ ("query", Json.Str q) ] | None -> [])
    @ [
        ("strategy", Json.Str t.strategy);
        ("rows", Json.Int t.rows);
        ("messages", Json.Int t.messages);
        ("latency_ms", Json.Float t.latency_ms);
        ("bytes_shipped", Json.Int t.bytes_shipped);
        ("complete", Json.Bool t.complete);
        ("completeness", Json.Float t.completeness);
        ("operators", Json.Arr (List.map op_to_json t.ops));
      ])

let pp fmt t =
  let headers = [ "operator"; "access"; "peer"; "rows_in"; "rows_out"; "msgs"; "ms" ] in
  let rows =
    List.map
      (fun o ->
        [
          o.label;
          o.access;
          string_of_int o.carrier;
          string_of_int o.rows_in;
          string_of_int o.rows_out;
          string_of_int o.messages;
          Printf.sprintf "%.1f" o.latency_ms;
        ])
      t.ops
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun w r -> max w (String.length (List.nth r i))) (String.length h) rows)
      headers
  in
  let print_row cells =
    List.iter2 (fun w c -> Format.fprintf fmt "%-*s  " w c) widths cells;
    Format.fprintf fmt "@,"
  in
  Format.fprintf fmt "@[<v>";
  print_row headers;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows;
  Format.fprintf fmt "total: %d row(s), %d msgs, %.1f ms simulated, %d bytes shipped, %s (%s)@]"
    t.rows t.messages t.latency_ms t.bytes_shipped
    (if t.complete then "complete"
     else Printf.sprintf "PARTIAL (%.0f%% coverage)" (100.0 *. t.completeness))
    t.strategy
