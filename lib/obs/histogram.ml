type t = {
  bounds : float array;  (* strictly increasing inclusive upper bounds *)
  counts : int array;  (* length = Array.length bounds + 1; last = overflow *)
  mutable n : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

(* A 1-2-5 ladder covering sub-millisecond latencies up to tens of
   simulated seconds, which also resolves small integer quantities
   (hops, retries) exactly at the low end. *)
let default_buckets =
  [ 0.1; 0.2; 0.5; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000.; 10000. ]

let linear ~lo ~step ~n =
  if n <= 0 || step <= 0.0 then invalid_arg "Histogram.linear";
  List.init n (fun i -> lo +. (float_of_int i *. step))

let create ?(buckets = default_buckets) () =
  let bounds = Array.of_list buckets in
  let ok = ref (Array.length bounds > 0) in
  Array.iteri (fun i b -> if i > 0 && bounds.(i - 1) >= b then ok := false) bounds;
  if not !ok then invalid_arg "Histogram.create: buckets must be non-empty and increasing";
  {
    bounds;
    counts = Array.make (Array.length bounds + 1) 0;
    n = 0;
    sum = 0.0;
    minv = Float.nan;
    maxv = Float.nan;
  }

let bucket_index t v =
  (* First bound >= v, by binary search; overflow bucket otherwise. *)
  let lo = ref 0 and hi = ref (Array.length t.bounds) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.bounds.(mid) >= v then hi := mid else lo := mid + 1
  done;
  !lo

let observe t v =
  let i = bucket_index t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  if t.n = 1 then begin
    t.minv <- v;
    t.maxv <- v
  end
  else begin
    if v < t.minv then t.minv <- v;
    if v > t.maxv then t.maxv <- v
  end

(* Steady-state measurement windows: [reset] zeroes the accumulated
   counts at the warm-up/measurement boundary so percentiles over the
   measurement phase exclude ramp-up; [snapshot] copies the state first
   when the warm-up numbers themselves are wanted. *)
let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.n <- 0;
  t.sum <- 0.0;
  t.minv <- Float.nan;
  t.maxv <- Float.nan

let snapshot t =
  {
    bounds = t.bounds;
    counts = Array.copy t.counts;
    n = t.n;
    sum = t.sum;
    minv = t.minv;
    maxv = t.maxv;
  }

let count t = t.n
let sum t = t.sum
let mean t = if t.n = 0 then Float.nan else t.sum /. float_of_int t.n
let min_value t = t.minv
let max_value t = t.maxv

let buckets t =
  Array.to_list (Array.mapi (fun i c -> (t.bounds.(i), c)) (Array.sub t.counts 0 (Array.length t.bounds)))
  @ [ (Float.infinity, t.counts.(Array.length t.bounds)) ]

(* Percentile from bucket counts: find the bucket holding the target
   rank, interpolate linearly inside it, then clamp into the observed
   [min, max] (which makes single-sample and all-in-one-bucket cases
   exact at the extremes instead of bucket-edge artifacts). *)
let percentile t p =
  if t.n = 0 then Float.nan
  else if p <= 0.0 then t.minv
  else if p >= 100.0 then t.maxv
  else begin
    let target = p /. 100.0 *. float_of_int t.n in
    let nb = Array.length t.bounds in
    let rec find i cum =
      if i > nb then (t.maxv, t.maxv, cum, cum)  (* unreachable: total = n *)
      else begin
        let c = t.counts.(i) in
        let cum' = cum +. float_of_int c in
        if cum' >= target && c > 0 then begin
          let lower = if i = 0 then t.minv else t.bounds.(i - 1) in
          let upper = if i = nb then t.maxv else t.bounds.(i) in
          (lower, upper, cum, cum')
        end
        else find (i + 1) cum'
      end
    in
    let lower, upper, below, through = find 0 0.0 in
    let frac = if through -. below <= 0.0 then 1.0 else (target -. below) /. (through -. below) in
    let raw = lower +. (frac *. (upper -. lower)) in
    Float.max t.minv (Float.min t.maxv raw)
  end

let pp fmt t =
  if t.n = 0 then Format.pp_print_string fmt "(empty)"
  else
    Format.fprintf fmt "n=%d mean=%.2f min=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f" t.n (mean t)
      t.minv (percentile t 50.0) (percentile t 95.0) (percentile t 99.0) t.maxv

let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.n);
      ("sum", Json.Float t.sum);
      ("min", Json.Float t.minv);
      ("max", Json.Float t.maxv);
      ("mean", Json.Float (mean t));
      ("p50", Json.Float (percentile t 50.0));
      ("p95", Json.Float (percentile t 95.0));
      ("p99", Json.Float (percentile t 99.0));
      ( "buckets",
        Json.Arr
          (List.filter_map
             (fun (le, c) ->
               if c = 0 then None
               else
                 Some
                   (Json.Obj
                      [
                        ("le", if le = Float.infinity then Json.Str "inf" else Json.Float le);
                        ("count", Json.Int c);
                      ]))
             (buckets t)) );
    ]
