(** Metrics registry: named counters, gauges, and histograms.

    The unified accounting layer the cost-based processing story rests
    on: the paper derives costs from the "characteristics of the used
    overlay system and the actual data distribution" (§2), and the demo
    platform makes runs "analyzable" (§3). One registry per simulated
    deployment collects what every layer observes — message counts and
    bytes per kind ({!Unistore_sim.Net}), hop/retry/fan-out histograms
    ({!Unistore_pgrid.Overlay}), and whatever an experiment adds — and
    exports it all as one JSON document.

    Semantics:
    - series are created lazily on first touch; reading an absent
      counter is [0], an absent gauge is [None];
    - names are flat dotted strings (["net.sent.lookup"]); exports list
      them sorted, so output is deterministic;
    - a histogram's buckets are fixed by whoever touches it first
      ([?buckets] is ignored on later calls);
    - attaching a registry is optional everywhere and the
      metrics-disabled path costs nothing, mirroring {!Unistore_sim.Trace}. *)

type t

val create : unit -> t

(** Drop every series (e.g. after warm-up/loading, before measuring). *)
val clear : t -> unit

(** {2 Counters} *)

val incr : t -> ?by:int -> string -> unit
val counter : t -> string -> int

(** {2 Gauges} *)

val set_gauge : t -> string -> float -> unit
val gauge : t -> string -> float option

(** {2 Histograms} *)

(** [histogram t ?buckets name] finds or creates the series. *)
val histogram : t -> ?buckets:float list -> string -> Histogram.t

val observe : t -> ?buckets:float list -> string -> float -> unit

(** [reset_histograms ?prefix t] resets the accumulated state of every
    histogram whose name starts with [prefix] (default: all) without
    dropping the series — existing handles stay valid. Marks the
    warm-up/measurement boundary of an open-loop run; counters and
    gauges are untouched. *)
val reset_histograms : ?prefix:string -> t -> unit

(** {2 Export} — all listings sorted by name. *)

val counters : t -> (string * int) list
val gauges : t -> (string * float) list
val histograms : t -> (string * Histogram.t) list

(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}] *)
val to_json : t -> Json.t

val pp : Format.formatter -> t -> unit
