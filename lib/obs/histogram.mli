(** Fixed-bucket histograms with percentile extraction.

    The quantity distributions the paper reasons about — lookup hop
    counts ("logarithmic search complexity", §1), query answer times
    ("still only a couple of seconds", §3), range fan-out — are captured
    as counts over a fixed ladder of buckets, the way a production
    metrics pipeline does it: O(1) memory per series, O(log buckets)
    per observation, and p50/p95/p99 recovered by interpolation.

    Invariants:
    - bucket bounds are strictly increasing inclusive upper bounds, plus
      an implicit overflow bucket;
    - [percentile] interpolates inside the selected bucket and clamps
      into the observed [min, max], so a single sample reports itself
      exactly and an all-in-one-bucket series never leaves the bucket;
    - an empty histogram reports [nan] for mean/min/max/percentiles. *)

type t

(** A 1-2-5 ladder from 0.1 to 10000 — covers simulated-ms latencies
    and small integer counts (hops, retries) alike. *)
val default_buckets : float list

(** [linear ~lo ~step ~n] is [n] bounds [lo, lo+step, ...] — exact
    buckets for small integer quantities like hop counts. *)
val linear : lo:float -> step:float -> n:int -> float list

(** [create ?buckets ()] builds an empty histogram. Raises
    [Invalid_argument] if [buckets] is empty or not increasing. *)
val create : ?buckets:float list -> unit -> t

val observe : t -> float -> unit
val count : t -> int
val sum : t -> float

(** [reset t] zeroes the accumulated counts/sum/min/max but keeps the
    bucket ladder — the warm-up/measurement boundary for open-loop
    load runs, so steady-state percentiles exclude ramp-up. *)
val reset : t -> unit

(** [snapshot t] is an independent copy of the current state; observe
    further into [t] without disturbing the copy (e.g. capture the
    warm-up distribution right before {!reset}). *)
val snapshot : t -> t

val mean : t -> float
val min_value : t -> float
val max_value : t -> float

(** [percentile t p] with [p] in [0,100]; [nan] when empty. *)
val percentile : t -> float -> float

(** [(upper_bound, count)] per bucket, ending with the [(infinity, _)]
    overflow bucket. *)
val buckets : t -> (float * int) list

(** Renders like ["n=100 mean=3.2 min=1 p50=3 p95=5 p99=6 max=6"]. *)
val pp : Format.formatter -> t -> unit

(** Summary object: count/sum/min/max/mean/p50/p95/p99 plus the
    non-empty buckets. *)
val to_json : t -> Json.t
