type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histos : (string, Histogram.t) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 64; gauges = Hashtbl.create 16; histos = Hashtbl.create 32 }

let clear t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.histos

let incr t ?(by = 1) name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let counter t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let gauge t name = Option.map ( ! ) (Hashtbl.find_opt t.gauges name)

let histogram t ?buckets name =
  match Hashtbl.find_opt t.histos name with
  | Some h -> h
  | None ->
    let h = Histogram.create ?buckets () in
    Hashtbl.replace t.histos name h;
    h

let observe t ?buckets name v = Histogram.observe (histogram t ?buckets name) v

(* Reset accumulated histogram state (optionally only names under
   [prefix]) without dropping the registrations: callers keep their
   handles, so this is the warm-up/measurement boundary for open-loop
   runs — see Histogram.reset. Counters and gauges are left alone. *)
let reset_histograms ?(prefix = "") t =
  Hashtbl.iter (* srclint: allow unordered-iteration *)
    (fun name h -> if String.starts_with ~prefix name then Histogram.reset h)
    t.histos

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_bindings t.counters ( ! )
let gauges t = sorted_bindings t.gauges ( ! )
let histograms t = sorted_bindings t.histos Fun.id

let to_json t =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (gauges t)));
      ("histograms", Json.Obj (List.map (fun (k, h) -> (k, Histogram.to_json h)) (histograms t)));
    ]

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (k, v) -> Format.fprintf fmt "%-40s %d@," k v) (counters t);
  List.iter (fun (k, v) -> Format.fprintf fmt "%-40s %g@," k v) (gauges t);
  List.iter (fun (k, h) -> Format.fprintf fmt "%-40s %a@," k Histogram.pp h) (histograms t);
  Format.fprintf fmt "@]"
