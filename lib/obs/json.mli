(** Structured JSON values: encoder + minimal decoder.

    The paper's platform makes results "traceable, analyzable and (in
    limits) repeatable" (§3); analyzable means machine-readable. This is
    the export format of the observability layer — {!Metrics.to_json},
    {!Profile.to_json}, and the benchmark baseline [BENCH_core.json] all
    produce values of this type. Implemented from scratch (no external
    dependency): an encoder that always emits valid JSON (non-finite
    floats become [null]) and a small recursive-descent decoder used for
    round-trip tests and ad-hoc tooling.

    Invariant: for any value [v] built without non-finite floats,
    [of_string (to_string v) = Ok v]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** insertion order is preserved *)

(** [to_string v] renders [v]. Default is indented (2 spaces, suitable
    for committed baseline files and diffs); [~minify:true] emits the
    compact wire form. NaN and infinities encode as [null]. *)
val to_string : ?minify:bool -> t -> string

val pp : Format.formatter -> t -> unit

(** [of_string s] parses one JSON document. Rejects trailing garbage.
    Numbers without [.]/[e] parse as [Int], everything else as [Float]. *)
val of_string : string -> (t, string) result

(** [member k v] is the value of key [k] if [v] is an [Obj] containing
    it. *)
val member : string -> t -> t option
