(** Per-operator query profiles (the EXPLAIN ANALYZE view).

    The paper's adaptive processing re-optimizes "at each peer" using
    observed intermediate results (§2); this record is that observation
    made user-visible: for every executed physical step — pattern,
    chosen access path, the peer that carried it — the rows flowing in
    and out, the network messages it issued, and the simulated time it
    took. {!Unistore_qproc.Engine} builds one from every execution
    report; the CLI's [--profile] flag and [BENCH_core.json] render it.

    Invariants: [ops] are in execution order; [messages]/[latency_ms]
    at the top level are end-to-end totals (they include routing and
    post-processing the per-operator rows do not attribute). *)

type op = {
  label : string;  (** the triple pattern, e.g. ["(?a,'name',?n)"] *)
  access : string;  (** chosen access path, e.g. ["av-lookup"] *)
  carrier : int;  (** peer that executed the step *)
  rows_in : int;  (** bindings flowing into the step *)
  rows_out : int;  (** bindings produced (after residual filters) *)
  messages : int;  (** network messages issued by the step *)
  latency_ms : float;  (** simulated time spent in the step *)
}

type t = {
  query : string option;  (** VQL source, when known *)
  strategy : string;  (** ["centralized"] or ["mutant"] *)
  rows : int;
  messages : int;
  latency_ms : float;
  bytes_shipped : int;  (** plan + binding bytes moved (mutant only) *)
  complete : bool;
  completeness : float;
      (** coverage estimate in [0,1] (regions reached / addressed);
          [1.0] iff [complete] *)
  ops : op list;
}

val op_to_json : op -> Json.t
val to_json : t -> Json.t

(** Aligned per-operator table plus a totals line. *)
val pp : Format.formatter -> t -> unit
