(** Chord DHT baseline.

    A classic Chord ring with finger tables, successor lists and
    successor-replication, implemented over the same simulated network as
    P-Grid so that message/hop/latency costs are directly comparable.

    Construction is oracle-based (the converged ring: exact successors,
    predecessors and fingers); dynamic join/stabilize is out of scope for
    the baseline — the experiments compare steady-state query processing.

    Exact-match [put]/[get] are O(log n) hops, like P-Grid lookups. Range
    queries, however, have no native support because the placement hash is
    not order-preserving: use {!Trie_index} (extra distributed structure,
    the approach the paper attributes to Chord) or {!broadcast}. *)

module Store = Unistore_pgrid.Store

type t

type result = {
  items : Store.item list;
  hops : int;
  peers_hit : int;
  complete : bool;
  latency : float;
}

type config = {
  succ_list : int;  (** successor-list length; also the replication factor *)
  timeout_ms : float;
  retries : int;
}

val default_config : config

(** [create sim ~latency ~rng ?drop ~config ~n ()] builds an [n]-peer ring
    with exact routing state. *)
val create :
  Unistore_sim.Sim.t ->
  latency:Unistore_sim.Latency.t ->
  rng:Unistore_util.Rng.t ->
  ?drop:float ->
  config:config ->
  n:int ->
  unit ->
  t

val sim : t -> Unistore_sim.Sim.t
val node_count : t -> int

(** Number of alive peers whose local store holds at least one item. *)
val stored_on : t -> int

(** Ring id of a peer (for tests). *)
val ring_id : t -> int -> int

(** The peer responsible for a key (oracle view, for tests). *)
val responsible : t -> string -> int

val kill : t -> int -> unit
val revive : t -> int -> unit
val is_alive : t -> int -> bool
val alive_peers : t -> int list

(** Mean one-way latency of the underlying network model. *)
val expected_latency : t -> float

(** Network statistics of the underlying simulated network. *)
val net_stats : t -> Unistore_sim.Net.stats

(** Attach/detach a metrics registry for per-kind message accounting
    (see {!Unistore_sim.Net.set_metrics}). *)
val set_metrics : t -> Unistore_obs.Metrics.t option -> unit

(** Attach/detach a message trace (see {!Unistore_sim.Net.set_trace}). *)
val set_trace : t -> Unistore_sim.Trace.t option -> unit

val total_sent : t -> int

(** {2 Routing-state accessors} — read-only views for the overlay
    invariant auditor ([Unistore_analysis.Audit]). *)

(** All peer ids, sorted. *)
val peers : t -> int list

(** Successor list of a peer, nearest first. *)
val successors : t -> int -> int list

(** Predecessor of a peer. *)
val predecessor_of : t -> int -> int

(** Finger table of a peer (entry [i] routes toward
    [Ring.finger_start ring i]); a fresh copy. *)
val fingers : t -> int -> int array

(** {2 Operations} — key placement uses [Ring.hash_key key]. *)

val put :
  t -> origin:int -> key:string -> item_id:string -> payload:string -> ?version:int ->
  k:(result -> unit) -> unit -> unit

val get : t -> origin:int -> key:string -> k:(result -> unit) -> unit

(** Remove one item (by key and item id) from the responsible peer and
    its successor replicas. *)
val del : t -> origin:int -> key:string -> item_id:string -> k:(result -> unit) -> unit

(** Finger-tree broadcast: every alive peer scans its store with [pred];
    O(n) messages, O(log n) latency depth. *)
val broadcast : t -> origin:int -> pred:(Store.item -> bool) -> k:(result -> unit) -> unit

val put_sync :
  t -> origin:int -> key:string -> item_id:string -> payload:string -> ?version:int -> unit ->
  result

val get_sync : t -> origin:int -> key:string -> result
val del_sync : t -> origin:int -> key:string -> item_id:string -> result
val broadcast_sync : t -> origin:int -> pred:(Store.item -> bool) -> result

(** [await t f] runs the simulator until the continuation passed to [f]
    fires (shared by {!Trie_index}). *)
val await : t -> ((result -> unit) -> unit) -> result
