module Rng = Unistore_util.Rng
module Sim = Unistore_sim.Sim
module Net = Unistore_sim.Net
module Latency = Unistore_sim.Latency
module Store = Unistore_pgrid.Store

type result = {
  items : Store.item list;
  hops : int;
  peers_hit : int;
  complete : bool;
  latency : float;
}

type config = { succ_list : int; timeout_ms : float; retries : int }

let default_config = { succ_list = 3; timeout_ms = 10_000.0; retries = 2 }

type node = {
  id : int;
  ring : int;
  mutable successors : int list;  (* nearest first *)
  mutable predecessor : int;
  mutable fingers : int array;  (* index i: successor of (ring + 2^i) *)
  store : (string, Store.item list) Hashtbl.t;
}

type msg =
  | Put of { rid : int; target : int; item : Store.item; origin : int; hops : int }
  | PutAck of { rid : int; hops : int }
  | Get of { rid : int; target : int; key : string; origin : int; hops : int }
  | Got of { rid : int; items : Store.item list; hops : int }
  | Replica of { item : Store.item }
  | Del of { rid : int; target : int; key : string; item_id : string; origin : int; hops : int }
  | Unreplica of { key : string; item_id : string }
  | Bcast of { rid : int; limit : int; origin : int; hops : int; pred : Store.item -> bool }
  | BcastHit of { rid : int; items : Store.item list; forwards : int; hops : int }

let msg_size = function
  | Put { item; _ } -> 20 + Store.item_bytes item
  | PutAck _ -> 20
  | Get { key; _ } -> 20 + String.length key
  | Got { items; _ } -> 20 + List.fold_left (fun a i -> a + Store.item_bytes i) 0 items
  | Replica { item } -> 20 + Store.item_bytes item
  | Del { key; item_id; _ } -> 20 + String.length key + String.length item_id
  | Unreplica { key; item_id } -> 20 + String.length key + String.length item_id
  | Bcast _ -> 40
  | BcastHit { items; _ } -> 20 + List.fold_left (fun a i -> a + Store.item_bytes i) 0 items

let msg_kind = function
  | Put _ -> "put"
  | PutAck _ -> "put-ack"
  | Get _ -> "get"
  | Got _ -> "got"
  | Replica _ -> "replica"
  | Del _ -> "del"
  | Unreplica _ -> "unreplica"
  | Bcast _ -> "bcast"
  | BcastHit _ -> "bcast-hit"

let msg_corr = function
  | Put { rid; _ }
  | PutAck { rid; _ }
  | Get { rid; _ }
  | Got { rid; _ }
  | Del { rid; _ }
  | Bcast { rid; _ }
  | BcastHit { rid; _ } ->
    rid
  | Replica _ | Unreplica _ -> -1

type pending =
  | Psingle of {
      resend : unit -> unit;
      mutable attempts : int;
      started : float;
      k : result -> unit;
    }
  | Pmulti of {
      mutable outstanding : int;
      mutable items : Store.item list;
      mutable hops : int;
      mutable peers_hit : int;
      started : float;
      k : result -> unit;
    }

type t = {
  sim : Sim.t;
  net : msg Net.t;
  config : config;
  nodes : node array;  (* arena indexed by peer id (ids are 0..n-1) *)
  ring_order : node array;  (* sorted by ring id *)
  pending : (int, pending) Hashtbl.t;
  mutable next_rid : int;
}

let sim t = t.sim
let node_count t = Array.length t.nodes

let node t id =
  if id >= 0 && id < Array.length t.nodes then t.nodes.(id)
  else invalid_arg (Printf.sprintf "Chord.node: unknown peer %d" id)

let ring_id t id = (node t id).ring
let kill t id = Net.kill t.net id
let revive t id = Net.revive t.net id
let is_alive t id = Net.is_alive t.net id
let alive_peers t = Net.alive_peers t.net
let expected_latency t = Latency.expected (Net.latency t.net)
let net_stats t = Net.stats t.net
let set_metrics t m = Net.set_metrics t.net m
let set_trace t tr = Net.set_trace t.net tr
let total_sent t = Net.total_sent t.net

(* Read-only routing-state accessors for the overlay invariant auditor
   (lib/analysis): expose what a converged ring must satisfy without
   opening up the node representation. *)
let peers t = List.init (Array.length t.nodes) (fun i -> i)
let successors t id = (node t id).successors
let predecessor_of t id = (node t id).predecessor
let fingers t id = Array.copy (node t id).fingers

let stored_on t =
  Array.fold_left
    (fun acc (n : node) ->
      if Net.is_alive t.net n.id && Hashtbl.length n.store > 0 then acc + 1 else acc)
    0 t.nodes

let store_put (n : node) (item : Store.item) =
  let existing = Option.value ~default:[] (Hashtbl.find_opt n.store item.key) in
  let others = List.filter (fun (i : Store.item) -> not (String.equal i.item_id item.item_id)) existing in
  let keep =
    match List.find_opt (fun (i : Store.item) -> String.equal i.item_id item.item_id) existing with
    | Some old when old.version > item.version -> old
    | _ -> item
  in
  Hashtbl.replace n.store item.key (keep :: others)

let store_find (n : node) key = Option.value ~default:[] (Hashtbl.find_opt n.store key)

let store_remove (n : node) ~key ~item_id =
  match Hashtbl.find_opt n.store key with
  | None -> ()
  | Some items -> (
    match List.filter (fun (i : Store.item) -> not (String.equal i.item_id item_id)) items with
    | [] -> Hashtbl.remove n.store key
    | rest -> Hashtbl.replace n.store key rest)

(* ------------------------------------------------------------------ *)
(* Request bookkeeping (mirrors Overlay's)                             *)

let fresh_rid t =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  rid

let finish_single t rid ~items ~hops ~complete =
  match Hashtbl.find_opt t.pending rid with
  | Some (Psingle p) ->
    Hashtbl.remove t.pending rid;
    p.k { items; hops; peers_hit = 1; complete; latency = Sim.now t.sim -. p.started }
  | _ -> ()

let finish_multi t rid ~complete =
  match Hashtbl.find_opt t.pending rid with
  | Some (Pmulti p) ->
    Hashtbl.remove t.pending rid;
    p.k
      {
        items = p.items;
        hops = p.hops;
        peers_hit = p.peers_hit;
        complete;
        latency = Sim.now t.sim -. p.started;
      }
  | _ -> ()

let deliver_hit t rid ~items ~forwards ~hops =
  match Hashtbl.find_opt t.pending rid with
  | Some (Pmulti p) ->
    p.outstanding <- p.outstanding + forwards - 1;
    p.items <- List.rev_append items p.items;
    p.hops <- max p.hops hops;
    p.peers_hit <- p.peers_hit + 1;
    if p.outstanding <= 0 then finish_multi t rid ~complete:true
  | _ -> ()

let arm_single_timeout t rid =
  let rec arm () =
    Sim.schedule t.sim ~delay:t.config.timeout_ms (fun () ->
        match Hashtbl.find_opt t.pending rid with
        | Some (Psingle p) ->
          if p.attempts < t.config.retries then begin
            p.attempts <- p.attempts + 1;
            p.resend ();
            arm ()
          end
          else finish_single t rid ~items:[] ~hops:0 ~complete:false
        | _ -> ())
  in
  arm ()

let arm_multi_timeout t rid =
  Sim.schedule t.sim ~delay:t.config.timeout_ms (fun () ->
      if Hashtbl.mem t.pending rid then finish_multi t rid ~complete:false)

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)

let alive t id = Net.is_alive t.net id

let first_alive_successor t (me : node) =
  match List.find_opt (alive t) me.successors with
  | Some s -> Some s
  | None -> List.nth_opt me.successors 0

(* Am I responsible for [target]? True iff target in (predecessor, me],
   where the predecessor is the nearest ALIVE one — stabilization repoints
   predecessors after failures, so a successor absorbs its dead
   predecessor's arc (and already holds its data via successor
   replication). *)
let is_responsible t (me : node) target =
  let rec alive_pred id steps =
    if steps > node_count t then me.id
    else begin
      let p = (node t id).predecessor in
      if alive t p then p else alive_pred p (steps + 1)
    end
  in
  let pred = alive_pred me.id 0 in
  let pred_ring = (node t pred).ring in
  Ring.in_oc pred_ring me.ring target

let closest_preceding t (me : node) target =
  (* Scan fingers from the farthest: the classic greedy step. Skip dead
     fingers (failure detection on direct neighbors, as in Overlay). *)
  let rec scan i =
    if i < 0 then None
    else begin
      let f = me.fingers.(i) in
      let fr = (node t f).ring in
      if Ring.in_oo me.ring target fr && alive t f then Some f else scan (i - 1)
    end
  in
  match scan (Array.length me.fingers - 1) with
  | Some f -> Some f
  | None -> first_alive_successor t me

let route_step t (me : node) target =
  if is_responsible t me target then `Local
  else
    match closest_preceding t me target with
    | Some next when next <> me.id -> `Forward next
    | _ -> `Stuck

(* ------------------------------------------------------------------ *)
(* Handlers                                                            *)

let handle_put t (me : node) ~rid ~target ~item ~origin ~hops =
  match route_step t me target with
  | `Local ->
    store_put me item;
    List.iteri
      (fun i s -> if i < t.config.succ_list - 1 then Net.send t.net ~src:me.id ~dst:s (Replica { item }))
      me.successors;
    if me.id = origin then finish_single t rid ~items:[ item ] ~hops ~complete:true
    else Net.send t.net ~src:me.id ~dst:origin (PutAck { rid; hops })
  | `Forward next -> Net.send t.net ~src:me.id ~dst:next (Put { rid; target; item; origin; hops = hops + 1 })
  | `Stuck -> ()

and handle_del t (me : node) ~rid ~target ~key ~item_id ~origin ~hops =
  match route_step t me target with
  | `Local ->
    store_remove me ~key ~item_id;
    List.iteri
      (fun i s ->
        if i < t.config.succ_list - 1 then
          Net.send t.net ~src:me.id ~dst:s (Unreplica { key; item_id }))
      me.successors;
    if me.id = origin then finish_single t rid ~items:[] ~hops ~complete:true
    else Net.send t.net ~src:me.id ~dst:origin (PutAck { rid; hops })
  | `Forward next ->
    Net.send t.net ~src:me.id ~dst:next (Del { rid; target; key; item_id; origin; hops = hops + 1 })
  | `Stuck -> ()

and handle_get t (me : node) ~rid ~target ~key ~origin ~hops =
  match route_step t me target with
  | `Local ->
    let items = store_find me key in
    if me.id = origin then finish_single t rid ~items ~hops ~complete:true
    else Net.send t.net ~src:me.id ~dst:origin (Got { rid; items; hops })
  | `Forward next -> Net.send t.net ~src:me.id ~dst:next (Get { rid; target; key; origin; hops = hops + 1 })
  | `Stuck -> ()

(* Finger-tree broadcast (El-Ansary et al.): forward to each finger with
   the next finger's ring id as its limit; receivers re-broadcast inside
   their limit. Covers every alive peer exactly once with n-1 messages at
   O(log n) depth. *)
and handle_bcast t (me : node) ~rid ~limit ~origin ~hops ~pred =
  let fingers =
    Array.to_list me.fingers |> List.sort_uniq compare
    |> List.filter (fun f -> f <> me.id)
    |> List.map (fun f -> (f, (node t f).ring))
    |> List.filter (fun (_, r) -> Ring.in_oo me.ring limit r)
    |> List.sort (fun (_, r1) (_, r2) ->
           (* ascending clockwise distance from me *)
           compare (Ring.add r1 (Ring.size - me.ring)) (Ring.add r2 (Ring.size - me.ring)))
  in
  let rec fan = function
    | [] -> 0
    | (f, _) :: rest ->
      let sub_limit = match rest with (_, r2) :: _ -> r2 | [] -> limit in
      Net.send t.net ~src:me.id ~dst:f (Bcast { rid; limit = sub_limit; origin; hops = hops + 1; pred });
      1 + fan rest
  in
  let forwards = fan fingers in
  (* The hit list travels inside a [BcastHit] message: sort it out of
     hash-bucket order so the reply payload is deterministic. *)
  let items =
    Hashtbl.fold (fun _ is acc -> List.rev_append (List.filter pred is) acc) me.store []
    |> List.sort (fun (a : Store.item) (b : Store.item) ->
           match String.compare a.key b.key with
           | 0 -> String.compare a.item_id b.item_id
           | c -> c)
  in
  if me.id = origin then deliver_hit t rid ~items ~forwards ~hops
  else Net.send t.net ~src:me.id ~dst:origin (BcastHit { rid; items; forwards; hops })

let dispatch t (me : node) ~src:_ msg =
  match msg with
  | Put { rid; target; item; origin; hops } -> handle_put t me ~rid ~target ~item ~origin ~hops
  | PutAck { rid; hops } -> finish_single t rid ~items:[] ~hops ~complete:true
  | Get { rid; target; key; origin; hops } -> handle_get t me ~rid ~target ~key ~origin ~hops
  | Got { rid; items; hops } -> finish_single t rid ~items ~hops ~complete:true
  | Replica { item } -> store_put me item
  | Del { rid; target; key; item_id; origin; hops } ->
    handle_del t me ~rid ~target ~key ~item_id ~origin ~hops
  | Unreplica { key; item_id } -> store_remove me ~key ~item_id
  | Bcast { rid; limit; origin; hops; pred } -> handle_bcast t me ~rid ~limit ~origin ~hops ~pred
  | BcastHit { rid; items; forwards; hops } -> deliver_hit t rid ~items ~forwards ~hops

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let create sim ~latency ~rng ?(drop = 0.0) ~config ~n () =
  if n < 1 then invalid_arg "Chord.create: n < 1";
  let rng = Rng.split rng in
  let net = Net.create sim ~latency ~rng ~drop ~size:msg_size ~kind:msg_kind ~corr:msg_corr () in
  let mk id =
    { id; ring = Ring.hash_peer id; successors = []; predecessor = id; fingers = [||];
      store = Hashtbl.create 16 }
  in
  let nodes_arr = Array.init n mk in
  let by_ring = Array.copy nodes_arr in
  Array.sort (fun a b -> compare a.ring b.ring) by_ring;
  let nn = Array.length by_ring in
  (* Exact successors / predecessors / fingers. *)
  let successor_of_ringpos i = by_ring.((i + 1) mod nn) in
  (* Find the first node whose ring id is >= x (clockwise successor). *)
  let succ_of_id x =
    let lo = ref 0 and hi = ref (nn - 1) and ans = ref None in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if by_ring.(mid).ring >= x then begin
        ans := Some by_ring.(mid);
        hi := mid - 1
      end
      else lo := mid + 1
    done;
    match !ans with Some nd -> nd | None -> by_ring.(0)
  in
  Array.iteri
    (fun i nd ->
      nd.successors <-
        List.init (min config.succ_list (nn - 1)) (fun k -> by_ring.((i + 1 + k) mod nn).id);
      nd.predecessor <- by_ring.((i + nn - 1) mod nn).id;
      nd.fingers <- Array.init Ring.bits (fun b -> (succ_of_id (Ring.finger_start nd.ring b)).id);
      ignore (successor_of_ringpos i))
    by_ring;
  let t =
    {
      sim;
      net;
      config;
      nodes = nodes_arr;
      ring_order = by_ring;
      pending = Hashtbl.create 64;
      next_rid = 0;
    }
  in
  Array.iter
    (fun nd -> Net.register net nd.id (fun ~src msg -> dispatch t nd ~src msg))
    nodes_arr;
  t

let responsible t key =
  let target = Ring.hash_key key in
  let nn = Array.length t.ring_order in
  let rec find i = if i >= nn then t.ring_order.(0).id else if t.ring_order.(i).ring >= target then t.ring_order.(i).id else find (i + 1) in
  find 0

(* ------------------------------------------------------------------ *)
(* Public operations                                                   *)

let put t ~origin ~key ~item_id ~payload ?(version = 0) ~k () =
  let rid = fresh_rid t in
  let target = Ring.hash_key key in
  let item = { Store.key; item_id; payload; version } in
  let me = node t origin in
  let resend () = handle_put t me ~rid ~target ~item ~origin ~hops:0 in
  Hashtbl.replace t.pending rid (Psingle { resend; attempts = 0; started = Sim.now t.sim; k });
  arm_single_timeout t rid;
  resend ()

let del t ~origin ~key ~item_id ~k =
  let rid = fresh_rid t in
  let target = Ring.hash_key key in
  let me = node t origin in
  let resend () = handle_del t me ~rid ~target ~key ~item_id ~origin ~hops:0 in
  Hashtbl.replace t.pending rid (Psingle { resend; attempts = 0; started = Sim.now t.sim; k });
  arm_single_timeout t rid;
  resend ()

let get t ~origin ~key ~k =
  let rid = fresh_rid t in
  let target = Ring.hash_key key in
  let me = node t origin in
  let resend () = handle_get t me ~rid ~target ~key ~origin ~hops:0 in
  Hashtbl.replace t.pending rid (Psingle { resend; attempts = 0; started = Sim.now t.sim; k });
  arm_single_timeout t rid;
  resend ()

let broadcast t ~origin ~pred ~k =
  let rid = fresh_rid t in
  Hashtbl.replace t.pending rid
    (Pmulti { outstanding = 1; items = []; hops = 0; peers_hit = 0; started = Sim.now t.sim; k });
  arm_multi_timeout t rid;
  let me = node t origin in
  handle_bcast t me ~rid ~limit:me.ring ~origin ~hops:0 ~pred

let await t f =
  let cell = ref None in
  f (fun r -> cell := Some r);
  ignore (Sim.run_until t.sim (fun () -> !cell <> None));
  match !cell with
  | Some r -> r
  | None -> { items = []; hops = 0; peers_hit = 0; complete = false; latency = 0.0 }

let put_sync t ~origin ~key ~item_id ~payload ?version () =
  await t (fun k -> put t ~origin ~key ~item_id ~payload ?version ~k ())

let get_sync t ~origin ~key = await t (fun k -> get t ~origin ~key ~k)
let del_sync t ~origin ~key ~item_id = await t (fun k -> del t ~origin ~key ~item_id ~k)
let broadcast_sync t ~origin ~pred = await t (fun k -> broadcast t ~origin ~pred ~k)
