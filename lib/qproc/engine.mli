(** Query engine: parse → optimize → execute → report.

    The top of the query-processing stack; {!Unistore.Unistore} (the
    public facade) wraps this. *)

module Ast = Unistore_vql.Ast
module Tstore = Unistore_triple.Tstore

type strategy =
  | Centralized  (** the origin pulls everything and joins locally *)
  | Mutant  (** adaptive plan shipping (Mutant Query Plans) *)

val pp_strategy : Format.formatter -> strategy -> unit

type report = {
  columns : string list;
  rows : Binding.t list;
  messages : int;
  latency : float;  (** simulated ms *)
  complete : bool;
  completeness : float;
      (** coverage estimate in [0,1] — the minimum over every executed
          step and UNION branch; rendered as "PARTIAL (N%% coverage)" by
          {!pp_table} when [complete] is false *)
  plan : Physical.t;
  strategy : strategy;
  traces : Exec.step_trace list;
  bytes_shipped : int;
}

(** Render rows as an aligned text table (the CLI's result view). *)
val pp_table : Format.formatter -> report -> unit

(** [plan_query ts stats ~replication ?expand_mappings ~origin q] builds
    the static physical plan (the EXPLAIN view). When [expand_mappings]
    is set, schema correspondences are fetched from the store and
    constant attributes are expanded to their equivalence classes. *)
val plan_query :
  Tstore.t ->
  Qstats.t ->
  replication:int ->
  ?cache:Qcache.t ->
  ?expand_mappings:bool ->
  origin:int ->
  Ast.query ->
  Physical.t

(** [run ts stats ~replication ?strategy ?expand_mappings ~origin q]
    executes a parsed query. Default strategy: [Centralized]; [Mutant]
    falls back to [Centralized] if the substrate cannot ship plans — the
    downgrade bumps the ["engine.mutant_downgrade"] counter (when
    [metrics] is given) and prints a warning on stderr. With [cache] the
    optimizer biases plans toward already-cached accesses and the
    executor serves/fills the origin's result cache ({!Qcache}). *)
val run :
  Tstore.t ->
  Qstats.t ->
  replication:int ->
  ?metrics:Unistore_obs.Metrics.t ->
  ?cache:Qcache.t ->
  ?strategy:strategy ->
  ?expand_mappings:bool ->
  origin:int ->
  Ast.query ->
  report

(** [catalog_of_stats stats] derives the static analyzer's attribute
    catalog from collected statistics. *)
val catalog_of_stats : Qstats.t -> Unistore_analysis.Catalog.t

(** [analyze stats q] runs the {!Unistore_analysis.Semantic} analyzer
    against the catalog derived from [stats]. *)
val analyze : Qstats.t -> Ast.query -> Unistore_analysis.Diagnostic.t list

(** [run_string ...] parses and runs VQL source. The query first passes
    the static analyzer ({!analyze}); error-severity diagnostics refuse
    the plan and are rendered into [Error]. *)
val run_string :
  Tstore.t ->
  Qstats.t ->
  replication:int ->
  ?metrics:Unistore_obs.Metrics.t ->
  ?cache:Qcache.t ->
  ?strategy:strategy ->
  ?expand_mappings:bool ->
  origin:int ->
  string ->
  (report, string) result

(** [profile ?query r] reshapes a report's execution traces into the
    per-operator profile of the observability layer (rows in/out,
    messages, simulated latency per executed step — the EXPLAIN ANALYZE
    view). [query] is attached verbatim when given. *)
val profile : ?query:string -> report -> Unistore_obs.Profile.t
