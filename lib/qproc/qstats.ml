module Value = Unistore_triple.Value
module Triple = Unistore_triple.Triple
module Tstore = Unistore_triple.Tstore

type attr_stats = {
  count : int;
  distinct : int;
  lo : Value.t option;
  hi : Value.t option;
  string_valued : bool;
}

type t = { total_triples : int; distinct_oids : int; attrs : (string * attr_stats) list }

let empty = { total_triples = 0; distinct_oids = 0; attrs = [] }

let attr t a = List.assoc_opt a t.attrs

let pp fmt t =
  Format.fprintf fmt "@[<v>stats: %d triples, %d oids@," t.total_triples t.distinct_oids;
  List.iter
    (fun (a, s) ->
      Format.fprintf fmt "  %s: n=%d distinct=%d string=%b@," a s.count s.distinct s.string_valued)
    t.attrs;
  Format.fprintf fmt "@]"

let of_triples ts =
  let oids = Hashtbl.create 64 in
  let per_attr : (string, Value.t list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (tr : Triple.t) ->
      Hashtbl.replace oids tr.Triple.oid ();
      match Hashtbl.find_opt per_attr tr.Triple.attr with
      | Some l -> l := tr.Triple.value :: !l
      | None -> Hashtbl.replace per_attr tr.Triple.attr (ref [ tr.Triple.value ]))
    ts;
  let attrs =
    Hashtbl.fold
      (fun a values acc ->
        let vs = !values in
        let sorted = List.sort_uniq Value.compare vs in
        let string_valued =
          List.exists (fun v -> Option.is_some (Value.as_string v)) sorted
        in
        let lo = match sorted with [] -> None | v :: _ -> Some v in
        let hi = match List.rev sorted with [] -> None | v :: _ -> Some v in
        (a, { count = List.length vs; distinct = List.length sorted; lo; hi; string_valued })
        :: acc)
      per_attr []
    |> List.sort compare
  in
  { total_triples = List.length ts; distinct_oids = Hashtbl.length oids; attrs }

let collect tstore ~origin =
  let triples, _ = Tstore.scan_sync tstore ~origin ~pred:(fun _ -> true) in
  of_triples triples

module Statcache = Unistore_cache.Statcache

let of_summaries (aggs : (string * Statcache.agg) list) =
  let attrs =
    List.filter_map
      (fun (a, (g : Statcache.agg)) ->
        let count = int_of_float (Float.ceil g.Statcache.a_count) in
        if count <= 0 then None
        else
          Some
            ( a,
              {
                count;
                distinct = min g.Statcache.a_distinct count;
                lo = Value.decode g.Statcache.a_lo;
                hi = Value.decode g.Statcache.a_hi;
                string_valued = g.Statcache.a_string;
              } ))
      aggs
  in
  let total_triples = List.fold_left (fun acc (_, s) -> acc + s.count) 0 attrs in
  (* No summary counts objects, only (attribute, value) occurrences; use
     the largest per-attribute count as the OID estimate — exact when
     each object carries at most one triple per attribute, a lower bound
     otherwise. *)
  let distinct_oids = List.fold_left (fun acc (_, s) -> max acc s.count) 0 attrs in
  { total_triples; distinct_oids; attrs }

(* ------------------------------------------------------------------ *)
(* Estimators                                                          *)

let est_eq t a =
  match attr t a with
  | None -> 0.0
  | Some s -> float_of_int s.count /. float_of_int (max 1 s.distinct)

let numeric v = Value.to_float v

let est_range t a lo hi =
  match attr t a with
  | None -> 0.0
  | Some s -> (
    let total = float_of_int s.count in
    match (s.lo, s.hi) with
    | Some dlo, Some dhi -> (
      match (numeric dlo, numeric dhi) with
      | Some nlo, Some nhi when nhi > nlo ->
        let span = nhi -. nlo in
        let qlo = match Option.bind lo numeric with Some x -> Float.max x nlo | None -> nlo in
        let qhi = match Option.bind hi numeric with Some x -> Float.min x nhi | None -> nhi in
        if qhi < qlo then 0.0 else total *. ((qhi -. qlo) /. span) |> Float.max 1.0
      | _ ->
        (* Non-numeric domain: assume the range covers half the values
           per open bound. *)
        let frac = match (lo, hi) with Some _, Some _ -> 0.25 | None, None -> 1.0 | _ -> 0.5 in
        Float.max 1.0 (total *. frac))
    | _ -> total)

let est_attr t a = match attr t a with None -> 0.0 | Some s -> float_of_int s.count

let est_value t =
  (* A value picked at random matches count/distinct triples on its own
     attribute, summed over attributes that could carry it: approximate
     with global triples / global distinct values. *)
  let total_distinct =
    List.fold_left (fun acc (_, s) -> acc + s.distinct) 0 t.attrs |> max 1
  in
  float_of_int t.total_triples /. float_of_int total_distinct

let est_sim t a =
  match a with
  | Some name -> (
    match attr t name with
    | None -> 0.0
    | Some s -> Float.max 1.0 (float_of_int s.count /. float_of_int (max 1 s.distinct) *. 2.0))
  | None -> Float.max 1.0 (est_value t *. 2.0)
