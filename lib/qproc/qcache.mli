(** The query origin's result cache (level 2 of the caching subsystem,
    specialized to triple-pattern processing).

    Two {!Unistore_cache.Result_cache} instances cooperate:

    - ["cache.result"] keyed by {!Cost.access_key}: the full answer of a
      bulk access path — a repeated [av-lookup(name=“x”)] costs zero
      messages the second time;
    - ["cache.bind"] keyed by DHT index key: the per-key probes of
      bind-joins, so overlapping bind-joins (or re-runs of the same one)
      only look up keys they have not resolved recently.

    Invalidation is version-first with a TTL safety net. [version_of]
    maps an attribute (or [None] for accesses not tied to one — OID and
    value lookups) to the current invalidation version; the facade wires
    it to local write counters plus the gossiped write epochs of the
    statistics cache, so both local writes and remotely-observed writes
    flush affected entries. *)

module Triple = Unistore_triple.Triple

type t

(** [create ~now ~version_of ()] — [now] supplies the clock for TTL
    aging (simulated time); [capacity] (default 256) and [ttl_ms]
    (default 30s) apply to each of the two caches; [metrics] enables
    hit/miss/staleness counters under ["cache.result.*"] and
    ["cache.bind.*"]. *)
val create :
  ?metrics:Unistore_obs.Metrics.t ->
  ?capacity:int ->
  ?ttl_ms:float ->
  now:(unit -> float) ->
  version_of:(string option -> int) ->
  unit ->
  t

val set_metrics : t -> Unistore_obs.Metrics.t option -> unit

(** The attribute whose writes invalidate this access ([None] = any
    write anywhere). *)
val attr_of_access : Cost.access -> string option

(** [find_access t a] returns the cached complete answer of access [a],
    if current. Never caches [ABroadcast] (its answer depends on an
    opaque predicate). *)
val find_access : t -> Cost.access -> Triple.t list option

(** [store_access t a triples] caches a {e complete} answer under the
    current version; callers must not cache partial results. *)
val store_access : t -> Cost.access -> Triple.t list -> unit

(** [cached_access t a] — would [find_access] hit? Side-effect free
    (no counters, no recency update): the optimizer probes this to bias
    plan costs toward already-cached accesses. *)
val cached_access : t -> Cost.access -> bool

(** [find_bind t ~attr ~key] / [store_bind]: the bind-join per-key
    cache; [attr] selects the invalidation version exactly as in
    {!attr_of_access}. *)
val find_bind : t -> attr:string option -> key:string -> Triple.t list option

val store_bind : t -> attr:string option -> key:string -> Triple.t list -> unit
val clear : t -> unit
