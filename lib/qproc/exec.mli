(** Plan execution.

    Two strategies, compared by experiments E8/E9:

    - {!run_centralized}: the query origin evaluates every step itself,
      pulling index regions / issuing bind-join lookups and joining
      locally. Simple, but every intermediate result crosses the network
      back to the origin.

    - {!run_mutant}: Mutant-Query-Plan-style adaptive execution. The plan
      (with the bindings accumulated so far) travels to a peer responsible
      for the next pattern's index region; at each carrier the remainder
      of the plan is {e re-optimized} with the observed intermediate
      cardinality before the next step is chosen. Finally the result ships
      back to the origin. *)

module Ast = Unistore_vql.Ast
module Tstore = Unistore_triple.Tstore

(** One executed physical step, as observed — the raw material of both
    adaptive re-optimization (§2: observed intermediate results steer
    the remaining plan) and the user-facing
    {!Unistore_obs.Profile} built by {!Engine.profile}. *)
type step_trace = {
  step : Physical.step;
  rows_in : int;  (** bindings flowing into the step *)
  actual_card : int;  (** bindings after the step *)
  messages : int;
  latency : float;  (** simulated ms spent in the step *)
  carrier : int;  (** peer that executed it *)
}

val pp_step_trace : Format.formatter -> step_trace -> unit

type run_result = {
  rows : Binding.t list;  (** final rows (after ranking/projection/limit) *)
  messages : int;
  latency : float;  (** simulated ms *)
  complete : bool;
  completeness : float;
      (** coverage estimate in [0,1]: the minimum coverage over every
          executed step (regions reached / regions addressed, from
          {!Unistore_triple.Tstore.meta}); [1.0] iff every access saw
          every region it addressed *)
  traces : step_trace list;
  bytes_shipped : int;  (** plan/binding bytes moved between carriers *)
}

(** [postprocess plan rows] applies a plan's post-join stages (residual
    filters, order/skyline, projection, distinct, limit). Exposed for the
    engine's UNION combination step. *)
val postprocess : Physical.t -> Binding.t list -> Binding.t list

(** [run_centralized ?cache ts ~origin plan] executes a static plan at
    the origin. With [cache], complete bulk-access answers and bind-join
    per-key probes are served from / stored into the origin's result
    cache ({!Qcache}); partial (timed-out) results are never cached. *)
val run_centralized : ?cache:Qcache.t -> Tstore.t -> origin:int -> Physical.t -> run_result

(** [run_mutant ?cache ts stats env ~origin query ~expansions] plans the
    first step statically, then adapts. Requires the substrate to support
    plan shipping ([Dht.send_task]); raises [Invalid_argument] otherwise.
    [cache] is the {e origin's} result cache: steps executed while the
    plan is away at another carrier bypass it. *)
val run_mutant :
  ?cache:Qcache.t ->
  Tstore.t ->
  Qstats.t ->
  Cost.env ->
  origin:int ->
  Ast.query ->
  expansions:(string * string list) list ->
  run_result

(** [skyline_pushdown_shape q] recognizes the in-network skyline shape:
    every pattern binds a distinct constant attribute of one shared
    subject variable to a distinct object variable, no filters or UNION
    branches, and [SKYLINE OF] over (a subset of) those object
    variables. Returns [(goals, subject var, (attr, object var) list)]
    in pattern order. *)
val skyline_pushdown_shape :
  Ast.query -> ((string * Ast.goal) list * string * (string * string) list) option

(** [run_skyline_pushdown ts ~origin q ~goals ~subj ~av] evaluates a
    query matching {!skyline_pushdown_shape} with a leaf-reduced scan of
    the OID region ({!Unistore_triple.Tstore.oid_scan_reduce}): each
    peer drops tuples that cannot join (missing attributes) and complete
    single-valued tuples dominated by a co-located tuple, so most
    dominated rows never cross the network; the origin re-runs the exact
    skyline over the survivors. Sound because all triples of one tuple
    share a single OID key and are therefore collocated. Returns the
    synthetic plan (for EXPLAIN) alongside the result. *)
val run_skyline_pushdown :
  Tstore.t ->
  origin:int ->
  Ast.query ->
  goals:(string * Ast.goal) list ->
  subj:string ->
  av:(string * string) list ->
  Physical.t * run_result
