module Ast = Unistore_vql.Ast
module Parser = Unistore_vql.Parser
module Value = Unistore_triple.Value
module Tstore = Unistore_triple.Tstore
module Dht = Unistore_triple.Dht

type strategy = Centralized | Mutant

let pp_strategy fmt = function
  | Centralized -> Format.pp_print_string fmt "centralized"
  | Mutant -> Format.pp_print_string fmt "mutant"

type report = {
  columns : string list;
  rows : Binding.t list;
  messages : int;
  latency : float;
  complete : bool;
  completeness : float;
  plan : Physical.t;
  strategy : strategy;
  traces : Exec.step_trace list;
  bytes_shipped : int;
}

let columns_of (q : Ast.query) =
  match q.Ast.projection with Some vs -> vs | None -> Ast.query_vars q

let pp_table fmt r =
  let cell row col =
    match Binding.find row col with Some v -> Value.to_display v | None -> ""
  in
  let widths =
    List.map
      (fun col ->
        List.fold_left
          (fun w row -> max w (String.length (cell row col)))
          (String.length col + 1) r.rows)
      r.columns
  in
  let hline () =
    Format.fprintf fmt "+";
    List.iter (fun w -> Format.fprintf fmt "%s+" (String.make (w + 2) '-')) widths;
    Format.fprintf fmt "@,"
  in
  Format.fprintf fmt "@[<v>";
  hline ();
  Format.fprintf fmt "|";
  List.iter2 (fun col w -> Format.fprintf fmt " %-*s |" w ("?" ^ col)) r.columns widths;
  Format.fprintf fmt "@,";
  hline ();
  List.iter
    (fun row ->
      Format.fprintf fmt "|";
      List.iter2 (fun col w -> Format.fprintf fmt " %-*s |" w (cell row col)) r.columns widths;
      Format.fprintf fmt "@,")
    r.rows;
  hline ();
  Format.fprintf fmt "%d row(s), %d msgs, %.0f ms simulated, %s@]" (List.length r.rows)
    r.messages r.latency
    (if r.complete then "complete"
     else Printf.sprintf "PARTIAL (%.0f%% coverage)" (100.0 *. r.completeness))

let const_attrs (q : Ast.query) =
  let of_patterns ps =
    List.filter_map
      (fun (p : Ast.pattern) ->
        match p.Ast.attr with Ast.TConst (Value.S a) -> Some a | _ -> None)
      ps
  in
  of_patterns q.Ast.patterns
  @ List.concat_map (fun (ps, _) -> of_patterns ps) q.Ast.union_branches
  |> List.sort_uniq compare

(* A UNION branch runs as a stand-alone sub-query: its own patterns and
   filters, no post-processing (that happens once, over the combined
   rows). *)
let branch_query (q : Ast.query) (ps, fs) =
  ignore q;
  Ast.mk_query ~filters:fs ps

let fetch_expansions ts ~origin q =
  List.filter_map
    (fun a ->
      match Tstore.equivalent_attrs_sync ts ~origin a with
      | [] | [ _ ] -> None
      | eqs -> Some (a, eqs))
    (const_attrs q)

let cached_probe cache = Option.map (fun c a -> Qcache.cached_access c a) cache

(* The cost model is calibrated against the store's actual fast-path
   configuration (gram pruning, budgeted top-N traversals). *)
let env_of ts ~replication =
  let rank = Tstore.rank ts in
  Cost.env_of_dht ~gram_pruning:rank.Tstore.prune_grams ~topn_budget:rank.Tstore.topn_budget
    (Tstore.dht ts) ~replication

let plan_query ts stats ~replication ?cache ?(expand_mappings = false) ~origin q =
  let env = env_of ts ~replication in
  let expansions = if expand_mappings then fetch_expansions ts ~origin q else [] in
  let qgrams = Tstore.qgrams_enabled ts in
  let cached = cached_probe cache in
  let main =
    Optimizer.plan env stats ~qgrams ?cached ~expansions { q with Ast.union_branches = [] }
  in
  let branches =
    List.map (fun b -> Optimizer.plan env stats ~qgrams ?cached ~expansions (branch_query q b))
      q.Ast.union_branches
  in
  { main with Physical.branches }

let run ts stats ~replication ?metrics ?cache ?(strategy = Centralized)
    ?(expand_mappings = false) ~origin q =
  let env = env_of ts ~replication in
  let expansions = if expand_mappings then fetch_expansions ts ~origin q else [] in
  let qgrams = Tstore.qgrams_enabled ts in
  let strategy =
    match strategy with
    | Mutant when (Tstore.dht ts).Dht.send_task = None ->
      (* Not silent: the caller asked for plan shipping and is getting a
         different execution model — record it and say so. *)
      (match metrics with
      | Some m -> Unistore_obs.Metrics.incr m "engine.mutant_downgrade"
      | None -> ());
      Format.eprintf
        "unistore: warning: substrate cannot ship plans; mutant execution downgraded to          centralized@.";
      Centralized
    | s -> s
  in
  let cached = cached_probe cache in
  (* Each UNION branch executes independently; the combined rows then go
     through the query's post-processing exactly once. *)
  let run_branch (bq : Ast.query) =
    let plan = Optimizer.plan env stats ~qgrams ?cached ~expansions bq in
    let result =
      match strategy with
      | Centralized -> Exec.run_centralized ?cache ts ~origin plan
      | Mutant -> Exec.run_mutant ?cache ts stats env ~origin bq ~expansions
    in
    (plan, result)
  in
  match q.Ast.union_branches with
  | [] ->
    (* Skyline queries of the canonical shape run as a leaf-reduced scan
       when the substrate ships closures: dominated tuples are dropped at
       the peers that hold them instead of travelling to the origin. *)
    let pushdown =
      match (strategy, Exec.skyline_pushdown_shape q) with
      | Centralized, Some (goals, subj, av) when Tstore.skyline_scan_supported ts ->
        Some (Exec.run_skyline_pushdown ts ~origin q ~goals ~subj ~av)
      | _ -> None
    in
    let plan, result = match pushdown with Some pr -> pr | None -> run_branch q in
    {
      columns = columns_of q;
      rows = result.Exec.rows;
      messages = result.Exec.messages;
      latency = result.Exec.latency;
      complete = result.Exec.complete;
      completeness = result.Exec.completeness;
      plan;
      strategy;
      traces = result.Exec.traces;
      bytes_shipped = result.Exec.bytes_shipped;
    }
  | union_branches ->
    let sub_queries =
      branch_query q (q.Ast.patterns, q.Ast.filters)
      :: List.map (branch_query q) union_branches
    in
    let results = List.map run_branch sub_queries in
    let rows = List.concat_map (fun (_, r) -> r.Exec.rows) results in
    let post_plan =
      {
        Physical.steps = [];
        post_filters = [];
        order = q.Ast.order;
        projection = q.Ast.projection;
        distinct = q.Ast.distinct;
        limit = q.Ast.limit;
        expansions;
        total_est = { Cost.messages = 0.0; latency = 0.0; cardinality = 0.0 };
        branches = [];
      }
    in
    let rows = Exec.postprocess post_plan rows in
    let plans = List.map fst results in
    let plan =
      match plans with
      | main :: rest -> { main with Physical.branches = rest }
      | [] -> assert false
    in
    {
      columns = columns_of q;
      rows;
      messages = List.fold_left (fun acc (_, r) -> acc + r.Exec.messages) 0 results;
      latency = List.fold_left (fun acc (_, r) -> acc +. r.Exec.latency) 0.0 results;
      complete = List.for_all (fun (_, r) -> r.Exec.complete) results;
      completeness =
        List.fold_left (fun acc (_, r) -> Float.min acc r.Exec.completeness) 1.0 results;
      plan;
      strategy;
      traces = List.concat_map (fun (_, r) -> r.Exec.traces) results;
      bytes_shipped = List.fold_left (fun acc (_, r) -> acc + r.Exec.bytes_shipped) 0 results;
    }

(* The analyzer's catalog, derived from the collected statistics: an
   attribute's observed types come from [string_valued] and the dominant
   type of its value bounds. *)
let catalog_of_stats (stats : Qstats.t) =
  List.fold_left
    (fun cat (a, (s : Qstats.attr_stats)) ->
      let of_value v = Unistore_analysis.Catalog.vtype_of_value v in
      let types =
        (if s.Qstats.string_valued then [ Unistore_analysis.Catalog.Str ] else [])
        @ (match s.Qstats.lo with Some v -> [ of_value v ] | None -> [])
        @ (match s.Qstats.hi with Some v -> [ of_value v ] | None -> [])
        |> List.sort_uniq compare
      in
      Unistore_analysis.Catalog.add_info cat a
        { Unistore_analysis.Catalog.types; count = s.Qstats.count })
    Unistore_analysis.Catalog.empty stats.Qstats.attrs

let analyze stats q = Unistore_analysis.Semantic.analyze ~catalog:(catalog_of_stats stats) q

(* String-entry queries pass through the static analyzer; plans with
   error-severity diagnostics are refused before any message is sent.
   [run] (the AST entry) stays ungated for callers that build plans
   programmatically. *)
let run_string ts stats ~replication ?metrics ?cache ?strategy ?expand_mappings ~origin src =
  match Parser.parse src with
  | Error e -> Error e
  | Ok q ->
    let diags = analyze stats q in
    if Unistore_analysis.Diagnostic.has_errors diags then
      Error (Unistore_analysis.Diagnostic.render_all ~src diags)
    else Ok (run ts stats ~replication ?metrics ?cache ?strategy ?expand_mappings ~origin q)

(* The EXPLAIN ANALYZE view: reshape the execution traces into the
   substrate-independent profile record of the observability layer. *)
let profile ?query (r : report) =
  let ops =
    List.map
      (fun (t : Exec.step_trace) ->
        {
          Unistore_obs.Profile.label =
            Format.asprintf "%a" Ast.pp_pattern t.Exec.step.Physical.pattern;
          access = Format.asprintf "%a" Cost.pp_access t.Exec.step.Physical.access;
          carrier = t.Exec.carrier;
          rows_in = t.Exec.rows_in;
          rows_out = t.Exec.actual_card;
          messages = t.Exec.messages;
          latency_ms = t.Exec.latency;
        })
      r.traces
  in
  {
    Unistore_obs.Profile.query;
    strategy = Format.asprintf "%a" pp_strategy r.strategy;
    rows = List.length r.rows;
    messages = r.messages;
    latency_ms = r.latency;
    bytes_shipped = r.bytes_shipped;
    complete = r.complete;
    completeness = r.completeness;
    ops;
  }
