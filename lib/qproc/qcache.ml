module Triple = Unistore_triple.Triple
module Result_cache = Unistore_cache.Result_cache

type t = {
  access : Triple.t list Result_cache.t;
  bind : Triple.t list Result_cache.t;
  now : unit -> float;
  version_of : string option -> int;
}

let create ?metrics ?(capacity = 256) ?(ttl_ms = 30_000.) ~now ~version_of () =
  {
    access = Result_cache.create ~name:"cache.result" ?metrics ~capacity ~ttl_ms ();
    bind = Result_cache.create ~name:"cache.bind" ?metrics ~capacity ~ttl_ms ();
    now;
    version_of;
  }

let set_metrics t m =
  Result_cache.set_metrics t.access m;
  Result_cache.set_metrics t.bind m

let attr_of_access = function
  | Cost.AAttrValue (a, _)
  | Cost.AAttrRange (a, _, _)
  | Cost.AAttrAll a
  | Cost.AAttrPrefix (a, _)
  | Cost.ATopN (a, _)
  | Cost.ASim (Some a, _, _)
  | Cost.ASubstring (Some a, _) ->
    Some a
  | Cost.AOid _ | Cost.AValue _ | Cost.ASim (None, _, _) | Cost.ASubstring (None, _)
  | Cost.ABroadcast ->
    None

(* A broadcast's answer depends on the residual pattern (an opaque
   predicate), so [access_key] cannot identify it; everything else is a
   pure function of the access. *)
let cacheable = function Cost.ABroadcast -> false | _ -> true

let find_access t access =
  if not (cacheable access) then None
  else
    Result_cache.find t.access ~key:(Cost.access_key access)
      ~version:(t.version_of (attr_of_access access))
      ~now:(t.now ())

let store_access t access triples =
  if cacheable access then
    Result_cache.put t.access ~key:(Cost.access_key access)
      ~version:(t.version_of (attr_of_access access))
      ~now:(t.now ()) triples

let cached_access t access =
  cacheable access
  && Result_cache.mem t.access ~key:(Cost.access_key access)
       ~version:(t.version_of (attr_of_access access))
       ~now:(t.now ())

let find_bind t ~attr ~key =
  Result_cache.find t.bind ~key ~version:(t.version_of attr) ~now:(t.now ())

let store_bind t ~attr ~key triples =
  Result_cache.put t.bind ~key ~version:(t.version_of attr) ~now:(t.now ()) triples

let clear t =
  Result_cache.clear t.access;
  Result_cache.clear t.bind
