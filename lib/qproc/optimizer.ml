module Ast = Unistore_vql.Ast
module Algebra = Unistore_vql.Algebra
module Value = Unistore_triple.Value
module Keys = Unistore_triple.Keys

let constraints_of var cmap = Option.value ~default:[] (List.assoc_opt var cmap)

(* Merge range constraints into closed bounds (inclusivity handled by the
   residual filter re-check). *)
let range_bounds cs =
  let lo =
    List.filter_map (function Algebra.Clower (v, _) | Algebra.Ceq v -> Some v | _ -> None) cs
    |> function
    | [] -> None
    | l -> Some (List.fold_left (fun a b -> if Value.compare a b >= 0 then a else b) (List.hd l) l)
  in
  let hi =
    List.filter_map (function Algebra.Cupper (v, _) | Algebra.Ceq v -> Some v | _ -> None) cs
    |> function
    | [] -> None
    | l -> Some (List.fold_left (fun a b -> if Value.compare a b <= 0 then a else b) (List.hd l) l)
  in
  (lo, hi)

let qgram_ok ~qgrams pattern d = qgrams && String.length pattern + Keys.q - 1 - (d * Keys.q) >= 1

let substring_ok ~qgrams pattern = qgrams && String.length pattern >= Keys.q

(* A cached access costs no messages at all: the origin answers it from
   its result cache. Cardinality is kept — join ordering still depends
   on it — and [ABroadcast] is never cached (see {!Qcache.cacheable}).
   The probe must be side-effect free ({!Qcache.cached_access}). *)
let bias ~cached a (e : Cost.estimate) =
  match cached with
  | Some hit when hit a -> { e with Cost.messages = 0.0; latency = 0.0 }
  | _ -> e

let access_candidates env stats ~qgrams ?cached cmap (p : Ast.pattern) =
  let candidates = ref [] in
  let add a = candidates := a :: !candidates in
  (match p.Ast.subj with Ast.TConst (Value.S oid) -> add (Cost.AOid oid) | _ -> ());
  (match (p.Ast.attr, p.Ast.obj) with
  | Ast.TConst (Value.S a), Ast.TConst v -> add (Cost.AAttrValue (a, v))
  | Ast.TConst (Value.S a), Ast.TVar ov ->
    let cs = constraints_of ov cmap in
    let eq = List.find_map (function Algebra.Ceq v -> Some v | _ -> None) cs in
    (match eq with
    | Some v -> add (Cost.AAttrValue (a, v))
    | None ->
      let lo, hi = range_bounds cs in
      if lo <> None || hi <> None then add (Cost.AAttrRange (a, lo, hi));
      List.iter
        (function
          | Algebra.Cedist (pat, d) ->
            if qgram_ok ~qgrams pat d then add (Cost.ASim (Some a, pat, d))
          | Algebra.Cprefix pre -> add (Cost.AAttrPrefix (a, pre))
          | Algebra.Ccontains pat ->
            if substring_ok ~qgrams pat then add (Cost.ASubstring (Some a, pat))
          | _ -> ())
        cs;
      add (Cost.AAttrAll a))
  | Ast.TVar _, Ast.TConst v -> add (Cost.AValue v)
  | Ast.TVar _, Ast.TVar ov ->
    List.iter
      (function
        | Algebra.Cedist (pat, d) -> if qgram_ok ~qgrams pat d then add (Cost.ASim (None, pat, d))
        | Algebra.Ccontains pat ->
          if substring_ok ~qgrams pat then add (Cost.ASubstring (None, pat))
        | _ -> ())
      (constraints_of ov cmap)
  | Ast.TConst _, _ -> ());
  add Cost.ABroadcast;
  !candidates
  |> List.map (fun a -> (a, bias ~cached a (Cost.estimate_access env stats a)))
  |> List.sort (fun (_, e1) (_, e2) -> Float.compare (Cost.objective e1) (Cost.objective e2))

let shares_var bound p = List.exists (fun v -> List.mem v bound) (Ast.pattern_vars p)

(* Can this pattern run as a bind-join once [bound] vars are bound?
   Either its subject is bound (per-binding OID lookups) or its attribute
   is constant and its object is bound (per-binding A#v lookups). *)
let bindjoin_possible bound (p : Ast.pattern) =
  (match p.Ast.subj with Ast.TVar v -> List.mem v bound | Ast.TConst _ -> false)
  ||
  match (p.Ast.attr, p.Ast.obj) with
  | Ast.TConst (Value.S _), Ast.TVar v -> List.mem v bound
  | _ -> false

let join_card card_left card_right = Float.max 1.0 (Float.min card_left card_right)

let choose_next env stats ~qgrams ?cached cmap ~bound ~card_left remaining =
  if remaining = [] then invalid_arg "Optimizer.choose_next: no remaining patterns";
  let connected, disconnected = List.partition (shares_var bound) remaining in
  let pool = if connected <> [] then connected else disconnected in
  (* Evaluate each candidate pattern with its best strategy. *)
  let scored =
    List.map
      (fun p ->
        let bulk =
          match access_candidates env stats ~qgrams ?cached cmap p with
          | (a, e) :: _ -> (a, e)
          | [] -> (Cost.ABroadcast, Cost.estimate_access env stats Cost.ABroadcast)
        in
        let bulk_access, bulk_est = bulk in
        let bind_cost =
          if bindjoin_possible bound p then
            Some
              (Cost.bindjoin_cost env ~card_left
                 ~cardinality:(join_card card_left bulk_est.Cost.cardinality))
          else None
        in
        let use_bind =
          match bind_cost with
          | Some b -> Cost.objective b < Cost.objective bulk_est
          | None -> false
        in
        let est = if use_bind then Option.get bind_cost else bulk_est in
        (p, bulk_access, use_bind, est))
      pool
  in
  let best =
    List.fold_left
      (fun acc cand ->
        let _, _, _, e = cand in
        match acc with
        | Some (_, _, _, e0) when Cost.objective e0 <= Cost.objective e -> acc
        | _ -> Some cand)
      None scored
  in
  match best with
  | None -> invalid_arg "Optimizer.choose_next: empty pool"
  | Some (p, access, bindjoin, est) ->
    let rest = List.filter (fun q -> q != p) remaining in
    ( { Physical.pattern = p; access; bindjoin; residual = []; est },
      rest )

(* Attach each filter to the earliest step that binds all its vars. *)
let attach_filters steps filters =
  let rec go done_steps bound remaining_filters = function
    | [] -> (List.rev done_steps, remaining_filters)
    | (s : Physical.step) :: rest ->
      let bound = List.sort_uniq compare (bound @ Ast.pattern_vars s.Physical.pattern) in
      let here, later =
        List.partition
          (fun f -> List.for_all (fun v -> List.mem v bound) (Ast.expr_vars f))
          remaining_filters
      in
      go ({ s with Physical.residual = here } :: done_steps) bound later rest
  in
  go [] [] filters steps

let first_step env stats ~qgrams ?cached cmap patterns =
  if patterns = [] then invalid_arg "Optimizer.first_step: no patterns";
  let scores =
    List.map
      (fun p ->
        match access_candidates env stats ~qgrams ?cached cmap p with
        | (a, e) :: _ -> (p, a, e)
        | [] -> (p, Cost.ABroadcast, Cost.estimate_access env stats Cost.ABroadcast))
      patterns
  in
  let best =
    List.fold_left
      (fun acc cand ->
        let _, _, e = cand in
        match acc with
        | Some (_, _, e0)
          when (e0.Cost.cardinality, Cost.objective e0) <= (e.Cost.cardinality, Cost.objective e)
          ->
          acc
        | _ -> Some cand)
      None scores
  in
  match best with
  | None -> invalid_arg "Optimizer.first_step: empty"
  | Some (p0, a0, e0) ->
    ( { Physical.pattern = p0; access = a0; bindjoin = false; residual = []; est = e0 },
      List.filter (fun p -> p != p0) patterns )

(* A single ordered-and-limited pattern over one attribute can run as an
   early-terminating traversal of that attribute's region (key order =
   value order). Sound only when nothing else can prune rows after the
   budget was spent: no filters, no joins, ascending single-var order. *)
let topn_opportunity (q : Ast.query) =
  match (q.Ast.patterns, q.Ast.filters, q.Ast.union_branches, q.Ast.order, q.Ast.limit) with
  | ( [ { Ast.subj = Ast.TVar _; attr = Ast.TConst (Value.S a); obj = Ast.TVar v; _ } ],
      [],
      [],
      Some (Ast.OrderBy [ (ov, Ast.Asc) ]),
      Some n )
    when String.equal v ov ->
    Some (a, n)
  | _ -> None

let plan env stats ~qgrams ?cached ?(expansions = []) (q : Ast.query) =
  let cmap = Algebra.var_constraints q.Ast.filters in
  let steps =
    let fs, rest0 = first_step env stats ~qgrams ?cached cmap q.Ast.patterns in
    let rec extend acc bound card_left remaining =
      match remaining with
      | [] -> List.rev acc
      | _ ->
        let step, rest = choose_next env stats ~qgrams ?cached cmap ~bound ~card_left remaining in
        let bound = List.sort_uniq compare (bound @ Ast.pattern_vars step.Physical.pattern) in
        extend (step :: acc) bound step.Physical.est.Cost.cardinality rest
    in
    extend [ fs ] (Ast.pattern_vars fs.Physical.pattern) fs.Physical.est.Cost.cardinality rest0
  in
  let steps =
    match (topn_opportunity q, steps) with
    | Some (a, n), [ step ] ->
      let est = Cost.estimate_access env stats (Cost.ATopN (a, n)) in
      if Cost.objective est < Cost.objective step.Physical.est then
        [ { step with Physical.access = Cost.ATopN (a, n); est } ]
      else steps
    | _ -> steps
  in
  let steps, post_filters = attach_filters steps q.Ast.filters in
  let total_est =
    List.fold_left
      (fun acc (s : Physical.step) ->
        {
          Cost.messages = acc.Cost.messages +. s.Physical.est.Cost.messages;
          latency = acc.Cost.latency +. s.Physical.est.Cost.latency;
          cardinality = s.Physical.est.Cost.cardinality;
        })
      { Cost.messages = 0.0; latency = 0.0; cardinality = 0.0 }
      steps
  in
  {
    Physical.steps;
    post_filters;
    order = q.Ast.order;
    projection = q.Ast.projection;
    distinct = q.Ast.distinct;
    limit = q.Ast.limit;
    expansions;
    total_est;
    branches = [];
  }
