module Value = Unistore_triple.Value
module Ast = Unistore_vql.Ast
module Strdist = Unistore_util.Strdist
module Keys = Unistore_triple.Keys

type access =
  | AOid of string
  | AAttrValue of string * Value.t
  | AAttrRange of string * Value.t option * Value.t option
  | AAttrAll of string
  | AAttrPrefix of string * string
  | AValue of Value.t
  | ASim of string option * string * int
  | ASubstring of string option * string
  | ATopN of string * int
  | ABroadcast

let pp_access fmt = function
  | AOid oid -> Format.fprintf fmt "oid-lookup(%s)" oid
  | AAttrValue (a, v) -> Format.fprintf fmt "av-lookup(%s=%a)" a Value.pp v
  | AAttrRange (a, lo, hi) ->
    let p = function Some v -> Format.asprintf "%a" Value.pp v | None -> "·" in
    Format.fprintf fmt "av-range(%s in [%s,%s])" a (p lo) (p hi)
  | AAttrAll a -> Format.fprintf fmt "av-scan(%s)" a
  | AAttrPrefix (a, p) -> Format.fprintf fmt "av-prefix(%s,'%s')" a p
  | AValue v -> Format.fprintf fmt "v-lookup(%a)" Value.pp v
  | ASim (a, p, d) ->
    Format.fprintf fmt "qgram-sim(%s,'%s',%d)" (Option.value ~default:"*" a) p d
  | ASubstring (a, p) ->
    Format.fprintf fmt "qgram-substr(%s,'%s')" (Option.value ~default:"*" a) p
  | ATopN (a, n) -> Format.fprintf fmt "topn-traversal(%s,%d)" a n
  | ABroadcast -> Format.fprintf fmt "flood"

(* Built on [Value.encode] rather than [pp_access]: the pretty-printer
   can render distinct values identically (e.g. the string "1" and the
   integer 1), and a cache key must never collide. *)
let access_key access =
  let b = Buffer.create 32 in
  let s = Buffer.add_string b in
  let opt = function Some a -> a | None -> "" in
  (match access with
  | AOid oid -> s "oid\000"; s oid
  | AAttrValue (a, v) -> s "av\000"; s a; s "\000"; s (Value.encode v)
  | AAttrRange (a, lo, hi) ->
    let e = function Some v -> Value.encode v | None -> "" in
    s "ar\000"; s a; s "\000"; s (e lo); s "\000"; s (e hi)
  | AAttrAll a -> s "aa\000"; s a
  | AAttrPrefix (a, p) -> s "ap\000"; s a; s "\000"; s p
  | AValue v -> s "v\000"; s (Value.encode v)
  | ASim (a, p, d) -> s "sim\000"; s (opt a); s "\000"; s p; s "\000"; s (string_of_int d)
  | ASubstring (a, p) -> s "sub\000"; s (opt a); s "\000"; s p
  | ATopN (a, n) -> s "topn\000"; s a; s "\000"; s (string_of_int n)
  | ABroadcast -> s "flood");
  Buffer.contents b

type env = {
  peers : int;
  depth : int;
  replication : int;
  expected_latency : float;
  batched_probes : bool;
  gram_pruning : bool;
  topn_budget : bool;
}

let env_of_dht ?(gram_pruning = true) ?(topn_budget = true) (dht : Unistore_triple.Dht.t)
    ~replication =
  {
    peers = dht.Unistore_triple.Dht.peers;
    depth = max 1 (dht.Unistore_triple.Dht.depth ());
    replication = max 1 replication;
    expected_latency = dht.Unistore_triple.Dht.expected_latency;
    batched_probes = dht.Unistore_triple.Dht.multi_lookup <> None;
    gram_pruning;
    topn_budget = topn_budget && dht.Unistore_triple.Dht.range_topn <> None;
  }

type estimate = { messages : float; latency : float; cardinality : float }

let pp_estimate fmt e =
  Format.fprintf fmt "msgs=%.1f latency=%.0fms card=%.1f" e.messages e.latency e.cardinality

let leaves env = Float.max 1.0 (float_of_int env.peers /. (float_of_int env.replication +. 0.5))

(* A point lookup: expected hops is about half the trie depth, plus the
   direct reply to the origin. *)
let lookup_cost env ~cardinality =
  let hops = (float_of_int env.depth /. 2.0) +. 1.0 in
  { messages = hops +. 1.0; latency = (hops +. 1.0) *. env.expected_latency; cardinality }

(* A shower range scan: O(depth) splitting messages reach each of the
   [touched] leaves, each answering directly; latency is parallel:
   depth+1 sequential message delays. *)
let shower_cost env ~fraction ~cardinality =
  let touched = Float.max 1.0 (leaves env *. Float.min 1.0 fraction) in
  {
    messages = touched +. float_of_int env.depth +. touched;
    latency = (float_of_int env.depth +. 2.0) *. env.expected_latency;
    cardinality;
  }

(* Flooding visits one replica per leaf (a message in, a reply out). *)
let flood_cost env ~cardinality =
  {
    messages = 2.0 *. leaves env;
    latency = (float_of_int env.depth +. 2.0) *. env.expected_latency;
    cardinality;
  }

(* Fraction of the key space (hence leaves) an attribute region covers:
   its share of all triples. *)
let attr_fraction stats a =
  let total = Float.max 1.0 (float_of_int stats.Qstats.total_triples) in
  Qstats.est_attr stats a /. total

(* Cost of fetching [grams] gram-key postings: parallel per-gram routed
   lookups, or — when the substrate groups probes — one multi-lookup
   splitting down the trie to ~min(grams, leaves) touched regions. *)
let gram_fetch_cost env ~grams ~cardinality =
  let grams_f = Float.max 1.0 (float_of_int grams) in
  if env.batched_probes then begin
    let regions = Float.min grams_f (leaves env) in
    {
      messages = float_of_int env.depth +. (2.0 *. regions);
      latency = (float_of_int env.depth +. 2.0) *. env.expected_latency;
      cardinality;
    }
  end
  else begin
    let per = lookup_cost env ~cardinality:0.0 in
    { messages = grams_f *. per.messages; latency = per.latency; cardinality }
  end

let estimate_access env stats access =
  match access with
  | AOid _ ->
    (* A logical tuple has total/oids triples on average. *)
    let card =
      float_of_int stats.Qstats.total_triples
      /. Float.max 1.0 (float_of_int stats.Qstats.distinct_oids)
    in
    lookup_cost env ~cardinality:(Float.max 1.0 card)
  | AAttrValue (a, _) -> lookup_cost env ~cardinality:(Float.max 0.1 (Qstats.est_eq stats a))
  | AAttrRange (a, lo, hi) ->
    let card = Qstats.est_range stats a lo hi in
    let afrac = attr_fraction stats a in
    let range_frac = card /. Float.max 1.0 (Qstats.est_attr stats a) in
    shower_cost env ~fraction:(afrac *. range_frac) ~cardinality:card
  | AAttrAll a ->
    shower_cost env ~fraction:(attr_fraction stats a) ~cardinality:(Qstats.est_attr stats a)
  | AAttrPrefix (a, _) ->
    (* Assume a prefix narrows to ~10% of the attribute's values. *)
    let card = Float.max 1.0 (Qstats.est_attr stats a *. 0.1) in
    shower_cost env ~fraction:(attr_fraction stats a *. 0.1) ~cardinality:card
  | AValue _ -> lookup_cost env ~cardinality:(Float.max 0.1 (Qstats.est_value stats))
  | ASim (a, pattern, d) ->
    (* With gram pruning only a count-filter-covering prefix of the
       pattern's grams is fetched (~d*q+1 gram occurrences instead of
       all |p|+q-1); with batching the fetch is one region-splitting
       multi-lookup. *)
    let grams =
      if env.gram_pruning then List.length (Strdist.prefix_grams ~q:Keys.q ~d pattern)
      else List.length (Strdist.distinct_qgrams ~q:Keys.q pattern)
    in
    gram_fetch_cost env ~grams ~cardinality:(Qstats.est_sim stats a)
  | ASubstring (a, pattern) ->
    (* Any subset of the pattern's grams is recall-complete; pruned
       fetches cap at 3, the naive arm fetches them all. *)
    let total = List.length (Strdist.substring_qgrams ~q:Keys.q pattern) in
    let grams = if env.gram_pruning then min 3 total else total in
    gram_fetch_cost env ~grams ~cardinality:(Qstats.est_sim stats a)
  | ATopN (a, n) when env.topn_budget ->
    (* Route to the region start, then visit just enough leaves in key
       order (serial). *)
    let region_leaves = Float.max 1.0 (leaves env *. attr_fraction stats a) in
    let per_leaf = Float.max 1.0 (Qstats.est_attr stats a /. region_leaves) in
    let touched = Float.min region_leaves (Float.of_int n /. per_leaf |> Float.ceil |> Float.max 1.0) in
    let route = float_of_int env.depth /. 2.0 in
    {
      messages = route +. (2.0 *. touched);
      latency = (route +. touched +. 1.0) *. env.expected_latency;
      cardinality = Float.min (float_of_int n) (Qstats.est_attr stats a);
    }
  | ATopN (a, n) ->
    (* No budgeted traversal: fetch the whole region and truncate at the
       origin. *)
    let e = shower_cost env ~fraction:(attr_fraction stats a) ~cardinality:(Qstats.est_attr stats a) in
    { e with cardinality = Float.min (float_of_int n) e.cardinality }
  | ABroadcast ->
    (* Flooding returns whatever the residual pattern matches; assume an
       attribute's worth of data as a neutral middle ground. *)
    flood_cost env
      ~cardinality:(Float.max 1.0 (float_of_int stats.Qstats.total_triples *. 0.05))

(* A bind-join probe round over [card_left] deduplicated keys.
   Unbatched: one routed lookup (and reply) per key, in parallel.
   Batched ([env.batched_probes]): one multi-lookup splits down the trie
   — O(depth) splitting messages reach the ~min(card_left, leaves)
   touched regions, each answering the origin once — so the messages
   term stops scaling linearly with the left cardinality and the
   optimizer's bind-vs-bulk break-even moves accordingly. *)
let bindjoin_cost env ~card_left ~cardinality =
  let card_left = Float.max 1.0 card_left in
  if env.batched_probes then begin
    let regions = Float.min card_left (leaves env) in
    {
      messages = float_of_int env.depth +. (2.0 *. regions);
      latency = (float_of_int env.depth +. 2.0) *. env.expected_latency;
      cardinality;
    }
  end
  else begin
    let per = lookup_cost env ~cardinality:0.0 in
    { messages = card_left *. per.messages; latency = per.latency; cardinality }
  end

let ship_estimate env ~bytes =
  (* One direct task message; size matters for bandwidth, not count. *)
  ignore bytes;
  { messages = 1.0; latency = env.expected_latency; cardinality = 0.0 }

let objective e = e.messages +. (e.latency /. 50.0)
