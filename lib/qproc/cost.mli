(** Access paths and the cost model.

    For each logical triple-pattern scan there are several physical
    implementations (the paper's "several physical operators per logical
    operator"); this module enumerates them and predicts their cost from
    overlay characteristics (peer count, trie depth, expected latency)
    and data statistics ({!Qstats}).

    Worst-case guarantees: every access except [ABroadcast] costs
    O(depth) = O(log n) routing hops; [ARange]/[AAttrAll] add one message
    per peer intersecting the region; [ABroadcast] costs Θ(n). *)

module Value = Unistore_triple.Value
module Ast = Unistore_vql.Ast

type access =
  | AOid of string  (** O-index lookup by constant OID *)
  | AAttrValue of string * Value.t  (** A#v exact lookup *)
  | AAttrRange of string * Value.t option * Value.t option
      (** A#v range scan (open bounds use type min/max) *)
  | AAttrAll of string  (** whole-attribute region scan *)
  | AAttrPrefix of string * string  (** string-prefix scan on one attribute *)
  | AValue of Value.t  (** v-index lookup (any attribute) *)
  | ASim of string option * string * int  (** q-gram similarity selection *)
  | ASubstring of string option * string  (** q-gram substring search *)
  | ATopN of string * int
      (** the [n] smallest values of an attribute via an early-terminating
          sequential traversal of its A#v region *)
  | ABroadcast  (** flooding fallback *)

val pp_access : Format.formatter -> access -> unit

(** [access_key a] is a collision-free string identifying [a] — the
    result cache's key for the answer of this access (built on the
    unambiguous {!Unistore_triple.Value.encode}, not on {!pp_access}). *)
val access_key : access -> string

(** Overlay parameters the model is calibrated on. *)
type env = {
  peers : int;
  depth : int;  (** trie depth / log2 ring *)
  replication : int;
  expected_latency : float;  (** mean one-way ms *)
  batched_probes : bool;
      (** the substrate groups bind-join lookups into multi-key probes
          ({!Unistore_triple.Dht.t.multi_lookup} present), so probe-round
          message cost scales with touched regions, not keys *)
  gram_pruning : bool;
      (** similarity/substring selections fetch only a pruned gram subset
          ({!Unistore_triple.Tstore.rank_config.prune_grams}) instead of
          every pattern gram *)
  topn_budget : bool;
      (** top-N runs as a budgeted sequential traversal; [false] means it
          fetches the whole region and truncates at the origin (Chord, or
          the knob off) *)
}

(** [env_of_dht ?gram_pruning ?topn_budget dht ~replication] — the
    optional flags (default [true], matching
    {!Unistore_triple.Tstore.default_rank}) describe which ranking fast
    paths the store actually uses; [topn_budget] is additionally ANDed
    with the substrate's {!Unistore_triple.Dht.t.range_topn} capability. *)
val env_of_dht :
  ?gram_pruning:bool -> ?topn_budget:bool -> Unistore_triple.Dht.t -> replication:int -> env

type estimate = {
  messages : float;
  latency : float;  (** ms *)
  cardinality : float;  (** triples returned *)
}

val pp_estimate : Format.formatter -> estimate -> unit

(** [estimate_access env stats access] predicts one access path's cost. *)
val estimate_access : env -> Qstats.t -> access -> estimate

(** [bindjoin_cost env ~card_left ~cardinality] predicts one bind-join
    probe round over [card_left] deduplicated bound keys: per-key routed
    lookups, or — with [env.batched_probes] — one region-splitting
    multi-lookup whose message count scales with touched regions. *)
val bindjoin_cost : env -> card_left:float -> cardinality:float -> estimate

(** Cost of shipping [bytes] of plan+bindings to another peer. *)
val ship_estimate : env -> bytes:int -> estimate

(** Scalar objective used to rank plans: messages plus a latency term
    weighted to prefer parallel strategies under wide-area latencies. *)
val objective : estimate -> float
