(** Ranking operators: ORDER BY, top-N, skyline.

    These are the paper's "advanced" operators ([SKYLINE OF], top-N);
    they run at the query origin over the joined bindings. The skyline
    uses block-nested-loop with dominance pruning. *)

module Ast = Unistore_vql.Ast

(** The ORDER BY comparator: compares two rows by the given
    variables/directions (unbound last, numeric types unified). *)
val order_cmp : (string * Ast.dir) list -> Binding.t -> Binding.t -> int

(** Stable sort by the given variables/directions. Unbound values sort
    last; numeric types unify. *)
val order_by : (string * Ast.dir) list -> Binding.t list -> Binding.t list

(** [top_n n items rows]: ORDER BY + LIMIT fused through a bounded heap
    ({!Unistore_util.Topk}) — O(R log n), same rows as sorting then
    truncating. *)
val top_n : int -> (string * Ast.dir) list -> Binding.t list -> Binding.t list

(** [dominates goals a b]: [a] is at least as good as [b] on every goal
    dimension and strictly better on at least one. Rows with missing or
    non-comparable dimensions never dominate nor get dominated. *)
val dominates : (string * Ast.goal) list -> Binding.t -> Binding.t -> bool

(** The Pareto-optimal subset under the goal list, in input order.
    Implementation: rows are presorted by a dominance-compatible monotone
    score (sum of oriented goal dimensions), after which the
    block-nested-loop window only grows and each row needs one
    dominated-by-window check. Agrees with {!skyline_bnl} exactly. *)
val skyline : (string * Ast.goal) list -> Binding.t list -> Binding.t list

(** Reference block-nested-loop skyline (two-way dominance checks, no
    presort) — the equivalence oracle {!skyline} is tested against. *)
val skyline_bnl : (string * Ast.goal) list -> Binding.t list -> Binding.t list
