module Ast = Unistore_vql.Ast
module Value = Unistore_triple.Value
module Topk = Unistore_util.Topk

let compare_opt_values a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> 1 (* unbound last *)
  | Some _, None -> -1
  | Some x, Some y -> (
    match (Value.to_float x, Value.to_float y) with
    | Some fx, Some fy -> Float.compare fx fy
    | _ -> Value.compare x y)

let order_cmp items a b =
  let rec go = function
    | [] -> 0
    | (v, dir) :: rest ->
      let c = compare_opt_values (Binding.find a v) (Binding.find b v) in
      let c = match dir with Ast.Asc -> c | Ast.Desc -> -c in
      if c <> 0 then c else go rest
  in
  go items

let order_by items rows = List.stable_sort (order_cmp items) rows

(* ORDER BY + LIMIT fused through a bounded heap: O(R log n) instead of
   the full O(R log R) sort, identical rows (the heap breaks ties by
   arrival order, i.e. stable-sort semantics). *)
let top_n n items rows =
  if n <= 0 then []
  else Topk.smallest ~cmp:(order_cmp items) n rows

let dominates goals a b =
  let strictly_better = ref false in
  let ok =
    List.for_all
      (fun (v, goal) ->
        match (Binding.find a v, Binding.find b v) with
        | Some xa, Some xb -> (
          match (Value.to_float xa, Value.to_float xb) with
          | Some fa, Some fb ->
            let better, worse =
              match goal with Ast.Min -> (fa < fb, fa > fb) | Ast.Max -> (fa > fb, fa < fb)
            in
            if better then strictly_better := true;
            not worse
          | _ -> false)
        | _ -> false)
      goals
  in
  ok && !strictly_better

(* Reference block-nested-loop skyline: keep a window of non-dominated
   rows, checking dominance both ways. Kept as the equivalence oracle for
   the presorted implementation below. *)
let skyline_bnl goals rows =
  let window = ref [] in
  List.iter
    (fun row ->
      let dominated = List.exists (fun w -> dominates goals w row) !window in
      if not dominated then
        window := row :: List.filter (fun w -> not (dominates goals row w)) !window)
    rows;
  List.rev !window

(* A monotone score compatible with dominance: the sum of goal
   dimensions, oriented so smaller is better. If [a] dominates [b] then
   every oriented dimension of [a] is <= [b]'s with one strictly
   smaller, hence [score a < score b] strictly. *)
let monotone_score goals row =
  let rec go acc = function
    | [] -> Some acc
    | (v, goal) :: rest -> (
      match Option.bind (Binding.find row v) Value.to_float with
      | Some f -> go (acc +. match goal with Ast.Min -> f | Ast.Max -> -.f) rest
      | None -> None)
  in
  go 0.0 goals

(* Presorted skyline: rows are visited in ascending monotone-score order,
   so a row can never dominate an earlier one — the window only grows and
   each row needs a single dominated-by-window check instead of the
   two-way scan-and-filter of the reference BNL. Rows with a missing or
   non-numeric goal dimension neither dominate nor get dominated
   ({!dominates}); they bypass the window entirely. Output is in input
   order, exactly matching {!skyline_bnl}. *)
let skyline goals rows =
  let scored, incomparable =
    List.partition_map
      (fun (i, row) ->
        match monotone_score goals row with
        | Some s -> Left (s, i, row)
        | None -> Right (i, row))
      (List.mapi (fun i row -> (i, row)) rows)
  in
  let sorted =
    List.sort
      (fun (sa, ia, _) (sb, ib, _) ->
        let c = Float.compare sa sb in
        if c <> 0 then c else Int.compare ia ib)
      scored
  in
  let window = ref [] in
  List.iter
    (fun (_, i, row) ->
      if not (List.exists (fun (_, w) -> dominates goals w row) !window) then
        window := (i, row) :: !window)
    sorted;
  List.rev_append !window incomparable
  |> List.sort (fun (ia, _) (ib, _) -> Int.compare ia ib)
  |> List.map snd
