module Ast = Unistore_vql.Ast
module Algebra = Unistore_vql.Algebra
module Value = Unistore_triple.Value
module Triple = Unistore_triple.Triple
module Tstore = Unistore_triple.Tstore
module Dht = Unistore_triple.Dht
module Keys = Unistore_triple.Keys
module Sim = Unistore_sim.Sim
module Det = Unistore_util.Det

type step_trace = {
  step : Physical.step;
  rows_in : int;
  actual_card : int;
  messages : int;
  latency : float;
  carrier : int;
}

let pp_step_trace fmt t =
  Format.fprintf fmt "%a via %a at peer%d: %d -> %d rows, %d msgs, %.1f ms" Ast.pp_pattern
    t.step.Physical.pattern Cost.pp_access t.step.Physical.access t.carrier t.rows_in
    t.actual_card t.messages t.latency

type run_result = {
  rows : Binding.t list;
  messages : int;
  latency : float;
  complete : bool;
  completeness : float;
  traces : step_trace list;
  bytes_shipped : int;
}

(* ------------------------------------------------------------------ *)
(* Access execution (synchronous, from a given origin)                 *)

let expansions_for plan_expansions attr =
  match List.assoc_opt attr plan_expansions with
  | Some eqs when eqs <> [] -> if List.mem attr eqs then eqs else attr :: eqs
  | _ -> [ attr ]

let access_with_attr access attr =
  match (access : Cost.access) with
  | Cost.AAttrValue (_, v) -> Cost.AAttrValue (attr, v)
  | Cost.AAttrRange (_, lo, hi) -> Cost.AAttrRange (attr, lo, hi)
  | Cost.AAttrAll _ -> Cost.AAttrAll attr
  | Cost.AAttrPrefix (_, p) -> Cost.AAttrPrefix (attr, p)
  | Cost.ASim (Some _, p, d) -> Cost.ASim (Some attr, p, d)
  | Cost.ASubstring (Some _, p) -> Cost.ASubstring (Some attr, p)
  | Cost.ATopN (_, n) -> Cost.ATopN (attr, n)
  | other -> other

let pattern_with_attr (p : Ast.pattern) attr =
  match p.Ast.attr with
  | Ast.TConst (Value.S _) -> { p with Ast.attr = Ast.TConst (Value.S attr) }
  | _ -> p

let range_defaults lo hi =
  (* Open bounds fall back to the type extremes of the present bound. *)
  match (lo, hi) with
  | Some l, Some h -> (l, h)
  | Some l, None -> (l, Option.get (Value.decode (Value.type_max l)))
  | None, Some h -> (Option.get (Value.decode (Value.type_min h)), h)
  | None, None -> invalid_arg "Exec: unbounded range access"

let uncached_access ts ~origin (access : Cost.access) (p : Ast.pattern) =
  match access with
  | Cost.AOid oid -> Tstore.by_oid_sync ts ~origin oid
  | Cost.AAttrValue (a, v) -> Tstore.by_attr_value_sync ts ~origin ~attr:a v
  | Cost.AAttrRange (a, lo, hi) ->
    let lo, hi = range_defaults lo hi in
    Tstore.by_attr_range_sync ts ~origin ~attr:a ~lo ~hi
  | Cost.AAttrAll a -> Tstore.by_attr_all_sync ts ~origin ~attr:a
  | Cost.AAttrPrefix (a, pre) -> Tstore.by_attr_string_prefix_sync ts ~origin ~attr:a ~string_prefix:pre
  | Cost.AValue v -> Tstore.by_value_sync ts ~origin v
  | Cost.ASim (a, pat, d) -> Tstore.similar_sync ts ~origin ?attr:a ~pattern:pat ~d ()
  | Cost.ASubstring (a, pat) -> Tstore.containing_sync ts ~origin ?attr:a ~pattern:pat ()
  | Cost.ATopN (a, n) -> Tstore.top_n_by_attr_sync ts ~origin ~attr:a ~n ()
  | Cost.ABroadcast ->
    Tstore.scan_sync ts ~origin ~pred:(fun tr -> Option.is_some (Binding.match_triple p tr))

(* The result returned by a cache hit: no messages, no hops, no
   simulated time — the origin answered from memory. *)
let cached_meta =
  {
    Tstore.hops = 0;
    peers_hit = 0;
    complete = true;
    completeness = 1.0;
    latency = 0.0;
    messages = 0;
  }

let exec_single_access ?cache ts ~origin access (p : Ast.pattern) =
  match Option.bind cache (fun c -> Qcache.find_access c access) with
  | Some triples -> (triples, cached_meta)
  | None ->
    let triples, meta = uncached_access ts ~origin access p in
    (match cache with
    | Some c when meta.Tstore.complete -> Qcache.store_access c access triples
    | _ -> ());
    (triples, meta)

(* Execute an access, unioned over mapping expansions of its attribute.
   Returns (bindings producible by [p] or an expanded variant, ok). *)
let exec_access ?cache ts ~origin ~expansions access (p : Ast.pattern) =
  let attrs =
    match access with
    | Cost.AAttrValue (a, _) | Cost.AAttrRange (a, _, _) | Cost.AAttrAll a | Cost.AAttrPrefix (a, _)
    | Cost.ASim (Some a, _, _) | Cost.ASubstring (Some a, _) | Cost.ATopN (a, _) ->
      expansions_for expansions a
    | _ -> [ "" ]
  in
  let runs =
    match attrs with
    | [ "" ] -> [ (access, p) ]
    | _ -> List.map (fun a -> (access_with_attr access a, pattern_with_attr p a)) attrs
  in
  let ok = ref true in
  let cov = ref 1.0 in
  let bindings =
    List.concat_map
      (fun (acc, pat) ->
        let triples, meta = exec_single_access ?cache ts ~origin acc pat in
        if not meta.Tstore.complete then ok := false;
        cov := Float.min !cov meta.Tstore.completeness;
        List.filter_map (Binding.match_triple pat) triples)
      runs
  in
  (bindings, !ok, !cov)

(* ------------------------------------------------------------------ *)
(* Bind-join: one parallel round of deduplicated direct lookups        *)

type bind_lookup = LOid of string | LAttrValue of string * Value.t

let bind_lookup_for (p : Ast.pattern) binding =
  match p.Ast.subj with
  | Ast.TVar v when Option.is_some (Binding.find binding v) -> (
    match Binding.find binding v with
    | Some (Value.S oid) -> Some (LOid oid)
    | _ -> None)
  | _ -> (
    match (p.Ast.attr, p.Ast.obj) with
    | Ast.TConst (Value.S a), Ast.TVar ov -> (
      match Binding.find binding ov with Some v -> Some (LAttrValue (a, v)) | None -> None)
    | _ -> None)

(* Keys to probe for one bound lookup, each with the attribute that
   governs its cache invalidation ([None] for OID lookups). *)
let lookup_keys_of ~expansions = function
  | LOid oid -> [ (Keys.oid_key oid, None) ]
  | LAttrValue (a, v) ->
    List.map (fun a' -> (Keys.attr_value_key a' v, Some a')) (expansions_for expansions a)

let exec_bindjoin ?cache ts ~origin ~expansions (p : Ast.pattern) left =
  let dht = Tstore.dht ts in
  (* Dedupe lookup keys across the left side (semi-join optimization). *)
  let keymap = Hashtbl.create 64 in
  List.iter
    (fun b ->
      match bind_lookup_for p b with
      | Some l ->
        List.iter (fun (key, attr) -> Hashtbl.replace keymap key attr) (lookup_keys_of ~expansions l)
      | None -> ())
    left;
  (* Answer what the per-key cache can; look up only the rest. *)
  let resolved : (string, Triple.t list) Hashtbl.t = Hashtbl.create (Hashtbl.length keymap) in
  (* The residual keys become lookup messages: visit them in key order
     so the wire traffic does not depend on hash-bucket order. *)
  let keys =
    Det.sorted_bindings ~cmp:String.compare keymap
    |> List.filter_map (fun (key, attr) ->
           match Option.bind cache (fun c -> Qcache.find_bind c ~attr ~key) with
           | Some triples ->
             Hashtbl.replace resolved key triples;
             None
           | None -> Some (key, attr))
  in
  let ok = ref true in
  let cov = ref 1.0 in
  let decode items =
    List.filter_map (fun (i : Dht.Store.item) -> Triple.deserialize i.Dht.Store.payload) items
  in
  (match (dht.Dht.multi_lookup, keys) with
  | Some ml, _ :: _ :: _ ->
    (* Batched probe round: the deduplicated keys travel as one
       multi-lookup that splits by responsible region, instead of one
       routed lookup per key. *)
    let done_ = ref false in
    ml ~origin
      ~keys:(List.map fst keys)
      ~k:(fun (found, r) ->
        if not r.Dht.complete then ok := false;
        cov := Float.min !cov r.Dht.completeness;
        List.iter
          (fun (key, items) ->
            let triples = decode items in
            Hashtbl.replace resolved key triples;
            match cache with
            | Some c when r.Dht.complete ->
              let attr = Option.join (Hashtbl.find_opt keymap key) in
              Qcache.store_bind c ~attr ~key triples
            | _ -> ())
          found;
        done_ := true);
    ignore (Sim.run_until dht.Dht.sim (fun () -> !done_));
    if not !done_ then begin
      ok := false;
      cov := 0.0
    end
  | _ ->
    (* One parallel round of per-key lookups. *)
    let outstanding = ref (List.length keys) in
    List.iter
      (fun (key, attr) ->
        dht.Dht.lookup ~origin ~key ~k:(fun r ->
            if not r.Dht.complete then ok := false;
            cov := Float.min !cov r.Dht.completeness;
            let triples = decode r.Dht.items in
            Hashtbl.replace resolved key triples;
            (match cache with
            | Some c when r.Dht.complete -> Qcache.store_bind c ~attr ~key triples
            | _ -> ());
            decr outstanding))
      keys;
    ignore (Sim.run_until dht.Dht.sim (fun () -> !outstanding <= 0));
    if !outstanding > 0 then begin
      ok := false;
      cov := 0.0
    end);
  let triples_for key = Option.value ~default:[] (Hashtbl.find_opt resolved key) in
  let joined =
    List.concat_map
      (fun b ->
        match bind_lookup_for p b with
        | None -> []
        | Some l ->
          let keys = lookup_keys_of ~expansions l in
          List.concat_map
            (fun (key, _) ->
              triples_for key
              |> List.filter_map (fun tr ->
                     (* Accept mapping-equivalent attributes by rewriting
                        the pattern to the triple's attribute — but only
                        when that attribute really is in the expansion
                        set; anything else must fail the match. *)
                     let pat =
                       match p.Ast.attr with
                       | Ast.TConst (Value.S a)
                         when List.mem tr.Triple.attr (expansions_for expansions a) ->
                         pattern_with_attr p tr.Triple.attr
                       | _ -> p
                     in
                     Binding.match_triple_into b pat tr))
            keys)
      left
  in
  (joined, !ok, !cov)

(* ------------------------------------------------------------------ *)
(* Joins and filters                                                   *)

let hash_join left right =
  match (left, right) with
  | [], _ | _, [] -> []
  | l0 :: _, r0 :: _ ->
    let shared =
      List.filter (fun v -> List.mem v (Binding.vars r0)) (Binding.vars l0)
      (* Vars of one representative suffice: all bindings of a side share
         the same variable set (they come from the same pattern chain). *)
    in
    if shared = [] then
      (* Cartesian product. *)
      List.concat_map (fun l -> List.filter_map (Binding.compatible l) right) left
    else begin
      let tbl = Hashtbl.create (List.length right) in
      List.iter
        (fun r ->
          match Binding.join_key shared r with
          | Some k -> Hashtbl.add tbl k r
          | None -> ())
        right;
      List.concat_map
        (fun l ->
          match Binding.join_key shared l with
          | Some k -> Hashtbl.find_all tbl k |> List.filter_map (Binding.compatible l)
          | None -> [])
        left
    end

let apply_filters filters rows =
  List.fold_left
    (fun rows f -> List.filter (fun b -> Algebra.eval_pred (Binding.lookup b) f) rows)
    rows filters

(* ------------------------------------------------------------------ *)
(* Post-processing (ranking, projection, distinct, limit)              *)

let postprocess (plan : Physical.t) rows =
  let rows = apply_filters plan.Physical.post_filters rows in
  let rows =
    match plan.Physical.order with
    | Some (Ast.OrderBy items) -> (
      match plan.Physical.limit with
      | Some n -> Ranking.top_n n items rows
      | None -> Ranking.order_by items rows)
    | Some (Ast.Skyline items) -> Ranking.skyline items rows
    | None -> rows
  in
  let rows =
    match plan.Physical.projection with
    | Some vs -> List.map (Binding.project vs) rows
    | None -> rows
  in
  let rows =
    if plan.Physical.distinct then begin
      let seen = Hashtbl.create 64 in
      List.filter
        (fun b ->
          let fp = Binding.fingerprint b in
          if Hashtbl.mem seen fp then false
          else begin
            Hashtbl.replace seen fp ();
            true
          end)
        rows
    end
    else rows
  in
  (* top_n already truncated ordered results; truncation is idempotent,
     so apply it uniformly. *)
  match plan.Physical.limit with
  | Some n -> List.filteri (fun i _ -> i < n) rows
  | None -> rows

(* ------------------------------------------------------------------ *)
(* Centralized execution                                               *)

let run_centralized ?cache ts ~origin (plan : Physical.t) =
  let dht = Tstore.dht ts in
  let t0 = Sim.now dht.Dht.sim in
  let m0 = dht.Dht.total_sent () in
  let complete = ref true in
  let cov = ref 1.0 in
  let traces = ref [] in
  let expansions = plan.Physical.expansions in
  let rows =
    List.fold_left
      (fun (acc : Binding.t list option) (step : Physical.step) ->
        let step_m0 = dht.Dht.total_sent () in
        let step_t0 = Sim.now dht.Dht.sim in
        let rows_in = match acc with None -> 0 | Some left -> List.length left in
        let produced =
          match acc with
          | None ->
            let bindings, ok, c = exec_access ?cache ts ~origin ~expansions step.Physical.access step.Physical.pattern in
            if not ok then complete := false;
            cov := Float.min !cov c;
            bindings
          | Some left when step.Physical.bindjoin ->
            let joined, ok, c = exec_bindjoin ?cache ts ~origin ~expansions step.Physical.pattern left in
            if not ok then complete := false;
            cov := Float.min !cov c;
            joined
          | Some left ->
            let right, ok, c = exec_access ?cache ts ~origin ~expansions step.Physical.access step.Physical.pattern in
            if not ok then complete := false;
            cov := Float.min !cov c;
            hash_join left right
        in
        let produced = apply_filters step.Physical.residual produced in
        traces :=
          {
            step;
            rows_in;
            actual_card = List.length produced;
            messages = dht.Dht.total_sent () - step_m0;
            latency = Sim.now dht.Dht.sim -. step_t0;
            carrier = origin;
          }
          :: !traces;
        Some produced)
      None plan.Physical.steps
    |> Option.value ~default:[]
  in
  let rows = postprocess plan rows in
  {
    rows;
    messages = dht.Dht.total_sent () - m0;
    latency = Sim.now dht.Dht.sim -. t0;
    complete = !complete;
    completeness = !cov;
    traces = List.rev !traces;
    bytes_shipped = 0;
  }

(* ------------------------------------------------------------------ *)
(* Mutant (adaptive) execution                                         *)

let carrier_key_of_access = function
  | Cost.AOid oid -> Some (Keys.oid_key oid)
  | Cost.AAttrValue (a, v) -> Some (Keys.attr_value_key a v)
  | Cost.AAttrRange (a, Some lo, _) -> Some (Keys.attr_value_key a lo)
  | Cost.AAttrRange (a, None, _) | Cost.AAttrAll a -> Some (Keys.attr_prefix a)
  | Cost.AAttrPrefix (a, p) -> Some (Keys.attr_string_prefix a ~string_prefix:p)
  | Cost.AValue v -> Some (Keys.value_key v)
  | Cost.ATopN (a, _) -> Some (Keys.attr_prefix a)
  | Cost.ASim _ | Cost.ASubstring _ | Cost.ABroadcast -> None

let plan_overhead_bytes = 256

let run_mutant ?cache ts stats env ~origin (q : Ast.query) ~expansions =
  let dht = Tstore.dht ts in
  let send_task =
    match dht.Dht.send_task with
    | Some f -> f
    | None -> invalid_arg "Exec.run_mutant: substrate does not support plan shipping"
  in
  let t0 = Sim.now dht.Dht.sim in
  let m0 = dht.Dht.total_sent () in
  let complete = ref true in
  let cov = ref 1.0 in
  let traces = ref [] in
  let bytes_shipped = ref 0 in
  let qgrams = Tstore.qgrams_enabled ts in
  let cmap = Algebra.var_constraints q.Ast.filters in
  (* Ship the plan (plus current bindings) to [dst]; returns the new
     carrier, or the old one if shipping failed. *)
  let ship ~from ~dst ~rows =
    if from = dst then from
    else begin
      let bytes =
        plan_overhead_bytes + List.fold_left (fun acc b -> acc + Binding.bytes b) 0 rows
      in
      let arrived = ref false in
      send_task ~src:from ~dst ~bytes (fun _ -> arrived := true);
      ignore (Sim.run_until dht.Dht.sim (fun () -> !arrived));
      if !arrived then begin
        bytes_shipped := !bytes_shipped + bytes;
        dst
      end
      else begin
        complete := false;
        from
      end
    end
  in
  (* The result cache lives at the query origin; a travelling plan can
     only consult it while it is still (or again) executing there. *)
  let cache_at carrier = if carrier = origin then cache else None in
  let exec_step ~carrier (step : Physical.step) rows_opt =
    let cache = cache_at carrier in
    let step_m0 = dht.Dht.total_sent () in
    let step_t0 = Sim.now dht.Dht.sim in
    let rows_in = match rows_opt with None -> 0 | Some left -> List.length left in
    let produced =
      match rows_opt with
      | None ->
        let bindings, ok, c = exec_access ?cache ts ~origin:carrier ~expansions step.Physical.access step.Physical.pattern in
        if not ok then complete := false;
        cov := Float.min !cov c;
        bindings
      | Some left when step.Physical.bindjoin ->
        let joined, ok, c = exec_bindjoin ?cache ts ~origin:carrier ~expansions step.Physical.pattern left in
        if not ok then complete := false;
        cov := Float.min !cov c;
        joined
      | Some left ->
        let right, ok, c = exec_access ?cache ts ~origin:carrier ~expansions step.Physical.access step.Physical.pattern in
        if not ok then complete := false;
        cov := Float.min !cov c;
        hash_join left right
    in
    let produced = apply_filters step.Physical.residual produced in
    traces :=
      {
        step;
        rows_in;
        actual_card = List.length produced;
        messages = dht.Dht.total_sent () - step_m0;
        latency = Sim.now dht.Dht.sim -. step_t0;
        carrier;
      }
      :: !traces;
    produced
  in
  (* First step: move the plan to the data, evaluate there. *)
  let fs, remaining0 = Optimizer.first_step env stats ~qgrams cmap q.Ast.patterns in
  let fs = { fs with Physical.residual = [] } in
  let applied_filters = ref [] in
  let attach rows bound =
    (* Apply every filter that just became fully bound. *)
    let ready =
      List.filter
        (fun f ->
          (not (List.memq f !applied_filters))
          && List.for_all (fun v -> List.mem v bound) (Ast.expr_vars f))
        q.Ast.filters
    in
    applied_filters := ready @ !applied_filters;
    apply_filters ready rows
  in
  let carrier = ref origin in
  (match carrier_key_of_access fs.Physical.access with
  | Some key -> (
    match dht.Dht.responsible_peer key with
    | Some p -> carrier := ship ~from:!carrier ~dst:p ~rows:[]
    | None -> ())
  | None -> ());
  let rows = ref (exec_step ~carrier:!carrier fs None) in
  let bound = ref (Ast.pattern_vars fs.Physical.pattern) in
  rows := attach !rows !bound;
  let remaining = ref remaining0 in
  while !remaining <> [] do
    (* Re-optimize the remainder with the observed cardinality. *)
    let step, rest =
      Optimizer.choose_next env stats ~qgrams cmap ~bound:!bound
        ~card_left:(float_of_int (List.length !rows))
        !remaining
    in
    let step = { step with Physical.residual = [] } in
    remaining := rest;
    (if not step.Physical.bindjoin then
       match carrier_key_of_access step.Physical.access with
       | Some key -> (
         match dht.Dht.responsible_peer key with
         | Some p -> carrier := ship ~from:!carrier ~dst:p ~rows:!rows
         | None -> ())
       | None -> ());
    rows := exec_step ~carrier:!carrier step (Some !rows);
    bound := List.sort_uniq compare (!bound @ Ast.pattern_vars step.Physical.pattern);
    rows := attach !rows !bound
  done;
  (* Bring the result home. *)
  if !carrier <> origin then begin
    let bytes = List.fold_left (fun acc b -> acc + Binding.bytes b) 0 !rows + 32 in
    let arrived = ref false in
    send_task ~src:!carrier ~dst:origin ~bytes (fun _ -> arrived := true);
    ignore (Sim.run_until dht.Dht.sim (fun () -> !arrived));
    if !arrived then bytes_shipped := !bytes_shipped + bytes else complete := false
  end;
  (* Post-processing happens at the origin; reuse the static plan shape
     for order/projection/distinct/limit. *)
  let post_plan =
    {
      Physical.steps = [];
      post_filters =
        List.filter (fun f -> not (List.memq f !applied_filters)) q.Ast.filters;
      order = q.Ast.order;
      projection = q.Ast.projection;
      distinct = q.Ast.distinct;
      limit = q.Ast.limit;
      expansions;
      total_est = { Cost.messages = 0.0; latency = 0.0; cardinality = 0.0 };
      branches = [];
    }
  in
  let rows = postprocess post_plan !rows in
  {
    rows;
    messages = dht.Dht.total_sent () - m0;
    latency = Sim.now dht.Dht.sim -. t0;
    complete = !complete;
    completeness = !cov;
    traces = List.rev !traces;
    bytes_shipped = !bytes_shipped;
  }

(* ------------------------------------------------------------------ *)
(* Skyline pushdown                                                    *)

(* A query qualifies for in-network skyline evaluation when it is exactly
   the paper's skyline shape: every pattern binds a distinct constant
   attribute of one shared subject variable to a distinct object
   variable, there are no filters or unions, and SKYLINE OF ranges over
   (a subset of) those object variables. Returns
   [(goals, subject var, (attr, var) list)]. *)
let skyline_pushdown_shape (q : Ast.query) =
  match (q.Ast.union_branches, q.Ast.filters, q.Ast.order) with
  | [], [], Some (Ast.Skyline goals) when goals <> [] ->
    let rec collect subj acc = function
      | [] -> Option.map (fun s -> (s, List.rev acc)) subj
      | ({ Ast.subj = Ast.TVar s; attr = Ast.TConst (Value.S a); obj = Ast.TVar v; _ } :
          Ast.pattern)
        :: rest ->
        if
          (match subj with Some s' -> not (String.equal s s') | None -> false)
          || List.exists (fun (a', v') -> String.equal a a' || String.equal v v') acc
          || String.equal s v
        then None
        else collect (Some s) ((a, v) :: acc) rest
      | _ :: _ -> None
    in
    (match collect None [] q.Ast.patterns with
    | Some (s, av)
      when av <> [] && List.for_all (fun (g, _) -> List.mem_assoc g (List.map (fun (a, v) -> (v, a)) av)) goals
      ->
      Some (goals, s, av)
    | _ -> None)
  | _ -> None

(* Deterministic grouping of a leaf's (or the origin's) triples into
   logical tuples: sort by OID, then attr, then encoded value. *)
let group_by_oid triples =
  let sorted =
    List.stable_sort
      (fun (a : Triple.t) b ->
        let c = String.compare a.Triple.oid b.Triple.oid in
        if c <> 0 then c
        else begin
          let c = String.compare a.Triple.attr b.Triple.attr in
          if c <> 0 then c
          else String.compare (Value.encode a.Triple.value) (Value.encode b.Triple.value)
        end)
      triples
  in
  let rec go groups current = function
    | [] -> List.rev (match current with [] -> groups | g -> List.rev g :: groups)
    | (tr : Triple.t) :: rest -> (
      match current with
      | (last : Triple.t) :: _ when String.equal last.Triple.oid tr.Triple.oid ->
        go groups (tr :: current) rest
      | [] -> go groups [ tr ] rest
      | g -> go (List.rev g :: groups) [ tr ] rest)
  in
  go [] [] sorted

(* The bindings one tuple produces under the pushdown pattern shape:
   cross product over the per-attribute values, empty unless every
   pattern attribute is present (join semantics). *)
let tuple_bindings ~subj ~av (group : Triple.t list) =
  match group with
  | [] -> []
  | tr0 :: _ ->
    let values a =
      List.filter_map
        (fun (tr : Triple.t) ->
          if String.equal tr.Triple.attr a then Some tr.Triple.value else None)
        group
    in
    let seed =
      match Binding.bind Binding.empty subj (Value.S tr0.Triple.oid) with
      | Some b -> [ b ]
      | None -> []
    in
    List.fold_left
      (fun acc (a, v) ->
        match values a with
        | [] -> []
        | vs ->
          List.concat_map
            (fun b -> List.filter_map (fun value -> Binding.bind b v value) vs)
            acc)
      seed av

let run_skyline_pushdown ts ~origin (q : Ast.query) ~goals ~subj ~av =
  let dht = Tstore.dht ts in
  let attrs = List.map fst av in
  let pred (tr : Triple.t) = List.exists (String.equal tr.Triple.attr) attrs in
  (* Leaf-local reduction. Tuples are collocated (all triples of one OID
     share a single key), so per-tuple decisions are globally sound:
     - a tuple missing some pattern attribute produces no binding
       anywhere -> drop all its triples;
    - a complete single-valued tuple dominated by a co-located complete
       single-valued tuple can never be in the global skyline (dominance
       is transitive, so it is dominated by a locally *kept* tuple that
       reaches the origin) -> drop it;
     - anything else (multi-valued tuples) passes through untouched; the
       origin re-runs the exact skyline over all survivors. *)
  let reduce triples =
    let groups = group_by_oid triples in
    let classified =
      List.map
        (fun group ->
          match tuple_bindings ~subj ~av group with
          | [] -> (group, `Drop)
          | [ b ] -> (group, `Candidate b)
          | _ :: _ :: _ -> (group, `Pass))
        groups
    in
    let candidates =
      List.filter_map (function _, `Candidate b -> Some b | _ -> None) classified
    in
    List.concat_map
      (fun (group, cls) ->
        match cls with
        | `Drop -> []
        | `Pass -> group
        | `Candidate b ->
          if List.exists (fun b' -> Ranking.dominates goals b' b) candidates then []
          else group)
      classified
  in
  let t0 = Sim.now dht.Dht.sim in
  let m0 = dht.Dht.total_sent () in
  let triples, meta = Tstore.oid_scan_reduce_sync ts ~origin ~pred ~reduce in
  let rows = List.concat_map (tuple_bindings ~subj ~av) (group_by_oid triples) in
  let plan =
    {
      Physical.steps =
        [ {
            Physical.pattern = List.hd q.Ast.patterns;
            access = Cost.ABroadcast;
            bindjoin = false;
            residual = [];
            est = { Cost.messages = 0.0; latency = 0.0; cardinality = 0.0 };
          } ];
      post_filters = [];
      order = q.Ast.order;
      projection = q.Ast.projection;
      distinct = q.Ast.distinct;
      limit = q.Ast.limit;
      expansions = [];
      total_est = { Cost.messages = 0.0; latency = 0.0; cardinality = 0.0 };
      branches = [];
    }
  in
  let rows = postprocess plan rows in
  let trace =
    {
      step = List.hd plan.Physical.steps;
      rows_in = 0;
      actual_card = List.length rows;
      messages = meta.Tstore.messages;
      latency = meta.Tstore.latency;
      carrier = origin;
    }
  in
  ( plan,
    {
      rows;
      messages = dht.Dht.total_sent () - m0;
      latency = Sim.now dht.Dht.sim -. t0;
      complete = meta.Tstore.complete;
      completeness = meta.Tstore.completeness;
      traces = [ trace ];
      bytes_shipped = 0;
    } )
