(** Data statistics for the cost model.

    The paper bases cost predictions "on the characteristics of the used
    overlay system and the actual data distribution" (§2). This module
    holds the per-attribute distribution summaries: triple counts,
    distinct values, value bounds — enough to estimate selectivities of
    the access paths in {!Cost}. *)

module Value = Unistore_triple.Value
module Triple = Unistore_triple.Triple

type attr_stats = {
  count : int;  (** triples with this attribute *)
  distinct : int;  (** distinct values *)
  lo : Value.t option;  (** min value (per dominant type) *)
  hi : Value.t option;
  string_valued : bool;
}

type t = {
  total_triples : int;
  distinct_oids : int;
  attrs : (string * attr_stats) list;
}

val empty : t
val attr : t -> string -> attr_stats option
val pp : Format.formatter -> t -> unit

(** [of_triples ts] computes exact statistics from a dataset in hand (the
    oracle path used when the inserting site keeps a catalog). *)
val of_triples : Triple.t list -> t

(** [collect tstore ~origin] gathers statistics over the network with one
    flooding scan — the expensive but decentralized way; used once and
    cached, like the paper's repeatedly-applied cost model inputs. *)
val collect : Unistore_triple.Tstore.t -> origin:int -> t

(** [of_summaries aggs] reconstructs statistics from the aggregated
    gossiped summaries of the statistics cache
    ({!Unistore_cache.Statcache.aggregate}) — the decentralized
    replacement for the {!of_triples}/{!collect} oracles: counts,
    distinct values and (decoded) value bounds come straight from the
    per-region samples; [distinct_oids] is estimated as the largest
    per-attribute count (exact when every object carries an attribute at
    most once, a lower bound otherwise). *)
val of_summaries : (string * Unistore_cache.Statcache.agg) list -> t

(** {2 Selectivity estimation} *)

(** Estimated triples matching [attr = v]. *)
val est_eq : t -> string -> float

(** Estimated triples with [attr] in [[lo, hi]] (linear interpolation on
    numeric domains; fraction of distinct values otherwise). *)
val est_range : t -> string -> Value.t option -> Value.t option -> float

(** Estimated triples with attribute [attr]. *)
val est_attr : t -> string -> float

(** Estimated triples carrying value [v] on any attribute. *)
val est_value : t -> float

(** Estimated matches of an edit-distance predicate (heuristic: a couple
    of near-duplicates per distinct value). *)
val est_sim : t -> string option -> float
