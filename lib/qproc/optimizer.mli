(** Cost-based query optimization.

    Per pattern, the optimizer enumerates the applicable physical access
    paths (exploiting the three indexes, the q-gram index and the
    filter constraints), estimates each with {!Cost}, and greedily builds
    a join order: start from the most selective pattern, repeatedly add a
    connected pattern, choosing bind-join vs. bulk-access-plus-hash-join
    by predicted message cost. Filters attach to the earliest step that
    binds their variables.

    The same entry points are re-invoked during adaptive (mutant)
    execution with the {e observed} intermediate cardinality, "resulting
    in an adaptive query processing approach" (paper §2). *)

module Ast = Unistore_vql.Ast

(** Candidate access paths for one pattern under the given filter
    constraints, best first. *)
val access_candidates :
  Cost.env ->
  Qstats.t ->
  qgrams:bool ->
  ?cached:(Cost.access -> bool) ->
  (string * Unistore_vql.Algebra.constraint_ list) list ->
  Ast.pattern ->
  (Cost.access * Cost.estimate) list

(** [choose_next env stats ~qgrams constraints ~bound ~card_left remaining]
    picks the next pattern to evaluate given the variables already bound
    and the observed/estimated size of the intermediate result. Returns
    the step and the remaining patterns. *)
val choose_next :
  Cost.env ->
  Qstats.t ->
  qgrams:bool ->
  ?cached:(Cost.access -> bool) ->
  (string * Unistore_vql.Algebra.constraint_ list) list ->
  bound:string list ->
  card_left:float ->
  Ast.pattern list ->
  Physical.step * Ast.pattern list

(** The globally most selective pattern with its best bulk access — the
    starting point shared by static planning and mutant execution.
    Returns the step and the remaining patterns. *)
val first_step :
  Cost.env ->
  Qstats.t ->
  qgrams:bool ->
  ?cached:(Cost.access -> bool) ->
  (string * Unistore_vql.Algebra.constraint_ list) list ->
  Ast.pattern list ->
  Physical.step * Ast.pattern list

(** Full static plan for a query. [cached] (a side-effect-free probe of
    the origin's result cache, see {!Qcache.cached_access}) zeroes the
    message/latency cost of accesses that would be answered locally, so
    plans gravitate toward already-cached work. *)
val plan :
  Cost.env ->
  Qstats.t ->
  qgrams:bool ->
  ?cached:(Cost.access -> bool) ->
  ?expansions:(string * string list) list ->
  Ast.query ->
  Physical.t
