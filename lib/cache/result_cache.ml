module Metrics = Unistore_obs.Metrics

type 'a entry = { value : 'a; version : int; stored_at : float }

type 'a t = {
  name : string;
  mutable metrics : Metrics.t option;
  ttl_ms : float;
  lru : 'a entry Lru.t;
}

let create ?(name = "cache.result") ?metrics ~capacity ~ttl_ms () =
  { name; metrics; ttl_ms; lru = Lru.create ~capacity }

let set_metrics t m = t.metrics <- m
let length t = Lru.length t.lru
let capacity t = Lru.capacity t.lru

let bump t what =
  match t.metrics with Some m -> Metrics.incr m (t.name ^ "." ^ what) | None -> ()

let find t ~key ~version ~now =
  match Lru.find t.lru key with
  | None ->
    bump t "miss";
    None
  | Some e when e.version <> version ->
    Lru.remove t.lru key;
    bump t "stale_version";
    None
  | Some e when now -. e.stored_at > t.ttl_ms ->
    Lru.remove t.lru key;
    bump t "stale_ttl";
    None
  | Some e ->
    bump t "hit";
    Some e.value

let mem t ~key ~version ~now =
  match Lru.peek t.lru key with
  | Some e -> e.version = version && now -. e.stored_at <= t.ttl_ms
  | None -> false

let put t ~key ~version ~now v =
  Lru.put t.lru key { value = v; version; stored_at = now }

let invalidate t ~key = Lru.remove t.lru key
let clear t = Lru.clear t.lru
