module Det = Unistore_util.Det

type 'a entry = { value : 'a; mutable used : int }

type 'a t = {
  mutable capacity : int;
  mutable clock : int;  (* monotone use counter *)
  tbl : (string, 'a entry) Hashtbl.t;
}

let create ~capacity = { capacity = max 0 capacity; clock = 0; tbl = Hashtbl.create 16 }

let capacity t = t.capacity
let length t = Hashtbl.length t.tbl
let clear t = Hashtbl.reset t.tbl

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    e.used <- tick t;
    Some e.value
  | None -> None

let peek t key = Option.map (fun e -> e.value) (Hashtbl.find_opt t.tbl key)

let evict_one t =
  (* Minimum under the total order (used, key): the use-counter is
     normally unique, but entries injected at the same tick (e.g. after
     a clock reset) tie, and the key breaks the tie so the victim never
     depends on hash-bucket order. *)
  let better k e = function
    | Some (k', u') when u' < e.used || (u' = e.used && String.compare k' k <= 0) ->
      Some (k', u')
    | _ -> Some (k, e.used)
  in
  let victim =
    Hashtbl.fold (fun k e acc -> better k e acc) t.tbl None (* srclint: allow unordered-iteration *)
  in
  match victim with Some (k, _) -> Hashtbl.remove t.tbl k | None -> ()

let put t key v =
  if t.capacity > 0 then begin
    (match Hashtbl.find_opt t.tbl key with
    | Some _ -> Hashtbl.remove t.tbl key
    | None -> ());
    while Hashtbl.length t.tbl >= t.capacity do
      evict_one t
    done;
    Hashtbl.replace t.tbl key { value = v; used = tick t }
  end

let remove t key = Hashtbl.remove t.tbl key

let set_capacity t c =
  let c = max 0 c in
  t.capacity <- c;
  if c = 0 then clear t
  else
    while Hashtbl.length t.tbl > c do
      evict_one t
    done

let filter_inplace t f =
  let doomed =
    Hashtbl.fold (fun k e acc -> if f k e.value then acc else k :: acc) t.tbl []
    |> List.sort String.compare
  in
  List.iter (Hashtbl.remove t.tbl) doomed;
  List.length doomed

let iter t f = Det.sorted_iter ~cmp:String.compare (fun k e -> f k e.value) t.tbl
