(** Versioned result cache with TTL fallback (level 2 of the caching
    subsystem).

    A query origin keeps the answers of recent triple-pattern accesses
    so that repeated lookups — including the per-key probes of bind-
    joins — cost zero messages. Two invalidation mechanisms compose:

    - {b version}: every entry records the version of the data it was
      computed against (writes bump versions locally; gossiped
      statistics carry remote peers' write epochs, see {!Statcache}).
      A [find] under a newer version discards the entry — the precise
      channel.
    - {b TTL}: entries also expire [ttl_ms] after insertion — the
      safety net for writes whose version bump has not reached this
      origin yet.

    Instrumentation: when a metrics registry is attached, every [find]
    bumps ["<name>.hit"], ["<name>.miss"], ["<name>.stale_version"] or
    ["<name>.stale_ttl"]. Capacity 0 disables the cache. *)

type 'a t

(** [create ~capacity ~ttl_ms ()] — [name] (default ["cache.result"])
    prefixes the metric counters; [metrics] enables them. *)
val create :
  ?name:string ->
  ?metrics:Unistore_obs.Metrics.t ->
  capacity:int ->
  ttl_ms:float ->
  unit ->
  'a t

val set_metrics : 'a t -> Unistore_obs.Metrics.t option -> unit
val length : 'a t -> int
val capacity : 'a t -> int

(** [find t ~key ~version ~now] returns the cached value if it is still
    current: stored under the same [version] and younger than the TTL.
    Stale entries are removed and counted by staleness cause. *)
val find : 'a t -> key:string -> version:int -> now:float -> 'a option

(** [mem t ~key ~version ~now] is [find <> None] with no side effect at
    all: no recency refresh, no stale-entry eviction, no counters. The
    optimizer's cost-biasing probe — checking whether an access would be
    answered from cache must not distort the hit/miss statistics. *)
val mem : 'a t -> key:string -> version:int -> now:float -> bool

(** [put t ~key ~version ~now v] caches [v] as computed under
    [version] at time [now]. *)
val put : 'a t -> key:string -> version:int -> now:float -> 'a -> unit

val invalidate : 'a t -> key:string -> unit
val clear : 'a t -> unit
