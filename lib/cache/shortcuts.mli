(** Routing shortcut cache (level 1 of the caching subsystem).

    Greedy trie routing resolves every request in O(log n) hops, but a
    query origin keeps seeing the same responsible peers: every [Found]
    or [Ack] reply names the region its sender is responsible for, and
    remembering (region → peer) lets the next request to that region go
    in one hop. This table holds those learned long-range links.

    Entries are keyed by their region — [lo] inclusive, [hi] exclusive
    ([None] = unbounded above), exactly the shape of
    {!Unistore_pgrid.Node.region} — so a containment lookup finds the
    unique learned peer for a key. Regions learned from replies never
    overlap (they partition the key space as long as peer paths are
    stable), so [find] is unambiguous; a peer that did split since we
    learned it merely forwards the request onward from a closer point.

    Eviction is LRU by a use counter; capacity 0 disables the cache
    (the "caching off" arm of experiments). Dead peers are invalidated
    by the routing layer: on a request timeout, or when a containment
    hit points at a peer the network reports dead. *)

type t

val create : capacity:int -> t
val set_capacity : t -> int -> unit
val capacity : t -> int
val length : t -> int

(** [set_spread t true] lets an entry accumulate several peers for the
    same region (an owner's replicas and hot-path boost replicas, as
    advertised in replies) and makes {!find} rotate through them
    round-robin, spreading an origin's traffic instead of pinning the
    first responder. Off (the default) preserves the classic
    one-peer-per-region behavior exactly. *)
val set_spread : t -> bool -> unit

val spread : t -> bool

(** [learn t ~lo ~hi ~peer] remembers that [peer] is responsible for
    [[lo, hi)], replacing any previous entry for the same region and
    evicting the least recently used entry beyond capacity. *)
val learn : t -> lo:string -> hi:string option -> peer:int -> unit

(** [find t ~key] is the learned peer whose region contains [key], if
    any; a hit refreshes the entry's recency. In spread mode a
    multi-peer entry answers round-robin. *)
val find : t -> key:string -> int option

(** [find_all t ~key] is every peer learned for the region containing
    [key], most recently learned first (no recency refresh). *)
val find_all : t -> key:string -> int list

(** [invalidate_peer t peer] drops every entry pointing at [peer]
    (called when [peer] times out or is seen dead); returns the number
    of entries removed. *)
val invalidate_peer : t -> int -> int

(** [invalidate_where t ~f] drops every entry whose target peer satisfies
    [f] (e.g. "currently dead" or "moved by a repair round"); returns the
    number dropped. *)
val invalidate_where : t -> f:(int -> bool) -> int

val clear : t -> unit
