module Det = Unistore_util.Det

type summary = {
  attr : string;
  region_lo : string;
  peer : int;
  count : int;
  distinct : int;
  lo : string;
  hi : string;
  string_valued : bool;
  version : int;
  sampled_at : float;
  load : int;
}

let summary_bytes s =
  String.length s.attr + String.length s.region_lo + String.length s.lo + String.length s.hi + 33

type agg = {
  a_count : float;
  a_distinct : int;
  a_lo : string;
  a_hi : string;
  a_string : bool;
  a_version : int;
  a_regions : int;
}

type t = { tbl : (string * string, summary) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }
let length t = Hashtbl.length t.tbl
let clear t = Hashtbl.reset t.tbl

let fresher a b =
  a.version > b.version || (a.version = b.version && a.sampled_at > b.sampled_at)

let merge t s =
  let key = (s.attr, s.region_lo) in
  match Hashtbl.find_opt t.tbl key with
  | Some old when not (fresher s old) -> false
  | old ->
    (* Replicas of one region produce interchangeable summaries, but
       their load reports are not interchangeable: a cold replica must
       not erase the hot one's signal just by sampling later. Adopting
       a fresher summary keeps a halving memory of the displaced load,
       so the hot-spot signal survives replica races yet still decays
       within a few rounds once the region actually cools down. *)
    let s =
      match old with
      | Some old when old.load / 2 > s.load -> { s with load = old.load / 2 }
      | _ -> s
    in
    Hashtbl.replace t.tbl key s;
    true

(* Summaries travel inside [StatGossip] messages: a deterministic (attr,
   region) order keeps gossip payloads byte-stable across runs. *)
let key_compare (a1, r1) (a2, r2) =
  match String.compare a1 a2 with 0 -> String.compare r1 r2 | c -> c

let summaries t = List.map snd (Det.sorted_bindings ~cmp:key_compare t.tbl)

let aggregate t ~now ~half_life_ms =
  let accs : (string, agg ref) Hashtbl.t = Hashtbl.create 16 in
  (* Weights are floats, so the merge below is order-sensitive float
     addition: iterate in key order, not hash-bucket order. *)
  Det.sorted_iter ~cmp:key_compare
    (fun _ s ->
      let weight =
        if half_life_ms <= 0.0 then 1.0
        else 0.5 ** (Float.max 0.0 (now -. s.sampled_at) /. half_life_ms)
      in
      let contrib =
        {
          a_count = weight *. float_of_int s.count;
          a_distinct = s.distinct;
          a_lo = s.lo;
          a_hi = s.hi;
          a_string = s.string_valued;
          a_version = s.version;
          a_regions = 1;
        }
      in
      match Hashtbl.find_opt accs s.attr with
      | None -> Hashtbl.replace accs s.attr (ref contrib)
      | Some acc ->
        let a = !acc in
        acc :=
          {
            a_count = a.a_count +. contrib.a_count;
            a_distinct = a.a_distinct + contrib.a_distinct;
            a_lo = (if String.compare contrib.a_lo a.a_lo < 0 then contrib.a_lo else a.a_lo);
            a_hi = (if String.compare contrib.a_hi a.a_hi > 0 then contrib.a_hi else a.a_hi);
            a_string = a.a_string || contrib.a_string;
            a_version = a.a_version + contrib.a_version;
            a_regions = a.a_regions + 1;
          })
    t.tbl;
  Hashtbl.fold (fun a acc l -> (a, !acc) :: l) accs []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Per-region served-request load, as gossiped: each summary carries
   the sampling peer's whole per-round request delta, so the region's
   load is the max (not the sum) over its attribute summaries. Sorted
   by region lo for deterministic consumers (the balancer). *)
let region_loads t =
  let regions : (string, int) Hashtbl.t = Hashtbl.create 16 in
  (* Commutative max per region: iteration order cannot matter. *)
  Hashtbl.iter (* srclint: allow unordered-iteration *)
    (fun (_, region_lo) s ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt regions region_lo) in
      Hashtbl.replace regions region_lo (max cur s.load))
    t.tbl;
  Det.sorted_bindings ~cmp:String.compare regions

let attr_version t a =
  (* Commutative integer sum: iteration order cannot matter. *)
  Hashtbl.fold (fun (attr, _) s acc -> if String.equal attr a then acc + s.version else acc) t.tbl 0 (* srclint: allow unordered-iteration *)

let total_version t =
  (* Commutative integer sum: iteration order cannot matter. *)
  Hashtbl.fold (fun _ s acc -> acc + s.version) t.tbl 0 (* srclint: allow unordered-iteration *)
