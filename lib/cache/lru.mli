(** A small bounded map with least-recently-used eviction.

    The building block shared by the caching subsystem's levels: a
    hashtable of at most [capacity] entries where every read refreshes
    the entry's recency and inserting past capacity evicts the stalest
    entry. Recency is a monotone use-counter, not wall time, so the
    structure needs no clock and eviction order is deterministic; equal
    use-counters are broken by key, never by hash-bucket order.

    Capacity 0 disables the structure entirely ([put] is a no-op), which
    is how experiments run their "caching off" arm without touching call
    sites. *)

type 'a t

val create : capacity:int -> 'a t

(** [set_capacity t c] re-bounds the table, evicting down to [c] if
    needed. [c = 0] empties and disables it. *)
val set_capacity : 'a t -> int -> unit

val capacity : 'a t -> int
val length : 'a t -> int

(** [find t key] returns the value and marks it most recently used. *)
val find : 'a t -> string -> 'a option

(** [peek t key] reads without touching recency (for inspection). *)
val peek : 'a t -> string -> 'a option

(** [put t key v] inserts or replaces, evicting the least recently used
    entry when the table is full. No-op at capacity 0. *)
val put : 'a t -> string -> 'a -> unit

val remove : 'a t -> string -> unit

(** [filter_inplace t f] keeps only entries satisfying [f key value];
    returns the number removed. *)
val filter_inplace : 'a t -> (string -> 'a -> bool) -> int

(** [iter t f] visits entries in key order (deterministic, not recency
    order). *)
val iter : 'a t -> (string -> 'a -> unit) -> unit
val clear : 'a t -> unit
