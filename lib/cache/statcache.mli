(** Gossiped statistics cache (level 3 of the caching subsystem).

    The cost-based optimizer needs per-attribute data statistics, but in
    a running deployment no peer holds the full dataset. Instead, each
    responsible peer periodically {e samples} its local A#v store into
    per-attribute {!summary} records and epidemically gossips its whole
    statistics cache; every origin merges what it hears and aggregates
    the partial summaries into global per-attribute statistics.

    Summaries are keyed by (attribute, region): replicas of one leaf
    region produce interchangeable summaries for it, so keying by the
    region's lower bound deduplicates them instead of double counting.
    Per-region counts and distinct-value counts sum exactly across
    regions, because the A#v encoding places all items of one
    (attribute, value) pair under a single key, hence inside a single
    region.

    Freshness: each summary carries the sampling peer's write epoch
    ([version], merged newest-wins) and its sampling time; aggregation
    applies exponential decay by age, so a silent peer's stale summary
    gradually loses weight instead of anchoring the estimate forever.
    The per-attribute sum of versions also serves as the invalidation
    version for the result cache: any write observed anywhere bumps
    it. *)

type summary = {
  attr : string;
  region_lo : string;  (** lower bound of the sampling peer's region *)
  peer : int;  (** sampling peer (provenance) *)
  count : int;  (** triples with this attribute in the region *)
  distinct : int;  (** distinct values of it in the region *)
  lo : string;  (** encoded minimum value (see {!Unistore_triple.Value.encode}) *)
  hi : string;  (** encoded maximum value *)
  string_valued : bool;
  version : int;  (** sampling peer's write epoch *)
  sampled_at : float;  (** simulated ms *)
  load : int;
      (** request messages the sampling peer handled since its previous
          sample — the hot-spot detection signal for
          {!Unistore_pgrid.Balance} *)
}

(** Estimated gossip wire size of one summary. *)
val summary_bytes : summary -> int

(** Aggregated view of one attribute across all known regions. *)
type agg = {
  a_count : float;  (** decay-weighted triple count *)
  a_distinct : int;
  a_lo : string;  (** encoded bounds over all regions *)
  a_hi : string;
  a_string : bool;
  a_version : int;  (** sum of contributing summary versions *)
  a_regions : int;  (** summaries merged into this aggregate *)
}

type t

val create : unit -> t
val length : t -> int
val clear : t -> unit

(** [merge t s] adopts [s] unless a strictly fresher summary (higher
    version, or same version sampled later) for the same (attribute,
    region) is already present. Returns [true] if the cache changed. *)
val merge : t -> summary -> bool

(** All held summaries, sorted by (attribute, region) — a deterministic
    order, because these travel verbatim inside [StatGossip] payloads. *)
val summaries : t -> summary list

(** [aggregate t ~now ~half_life_ms] folds the held summaries into
    per-attribute aggregates, weighting each summary's count by
    [0.5 ** (age / half_life_ms)] ([half_life_ms <= 0] disables decay).
    Sorted by attribute name. *)
val aggregate : t -> now:float -> half_life_ms:float -> (string * agg) list

(** [region_loads t] is the per-region served-request load as gossiped:
    the max over each region's attribute summaries (every summary
    carries its sampling peer's whole per-round delta). Sorted by
    region lower bound. *)
val region_loads : t -> (string * int) list

(** [attr_version t a] is the sum of held summary versions for [a] —
    the result cache's invalidation version for attribute-specific
    accesses (it moves whenever any region reports a write). *)
val attr_version : t -> string -> int

(** Sum of all held versions: the invalidation version for accesses not
    tied to one attribute. *)
val total_version : t -> int
