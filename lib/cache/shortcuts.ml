module SMap = Map.Make (String)

type entry = { hi : string option; peer : int; mutable used : int }

type t = { mutable capacity : int; mutable clock : int; mutable map : entry SMap.t }

let create ~capacity = { capacity = max 0 capacity; clock = 0; map = SMap.empty }

let capacity t = t.capacity
let length t = SMap.cardinal t.map
let clear t = t.map <- SMap.empty

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let evict_one t =
  let victim =
    SMap.fold
      (fun lo e acc ->
        match acc with Some (_, u) when u <= e.used -> acc | _ -> Some (lo, e.used))
      t.map None
  in
  match victim with Some (lo, _) -> t.map <- SMap.remove lo t.map | None -> ()

let learn t ~lo ~hi ~peer =
  if t.capacity > 0 then begin
    if not (SMap.mem lo t.map) then
      while SMap.cardinal t.map >= t.capacity do
        evict_one t
      done;
    t.map <- SMap.add lo { hi; peer; used = tick t } t.map
  end

let find t ~key =
  match SMap.find_last_opt (fun lo -> String.compare lo key <= 0) t.map with
  | Some (_, e) when (match e.hi with None -> true | Some h -> String.compare key h < 0) ->
    e.used <- tick t;
    Some e.peer
  | _ -> None

let invalidate_peer t peer =
  let before = SMap.cardinal t.map in
  t.map <- SMap.filter (fun _ e -> e.peer <> peer) t.map;
  before - SMap.cardinal t.map

let invalidate_where t ~f =
  let before = SMap.cardinal t.map in
  t.map <- SMap.filter (fun _ e -> not (f e.peer)) t.map;
  before - SMap.cardinal t.map

let set_capacity t c =
  let c = max 0 c in
  t.capacity <- c;
  if c = 0 then clear t
  else
    while SMap.cardinal t.map > c do
      evict_one t
    done
