module SMap = Map.Make (String)
module UMap = Map.Make (Int)

(* [peers] is most-recently-learned-first; a single-peer entry behaves
   exactly like the classic cache. In spread mode several peers
   accumulate per region (an owner's replicas and hot-path boosts) and
   [find] rotates through them round-robin via [rr], so an origin
   spreads its traffic instead of pinning the first responder. *)
type entry = { hi : string option; mutable peers : int list; mutable rr : int; mutable used : int }

(* [lru] mirrors [map], keyed by the entry's last-use stamp (stamps are
   unique, the clock never repeats), so the least-recently-used victim
   is the minimum binding — the previous fold over the whole map made
   every eviction O(capacity). [size] is tracked explicitly because
   [SMap.cardinal] is O(n). *)
type t = {
  mutable capacity : int;
  mutable clock : int;
  mutable map : entry SMap.t;
  mutable lru : string UMap.t;
  mutable size : int;
  mutable spread : bool;
}

(* Peers remembered per region in spread mode (replication plus a few
   boosts is all a region ever usefully has). *)
let spread_cap = 4

let create ~capacity =
  {
    capacity = max 0 capacity;
    clock = 0;
    map = SMap.empty;
    lru = UMap.empty;
    size = 0;
    spread = false;
  }

let capacity t = t.capacity
let length t = t.size
let set_spread t on = t.spread <- on
let spread t = t.spread

let clear t =
  t.map <- SMap.empty;
  t.lru <- UMap.empty;
  t.size <- 0

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let evict_one t =
  match UMap.min_binding_opt t.lru with
  | None -> ()
  | Some (stamp, lo) ->
    t.lru <- UMap.remove stamp t.lru;
    t.map <- SMap.remove lo t.map;
    t.size <- t.size - 1

let learn t ~lo ~hi ~peer =
  if t.capacity > 0 then begin
    match SMap.find_opt lo t.map with
    | Some old when t.spread && Option.equal String.equal old.hi hi ->
      (* Same region: accumulate the peer (move-to-front), refresh. *)
      let rest = List.filter (fun p -> p <> peer) old.peers in
      let peers = peer :: rest in
      let peers =
        if List.length peers > spread_cap then List.filteri (fun i _ -> i < spread_cap) peers
        else peers
      in
      old.peers <- peers;
      let stamp = tick t in
      t.lru <- UMap.add stamp lo (UMap.remove old.used t.lru);
      old.used <- stamp
    | old ->
      (match old with
      | Some old -> t.lru <- UMap.remove old.used t.lru
      | None ->
        while t.size >= t.capacity do
          evict_one t
        done;
        t.size <- t.size + 1);
      let stamp = tick t in
      t.map <- SMap.add lo { hi; peers = [ peer ]; rr = 0; used = stamp } t.map;
      t.lru <- UMap.add stamp lo t.lru
  end

let pick (e : entry) =
  match e.peers with
  | [] -> None
  | [ p ] -> Some p
  | peers ->
    let n = List.length peers in
    let k = e.rr mod n in
    e.rr <- e.rr + 1;
    List.nth_opt peers k

let find t ~key =
  match SMap.find_last_opt (fun lo -> String.compare lo key <= 0) t.map with
  | Some (lo, e) when (match e.hi with None -> true | Some h -> String.compare key h < 0) ->
    let stamp = tick t in
    t.lru <- UMap.add stamp lo (UMap.remove e.used t.lru);
    e.used <- stamp;
    pick e
  | _ -> None

(* All peers learned for the region containing [key], most recent
   first (no recency refresh). *)
let find_all t ~key =
  match SMap.find_last_opt (fun lo -> String.compare lo key <= 0) t.map with
  | Some (_, e) when (match e.hi with None -> true | Some h -> String.compare key h < 0) ->
    e.peers
  | _ -> []

(* Rebuild the use-order index after a bulk filter; invalidations run on
   fault paths, not per message, so O(n log n) is fine. *)
let rebuild_lru t =
  t.lru <- SMap.fold (fun lo e acc -> UMap.add e.used lo acc) t.map UMap.empty;
  t.size <- SMap.cardinal t.map

let drop_peers t ~f =
  let before = t.size in
  let removed = ref 0 in
  t.map <-
    SMap.filter_map
      (fun _ e ->
        let peers = List.filter (fun p -> not (f p)) e.peers in
        removed := !removed + (List.length e.peers - List.length peers);
        if peers = [] then None
        else begin
          e.peers <- peers;
          Some e
        end)
      t.map;
  rebuild_lru t;
  (* Count whole-entry drops the way the classic cache did; partial
     trims still count as a removal each. *)
  max (before - t.size) !removed

let invalidate_peer t peer = drop_peers t ~f:(fun p -> p = peer)
let invalidate_where t ~f = drop_peers t ~f

let set_capacity t c =
  let c = max 0 c in
  t.capacity <- c;
  if c = 0 then clear t
  else
    while t.size > c do
      evict_one t
    done
