module SMap = Map.Make (String)
module UMap = Map.Make (Int)

type entry = { hi : string option; peer : int; mutable used : int }

(* [lru] mirrors [map], keyed by the entry's last-use stamp (stamps are
   unique, the clock never repeats), so the least-recently-used victim
   is the minimum binding — the previous fold over the whole map made
   every eviction O(capacity). [size] is tracked explicitly because
   [SMap.cardinal] is O(n). *)
type t = {
  mutable capacity : int;
  mutable clock : int;
  mutable map : entry SMap.t;
  mutable lru : string UMap.t;
  mutable size : int;
}

let create ~capacity =
  { capacity = max 0 capacity; clock = 0; map = SMap.empty; lru = UMap.empty; size = 0 }

let capacity t = t.capacity
let length t = t.size

let clear t =
  t.map <- SMap.empty;
  t.lru <- UMap.empty;
  t.size <- 0

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let evict_one t =
  match UMap.min_binding_opt t.lru with
  | None -> ()
  | Some (stamp, lo) ->
    t.lru <- UMap.remove stamp t.lru;
    t.map <- SMap.remove lo t.map;
    t.size <- t.size - 1

let learn t ~lo ~hi ~peer =
  if t.capacity > 0 then begin
    (match SMap.find_opt lo t.map with
    | Some old -> t.lru <- UMap.remove old.used t.lru
    | None ->
      while t.size >= t.capacity do
        evict_one t
      done;
      t.size <- t.size + 1);
    let stamp = tick t in
    t.map <- SMap.add lo { hi; peer; used = stamp } t.map;
    t.lru <- UMap.add stamp lo t.lru
  end

let find t ~key =
  match SMap.find_last_opt (fun lo -> String.compare lo key <= 0) t.map with
  | Some (lo, e) when (match e.hi with None -> true | Some h -> String.compare key h < 0) ->
    let stamp = tick t in
    t.lru <- UMap.add stamp lo (UMap.remove e.used t.lru);
    e.used <- stamp;
    Some e.peer
  | _ -> None

(* Rebuild the use-order index after a bulk filter; invalidations run on
   fault paths, not per message, so O(n log n) is fine. *)
let rebuild_lru t =
  t.lru <- SMap.fold (fun lo e acc -> UMap.add e.used lo acc) t.map UMap.empty;
  t.size <- SMap.cardinal t.map

let invalidate_peer t peer =
  let before = t.size in
  t.map <- SMap.filter (fun _ e -> e.peer <> peer) t.map;
  rebuild_lru t;
  before - t.size

let invalidate_where t ~f =
  let before = t.size in
  t.map <- SMap.filter (fun _ e -> not (f e.peer)) t.map;
  rebuild_lru t;
  before - t.size

let set_capacity t c =
  let c = max 0 c in
  t.capacity <- c;
  if c = 0 then clear t
  else
    while t.size > c do
      evict_one t
    done
