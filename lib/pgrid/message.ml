type range_strategy = Shower | Sequential

let pp_strategy fmt = function
  | Shower -> Format.pp_print_string fmt "shower"
  | Sequential -> Format.pp_print_string fmt "sequential"

type t =
  | Insert of { rid : int; item : Store.item; origin : int; hops : int }
  | Update of { rid : int; item : Store.item; origin : int; hops : int; rounds : int }
  | Delete of { rid : int; key : string; item_id : string; origin : int; hops : int }
  | Replicate of { item : Store.item; rounds_left : int }
  | Unreplicate of { key : string; item_id : string }
  | Ack of { rid : int; hops : int; region : string * string option }
  | Lookup of { rid : int; key : string; origin : int; hops : int }
  | Found of {
      rid : int;
      items : Store.item list;
      hops : int;
      region : string * string option;
      spread : int list;
          (** other peers currently serving [region] (replicas and
              hot-path boosts); origins in spread mode learn them all as
              shortcut targets. Empty unless hot-path replication is on. *)
    }
  | Range of {
      rid : int;
      token : int;  (** unique per message; echoed by the receiver's hit *)
      lo : string;
      hi : string;
      clip_lo : string;  (** inclusive *)
      clip_hi : string option;  (** exclusive; [None] = unbounded *)
      origin : int;
      reply_to : int;
      hops : int;
      strategy : range_strategy;
      budget : int option;
          (** remaining result budget for sequential top-N traversals:
              stop forwarding once this many items were produced *)
    }
  | RangeHit of {
      rid : int;
      token : int;
      items : Store.item list;
      targets : int list;
      origin : int;
      hops : int;
    }
  | InsertBatch of { rid : int; items : Store.item list; origin : int; hops : int }
  | AckBatch of { rid : int; keys : string list; region : string * string option; hops : int }
  | MultiLookup of { rid : int; keys : string list; origin : int; hops : int }
  | MultiFound of {
      rid : int;
      found : (string * Store.item list) list;
      region : string * string option;
      hops : int;
    }
  | Probe of {
      rid : int;
      token : int;
      clip_lo : string;
      clip_hi : string option;
      origin : int;
      hops : int;
      pred : Store.item -> bool;
      reduce : (Store.item list -> Store.item list) option;
          (** leaf-side partial reduction applied to the locally matched
              items before they are sent back (e.g. a local skyline, so
              dominated rows never cross the network); must only drop
              items, never invent them *)
    }
  | Task of { bytes : int; run : int -> unit }
  | SyncDigest of { digest : (string * string * int) list }
  | SyncRequest of { wanted : (string * string) list }
  | SyncItems of { items : Store.item list }
  | StatGossip of { summaries : Unistore_cache.Statcache.summary list }
  | HotSync of {
      region : string * string option;
      owner : int;
      spread : int list;  (** full serving set for [region], owner included *)
      items : Store.item list;  (** current content of the owner's region *)
      retire : bool;  (** [true] = stop boosting [region] instead *)
    }
  | Exchange of { bytes : int; run : int -> unit }

let header = 20

let items_bytes items = List.fold_left (fun acc i -> acc + Store.item_bytes i) 0 items

let region_bytes (lo, hi) =
  String.length lo + (match hi with Some h -> String.length h | None -> 0) + 2

let size = function
  | Insert { item; _ } -> header + Store.item_bytes item
  | Update { item; _ } -> header + Store.item_bytes item
  | Delete { key; item_id; _ } -> header + String.length key + String.length item_id
  | Replicate { item; _ } -> header + Store.item_bytes item
  | Unreplicate { key; item_id } -> header + String.length key + String.length item_id
  | Ack { region; _ } -> header + region_bytes region
  | Lookup { key; _ } -> header + String.length key
  | Found { items; region; spread; _ } ->
    header + items_bytes items + region_bytes region + (4 * List.length spread)
  | Range { lo; hi; _ } -> header + 16 + String.length lo + String.length hi
  | RangeHit { items; targets; _ } -> header + items_bytes items + (4 * List.length targets)
  | InsertBatch { items; _ } -> header + items_bytes items
  | AckBatch { keys; region; _ } ->
    header + List.fold_left (fun acc k -> acc + String.length k) 0 keys + region_bytes region
  | MultiLookup { keys; _ } ->
    header + List.fold_left (fun acc k -> acc + String.length k) 0 keys
  | MultiFound { found; region; _ } ->
    header
    + List.fold_left (fun acc (k, items) -> acc + String.length k + items_bytes items) 0 found
    + region_bytes region
  | Probe _ -> header + 32
  | Task { bytes; _ } -> header + bytes
  | SyncDigest { digest } ->
    header
    + List.fold_left (fun acc (k, id, _) -> acc + String.length k + String.length id + 8) 0 digest
  | SyncRequest { wanted } ->
    header + List.fold_left (fun acc (k, id) -> acc + String.length k + String.length id) 0 wanted
  | SyncItems { items } -> header + items_bytes items
  | StatGossip { summaries } ->
    header
    + List.fold_left
        (fun acc s -> acc + Unistore_cache.Statcache.summary_bytes s)
        0 summaries
  | HotSync { region; spread; items; _ } ->
    header + region_bytes region + (4 * List.length spread) + 5 + items_bytes items
  | Exchange { bytes; _ } -> header + bytes

(* Correlation id for request/reply trace linting: the protocol's [rid]
   where the message carries one, [-1] for fire-and-forget traffic
   (replication, anti-entropy, shipped closures). *)
let corr = function
  | Insert { rid; _ }
  | Update { rid; _ }
  | Delete { rid; _ }
  | Ack { rid; _ }
  | Lookup { rid; _ }
  | Found { rid; _ }
  | Range { rid; _ }
  | RangeHit { rid; _ }
  | InsertBatch { rid; _ }
  | AckBatch { rid; _ }
  | MultiLookup { rid; _ }
  | MultiFound { rid; _ }
  | Probe { rid; _ } ->
    rid
  | Replicate _ | Unreplicate _ | Task _ | SyncDigest _ | SyncRequest _ | SyncItems _
  | StatGossip _ | HotSync _ | Exchange _ ->
    -1

let kind = function
  | Insert _ -> "insert"
  | Update _ -> "update"
  | Delete _ -> "delete"
  | Replicate _ -> "replicate"
  | Unreplicate _ -> "unreplicate"
  | Ack _ -> "ack"
  | Lookup _ -> "lookup"
  | Found _ -> "found"
  | Range _ -> "range"
  | RangeHit _ -> "range-hit"
  | InsertBatch _ -> "insert-batch"
  | AckBatch _ -> "ack-batch"
  | MultiLookup _ -> "multi-lookup"
  | MultiFound _ -> "multi-found"
  | Probe _ -> "probe"
  | Task _ -> "task"
  | SyncDigest _ -> "sync-digest"
  | SyncRequest _ -> "sync-request"
  | SyncItems _ -> "sync-items"
  | StatGossip _ -> "stat-gossip"
  | HotSync _ -> "hot-sync"
  | Exchange _ -> "exchange"
