(** Per-peer local data store — a facade over pluggable backends.

    Items are keyed by their full order-preserving encoding (a byte
    string), so local range/prefix filtering is exact even though routing
    uses only the first {!Unistore_util.Ophash.routing_bits} bits. An
    [item_id] distinguishes distinct items that share a key (e.g. two
    triples with the same attribute/value); versions give last-writer-wins
    semantics for the update/replication protocol.

    Three backends implement the same {!Store_intf.S} contract (scans in
    ascending key order, newest-first within a key — see the ordering
    contract in {!Store_intf}): [Hash] (the default ordered-map store),
    [Log] (file-backed log-structured, survives {!crash_restart}) and
    [Packed] (dictionary-compressed in-memory). test/test_store.ml
    replays all three differentially against a reference model. *)

type item = Store_intf.item = {
  key : string;  (** full order-preserving encoding; routing uses its prefix *)
  item_id : string;  (** identity for updates; unique per logical datum *)
  payload : string;  (** opaque application payload (a serialized triple) *)
  version : int;  (** LWW version; inserts start at 0 *)
}

(** Deterministic memory-model estimate of resident bytes, and the live
    item count. Comparable across backends; not a GC measurement. *)
type stats = Store_intf.stats = { bytes : int; triples : int }

type backend = Store_intf.backend = Hash | Log of { dir : string } | Packed

(** ["hash"], ["log"] or ["packed"]. *)
val backend_label : backend -> string

val pp_item : Format.formatter -> item -> unit

(** Approximate wire size of an item in bytes (for bandwidth accounting). *)
val item_bytes : item -> int

type t

(** [create ?backend ?name ()] — defaults to [Hash]. For [Log], the
    segment file is [dir/name.log] ([name] defaults to a unique
    generated one). *)
val create : ?backend:backend -> ?name:string -> unit -> t

(** The backend this store was created with. *)
val kind : t -> backend

(** [put t item] inserts or updates. An existing entry with the same
    [(key, item_id)] is replaced iff the new version is greater or equal.
    Returns [true] if the store changed. *)
val put : t -> item -> bool

(** [remove t ~key ~item_id] removes an entry if present. *)
val remove : t -> key:string -> item_id:string -> unit

(** All items with exactly this key. *)
val find : t -> string -> item list

(** All items with [lo <= key <= hi] (byte-string order). *)
val range : t -> lo:string -> hi:string -> item list

(** All items whose key starts with [prefix]. *)
val with_prefix : t -> string -> item list

(** Number of stored items. *)
val size : t -> int

val iter : t -> (item -> unit) -> unit
val to_list : t -> item list

(** [filter_partition t pred] keeps items satisfying [pred] and returns the
    removed ones (used when a peer splits its path and hands data over). *)
val filter_partition : t -> (item -> bool) -> item list

(** [digest t] lists [(key, item_id, version)] for anti-entropy. *)
val digest : t -> (string * string * int) list

val clear : t -> unit

(** Memory-model estimate for this store's current contents. *)
val stats : t -> stats

(** Simulate a crash followed by a restart. In-memory backends come
    back empty (return [0]); the log backend replays its file and
    returns the number of recovered items. [keep_frac] (log only)
    first truncates the log to that fraction of its bytes — the "torn
    tail" a real crash leaves when buffered writes never hit the disk;
    the cut may fall mid-record, and replay keeps exactly the records
    fully contained in the surviving prefix. *)
val crash_restart : ?keep_frac:float -> t -> int

(** The log backend's segment path ([None] for in-memory backends). *)
val log_path : t -> string option

(** Logical size of the log file in bytes (0 for in-memory backends). *)
val log_bytes : t -> int

(** Flush buffered log appends to the OS (no-op for in-memory backends). *)
val sync : t -> unit
