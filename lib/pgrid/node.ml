module Bitkey = Unistore_util.Bitkey
module Shortcuts = Unistore_cache.Shortcuts
module Statcache = Unistore_cache.Statcache

type t = {
  id : int;
  mutable path : Bitkey.t;
  mutable splits : string array;
  mutable refs : int list array;
  mutable replicas : int list;
  store : Store.t;
  mutable write_epoch : int;
  shortcuts : Shortcuts.t;
  stat_cache : Statcache.t;
  rtt : Rtt.t;
  (* Hot-path replication state. As a booster: [hot_store] holds a
     synced copy of someone else's hot region [hot_region] (kept apart
     from [store] so region-placement invariants over [store] still
     hold), [hot_owner] is the region's owner and [hot_spread] the full
     serving set advertised in replies. As an owner: [boosts] lists the
     peers currently boosting this node's region. *)
  hot_store : Store.t;
  mutable hot_region : (string * string option) option;
  mutable hot_owner : int;
  mutable hot_spread : int list;
  mutable boosts : int list;
  (* Load accounting for the gossiped statistics: [served] counts
     request messages handled; the sampler reads the delta since its
     last visit via [served_mark]. *)
  mutable served : int;
  mutable served_mark : int;
  (* [region] derived from path/splits, cached because [covers] runs on
     every routing decision; invalidated by [set_path]/[extend]. *)
  mutable region_cache : (string * string option) option;
}

let create ?(backend = Store_intf.Hash) id =
  {
    id;
    path = Bitkey.empty;
    splits = [||];
    refs = [||];
    replicas = [];
    (* [name] keys the log backend's per-peer file; the hot-store copy
       is cache-like and always stays in memory. *)
    store = Store.create ~backend ~name:(Printf.sprintf "peer-%d" id) ();
    write_epoch = 0;
    shortcuts = Shortcuts.create ~capacity:128;
    stat_cache = Statcache.create ();
    rtt = Rtt.create ();
    hot_store = Store.create ();
    hot_region = None;
    hot_owner = -1;
    hot_spread = [];
    boosts = [];
    served = 0;
    served_mark = 0;
    region_cache = None;
  }

let bump_epoch t = t.write_epoch <- t.write_epoch + 1

(* One request message handled (routing or serving) — the raw signal
   behind the gossiped per-region load statistic. *)
let bump_served t = t.served <- t.served + 1

(* Requests handled since the last call — consumed by the statistics
   sampler once per gossip round. *)
let served_delta t =
  let d = t.served - t.served_mark in
  t.served_mark <- t.served;
  d

(* [hot_covers t key]: this peer boosts a hot region containing [key]
   and may answer lookups for it from [hot_store]. *)
let hot_covers t key =
  match t.hot_region with
  | Some (lo, hi) ->
    String.compare key lo >= 0
    && (match hi with None -> true | Some h -> String.compare key h < 0)
  | None -> false

(* Stop boosting: drop the synced copy and the assignment. *)
let clear_hot t =
  Store.clear t.hot_store;
  t.hot_region <- None;
  t.hot_owner <- -1;
  t.hot_spread <- []

let set_path t path splits =
  let len = Bitkey.length path in
  if Array.length splits <> len then invalid_arg "Node.set_path: splits/path length mismatch";
  let refs = Array.make len [] in
  Array.blit t.refs 0 refs 0 (min (Array.length t.refs) len);
  t.path <- path;
  t.splits <- splits;
  t.refs <- refs;
  t.region_cache <- None

let extend t ~bit ~boundary =
  set_path t (Bitkey.append_bit t.path bit) (Array.append t.splits [| boundary |])

let refs_at t l = if l >= 0 && l < Array.length t.refs then t.refs.(l) else []

let add_ref t ~level peer ~cap =
  if level >= 0 && level < Array.length t.refs && peer <> t.id then begin
    let cur = t.refs.(level) in
    if not (List.mem peer cur) then begin
      let updated = peer :: cur in
      let updated =
        if List.length updated > cap then List.filteri (fun i _ -> i < cap) updated else updated
      in
      t.refs.(level) <- updated
    end
  end

let remove_ref t peer =
  Array.iteri (fun l refs -> t.refs.(l) <- List.filter (fun p -> p <> peer) refs) t.refs

let add_replica t peer =
  if peer <> t.id && not (List.mem peer t.replicas) then t.replicas <- peer :: t.replicas

let remove_replica t peer = t.replicas <- List.filter (fun p -> p <> peer) t.replicas

let compute_region t =
  let lo = ref "" and hi = ref None in
  Array.iteri
    (fun l boundary ->
      if Bitkey.get t.path l then begin
        if String.compare boundary !lo > 0 then lo := boundary
      end
      else
        match !hi with
        | Some h when String.compare h boundary <= 0 -> ()
        | _ -> hi := Some boundary)
    t.splits;
  (!lo, !hi)

let region t =
  match t.region_cache with
  | Some r -> r
  | None ->
    let r = compute_region t in
    t.region_cache <- Some r;
    r

let covers t key =
  let lo, hi = region t in
  String.compare key lo >= 0
  && match hi with None -> true | Some h -> String.compare key h < 0

let key_side t ~level key =
  if level < 0 || level >= Array.length t.splits then invalid_arg "Node.key_side";
  String.compare key t.splits.(level) >= 0

let table_size t = Array.fold_left (fun acc refs -> acc + List.length refs) 0 t.refs

let pp fmt t =
  Format.fprintf fmt "peer%d@%a[refs=%d,replicas=%d,items=%d]" t.id Bitkey.pp t.path (table_size t)
    (List.length t.replicas) (Store.size t.store)
