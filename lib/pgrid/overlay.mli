(** The P-Grid overlay: routing and data-access protocols.

    All operations are asynchronous (continuation-passing) because they are
    implemented as real message exchanges inside the discrete-event
    simulator; [*_sync] wrappers drive the event loop until the
    continuation fires and are what most callers use.

    Guarantees (demonstrated by the E2 benchmark):
    - [lookup]/[insert] resolve in at most [depth] overlay hops, i.e.
      O(log n) for a balanced trie — and in a single hop when the
      origin's routing-shortcut cache ({!Unistore_cache.Shortcuts}, fed
      by the regions carried on [Found]/[Ack] replies) already knows the
      responsible peer;
    - [range ~strategy:Shower] reaches every peer intersecting the range
      with one message each, after O(depth) splitting hops;
    - [range ~strategy:Sequential] visits intersecting leaves one after the
      other, each reached by greedy routing. *)

type t

(** Outcome of a data-access operation. *)
type result = {
  items : Store.item list;
  hops : int;  (** longest message chain involved *)
  peers_hit : int;  (** peers that executed local work *)
  complete : bool;  (** false on timeout / unreachable region *)
  completeness : float;
      (** coverage estimate in [0,1]: regions reached / regions
          addressed. Showers count answered vs announced split tokens,
          batches count acked vs sent keys, single-destination requests
          are all ([1.0]) or nothing ([0.0]). [1.0] iff [complete] —
          partial results are tagged instead of silently truncated. *)
  latency : float;  (** simulated ms from issue to completion *)
}

val create :
  Sim.t ->
  latency:Latency.t ->
  rng:Unistore_util.Rng.t ->
  ?drop:float ->
  config:Config.t ->
  unit ->
  t

val sim : t -> Sim.t
val net : t -> Message.t Net.t
val config : t -> Config.t

(** [set_config t c] swaps the live parameter set — used to toggle the
    adaptive-balancing arm ([adaptive_timeout] / [hot_replication] /
    [spread_load]) on an already-built deployment. Per-node shortcut
    spread mode is re-propagated to every node. *)
val set_config : t -> Config.t -> unit

val rng : t -> Unistore_util.Rng.t

(** [set_metrics t (Some m)] starts recording operation-level series
    into [m] — per-operation hop-count, retry and latency histograms
    ([overlay.lookup.hops], [overlay.insert.retries], ...), range/probe
    fan-out ([overlay.range.fanout] = peers that executed local work),
    ok/incomplete outcome counters and a resend counter — and attaches
    [m] to the underlying network for per-kind message accounting (see
    {!Unistore_sim.Net.set_metrics}). [None] detaches; the disabled
    path costs nothing. *)
val set_metrics : t -> Unistore_obs.Metrics.t option -> unit

val metrics : t -> Unistore_obs.Metrics.t option

(** [set_read_observer t (Some f)] calls [f ~origin items] whenever a
    lookup completes successfully at its origin — the observation feed
    for the trace linter's monotone-reads (cache staleness) check.
    [None] detaches; the disabled path costs nothing. *)
val set_read_observer : t -> (origin:int -> Store.item list -> unit) option -> unit

(** [add_node t id] creates, registers and returns a node with an empty
    path (responsible for the whole key space until paths are assigned). *)
val add_node : t -> int -> Node.t

val node : t -> int -> Node.t
val nodes : t -> Node.t list
val node_count : t -> int

(** Maximum path length over all nodes (trie depth). *)
val depth : t -> int

(** Peers whose region covers the encoded key (oracle view, used by tests
    and for choosing mutant-plan carriers). *)
val responsible : t -> string -> Node.t list

(** {2 Failure injection} *)

val kill : t -> int -> unit
val revive : t -> int -> unit
val alive : t -> int -> bool

(** [crash t ?keep_frac id] kills [id] {e and} loses its volatile
    state, unlike {!kill} (which keeps state intact for {!revive}):
    in-memory stores restart empty; the log backend replays its file,
    truncated to [keep_frac] of its bytes first when given (the torn
    tail — the cut may fall mid-record). Also drops any boost-replica
    copy. Counts [fault.crash]; returns the locally recovered item
    count. The peer stays dead until {!revive}; repair/anti-entropy
    then reconcile the lost delta from the replica group. *)
val crash : t -> ?keep_frac:float -> int -> int

(** Publish storage gauges summed over alive peers — [store.bytes]
    (deterministic memory-model estimate), [store.items] and
    [store.log_bytes] — into the attached metrics registry (no-op
    without one). The same counters the storage tests assert on, so
    BENCH_store.json numbers and test expectations share one source. *)
val refresh_store_gauges : t -> unit

(** Peers currently holding an unflushed in-network aggregation buffer
    (interior nodes of in-flight shower ranges). Exposed so fault tests
    can kill an aggregator mid-query deterministically. *)
val agg_owners : t -> int list

(** {2 Asynchronous operations} *)

(** [insert t ~origin ~key ~item_id ~payload ()] routes the item to the
    responsible peer, stores it there and pushes it to that peer's replica
    group. The continuation receives [complete = false] if every retry
    timed out. *)
val insert :
  t ->
  origin:int ->
  key:string ->
  item_id:string ->
  payload:string ->
  ?version:int ->
  k:(result -> unit) ->
  unit ->
  unit

(** [lookup t ~origin ~key] retrieves all items whose full encoded key
    equals [key]. *)
val lookup : t -> origin:int -> key:string -> k:(result -> unit) -> unit

(** [delete t ~origin ~key ~item_id] removes one item from the
    responsible peer and its replicas. *)
val delete : t -> origin:int -> key:string -> item_id:string -> k:(result -> unit) -> unit

(** [update t ~origin ~key ~item_id ~payload ~version ()] is a versioned
    write with loose consistency: the responsible peer applies it (LWW) and
    rumor-spreads it to [gossip_fanout] replicas for [rounds] residual
    hops. Replicas missed by the rumor converge later through
    {!Gossip.anti_entropy_round}. *)
val update :
  t ->
  origin:int ->
  key:string ->
  item_id:string ->
  payload:string ->
  version:int ->
  ?rounds:int ->
  k:(result -> unit) ->
  unit ->
  unit

(** [range t ~origin ~lo ~hi] retrieves all items with
    [lo <= key <= hi]. With [budget = Some n] (Sequential only) the
    traversal stops after producing [n] items — since key order equals
    value order this yields the [n] smallest matches (a distributed
    top-N with early termination). *)
val range :
  t ->
  origin:int ->
  ?strategy:Message.range_strategy ->
  ?budget:int ->
  lo:string ->
  hi:string ->
  k:(result -> unit) ->
  unit ->
  unit

(** [prefix t ~origin ~prefix] retrieves all items whose key extends
    [prefix] (substring/prefix search on the indexed encodings). *)
val prefix : t -> origin:int -> prefix:string -> k:(result -> unit) -> unit

(** [broadcast t ~origin ?lo ?hi ?reduce ~pred ~k ()] floods the overlay
    region \[[lo],[hi]) (default: every alive peer) and scans each local
    store with [pred]; the expensive fallback when no index applies.
    [reduce], when given, runs at every leaf over its matched items
    before the reply is sent — a leaf-side partial reduction (e.g. a
    local skyline) whose dropped items never cross the network. It must
    be a pure filter: only drop items, never invent or mutate them. *)
val broadcast :
  t ->
  origin:int ->
  ?lo:string ->
  ?hi:string ->
  ?reduce:(Store.item list -> Store.item list) ->
  pred:(Store.item -> bool) ->
  k:(result -> unit) ->
  unit ->
  unit

(** {2 Batched operations}

    Enabled by {!Config.t.bulk_insert} / [multi_probe]; both fall back to
    nothing here — callers are expected to check the flags and issue
    per-item operations themselves when batching is off (see
    {!Unistore_triple.Dht}). *)

(** [bulk_insert t ~origin ~items ~k] stores the whole batch with one
    [InsertBatch] message that splits shower-style down the trie
    (O(touched regions · depth) messages instead of one routed exchange
    per item). Each covering region acks its share once; timeouts
    selectively retransmit only still-unacked items. [result.items] is
    empty; [result.peers_hit] counts acking regions. *)
val bulk_insert : t -> origin:int -> items:Store.item list -> k:(result -> unit) -> unit

(** [multi_lookup t ~origin ~keys ~k] resolves many exact-key lookups
    with one [MultiLookup] message per touched subtree (the bind-join
    probe pattern). [k] receives the per-key answers (deduplicated,
    sorted keys; missing keys map to [[]]) alongside the combined
    result. *)
val multi_lookup :
  t ->
  origin:int ->
  keys:string list ->
  k:((string * Store.item list) list * result -> unit) ->
  unit

(** [send_task t ~src ~dst ~bytes f] ships an application-level computation
    (e.g. a mutant query plan) to [dst]; [f] runs there on arrival. Counted
    as one message of [bytes] payload. [f] is not run if [dst] is dead. *)
val send_task : t -> src:int -> dst:int -> bytes:int -> (int -> unit) -> unit

(** {2 Synchronous wrappers} (drive the simulator until completion) *)

val insert_sync :
  t -> origin:int -> key:string -> item_id:string -> payload:string -> ?version:int -> unit ->
  result

val lookup_sync : t -> origin:int -> key:string -> result
val delete_sync : t -> origin:int -> key:string -> item_id:string -> result

val update_sync :
  t ->
  origin:int ->
  key:string ->
  item_id:string ->
  payload:string ->
  version:int ->
  ?rounds:int ->
  unit ->
  result

val range_sync :
  t ->
  origin:int ->
  ?strategy:Message.range_strategy ->
  ?budget:int ->
  lo:string ->
  hi:string ->
  unit ->
  result

val prefix_sync : t -> origin:int -> prefix:string -> result
val broadcast_sync : t -> origin:int -> pred:(Store.item -> bool) -> result
val bulk_insert_sync : t -> origin:int -> items:Store.item list -> result
val multi_lookup_sync : t -> origin:int -> keys:string list -> (string * Store.item list) list * result

(** {2 Replica maintenance} (see {!Gossip}) *)

(** Used by {!Gossip}: handle replica-synchronization messages. Exposed so
    the message dispatcher lives in one place. *)
val handle_sync : t -> me:Node.t -> src:int -> Message.t -> unit
