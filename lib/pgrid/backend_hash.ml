(* The original per-peer store, ported unchanged onto {!Store_intf.S}:
   an ordered string map from full encoded key to the (newest-first)
   list of items stored under it. The reference backend of the
   differential harness (test/test_store.ml), and the default. *)

open Store_intf

module SMap = Map.Make (String)

type t = { mutable map : item list SMap.t; mutable count : int }

let create () = { map = SMap.empty; count = 0 }

let put t (item : item) =
  let existing = Option.value ~default:[] (SMap.find_opt item.key t.map) in
  let rec replace acc changed = function
    | [] -> if changed then Some (List.rev acc) else Some (item :: List.rev acc)
    | e :: rest when String.equal e.item_id item.item_id ->
      if item.version >= e.version then replace (item :: acc) true rest else None
    | e :: rest -> replace (e :: acc) changed rest
  in
  (* [replace] returns [None] when an entry with the same id has a strictly
     newer version (stale update), [Some entries] otherwise. *)
  match replace [] false existing with
  | None -> false
  | Some entries ->
    let grew = List.length entries > List.length existing in
    t.map <- SMap.add item.key entries t.map;
    if grew then t.count <- t.count + 1;
    true

let remove t ~key ~item_id =
  match SMap.find_opt key t.map with
  | None -> ()
  | Some entries ->
    let entries' = List.filter (fun e -> not (String.equal e.item_id item_id)) entries in
    let removed = List.length entries - List.length entries' in
    t.count <- t.count - removed;
    if entries' = [] then t.map <- SMap.remove key t.map
    else t.map <- SMap.add key entries' t.map

let find t key = Option.value ~default:[] (SMap.find_opt key t.map)

let range t ~lo ~hi =
  let seq = SMap.to_seq_from lo t.map in
  let rec collect acc s =
    match s () with
    | Seq.Nil -> List.rev acc
    | Seq.Cons ((k, items), rest) ->
      if String.compare k hi > 0 then List.rev acc
      else collect (List.rev_append items acc) rest
  in
  collect [] seq

let with_prefix t prefix =
  let seq = SMap.to_seq_from prefix t.map in
  let plen = String.length prefix in
  let has_prefix k = String.length k >= plen && String.equal (String.sub k 0 plen) prefix in
  let rec collect acc s =
    match s () with
    | Seq.Nil -> List.rev acc
    | Seq.Cons ((k, items), rest) ->
      if has_prefix k then collect (List.rev_append items acc) rest else List.rev acc
  in
  collect [] seq

let size t = t.count

let iter t f = SMap.iter (fun _ items -> List.iter f items) t.map

let to_list t =
  SMap.fold (fun _ items acc -> List.rev_append items acc) t.map [] |> List.rev

let filter_partition t pred =
  (* Removed chunks are collected per key in map (ascending) order, so
     the returned list is key-sorted like every scan. *)
  let chunks = ref [] in
  let map' =
    SMap.filter_map
      (fun _ items ->
        let keep, out = List.partition pred items in
        if out <> [] then chunks := out :: !chunks;
        match keep with [] -> None | _ -> Some keep)
      t.map
  in
  t.map <- map';
  let removed = List.concat (List.rev !chunks) in
  t.count <- t.count - List.length removed;
  removed

let digest t =
  SMap.fold
    (fun key items acc -> List.fold_left (fun acc i -> (key, i.item_id, i.version) :: acc) acc items)
    t.map []

let clear t =
  t.map <- SMap.empty;
  t.count <- 0

(* Accounting model: one balanced-map node per distinct key (5 words),
   one list cell per item (3 words), plus the item record and its three
   strings. The map binding's key string is shared with the first
   item's [key] field often enough that we charge key strings on the
   items only. *)
let stats t =
  let bytes = ref 0 in
  SMap.iter
    (fun _ items ->
      bytes := !bytes + 48;
      List.iter
        (fun (i : item) ->
          bytes :=
            !bytes + item_record_bytes + 24 + string_bytes i.key + string_bytes i.item_id
            + string_bytes i.payload)
        items)
    t.map;
  { bytes = !bytes; triples = t.count }
