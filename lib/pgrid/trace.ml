include Unistore_sim.Trace
