module Rng = Unistore_util.Rng

let anti_entropy_round ov =
  let net = Overlay.net ov in
  let rng = Overlay.rng ov in
  List.iter
    (fun (nd : Node.t) ->
      if Net.is_alive net nd.id then begin
        match List.filter (Net.is_alive net) nd.replicas with
        | [] -> ()
        | alive ->
          let target = Rng.pick_list rng alive in
          Net.send net ~src:nd.id ~dst:target
            (Message.SyncDigest { digest = Store.digest nd.store })
      end)
    (Overlay.nodes ov)

let replica_versions ov ~key ~item_id =
  Overlay.responsible ov key
  |> List.map (fun (nd : Node.t) ->
         let v =
           Store.find nd.store key
           |> List.find_opt (fun (i : Store.item) -> String.equal i.item_id item_id)
           |> Option.map (fun (i : Store.item) -> i.version)
         in
         (nd.id, v))

let staleness ov ~key ~item_id ~version =
  match replica_versions ov ~key ~item_id with
  | [] -> 1.0
  | vs ->
    let stale =
      List.length (List.filter (fun (_, v) -> match v with Some x -> x < version | None -> true) vs)
    in
    float_of_int stale /. float_of_int (List.length vs)
