module Rng = Unistore_util.Rng
module Statcache = Unistore_cache.Statcache

let anti_entropy_round ov =
  let net = Overlay.net ov in
  let rng = Overlay.rng ov in
  List.iter
    (fun (nd : Node.t) ->
      if Net.is_alive net nd.id then begin
        match List.filter (Net.is_alive net) nd.replicas with
        | [] -> ()
        | alive ->
          let target = Rng.pick_list rng alive in
          Net.send net ~src:nd.id ~dst:target
            (Message.SyncDigest { digest = Store.digest nd.store })
      end)
    (Overlay.nodes ov)

(* Statistics dissemination is push-epidemic rather than push-pull like
   anti-entropy: summaries are tiny (a few tens of bytes per attribute),
   so each peer just pushes everything it knows to [gossip_fanout]
   random alive peers. Within O(log n) rounds every origin holds a
   summary for every (attribute, region) pair. *)
let stats_round ov ~sample =
  let net = Overlay.net ov in
  let rng = Overlay.rng ov in
  let sim = Overlay.sim ov in
  let nodes = Overlay.nodes ov in
  let alive = List.filter (fun (nd : Node.t) -> Net.is_alive net nd.id) nodes in
  List.iter
    (fun (nd : Node.t) ->
      (* Refresh my own summaries from the local store before pushing. *)
      List.iter
        (fun s -> ignore (Statcache.merge nd.stat_cache s))
        (sample ~now:(Sim.now sim) nd);
      let fanout = (Overlay.config ov).Config.gossip_fanout in
      let summaries = Statcache.summaries nd.stat_cache in
      let n_alive = Net.alive_count net in
      if summaries <> [] && n_alive > 1 then begin
        (* Draw [fanout] distinct targets (excluding self) by rejection
           sampling over the O(1) alive set — the old materialize-and-
           reservoir-sample pattern cost O(alive) per peer, making each
           gossip round quadratic. Fanout is a small constant, so the
           expected number of redraws is O(fanout). *)
        let fanout = min fanout (n_alive - 1) in
        let chosen = ref [] in
        let count = ref 0 in
        while !count < fanout do
          match Net.random_alive net rng with
          | Some target when target <> nd.id && not (List.mem target !chosen) ->
            chosen := target :: !chosen;
            incr count;
            Net.send net ~src:nd.id ~dst:target (Message.StatGossip { summaries })
          | _ -> ()
        done
      end)
    alive

let replica_versions ov ~key ~item_id =
  Overlay.responsible ov key
  |> List.map (fun (nd : Node.t) ->
         let v =
           Store.find nd.store key
           |> List.find_opt (fun (i : Store.item) -> String.equal i.item_id item_id)
           |> Option.map (fun (i : Store.item) -> i.version)
         in
         (nd.id, v))

let staleness ov ~key ~item_id ~version =
  match replica_versions ov ~key ~item_id with
  | [] -> 1.0
  | vs ->
    let stale =
      List.length (List.filter (fun (_, v) -> match v with Some x -> x < version | None -> true) vs)
    in
    float_of_int stale /. float_of_int (List.length vs)
