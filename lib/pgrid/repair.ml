module Bitkey = Unistore_util.Bitkey

(* Self-healing maintenance: one repair round over the whole overlay.

   Crashes deplete replica groups (a leaf served by fewer live peers than
   [Config.replication] loses data for good if the rest die too) and
   leave routing tables pointing at corpses. A repair round runs the
   counter-measures P-Grid relies on between churn waves:

   1. re-point dead routing references at live peers of the right
      subtree ({!Build.repair_refs});
   2. adopt stray same-path peers (e.g. freshly joined or revived ones)
      into their leaf's replica group — mutual registration, the same
      bookkeeping {!Build.join} does for a bootstrap;
   3. re-replicate: move spare peers from over-replicated leaves into
      depleted ones — the migrant takes the depleted leaf's path and
      boundaries, drops state it no longer covers, receives a full copy
      from a surviving member (one accounted [SyncItems] transfer), and
      registers with the group;
   4. drop routing shortcuts that point at dead or migrated peers, so
      the next queries re-learn honest ones.

   Everything is deterministic: groups are visited in path order, members
   in id order, and migrants are assigned greedily (neediest leaf first).
   Like {!Build.repair_refs}, steps 2–4 run as god-mode bookkeeping (the
   simulated cost is the state transfer, which dominates in practice). *)

type report = {
  adopted : int;  (** stray same-path peers newly registered into groups *)
  moved : int;  (** peers migrated into depleted replica groups *)
  resynced_bytes : int;  (** payload shipped by migration state transfers *)
  shortcuts_dropped : int;  (** stale shortcut entries invalidated *)
  unrepaired : int;  (** groups still below replication (no donors left) *)
}

let group_key (nd : Node.t) = Bitkey.to_string nd.Node.path

(* Leaf groups by path, members sorted by id; deterministic order. *)
let leaf_groups ov =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (nd : Node.t) ->
      let key = group_key nd in
      match Hashtbl.find_opt tbl key with
      | Some r -> r := nd :: !r
      | None -> Hashtbl.add tbl key (ref [ nd ]))
    (Overlay.nodes ov);
  Hashtbl.fold (fun key r acc -> (key, List.rev !r) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let adopt_strays ov groups =
  let adopted = ref 0 in
  List.iter
    (fun (_, members) ->
      let alive = List.filter (fun (nd : Node.t) -> Overlay.alive ov nd.Node.id) members in
      List.iter
        (fun (a : Node.t) ->
          List.iter
            (fun (b : Node.t) ->
              if a.id <> b.id && not (List.mem b.id a.replicas) then begin
                Node.add_replica a b.id;
                incr adopted
              end)
            alive)
        alive)
    groups;
  !adopted

(* Migrate [d] into the group led by live [template]: leave the old
   group, clone the template's position and routing state, drop items
   outside the new region (still replicated at the donors), and receive
   the template's data as one accounted [SyncItems] message. *)
let migrate ov ~(d : Node.t) ~(template : Node.t) ~new_members =
  let net = Overlay.net ov in
  let config = Overlay.config ov in
  (* Unregister from the old group — every old member, dead ones
     included, or their replica lists go stale when they revive. *)
  List.iter
    (fun r ->
      match Overlay.node ov r with
      | old -> Node.remove_replica old d.id
      | exception Invalid_argument _ -> ())
    d.replicas;
  List.iter (fun r -> Node.remove_replica d r) d.replicas;
  (* Old-position routing references to [d] are wrong the moment it
     moves; scrub them everywhere and let [repair_refs] refill. *)
  List.iter (fun (nd : Node.t) -> if nd.id <> d.id then Node.remove_ref nd d.id) (Overlay.nodes ov);
  (* Take the new position: path, boundaries, and the template's refs. *)
  Node.set_path d template.path (Array.copy template.splits);
  Array.iteri (fun l _ -> d.refs.(l) <- []) d.refs;
  Array.iteri
    (fun l refs ->
      List.iter
        (fun r -> if r <> d.id then Node.add_ref d ~level:l r ~cap:config.Config.refs_per_level)
        refs)
    template.refs;
  (* Items outside the new region stay replicated at the old group's
     surviving members; keeping them here would trip the misplaced-item
     audit. *)
  ignore (Store.filter_partition d.store (fun i -> Node.covers d i.Store.key));
  (* Register with the whole new group (dead members revive in place). *)
  List.iter
    (fun (m : Node.t) ->
      if m.id <> d.id then begin
        Node.add_replica d m.id;
        Node.add_replica m d.id
      end)
    new_members;
  (* State transfer from the surviving member, as a real message. *)
  let items = Store.to_list template.store in
  let bytes = List.fold_left (fun acc i -> acc + Store.item_bytes i) 0 items in
  Net.send net ~src:template.id ~dst:d.id (Message.SyncItems { items });
  bytes

let round ov =
  let net = Overlay.net ov in
  (* Routing first: adoption and migration below route nothing, but a
     clean table makes the group scan's view of liveness meaningful. *)
  Build.repair_refs ov;
  let groups = leaf_groups ov in
  let adopted = adopt_strays ov groups in
  let repl = (Overlay.config ov).Config.replication in
  let alive_of members = List.filter (fun (nd : Node.t) -> Overlay.alive ov nd.Node.id) members in
  (* Donor pool: groups keep [repl] live members (lowest ids); the rest
     are spare and may be reassigned. *)
  let spares =
    List.concat_map
      (fun (_, members) ->
        let alive = alive_of members in
        if List.length alive > repl then List.filteri (fun i _ -> i >= repl) alive else [])
      groups
  in
  let spares = ref spares in
  let moved = ref 0 and resynced = ref 0 and unrepaired = ref 0 in
  let moved_ids = ref [] in
  let depleted =
    List.filter
      (fun (_, members) ->
        let n = List.length (alive_of members) in
        n > 0 && n < repl)
      groups
    (* Neediest leaf first, path order breaking ties. *)
    |> List.sort (fun (ka, a) (kb, b) ->
           match compare (List.length (alive_of a)) (List.length (alive_of b)) with
           | 0 -> String.compare ka kb
           | c -> c)
  in
  List.iter
    (fun (_, members) ->
      let missing = repl - List.length (alive_of members) in
      let template = List.hd (alive_of members) in
      let still_missing = ref missing in
      while
        !still_missing > 0
        &&
        match !spares with
        | [] -> false
        | d :: rest ->
          spares := rest;
          resynced := !resynced + migrate ov ~d ~template ~new_members:members;
          moved_ids := d.Node.id :: !moved_ids;
          moved := !moved + 1;
          decr still_missing;
          true
      do
        ()
      done;
      if !still_missing > 0 then incr unrepaired)
    depleted;
  (* Migrations changed subtree membership: refill the holes the scrub
     left and give migrants referrers in their new subtree. *)
  if !moved > 0 then Build.repair_refs ov;
  (* Invalidate routing shortcuts that point at dead or migrated peers —
     a migrant serves a different region now, so a stale hit would
     misroute (correct but slower); a dead hit would eat a timeout. *)
  let stale p = (not (Net.is_alive net p)) || List.mem p !moved_ids in
  let dropped =
    List.fold_left
      (fun acc (nd : Node.t) ->
        if Overlay.alive ov nd.Node.id then
          acc + Unistore_cache.Shortcuts.invalidate_where nd.Node.shortcuts ~f:stale
        else acc)
      0 (Overlay.nodes ov)
  in
  (match Overlay.metrics ov with
  | Some m ->
    Unistore_obs.Metrics.incr m "fault.repair.rounds";
    if adopted > 0 then Unistore_obs.Metrics.incr m ~by:adopted "fault.repair.adopted";
    if !moved > 0 then Unistore_obs.Metrics.incr m ~by:!moved "fault.repair.moved";
    if dropped > 0 then Unistore_obs.Metrics.incr m ~by:dropped "cache.shortcut.invalidate"
  | None -> ());
  {
    adopted;
    moved = !moved;
    resynced_bytes = !resynced;
    shortcuts_dropped = dropped;
    unrepaired = !unrepaired;
  }

let pp_report fmt r =
  Format.fprintf fmt "adopted=%d moved=%d resynced=%dB shortcuts_dropped=%d unrepaired=%d"
    r.adopted r.moved r.resynced_bytes r.shortcuts_dropped r.unrepaired
