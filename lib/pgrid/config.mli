(** P-Grid overlay parameters. *)

type t = {
  refs_per_level : int;
      (** routing references kept per trie level (fan-out of the routing
          table); P-Grid keeps several for fault tolerance *)
  replication : int;  (** desired number of peers per leaf (replica group size) *)
  max_depth : int;  (** maximum trie depth (paths never grow beyond this) *)
  timeout_ms : float;  (** request timeout before retry / partial completion *)
  retries : int;  (** end-to-end retries for lookups and inserts *)
  retry_backoff : float;
      (** exponential backoff base: retry [n] waits
          [timeout_ms * retry_backoff^n]; [1.0] = fixed interval *)
  retry_jitter : float;
      (** uniform jitter fraction applied to each retry timeout
          ([+-retry_jitter * timeout]); [0.0] = deterministic timeouts,
          desynchronizes retry storms otherwise *)
  failover : bool;
      (** when every routing reference for the next hop is dead, fail
          over to a live replica of one of them (gossiped replica-group
          membership doubles as a backup routing table) and learn it as
          a new reference *)
  proximity_routing : bool;
      (** when true, forward to the ref with the lowest base latency
          (topology-aware routing); otherwise pick uniformly *)
  gossip_fanout : int;
      (** replicas contacted per rumor-spreading round for updates *)
  max_hops : int;
      (** messages are dropped beyond this hop count (loop protection in
          not-yet-converged overlays) *)
  shortcut_capacity : int;
      (** routing-shortcut cache entries kept per peer (learned
          region → peer links consulted before greedy routing);
          0 disables shortcut caching *)
  bulk_insert : bool;
      (** batch inserts into [InsertBatch] messages that split
          shower-style down the trie, with per-region [AckBatch]
          replies; [false] = one routed message per item *)
  range_aggregation : bool;
      (** converge-cast shower [RangeHit] replies up the split tree
          (per-hop merging, bounded fan-in, timeout flush); [false] =
          every touched peer replies directly to the origin *)
  multi_probe : bool;
      (** group bind-join lookups by responsible region into
          [MultiLookup]/[MultiFound] pairs; [false] = one [Lookup] per
          key *)
  agg_fanin : int;
      (** children buffered per range-aggregation node; additional
          children reply directly to the origin *)
  agg_flush_ms : float;
      (** aggregation buffers flush partial merges after this long, so
          loss/churn below still terminates (must be well under
          [timeout_ms]) *)
  adaptive_timeout : bool;
      (** derive retry deadlines from per-peer/per-class EWMA latency
          tracking ({!Rtt}) instead of the fixed [timeout_ms]; the fixed
          value remains the cold-start fallback and the upper clamp *)
  min_timeout_ms : float;
      (** lower clamp for adaptive retry deadlines — keeps a
          fast-converging estimate from retrying into its own tail *)
  hot_replication : bool;
      (** let {!Balance.round} spawn boost replicas for regions whose
          gossiped load stands out (see [hot_factor]) and retire them
          when the region cools *)
  hot_factor : float;
      (** a region is hot when its gossiped per-round load reaches
          [hot_factor] times the mean over reporting regions *)
  hot_min_load : int;
      (** absolute per-round load floor below which a region is never
          considered hot (keeps idle deployments from boosting noise) *)
  hot_max_boosts : int;  (** boost replicas allowed per hot region *)
  spread_load : bool;
      (** let shortcut caches hold several peers per region and rotate
          between them, so origins spread traffic across an owner's
          replicas and boosts instead of pinning the first responder *)
  store_backend : Store_intf.backend;
      (** per-peer store implementation (see {!Store}): [Hash] (default)
          and [Packed] are in-memory; [Log { dir }] persists each peer's
          store as an append-only file under [dir], enabling
          crash-restart with log replay ({!Overlay.crash}) *)
}

val default : t
