(** P-Grid overlay parameters. *)

type t = {
  refs_per_level : int;
      (** routing references kept per trie level (fan-out of the routing
          table); P-Grid keeps several for fault tolerance *)
  replication : int;  (** desired number of peers per leaf (replica group size) *)
  max_depth : int;  (** maximum trie depth (paths never grow beyond this) *)
  timeout_ms : float;  (** request timeout before retry / partial completion *)
  retries : int;  (** end-to-end retries for lookups and inserts *)
  proximity_routing : bool;
      (** when true, forward to the ref with the lowest base latency
          (topology-aware routing); otherwise pick uniformly *)
  gossip_fanout : int;
      (** replicas contacted per rumor-spreading round for updates *)
  max_hops : int;
      (** messages are dropped beyond this hop count (loop protection in
          not-yet-converged overlays) *)
  shortcut_capacity : int;
      (** routing-shortcut cache entries kept per peer (learned
          region → peer links consulted before greedy routing);
          0 disables shortcut caching *)
}

val default : t
