(* Compressed in-memory store: dictionary-encoded keys + struct-of-
   arrays item columns over a shared byte arena, with a lazily rebuilt
   sorted slot index for scans (after "Compressed Vertical Partitioning
   for Full-In-Memory RDF Management", PAPERS.md).

   What compresses, and why:
   - Index keys repeat heavily (every duplicate of an (attribute,
     value) pair shares one encoded key, Zipf-skewed in practice), so
     keys are interned once into the arena and items carry an 8-byte
     key id instead of a heap string.
   - Item ids and payloads are unique per item, so interning them
     would only add dictionary overhead; they are appended to the same
     arena as raw byte spans — no per-string header word, padding or
     pointer cell, just the bytes plus (offset, length) ints.
   - An item is then a row across flat int columns instead of a boxed
     record + list cell in a balanced map.
   The per-item point index is a per-key singly-linked slot chain
   ([head]/[next] int arrays) rather than a hashtable, trading O(dups)
   id lookups on put/remove for zero per-item index cells. [stats]
   sums this layout deterministically; test_store.ml asserts it lands
   strictly below {!Backend_hash.stats} on a 100k Zipf load and
   BENCH_store.json records the margin.

   Reads that need key order go through [sorted]: live slots ordered by
   (key ascending, insertion sequence descending — the newest-first
   order of the {!Store_intf} contract), rebuilt lazily on the first
   ordered scan after an insert, then binary-searched for range/prefix
   lookups. Point lookups ([find]) walk the key's chain instead (chains
   are newest-first by construction: inserts push at the head and LWW
   updates stay in place). Removals tombstone and unlink the slot;
   slots compact when tombstones dominate. Arena bytes of overwritten
   payloads and the key dictionary are only reclaimed by {!clear} —
   interned data outliving its items is the classic dictionary-store
   trade-off. *)

open Store_intf

type t = {
  dict : (string, int) Hashtbl.t;  (* key -> key id *)
  mutable arena : Buffer.t;  (* key terms + raw id/payload spans *)
  (* key id -> arena span, and first slot of its chain (-1 = none) *)
  mutable k_off : int array;
  mutable k_len : int array;
  mutable head : int array;
  mutable n_keys : int;
  (* item columns, slot-indexed *)
  mutable key_t : int array;
  mutable id_off : int array;
  mutable id_len : int array;
  mutable pay_off : int array;
  mutable pay_len : int array;
  mutable ver : int array;
  mutable seq : int array;
  mutable next : int array;  (* same-key chain link, -1 = end *)
  mutable live : Bytes.t;
  mutable n_slots : int;  (* slots used, tombstones included *)
  mutable n_live : int;
  mutable next_seq : int;
  mutable sorted : int array;  (* slots by (key asc, seq desc); may hold tombstones *)
  mutable sorted_valid : bool;
}

let create () =
  {
    dict = Hashtbl.create 64;
    arena = Buffer.create 256;
    k_off = Array.make 64 0;
    k_len = Array.make 64 0;
    head = Array.make 64 (-1);
    n_keys = 0;
    key_t = Array.make 64 0;
    id_off = Array.make 64 0;
    id_len = Array.make 64 0;
    pay_off = Array.make 64 0;
    pay_len = Array.make 64 0;
    ver = Array.make 64 0;
    seq = Array.make 64 0;
    next = Array.make 64 (-1);
    live = Bytes.make 64 '\000';
    n_slots = 0;
    n_live = 0;
    next_seq = 0;
    sorted = [||];
    sorted_valid = true;
  }

(* ------------------------------------------------------------------ *)
(* Arena spans                                                         *)

let span t off len = Buffer.sub t.arena off len

let span_equal t off len s =
  len = String.length s
  &&
  let rec go i = i = len || (Buffer.nth t.arena (off + i) = String.unsafe_get s i && go (i + 1)) in
  go 0

let add_span t s =
  let off = Buffer.length t.arena in
  Buffer.add_string t.arena s;
  off

let grow_int fill a n =
  let b = Array.make n fill in
  Array.blit a 0 b 0 (Array.length a);
  b

let intern_key t s =
  match Hashtbl.find_opt t.dict s with
  | Some id -> id
  | None ->
    if t.n_keys = Array.length t.k_off then begin
      let ncap = max 64 (2 * t.n_keys) in
      t.k_off <- grow_int 0 t.k_off ncap;
      t.k_len <- grow_int 0 t.k_len ncap;
      t.head <- grow_int (-1) t.head ncap
    end;
    let id = t.n_keys in
    t.k_off.(id) <- add_span t s;
    t.k_len.(id) <- String.length s;
    t.head.(id) <- -1;
    Hashtbl.add t.dict s id;
    t.n_keys <- id + 1;
    id

(* Compare an interned key against a query string, byte-wise over the
   arena — no extraction on the binary-search hot path. *)
let compare_key t kid s =
  let off = t.k_off.(kid) and len = t.k_len.(kid) in
  let slen = String.length s in
  let n = min len slen in
  let rec go i =
    if i = n then Int.compare len slen
    else
      let c = Char.compare (Buffer.nth t.arena (off + i)) (String.unsafe_get s i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let key_has_prefix t kid p =
  let off = t.k_off.(kid) in
  let plen = String.length p in
  t.k_len.(kid) >= plen
  &&
  let rec go i = i = plen || (Buffer.nth t.arena (off + i) = String.unsafe_get p i && go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Slots and the sorted view                                           *)

let ensure_slot_cap t =
  if t.n_slots = Array.length t.key_t then begin
    let ncap = max 64 (2 * t.n_slots) in
    t.key_t <- grow_int 0 t.key_t ncap;
    t.id_off <- grow_int 0 t.id_off ncap;
    t.id_len <- grow_int 0 t.id_len ncap;
    t.pay_off <- grow_int 0 t.pay_off ncap;
    t.pay_len <- grow_int 0 t.pay_len ncap;
    t.ver <- grow_int 0 t.ver ncap;
    t.seq <- grow_int 0 t.seq ncap;
    t.next <- grow_int (-1) t.next ncap;
    let b = Bytes.make ncap '\000' in
    Bytes.blit t.live 0 b 0 t.n_slots;
    t.live <- b
  end

let ensure_sorted t =
  if not t.sorted_valid then begin
    let slots = Array.make t.n_live 0 in
    let j = ref 0 in
    for s = 0 to t.n_slots - 1 do
      if Bytes.get t.live s = '\001' then begin
        slots.(!j) <- s;
        incr j
      end
    done;
    (* Key strings extracted only for the sort's lifetime. *)
    let tagged =
      Array.map (fun s -> (span t t.k_off.(t.key_t.(s)) t.k_len.(t.key_t.(s)), t.seq.(s), s)) slots
    in
    Array.sort
      (fun (ka, sa, _) (kb, sb, _) ->
        let c = String.compare ka kb in
        if c <> 0 then c else Int.compare sb sa)
      tagged;
    t.sorted <- Array.map (fun (_, _, s) -> s) tagged;
    t.sorted_valid <- true
  end

(* First index in [sorted] whose key is >= [key]. *)
let lower_bound t key =
  let lo = ref 0 and hi = ref (Array.length t.sorted) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_key t t.key_t.(t.sorted.(mid)) key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let item_of t s =
  {
    key = span t t.k_off.(t.key_t.(s)) t.k_len.(t.key_t.(s));
    item_id = span t t.id_off.(s) t.id_len.(s);
    payload = span t t.pay_off.(s) t.pay_len.(s);
    version = t.ver.(s);
  }

(* ------------------------------------------------------------------ *)
(* Compaction                                                          *)

let compact t =
  let j = ref 0 in
  for s = 0 to t.n_slots - 1 do
    if Bytes.get t.live s = '\001' then begin
      let d = !j in
      t.key_t.(d) <- t.key_t.(s);
      t.id_off.(d) <- t.id_off.(s);
      t.id_len.(d) <- t.id_len.(s);
      t.pay_off.(d) <- t.pay_off.(s);
      t.pay_len.(d) <- t.pay_len.(s);
      t.ver.(d) <- t.ver.(s);
      t.seq.(d) <- t.seq.(s);
      incr j
    end
  done;
  Bytes.fill t.live 0 (Bytes.length t.live) '\000';
  Bytes.fill t.live 0 !j '\001';
  t.n_slots <- !j;
  (* Rebuild the per-key chains over the surviving slots. Chain order
     only matters for lookups, but walking slots in ascending order
     pushes larger seqs onto chain heads last, restoring newest-first
     heads as a bonus. *)
  Array.fill t.head 0 t.n_keys (-1);
  for s = 0 to t.n_slots - 1 do
    let kid = t.key_t.(s) in
    t.next.(s) <- t.head.(kid);
    t.head.(kid) <- s
  done;
  t.sorted_valid <- false

let maybe_compact t =
  let dead = t.n_slots - t.n_live in
  if dead > 64 && dead > t.n_live then compact t

(* ------------------------------------------------------------------ *)
(* Store_intf.S                                                        *)

let find_slot t kid item_id =
  let rec go s =
    if s < 0 then -1
    else if span_equal t t.id_off.(s) t.id_len.(s) item_id then s
    else go t.next.(s)
  in
  go t.head.(kid)

let put t (i : item) =
  let kid = intern_key t i.key in
  let s = find_slot t kid i.item_id in
  if s >= 0 then
    if i.version >= t.ver.(s) then begin
      (* LWW in place: the slot (and its seq) survives, so the item
         keeps its scan position (ordering contract). The overwritten
         payload's arena bytes leak until [clear]. *)
      t.pay_off.(s) <- add_span t i.payload;
      t.pay_len.(s) <- String.length i.payload;
      t.ver.(s) <- i.version;
      true
    end
    else false
  else begin
    ensure_slot_cap t;
    let s = t.n_slots in
    t.key_t.(s) <- kid;
    t.id_off.(s) <- add_span t i.item_id;
    t.id_len.(s) <- String.length i.item_id;
    t.pay_off.(s) <- add_span t i.payload;
    t.pay_len.(s) <- String.length i.payload;
    t.ver.(s) <- i.version;
    t.seq.(s) <- t.next_seq;
    t.next_seq <- t.next_seq + 1;
    Bytes.set t.live s '\001';
    t.next.(s) <- t.head.(kid);
    t.head.(kid) <- s;
    t.n_slots <- t.n_slots + 1;
    t.n_live <- t.n_live + 1;
    t.sorted_valid <- false;
    true
  end

let unlink t kid s =
  if t.head.(kid) = s then t.head.(kid) <- t.next.(s)
  else begin
    let rec go p =
      if p >= 0 then
        if t.next.(p) = s then t.next.(p) <- t.next.(s) else go t.next.(p)
    in
    go t.head.(kid)
  end

let remove t ~key ~item_id =
  match Hashtbl.find_opt t.dict key with
  | None -> ()
  | Some kid ->
    let s = find_slot t kid item_id in
    if s >= 0 then begin
      unlink t kid s;
      Bytes.set t.live s '\000';
      t.n_live <- t.n_live - 1;
      maybe_compact t
    end

(* Chains are newest-first (inserts push at the head, updates stay in
   place) — exactly the within-key order of the contract. *)
let find t key =
  match Hashtbl.find_opt t.dict key with
  | None -> []
  | Some kid ->
    let rec go s acc = if s < 0 then List.rev acc else go t.next.(s) (item_of t s :: acc) in
    go t.head.(kid) []

let range t ~lo ~hi =
  if String.compare lo hi > 0 then []
  else begin
    ensure_sorted t;
    let n = Array.length t.sorted in
    let i = ref (lower_bound t lo) in
    let acc = ref [] in
    let last_kid = ref (-1) in
    let last_in = ref false in
    let within = ref true in
    while !within && !i < n do
      let s = t.sorted.(!i) in
      let kid = t.key_t.(s) in
      if kid <> !last_kid then begin
        last_kid := kid;
        last_in := compare_key t kid hi <= 0
      end;
      if !last_in then begin
        if Bytes.get t.live s = '\001' then acc := item_of t s :: !acc;
        incr i
      end
      else within := false
    done;
    List.rev !acc
  end

let with_prefix t prefix =
  ensure_sorted t;
  let n = Array.length t.sorted in
  let i = ref (lower_bound t prefix) in
  let acc = ref [] in
  let last_kid = ref (-1) in
  let last_in = ref false in
  let within = ref true in
  while !within && !i < n do
    let s = t.sorted.(!i) in
    let kid = t.key_t.(s) in
    if kid <> !last_kid then begin
      last_kid := kid;
      last_in := key_has_prefix t kid prefix
    end;
    if !last_in then begin
      if Bytes.get t.live s = '\001' then acc := item_of t s :: !acc;
      incr i
    end
    else within := false
  done;
  List.rev !acc

let size t = t.n_live

let iter t f =
  ensure_sorted t;
  Array.iter (fun s -> if Bytes.get t.live s = '\001' then f (item_of t s)) t.sorted

let to_list t =
  ensure_sorted t;
  Array.fold_right
    (fun s acc -> if Bytes.get t.live s = '\001' then item_of t s :: acc else acc)
    t.sorted []

let filter_partition t pred =
  ensure_sorted t;
  let removed = ref [] in
  Array.iter
    (fun s ->
      if Bytes.get t.live s = '\001' then begin
        let it = item_of t s in
        if not (pred it) then begin
          unlink t t.key_t.(s) s;
          Bytes.set t.live s '\000';
          t.n_live <- t.n_live - 1;
          removed := it :: !removed
        end
      end)
    t.sorted;
  maybe_compact t;
  List.rev !removed

let digest t =
  ensure_sorted t;
  Array.fold_right
    (fun s acc ->
      if Bytes.get t.live s = '\001' then
        ( span t t.k_off.(t.key_t.(s)) t.k_len.(t.key_t.(s)),
          span t t.id_off.(s) t.id_len.(s),
          t.ver.(s) )
        :: acc
      else acc)
    t.sorted []

let clear t =
  Hashtbl.reset t.dict;
  t.arena <- Buffer.create 256;
  t.k_off <- Array.make 64 0;
  t.k_len <- Array.make 64 0;
  t.head <- Array.make 64 (-1);
  t.n_keys <- 0;
  t.key_t <- Array.make 64 0;
  t.id_off <- Array.make 64 0;
  t.id_len <- Array.make 64 0;
  t.pay_off <- Array.make 64 0;
  t.pay_len <- Array.make 64 0;
  t.ver <- Array.make 64 0;
  t.seq <- Array.make 64 0;
  t.next <- Array.make 64 (-1);
  t.live <- Bytes.make 64 '\000';
  t.n_slots <- 0;
  t.n_live <- 0;
  t.next_seq <- 0;
  t.sorted <- [||];
  t.sorted_valid <- true

(* Same accounting model as {!Backend_hash.stats}: deterministic heap
   estimates, not GC measurements. Arena data, the key-dictionary
   columns and cells, the eight int columns and liveness bytes (all at
   capacity — array slack is a real cost), and the sorted view. *)
let stats t =
  let bytes =
    24 + Buffer.length t.arena
    + (8 * 3 * Array.length t.k_off)
    + (8 * 8 * Array.length t.key_t)
    + (Bytes.length t.live + 24)
    + ((8 * Array.length t.sorted) + 24)
    + (40 * t.n_keys)
  in
  { bytes; triples = t.n_live }
