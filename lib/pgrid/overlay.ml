module Bitkey = Unistore_util.Bitkey
module Rng = Unistore_util.Rng
module Metrics = Unistore_obs.Metrics
module Histogram = Unistore_obs.Histogram
module Shortcuts = Unistore_cache.Shortcuts
module Statcache = Unistore_cache.Statcache

type result = {
  items : Store.item list;
  hops : int;
  peers_hit : int;
  complete : bool;
  completeness : float;
      (* coverage estimate in [0,1]: regions reached / regions addressed
         (answered tokens for showers, acked keys for batches, all or
         nothing for single-destination requests); 1.0 iff [complete] *)
  latency : float;
}

type pending =
  | Psingle of {
      op : string;  (* metric label: lookup/insert/update/delete *)
      origin : int;
      resend : unit -> unit;
      mutable attempts : int;
      mutable via : int option;
          (* the peer a routing shortcut forwarded to, if one was used:
             a timeout invalidates that peer's shortcut entries before
             the retry falls back to greedy routing *)
      started : float;
      k : result -> unit;
    }
  | Pmulti of {
      op : string;  (* metric label: range/prefix/broadcast *)
      origin : int;
      expected : (int, unit) Hashtbl.t;  (* message tokens announced as forwards *)
      received : (int, unit) Hashtbl.t;  (* tokens whose hit arrived *)
      mutable missing : int;  (* |expected \ received| *)
      mutable peers : (int, unit) Hashtbl.t;  (* distinct peers that reported *)
      mutable items : Store.item list;
      mutable hops : int;
      mutable resend : (unit -> unit) option;  (* re-issue the whole shower *)
      mutable attempts : int;
      mutable wave_floor : int;
          (* tokens below this belong to abandoned waves: a retry resets
             the termination accounting and only counts tokens minted by
             the new wave, so stragglers from a half-dead old wave cannot
             wedge completion (their rows are still salvaged) *)
      started : float;
      k : result -> unit;
    }
  | Pbatch of {
      op : string;  (* metric label: bulk-insert/multi-lookup *)
      origin : int;
      total : int;  (* batch size, for the acked/total coverage estimate *)
      unacked : (string, unit) Hashtbl.t;  (* keys no region acked yet *)
      resend : unit -> unit;  (* selective retransmit of unacked keys *)
      mutable attempts : int;
      mutable hops : int;
      mutable regions : int;  (* per-region ack messages received *)
      mutable items : Store.item list;
      on_ack : string -> Store.item list -> unit;  (* per-key payload *)
      started : float;
      k : result -> unit;
    }

(* One in-network aggregation buffer for a shower range: the interior
   node that spawned [waiting] merges those children's hits into its own
   before replying to [agg_parent]. Shared (aliased) across the entries
   of [t.aggs] for its waiting tokens. *)
type agg = {
  agg_rid : int;
  agg_token : int;  (* the token echoed upward by the merged hit *)
  agg_parent : int;
  agg_origin : int;
  agg_owner : int;
  mutable waiting : int list;  (* child tokens not yet merged *)
  mutable carried : int list;  (* tokens announced upward unmerged *)
  mutable agg_items : Store.item list;
  mutable agg_hops : int;
  mutable flushed : bool;
}

type t = {
  sim : Sim.t;
  net : Message.t Net.t;
  mutable config : Config.t;
  rng : Rng.t;
  (* Node arena: dense array indexed by peer id (ids are minted 0..n-1
     by Build/join). Replaces an id-keyed hashtable so the dispatcher
     and routing helpers resolve peers with one array probe. *)
  mutable node_arena : Node.t option array;
  mutable n_nodes : int;
  mutable max_node_id : int;
  (* Ascending node list, rebuilt lazily: gossip rounds walk it once per
     round; the arena only grows, so adds just invalidate. *)
  mutable nodes_cache : Node.t list option;
  pending : (int, pending) Hashtbl.t;
  aggs : (int, agg) Hashtbl.t;  (* child token -> its parent's buffer *)
  mutable next_rid : int;
  mutable metrics : Metrics.t option;
  mutable read_observer : (origin:int -> Store.item list -> unit) option;
}

let create sim ~latency ~rng ?(drop = 0.0) ~config () =
  let rng = Rng.split rng in
  let net = Net.create sim ~latency ~rng ~drop ~size:Message.size ~kind:Message.kind ~corr:Message.corr () in
  {
    sim;
    net;
    config;
    rng;
    node_arena = [||];
    n_nodes = 0;
    max_node_id = -1;
    nodes_cache = None;
    pending = Hashtbl.create 64;
    aggs = Hashtbl.create 64;
    next_rid = 0;
    metrics = None;
    read_observer = None;
  }

let sim t = t.sim
let net t = t.net
let config t = t.config
let rng t = t.rng

let set_metrics t m =
  t.metrics <- m;
  Net.set_metrics t.net m

let metrics t = t.metrics
let set_read_observer t f = t.read_observer <- f

(* Histogram bucket ladders chosen for the quantities' natural ranges:
   hop counts are O(log n) (unit buckets resolve them exactly), retries
   are bounded by [config.retries], fan-out can reach the full overlay. *)
let hop_buckets = Histogram.linear ~lo:0.0 ~step:1.0 ~n:33
let retry_buckets = Histogram.linear ~lo:0.0 ~step:1.0 ~n:9
let fanout_buckets = [ 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024.; 2048. ]

let find_node t id =
  if id >= 0 && id <= t.max_node_id then t.node_arena.(id) else None

let node t id =
  match find_node t id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Overlay.node: unknown peer %d" id)

let nodes t =
  match t.nodes_cache with
  | Some l -> l
  | None ->
    let l = ref [] in
    for id = t.max_node_id downto 0 do
      match t.node_arena.(id) with Some n -> l := n :: !l | None -> ()
    done;
    t.nodes_cache <- Some !l;
    !l

let node_count t = t.n_nodes

let depth t =
  let d = ref 0 in
  for id = 0 to t.max_node_id do
    match t.node_arena.(id) with
    | Some n -> d := max !d (Bitkey.length n.Node.path)
    | None -> ()
  done;
  !d

let responsible t key = List.filter (fun n -> Node.covers n key) (nodes t)

let kill t id = Net.kill t.net id
let revive t id = Net.revive t.net id
let alive t id = Net.is_alive t.net id

(* Swap the live parameter set (the traffic engine applies its
   balancing arm to an already-built deployment this way). Shortcut
   spread mode is per-node cache state, so re-propagate it. *)
let set_config t config =
  t.config <- config;
  List.iter
    (fun n -> Shortcuts.set_spread n.Node.shortcuts config.Config.spread_load)
    (nodes t)

let fresh_rid t =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  rid

(* ------------------------------------------------------------------ *)
(* Key intervals: inclusive lo, exclusive optional hi                   *)

let interval_intersect (lo1, hi1) (lo2, hi2) =
  let lo = if String.compare lo1 lo2 >= 0 then lo1 else lo2 in
  let hi =
    match (hi1, hi2) with
    | None, h | h, None -> h
    | Some a, Some b -> Some (if String.compare a b <= 0 then a else b)
  in
  match hi with Some h when String.compare lo h >= 0 -> None | _ -> Some (lo, hi)

(* Exclusive upper bound capturing all keys <= hi (no byte string lies
   strictly between hi and hi ^ "\x00"). *)
let after_inclusive hi = Some (hi ^ "\x00")

(* ------------------------------------------------------------------ *)
(* Result assembly                                                     *)

let dedupe_items items =
  let tbl = Hashtbl.create (List.length items) in
  List.iter
    (fun (i : Store.item) ->
      let k = (i.key, i.item_id) in
      match Hashtbl.find_opt tbl k with
      | Some (j : Store.item) when j.version >= i.version -> ()
      | _ -> Hashtbl.replace tbl k i)
    items;
  Hashtbl.fold (fun _ i acc -> i :: acc) tbl []
  |> List.sort (fun (a : Store.item) b ->
         match String.compare a.key b.key with 0 -> String.compare a.item_id b.item_id | c -> c)

let record_single t (op : string) ~hops ~attempts ~latency ~complete =
  match t.metrics with
  | None -> ()
  | Some m ->
    Metrics.observe m ~buckets:hop_buckets ("overlay." ^ op ^ ".hops") (float_of_int hops);
    Metrics.observe m ~buckets:retry_buckets ("overlay." ^ op ^ ".retries") (float_of_int attempts);
    Metrics.observe m ("overlay." ^ op ^ ".latency_ms") latency;
    Metrics.incr m ("overlay." ^ op ^ if complete then ".ok" else ".incomplete")

let record_multi t (op : string) ~hops ~peers_hit ~latency ~complete =
  match t.metrics with
  | None -> ()
  | Some m ->
    Metrics.observe m ~buckets:hop_buckets ("overlay." ^ op ^ ".hops") (float_of_int hops);
    Metrics.observe m ~buckets:fanout_buckets ("overlay." ^ op ^ ".fanout")
      (float_of_int peers_hit);
    Metrics.observe m ("overlay." ^ op ^ ".latency_ms") latency;
    Metrics.incr m ("overlay." ^ op ^ if complete then ".ok" else ".incomplete")

let cache_incr t ?by name =
  match t.metrics with Some m -> Metrics.incr m ?by name | None -> ()

(* An operation is finishing without full coverage: leave an explicit
   partial-result marker in the trace (correlated to the request id) so
   trace linting can tell "crash handled by graceful degradation" from
   "crash silently swallowed". *)
let mark_partial t ~rid ~origin =
  cache_incr t "fault.partial";
  match Net.trace t.net with
  | Some tr -> Trace.mark tr ~corr:rid ~time:(Sim.now t.sim) ~src:origin ~kind:"fault.partial" ()
  | None -> ()

(* Crash a peer: unlike {!kill} (which merely stops message delivery
   and keeps state intact for {!revive}), a crash also loses the
   peer's volatile state — the whole store for in-memory backends, the
   torn log tail (a [keep_frac] fraction of log bytes survives) for the
   log backend, and any boost-replica copy. The peer stays dead until
   {!revive}; on revival, anti-entropy/{!Repair.round} reconcile the
   lost delta from the replica group. Returns the number of items that
   survived locally (log replay). *)
let crash t ?keep_frac id =
  let n = node t id in
  Net.kill t.net id;
  Node.clear_hot n;
  let recovered = Store.crash_restart ?keep_frac n.Node.store in
  Node.bump_epoch n;
  cache_incr t "fault.crash";
  recovered

(* Export per-backend storage footprint as gauges, summed over alive
   peers: [store.bytes] (the deterministic memory-model estimate, same
   counter the compression tests assert on), [store.items], and
   [store.log_bytes] (on-disk segment bytes; 0 unless the log backend
   is active). Called by benchmarks before snapshotting metrics. *)
let refresh_store_gauges t =
  match t.metrics with
  | None -> ()
  | Some m ->
    let bytes = ref 0 and items = ref 0 and log_bytes = ref 0 in
    List.iter
      (fun n ->
        if Net.is_alive t.net n.Node.id then begin
          let s = Store.stats n.Node.store in
          bytes := !bytes + s.Store.bytes;
          items := !items + s.Store.triples;
          log_bytes := !log_bytes + Store.log_bytes n.Node.store
        end)
      (nodes t);
    Metrics.set_gauge m "store.bytes" (float_of_int !bytes);
    Metrics.set_gauge m "store.items" (float_of_int !items);
    Metrics.set_gauge m "store.log_bytes" (float_of_int !log_bytes)

let finish_single t rid ~items ~hops ~complete =
  match Hashtbl.find_opt t.pending rid with
  | Some (Psingle p) ->
    Hashtbl.remove t.pending rid;
    let latency = Sim.now t.sim -. p.started in
    record_single t p.op ~hops ~attempts:p.attempts ~latency ~complete;
    if not complete then mark_partial t ~rid ~origin:p.origin;
    let items = dedupe_items items in
    (match t.read_observer with
    | Some f when complete && String.equal p.op "lookup" -> f ~origin:p.origin items
    | _ -> ());
    p.k
      {
        items;
        hops;
        peers_hit = 1;
        complete;
        completeness = (if complete then 1.0 else 0.0);
        latency;
      }
  | _ -> ()

let finish_multi t rid ~complete =
  match Hashtbl.find_opt t.pending rid with
  | Some (Pmulti p) ->
    Hashtbl.remove t.pending rid;
    let latency = Sim.now t.sim -. p.started in
    let peers_hit = Hashtbl.length p.peers in
    record_multi t p.op ~hops:p.hops ~peers_hit ~latency ~complete;
    if complete && t.config.adaptive_timeout then (
      match find_node t p.origin with
      | Some me -> Rtt.observe me.Node.rtt ~cls:p.op latency
      | None -> ());
    if not complete then mark_partial t ~rid ~origin:p.origin;
    (* Coverage = answered tokens / announced tokens: each token stands
       for one addressed region of the shower split tree. *)
    let expected = Hashtbl.length p.expected in
    let completeness =
      if complete || expected = 0 then if complete then 1.0 else 0.0
      else float_of_int (expected - max 0 p.missing) /. float_of_int expected
    in
    p.k { items = dedupe_items p.items; hops = p.hops; peers_hit; complete; completeness; latency }
  | _ -> ()

(* Termination detection is order-independent: every Range/Probe message
   carries a unique token; its receiver's hit echoes that token and names
   the tokens of the messages it forwarded in turn. The operation is done
   when every announced token has been answered — a grandchild's hit
   racing past its parent's (easy under heavy-tailed wide-area latencies)
   cannot end the operation early, and a peer participating several times
   (router now, processor later, as in sequential traversals) is counted
   per message. *)
let deliver_hit t rid ~from ~token ~items ~targets ~hops =
  match Hashtbl.find_opt t.pending rid with
  | Some (Pmulti p) when token < p.wave_floor ->
    (* Straggler from an abandoned wave: salvage its rows, but keep its
       tokens out of the live wave's termination accounting. *)
    Hashtbl.replace p.peers from ();
    p.items <- List.rev_append items p.items;
    p.hops <- max p.hops hops
  | Some (Pmulti p) ->
    Hashtbl.replace p.peers from ();
    if not (Hashtbl.mem p.received token) then begin
      Hashtbl.replace p.received token ();
      if Hashtbl.mem p.expected token then p.missing <- p.missing - 1
      else Hashtbl.replace p.expected token ()
    end;
    List.iter
      (fun q ->
        if not (Hashtbl.mem p.expected q) then begin
          Hashtbl.replace p.expected q ();
          if not (Hashtbl.mem p.received q) then p.missing <- p.missing + 1
        end)
      targets;
    p.items <- List.rev_append items p.items;
    p.hops <- max p.hops hops;
    if p.missing <= 0 then finish_multi t rid ~complete:true
  | _ -> ()

(* The base deadline for one attempt of [cls] issued by [origin]: the
   origin's EWMA latency estimate ({!Rtt}) when adaptive timeouts are
   on and warm — sharpest via the shortcut target [via] when one
   carried the request — clamped into [min_timeout_ms, timeout_ms].
   Cold trackers (and adaptive off) fall back to the fixed
   [timeout_ms], so this degrades to the classic behavior. *)
let deadline_base t ~origin ~cls ~via =
  if not t.config.adaptive_timeout then t.config.timeout_ms
  else
    match find_node t origin with
    | Some me ->
      Rtt.deadline me.Node.rtt ?peer:via ~cls ~fallback:t.config.timeout_ms
        ~min_ms:t.config.min_timeout_ms ~max_ms:t.config.timeout_ms ()
    | None -> t.config.timeout_ms

(* Retry [n] waits [base * retry_backoff^n], up to [retry_jitter]
   fractional jitter either way. Exponential backoff rides out multi-wave
   churn (a replica group wholly down now is likely partly back later);
   jitter desynchronizes the retry storm after a crash wave. *)
let retry_delay t ~base ~attempt =
  let d = base *. (t.config.retry_backoff ** float_of_int attempt) in
  let j = t.config.retry_jitter in
  if j <= 0.0 then d else d *. (1.0 +. Rng.float_in t.rng (-.j) j)

(* Feed one successfully completed exchange into the origin's latency
   tracker. Give-ups are never observed (Karn's rule), so the estimate
   is not dragged up by its own timeouts. *)
let observe_rtt t (me : Node.t) rid ~peer =
  if t.config.adaptive_timeout then
    match Hashtbl.find_opt t.pending rid with
    | Some (Psingle p) ->
      Rtt.observe me.Node.rtt ~peer ~cls:p.op (Sim.now t.sim -. p.started)
    | Some (Pbatch _) | Some (Pmulti _) | None -> ()

let arm_single_timeout t rid =
  let rec arm ~attempt =
    let base =
      match Hashtbl.find_opt t.pending rid with
      | Some (Psingle p) -> deadline_base t ~origin:p.origin ~cls:p.op ~via:p.via
      | _ -> t.config.timeout_ms
    in
    Sim.schedule t.sim ~delay:(retry_delay t ~base ~attempt) (fun () ->
        match Hashtbl.find_opt t.pending rid with
        | Some (Psingle p) ->
          if p.attempts < t.config.retries then begin
            p.attempts <- p.attempts + 1;
            (match t.metrics with
            | Some m ->
              Metrics.incr m "overlay.resend";
              Metrics.incr m "retry.attempt"
            | None -> ());
            (* If a shortcut carried this request, distrust its target:
               drop that peer's entries so the retry routes greedily. *)
            (match p.via with
            | Some peer ->
              (match find_node t p.origin with
              | Some me ->
                let n = Shortcuts.invalidate_peer me.Node.shortcuts peer in
                if n > 0 then cache_incr t ~by:n "cache.shortcut.invalidate"
              | None -> ());
              p.via <- None
            | None -> ());
            p.resend ();
            arm ~attempt:p.attempts
          end
          else begin
            cache_incr t "retry.giveup";
            finish_single t rid ~items:[] ~hops:0 ~complete:false
          end
        | _ -> ())
  in
  arm ~attempt:0

(* Shower timeouts retry like single requests do, but a shower has no
   single destination to resend to: the retry abandons the old wave's
   token accounting wholesale and re-issues the operation from the
   origin, whose routing (with failover) now steers around the peers
   that ate the first wave. *)
let arm_multi_timeout t rid =
  let rec arm ~attempt =
    let base =
      match Hashtbl.find_opt t.pending rid with
      | Some (Pmulti p) -> deadline_base t ~origin:p.origin ~cls:p.op ~via:None
      | _ -> t.config.timeout_ms
    in
    Sim.schedule t.sim ~delay:(retry_delay t ~base ~attempt) (fun () ->
        match Hashtbl.find_opt t.pending rid with
        | Some (Pmulti p) -> (
          match p.resend with
          | Some resend when p.attempts < t.config.retries ->
            p.attempts <- p.attempts + 1;
            (match t.metrics with
            | Some m ->
              Metrics.incr m "overlay.resend";
              Metrics.incr m "retry.attempt"
            | None -> ());
            p.wave_floor <- t.next_rid;
            Hashtbl.reset p.expected;
            Hashtbl.reset p.received;
            p.missing <- 0;
            resend ();
            arm ~attempt:p.attempts
          | _ ->
            cache_incr t "retry.giveup";
            finish_multi t rid ~complete:false)
        | _ -> ())
  in
  arm ~attempt:0

let finish_batch t rid ~complete =
  match Hashtbl.find_opt t.pending rid with
  | Some (Pbatch p) ->
    Hashtbl.remove t.pending rid;
    let latency = Sim.now t.sim -. p.started in
    record_multi t p.op ~hops:p.hops ~peers_hit:p.regions ~latency ~complete;
    if complete && t.config.adaptive_timeout then (
      match find_node t p.origin with
      | Some me -> Rtt.observe me.Node.rtt ~cls:p.op latency
      | None -> ());
    if not complete then mark_partial t ~rid ~origin:p.origin;
    (* Coverage = acked keys / batch keys. *)
    let completeness =
      if complete || p.total = 0 then if complete then 1.0 else 0.0
      else float_of_int (p.total - Hashtbl.length p.unacked) /. float_of_int p.total
    in
    p.k
      {
        items = dedupe_items p.items;
        hops = p.hops;
        peers_hit = p.regions;
        complete;
        completeness;
        latency;
      }
  | _ -> ()

let arm_batch_timeout t rid =
  let rec arm ~attempt =
    let base =
      match Hashtbl.find_opt t.pending rid with
      | Some (Pbatch p) -> deadline_base t ~origin:p.origin ~cls:p.op ~via:None
      | _ -> t.config.timeout_ms
    in
    Sim.schedule t.sim ~delay:(retry_delay t ~base ~attempt) (fun () ->
        match Hashtbl.find_opt t.pending rid with
        | Some (Pbatch p) ->
          if p.attempts < t.config.retries then begin
            p.attempts <- p.attempts + 1;
            (match t.metrics with
            | Some m ->
              Metrics.incr m "overlay.resend";
              Metrics.incr m "retry.attempt"
            | None -> ());
            cache_incr t "batch.retransmit";
            p.resend ();
            arm ~attempt:p.attempts
          end
          else begin
            cache_incr t "retry.giveup";
            finish_batch t rid ~complete:false
          end
        | _ -> ())
  in
  arm ~attempt:0

(* Send an aggregation buffer's merged hit upward. [reason] is
   ["complete"] (every buffered child answered) or ["timeout"] (loss or
   churn below): leftover waiting tokens travel as targets so the origin
   still accounts for them — their hits, if any straggle in later, find
   no buffer and are relayed home. *)
let flush_agg t (a : agg) ~reason =
  if not a.flushed then begin
    a.flushed <- true;
    List.iter (fun tok -> Hashtbl.remove t.aggs tok) a.waiting;
    if not (Net.is_alive t.net a.agg_owner) then
      (* The buffering peer was killed while holding child tokens: a dead
         peer cannot transmit its merged hit. Dropping the buffer (rather
         than sending from a corpse) leaves those tokens unanswered at
         the origin, whose own timeout then finishes the operation as
         explicitly partial — termination accounting never wedges on a
         crashed aggregator. *)
      cache_incr t "fault.agg.dead_flush"
    else begin
      cache_incr t ("batch.agg.flush." ^ reason);
      Net.send t.net ~src:a.agg_owner ~dst:a.agg_parent
        (Message.RangeHit
           {
             rid = a.agg_rid;
             token = a.agg_token;
             items = a.agg_items;
             targets = a.waiting @ a.carried;
             origin = a.agg_origin;
             hops = a.agg_hops;
           })
    end
  end

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)

(* Replica failover: every ref at this level is dead, so stand in a live
   member of a dead ref's replica group. Replica-group membership spreads
   with the exchange/join gossip, so a peer plausibly knows its refs'
   replicas; P-Grid's own fault-tolerance story is exactly that any
   replica of the addressed region can serve. *)
let failover_candidates t refs =
  List.concat_map
    (fun r ->
      match find_node t r with
      | Some nd -> List.filter (Net.is_alive t.net) nd.Node.replicas
      | None -> [])
    refs
  |> List.sort_uniq compare

(* Peers are assumed to detect failures of their direct references (via
   keep-alive pings, as deployed DHTs do), so routing prefers alive refs;
   if every ref of a level looks dead we fail over to a live replica of
   one of them (and learn it as a ref); with failover off — or no replica
   alive either — we still try one, and the request times out and
   retries. *)
let choose_ref t (me : Node.t) level =
  let refs = Node.refs_at me level in
  let candidates, failing_over =
    match List.filter (Net.is_alive t.net) refs with
    | [] when t.config.failover -> (
      match failover_candidates t refs with [] -> (refs, false) | alts -> (alts, true))
    | [] -> (refs, false)
    | alive -> (alive, false)
  in
  let chosen =
    match candidates with
    | [] -> None
    | refs when t.config.proximity_routing ->
    let lat = Net.latency t.net in
      let best =
        List.fold_left
          (fun acc p ->
            let c = Latency.base lat ~src:me.id ~dst:p in
            match acc with Some (_, c0) when c0 <= c -> acc | _ -> Some (p, c))
          None refs
      in
      Option.map fst best
    | refs -> Some (Rng.pick_list t.rng refs)
  in
  (match chosen with
  | Some p when failing_over ->
    cache_incr t "retry.failover";
    (* Learn the stand-in as a real reference: routing self-heals instead
       of re-deriving the failover on every message. *)
    Node.add_ref me ~level p ~cap:t.config.refs_per_level
  | _ -> ());
  chosen

(* [`Local] if [me] covers [key]: greedy prefix routing forwards at the
   first level where the key branches away from [me]'s path. *)
let route_step t (me : Node.t) key =
  let len = Bitkey.length me.path in
  let rec go l =
    if l >= len then `Local
    else if Node.key_side me ~level:l key <> Bitkey.get me.path l then begin
      match choose_ref t me l with Some p -> `Forward p | None -> `Stuck
    end
    else go (l + 1)
  in
  go 0

let too_far t hops = hops >= t.config.max_hops

(* ------------------------------------------------------------------ *)
(* Routing shortcuts (lib/cache level 1)                               *)

(* Record that [peer] answered for [region] — called at the origin when
   a [Found]/[Ack] reply arrives. *)
let learn_shortcut t (me : Node.t) ~peer ~region:(lo, hi) =
  if peer <> me.Node.id && Shortcuts.capacity me.Node.shortcuts > 0 then begin
    Shortcuts.learn me.Node.shortcuts ~lo ~hi ~peer;
    cache_incr t "cache.shortcut.learn"
  end

let set_via t rid peer =
  match Hashtbl.find_opt t.pending rid with
  | Some (Psingle p) -> p.via <- Some peer
  | _ -> ()

(* Consult the origin's learned shortcuts for a single direct hop to the
   responsible peer. A hit pointing at a dead peer invalidates that
   peer's entries on the spot (the same failure-detection assumption as
   [choose_ref]'s alive filter). *)
let consult_shortcut t (me : Node.t) ~rid key =
  if Shortcuts.capacity me.Node.shortcuts = 0 then None
  else
    match Shortcuts.find me.Node.shortcuts ~key with
    | Some p when p <> me.Node.id && Net.is_alive t.net p ->
      cache_incr t "cache.shortcut.hit";
      set_via t rid p;
      Some p
    | Some p ->
      let n = Shortcuts.invalidate_peer me.Node.shortcuts p in
      cache_incr t ~by:(max 1 n) "cache.shortcut.invalidate";
      cache_incr t "cache.shortcut.miss";
      None
    | None ->
      cache_incr t "cache.shortcut.miss";
      None

(* One routing decision for single-destination requests: greedy prefix
   routing, with the origin's shortcut cache consulted on the first hop.
   A shortcut hit forwards straight to the learned responsible peer —
   one hop instead of O(depth) — and never revisits intermediate peers,
   so the [hops <= depth] bound still holds on the cached path. *)
let next_hop t (me : Node.t) ~rid ~origin ~hops key =
  match route_step t me key with
  | `Local -> `Local
  | (`Forward _ | `Stuck) as step -> (
    if me.id = origin && hops = 0 then
      match consult_shortcut t me ~rid key with Some p -> `Forward p | None -> step
    else step)

(* ------------------------------------------------------------------ *)
(* Handlers: each takes the acting node and may be invoked directly     *)
(* (origin-side) or from the message dispatcher.                        *)

(* The serving set an owner advertises on its replies: its current
   boost replicas (origins in spread mode learn them all and rotate). *)
let owner_spread t (me : Node.t) =
  if t.config.hot_replication && me.Node.boosts <> [] then me.Node.boosts else []

let handle_lookup t (me : Node.t) ~rid ~key ~origin ~hops =
  if Node.hot_covers me key then begin
    (* Boost replica: answer straight from the synced hot copy (state
       as of the last balance round — the same loose consistency as a
       replica missed by a rumor), advertising the full serving set so
       origins keep spreading. *)
    cache_incr t "balance.hot_serve";
    let items = Store.find me.hot_store key in
    let region = match me.hot_region with Some r -> r | None -> Node.region me in
    if me.id = origin then finish_single t rid ~items ~hops ~complete:true
    else
      Net.send t.net ~src:me.id ~dst:origin
        (Message.Found { rid; items; hops; region; spread = me.hot_spread })
  end
  else
    match next_hop t me ~rid ~origin ~hops key with
    | `Local ->
      let items = Store.find me.store key in
      if me.id = origin then finish_single t rid ~items ~hops ~complete:true
      else
        Net.send t.net ~src:me.id ~dst:origin
          (Message.Found { rid; items; hops; region = Node.region me; spread = owner_spread t me })
    | `Forward p when not (too_far t hops) ->
      Net.send t.net ~src:me.id ~dst:p (Message.Lookup { rid; key; origin; hops = hops + 1 })
    | `Forward _ | `Stuck -> ()

let handle_insert t (me : Node.t) ~rid ~item ~origin ~hops =
  match next_hop t me ~rid ~origin ~hops item.Store.key with
  | `Local ->
    if Store.put me.store item then Node.bump_epoch me;
    List.iter
      (fun r -> Net.send t.net ~src:me.id ~dst:r (Message.Replicate { item; rounds_left = 0 }))
      me.replicas;
    if me.id = origin then finish_single t rid ~items:[ item ] ~hops ~complete:true
    else
      Net.send t.net ~src:me.id ~dst:origin (Message.Ack { rid; hops; region = Node.region me })
  | `Forward p when not (too_far t hops) ->
    Net.send t.net ~src:me.id ~dst:p (Message.Insert { rid; item; origin; hops = hops + 1 })
  | `Forward _ | `Stuck -> ()

let handle_delete t (me : Node.t) ~rid ~key ~item_id ~origin ~hops =
  match next_hop t me ~rid ~origin ~hops key with
  | `Local ->
    Store.remove me.store ~key ~item_id;
    Node.bump_epoch me;
    List.iter
      (fun r -> Net.send t.net ~src:me.id ~dst:r (Message.Unreplicate { key; item_id }))
      me.replicas;
    if me.id = origin then finish_single t rid ~items:[] ~hops ~complete:true
    else
      Net.send t.net ~src:me.id ~dst:origin (Message.Ack { rid; hops; region = Node.region me })
  | `Forward p when not (too_far t hops) ->
    Net.send t.net ~src:me.id ~dst:p (Message.Delete { rid; key; item_id; origin; hops = hops + 1 })
  | `Forward _ | `Stuck -> ()

let handle_update t (me : Node.t) ~rid ~item ~origin ~hops ~rounds =
  match next_hop t me ~rid ~origin ~hops item.Store.key with
  | `Local ->
    if Store.put me.store item then Node.bump_epoch me;
    let targets = Rng.sample t.rng t.config.gossip_fanout me.replicas in
    List.iter
      (fun r -> Net.send t.net ~src:me.id ~dst:r (Message.Replicate { item; rounds_left = rounds }))
      targets;
    if me.id = origin then finish_single t rid ~items:[ item ] ~hops ~complete:true
    else
      Net.send t.net ~src:me.id ~dst:origin (Message.Ack { rid; hops; region = Node.region me })
  | `Forward p when not (too_far t hops) ->
    Net.send t.net ~src:me.id ~dst:p (Message.Update { rid; item; origin; hops = hops + 1; rounds })
  | `Forward _ | `Stuck -> ()

(* ------------------------------------------------------------------ *)
(* Batched operations (bulk insert / multi-key lookup)                  *)

(* Partition a batch at [me]: the share [me] covers locally, plus one
   group per first-divergence level, mirroring [route_step] per key. One
   forwarded message per touched subtree replaces one routed message per
   item. *)
let split_batch (me : Node.t) ~key_of xs =
  let len = Bitkey.length me.Node.path in
  let local = ref [] in
  let groups = Hashtbl.create 8 in
  List.iter
    (fun x ->
      let key = key_of x in
      let rec go l =
        if l >= len then local := x :: !local
        else if Node.key_side me ~level:l key <> Bitkey.get me.Node.path l then begin
          match Hashtbl.find_opt groups l with
          | Some r -> r := x :: !r
          | None -> Hashtbl.add groups l (ref [ x ])
        end
        else go (l + 1)
      in
      go 0)
    xs;
  let forwards =
    Hashtbl.fold (fun l r acc -> (l, List.rev !r) :: acc) groups []
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
  in
  (List.rev !local, forwards)

(* A region's [AckBatch]/[MultiFound] arrived at the batch origin:
   resolve its keys (first answer per key wins), keep its payload, and
   learn a shortcut to the responding region. *)
let deliver_batch_ack t rid ~from ~found ~region ~hops =
  match Hashtbl.find_opt t.pending rid with
  | Some (Pbatch p) ->
    (match find_node t p.origin with
    | Some me -> learn_shortcut t me ~peer:from ~region
    | None -> ());
    p.regions <- p.regions + 1;
    p.hops <- max p.hops hops;
    List.iter
      (fun (key, items) ->
        if Hashtbl.mem p.unacked key then begin
          Hashtbl.remove p.unacked key;
          p.on_ack key items;
          p.items <- List.rev_append items p.items
        end)
      found;
    if Hashtbl.length p.unacked = 0 then finish_batch t rid ~complete:true
  | _ -> ()

let batch_observe t name n =
  match t.metrics with
  | Some m -> Metrics.observe m ~buckets:fanout_buckets name (float_of_int n)
  | None -> ()

let handle_insert_batch t (me : Node.t) ~rid ~items ~origin ~hops =
  let local, forwards = split_batch me ~key_of:(fun (i : Store.item) -> i.Store.key) items in
  if local <> [] then begin
    let changed = ref false in
    List.iter (fun i -> if Store.put me.store i then changed := true) local;
    if !changed then Node.bump_epoch me;
    (* Batched replication: one [SyncItems] per replica instead of one
       [Replicate] per item per replica. *)
    List.iter
      (fun r -> Net.send t.net ~src:me.id ~dst:r (Message.SyncItems { items = local }))
      me.replicas;
    let keys =
      List.sort_uniq String.compare (List.map (fun (i : Store.item) -> i.Store.key) local)
    in
    cache_incr t ~by:((List.length local - 1) * Message.header) "batch.bytes.saved";
    if me.id = origin then
      deliver_batch_ack t rid ~from:me.id
        ~found:(List.map (fun k -> (k, [])) keys)
        ~region:(Node.region me) ~hops
    else
      Net.send t.net ~src:me.id ~dst:origin
        (Message.AckBatch { rid; keys; region = Node.region me; hops })
  end;
  if not (too_far t hops) then
    List.iter
      (fun (level, group) ->
        match choose_ref t me level with
        | Some p ->
          cache_incr t "batch.bulk.batches";
          batch_observe t "batch.bulk.size" (List.length group);
          Net.send t.net ~src:me.id ~dst:p
            (Message.InsertBatch { rid; items = group; origin; hops = hops + 1 })
        | None -> ())
      forwards

let handle_multi_lookup t (me : Node.t) ~rid ~keys ~origin ~hops =
  let local, forwards = split_batch me ~key_of:(fun k -> k) keys in
  if local <> [] then begin
    let found = List.map (fun key -> (key, Store.find me.store key)) local in
    cache_incr t ~by:((List.length local - 1) * Message.header) "batch.bytes.saved";
    if me.id = origin then deliver_batch_ack t rid ~from:me.id ~found ~region:(Node.region me) ~hops
    else
      Net.send t.net ~src:me.id ~dst:origin
        (Message.MultiFound { rid; found; region = Node.region me; hops })
  end;
  if not (too_far t hops) then
    List.iter
      (fun (level, group) ->
        match choose_ref t me level with
        | Some p ->
          cache_incr t "batch.probe.batches";
          batch_observe t "batch.probe.size" (List.length group);
          Net.send t.net ~src:me.id ~dst:p
            (Message.MultiLookup { rid; keys = group; origin; hops = hops + 1 })
        | None -> ())
      forwards

(* The shower split of the clip at [me]: one (ref, sub-clip) per
   complementary subtree intersecting it, computed level by level from
   [me]'s own split boundaries. *)
let shower_splits t (me : Node.t) ~hops ~clip_lo ~clip_hi =
  let acc = ref [] in
  let len = Bitkey.length me.path in
  let plo = ref "" and phi = ref None in
  for l = 0 to len - 1 do
    let boundary = me.splits.(l) in
    let mybit = Bitkey.get me.path l in
    let sibling = if mybit then (!plo, Some boundary) else (boundary, !phi) in
    (match interval_intersect (clip_lo, clip_hi) sibling with
    | Some (lo', hi') when not (too_far t hops) -> (
      match choose_ref t me l with Some p -> acc := (p, lo', hi') :: !acc | None -> ())
    | _ -> ());
    if mybit then plo := boundary else phi := Some boundary
  done;
  List.rev !acc

(* Shower probe processing: partition the clip among my own region and my
   complementary subtrees, forward each non-empty sub-clip to one
   reference of that subtree, answer my own region locally. *)
let process_shower t (me : Node.t) ~rid ~token ~origin ~hops ~clip_lo ~clip_hi ~local ~forward =
  let targets =
    List.map
      (fun (p, lo', hi') ->
        let tok = fresh_rid t in
        forward ~dst:p ~token:tok ~clip_lo:lo' ~clip_hi:hi';
        tok)
      (shower_splits t me ~hops ~clip_lo ~clip_hi)
  in
  let items = local () in
  if me.id = origin then deliver_hit t rid ~from:me.id ~token ~items ~targets ~hops
  else
    Net.send t.net ~src:me.id ~dst:origin
      (Message.RangeHit { rid; token; items; targets; origin; hops })

let handle_range t (me : Node.t) ~rid ~token ~lo ~hi ~clip_lo ~clip_hi ~origin ~reply_to ~hops
    ~strategy ~budget =
  match (strategy : Message.range_strategy) with
  | Shower -> (
    let forward ~dst ~token ~clip_lo ~clip_hi ~reply_to =
      Net.send t.net ~src:me.id ~dst
        (Message.Range
           {
             rid;
             token;
             lo;
             hi;
             clip_lo;
             clip_hi;
             origin;
             reply_to;
             hops = hops + 1;
             strategy;
             budget;
           })
    in
    let splits = shower_splits t me ~hops ~clip_lo ~clip_hi in
    let items = Store.range me.store ~lo ~hi in
    if me.id = origin || not t.config.range_aggregation then begin
      (* Top of the split tree, or aggregation off: children reply
         straight to the origin's token accounting. *)
      let targets =
        List.map
          (fun (p, lo', hi') ->
            let tok = fresh_rid t in
            forward ~dst:p ~token:tok ~clip_lo:lo' ~clip_hi:hi' ~reply_to:origin;
            tok)
          splits
      in
      if me.id = origin then deliver_hit t rid ~from:me.id ~token ~items ~targets ~hops
      else
        Net.send t.net ~src:me.id ~dst:origin
          (Message.RangeHit { rid; token; items; targets; origin; hops })
    end
    else
      match (items, splits) with
      | [], [ (p, lo', hi') ] ->
        (* Path compression: nothing local and a single subtree — pass my
           token through and let the child answer whom I would have; my
           own (empty) hit is elided entirely. *)
        cache_incr t "batch.agg.elided";
        cache_incr t ~by:Message.header "batch.bytes.saved";
        forward ~dst:p ~token ~clip_lo:lo' ~clip_hi:hi' ~reply_to
      | _, [] ->
        (* Leaf of the split tree: reply to my parent, fully merged. *)
        Net.send t.net ~src:me.id ~dst:reply_to
          (Message.RangeHit { rid; token; items; targets = []; origin; hops })
      | _, _ ->
        (* Interior node: buffer up to [agg_fanin] children and merge
           their hits into mine before replying upward; overflow children
           reply straight to the origin and their tokens travel upward
           unmerged. *)
        let fanin = max 1 t.config.agg_fanin in
        let tagged =
          List.mapi
            (fun i (p, lo', hi') ->
              let tok = fresh_rid t in
              let buffered = i < fanin in
              forward ~dst:p ~token:tok ~clip_lo:lo' ~clip_hi:hi'
                ~reply_to:(if buffered then me.id else origin);
              (tok, buffered))
            splits
        in
        let waiting = List.filter_map (fun (tok, b) -> if b then Some tok else None) tagged in
        let carried = List.filter_map (fun (tok, b) -> if b then None else Some tok) tagged in
        if carried <> [] then cache_incr t ~by:(List.length carried) "batch.agg.overflow";
        let a =
          {
            agg_rid = rid;
            agg_token = token;
            agg_parent = reply_to;
            agg_origin = origin;
            agg_owner = me.id;
            waiting;
            carried;
            agg_items = items;
            agg_hops = hops;
            flushed = false;
          }
        in
        List.iter (fun tok -> Hashtbl.replace t.aggs tok a) waiting;
        Sim.schedule t.sim ~delay:t.config.agg_flush_ms (fun () -> flush_agg t a ~reason:"timeout"))
  | Sequential ->
    (* Every receiving peer reports a hit (routing-only peers report an
       empty one naming their next hop) so the origin's termination
       tracking stays exact. *)
    let emit items targets =
      if me.id = origin then deliver_hit t rid ~from:me.id ~token ~items ~targets ~hops
      else
        Net.send t.net ~src:me.id ~dst:origin
          (Message.RangeHit { rid; token; items; targets; origin; hops })
    in
    if not (Node.covers me clip_lo) then begin
      (* Still routing toward the low end of the remaining range. *)
      match route_step t me clip_lo with
      | `Forward p when not (too_far t hops) ->
        let tok = fresh_rid t in
        Net.send t.net ~src:me.id ~dst:p
          (Message.Range
             {
               rid;
               token = tok;
               lo;
               hi;
               clip_lo;
               clip_hi;
               origin;
               reply_to = origin;
               hops = hops + 1;
               strategy;
               budget;
             });
        emit [] [ tok ]
      | `Forward _ | `Local | `Stuck -> emit [] []
    end
    else begin
      let items = Store.range me.store ~lo ~hi in
      (* Key order = value order (order-preserving encodings), so a
         result budget lets top-N traversals stop early. *)
      let items, budget_left =
        match budget with
        | None -> (items, None)
        | Some b ->
          let kept = List.filteri (fun i _ -> i < b) items in
          (kept, Some (b - List.length kept))
      in
      let _, region_hi = Node.region me in
      let continue_key =
        match region_hi with
        | Some h when String.compare h hi <= 0 -> Some h
        | _ -> None
      in
      let exhausted = match budget_left with Some b when b <= 0 -> true | _ -> false in
      let targets =
        match continue_key with
        | None -> []
        | Some _ when exhausted -> []
        | Some nxt when too_far t hops ->
          ignore nxt;
          []
        | Some nxt -> (
          match route_step t me nxt with
          | `Forward p ->
            let tok = fresh_rid t in
            Net.send t.net ~src:me.id ~dst:p
              (Message.Range
                 {
                   rid;
                   token = tok;
                   lo;
                   hi;
                   clip_lo = nxt;
                   clip_hi;
                   origin;
                   reply_to = origin;
                   hops = hops + 1;
                   strategy;
                   budget = budget_left;
                 });
            [ tok ]
          | `Local | `Stuck -> [])
      in
      emit items targets
    end

let handle_probe t (me : Node.t) ~rid ~token ~clip_lo ~clip_hi ~origin ~hops ~pred ~reduce =
  let local () =
    let acc = ref [] in
    Store.iter me.store (fun i -> if pred i then acc := i :: !acc);
    (* Leaf-side partial reduction (e.g. a local skyline): items the
       reducer drops never cross the network. *)
    match reduce with
    | None -> !acc
    | Some f ->
      let before = !acc in
      let after = f before in
      let saved =
        List.fold_left (fun b i -> b + Store.item_bytes i) 0 before
        - List.fold_left (fun b i -> b + Store.item_bytes i) 0 after
      in
      if saved > 0 then cache_incr t ~by:saved "probe.reduce.bytes.saved";
      after
  in
  let forward ~dst ~token ~clip_lo ~clip_hi =
    Net.send t.net ~src:me.id ~dst
      (Message.Probe { rid; token; clip_lo; clip_hi; origin; hops = hops + 1; pred; reduce })
  in
  process_shower t me ~rid ~token ~origin ~hops ~clip_lo ~clip_hi ~local ~forward

(* ------------------------------------------------------------------ *)
(* Replica synchronization (rumor spreading + anti-entropy)             *)

let handle_replicate t (me : Node.t) ~item ~rounds_left =
  let changed = Store.put me.store item in
  if changed then Node.bump_epoch me;
  if changed && rounds_left > 0 && me.replicas <> [] then begin
    let targets = Rng.sample t.rng t.config.gossip_fanout me.replicas in
    List.iter
      (fun r ->
        Net.send t.net ~src:me.id ~dst:r (Message.Replicate { item; rounds_left = rounds_left - 1 }))
      targets
  end

let handle_sync t ~(me : Node.t) ~src msg =
  match (msg : Message.t) with
  | SyncDigest { digest } ->
    let theirs = Hashtbl.create (List.length digest) in
    List.iter (fun (k, id, v) -> Hashtbl.replace theirs (k, id) v) digest;
    (* Items they are missing or hold stale. *)
    let to_send = ref [] in
    Store.iter me.store (fun i ->
        match Hashtbl.find_opt theirs (i.key, i.item_id) with
        | Some v when v >= i.version -> ()
        | _ -> to_send := i :: !to_send);
    if !to_send <> [] then Net.send t.net ~src:me.id ~dst:src (Message.SyncItems { items = !to_send });
    (* Items I am missing or hold stale. *)
    let wanted =
      List.filter_map
        (fun (k, id, v) ->
          let mine = Store.find me.store k in
          match List.find_opt (fun (i : Store.item) -> String.equal i.item_id id) mine with
          | Some i when i.version >= v -> None
          | _ -> Some (k, id))
        digest
    in
    if wanted <> [] then Net.send t.net ~src:me.id ~dst:src (Message.SyncRequest { wanted })
  | SyncRequest { wanted } ->
    let items =
      List.filter_map
        (fun (k, id) ->
          List.find_opt (fun (i : Store.item) -> String.equal i.item_id id) (Store.find me.store k))
        wanted
    in
    if items <> [] then Net.send t.net ~src:me.id ~dst:src (Message.SyncItems { items })
  | SyncItems { items } ->
    List.iter (fun i -> if Store.put me.store i then Node.bump_epoch me) items
  | _ -> invalid_arg "Overlay.handle_sync: not a sync message"

(* ------------------------------------------------------------------ *)
(* Dispatcher                                                          *)

let dispatch t (me : Node.t) ~src msg =
  match (msg : Message.t) with
  | Lookup { rid; key; origin; hops } ->
    Node.bump_served me;
    handle_lookup t me ~rid ~key ~origin ~hops
  | Insert { rid; item; origin; hops } ->
    Node.bump_served me;
    handle_insert t me ~rid ~item ~origin ~hops
  | Update { rid; item; origin; hops; rounds } ->
    Node.bump_served me;
    handle_update t me ~rid ~item ~origin ~hops ~rounds
  | Found { rid; items; hops; region; spread } ->
    observe_rtt t me rid ~peer:src;
    learn_shortcut t me ~peer:src ~region;
    List.iter (fun p -> if p <> src then learn_shortcut t me ~peer:p ~region) spread;
    finish_single t rid ~items ~hops ~complete:true
  | Ack { rid; hops; region } ->
    observe_rtt t me rid ~peer:src;
    learn_shortcut t me ~peer:src ~region;
    finish_single t rid ~items:[] ~hops ~complete:true
  | Range { rid; token; lo; hi; clip_lo; clip_hi; origin; reply_to; hops; strategy; budget } ->
    Node.bump_served me;
    handle_range t me ~rid ~token ~lo ~hi ~clip_lo ~clip_hi ~origin ~reply_to ~hops ~strategy
      ~budget
  | RangeHit { rid; token; items; targets; origin; hops } -> (
    match Hashtbl.find_opt t.aggs token with
    | Some a ->
      (* A buffered child answered: merge its hit into the buffer. *)
      Hashtbl.remove t.aggs token;
      a.waiting <- List.filter (fun x -> x <> token) a.waiting;
      a.carried <- List.rev_append targets a.carried;
      a.agg_items <- List.rev_append items a.agg_items;
      a.agg_hops <- max a.agg_hops hops;
      cache_incr t "batch.agg.merged";
      if a.waiting = [] then flush_agg t a ~reason:"complete"
    | None ->
      if me.id = origin then deliver_hit t rid ~from:src ~token ~items ~targets ~hops
      else begin
        (* No buffer (it already flushed on timeout): relay the straggler
           home so the origin's accounting still sees its token. *)
        cache_incr t "batch.agg.relayed";
        Net.send t.net ~src:me.id ~dst:origin
          (Message.RangeHit { rid; token; items; targets; origin; hops })
      end)
  | InsertBatch { rid; items; origin; hops } ->
    Node.bump_served me;
    handle_insert_batch t me ~rid ~items ~origin ~hops
  | AckBatch { rid; keys; region; hops } ->
    deliver_batch_ack t rid ~from:src ~found:(List.map (fun k -> (k, [])) keys) ~region ~hops
  | MultiLookup { rid; keys; origin; hops } ->
    Node.bump_served me;
    handle_multi_lookup t me ~rid ~keys ~origin ~hops
  | MultiFound { rid; found; region; hops } -> deliver_batch_ack t rid ~from:src ~found ~region ~hops
  | Probe { rid; token; clip_lo; clip_hi; origin; hops; pred; reduce } ->
    Node.bump_served me;
    handle_probe t me ~rid ~token ~clip_lo ~clip_hi ~origin ~hops ~pred ~reduce
  | Replicate { item; rounds_left } -> handle_replicate t me ~item ~rounds_left
  | Delete { rid; key; item_id; origin; hops } ->
    Node.bump_served me;
    handle_delete t me ~rid ~key ~item_id ~origin ~hops
  | Unreplicate { key; item_id } ->
    Store.remove me.store ~key ~item_id;
    Node.bump_epoch me
  | StatGossip { summaries } ->
    List.iter
      (fun s -> if Statcache.merge me.stat_cache s then cache_incr t "cache.stats.merged")
      summaries
  | HotSync { region; owner; spread; items; retire } ->
    if retire then begin
      Node.clear_hot me;
      cache_incr t "balance.retire_recv"
    end
    else begin
      (* (Re)install the boost copy wholesale: each balance round ships
         the owner's current region content, so staleness is bounded by
         the control-loop interval. *)
      Store.clear me.hot_store;
      List.iter (fun it -> ignore (Store.put me.hot_store it)) items;
      me.hot_region <- Some region;
      me.hot_owner <- owner;
      me.hot_spread <- spread;
      cache_incr t "balance.sync_recv"
    end
  | Task { run; _ } -> run me.id
  | Exchange { run; _ } -> run me.id
  | (SyncDigest _ | SyncRequest _ | SyncItems _) as m -> handle_sync t ~me ~src m

let add_node t id =
  if id < 0 then invalid_arg "Overlay.add_node: negative id";
  if find_node t id <> None then invalid_arg "Overlay.add_node: duplicate id";
  let cap = Array.length t.node_arena in
  if id >= cap then begin
    let ncap = max (id + 1) (max 64 (cap * 2)) in
    let arena = Array.make ncap None in
    Array.blit t.node_arena 0 arena 0 cap;
    t.node_arena <- arena
  end;
  let n = Node.create ~backend:t.config.Config.store_backend id in
  Shortcuts.set_capacity n.Node.shortcuts t.config.shortcut_capacity;
  Shortcuts.set_spread n.Node.shortcuts t.config.spread_load;
  t.node_arena.(id) <- Some n;
  t.n_nodes <- t.n_nodes + 1;
  if id > t.max_node_id then t.max_node_id <- id;
  t.nodes_cache <- None;
  Net.register t.net id (fun ~src msg -> dispatch t n ~src msg);
  n

(* ------------------------------------------------------------------ *)
(* Public operations                                                   *)

let insert t ~origin ~key ~item_id ~payload ?(version = 0) ~k () =
  let rid = fresh_rid t in
  let item = { Store.key; item_id; payload; version } in
  let me = node t origin in
  let resend () = handle_insert t me ~rid ~item ~origin ~hops:0 in
  Hashtbl.replace t.pending rid (Psingle { op = "insert"; origin; resend; attempts = 0; via = None; started = Sim.now t.sim; k });
  arm_single_timeout t rid;
  resend ()

let update t ~origin ~key ~item_id ~payload ~version ?(rounds = 3) ~k () =
  let rid = fresh_rid t in
  let item = { Store.key; item_id; payload; version } in
  let me = node t origin in
  let resend () = handle_update t me ~rid ~item ~origin ~hops:0 ~rounds in
  Hashtbl.replace t.pending rid (Psingle { op = "update"; origin; resend; attempts = 0; via = None; started = Sim.now t.sim; k });
  arm_single_timeout t rid;
  resend ()

let delete t ~origin ~key ~item_id ~k =
  let rid = fresh_rid t in
  let me = node t origin in
  let resend () = handle_delete t me ~rid ~key ~item_id ~origin ~hops:0 in
  Hashtbl.replace t.pending rid (Psingle { op = "delete"; origin; resend; attempts = 0; via = None; started = Sim.now t.sim; k });
  arm_single_timeout t rid;
  resend ()

let lookup t ~origin ~key ~k =
  let rid = fresh_rid t in
  let me = node t origin in
  let resend () = handle_lookup t me ~rid ~key ~origin ~hops:0 in
  Hashtbl.replace t.pending rid (Psingle { op = "lookup"; origin; resend; attempts = 0; via = None; started = Sim.now t.sim; k });
  arm_single_timeout t rid;
  resend ()

let start_multi t ~op ~origin ~k =
  let rid = fresh_rid t in
  Hashtbl.replace t.pending rid
    (Pmulti
       {
         op;
         origin;
         expected = Hashtbl.create 16;
         received = Hashtbl.create 16;
         missing = 0;
         peers = Hashtbl.create 16;
         items = [];
         hops = 0;
         resend = None;
         attempts = 0;
         wave_floor = 0;
         started = Sim.now t.sim;
         k;
       });
  arm_multi_timeout t rid;
  rid

(* The resend closure mints fresh tokens per call, so it is installed
   after [start_multi] hands back the rid it needs to close over. *)
let set_multi_resend t rid f =
  match Hashtbl.find_opt t.pending rid with
  | Some (Pmulti p) -> p.resend <- Some f
  | _ -> ()

let range t ~origin ?(strategy = Message.Shower) ?budget ~lo ~hi ~k () =
  (match (budget, strategy) with
  | Some _, Message.Shower -> invalid_arg "Overlay.range: budget requires Sequential"
  | _ -> ());
  let rid = start_multi t ~op:"range" ~origin ~k in
  let me = node t origin in
  let send () =
    handle_range t me ~rid ~token:(fresh_rid t) ~lo ~hi ~clip_lo:lo ~clip_hi:(after_inclusive hi)
      ~origin ~reply_to:origin ~hops:0 ~strategy ~budget
  in
  set_multi_resend t rid send;
  send ()

let prefix t ~origin ~prefix:p ~k =
  let rid = start_multi t ~op:"prefix" ~origin ~k in
  let me = node t origin in
  (* All keys extending [p]: inclusive bounds for local filtering, and the
     exclusive clip just past the last extension. *)
  let hi = p ^ String.make 64 '\xff' in
  let send () =
    handle_range t me ~rid ~token:(fresh_rid t) ~lo:p ~hi ~clip_lo:p ~clip_hi:(after_inclusive hi)
      ~origin ~reply_to:origin ~hops:0 ~strategy:Message.Shower ~budget:None
  in
  set_multi_resend t rid send;
  send ()

(* Bulk insert: ship the whole (sorted) batch as one [InsertBatch] that
   splits shower-style down the trie; every covering region stores its
   share and acks it once. Timeouts selectively retransmit only the
   still-unacked items. *)
let bulk_insert t ~origin ~items ~k =
  match items with
  | [] -> k { items = []; hops = 0; peers_hit = 0; complete = true; completeness = 1.0; latency = 0.0 }
  | _ ->
    let rid = fresh_rid t in
    let me = node t origin in
    let items =
      List.sort (fun (a : Store.item) b -> String.compare a.Store.key b.Store.key) items
    in
    let unacked = Hashtbl.create (List.length items) in
    List.iter (fun (i : Store.item) -> Hashtbl.replace unacked i.Store.key ()) items;
    let resend () =
      let remaining =
        List.filter (fun (i : Store.item) -> Hashtbl.mem unacked i.Store.key) items
      in
      if remaining <> [] then handle_insert_batch t me ~rid ~items:remaining ~origin ~hops:0
    in
    Hashtbl.replace t.pending rid
      (Pbatch
         {
           op = "bulk-insert";
           origin;
           total = List.length items;
           unacked;
           resend;
           attempts = 0;
           hops = 0;
           regions = 0;
           items = [];
           on_ack = (fun _ _ -> ());
           started = Sim.now t.sim;
           k;
         });
    arm_batch_timeout t rid;
    resend ()

(* Batched point lookups for bind-join probes: deduplicated keys travel
   as one [MultiLookup] that splits by responsible region; each region
   answers once. [k] receives the per-key answers alongside the combined
   result. *)
let multi_lookup t ~origin ~keys ~k =
  match keys with
  | [] -> k ([], { items = []; hops = 0; peers_hit = 0; complete = true; completeness = 1.0; latency = 0.0 })
  | _ ->
    let rid = fresh_rid t in
    let me = node t origin in
    let keys = List.sort_uniq String.compare keys in
    let unacked = Hashtbl.create (List.length keys) in
    List.iter (fun key -> Hashtbl.replace unacked key ()) keys;
    let found = Hashtbl.create (List.length keys) in
    let resend () =
      let remaining = List.filter (Hashtbl.mem unacked) keys in
      if remaining <> [] then handle_multi_lookup t me ~rid ~keys:remaining ~origin ~hops:0
    in
    Hashtbl.replace t.pending rid
      (Pbatch
         {
           op = "multi-lookup";
           origin;
           total = List.length keys;
           unacked;
           resend;
           attempts = 0;
           hops = 0;
           regions = 0;
           items = [];
           on_ack = (fun key items -> Hashtbl.replace found key items);
           started = Sim.now t.sim;
           k =
             (fun r ->
               let assoc =
                 List.map
                   (fun key -> (key, Option.value (Hashtbl.find_opt found key) ~default:[]))
                   keys
               in
               k (assoc, r));
         });
    arm_batch_timeout t rid;
    resend ()

(* [lo]/[hi] clip the probe to one key region (e.g. a single index
   family) instead of flooding the whole trie; [reduce] runs at each
   leaf over its matched items before the reply travels. *)
let broadcast t ~origin ?(lo = "") ?hi ?reduce ~pred ~k () =
  let rid = start_multi t ~op:"broadcast" ~origin ~k in
  let me = node t origin in
  let send () =
    handle_probe t me ~rid ~token:(fresh_rid t) ~clip_lo:lo ~clip_hi:hi ~origin ~hops:0 ~pred
      ~reduce
  in
  set_multi_resend t rid send;
  send ()

let send_task t ~src ~dst ~bytes run = Net.send t.net ~src ~dst (Message.Task { bytes; run })

(* Exposed for fault tests: peers currently holding an unflushed
   aggregation buffer (interior nodes of in-flight shower ranges). *)
let agg_owners t =
  Hashtbl.fold (fun _ a acc -> if a.flushed then acc else a.agg_owner :: acc) t.aggs []
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Synchronous wrappers                                                *)

let await t f =
  let cell = ref None in
  f (fun r -> cell := Some r);
  let completed = Sim.run_until t.sim (fun () -> !cell <> None) in
  match !cell with
  | Some r -> r
  | None ->
    ignore completed;
    { items = []; hops = 0; peers_hit = 0; complete = false; completeness = 0.0; latency = 0.0 }

let insert_sync t ~origin ~key ~item_id ~payload ?version () =
  await t (fun k -> insert t ~origin ~key ~item_id ~payload ?version ~k ())

let lookup_sync t ~origin ~key = await t (fun k -> lookup t ~origin ~key ~k)

let delete_sync t ~origin ~key ~item_id = await t (fun k -> delete t ~origin ~key ~item_id ~k)

let update_sync t ~origin ~key ~item_id ~payload ~version ?rounds () =
  await t (fun k -> update t ~origin ~key ~item_id ~payload ~version ?rounds ~k ())

let range_sync t ~origin ?strategy ?budget ~lo ~hi () =
  await t (fun k -> range t ~origin ?strategy ?budget ~lo ~hi ~k ())

let prefix_sync t ~origin ~prefix:p = await t (fun k -> prefix t ~origin ~prefix:p ~k)
let broadcast_sync t ~origin ~pred = await t (fun k -> broadcast t ~origin ~pred ~k ())

let bulk_insert_sync t ~origin ~items = await t (fun k -> bulk_insert t ~origin ~items ~k)

let multi_lookup_sync t ~origin ~keys =
  let cell = ref None in
  multi_lookup t ~origin ~keys ~k:(fun r -> cell := Some r);
  ignore (Sim.run_until t.sim (fun () -> !cell <> None));
  match !cell with
  | Some r -> r
  | None -> ([], { items = []; hops = 0; peers_hit = 0; complete = false; completeness = 0.0; latency = 0.0 })
