module Bitkey = Unistore_util.Bitkey
module Rng = Unistore_util.Rng
module Metrics = Unistore_obs.Metrics
module Histogram = Unistore_obs.Histogram
module Shortcuts = Unistore_cache.Shortcuts
module Statcache = Unistore_cache.Statcache

type result = {
  items : Store.item list;
  hops : int;
  peers_hit : int;
  complete : bool;
  latency : float;
}

type pending =
  | Psingle of {
      op : string;  (* metric label: lookup/insert/update/delete *)
      origin : int;
      resend : unit -> unit;
      mutable attempts : int;
      mutable via : int option;
          (* the peer a routing shortcut forwarded to, if one was used:
             a timeout invalidates that peer's shortcut entries before
             the retry falls back to greedy routing *)
      started : float;
      k : result -> unit;
    }
  | Pmulti of {
      op : string;  (* metric label: range/prefix/broadcast *)
      expected : (int, unit) Hashtbl.t;  (* message tokens announced as forwards *)
      received : (int, unit) Hashtbl.t;  (* tokens whose hit arrived *)
      mutable missing : int;  (* |expected \ received| *)
      mutable peers : (int, unit) Hashtbl.t;  (* distinct peers that reported *)
      mutable items : Store.item list;
      mutable hops : int;
      started : float;
      k : result -> unit;
    }

type t = {
  sim : Sim.t;
  net : Message.t Net.t;
  config : Config.t;
  rng : Rng.t;
  nodes : (int, Node.t) Hashtbl.t;
  pending : (int, pending) Hashtbl.t;
  mutable next_rid : int;
  mutable metrics : Metrics.t option;
  mutable read_observer : (origin:int -> Store.item list -> unit) option;
}

let create sim ~latency ~rng ?(drop = 0.0) ~config () =
  let rng = Rng.split rng in
  let net = Net.create sim ~latency ~rng ~drop ~size:Message.size ~kind:Message.kind ~corr:Message.corr () in
  {
    sim;
    net;
    config;
    rng;
    nodes = Hashtbl.create 256;
    pending = Hashtbl.create 64;
    next_rid = 0;
    metrics = None;
    read_observer = None;
  }

let sim t = t.sim
let net t = t.net
let config t = t.config
let rng t = t.rng

let set_metrics t m =
  t.metrics <- m;
  Net.set_metrics t.net m

let metrics t = t.metrics
let set_read_observer t f = t.read_observer <- f

(* Histogram bucket ladders chosen for the quantities' natural ranges:
   hop counts are O(log n) (unit buckets resolve them exactly), retries
   are bounded by [config.retries], fan-out can reach the full overlay. *)
let hop_buckets = Histogram.linear ~lo:0.0 ~step:1.0 ~n:33
let retry_buckets = Histogram.linear ~lo:0.0 ~step:1.0 ~n:9
let fanout_buckets = [ 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024.; 2048. ]

let node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Overlay.node: unknown peer %d" id)

let nodes t =
  Hashtbl.fold (fun _ n acc -> n :: acc) t.nodes []
  |> List.sort (fun a b -> compare a.Node.id b.Node.id)

let node_count t = Hashtbl.length t.nodes

let depth t = Hashtbl.fold (fun _ n acc -> max acc (Bitkey.length n.Node.path)) t.nodes 0

let responsible t key = List.filter (fun n -> Node.covers n key) (nodes t)

let kill t id = Net.kill t.net id
let revive t id = Net.revive t.net id
let alive t id = Net.is_alive t.net id

let fresh_rid t =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  rid

(* ------------------------------------------------------------------ *)
(* Key intervals: inclusive lo, exclusive optional hi                   *)

let interval_intersect (lo1, hi1) (lo2, hi2) =
  let lo = if String.compare lo1 lo2 >= 0 then lo1 else lo2 in
  let hi =
    match (hi1, hi2) with
    | None, h | h, None -> h
    | Some a, Some b -> Some (if String.compare a b <= 0 then a else b)
  in
  match hi with Some h when String.compare lo h >= 0 -> None | _ -> Some (lo, hi)

(* Exclusive upper bound capturing all keys <= hi (no byte string lies
   strictly between hi and hi ^ "\x00"). *)
let after_inclusive hi = Some (hi ^ "\x00")

(* ------------------------------------------------------------------ *)
(* Result assembly                                                     *)

let dedupe_items items =
  let tbl = Hashtbl.create (List.length items) in
  List.iter
    (fun (i : Store.item) ->
      let k = (i.key, i.item_id) in
      match Hashtbl.find_opt tbl k with
      | Some (j : Store.item) when j.version >= i.version -> ()
      | _ -> Hashtbl.replace tbl k i)
    items;
  Hashtbl.fold (fun _ i acc -> i :: acc) tbl []
  |> List.sort (fun (a : Store.item) b ->
         match String.compare a.key b.key with 0 -> String.compare a.item_id b.item_id | c -> c)

let record_single t (op : string) ~hops ~attempts ~latency ~complete =
  match t.metrics with
  | None -> ()
  | Some m ->
    Metrics.observe m ~buckets:hop_buckets ("overlay." ^ op ^ ".hops") (float_of_int hops);
    Metrics.observe m ~buckets:retry_buckets ("overlay." ^ op ^ ".retries") (float_of_int attempts);
    Metrics.observe m ("overlay." ^ op ^ ".latency_ms") latency;
    Metrics.incr m ("overlay." ^ op ^ if complete then ".ok" else ".incomplete")

let record_multi t (op : string) ~hops ~peers_hit ~latency ~complete =
  match t.metrics with
  | None -> ()
  | Some m ->
    Metrics.observe m ~buckets:hop_buckets ("overlay." ^ op ^ ".hops") (float_of_int hops);
    Metrics.observe m ~buckets:fanout_buckets ("overlay." ^ op ^ ".fanout")
      (float_of_int peers_hit);
    Metrics.observe m ("overlay." ^ op ^ ".latency_ms") latency;
    Metrics.incr m ("overlay." ^ op ^ if complete then ".ok" else ".incomplete")

let finish_single t rid ~items ~hops ~complete =
  match Hashtbl.find_opt t.pending rid with
  | Some (Psingle p) ->
    Hashtbl.remove t.pending rid;
    let latency = Sim.now t.sim -. p.started in
    record_single t p.op ~hops ~attempts:p.attempts ~latency ~complete;
    let items = dedupe_items items in
    (match t.read_observer with
    | Some f when complete && String.equal p.op "lookup" -> f ~origin:p.origin items
    | _ -> ());
    p.k { items; hops; peers_hit = 1; complete; latency }
  | _ -> ()

let finish_multi t rid ~complete =
  match Hashtbl.find_opt t.pending rid with
  | Some (Pmulti p) ->
    Hashtbl.remove t.pending rid;
    let latency = Sim.now t.sim -. p.started in
    let peers_hit = Hashtbl.length p.peers in
    record_multi t p.op ~hops:p.hops ~peers_hit ~latency ~complete;
    p.k { items = dedupe_items p.items; hops = p.hops; peers_hit; complete; latency }
  | _ -> ()

(* Termination detection is order-independent: every Range/Probe message
   carries a unique token; its receiver's hit echoes that token and names
   the tokens of the messages it forwarded in turn. The operation is done
   when every announced token has been answered — a grandchild's hit
   racing past its parent's (easy under heavy-tailed wide-area latencies)
   cannot end the operation early, and a peer participating several times
   (router now, processor later, as in sequential traversals) is counted
   per message. *)
let deliver_hit t rid ~from ~token ~items ~targets ~hops =
  match Hashtbl.find_opt t.pending rid with
  | Some (Pmulti p) ->
    Hashtbl.replace p.peers from ();
    if not (Hashtbl.mem p.received token) then begin
      Hashtbl.replace p.received token ();
      if Hashtbl.mem p.expected token then p.missing <- p.missing - 1
      else Hashtbl.replace p.expected token ()
    end;
    List.iter
      (fun q ->
        if not (Hashtbl.mem p.expected q) then begin
          Hashtbl.replace p.expected q ();
          if not (Hashtbl.mem p.received q) then p.missing <- p.missing + 1
        end)
      targets;
    p.items <- List.rev_append items p.items;
    p.hops <- max p.hops hops;
    if p.missing <= 0 then finish_multi t rid ~complete:true
  | _ -> ()

let cache_incr t ?by name =
  match t.metrics with Some m -> Metrics.incr m ?by name | None -> ()

let arm_single_timeout t rid =
  let rec arm () =
    Sim.schedule t.sim ~delay:t.config.timeout_ms (fun () ->
        match Hashtbl.find_opt t.pending rid with
        | Some (Psingle p) ->
          if p.attempts < t.config.retries then begin
            p.attempts <- p.attempts + 1;
            (match t.metrics with Some m -> Metrics.incr m "overlay.resend" | None -> ());
            (* If a shortcut carried this request, distrust its target:
               drop that peer's entries so the retry routes greedily. *)
            (match p.via with
            | Some peer ->
              (match Hashtbl.find_opt t.nodes p.origin with
              | Some me ->
                let n = Shortcuts.invalidate_peer me.Node.shortcuts peer in
                if n > 0 then cache_incr t ~by:n "cache.shortcut.invalidate"
              | None -> ());
              p.via <- None
            | None -> ());
            p.resend ();
            arm ()
          end
          else finish_single t rid ~items:[] ~hops:0 ~complete:false
        | _ -> ())
  in
  arm ()

let arm_multi_timeout t rid =
  Sim.schedule t.sim ~delay:t.config.timeout_ms (fun () ->
      if Hashtbl.mem t.pending rid then finish_multi t rid ~complete:false)

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)

(* Peers are assumed to detect failures of their direct references (via
   keep-alive pings, as deployed DHTs do), so routing prefers alive refs;
   if every ref of a level looks dead we still try one, and the request
   times out and retries. *)
let choose_ref t (me : Node.t) level =
  let candidates =
    match List.filter (Net.is_alive t.net) (Node.refs_at me level) with
    | [] -> Node.refs_at me level
    | alive -> alive
  in
  match candidates with
  | [] -> None
  | refs when t.config.proximity_routing ->
    let lat = Net.latency t.net in
    let best =
      List.fold_left
        (fun acc p ->
          let c = Latency.base lat ~src:me.id ~dst:p in
          match acc with Some (_, c0) when c0 <= c -> acc | _ -> Some (p, c))
        None refs
    in
    Option.map fst best
  | refs -> Some (Rng.pick_list t.rng refs)

(* [`Local] if [me] covers [key]: greedy prefix routing forwards at the
   first level where the key branches away from [me]'s path. *)
let route_step t (me : Node.t) key =
  let len = Bitkey.length me.path in
  let rec go l =
    if l >= len then `Local
    else if Node.key_side me ~level:l key <> Bitkey.get me.path l then begin
      match choose_ref t me l with Some p -> `Forward p | None -> `Stuck
    end
    else go (l + 1)
  in
  go 0

let too_far t hops = hops >= t.config.max_hops

(* ------------------------------------------------------------------ *)
(* Routing shortcuts (lib/cache level 1)                               *)

(* Record that [peer] answered for [region] — called at the origin when
   a [Found]/[Ack] reply arrives. *)
let learn_shortcut t (me : Node.t) ~peer ~region:(lo, hi) =
  if peer <> me.Node.id && Shortcuts.capacity me.Node.shortcuts > 0 then begin
    Shortcuts.learn me.Node.shortcuts ~lo ~hi ~peer;
    cache_incr t "cache.shortcut.learn"
  end

let set_via t rid peer =
  match Hashtbl.find_opt t.pending rid with
  | Some (Psingle p) -> p.via <- Some peer
  | _ -> ()

(* Consult the origin's learned shortcuts for a single direct hop to the
   responsible peer. A hit pointing at a dead peer invalidates that
   peer's entries on the spot (the same failure-detection assumption as
   [choose_ref]'s alive filter). *)
let consult_shortcut t (me : Node.t) ~rid key =
  if Shortcuts.capacity me.Node.shortcuts = 0 then None
  else
    match Shortcuts.find me.Node.shortcuts ~key with
    | Some p when p <> me.Node.id && Net.is_alive t.net p ->
      cache_incr t "cache.shortcut.hit";
      set_via t rid p;
      Some p
    | Some p ->
      let n = Shortcuts.invalidate_peer me.Node.shortcuts p in
      cache_incr t ~by:(max 1 n) "cache.shortcut.invalidate";
      cache_incr t "cache.shortcut.miss";
      None
    | None ->
      cache_incr t "cache.shortcut.miss";
      None

(* One routing decision for single-destination requests: greedy prefix
   routing, with the origin's shortcut cache consulted on the first hop.
   A shortcut hit forwards straight to the learned responsible peer —
   one hop instead of O(depth) — and never revisits intermediate peers,
   so the [hops <= depth] bound still holds on the cached path. *)
let next_hop t (me : Node.t) ~rid ~origin ~hops key =
  match route_step t me key with
  | `Local -> `Local
  | (`Forward _ | `Stuck) as step -> (
    if me.id = origin && hops = 0 then
      match consult_shortcut t me ~rid key with Some p -> `Forward p | None -> step
    else step)

(* ------------------------------------------------------------------ *)
(* Handlers: each takes the acting node and may be invoked directly     *)
(* (origin-side) or from the message dispatcher.                        *)

let handle_lookup t (me : Node.t) ~rid ~key ~origin ~hops =
  match next_hop t me ~rid ~origin ~hops key with
  | `Local ->
    let items = Store.find me.store key in
    if me.id = origin then finish_single t rid ~items ~hops ~complete:true
    else
      Net.send t.net ~src:me.id ~dst:origin
        (Message.Found { rid; items; hops; region = Node.region me })
  | `Forward p when not (too_far t hops) ->
    Net.send t.net ~src:me.id ~dst:p (Message.Lookup { rid; key; origin; hops = hops + 1 })
  | `Forward _ | `Stuck -> ()

let handle_insert t (me : Node.t) ~rid ~item ~origin ~hops =
  match next_hop t me ~rid ~origin ~hops item.Store.key with
  | `Local ->
    if Store.put me.store item then Node.bump_epoch me;
    List.iter
      (fun r -> Net.send t.net ~src:me.id ~dst:r (Message.Replicate { item; rounds_left = 0 }))
      me.replicas;
    if me.id = origin then finish_single t rid ~items:[ item ] ~hops ~complete:true
    else
      Net.send t.net ~src:me.id ~dst:origin (Message.Ack { rid; hops; region = Node.region me })
  | `Forward p when not (too_far t hops) ->
    Net.send t.net ~src:me.id ~dst:p (Message.Insert { rid; item; origin; hops = hops + 1 })
  | `Forward _ | `Stuck -> ()

let handle_delete t (me : Node.t) ~rid ~key ~item_id ~origin ~hops =
  match next_hop t me ~rid ~origin ~hops key with
  | `Local ->
    Store.remove me.store ~key ~item_id;
    Node.bump_epoch me;
    List.iter
      (fun r -> Net.send t.net ~src:me.id ~dst:r (Message.Unreplicate { key; item_id }))
      me.replicas;
    if me.id = origin then finish_single t rid ~items:[] ~hops ~complete:true
    else
      Net.send t.net ~src:me.id ~dst:origin (Message.Ack { rid; hops; region = Node.region me })
  | `Forward p when not (too_far t hops) ->
    Net.send t.net ~src:me.id ~dst:p (Message.Delete { rid; key; item_id; origin; hops = hops + 1 })
  | `Forward _ | `Stuck -> ()

let handle_update t (me : Node.t) ~rid ~item ~origin ~hops ~rounds =
  match next_hop t me ~rid ~origin ~hops item.Store.key with
  | `Local ->
    if Store.put me.store item then Node.bump_epoch me;
    let targets = Rng.sample t.rng t.config.gossip_fanout me.replicas in
    List.iter
      (fun r -> Net.send t.net ~src:me.id ~dst:r (Message.Replicate { item; rounds_left = rounds }))
      targets;
    if me.id = origin then finish_single t rid ~items:[ item ] ~hops ~complete:true
    else
      Net.send t.net ~src:me.id ~dst:origin (Message.Ack { rid; hops; region = Node.region me })
  | `Forward p when not (too_far t hops) ->
    Net.send t.net ~src:me.id ~dst:p (Message.Update { rid; item; origin; hops = hops + 1; rounds })
  | `Forward _ | `Stuck -> ()

(* Shower range/probe processing: partition the clip among my own region
   and my complementary subtrees (computed level by level from my own
   split boundaries), forward each non-empty sub-clip to one reference of
   that subtree, answer my own region locally. *)
let process_shower t (me : Node.t) ~rid ~token ~origin ~hops ~clip_lo ~clip_hi ~local ~forward =
  let targets = ref [] in
  let len = Bitkey.length me.path in
  let plo = ref "" and phi = ref None in
  for l = 0 to len - 1 do
    let boundary = me.splits.(l) in
    let mybit = Bitkey.get me.path l in
    let sibling = if mybit then (!plo, Some boundary) else (boundary, !phi) in
    (match interval_intersect (clip_lo, clip_hi) sibling with
    | Some (lo', hi') when not (too_far t hops) -> (
      match choose_ref t me l with
      | Some p ->
        let tok = fresh_rid t in
        targets := tok :: !targets;
        forward ~dst:p ~token:tok ~clip_lo:lo' ~clip_hi:hi'
      | None -> ())
    | _ -> ());
    if mybit then plo := boundary else phi := Some boundary
  done;
  let items = local () in
  if me.id = origin then deliver_hit t rid ~from:me.id ~token ~items ~targets:!targets ~hops
  else
    Net.send t.net ~src:me.id ~dst:origin
      (Message.RangeHit { rid; token; items; targets = !targets; hops })

let handle_range t (me : Node.t) ~rid ~token ~lo ~hi ~clip_lo ~clip_hi ~origin ~hops ~strategy
    ~budget =
  match (strategy : Message.range_strategy) with
  | Shower ->
    let local () = Store.range me.store ~lo ~hi in
    let forward ~dst ~token ~clip_lo ~clip_hi =
      Net.send t.net ~src:me.id ~dst
        (Message.Range
           { rid; token; lo; hi; clip_lo; clip_hi; origin; hops = hops + 1; strategy; budget })
    in
    process_shower t me ~rid ~token ~origin ~hops ~clip_lo ~clip_hi ~local ~forward
  | Sequential ->
    (* Every receiving peer reports a hit (routing-only peers report an
       empty one naming their next hop) so the origin's termination
       tracking stays exact. *)
    let emit items targets =
      if me.id = origin then deliver_hit t rid ~from:me.id ~token ~items ~targets ~hops
      else
        Net.send t.net ~src:me.id ~dst:origin (Message.RangeHit { rid; token; items; targets; hops })
    in
    if not (Node.covers me clip_lo) then begin
      (* Still routing toward the low end of the remaining range. *)
      match route_step t me clip_lo with
      | `Forward p when not (too_far t hops) ->
        let tok = fresh_rid t in
        Net.send t.net ~src:me.id ~dst:p
          (Message.Range
             { rid; token = tok; lo; hi; clip_lo; clip_hi; origin; hops = hops + 1; strategy; budget });
        emit [] [ tok ]
      | `Forward _ | `Local | `Stuck -> emit [] []
    end
    else begin
      let items = Store.range me.store ~lo ~hi in
      (* Key order = value order (order-preserving encodings), so a
         result budget lets top-N traversals stop early. *)
      let items, budget_left =
        match budget with
        | None -> (items, None)
        | Some b ->
          let kept = List.filteri (fun i _ -> i < b) items in
          (kept, Some (b - List.length kept))
      in
      let _, region_hi = Node.region me in
      let continue_key =
        match region_hi with
        | Some h when String.compare h hi <= 0 -> Some h
        | _ -> None
      in
      let exhausted = match budget_left with Some b when b <= 0 -> true | _ -> false in
      let targets =
        match continue_key with
        | None -> []
        | Some _ when exhausted -> []
        | Some nxt when too_far t hops ->
          ignore nxt;
          []
        | Some nxt -> (
          match route_step t me nxt with
          | `Forward p ->
            let tok = fresh_rid t in
            Net.send t.net ~src:me.id ~dst:p
              (Message.Range
                 {
                   rid;
                   token = tok;
                   lo;
                   hi;
                   clip_lo = nxt;
                   clip_hi;
                   origin;
                   hops = hops + 1;
                   strategy;
                   budget = budget_left;
                 });
            [ tok ]
          | `Local | `Stuck -> [])
      in
      emit items targets
    end

let handle_probe t (me : Node.t) ~rid ~token ~clip_lo ~clip_hi ~origin ~hops ~pred =
  let local () =
    let acc = ref [] in
    Store.iter me.store (fun i -> if pred i then acc := i :: !acc);
    !acc
  in
  let forward ~dst ~token ~clip_lo ~clip_hi =
    Net.send t.net ~src:me.id ~dst
      (Message.Probe { rid; token; clip_lo; clip_hi; origin; hops = hops + 1; pred })
  in
  process_shower t me ~rid ~token ~origin ~hops ~clip_lo ~clip_hi ~local ~forward

(* ------------------------------------------------------------------ *)
(* Replica synchronization (rumor spreading + anti-entropy)             *)

let handle_replicate t (me : Node.t) ~item ~rounds_left =
  let changed = Store.put me.store item in
  if changed then Node.bump_epoch me;
  if changed && rounds_left > 0 && me.replicas <> [] then begin
    let targets = Rng.sample t.rng t.config.gossip_fanout me.replicas in
    List.iter
      (fun r ->
        Net.send t.net ~src:me.id ~dst:r (Message.Replicate { item; rounds_left = rounds_left - 1 }))
      targets
  end

let handle_sync t ~(me : Node.t) ~src msg =
  match (msg : Message.t) with
  | SyncDigest { digest } ->
    let theirs = Hashtbl.create (List.length digest) in
    List.iter (fun (k, id, v) -> Hashtbl.replace theirs (k, id) v) digest;
    (* Items they are missing or hold stale. *)
    let to_send = ref [] in
    Store.iter me.store (fun i ->
        match Hashtbl.find_opt theirs (i.key, i.item_id) with
        | Some v when v >= i.version -> ()
        | _ -> to_send := i :: !to_send);
    if !to_send <> [] then Net.send t.net ~src:me.id ~dst:src (Message.SyncItems { items = !to_send });
    (* Items I am missing or hold stale. *)
    let wanted =
      List.filter_map
        (fun (k, id, v) ->
          let mine = Store.find me.store k in
          match List.find_opt (fun (i : Store.item) -> String.equal i.item_id id) mine with
          | Some i when i.version >= v -> None
          | _ -> Some (k, id))
        digest
    in
    if wanted <> [] then Net.send t.net ~src:me.id ~dst:src (Message.SyncRequest { wanted })
  | SyncRequest { wanted } ->
    let items =
      List.filter_map
        (fun (k, id) ->
          List.find_opt (fun (i : Store.item) -> String.equal i.item_id id) (Store.find me.store k))
        wanted
    in
    if items <> [] then Net.send t.net ~src:me.id ~dst:src (Message.SyncItems { items })
  | SyncItems { items } ->
    List.iter (fun i -> if Store.put me.store i then Node.bump_epoch me) items
  | _ -> invalid_arg "Overlay.handle_sync: not a sync message"

(* ------------------------------------------------------------------ *)
(* Dispatcher                                                          *)

let dispatch t (me : Node.t) ~src msg =
  match (msg : Message.t) with
  | Lookup { rid; key; origin; hops } -> handle_lookup t me ~rid ~key ~origin ~hops
  | Insert { rid; item; origin; hops } -> handle_insert t me ~rid ~item ~origin ~hops
  | Update { rid; item; origin; hops; rounds } -> handle_update t me ~rid ~item ~origin ~hops ~rounds
  | Found { rid; items; hops; region } ->
    learn_shortcut t me ~peer:src ~region;
    finish_single t rid ~items ~hops ~complete:true
  | Ack { rid; hops; region } ->
    learn_shortcut t me ~peer:src ~region;
    finish_single t rid ~items:[] ~hops ~complete:true
  | Range { rid; token; lo; hi; clip_lo; clip_hi; origin; hops; strategy; budget } ->
    handle_range t me ~rid ~token ~lo ~hi ~clip_lo ~clip_hi ~origin ~hops ~strategy ~budget
  | RangeHit { rid; token; items; targets; hops } ->
    deliver_hit t rid ~from:src ~token ~items ~targets ~hops
  | Probe { rid; token; clip_lo; clip_hi; origin; hops; pred } ->
    handle_probe t me ~rid ~token ~clip_lo ~clip_hi ~origin ~hops ~pred
  | Replicate { item; rounds_left } -> handle_replicate t me ~item ~rounds_left
  | Delete { rid; key; item_id; origin; hops } -> handle_delete t me ~rid ~key ~item_id ~origin ~hops
  | Unreplicate { key; item_id } ->
    Store.remove me.store ~key ~item_id;
    Node.bump_epoch me
  | StatGossip { summaries } ->
    List.iter
      (fun s -> if Statcache.merge me.stat_cache s then cache_incr t "cache.stats.merged")
      summaries
  | Task { run; _ } -> run me.id
  | Exchange { run; _ } -> run me.id
  | (SyncDigest _ | SyncRequest _ | SyncItems _) as m -> handle_sync t ~me ~src m

let add_node t id =
  if Hashtbl.mem t.nodes id then invalid_arg "Overlay.add_node: duplicate id";
  let n = Node.create id in
  Shortcuts.set_capacity n.Node.shortcuts t.config.shortcut_capacity;
  Hashtbl.replace t.nodes id n;
  Net.register t.net id (fun ~src msg -> dispatch t n ~src msg);
  n

(* ------------------------------------------------------------------ *)
(* Public operations                                                   *)

let insert t ~origin ~key ~item_id ~payload ?(version = 0) ~k () =
  let rid = fresh_rid t in
  let item = { Store.key; item_id; payload; version } in
  let me = node t origin in
  let resend () = handle_insert t me ~rid ~item ~origin ~hops:0 in
  Hashtbl.replace t.pending rid (Psingle { op = "insert"; origin; resend; attempts = 0; via = None; started = Sim.now t.sim; k });
  arm_single_timeout t rid;
  resend ()

let update t ~origin ~key ~item_id ~payload ~version ?(rounds = 3) ~k () =
  let rid = fresh_rid t in
  let item = { Store.key; item_id; payload; version } in
  let me = node t origin in
  let resend () = handle_update t me ~rid ~item ~origin ~hops:0 ~rounds in
  Hashtbl.replace t.pending rid (Psingle { op = "update"; origin; resend; attempts = 0; via = None; started = Sim.now t.sim; k });
  arm_single_timeout t rid;
  resend ()

let delete t ~origin ~key ~item_id ~k =
  let rid = fresh_rid t in
  let me = node t origin in
  let resend () = handle_delete t me ~rid ~key ~item_id ~origin ~hops:0 in
  Hashtbl.replace t.pending rid (Psingle { op = "delete"; origin; resend; attempts = 0; via = None; started = Sim.now t.sim; k });
  arm_single_timeout t rid;
  resend ()

let lookup t ~origin ~key ~k =
  let rid = fresh_rid t in
  let me = node t origin in
  let resend () = handle_lookup t me ~rid ~key ~origin ~hops:0 in
  Hashtbl.replace t.pending rid (Psingle { op = "lookup"; origin; resend; attempts = 0; via = None; started = Sim.now t.sim; k });
  arm_single_timeout t rid;
  resend ()

let start_multi t ~op ~k =
  let rid = fresh_rid t in
  Hashtbl.replace t.pending rid
    (Pmulti
       {
         op;
         expected = Hashtbl.create 16;
         received = Hashtbl.create 16;
         missing = 0;
         peers = Hashtbl.create 16;
         items = [];
         hops = 0;
         started = Sim.now t.sim;
         k;
       });
  arm_multi_timeout t rid;
  rid

let range t ~origin ?(strategy = Message.Shower) ?budget ~lo ~hi ~k () =
  (match (budget, strategy) with
  | Some _, Message.Shower -> invalid_arg "Overlay.range: budget requires Sequential"
  | _ -> ());
  let rid = start_multi t ~op:"range" ~k in
  let me = node t origin in
  handle_range t me ~rid ~token:(fresh_rid t) ~lo ~hi ~clip_lo:lo ~clip_hi:(after_inclusive hi)
    ~origin ~hops:0 ~strategy ~budget

let prefix t ~origin ~prefix:p ~k =
  let rid = start_multi t ~op:"prefix" ~k in
  let me = node t origin in
  (* All keys extending [p]: inclusive bounds for local filtering, and the
     exclusive clip just past the last extension. *)
  let hi = p ^ String.make 64 '\xff' in
  handle_range t me ~rid ~token:(fresh_rid t) ~lo:p ~hi ~clip_lo:p ~clip_hi:(after_inclusive hi)
    ~origin ~hops:0 ~strategy:Message.Shower ~budget:None

let broadcast t ~origin ~pred ~k =
  let rid = start_multi t ~op:"broadcast" ~k in
  let me = node t origin in
  handle_probe t me ~rid ~token:(fresh_rid t) ~clip_lo:"" ~clip_hi:None ~origin ~hops:0 ~pred

let send_task t ~src ~dst ~bytes run = Net.send t.net ~src ~dst (Message.Task { bytes; run })

(* ------------------------------------------------------------------ *)
(* Synchronous wrappers                                                *)

let await t f =
  let cell = ref None in
  f (fun r -> cell := Some r);
  let completed = Sim.run_until t.sim (fun () -> !cell <> None) in
  match !cell with
  | Some r -> r
  | None ->
    ignore completed;
    { items = []; hops = 0; peers_hit = 0; complete = false; latency = 0.0 }

let insert_sync t ~origin ~key ~item_id ~payload ?version () =
  await t (fun k -> insert t ~origin ~key ~item_id ~payload ?version ~k ())

let lookup_sync t ~origin ~key = await t (fun k -> lookup t ~origin ~key ~k)

let delete_sync t ~origin ~key ~item_id = await t (fun k -> delete t ~origin ~key ~item_id ~k)

let update_sync t ~origin ~key ~item_id ~payload ~version ?rounds () =
  await t (fun k -> update t ~origin ~key ~item_id ~payload ~version ?rounds ~k ())

let range_sync t ~origin ?strategy ?budget ~lo ~hi () =
  await t (fun k -> range t ~origin ?strategy ?budget ~lo ~hi ~k ())

let prefix_sync t ~origin ~prefix:p = await t (fun k -> prefix t ~origin ~prefix:p ~k)
let broadcast_sync t ~origin ~pred = await t (fun k -> broadcast t ~origin ~pred ~k)
