type t = {
  refs_per_level : int;
  replication : int;
  max_depth : int;
  timeout_ms : float;
  retries : int;
  retry_backoff : float;
  retry_jitter : float;
  failover : bool;
  proximity_routing : bool;
  gossip_fanout : int;
  max_hops : int;
  shortcut_capacity : int;
  bulk_insert : bool;
  range_aggregation : bool;
  multi_probe : bool;
  agg_fanin : int;
  agg_flush_ms : float;
  adaptive_timeout : bool;
  min_timeout_ms : float;
  hot_replication : bool;
  hot_factor : float;
  hot_min_load : int;
  hot_max_boosts : int;
  spread_load : bool;
  store_backend : Store_intf.backend;
}

let default =
  {
    refs_per_level = 3;
    replication = 2;
    max_depth = 96;
    timeout_ms = 10_000.0;
    retries = 2;
    retry_backoff = 2.0;
    retry_jitter = 0.2;
    failover = true;
    proximity_routing = false;
    gossip_fanout = 2;
    max_hops = 128;
    shortcut_capacity = 128;
    bulk_insert = true;
    range_aggregation = true;
    multi_probe = true;
    agg_fanin = 8;
    agg_flush_ms = 2_500.0;
    adaptive_timeout = true;
    min_timeout_ms = 25.0;
    hot_replication = false;
    hot_factor = 3.0;
    hot_min_load = 32;
    hot_max_boosts = 3;
    spread_load = false;
    store_backend = Store_intf.Hash;
  }
