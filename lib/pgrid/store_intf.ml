(* The storage-backend contract shared by every per-peer store
   implementation (ROADMAP item 3).

   The overlay, the repair/anti-entropy machinery and the triple layer
   above all talk to {!Store}, which dispatches to one of three
   backends implementing this signature:

   - {!Backend_hash}: the original ordered-map store, unchanged — the
     default, and the reference implementation the differential test
     harness replays every backend against;
   - {!Backend_log}: a file-backed log-structured store (append-only
     records + the hash store as its in-memory index). Survives
     crash-restart: a revived peer replays its log and lets
     anti-entropy/{!Repair} reconcile whatever a torn tail lost;
   - {!Backend_packed}: a compressed in-memory store — repeated index
     keys dictionary-encoded into a shared byte arena, items flattened
     into int columns over raw arena spans, with a sorted slot index
     for binary-searched prefix/range lookups, after "Compressed
     Vertical Partitioning for Full-In-Memory RDF Management"
     (PAPERS.md).

   Ordering contract (load-bearing — see the differential suite in
   test/test_store.ml): every scan (find/range/with_prefix/iter/
   to_list) yields items in ascending key order, and items sharing a
   key in newest-first order of their first insertion, with an LWW
   update leaving its item's position unchanged. Call sites above the
   interface (e.g. {!Unistore_triple.Tstore}'s first-seen dedup of
   lookup replies) silently rely on replies being deterministic and
   identical across backends; making the order part of the signature
   turns that latent assumption into a tested contract. [digest] and
   [filter_partition] results are order-unspecified (all consumers are
   order-insensitive: digest feeds a hashtable, partition results are
   summed or discarded). *)

type item = { key : string; item_id : string; payload : string; version : int }

(* Memory accounting, from the same model the tests and BENCH_store.json
   check: [bytes] estimates the resident heap cost of the stored items
   (records, string headers and padding, container overhead — not
   GC-measured, so it is deterministic and comparable across backends);
   [triples] counts live items. *)
type stats = { bytes : int; triples : int }

(* Backend selection, threaded from [Unistore.config.store] / CLI
   [--backend] through {!Config.t.store_backend} down to
   {!Node.create}. [Log] stores each peer's segments as one append-only
   file under [dir] (created on demand). *)
type backend = Hash | Log of { dir : string } | Packed

let backend_label = function
  | Hash -> "hash"
  | Log _ -> "log"
  | Packed -> "packed"

(* Heap bytes of one immutable string: header word + data padded to a
   whole word with at least one terminator byte. *)
let string_bytes s = 8 + (8 * ((String.length s / 8) + 1))

(* Heap bytes of one boxed [item] record: header + 4 fields. *)
let item_record_bytes = 40

module type S = sig
  type t

  (* [put t item] inserts or updates: an existing entry with the same
     [(key, item_id)] is replaced iff the new version is greater or
     equal (idempotent-retry semantics). Returns [false] iff the write
     was stale. *)
  val put : t -> item -> bool

  val remove : t -> key:string -> item_id:string -> unit
  val find : t -> string -> item list
  val range : t -> lo:string -> hi:string -> item list
  val with_prefix : t -> string -> item list
  val size : t -> int
  val iter : t -> (item -> unit) -> unit
  val to_list : t -> item list
  val filter_partition : t -> (item -> bool) -> item list
  val digest : t -> (string * string * int) list
  val clear : t -> unit
  val stats : t -> stats
end
