module Statcache = Unistore_cache.Statcache
module Metrics = Unistore_obs.Metrics

(* Adaptive hot-path replication (the control plane of the heavy-traffic
   engine). One balance round reads the gossiped per-region load signal
   ({!Statcache.region_loads} as seen by the lowest-id live peer — every
   origin converges to the same view within O(log n) gossip rounds, so
   any fixed choice of reader is representative), flags regions whose
   served-request rate stands far above the mean, and has each hot
   region's owner ship its content to a few cold "boost" peers over
   ordinary [HotSync] messages. Boosts answer lookups for the region
   from the synced copy; owners advertise the serving set on replies so
   origins in spread mode rotate across it. When the load subsides below
   half the spawn threshold (hysteresis), the owner retires its boosts.

   Everything here is deterministic: the load view is sorted, candidate
   selection is sorted by (own-region load, id), and all messaging goes
   through the simulated network. *)

type report = {
  regions_seen : int;  (** regions with a gossiped load sample *)
  hot : (string * int) list;  (** hot region lower bounds with their load *)
  spawned : int;  (** new boost replicas created this round *)
  refreshed : int;  (** existing boosts re-synced this round *)
  retired : int;  (** boosts stood down this round *)
}

let incr ov name ~by =
  if by > 0 then
    match Overlay.metrics ov with Some m -> Metrics.incr m ~by name | None -> ()

(* All items of [owner]'s store that fall inside its region — the
   payload of a boost sync. Sorted for byte-stable message contents. *)
let region_items (owner : Node.t) =
  let lo, hi = Node.region owner in
  let keep key =
    String.compare key lo >= 0
    && match hi with None -> true | Some h -> String.compare key h < 0
  in
  let acc = ref [] in
  Store.iter owner.store (fun it -> if keep it.Store.key then acc := it :: !acc);
  List.sort
    (fun (a : Store.item) b ->
      match String.compare a.key b.key with
      | 0 -> String.compare a.item_id b.item_id
      | c -> c)
    !acc

(* The live owner of the region rooted at [lo]: the lowest-id live peer
   whose own region starts there (replicas of one leaf region are
   interchangeable for this purpose). *)
let find_owner live lo =
  List.find_opt (fun (nd : Node.t) -> String.equal (fst (Node.region nd)) lo) live

let sync owner_id ~region ~spread ~items net dst =
  Net.send net ~src:owner_id ~dst
    (Message.HotSync { region; owner = owner_id; spread; items; retire = false })

let retire owner_id net dst =
  Net.send net ~src:owner_id ~dst
    (Message.HotSync
       { region = ("", None); owner = owner_id; spread = []; items = []; retire = true })

let round ov =
  let cfg = Overlay.config ov in
  let net = Overlay.net ov in
  let live = List.filter (fun (nd : Node.t) -> Net.is_alive net nd.id) (Overlay.nodes ov) in
  match live with
  | [] -> { regions_seen = 0; hot = []; spawned = 0; refreshed = 0; retired = 0 }
  | controller :: _ ->
    let loads = Statcache.region_loads controller.Node.stat_cache in
    let n = List.length loads in
    (* Mean over every live region, not just the reporting ones: load
       summaries only exist for regions holding attribute-index keys,
       and dividing by that subset alone would inflate the baseline a
       hot spot must beat. *)
    let n_regions =
      List.length
        (List.sort_uniq String.compare
           (List.map (fun (nd : Node.t) -> fst (Node.region nd)) live))
    in
    let mean =
      if n_regions = 0 then 0.0
      else float_of_int (List.fold_left (fun a (_, l) -> a + l) 0 loads) /. float_of_int n_regions
    in
    let load_of =
      let tbl = Hashtbl.create 16 in
      List.iter (fun (lo, l) -> Hashtbl.replace tbl lo l) loads;
      fun lo -> Option.value ~default:0 (Hashtbl.find_opt tbl lo)
    in
    let is_hot l = float_of_int l >= cfg.Config.hot_factor *. mean && l >= cfg.Config.hot_min_load in
    let is_cool l = float_of_int l < cfg.Config.hot_factor /. 2.0 *. mean in
    let hot = List.filter (fun (_, l) -> is_hot l) loads in
    let spawned = ref 0 and refreshed = ref 0 and retired = ref 0 in
    List.iter
      (fun (lo, _load) ->
        match find_owner live lo with
        | None -> ()
        | Some owner ->
          let keep = List.filter (Net.is_alive net) owner.Node.boosts in
          let wanted = cfg.Config.hot_max_boosts - List.length keep in
          let fresh =
            if wanted <= 0 then []
            else
              (* Cold candidates: live peers outside this region, not
                 already boosting anything, coolest own region first. *)
              live
              |> List.filter (fun (nd : Node.t) ->
                     (not (String.equal (fst (Node.region nd)) lo))
                     && Option.is_none nd.Node.hot_region
                     && not (List.mem nd.id keep))
              |> List.map (fun (nd : Node.t) -> (load_of (fst (Node.region nd)), nd.Node.id))
              |> List.sort (fun (l1, i1) (l2, i2) ->
                     match Int.compare l1 l2 with 0 -> Int.compare i1 i2 | c -> c)
              |> List.filteri (fun i _ -> i < wanted)
              |> List.map snd
          in
          let boosts = keep @ fresh in
          if boosts <> [] then begin
            owner.Node.boosts <- boosts;
            let region = Node.region owner in
            let spread = owner.Node.id :: boosts in
            let items = region_items owner in
            (* Refresh every boost (old and new) with the current
               content: staleness is bounded by the round interval. *)
            List.iter (sync owner.Node.id ~region ~spread ~items net) boosts;
            spawned := !spawned + List.length fresh;
            refreshed := !refreshed + List.length keep
          end)
      hot;
    (* Hysteresis: stand boosts down only once the load drops below half
       the spawn threshold, so a region hovering near the line does not
       thrash between spawn and retire every round. *)
    List.iter
      (fun (nd : Node.t) ->
        if nd.Node.boosts <> [] then begin
          let lo = fst (Node.region nd) in
          let l = load_of lo in
          if is_cool l && not (is_hot l) then begin
            let live_boosts = List.filter (Net.is_alive net) nd.Node.boosts in
            List.iter (retire nd.Node.id net) live_boosts;
            retired := !retired + List.length live_boosts;
            nd.Node.boosts <- []
          end
        end)
      live;
    incr ov "balance.spawned" ~by:!spawned;
    incr ov "balance.refreshed" ~by:!refreshed;
    incr ov "balance.retired" ~by:!retired;
    { regions_seen = n; hot; spawned = !spawned; refreshed = !refreshed; retired = !retired }
