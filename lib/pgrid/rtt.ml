(* Per-peer request-latency estimation feeding adaptive retry
   deadlines (Jacobson/Karels-style: EWMA mean plus a deviation term),
   in the spirit of swift-libp2p's PeerLatencyTracker. Each node keeps
   one tracker and observes the end-to-end latency of every completed
   operation, keyed three ways: by responding peer (the sharpest
   signal, available once a shortcut pins a responder), by operation
   class ("lookup", "insert", "range", ...; fan-out classes have very
   different latency profiles), and globally. Deadline lookup falls
   back peer -> class -> global -> configured fixed timeout, so a cold
   tracker behaves exactly like the fixed-timeout code it replaces.

   Only successful completions are observed (Karn's algorithm: samples
   from retried exchanges are ambiguous), so the estimate cannot be
   dragged up by its own give-ups. *)

type entry = { mutable mean : float; mutable dev : float; mutable n : int }

type t = {
  per_peer : (int, entry) Hashtbl.t;
  per_class : (string, entry) Hashtbl.t;
  global : entry;
  alpha : float;  (* EWMA gain for the mean *)
  beta : float;  (* EWMA gain for the mean deviation *)
}

let create () =
  {
    per_peer = Hashtbl.create 16;
    per_class = Hashtbl.create 8;
    global = { mean = 0.0; dev = 0.0; n = 0 };
    alpha = 0.125;
    beta = 0.25;
  }

let update t (e : entry) sample =
  if e.n = 0 then begin
    e.mean <- sample;
    e.dev <- sample /. 2.0
  end
  else begin
    let err = sample -. e.mean in
    e.mean <- e.mean +. (t.alpha *. err);
    e.dev <- e.dev +. (t.beta *. (Float.abs err -. e.dev))
  end;
  e.n <- e.n + 1

let peer_entry t peer =
  match Hashtbl.find_opt t.per_peer peer with
  | Some e -> e
  | None ->
    let e = { mean = 0.0; dev = 0.0; n = 0 } in
    Hashtbl.replace t.per_peer peer e;
    e

let class_entry t cls =
  match Hashtbl.find_opt t.per_class cls with
  | Some e -> e
  | None ->
    let e = { mean = 0.0; dev = 0.0; n = 0 } in
    Hashtbl.replace t.per_class cls e;
    e

(* [observe t ?peer ~cls sample] folds one completed-operation latency
   (simulated ms) into the peer, class and global estimates. *)
let observe t ?peer ~cls sample =
  if sample >= 0.0 then begin
    (match peer with Some p -> update t (peer_entry t p) sample | None -> ());
    update t (class_entry t cls) sample;
    update t t.global sample
  end

let forget_peer t peer = Hashtbl.remove t.per_peer peer

(* An entry predicts once it has a couple of samples; mean + 4 dev is
   the classic RTO, and the extra 2x headroom keeps rare-but-legitimate
   stragglers (deep fan-outs, lognormal WAN tails) from triggering
   spurious retries that would perturb fault-free runs. *)
let min_samples = 2
let headroom = 2.0

let predict e = if e.n >= min_samples then Some ((e.mean +. (4.0 *. e.dev)) *. headroom) else None

(* [deadline t ?peer ~cls ~fallback ~min_ms ~max_ms] is the adaptive
   retry deadline: the sharpest available estimate clamped into
   [min_ms, max_ms], or [fallback] (the fixed configured timeout) when
   the tracker is cold. *)
let deadline t ?peer ~cls ~fallback ~min_ms ~max_ms () =
  let est =
    match Option.bind peer (fun p -> Option.bind (Hashtbl.find_opt t.per_peer p) predict) with
    | Some _ as s -> s
    | None -> (
      match Option.bind (Hashtbl.find_opt t.per_class cls) predict with
      | Some _ as s -> s
      | None -> predict t.global)
  in
  match est with
  | Some d -> Float.max min_ms (Float.min max_ms d)
  | None -> fallback

let samples t = t.global.n
let mean t = if t.global.n = 0 then Float.nan else t.global.mean
