(* Facade over the pluggable storage backends (see {!Store_intf} for
   the contract and {!Backend_hash}/{!Backend_log}/{!Backend_packed}
   for the implementations). Call sites are backend-agnostic; the
   variant dispatch below is the whole cost of pluggability. *)

type item = Store_intf.item = {
  key : string;
  item_id : string;
  payload : string;
  version : int;
}

type stats = Store_intf.stats = { bytes : int; triples : int }
type backend = Store_intf.backend = Hash | Log of { dir : string } | Packed

let backend_label = Store_intf.backend_label

let pp_item fmt (i : item) =
  Format.fprintf fmt "{key=%S id=%s v=%d payload=%S}" i.key i.item_id i.version i.payload

let item_bytes (i : item) =
  24 + String.length i.key + String.length i.item_id + String.length i.payload

type t =
  | H of Backend_hash.t
  | L of Backend_log.t
  | P of Backend_packed.t

(* Distinguishes log files when several stores share a dir and the
   caller gives no [name] (tests, ad-hoc stores). Deterministic: resets
   with the process, and named stores (one per peer id) don't use it. *)
let anon_counter = ref 0

let create ?(backend = Hash) ?name () =
  match backend with
  | Hash -> H (Backend_hash.create ())
  | Packed -> P (Backend_packed.create ())
  | Log { dir } ->
    let base =
      match name with
      | Some n -> n
      | None ->
        incr anon_counter;
        Printf.sprintf "store-%d" !anon_counter
    in
    L (Backend_log.create ~path:(Filename.concat dir (base ^ ".log")))

let kind = function H _ -> Hash | L l -> Log { dir = Filename.dirname (Backend_log.path l) } | P _ -> Packed

let put t i =
  match t with
  | H b -> Backend_hash.put b i
  | L b -> Backend_log.put b i
  | P b -> Backend_packed.put b i

let remove t ~key ~item_id =
  match t with
  | H b -> Backend_hash.remove b ~key ~item_id
  | L b -> Backend_log.remove b ~key ~item_id
  | P b -> Backend_packed.remove b ~key ~item_id

let find t key =
  match t with
  | H b -> Backend_hash.find b key
  | L b -> Backend_log.find b key
  | P b -> Backend_packed.find b key

let range t ~lo ~hi =
  match t with
  | H b -> Backend_hash.range b ~lo ~hi
  | L b -> Backend_log.range b ~lo ~hi
  | P b -> Backend_packed.range b ~lo ~hi

let with_prefix t prefix =
  match t with
  | H b -> Backend_hash.with_prefix b prefix
  | L b -> Backend_log.with_prefix b prefix
  | P b -> Backend_packed.with_prefix b prefix

let size = function
  | H b -> Backend_hash.size b
  | L b -> Backend_log.size b
  | P b -> Backend_packed.size b

let iter t f =
  match t with
  | H b -> Backend_hash.iter b f
  | L b -> Backend_log.iter b f
  | P b -> Backend_packed.iter b f

let to_list = function
  | H b -> Backend_hash.to_list b
  | L b -> Backend_log.to_list b
  | P b -> Backend_packed.to_list b

let filter_partition t pred =
  match t with
  | H b -> Backend_hash.filter_partition b pred
  | L b -> Backend_log.filter_partition b pred
  | P b -> Backend_packed.filter_partition b pred

let digest = function
  | H b -> Backend_hash.digest b
  | L b -> Backend_log.digest b
  | P b -> Backend_packed.digest b

let clear = function
  | H b -> Backend_hash.clear b
  | L b -> Backend_log.clear b
  | P b -> Backend_packed.clear b

let stats = function
  | H b -> Backend_hash.stats b
  | L b -> Backend_log.stats b
  | P b -> Backend_packed.stats b

let log_path = function L b -> Some (Backend_log.path b) | H _ | P _ -> None
let log_bytes = function L b -> Backend_log.log_bytes b | H _ | P _ -> 0
let sync = function L b -> Backend_log.sync b | H _ | P _ -> ()

(* Crash + restart in one step. In-memory backends lose everything (a
   crashed peer restarts cold). The log backend replays its file:
   [keep_frac] injects the torn tail first — the fraction of log bytes
   that survived the crash, cut at an arbitrary byte offset — and the
   replay recovers every record fully contained in the surviving
   prefix. Returns the number of recovered items. *)
let crash_restart ?keep_frac t =
  match t with
  | H b ->
    Backend_hash.clear b;
    0
  | P b ->
    Backend_packed.clear b;
    0
  | L b ->
    Backend_log.crash b;
    (match keep_frac with
    | Some f ->
      let keep = int_of_float (f *. float_of_int (Backend_log.log_bytes b)) in
      Backend_log.truncate_tail b ~keep_bytes:keep
    | None -> ());
    Backend_log.reopen b
