(** P-Grid wire messages.

    Routing is by full encoded keys (byte strings): every node knows its
    own split boundaries, so a key is enough to route greedily. Closures
    appear in two places ([Probe] predicates and [Task] payloads): the
    simulator ships OCaml values instead of serialized bytes, with [size]
    estimating what the wire encoding would cost so that bandwidth
    accounting stays meaningful. *)

type range_strategy =
  | Shower  (** parallel: split the range across complementary subtrees *)
  | Sequential  (** serial min-bound traversal: answer, then forward the rest *)

val pp_strategy : Format.formatter -> range_strategy -> unit

type t =
  | Insert of { rid : int; item : Store.item; origin : int; hops : int }
  | Update of { rid : int; item : Store.item; origin : int; hops : int; rounds : int }
      (** versioned write propagated to replicas by rumor spreading with
          [rounds] residual hops (Datta et al., ICDCS'03 style) *)
  | Delete of { rid : int; key : string; item_id : string; origin : int; hops : int }
      (** remove one item (routed like an insert; replicas notified) *)
  | Replicate of { item : Store.item; rounds_left : int }
      (** rumor-spreading replica update *)
  | Unreplicate of { key : string; item_id : string }
      (** replica-side removal matching a [Delete] *)
  | Ack of { rid : int; hops : int; region : string * string option }
      (** [region] is the responding peer's key region, so the origin can
          learn a routing shortcut to it (see
          {!Unistore_cache.Shortcuts}) *)
  | Lookup of { rid : int; key : string; origin : int; hops : int }
  | Found of {
      rid : int;
      items : Store.item list;
      hops : int;
      region : string * string option;
      spread : int list;
          (** other peers currently serving [region] (replicas and
              hot-path boosts); origins in spread mode learn them all as
              shortcut targets. Empty unless hot-path replication is on. *)
    }
      (** carries the responder's region like [Ack] *)
  | Range of {
      rid : int;
      token : int;  (** unique per message; echoed by the receiver's hit *)
      lo : string;  (** exact inclusive bounds for local filtering *)
      hi : string;
      clip_lo : string;  (** routing clip, inclusive *)
      clip_hi : string option;  (** routing clip, exclusive; [None] = +inf *)
      origin : int;
      reply_to : int;
          (** where the receiver's hit goes: the origin, or — under
              in-network range aggregation — the parent in the split
              tree, which merges child hits before replying upward *)
      hops : int;
      strategy : range_strategy;
      budget : int option;
          (** remaining result budget for sequential top-N traversals:
              stop forwarding once this many items were produced *)
    }
  | RangeHit of {
      rid : int;
      token : int;
      items : Store.item list;
      targets : int list;
      origin : int;
      hops : int;
    }
      (** [token] identifies which message this hit answers; [targets]
          lists the tokens of messages the sender forwarded whose hits
          it did {e not} merge itself; [origin] lets a peer holding no
          aggregation buffer for [token] relay the hit home *)
  | InsertBatch of { rid : int; items : Store.item list; origin : int; hops : int }
      (** bulk insert: sorted items that split shower-style as the batch
          descends the trie; each covering peer stores its share and
          acks it as one [AckBatch] *)
  | AckBatch of { rid : int; keys : string list; region : string * string option; hops : int }
      (** per-region ack of a bulk insert: [keys] were stored by the
          sender; unacked keys are selectively retransmitted *)
  | MultiLookup of { rid : int; keys : string list; origin : int; hops : int }
      (** batched bind-join probe: deduplicated lookup keys that split
          like an [InsertBatch]; answered per region *)
  | MultiFound of {
      rid : int;
      found : (string * Store.item list) list;
      region : string * string option;
      hops : int;
    }  (** one region's answers to a [MultiLookup] *)
  | Probe of {
      rid : int;
      token : int;
      clip_lo : string;
      clip_hi : string option;
      origin : int;
      hops : int;
      pred : Store.item -> bool;
      reduce : (Store.item list -> Store.item list) option;
          (** leaf-side partial reduction over the locally matched items
              (e.g. a local skyline); must only drop items, never invent
              them — the origin re-runs the full operator over the
              survivors *)
    }  (** broadcast a local scan predicate to every peer intersecting the clip *)
  | Task of { bytes : int; run : int -> unit }
      (** application-shipped computation (mutant query plans); [run]
          receives the executing peer id *)
  | SyncDigest of { digest : (string * string * int) list }
  | SyncRequest of { wanted : (string * string) list }
  | SyncItems of { items : Store.item list }
  | StatGossip of { summaries : Unistore_cache.Statcache.summary list }
      (** epidemic spread of sampled per-attribute statistics (see
          {!Gossip.stats_round}) *)
  | HotSync of {
      region : string * string option;
      owner : int;
      spread : int list;  (** full serving set for [region], owner included *)
      items : Store.item list;  (** current content of the owner's region *)
      retire : bool;  (** [true] = stop boosting [region] instead *)
    }
      (** hot-path replication control: the owner of an overloaded
          region ships its content to a boost replica (or retires one);
          see {!Balance.round} *)
  | Exchange of { bytes : int; run : int -> unit }
      (** bootstrap pairwise exchange step (see {!Build.bootstrap}) *)

(** Fixed per-message envelope cost assumed by [size] (addressing,
    correlation ids, framing). Batching wins come largely from paying
    this once per batch instead of once per item. *)
val header : int

(** Estimated wire size in bytes. *)
val size : t -> int

(** Constructor name for tracing, e.g. ["lookup"], ["range"]. *)
val kind : t -> string

(** Correlation id for request/reply trace linting: the [rid] carried by
    routed requests and their replies, [-1] for fire-and-forget traffic
    (replication, anti-entropy, shipped closures). *)
val corr : t -> int
