(** Self-healing maintenance: periodic repair of routing tables and
    replica groups after churn.

    One {!round} re-points dead routing references ({!Build.repair_refs}),
    adopts stray same-path peers (freshly {!Build.join}ed or revived) into
    their leaf's replica group, migrates spare peers from over-replicated
    leaves into depleted ones — with an accounted [SyncItems] state
    transfer from a surviving member — and invalidates routing shortcuts
    that point at dead or migrated peers. Deterministic: leaves are
    visited in path order, members in id order, migrants assigned
    neediest-leaf-first.

    A leaf whose members are all dead cannot be repaired (its data lives
    only in dead stores until they revive); such groups are counted in
    [unrepaired]. *)

type report = {
  adopted : int;  (** stray same-path peers newly registered into groups *)
  moved : int;  (** peers migrated into depleted replica groups *)
  resynced_bytes : int;  (** payload shipped by migration state transfers *)
  shortcuts_dropped : int;  (** stale shortcut entries invalidated *)
  unrepaired : int;  (** groups still below replication (no donors left) *)
}

(** Run one repair round. Bookkeeping is immediate; the migration state
    transfers are real messages, so callers should drive the simulator
    (e.g. [Sim.run_all]) afterwards to let them land. Records
    [fault.repair.*] metrics when a registry is attached. *)
val round : Overlay.t -> report

val pp_report : Format.formatter -> report -> unit
