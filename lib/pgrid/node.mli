(** A P-Grid peer.

    Each peer sits at a leaf of the virtual binary trie: its [path] is the
    sequence of branch choices from the root. Unlike a plain hash-prefix
    trie, P-Grid's load balancing chooses every split point from the
    {e data distribution} (Aberer et al., VLDB'05): level [l] of the trie
    divides its region at boundary [splits.(l)] (an encoded key); bit 0
    means "keys below the boundary", bit 1 "keys at or above it". A peer
    therefore knows, for every level of its own path, the boundary that
    was used — that is all the state greedy prefix routing needs.

    For every level [l] it also keeps references to peers of the
    complementary subtree, which makes any key reachable in at most
    [length path] hops. *)

type t = {
  id : int;
  mutable path : Unistore_util.Bitkey.t;
  mutable splits : string array;  (** boundary key per level; length = path length *)
  mutable refs : int list array;  (** level -> complementary-subtree peers *)
  mutable replicas : int list;  (** other peers with an identical path *)
  store : Store.t;
  mutable write_epoch : int;
      (** counts local store changes — the freshness version attached to
          sampled statistics (see {!Unistore_cache.Statcache}) *)
  shortcuts : Unistore_cache.Shortcuts.t;
      (** learned region → peer routing shortcuts (capacity set by
          {!Config.t.shortcut_capacity} at registration) *)
  stat_cache : Unistore_cache.Statcache.t;
      (** gossiped per-attribute statistics summaries *)
  rtt : Rtt.t;
      (** per-peer/per-class EWMA latency estimates feeding adaptive
          retry deadlines (see {!Config.t.adaptive_timeout}) *)
  hot_store : Store.t;
      (** boost-replica copy of another peer's hot region — kept apart
          from [store] so region-placement invariants still hold *)
  mutable hot_region : (string * string option) option;
      (** the boosted region when this peer serves as a boost replica *)
  mutable hot_owner : int;  (** owner of the boosted region, [-1] if none *)
  mutable hot_spread : int list;
      (** full serving set (owner side) advertised in boost replies *)
  mutable boosts : int list;
      (** as an owner: peers currently boosting this node's region *)
  mutable served : int;  (** request messages handled (monotone) *)
  mutable served_mark : int;  (** [served] at the last statistics sample *)
  mutable region_cache : (string * string option) option;
      (** memoized {!region} — [covers] runs on every routing decision;
          invalidated by {!set_path}/{!extend}. Code that mutates
          [path]/[splits] directly (tests) must reset it to [None]. *)
}

(** [create ?backend id] — [backend] (default [Hash]) selects the main
    store's implementation; the log backend names its file after [id].
    [hot_store] always stays in-memory (it is a soft replica copy). *)
val create : ?backend:Store_intf.backend -> int -> t

(** [bump_epoch t] records one local store change. *)
val bump_epoch : t -> unit

(** [bump_served t] counts one handled request message — the raw signal
    behind the gossiped per-region load statistic. *)
val bump_served : t -> unit

(** Requests handled since the previous call (advances the mark);
    consumed by {!Unistore_triple.Stat_sample} once per gossip round. *)
val served_delta : t -> int

(** [hot_covers t key]: this peer boosts a hot region containing [key]. *)
val hot_covers : t -> string -> bool

(** Drop the boost assignment and the synced hot copy. *)
val clear_hot : t -> unit

(** [set_path t path splits] updates position and boundaries together
    ([splits] must have one entry per path level). Existing refs at
    surviving levels are preserved. *)
val set_path : t -> Unistore_util.Bitkey.t -> string array -> unit

(** [extend t ~bit ~boundary] descends one level. *)
val extend : t -> bit:bool -> boundary:string -> unit

(** [refs_at t l] is the (possibly empty) reference list at level [l]. *)
val refs_at : t -> int -> int list

(** [add_ref t ~level peer ~cap] adds [peer] at [level] unless present,
    evicting the oldest entry beyond [cap]. *)
val add_ref : t -> level:int -> int -> cap:int -> unit

val remove_ref : t -> int -> unit

(** [add_replica t peer] records a same-path replica (idempotent). *)
val add_replica : t -> int -> unit

val remove_replica : t -> int -> unit

(** Key region covered by this peer: [(lo, hi)] with [lo] inclusive and
    [hi] exclusive; [hi = None] means unbounded above. *)
val region : t -> string * string option

(** [covers t key] holds iff [key] lies in {!region}. *)
val covers : t -> string -> bool

(** [key_side t ~level key] is the branch ([false] = below the boundary)
    the key takes at one of this peer's levels. *)
val key_side : t -> level:int -> string -> bool

(** Total routing-table entries (for table-size experiments). *)
val table_size : t -> int

val pp : Format.formatter -> t -> unit
