(* File-backed log-structured store: an append-only record file plus
   the hash store as its in-memory index.

   Every mutation appends one binary record ('P' put / 'R' remove /
   'C' clear) and applies it to the index; opening a path replays the
   file to rebuild the index. Writes go through a buffered channel and
   are never fsynced — the simulator does not model disk latency — so
   the crash model is explicit instead: {!crash} closes the channel
   (process death), {!truncate_tail} injects the torn tail (the page-
   cache suffix a real crash would lose, cut at an arbitrary byte, mid-
   record allowed), and {!reopen} replays the surviving prefix. Replay
   stops at the first incomplete or unparseable record and truncates
   the file there, so a torn tail costs exactly the records it
   clipped; the revived peer then lets anti-entropy/{!Repair} restore
   the delta from its replica group.

   Record wire format (big-endian):
     'P' version:8 klen:4 idlen:4 plen:4 key id payload
     'R' klen:4 idlen:4 key id
     'C' *)

open Store_intf

type t = {
  path : string;
  mem : Backend_hash.t;
  mutable chan : out_channel option;  (* [None] while crashed *)
  mutable length : int;  (* logical end of the log, in bytes *)
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let read_file path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  end
  else ""

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Record encoding                                                     *)

let add_u32 b n = Buffer.add_int32_be b (Int32.of_int n)

let encode_put (i : item) =
  let b = Buffer.create (21 + String.length i.key + String.length i.item_id + String.length i.payload) in
  Buffer.add_char b 'P';
  Buffer.add_int64_be b (Int64.of_int i.version);
  add_u32 b (String.length i.key);
  add_u32 b (String.length i.item_id);
  add_u32 b (String.length i.payload);
  Buffer.add_string b i.key;
  Buffer.add_string b i.item_id;
  Buffer.add_string b i.payload;
  Buffer.contents b

let encode_remove ~key ~item_id =
  let b = Buffer.create (9 + String.length key + String.length item_id) in
  Buffer.add_char b 'R';
  add_u32 b (String.length key);
  add_u32 b (String.length item_id);
  Buffer.add_string b key;
  Buffer.add_string b item_id;
  Buffer.contents b

let get_u32 s off = Int32.to_int (String.get_int32_be s off)

(* Replay [s] into [mem], stopping at the first torn (incomplete) or
   unparseable record. Returns the byte offset of the valid prefix. *)
let replay s mem =
  let n = String.length s in
  let pos = ref 0 in
  let valid = ref 0 in
  let stop = ref false in
  while (not !stop) && !pos < n do
    (match s.[!pos] with
    | 'C' ->
      Backend_hash.clear mem;
      pos := !pos + 1;
      valid := !pos
    | 'P' when !pos + 21 <= n ->
      let version = Int64.to_int (String.get_int64_be s (!pos + 1)) in
      let klen = get_u32 s (!pos + 9) in
      let idlen = get_u32 s (!pos + 13) in
      let plen = get_u32 s (!pos + 17) in
      if klen < 0 || idlen < 0 || plen < 0 || !pos + 21 + klen + idlen + plen > n then stop := true
      else begin
        let key = String.sub s (!pos + 21) klen in
        let item_id = String.sub s (!pos + 21 + klen) idlen in
        let payload = String.sub s (!pos + 21 + klen + idlen) plen in
        ignore (Backend_hash.put mem { key; item_id; payload; version });
        pos := !pos + 21 + klen + idlen + plen;
        valid := !pos
      end
    | 'R' when !pos + 9 <= n ->
      let klen = get_u32 s (!pos + 1) in
      let idlen = get_u32 s (!pos + 5) in
      if klen < 0 || idlen < 0 || !pos + 9 + klen + idlen > n then stop := true
      else begin
        let key = String.sub s (!pos + 9) klen in
        let item_id = String.sub s (!pos + 9 + klen) idlen in
        Backend_hash.remove mem ~key ~item_id;
        pos := !pos + 9 + klen + idlen;
        valid := !pos
      end
    | _ -> stop := true);
    ()
  done;
  !valid

(* ------------------------------------------------------------------ *)
(* Open / crash / restart                                              *)

let open_append path =
  open_out_gen [ Open_wronly; Open_creat; Open_append; Open_binary ] 0o644 path

(* Rebuild the index from the file's valid prefix, truncate any torn
   suffix away, and resume appending. Returns the recovered item
   count. *)
let reopen t =
  (match t.chan with
  | Some oc ->
    close_out oc;
    t.chan <- None
  | None -> ());
  let s = read_file t.path in
  Backend_hash.clear t.mem;
  let valid = replay s t.mem in
  if valid < String.length s then write_file t.path (String.sub s 0 valid);
  t.length <- valid;
  t.chan <- Some (open_append t.path);
  Backend_hash.size t.mem

let create ~path =
  mkdir_p (Filename.dirname path);
  let t = { path; mem = Backend_hash.create (); chan = None; length = 0 } in
  ignore (reopen t);
  t

let path t = t.path
let log_bytes t = t.length

(* Process death: drop the channel (flushing — torn tails are injected
   explicitly below, so tests control exactly what survives). *)
let crash t =
  match t.chan with
  | Some oc ->
    close_out oc;
    t.chan <- None
  | None -> ()

(* Inject the torn tail: keep only the first [keep_bytes] bytes of the
   log, as if everything after them never reached the disk. Only
   meaningful between {!crash} and {!reopen}. *)
let truncate_tail t ~keep_bytes =
  let s = read_file t.path in
  let keep = max 0 (min keep_bytes (String.length s)) in
  write_file t.path (String.sub s 0 keep);
  t.length <- keep

(* ------------------------------------------------------------------ *)
(* Store_intf.S                                                        *)

let append t s =
  match t.chan with
  | None -> ()  (* crashed: the peer is dead; nothing to persist *)
  | Some oc ->
    output_string oc s;
    t.length <- t.length + String.length s

let put t (i : item) =
  if Backend_hash.put t.mem i then begin
    append t (encode_put i);
    true
  end
  else false

let remove t ~key ~item_id =
  let present = List.exists (fun (i : item) -> String.equal i.item_id item_id) (Backend_hash.find t.mem key) in
  if present then append t (encode_remove ~key ~item_id);
  Backend_hash.remove t.mem ~key ~item_id

let find t key = Backend_hash.find t.mem key
let range t ~lo ~hi = Backend_hash.range t.mem ~lo ~hi
let with_prefix t prefix = Backend_hash.with_prefix t.mem prefix
let size t = Backend_hash.size t.mem
let iter t f = Backend_hash.iter t.mem f
let to_list t = Backend_hash.to_list t.mem

let filter_partition t pred =
  let removed = Backend_hash.filter_partition t.mem pred in
  List.iter (fun (i : item) -> append t (encode_remove ~key:i.key ~item_id:i.item_id)) removed;
  removed

let digest t = Backend_hash.digest t.mem

(* A clear supersedes the whole history: restart the segment instead of
   appending a 'C' record to an ever-growing file. *)
let clear t =
  Backend_hash.clear t.mem;
  match t.chan with
  | Some oc ->
    close_out oc;
    write_file t.path "";
    t.length <- 0;
    t.chan <- Some (open_append t.path)
  | None ->
    write_file t.path "";
    t.length <- 0

(* Memory cost only — the index; the on-disk segment is {!log_bytes}. *)
let stats t = Backend_hash.stats t.mem

(* Flush buffered appends to the OS (tests that read the file
   out-of-band; crash paths flush via close). *)
let sync t = match t.chan with Some oc -> flush oc | None -> ()
