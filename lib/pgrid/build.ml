module Bitkey = Unistore_util.Bitkey
module Rng = Unistore_util.Rng

(* ------------------------------------------------------------------ *)
(* Split-point selection                                               *)

(* Byte-string midpoint of [lo, hi) over a fixed 32-byte window: the
   data-oblivious boundary used by the uniform (no-load-balancing)
   baseline. Returns [None] when the interval cannot be bisected. *)
let midpoint lo hi =
  let w = 32 in
  let pad s fill =
    String.init w (fun i -> if i < String.length s then s.[i] else fill)
  in
  let a = pad lo '\x00' in
  let b = match hi with None -> String.make w '\xff' | Some h -> pad h '\x00' in
  if String.compare a b >= 0 then None
  else begin
    (* (a + b) / 2 in big-endian base 256. *)
    let sum = Bytes.make (w + 1) '\000' in
    let carry = ref 0 in
    for i = w - 1 downto 0 do
      let s = Char.code a.[i] + Char.code b.[i] + !carry in
      Bytes.set sum (i + 1) (Char.chr (s land 0xFF));
      carry := s lsr 8
    done;
    Bytes.set sum 0 (Char.chr !carry);
    let mid = Bytes.make w '\000' in
    let rem = ref 0 in
    for i = 0 to w do
      let v = (!rem * 256) + Char.code (Bytes.get sum i) in
      if i > 0 then Bytes.set mid (i - 1) (Char.chr (v / 2));
      rem := v mod 2
    done;
    let m = Bytes.to_string mid in
    (* The boundary must strictly exceed [lo] so the low side is a proper
       subregion. *)
    if String.compare m a > 0 then Some m else None
  end

(* Median boundary of a non-empty multiset of keys: the element at the
   midpoint, bumped up past ties so that both sides are non-empty.
   [None] when every key is equal (a hot spot that only replication can
   spread). *)
let median_boundary sorted_keys =
  let arr = Array.of_list sorted_keys in
  let n = Array.length arr in
  if n = 0 then None
  else begin
    let candidate = arr.(n / 2) in
    if String.compare candidate arr.(0) > 0 then Some candidate
    else begin
      (* Everything up to the midpoint is equal: find the first strictly
         greater key. *)
      let rec scan i =
        if i >= n then None
        else if String.compare arr.(i) arr.(0) > 0 then Some arr.(i)
        else scan (i + 1)
      in
      scan (n / 2)
    end
  end

(* ------------------------------------------------------------------ *)
(* Oracle construction                                                 *)

let oracle sim ~latency ~rng ?drop ~config ~n ~sample_keys ?(balanced = false) () =
  if n < 1 then invalid_arg "Build.oracle: n < 1";
  let rng = Rng.split rng in
  let ov = Overlay.create sim ~latency ~rng ?drop ~config () in
  let all_nodes = List.init n (fun i -> Overlay.add_node ov i) in
  let repl = max 1 config.Config.replication in
  let leaves = ref [] in
  (* [keys] arrives sorted; [region] is the (lo, hi) interval of this
     subtree, used by the uniform baseline's midpoint splits. *)
  let rec split path splits region peers keys =
    let np = List.length peers in
    let stop () = leaves := (path, splits, peers) :: !leaves in
    if np < 2 * repl || Bitkey.length path >= config.Config.max_depth then stop ()
    else begin
      let boundary =
        if balanced || keys = [] then midpoint (fst region) (snd region)
        else median_boundary keys
      in
      match boundary with
      | None -> stop ()
      | Some b ->
        let k0, k1 = List.partition (fun k -> String.compare k b < 0) keys in
        let n0 =
          if balanced || keys = [] then np / 2
          else begin
            (* Peers proportional to data share: the converged state of
               P-Grid's storage load balancing (Aberer et al., VLDB'05). *)
            let frac = float_of_int (List.length k0) /. float_of_int (List.length keys) in
            int_of_float (Float.round (frac *. float_of_int np))
          end
        in
        let n0 = max repl (min (np - repl) n0) in
        let arr = Array.of_list peers in
        Rng.shuffle rng arr;
        let p0 = Array.to_list (Array.sub arr 0 n0) in
        let p1 = Array.to_list (Array.sub arr n0 (np - n0)) in
        let lo, hi = region in
        split (Bitkey.append_bit path false) (splits @ [ b ]) (lo, Some b) p0 k0;
        split (Bitkey.append_bit path true) (splits @ [ b ]) (b, hi) p1 k1
    end
  in
  split Bitkey.empty [] ("", None) all_nodes (List.sort String.compare sample_keys);
  let leaves = Array.of_list !leaves in
  (* Paths, boundaries and replica groups. *)
  Array.iter
    (fun (path, splits, peers) ->
      let splits = Array.of_list splits in
      List.iter
        (fun (nd : Node.t) ->
          Node.set_path nd path splits;
          List.iter (fun (other : Node.t) -> Node.add_replica nd other.id) peers)
        peers)
    leaves;
  (* Routing references. Leaves sorted by path turn "the peers of the
     complementary subtree" into an index range: leaf paths form an
     antichain partitioning the trie, so the candidates for a sibling
     prefix are either the contiguous run of leaves below it or the
     single ancestor leaf covering it (never both), found by binary
     search. A prefix sum of group sizes then lets each member draw ref
     targets by flat index without materializing candidate lists — the
     old per-(leaf, level) scan over all leaves made oracle construction
     quadratic in the network size. *)
  let nleaves = Array.length leaves in
  let order = Array.init nleaves (fun i -> i) in
  let path_of i =
    let p, _, _ = leaves.(i) in
    p
  in
  Array.sort (fun a b -> Bitkey.compare (path_of a) (path_of b)) order;
  let spaths = Array.map path_of order in
  let speers =
    Array.map
      (fun i ->
        let _, _, ps = leaves.(i) in
        Array.of_list (List.map (fun (x : Node.t) -> x.id) ps))
      order
  in
  let cum = Array.make (nleaves + 1) 0 in
  for i = 0 to nleaves - 1 do
    cum.(i + 1) <- cum.(i) + Array.length speers.(i)
  done;
  (* First sorted index whose path sorts >= [key]. *)
  let lower_bound key =
    let lo = ref 0 and hi = ref nleaves in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Bitkey.compare spaths.(mid) key < 0 then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  (* End of the run of leaves prefixed by [prefix]; the run starts at
     [s] because prefixed paths sort before every larger unprefixed one. *)
  let prefix_end prefix s =
    let lo = ref s and hi = ref nleaves in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Bitkey.is_prefix ~prefix spaths.(mid) then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let sibling_range sibling =
    let s = lower_bound sibling in
    let e = prefix_end sibling s in
    if e > s then (s, e)
    else if
      (* No leaf inside the sibling subtree: its peers live in the one
         leaf whose path is a proper prefix of [sibling]. The antichain
         leaves no leaf strictly between that ancestor and [sibling], so
         it sits immediately before the insertion point. *)
      s > 0 && Bitkey.is_prefix ~prefix:spaths.(s - 1) sibling
    then (s - 1, s)
    else (s, s)
  in
  (* Peer at flat index [j] within the leaf run [s, e). *)
  let peer_at s e j =
    let target = cum.(s) + j in
    let lo = ref s and hi = ref (e - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if cum.(mid) <= target then lo := mid else hi := mid - 1
    done;
    speers.(!lo).(target - cum.(!lo))
  in
  let k = config.Config.refs_per_level in
  Array.iter
    (fun (path, _, peers) ->
      for l = 0 to Bitkey.length path - 1 do
        let sibling = Bitkey.flip (Bitkey.take path (l + 1)) l in
        let s, e = sibling_range sibling in
        let total = cum.(e) - cum.(s) in
        if total > 0 then
          List.iter
            (fun (nd : Node.t) ->
              if total <= k then
                for j = 0 to total - 1 do
                  Node.add_ref nd ~level:l (peer_at s e j) ~cap:k
                done
              else begin
                (* [k] distinct flat indices by rejection; [k] is a small
                   constant, so redraws are rare. *)
                let chosen = ref [] in
                let cnt = ref 0 in
                while !cnt < k do
                  let j = Rng.int rng total in
                  if not (List.mem j !chosen) then begin
                    chosen := j :: !chosen;
                    incr cnt;
                    Node.add_ref nd ~level:l (peer_at s e j) ~cap:k
                  end
                done
              end)
            peers
      done)
    leaves;
  ov

(* A newcomer integrates into a RUNNING overlay by cloning a bootstrap
   peer: it adopts the peer's trie position (path + split boundaries),
   copies its routing references, joins its replica group and receives a
   copy of its data — the standard P-Grid join; later meetings of the
   load-balancing protocol may move it elsewhere. *)
let join ov ~id ~bootstrap =
  let nd = Overlay.add_node ov id in
  let joined = ref false in
  Overlay.send_task ov ~src:id ~dst:bootstrap ~bytes:64 (fun _ ->
      let b = Overlay.node ov bootstrap in
      Node.set_path nd b.Node.path (Array.copy b.Node.splits);
      Array.iteri
        (fun l refs ->
          List.iter
            (fun r -> Node.add_ref nd ~level:l r ~cap:(Overlay.config ov).Config.refs_per_level)
            refs)
        b.Node.refs;
      (* Mutual replica registration across the whole group. *)
      let group = bootstrap :: b.Node.replicas in
      List.iter (fun p -> Node.add_replica nd p) group;
      List.iter
        (fun p ->
          Overlay.send_task ov ~src:bootstrap ~dst:p ~bytes:16 (fun _ ->
              Node.add_replica (Overlay.node ov p) id))
        group;
      (* State transfer: the bootstrap ships its data to the newcomer. *)
      let items = Store.to_list b.Node.store in
      let bytes = List.fold_left (fun acc i -> acc + Store.item_bytes i) 0 items in
      Overlay.send_task ov ~src:bootstrap ~dst:id ~bytes (fun _ ->
          List.iter (fun i -> ignore (Store.put nd.Node.store i)) items;
          joined := true));
  ignore (Sim.run_until (Overlay.sim ov) (fun () -> !joined));
  !joined

let repair_refs ov =
  let nodes = Overlay.nodes ov in
  let config = Overlay.config ov in
  let rng = Overlay.rng ov in
  (* Alive nodes sorted by trie path: candidates for a sibling prefix
     become the contiguous run of nodes below it (binary search) plus
     the nodes sitting on its proper prefixes (one equality run per
     level — unlike the oracle's leaves, live paths need not form an
     antichain mid-bootstrap). The old code filtered the full alive list
     per (node, level), which is quadratic under heavy churn. *)
  let arr =
    Array.of_list (List.filter (fun (nd : Node.t) -> Overlay.alive ov nd.Node.id) nodes)
  in
  Array.sort (fun (a : Node.t) (b : Node.t) -> Bitkey.compare a.path b.path) arr;
  let n = Array.length arr in
  let lower_bound key =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Bitkey.compare arr.(mid).Node.path key < 0 then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let prefix_end prefix s =
    let lo = ref s and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Bitkey.is_prefix ~prefix arr.(mid).Node.path then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let candidates_of sibling =
    let s = lower_bound sibling in
    let e = prefix_end sibling s in
    let anc = ref [] in
    for j = Bitkey.length sibling - 1 downto 0 do
      let p = Bitkey.take sibling j in
      let i = ref (lower_bound p) in
      while !i < n && Bitkey.equal arr.(!i).Node.path p do
        anc := arr.(!i).Node.id :: !anc;
        incr i
      done
    done;
    (s, e, !anc)
  in
  List.iter
    (fun (nd : Node.t) ->
      if Overlay.alive ov nd.id then
        for l = 0 to Bitkey.length nd.path - 1 do
          let kept = List.filter (Overlay.alive ov) (Node.refs_at nd l) in
          if List.length kept < List.length (Node.refs_at nd l) || kept = [] then begin
            let sibling = Bitkey.flip (Bitkey.take nd.path (l + 1)) l in
            let s, e, anc = candidates_of sibling in
            let n_anc = List.length anc in
            let total = e - s + n_anc in
            nd.refs.(l) <- kept;
            let want = config.Config.refs_per_level - List.length kept in
            let pick j =
              if j < e - s then arr.(s + j).Node.id else List.nth anc (j - (e - s))
            in
            if total > 0 && want > 0 then
              if total <= want then
                for j = 0 to total - 1 do
                  Node.add_ref nd ~level:l (pick j) ~cap:config.Config.refs_per_level
                done
              else begin
                let chosen = ref [] in
                let cnt = ref 0 in
                while !cnt < want do
                  let j = Rng.int rng total in
                  if not (List.mem j !chosen) then begin
                    chosen := j :: !chosen;
                    incr cnt;
                    Node.add_ref nd ~level:l (pick j) ~cap:config.Config.refs_per_level
                  end
                done
              end
          end
        done)
    nodes

(* ------------------------------------------------------------------ *)
(* Invariant checking                                                  *)

let random_probe_key rng =
  (* Mix printable and raw-byte keys to probe all of key space. *)
  let len = 1 + Rng.int rng 12 in
  String.init len (fun _ -> Char.chr (Rng.int rng 256))

let check_invariants ov =
  let violations = ref [] in
  let complain fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
  let nodes = Overlay.nodes ov in
  (* Coverage: probe keys across the space. *)
  let probe_rng = Rng.create 0xC0FFEE in
  for _ = 1 to 256 do
    let key = random_probe_key probe_rng in
    if Overlay.responsible ov key = [] then complain "uncovered key %S" key
  done;
  (* Reference validity. *)
  List.iter
    (fun (nd : Node.t) ->
      Array.iteri
        (fun l refs ->
          List.iter
            (fun r ->
              match Overlay.node ov r with
              | target ->
                let sibling = Bitkey.flip (Bitkey.take nd.path (l + 1)) l in
                let tp = target.Node.path in
                if
                  not (Bitkey.is_prefix ~prefix:sibling tp || Bitkey.is_prefix ~prefix:tp sibling)
                then
                  complain "peer%d level-%d ref peer%d has path %a, not in subtree %a" nd.id l r
                    Bitkey.pp tp Bitkey.pp sibling
              | exception Invalid_argument _ -> complain "peer%d refs unknown peer %d" nd.id r)
            refs)
        nd.refs)
    nodes;
  (* Replica consistency. *)
  List.iter
    (fun (nd : Node.t) ->
      List.iter
        (fun r ->
          match Overlay.node ov r with
          | target ->
            if not (Bitkey.equal target.Node.path nd.path) then
              complain "peer%d replica peer%d has different path" nd.id r
          | exception Invalid_argument _ -> complain "peer%d replica %d unknown" nd.id r)
        nd.replicas)
    nodes;
  (* Region sanity: lo < hi. *)
  List.iter
    (fun (nd : Node.t) ->
      match Node.region nd with
      | lo, Some hi when String.compare lo hi >= 0 ->
        complain "peer%d has empty region [%S, %S)" nd.id lo hi
      | _ -> ())
    nodes;
  List.rev !violations

(* ------------------------------------------------------------------ *)
(* Decentralized bootstrap                                             *)

type bootstrap_report = {
  rounds_run : int;
  exchanges : int;
  final_depth : int;
  coverage_ok : bool;
}

let item_region_pred (nd : Node.t) (i : Store.item) = Node.covers nd i.Store.key

(* One pairwise meeting, executed at [b]'s site. Returns bytes moved (for
   the reply-message accounting). *)
let do_exchange ov ~config ~split_threshold a_id b_id =
  let na = Overlay.node ov a_id and nb = Overlay.node ov b_id in
  let rng = Overlay.rng ov in
  let moved_bytes = ref 0 in
  let transfer items (dst : Node.t) =
    List.iter
      (fun (i : Store.item) ->
        moved_bytes := !moved_bytes + Store.item_bytes i;
        if Node.covers dst i.Store.key then ignore (Store.put dst.store i)
        else
          (* Neither side covers it any more: hand it back to the network.
             Routing can fail while tables are still forming — then park
             the item at [dst] (misplaced, not lost); a later exchange
             will move it along. *)
          Overlay.insert ov ~origin:dst.id ~key:i.key ~item_id:i.item_id ~payload:i.payload
            ~version:i.version
            ~k:(fun r -> if not r.Overlay.complete then ignore (Store.put dst.store i))
            ())
      items
  in
  (* Items parked here by earlier failed handoffs: try to route them home
     again now that tables have grown. *)
  let flush (nd : Node.t) =
    let misplaced = Store.filter_partition nd.store (item_region_pred nd) in
    transfer misplaced nd
  in
  flush na;
  flush nb;
  (* Stale replica links: drop them when paths have diverged. *)
  if List.mem b_id na.replicas && not (Bitkey.equal na.path nb.path) then begin
    Node.remove_replica na b_id;
    Node.remove_replica nb a_id
  end;
  let l = Bitkey.common_prefix_len na.path nb.path in
  let la = Bitkey.length na.path and lb = Bitkey.length nb.path in
  if l = la && l = lb then begin
    (* Identical paths: split if overloaded, otherwise replicate. *)
    let data = Store.size na.store + Store.size nb.store in
    let group = 2 + List.length na.replicas + List.length nb.replicas in
    let boundary =
      (* The pairwise protocol must pick a boundary every other pair at
         the same trie position would also pick, without coordination —
         only the deterministic region midpoint has that property
         (data-dependent medians would fork the trie and create routing
         loops). Data-aware boundaries are the job of the separate
         load-balancing protocol (ref [2]), modeled by {!oracle}. *)
      if (data > split_threshold || group > 2 * config.Config.replication)
         && la < config.Config.max_depth
      then begin
        let lo, hi = Node.region na in
        midpoint lo hi
      end
      else None
    in
    match boundary with
    | Some b ->
      Node.remove_replica na b_id;
      Node.remove_replica nb a_id;
      Node.extend na ~bit:false ~boundary:b;
      Node.extend nb ~bit:true ~boundary:b;
      Node.add_ref na ~level:la b_id ~cap:config.Config.refs_per_level;
      Node.add_ref nb ~level:la a_id ~cap:config.Config.refs_per_level;
      let out_a = Store.filter_partition na.store (item_region_pred na) in
      let out_b = Store.filter_partition nb.store (item_region_pred nb) in
      transfer out_a nb;
      transfer out_b na
    | None ->
      Node.add_replica na b_id;
      Node.add_replica nb a_id;
      (* Anti-entropy between fresh replicas. *)
      let a_items = Store.to_list na.store and b_items = Store.to_list nb.store in
      List.iter
        (fun i -> if Store.put nb.store i then moved_bytes := !moved_bytes + Store.item_bytes i)
        a_items;
      List.iter
        (fun i -> if Store.put na.store i then moved_bytes := !moved_bytes + Store.item_bytes i)
        b_items
  end
  else if l = la then begin
    (* [na]'s path is a prefix of [nb]'s: [na] specializes to the side of
       [nb]'s boundary that [nb] does not cover. *)
    let bbit = Bitkey.get nb.path la in
    Node.extend na ~bit:(not bbit) ~boundary:nb.splits.(la);
    Node.add_ref na ~level:la b_id ~cap:config.Config.refs_per_level;
    Node.add_ref nb ~level:la a_id ~cap:config.Config.refs_per_level;
    let out_a = Store.filter_partition na.store (item_region_pred na) in
    transfer out_a nb
  end
  else if l = lb then begin
    let abit = Bitkey.get na.path lb in
    Node.extend nb ~bit:(not abit) ~boundary:na.splits.(lb);
    Node.add_ref nb ~level:lb a_id ~cap:config.Config.refs_per_level;
    Node.add_ref na ~level:lb b_id ~cap:config.Config.refs_per_level;
    let out_b = Store.filter_partition nb.store (item_region_pred nb) in
    transfer out_b na
  end
  else begin
    (* Paths diverge at level l: mutual references, plus ref gossip for
       shallower levels to densify routing tables. *)
    Node.add_ref na ~level:l b_id ~cap:config.Config.refs_per_level;
    Node.add_ref nb ~level:l a_id ~cap:config.Config.refs_per_level;
    for i = 0 to l - 1 do
      (match Node.refs_at nb i with
      | [] -> ()
      | refs -> Node.add_ref na ~level:i (Rng.pick_list rng refs) ~cap:config.Config.refs_per_level);
      match Node.refs_at na i with
      | [] -> ()
      | refs -> Node.add_ref nb ~level:i (Rng.pick_list rng refs) ~cap:config.Config.refs_per_level
    done
  end;
  !moved_bytes

let bootstrap sim ~latency ~rng ?drop ~config ~n ~initial_data ?(rounds = 30)
    ?(split_threshold = 16) ?(groups = 1) ?(merge_at = 0) () =
  if n < 2 then invalid_arg "Build.bootstrap: n < 2";
  if groups < 1 then invalid_arg "Build.bootstrap: groups < 1";
  let rng = Rng.split rng in
  let ov = Overlay.create sim ~latency ~rng ?drop ~config () in
  let _nodes = List.init n (fun i -> Overlay.add_node ov i) in
  List.iter
    (fun (id, items) ->
      let nd = Overlay.node ov id in
      List.iter (fun i -> ignore (Store.put nd.Node.store i)) items)
    initial_data;
  let exchanges = ref 0 in
  let meet_rng = Rng.split rng in
  (* Group g = ids in [g*n/groups, (g+1)*n/groups): before [merge_at]
     rounds, peers only meet within their group — modeling independently
     built overlays that later merge ("merging of two, formerly
     independent, overlays", paper §2). The deterministic midpoint split
     rule makes the groups' tries mutually consistent, so the merge is
     just further pairwise exchanges. *)
  let group_of a = a * groups / n in
  let pick_partner round a =
    if groups = 1 || round >= merge_at then (a + 1 + Rng.int meet_rng (n - 1)) mod n
    else begin
      let g = group_of a in
      let lo = g * n / groups and hi = ((g + 1) * n / groups) - 1 in
      let size = hi - lo + 1 in
      if size < 2 then a
      else begin
        let b = lo + Rng.int meet_rng size in
        if b = a then lo + ((b + 1 - lo) mod size) else b
      end
    end
  in
  for round = 0 to rounds - 1 do
    let at = float_of_int round *. 200.0 in
    for a = 0 to n - 1 do
      Sim.schedule_at sim ~time:(at +. Rng.float_in meet_rng 0.0 100.0) (fun () ->
          if Overlay.alive ov a then begin
            let b = pick_partner round a in
            if b <> a && Overlay.alive ov b then begin
              incr exchanges;
              Overlay.send_task ov ~src:a ~dst:b ~bytes:64 (fun _ ->
                  let moved = do_exchange ov ~config ~split_threshold a b in
                  (* Reply carrying the exchanged data (accounting). *)
                  Overlay.send_task ov ~src:b ~dst:a ~bytes:moved (fun _ -> ()))
            end
          end)
    done
  done;
  Sim.run_all sim;
  let coverage_ok =
    let probe_rng = Rng.create 0xBEEF in
    let ok = ref true in
    for _ = 1 to 128 do
      let key = random_probe_key probe_rng in
      if Overlay.responsible ov key = [] then ok := false
    done;
    !ok
  in
  (ov, { rounds_run = rounds; exchanges = !exchanges; final_depth = Overlay.depth ov; coverage_ok })
