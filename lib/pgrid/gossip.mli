(** Replica maintenance: anti-entropy and staleness measurement.

    Updates themselves are issued through {!Overlay.update} (route to the
    responsible peer, rumor-spread to replicas). Rumors can miss replicas
    (fanout limits, failures); periodic anti-entropy rounds reconcile the
    rest — together these give the loose consistency guarantees of Datta et
    al. (ICDCS'03) that the paper's update functionality relies on. *)

(** [anti_entropy_round ov] makes every alive peer exchange digests with
    one random alive replica (push-pull). Runs inside the simulator; call
    [Sim.run_all] (or further operations) to let the exchanges complete. *)
val anti_entropy_round : Overlay.t -> unit

(** [stats_round ov ~sample] makes every alive peer (1) refresh its own
    per-attribute statistics summaries via [sample ~now node] — the
    sampling function lives in the triple layer, which knows how to
    decode index keys — and (2) push its whole statistics cache to
    [gossip_fanout] random alive peers (push epidemic; summaries merge
    newest-wins, see {!Unistore_cache.Statcache}). Run inside the
    simulator; drive it (e.g. [Sim.run_all]) to let pushes arrive. *)
val stats_round :
  Overlay.t ->
  sample:(now:float -> Node.t -> Unistore_cache.Statcache.summary list) ->
  unit

(** [replica_versions ov ~key ~item_id] lists, for every peer responsible
    for [key], the version of the item it currently holds ([None] =
    missing). Measurement helper for convergence experiments. *)
val replica_versions :
  Overlay.t -> key:string -> item_id:string -> (int * int option) list

(** [staleness ov ~key ~item_id ~version] is the fraction of responsible
    peers that do NOT yet hold [version] (0.0 = fully converged). *)
val staleness : Overlay.t -> key:string -> item_id:string -> version:int -> float
