type token =
  | SELECT
  | DISTINCT
  | WHERE
  | FILTER
  | ORDER
  | BY
  | SKYLINE
  | OF
  | LIMIT
  | UNION
  | MIN
  | MAX
  | ASC
  | DESC
  | AND
  | OR
  | NOT
  | TRUE
  | FALSE
  | STAR
  | COMMA
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | VAR of string
  | IDENT of string
  | STRING of string
  | INT of int
  | FLOAT of float
  | EOF

let pp_token fmt t =
  let s =
    match t with
    | SELECT -> "SELECT"
    | DISTINCT -> "DISTINCT"
    | WHERE -> "WHERE"
    | FILTER -> "FILTER"
    | ORDER -> "ORDER"
    | BY -> "BY"
    | SKYLINE -> "SKYLINE"
    | OF -> "OF"
    | LIMIT -> "LIMIT"
    | UNION -> "UNION"
    | MIN -> "MIN"
    | MAX -> "MAX"
    | ASC -> "ASC"
    | DESC -> "DESC"
    | AND -> "AND"
    | OR -> "OR"
    | NOT -> "NOT"
    | TRUE -> "TRUE"
    | FALSE -> "FALSE"
    | STAR -> "*"
    | COMMA -> ","
    | LPAREN -> "("
    | RPAREN -> ")"
    | LBRACE -> "{"
    | RBRACE -> "}"
    | EQ -> "="
    | NEQ -> "!="
    | LT -> "<"
    | LE -> "<="
    | GT -> ">"
    | GE -> ">="
    | VAR v -> "?" ^ v
    | IDENT s -> s
    | STRING s -> Printf.sprintf "'%s'" s
    | INT i -> string_of_int i
    | FLOAT f -> string_of_float f
    | EOF -> "<eof>"
  in
  Format.pp_print_string fmt s

exception Error of { offset : int; message : string }

let error offset fmt = Format.kasprintf (fun message -> raise (Error { offset; message })) fmt

let keyword_of_string s =
  match String.uppercase_ascii s with
  | "SELECT" -> Some SELECT
  | "DISTINCT" -> Some DISTINCT
  | "WHERE" -> Some WHERE
  | "FILTER" -> Some FILTER
  | "ORDER" -> Some ORDER
  | "BY" -> Some BY
  | "SKYLINE" -> Some SKYLINE
  | "OF" -> Some OF
  | "LIMIT" -> Some LIMIT
  | "UNION" -> Some UNION
  | "MIN" -> Some MIN
  | "MAX" -> Some MAX
  | "ASC" -> Some ASC
  | "DESC" -> Some DESC
  | "AND" -> Some AND
  | "OR" -> Some OR
  | "NOT" -> Some NOT
  | "TRUE" -> Some TRUE
  | "FALSE" -> Some FALSE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = ':' || c = '.' || c = '#' || c = '-'

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let pos = ref 0 in
  (* Called after the token's characters are consumed: the span runs from
     [start] to the current position. *)
  let emit tok start = tokens := (tok, Loc.make start !pos) :: !tokens in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  while !pos < n do
    let c = src.[!pos] in
    let start = !pos in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '-' && peek 1 = Some '-' then begin
      (* line comment *)
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '*' then (incr pos; emit STAR start)
    else if c = ',' then (incr pos; emit COMMA start)
    else if c = '(' then (incr pos; emit LPAREN start)
    else if c = ')' then (incr pos; emit RPAREN start)
    else if c = '{' then (incr pos; emit LBRACE start)
    else if c = '}' then (incr pos; emit RBRACE start)
    else if c = '=' then (incr pos; emit EQ start)
    else if c = '!' && peek 1 = Some '=' then (pos := !pos + 2; emit NEQ start)
    else if c = '<' && peek 1 = Some '=' then (pos := !pos + 2; emit LE start)
    else if c = '<' && peek 1 = Some '>' then (pos := !pos + 2; emit NEQ start)
    else if c = '<' then (incr pos; emit LT start)
    else if c = '>' && peek 1 = Some '=' then (pos := !pos + 2; emit GE start)
    else if c = '>' then (incr pos; emit GT start)
    else if c = '?' then begin
      incr pos;
      let s = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      if !pos = s then error start "expected variable name after '?'";
      emit (VAR (String.sub src s (!pos - s))) start
    end
    else if c = '\'' then begin
      incr pos;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !pos < n do
        let d = src.[!pos] in
        if d = '\\' && !pos + 1 < n then begin
          (match src.[!pos + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | other -> Buffer.add_char buf other);
          pos := !pos + 2
        end
        else if d = '\'' then begin
          closed := true;
          incr pos
        end
        else begin
          Buffer.add_char buf d;
          incr pos
        end
      done;
      if not !closed then error start "unterminated string literal";
      emit (STRING (Buffer.contents buf)) start
    end
    else if is_digit c || (c = '-' && match peek 1 with Some d -> is_digit d | None -> false)
    then begin
      incr pos;
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      let is_float = ref false in
      if !pos < n && src.[!pos] = '.' && (match peek 1 with Some d -> is_digit d | None -> false)
      then begin
        is_float := true;
        incr pos;
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done
      end;
      if !pos < n && (src.[!pos] = 'e' || src.[!pos] = 'E') then begin
        is_float := true;
        incr pos;
        if !pos < n && (src.[!pos] = '+' || src.[!pos] = '-') then incr pos;
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done
      end;
      let text = String.sub src start (!pos - start) in
      if !is_float then
        match float_of_string_opt text with
        | Some f -> emit (FLOAT f) start
        | None -> error start "malformed number %S" text
      else begin
        match int_of_string_opt text with
        | Some i -> emit (INT i) start
        | None -> error start "malformed number %S" text
      end
    end
    else if is_ident_start c then begin
      incr pos;
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      let text = String.sub src start (!pos - start) in
      match keyword_of_string text with
      | Some kw -> emit kw start
      | None -> emit (IDENT text) start
    end
    else error start "unexpected character %C" c
  done;
  emit EOF n;
  List.rev !tokens
