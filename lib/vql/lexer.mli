(** VQL lexer. *)

type token =
  | SELECT
  | DISTINCT
  | WHERE
  | FILTER
  | ORDER
  | BY
  | SKYLINE
  | OF
  | LIMIT
  | UNION
  | MIN
  | MAX
  | ASC
  | DESC
  | AND
  | OR
  | NOT
  | TRUE
  | FALSE
  | STAR
  | COMMA
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | VAR of string  (** [?name] *)
  | IDENT of string  (** bare word that is not a keyword (function names) *)
  | STRING of string  (** ['...'] literal *)
  | INT of int
  | FLOAT of float
  | EOF

val pp_token : Format.formatter -> token -> unit

exception Error of { offset : int; message : string }

(** [tokenize src] is the token stream with source spans, ending in
    [EOF]. Raises {!Error} on lexical errors. *)
val tokenize : string -> (token * Loc.t) list
