(** VQL abstract syntax.

    VQL (Vertical Query Language) is the paper's SPARQL-derived language:
    triple patterns in braces with [?]-variables, optional [FILTER]
    predicates (including the [edist] similarity function), SQL-style
    [SELECT]/[ORDER BY]/[LIMIT] and the ranking extension [SKYLINE OF]. *)

module Value = Unistore_triple.Value

type term =
  | TVar of string  (** [?name] *)
  | TConst of Value.t

(** One triple pattern [(subj, attr, obj)]. In the universal relation
    model [subj] ranges over OIDs, [attr] over attribute names, [obj]
    over values. [span] covers the pattern's source text ({!Loc.dummy}
    for synthesized patterns). *)
type pattern = { subj : term; attr : term; obj : term; span : Loc.t }

(** [mk_pattern ?span subj attr obj] builds a pattern; [span] defaults
    to {!Loc.dummy}. *)
val mk_pattern : ?span:Loc.t -> term -> term -> term -> pattern

type cmpop = Eq | Neq | Lt | Le | Gt | Ge

type expr =
  | EVar of string
  | EConst of Value.t
  | ECmp of cmpop * expr * expr
  | EAnd of expr * expr
  | EOr of expr * expr
  | ENot of expr
  | EEdist of expr * expr  (** [edist(a, b)]: numeric edit distance *)
  | EContains of expr * expr  (** [contains(a, b)]: substring test *)
  | EPrefix of expr * expr  (** [prefix(a, b)]: prefix test *)

type dir = Asc | Desc
type goal = Min | Max

type order_clause =
  | OrderBy of (string * dir) list
  | Skyline of (string * goal) list  (** [ORDER BY SKYLINE OF ?x MIN, ?y MAX] *)

type query = {
  distinct : bool;
  projection : string list option;  (** [None] = [SELECT *] *)
  patterns : pattern list;
  filters : expr list;
  filter_spans : Loc.t list;
      (** spans of [filters], positionally; may be shorter (synthesized
          queries) — use {!filter_span} *)
  union_branches : (pattern list * expr list) list;
      (** additional [UNION { ... }] groups: each evaluated independently,
          results combined (bag semantics unless [DISTINCT]) *)
  order : order_clause option;
  limit : int option;
  proj_span : Loc.t;  (** span of the projection list *)
  order_span : Loc.t;  (** span of the [ORDER BY] clause *)
  limit_span : Loc.t;  (** span of the [LIMIT] clause *)
}

(** Build a query from its pattern list; every other component is
    optional and spans default to {!Loc.dummy}. Keeps construction
    sites insulated from future field additions. *)
val mk_query :
  ?distinct:bool ->
  ?projection:string list ->
  ?filters:expr list ->
  ?filter_spans:Loc.t list ->
  ?union_branches:(pattern list * expr list) list ->
  ?order:order_clause ->
  ?limit:int ->
  ?proj_span:Loc.t ->
  ?order_span:Loc.t ->
  ?limit_span:Loc.t ->
  pattern list ->
  query

(** [filter_span q i] is the span of the [i]-th filter, or {!Loc.dummy}
    if unrecorded. *)
val filter_span : query -> int -> Loc.t

(** Variables mentioned by a pattern / expression / query (sorted,
    deduplicated). *)
val pattern_vars : pattern -> string list

val expr_vars : expr -> string list
val query_vars : query -> string list

val pp_term : Format.formatter -> term -> unit
val pp_pattern : Format.formatter -> pattern -> unit
val pp_expr : Format.formatter -> expr -> unit
val pp_query : Format.formatter -> query -> unit

(** Semantic checks: projection/order/filter variables must be bound by
    some pattern; patterns must not be degenerate (all-constant patterns
    are allowed — they are existence tests). Returns problems found. *)
val validate : query -> string list
