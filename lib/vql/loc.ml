type t = { start : int; stop : int }

let dummy = { start = -1; stop = -1 }
let is_dummy l = l.start < 0
let make start stop = { start; stop = max start stop }

let union a b =
  if is_dummy a then b
  else if is_dummy b then a
  else { start = min a.start b.start; stop = max a.stop b.stop }

type pos = { line : int; col : int }

let pos_of_offset src off =
  let off = max 0 (min off (String.length src)) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to off - 1 do
    if src.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  { line = !line; col = off - !bol + 1 }

let line_at src ln =
  let n = String.length src in
  let rec find_start line i =
    if line >= ln then Some i
    else
      match String.index_from_opt src i '\n' with
      | Some j -> find_start (line + 1) (j + 1)
      | None -> None
  in
  if ln < 1 then ""
  else begin
    match find_start 1 0 with
    | None -> ""
    | Some start ->
      let stop = match String.index_from_opt src start '\n' with Some j -> j | None -> n in
      String.sub src start (stop - start)
  end

let describe src l =
  if is_dummy l then "<unknown>"
  else begin
    let p = pos_of_offset src l.start in
    Printf.sprintf "line %d, column %d" p.line p.col
  end

let pp_pos fmt p = Format.fprintf fmt "%d:%d" p.line p.col
