(** VQL recursive-descent parser.

    Grammar (keywords case-insensitive):
    {v
    query    ::= SELECT [DISTINCT] proj WHERE '{' pattern+ filter* '}'
                 [ORDER BY order] [LIMIT int]
    proj     ::= '*' | var (',' var)*
    pattern  ::= '(' term ',' term ',' term ')'
    term     ::= var | literal
    filter   ::= FILTER expr
    order    ::= SKYLINE OF var (MIN|MAX) (',' var (MIN|MAX))*
               | var [ASC|DESC] (',' var [ASC|DESC])*
    expr     ::= or-expr with comparisons, NOT, parentheses, and the
                 functions edist(a,b), contains(a,b), prefix(a,b)
    literal  ::= 'string' | int | float | TRUE | FALSE
    v} *)

(** [parse src] parses and {!Ast.validate}s a full VQL query. The error
    string is positioned: line/column, the offending source line and a
    caret under the span start. *)
val parse : string -> (Ast.query, string) result

(** [parse_ast src] parses without running {!Ast.validate} — for
    analyzers that want to diagnose unbound variables themselves with
    source positions (see [unistore_analysis]). *)
val parse_ast : string -> (Ast.query, string) result

(** [parse_exn src] raises [Failure] with the same message. *)
val parse_exn : string -> Ast.query
