module Value = Unistore_triple.Value

type term = TVar of string | TConst of Value.t

type pattern = { subj : term; attr : term; obj : term; span : Loc.t }

let mk_pattern ?(span = Loc.dummy) subj attr obj = { subj; attr; obj; span }

type cmpop = Eq | Neq | Lt | Le | Gt | Ge

type expr =
  | EVar of string
  | EConst of Value.t
  | ECmp of cmpop * expr * expr
  | EAnd of expr * expr
  | EOr of expr * expr
  | ENot of expr
  | EEdist of expr * expr
  | EContains of expr * expr
  | EPrefix of expr * expr

type dir = Asc | Desc
type goal = Min | Max

type order_clause = OrderBy of (string * dir) list | Skyline of (string * goal) list

type query = {
  distinct : bool;
  projection : string list option;
  patterns : pattern list;
  filters : expr list;
  filter_spans : Loc.t list;
  union_branches : (pattern list * expr list) list;
  order : order_clause option;
  limit : int option;
  proj_span : Loc.t;
  order_span : Loc.t;
  limit_span : Loc.t;
}

let mk_query ?(distinct = false) ?projection ?(filters = []) ?(filter_spans = [])
    ?(union_branches = []) ?order ?limit ?(proj_span = Loc.dummy) ?(order_span = Loc.dummy)
    ?(limit_span = Loc.dummy) patterns =
  {
    distinct;
    projection;
    patterns;
    filters;
    filter_spans;
    union_branches;
    order;
    limit;
    proj_span;
    order_span;
    limit_span;
  }

(* [filter_spans] is best-effort metadata: when a query was synthesized
   rather than parsed the list may be empty, so analyzers use this
   defensive accessor. *)
let filter_span q i = match List.nth_opt q.filter_spans i with Some s -> s | None -> Loc.dummy

let term_vars = function TVar v -> [ v ] | TConst _ -> []

let pattern_vars p =
  List.sort_uniq compare (term_vars p.subj @ term_vars p.attr @ term_vars p.obj)

let rec expr_vars_acc acc = function
  | EVar v -> v :: acc
  | EConst _ -> acc
  | ECmp (_, a, b) | EAnd (a, b) | EOr (a, b) | EEdist (a, b) | EContains (a, b) | EPrefix (a, b)
    ->
    expr_vars_acc (expr_vars_acc acc a) b
  | ENot a -> expr_vars_acc acc a

let expr_vars e = List.sort_uniq compare (expr_vars_acc [] e)

let query_vars q =
  let branch_vars (ps, fs) = List.concat_map pattern_vars ps @ List.concat_map expr_vars fs in
  List.sort_uniq compare
    (List.concat_map branch_vars ((q.patterns, q.filters) :: q.union_branches))

let pp_term fmt = function
  | TVar v -> Format.fprintf fmt "?%s" v
  | TConst (Value.S s) -> Format.fprintf fmt "'%s'" s
  | TConst v -> Value.pp fmt v

let pp_pattern fmt p =
  Format.fprintf fmt "(%a, %a, %a)" pp_term p.subj pp_term p.attr pp_term p.obj

let string_of_cmpop = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp_expr fmt = function
  | EVar v -> Format.fprintf fmt "?%s" v
  | EConst (Value.S s) -> Format.fprintf fmt "'%s'" s
  | EConst v -> Value.pp fmt v
  | ECmp (op, a, b) -> Format.fprintf fmt "%a %s %a" pp_expr a (string_of_cmpop op) pp_expr b
  | EAnd (a, b) -> Format.fprintf fmt "(%a AND %a)" pp_expr a pp_expr b
  | EOr (a, b) -> Format.fprintf fmt "(%a OR %a)" pp_expr a pp_expr b
  | ENot a -> Format.fprintf fmt "NOT %a" pp_expr a
  | EEdist (a, b) -> Format.fprintf fmt "edist(%a, %a)" pp_expr a pp_expr b
  | EContains (a, b) -> Format.fprintf fmt "contains(%a, %a)" pp_expr a pp_expr b
  | EPrefix (a, b) -> Format.fprintf fmt "prefix(%a, %a)" pp_expr a pp_expr b

let pp_query fmt q =
  Format.fprintf fmt "SELECT %s%s WHERE {"
    (if q.distinct then "DISTINCT " else "")
    (match q.projection with
    | None -> "*"
    | Some vs -> String.concat ", " (List.map (fun v -> "?" ^ v) vs));
  List.iter (fun p -> Format.fprintf fmt " %a" pp_pattern p) q.patterns;
  List.iter (fun f -> Format.fprintf fmt " FILTER %a" pp_expr f) q.filters;
  Format.fprintf fmt " }";
  List.iter
    (fun (ps, fs) ->
      Format.fprintf fmt " UNION {";
      List.iter (fun p -> Format.fprintf fmt " %a" pp_pattern p) ps;
      List.iter (fun f -> Format.fprintf fmt " FILTER %a" pp_expr f) fs;
      Format.fprintf fmt " }")
    q.union_branches;
  (match q.order with
  | Some (OrderBy items) ->
    Format.fprintf fmt " ORDER BY %s"
      (String.concat ", "
         (List.map (fun (v, d) -> "?" ^ v ^ match d with Asc -> " ASC" | Desc -> " DESC") items))
  | Some (Skyline items) ->
    Format.fprintf fmt " ORDER BY SKYLINE OF %s"
      (String.concat ", "
         (List.map (fun (v, g) -> "?" ^ v ^ match g with Min -> " MIN" | Max -> " MAX") items))
  | None -> ());
  match q.limit with Some n -> Format.fprintf fmt " LIMIT %d" n | None -> ()

let validate q =
  let problems = ref [] in
  let complain fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  if q.patterns = [] then complain "query has no triple patterns";
  (* Variables usable downstream: bound in at least one branch. Filters
     must be bound within their own branch. *)
  let bound =
    List.concat_map
      (fun (ps, _) -> List.concat_map pattern_vars ps)
      ((q.patterns, q.filters) :: q.union_branches)
  in
  let check_bound where v =
    if not (List.mem v bound) then complain "%s variable ?%s is not bound by any pattern" where v
  in
  (match q.projection with
  | Some [] -> complain "empty projection"
  | Some vs -> List.iter (check_bound "projected") vs
  | None -> ());
  List.iter
    (fun (ps, fs) ->
      if ps = [] then complain "UNION branch has no triple patterns";
      let branch_bound = List.concat_map pattern_vars ps in
      List.iter
        (fun f ->
          List.iter
            (fun v ->
              if not (List.mem v branch_bound) then
                complain "filter variable ?%s is not bound within its branch" v)
            (expr_vars f))
        fs)
    ((q.patterns, q.filters) :: q.union_branches);
  (match q.order with
  | Some (OrderBy items) -> List.iter (fun (v, _) -> check_bound "order" v) items
  | Some (Skyline items) ->
    if items = [] then complain "empty skyline";
    List.iter (fun (v, _) -> check_bound "skyline" v) items
  | None -> ());
  (match q.limit with
  | Some n when n <= 0 -> complain "LIMIT must be positive"
  | _ -> ());
  List.rev !problems
