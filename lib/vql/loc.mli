(** Source locations for VQL diagnostics.

    A location is a half-open byte-offset span [[start, stop)] into the
    query source. Spans originate in the lexer, are widened by the parser
    to cover whole clauses, and end up on AST nodes so that downstream
    analyzers (see [unistore_analysis]) can point at the offending query
    text. Line/column conversion is done lazily against the source string,
    so carrying spans costs two ints per node. *)

type t = { start : int; stop : int }

(** A span that points nowhere (synthesized AST nodes). *)
val dummy : t

val is_dummy : t -> bool

(** [make start stop] with [stop] clamped to [>= start]. *)
val make : int -> int -> t

(** Smallest span covering both; [dummy] is the identity. *)
val union : t -> t -> t

(** 1-based line/column position. *)
type pos = { line : int; col : int }

(** [pos_of_offset src off] converts a byte offset to a line/column
    position in [src] (offsets past the end map to the final position). *)
val pos_of_offset : string -> int -> pos

(** [line_at src ln] is the text of 1-based line [ln] (without the
    newline); [""] if out of range. *)
val line_at : string -> int -> string

(** ["line L, column C"] of the span start; ["<unknown>"] for {!dummy}. *)
val describe : string -> t -> string

val pp_pos : Format.formatter -> pos -> unit
