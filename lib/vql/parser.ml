open Ast

exception Parse_error of { span : Loc.t; message : string }

type state = {
  tokens : (Lexer.token * Loc.t) array;
  mutable pos : int;
  mutable last : Loc.t;  (* span of the most recently consumed token *)
}

let current st = st.tokens.(st.pos)
let tok_span st = snd (current st)

let fail_at span fmt =
  Format.kasprintf (fun message -> raise (Parse_error { span; message })) fmt

let fail st fmt = fail_at (tok_span st) fmt

let advance st =
  st.last <- tok_span st;
  if st.pos < Array.length st.tokens - 1 then st.pos <- st.pos + 1

let eat st tok what =
  let t, _ = current st in
  if t = tok then advance st else fail st "expected %s, found %a" what Lexer.pp_token t

let accept st tok =
  let t, _ = current st in
  if t = tok then begin
    advance st;
    true
  end
  else false

let parse_var st =
  match current st with
  | Lexer.VAR v, _ ->
    advance st;
    v
  | t, _ -> fail st "expected a ?variable, found %a" Lexer.pp_token t

let parse_literal st =
  match current st with
  | Lexer.STRING s, _ ->
    advance st;
    Value.S s
  | Lexer.INT i, _ ->
    advance st;
    Value.I i
  | Lexer.FLOAT f, _ ->
    advance st;
    Value.F f
  | Lexer.TRUE, _ ->
    advance st;
    Value.B true
  | Lexer.FALSE, _ ->
    advance st;
    Value.B false
  | t, _ -> fail st "expected a literal, found %a" Lexer.pp_token t

let parse_term st =
  match current st with
  | Lexer.VAR v, _ ->
    advance st;
    TVar v
  | _ -> TConst (parse_literal st)

let parse_pattern st =
  let start = tok_span st in
  eat st Lexer.LPAREN "'('";
  let subj = parse_term st in
  eat st Lexer.COMMA "','";
  let attr = parse_term st in
  eat st Lexer.COMMA "','";
  let obj = parse_term st in
  eat st Lexer.RPAREN "')'";
  mk_pattern ~span:(Loc.union start st.last) subj attr obj

(* Expressions *)

let cmpop_of_token = function
  | Lexer.EQ -> Some Eq
  | Lexer.NEQ -> Some Neq
  | Lexer.LT -> Some Lt
  | Lexer.LE -> Some Le
  | Lexer.GT -> Some Gt
  | Lexer.GE -> Some Ge
  | _ -> None

let rec parse_expr st = parse_or st

and parse_or st =
  let left = parse_and st in
  if accept st Lexer.OR then EOr (left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if accept st Lexer.AND then EAnd (left, parse_and st) else left

and parse_not st = if accept st Lexer.NOT then ENot (parse_not st) else parse_cmp st

and parse_cmp st =
  let left = parse_primary st in
  match cmpop_of_token (fst (current st)) with
  | Some op ->
    advance st;
    let right = parse_primary st in
    ECmp (op, left, right)
  | None -> left

and parse_primary st =
  match current st with
  | Lexer.VAR v, _ ->
    advance st;
    EVar v
  | Lexer.LPAREN, _ ->
    advance st;
    let e = parse_expr st in
    eat st Lexer.RPAREN "')'";
    e
  | Lexer.IDENT f, span ->
    advance st;
    eat st Lexer.LPAREN "'(' after function name";
    let a = parse_expr st in
    eat st Lexer.COMMA "','";
    let b = parse_expr st in
    eat st Lexer.RPAREN "')'";
    (match String.lowercase_ascii f with
    | "edist" -> EEdist (a, b)
    | "contains" -> EContains (a, b)
    | "prefix" -> EPrefix (a, b)
    | other -> fail_at span "unknown function %S (expected edist/contains/prefix)" other)
  | _ -> EConst (parse_literal st)

(* Clauses *)

let parse_projection st =
  if accept st Lexer.STAR then None
  else begin
    let first = parse_var st in
    let rec more acc = if accept st Lexer.COMMA then more (parse_var st :: acc) else List.rev acc in
    Some (more [ first ])
  end

let parse_order st =
  if accept st Lexer.SKYLINE then begin
    eat st Lexer.OF "OF";
    let item () =
      let v = parse_var st in
      match current st with
      | Lexer.MIN, _ ->
        advance st;
        (v, Min)
      | Lexer.MAX, _ ->
        advance st;
        (v, Max)
      | t, _ -> fail st "expected MIN or MAX after skyline variable, found %a" Lexer.pp_token t
    in
    let first = item () in
    let rec more acc = if accept st Lexer.COMMA then more (item () :: acc) else List.rev acc in
    Skyline (more [ first ])
  end
  else begin
    let item () =
      let v = parse_var st in
      match current st with
      | Lexer.ASC, _ ->
        advance st;
        (v, Asc)
      | Lexer.DESC, _ ->
        advance st;
        (v, Desc)
      | _ -> (v, Asc)
    in
    let first = item () in
    let rec more acc = if accept st Lexer.COMMA then more (item () :: acc) else List.rev acc in
    OrderBy (more [ first ])
  end

(* Returns patterns, filters and the filters' source spans (each span
   covers the FILTER keyword through the end of its expression). *)
let parse_group st =
  eat st Lexer.LBRACE "'{'";
  let patterns = ref [] and filters = ref [] in
  let rec body () =
    match current st with
    | Lexer.LPAREN, _ ->
      patterns := parse_pattern st :: !patterns;
      body ()
    | Lexer.FILTER, fspan ->
      advance st;
      let e = parse_expr st in
      filters := (e, Loc.union fspan st.last) :: !filters;
      body ()
    | Lexer.RBRACE, _ -> advance st
    | t, _ -> fail st "expected a pattern, FILTER or '}', found %a" Lexer.pp_token t
  in
  body ();
  (List.rev !patterns, List.rev !filters)

let parse_query st =
  eat st Lexer.SELECT "SELECT";
  let distinct = accept st Lexer.DISTINCT in
  let proj_start = tok_span st in
  let projection = parse_projection st in
  let proj_span = Loc.union proj_start st.last in
  eat st Lexer.WHERE "WHERE";
  let patterns, filters_spanned = parse_group st in
  if patterns = [] then fail st "WHERE block needs at least one triple pattern";
  let union_branches = ref [] in
  while accept st Lexer.UNION do
    let ps, fs = parse_group st in
    union_branches := (ps, List.map fst fs) :: !union_branches
  done;
  let order_start = tok_span st in
  let order =
    if accept st Lexer.ORDER then begin
      eat st Lexer.BY "BY";
      Some (parse_order st)
    end
    else None
  in
  let order_span = if order = None then Loc.dummy else Loc.union order_start st.last in
  let limit_start = tok_span st in
  let limit =
    if accept st Lexer.LIMIT then begin
      match current st with
      | Lexer.INT n, _ ->
        advance st;
        Some n
      | t, _ -> fail st "expected an integer after LIMIT, found %a" Lexer.pp_token t
    end
    else None
  in
  let limit_span = if limit = None then Loc.dummy else Loc.union limit_start st.last in
  (match current st with
  | Lexer.EOF, _ -> ()
  | t, _ -> fail st "unexpected trailing input: %a" Lexer.pp_token t);
  mk_query ~distinct ?projection
    ~filters:(List.map fst filters_spanned)
    ~filter_spans:(List.map snd filters_spanned)
    ~union_branches:(List.rev !union_branches)
    ?order ?limit ~proj_span ~order_span ~limit_span patterns

(* rustc-style rendering: position, message, offending source line and a
   caret marking the span start. *)
let render src what span message =
  if Loc.is_dummy span then Printf.sprintf "%s: %s" what message
  else begin
    let p = Loc.pos_of_offset src span.Loc.start in
    let text = Loc.line_at src p.Loc.line in
    let caret = String.make (max 0 (p.Loc.col - 1)) ' ' ^ "^" in
    Printf.sprintf "%s at line %d, column %d: %s\n  %s\n  %s" what p.Loc.line p.Loc.col message
      text caret
  end

let parse_with ~validate src =
  match Lexer.tokenize src with
  | exception Lexer.Error { offset; message } ->
    Error (render src "lex error" (Loc.make offset (offset + 1)) message)
  | tokens -> (
    let st = { tokens = Array.of_list tokens; pos = 0; last = Loc.dummy } in
    match parse_query st with
    | q ->
      if not validate then Ok q
      else begin
        match Ast.validate q with
        | [] -> Ok q
        | problems -> Error ("invalid query: " ^ String.concat "; " problems)
      end
    | exception Parse_error { span; message } -> Error (render src "parse error" span message))

let parse src = parse_with ~validate:true src
let parse_ast src = parse_with ~validate:false src
let parse_exn src = match parse src with Ok q -> q | Error e -> failwith e
