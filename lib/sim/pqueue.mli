(** Mutable min-heap keyed by [(priority, sequence)] — the event queue
    at the core of {!Sim}.

    The sequence number makes the ordering total and FIFO among equal
    priorities, which keeps the event loop deterministic: two events
    scheduled for the same instant run in the order they were scheduled,
    on every run.

    {b Representation.} A 4-ary implicit heap on three parallel growable
    arrays — [float array] priorities, [int array] sequence numbers,
    ['a array] payloads. Keeping the keys in unboxed flat arrays (rather
    than heap-allocated [(float * int * 'a)] nodes) means sift-up/down
    compare machine floats with no pointer chasing and no per-event
    allocation; the 4-ary branching halves tree height, trading a few
    extra comparisons per level for fewer cache-missing levels on the
    [pop] path, which dominates in a simulator (every push is eventually
    popped). [push] and [pop] are O(log₄ n); [peek_priority], [size] and
    [is_empty] are O(1). Arrays double on overflow and are reused across
    [clear], so a steady-state simulation allocates nothing per event. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

(** [push t ~priority x] inserts [x]; ties broken by insertion order.
    O(log n), amortized allocation-free. *)
val push : 'a t -> priority:float -> 'a -> unit

(** [pop t] removes and returns the minimum element, or [None] if empty.
    Among equal priorities, strictly first-pushed-first-popped. The freed
    payload slot is overwritten so the queue never retains a popped
    closure (no space leak). O(log n). *)
val pop : 'a t -> (float * 'a) option

(** [peek_priority t] is the minimum priority without removing it. O(1). *)
val peek_priority : 'a t -> float option

(** Empties the queue, keeping the allocated capacity for reuse. *)
val clear : 'a t -> unit
