(* Deterministic fault-injection driver.

   A scenario [spec] is compiled into simulator events at [inject] time:
   crash/revive churn waves, message-loss bursts, slow (high-latency)
   peers and network partitions, all driven from a single scenario seed
   so that the same spec against the same deployment reproduces the same
   fault schedule — and, because the simulator itself is deterministic,
   the same message trace. Every injected action is appended to an
   internal log (renderable for byte-identical replay tests) and, when a
   tracer is attached to the network, recorded as a [fault.*] marker
   event so Tracelint can correlate failures with protocol anomalies. *)

module Rng = Unistore_util.Rng
module Metrics = Unistore_obs.Metrics

type churn = { rate : float; interval_ms : float; down_ms : float }
type burst = { burst_at : float; burst_ms : float; burst_drop : float }
type slow = { slow_at : float; slow_ms : float; slow_fraction : float; slow_factor : float }
type partition = { part_at : float; part_ms : float; groups : int list list }

type spec = {
  seed : int;
  duration_ms : float;
  churn : churn option;
  bursts : burst list;
  slow : slow option;
  partition : partition option;
  protected : int list;
}

let spec ?(seed = 7) ?(duration_ms = 60_000.0) ?churn ?(bursts = []) ?slow ?partition
    ?(protected = []) () =
  { seed; duration_ms; churn; bursts; slow; partition; protected }

let churn_spec ?(interval_ms = 1_500.0) ?(down_ms = 4_000.0) ~rate () =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Faults.churn_spec: rate out of [0,1]";
  { rate; interval_ms; down_ms }

type event = { at : float; fault : string; peer : int; detail : string }

type 'msg t = {
  net : 'msg Net.t;
  spec : spec;
  rng : Rng.t;
  (* Protected-peer membership as a hash set: [eligible] runs once per
     churn wave over every alive peer, and a [List.mem] there made each
     wave O(alive × protected). *)
  protected_set : (int, unit) Hashtbl.t;
  mutable rev_log : event list;
  mutable crashes : int;
  mutable revives : int;
}

let note t ~kind ~peer ~detail =
  let at = Sim.now (Net.sim t.net) in
  t.rev_log <- { at; fault = kind; peer; detail } :: t.rev_log;
  (match Net.trace t.net with Some tr -> Trace.mark tr ~time:at ~src:peer ~kind () | None -> ());
  match Net.metrics t.net with Some m -> Metrics.incr m kind | None -> ()

let eligible t =
  (* [Net.alive_peers] is sorted ascending; keeping that order (rather
     than sampling the O(1) alive array directly) preserves the exact
     RNG-draw sequence of earlier kernels, so fault replays stay
     byte-identical. *)
  List.filter (fun p -> not (Hashtbl.mem t.protected_set p)) (Net.alive_peers t.net)

(* Victim sets are sorted after sampling so that the kill order (and with
   it every downstream trace event) is a function of the RNG state alone,
   not of reservoir-sampling internals. *)
let pick_victims t ~count pool = List.sort compare (Rng.sample t.rng count pool)

let crash t peer ~revive_after ~detail =
  Net.kill t.net peer;
  t.crashes <- t.crashes + 1;
  note t ~kind:"fault.crash" ~peer ~detail;
  match revive_after with
  | None -> ()
  | Some down_ms ->
    Sim.schedule (Net.sim t.net) ~delay:down_ms (fun () ->
        if not (Net.is_alive t.net peer) then begin
          Net.revive t.net peer;
          t.revives <- t.revives + 1;
          note t ~kind:"fault.revive" ~peer ~detail
        end)

let schedule_churn t (c : churn) =
  let sim = Net.sim t.net in
  let stop = Sim.now sim +. t.spec.duration_ms in
  let rec wave time =
    if time <= stop then
      Sim.schedule_at sim ~time (fun () ->
          let pool = eligible t in
          let count = int_of_float (Float.round (c.rate *. float_of_int (List.length pool))) in
          let victims = pick_victims t ~count pool in
          List.iter (fun p -> crash t p ~revive_after:(Some c.down_ms) ~detail:"churn") victims;
          wave (time +. c.interval_ms))
  in
  wave (Sim.now sim +. c.interval_ms)

let schedule_burst t (b : burst) =
  let sim = Net.sim t.net in
  Sim.schedule sim ~delay:b.burst_at (fun () ->
      let before = Net.drop t.net in
      Net.set_drop t.net b.burst_drop;
      note t ~kind:"fault.loss.start" ~peer:(-1)
        ~detail:(Printf.sprintf "drop=%.2f" b.burst_drop);
      Sim.schedule sim ~delay:b.burst_ms (fun () ->
          Net.set_drop t.net before;
          note t ~kind:"fault.loss.end" ~peer:(-1) ~detail:(Printf.sprintf "drop=%.2f" before)))

let schedule_slow t (s : slow) =
  let sim = Net.sim t.net in
  Sim.schedule sim ~delay:s.slow_at (fun () ->
      let pool = eligible t in
      let count =
        int_of_float (Float.round (s.slow_fraction *. float_of_int (List.length pool)))
      in
      let victims = pick_victims t ~count pool in
      List.iter
        (fun p ->
          Net.set_slow t.net p ~factor:s.slow_factor;
          note t ~kind:"fault.slow" ~peer:p ~detail:(Printf.sprintf "x%.1f" s.slow_factor))
        victims;
      Sim.schedule sim ~delay:s.slow_ms (fun () ->
          List.iter
            (fun p ->
              Net.clear_slow t.net p;
              note t ~kind:"fault.slow.end" ~peer:p ~detail:"")
            victims))

let schedule_partition t (p : partition) =
  let sim = Net.sim t.net in
  Sim.schedule sim ~delay:p.part_at (fun () ->
      List.iteri
        (fun gi group ->
          List.iter
            (fun peer ->
              Net.set_partition t.net peer ~group:(gi + 1);
              note t ~kind:"fault.partition" ~peer ~detail:(Printf.sprintf "group=%d" (gi + 1)))
            group)
        p.groups;
      Sim.schedule sim ~delay:p.part_ms (fun () ->
          Net.clear_partitions t.net;
          List.iter
            (fun peer -> note t ~kind:"fault.heal" ~peer ~detail:"")
            (List.concat p.groups)))

let inject net spec =
  let protected_set = Hashtbl.create (max 8 (List.length spec.protected)) in
  List.iter (fun p -> Hashtbl.replace protected_set p ()) spec.protected;
  let t =
    { net; spec; rng = Rng.create spec.seed; protected_set; rev_log = []; crashes = 0;
      revives = 0 }
  in
  Option.iter (schedule_churn t) spec.churn;
  List.iter (schedule_burst t) spec.bursts;
  Option.iter (schedule_slow t) spec.slow;
  Option.iter (schedule_partition t) spec.partition;
  t

let log t = List.rev t.rev_log
let crashes t = t.crashes
let revives t = t.revives
let render_event e = Printf.sprintf "%12.3f %-18s peer=%-5d %s" e.at e.fault e.peer e.detail
let render_log t = String.concat "\n" (List.map render_event (log t))

let pp fmt t =
  Format.fprintf fmt "@[<v>fault log (%d crashes, %d revives):@," t.crashes t.revives;
  List.iter (fun e -> Format.fprintf fmt "%s@," (render_event e)) (log t);
  Format.fprintf fmt "@]"
