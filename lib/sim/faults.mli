(** Deterministic, seeded fault-injection scenarios.

    P-Grid's pitch (and the paper's, §2) is robustness under churn; this
    module makes that testable. A {!spec} describes a failure scenario —
    crash/revive churn at a configurable rate, message-loss bursts, slow
    (high-latency) peers, and region partitions — and {!inject} compiles
    it into simulator events layered over {!Net.kill}/{!Net.revive} and
    the {!Net} fault hooks.

    Determinism contract: all randomness flows from [spec.seed] through a
    private {!Unistore_util.Rng} stream, victim sets are canonicalized
    before use (candidates are drawn from {!Net.alive_peers}, which is
    sorted ascending by id regardless of the arena's internal swap-remove
    layout, so the sampled kill sets cannot leak physical memory order),
    and faults fire at scheduled simulation times — so the same spec
    against the same deployment yields a byte-identical {!render_log}
    and, with a tracer attached, an identical message trace. Every injected action is recorded via {!Trace.mark} with a
    [fault.*] kind so trace linting can correlate failures with protocol
    anomalies. *)

(** Crash/revive churn: every [interval_ms], kill a fresh [rate]-fraction
    of the currently-alive, unprotected peers; each victim revives (with
    its state intact) after [down_ms]. *)
type churn = { rate : float; interval_ms : float; down_ms : float }

(** One message-loss burst: at [burst_at] (relative to injection), raise
    the network's iid loss probability to [burst_drop]; restore the
    previous value after [burst_ms]. *)
type burst = { burst_at : float; burst_ms : float; burst_drop : float }

(** Slow peers: at [slow_at], multiply latencies touching a random
    [slow_fraction] of alive peers by [slow_factor] for [slow_ms]. *)
type slow = { slow_at : float; slow_ms : float; slow_fraction : float; slow_factor : float }

(** Region partition: at [part_at], split the listed peer groups from
    each other (peers not listed stay in the default group); heal after
    [part_ms]. Group membership is explicit because the driver is
    overlay-agnostic — callers map overlay regions to peer ids. *)
type partition = { part_at : float; part_ms : float; groups : int list list }

type spec = {
  seed : int;  (** sole randomness source for the scenario *)
  duration_ms : float;  (** churn keeps waving until this horizon *)
  churn : churn option;
  bursts : burst list;
  slow : slow option;
  partition : partition option;
  protected : int list;  (** never killed or slowed (e.g. query origins) *)
}

val spec :
  ?seed:int ->
  ?duration_ms:float ->
  ?churn:churn ->
  ?bursts:burst list ->
  ?slow:slow ->
  ?partition:partition ->
  ?protected:int list ->
  unit ->
  spec

val churn_spec : ?interval_ms:float -> ?down_ms:float -> rate:float -> unit -> churn

(** One logged injection action. *)
type event = { at : float; fault : string; peer : int; detail : string }

type 'msg t

(** [inject net spec] schedules the whole scenario and returns a handle
    for inspecting what actually fired. Injection is cheap; faults fire
    as the caller advances the simulation. *)
val inject : 'msg Net.t -> spec -> 'msg t

(** Actions fired so far, in order. *)
val log : 'msg t -> event list

val crashes : 'msg t -> int
val revives : 'msg t -> int
val render_event : event -> string

(** Canonical textual rendering of {!log}; equal strings certify
    identical replay. *)
val render_log : 'msg t -> string

val pp : Format.formatter -> 'msg t -> unit
