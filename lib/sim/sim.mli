(** Discrete-event simulation core.

    The whole UniStore reproduction runs inside one of these: every network
    message delivery, timeout and maintenance action is an event on the
    queue. Time is in {e milliseconds} of simulated wall clock. Execution
    is single-threaded and deterministic: events with equal timestamps run
    in scheduling order.

    {b Representation.} A simulation is just a clock, a {!Pqueue} of
    [unit -> unit] closures keyed by absolute firing time, and a counter
    of executed events. All state an event touches lives in the closures'
    environments; the kernel itself holds none. The event loop is a tight
    pop-and-call: O(log n) per event in the queue size, no allocation
    beyond what the event bodies themselves do — this is what lets one
    process drain hundreds of thousands of events per real second at
    100k+ simulated peers (see EXPERIMENTS.md, "Scale").

    {b Determinism.} The only ordering authority is the queue's
    [(time, sequence)] key. Given the same initial schedule and the same
    seeded {!Unistore_util.Rng} streams, every run executes the identical
    event sequence — the property the fault-replay tests
    ([test/test_scale.ml], [test/test_faults.ml]) assert byte-for-byte.
    Nothing here reads wall-clock time or global randomness. *)

type t

(** [create ()] is an empty simulation at time [0.0]. *)
val create : unit -> t

(** Current simulated time (ms). *)
val now : t -> float

(** [schedule t ~delay f] runs [f] at [now t +. delay]. [delay] must be
    non-negative. *)
val schedule : t -> delay:float -> (unit -> unit) -> unit

(** [schedule_at t ~time f] runs [f] at absolute [time] (clamped to now). *)
val schedule_at : t -> time:float -> (unit -> unit) -> unit

(** Number of queued events. *)
val pending : t -> int

(** Total events executed so far. *)
val processed : t -> int

(** [run_until t pred] executes events in time order until [pred ()]
    becomes true (checked after every event) or the queue drains; returns
    [true] iff the predicate was satisfied. [max_events] (default 20M)
    guards against runaway loops. *)
val run_until : ?max_events:int -> t -> (unit -> bool) -> bool

(** [run_all t] drains the queue. *)
val run_all : ?max_events:int -> t -> unit

(** [run_for t ~duration] executes all events scheduled within the next
    [duration] ms and advances the clock to [now + duration]. *)
val run_for : ?max_events:int -> t -> duration:float -> unit
