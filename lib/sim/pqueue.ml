(* Implicit 4-ary min-heap over three parallel arrays: priorities in an
   unboxed float array, insertion sequence numbers in an int array, and
   payloads in a plain array. Compared to an array of entry records this
   costs zero allocation per push (the old layout allocated a 4-word
   record per event), keeps sift loops walking flat unboxed memory, and
   the 4-way branching halves the tree depth — the event scheduler is
   the single hottest structure in the simulator, every message delivery
   passes through it twice.

   Ordering is the total order (priority, seq): seq breaks ties FIFO, so
   the pop sequence is unique and the event loop deterministic. *)

type 'a t = {
  mutable prios : float array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { prios = [||]; seqs = [||]; vals = [||]; len = 0; next_seq = 0 }

let is_empty t = t.len = 0
let size t = t.len

(* (prio, seq) at [i] sorts strictly before (p, s)? *)
let lt t i p s =
  let pi = Array.unsafe_get t.prios i in
  pi < p || (pi = p && Array.unsafe_get t.seqs i < s)

let grow t v =
  let cap = Array.length t.prios in
  if t.len = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let nprios = Array.make ncap 0.0 in
    let nseqs = Array.make ncap 0 in
    (* [v] (the value being pushed) seeds the fresh slots; it is live
       anyway, so the aliases retain nothing extra. *)
    let nvals = Array.make ncap v in
    Array.blit t.prios 0 nprios 0 t.len;
    Array.blit t.seqs 0 nseqs 0 t.len;
    Array.blit t.vals 0 nvals 0 t.len;
    t.prios <- nprios;
    t.seqs <- nseqs;
    t.vals <- nvals
  end

let set t i p s v =
  Array.unsafe_set t.prios i p;
  Array.unsafe_set t.seqs i s;
  Array.unsafe_set t.vals i v

let push t ~priority x =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  grow t x;
  (* Sift the hole up from the end; the element is only written once its
     final slot is known. *)
  let i = ref t.len in
  t.len <- t.len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 4 in
    if lt t parent priority s then continue := false
    else begin
      set t !i
        (Array.unsafe_get t.prios parent)
        (Array.unsafe_get t.seqs parent)
        (Array.unsafe_get t.vals parent);
      i := parent
    end
  done;
  set t !i priority s x

let pop t =
  if t.len = 0 then None
  else begin
    let top_p = t.prios.(0) and top_v = t.vals.(0) in
    let n = t.len - 1 in
    t.len <- n;
    if n > 0 then begin
      (* Sift the displaced last element down from the root. *)
      let p = t.prios.(n) and s = t.seqs.(n) and v = t.vals.(n) in
      (* Re-point the freed slot at [v] (still live in the heap) so the
         popped payload is not retained through a stale alias. *)
      t.vals.(n) <- v;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let c0 = (4 * !i) + 1 in
        if c0 >= n then continue := false
        else begin
          (* Smallest of up to four children. *)
          let best = ref c0 in
          let last = min (c0 + 3) (n - 1) in
          for c = c0 + 1 to last do
            if lt t c (Array.unsafe_get t.prios !best) (Array.unsafe_get t.seqs !best) then
              best := c
          done;
          if lt t !best p s then begin
            set t !i
              (Array.unsafe_get t.prios !best)
              (Array.unsafe_get t.seqs !best)
              (Array.unsafe_get t.vals !best);
            i := !best
          end
          else continue := false
        end
      done;
      set t !i p s v
    end;
    Some (top_p, top_v)
  end

let peek_priority t = if t.len = 0 then None else Some t.prios.(0)

let clear t =
  t.prios <- [||];
  t.seqs <- [||];
  t.vals <- [||];
  t.len <- 0
