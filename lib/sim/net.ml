module Rng = Unistore_util.Rng
module Metrics = Unistore_obs.Metrics

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  to_dead : int;
  bytes_sent : int;
  bytes_delivered : int;
}

let zero_stats =
  { sent = 0; delivered = 0; dropped = 0; to_dead = 0; bytes_sent = 0; bytes_delivered = 0 }

let pp_stats fmt s =
  Format.fprintf fmt "sent=%d delivered=%d dropped=%d to_dead=%d bytes_sent=%d bytes_delivered=%d"
    s.sent s.delivered s.dropped s.to_dead s.bytes_sent s.bytes_delivered

type 'msg t = {
  sim : Sim.t;
  latency : Latency.t;
  rng : Rng.t;
  mutable drop : float;
  size : 'msg -> int;
  kind : 'msg -> string;
  corr : 'msg -> int;
  handlers : (int, src:int -> 'msg -> unit) Hashtbl.t;
  dead : (int, unit) Hashtbl.t;
  (* Fault-injection state (see Faults): per-peer latency multipliers for
     "slow peer" scenarios and partition-group ids — peers in different
     groups cannot exchange messages while the partition lasts. *)
  slow : (int, float) Hashtbl.t;
  partition : (int, int) Hashtbl.t;
  mutable stats : stats;
  mutable total_sent : int;
  mutable tracer : Trace.t option;
  mutable metrics : Metrics.t option;
  (* Sorted peer lists are rebuilt lazily and cached: gossip rounds call
     [peers]/[alive_peers] once per peer per round, and a fold+sort over
     the handler table each time dominates their cost. *)
  mutable peers_cache : int list option;
  mutable alive_cache : int list option;
}

let create sim ~latency ~rng ?(drop = 0.0) ?(size = fun _ -> 64) ?(kind = fun _ -> "msg")
    ?(corr = fun _ -> -1) () =
  {
    sim;
    latency;
    rng = Rng.split rng;
    drop;
    size;
    kind;
    corr;
    handlers = Hashtbl.create 256;
    dead = Hashtbl.create 16;
    slow = Hashtbl.create 8;
    partition = Hashtbl.create 8;
    stats = zero_stats;
    total_sent = 0;
    tracer = None;
    metrics = None;
    peers_cache = None;
    alive_cache = None;
  }

let set_trace t tr = t.tracer <- tr
let trace t = t.tracer
let set_metrics t m = t.metrics <- m
let metrics t = t.metrics

let drop t = t.drop

let set_drop t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Net.set_drop: probability out of [0,1]";
  t.drop <- p

let set_slow t peer ~factor =
  if factor < 1.0 then invalid_arg "Net.set_slow: factor < 1";
  Hashtbl.replace t.slow peer factor

let clear_slow t peer = Hashtbl.remove t.slow peer
let slow_factor t peer = Option.value ~default:1.0 (Hashtbl.find_opt t.slow peer)
let set_partition t peer ~group = Hashtbl.replace t.partition peer group
let clear_partitions t = Hashtbl.reset t.partition
let partition_group t peer = Option.value ~default:0 (Hashtbl.find_opt t.partition peer)
let partitioned t ~src ~dst = src <> dst && partition_group t src <> partition_group t dst

let invalidate_peer_caches t =
  t.peers_cache <- None;
  t.alive_cache <- None

let register t peer handler =
  Hashtbl.replace t.handlers peer handler;
  Hashtbl.remove t.dead peer;
  invalidate_peer_caches t

let is_alive t peer = Hashtbl.mem t.handlers peer && not (Hashtbl.mem t.dead peer)

let kill t peer =
  if Hashtbl.mem t.handlers peer then begin
    Hashtbl.replace t.dead peer ();
    t.alive_cache <- None
  end

let revive t peer =
  Hashtbl.remove t.dead peer;
  t.alive_cache <- None

let peers t =
  match t.peers_cache with
  | Some l -> l
  | None ->
    let l = Hashtbl.fold (fun id _ acc -> id :: acc) t.handlers [] |> List.sort compare in
    t.peers_cache <- Some l;
    l

let alive_peers t =
  match t.alive_cache with
  | Some l -> l
  | None ->
    let l = List.filter (is_alive t) (peers t) in
    t.alive_cache <- Some l;
    l

let send t ~src ~dst msg =
  let nbytes = t.size msg in
  t.stats <-
    { t.stats with sent = t.stats.sent + 1; bytes_sent = t.stats.bytes_sent + nbytes };
  t.total_sent <- t.total_sent + 1;
  (match t.metrics with
  | Some m ->
    let kind = t.kind msg in
    Metrics.incr m "net.sent";
    Metrics.incr m ~by:nbytes "net.bytes.sent";
    Metrics.incr m ("net.sent." ^ kind);
    Metrics.incr m ~by:nbytes ("net.bytes.sent." ^ kind)
  | None -> ());
  let event =
    match t.tracer with
    | Some tr ->
      Some
        (Trace.record tr ~corr:(t.corr msg) ~time:(Sim.now t.sim) ~src ~dst ~kind:(t.kind msg)
           ~bytes:nbytes ())
    | None -> None
  in
  let resolve outcome =
    (match t.metrics with
    | Some m ->
      Metrics.incr m
        (match outcome with
        | Trace.Delivered -> "net.delivered"
        | Trace.Dropped -> "net.dropped"
        | Trace.To_dead -> "net.to_dead"
        | Trace.In_flight -> "net.in_flight");
      if outcome = Trace.Delivered then Metrics.incr m ~by:nbytes "net.bytes.delivered"
    | None -> ());
    match event with Some e -> e.Trace.outcome <- outcome | None -> ()
  in
  if partitioned t ~src ~dst then begin
    t.stats <- { t.stats with dropped = t.stats.dropped + 1 };
    resolve Trace.Dropped
  end
  else if t.drop > 0.0 && Rng.bool t.rng ~p:t.drop then begin
    t.stats <- { t.stats with dropped = t.stats.dropped + 1 };
    resolve Trace.Dropped
  end
  else begin
    let delay =
      if src = dst then 0.01
      else
        Latency.sample t.latency ~src ~dst
        *. Float.max (slow_factor t src) (slow_factor t dst)
    in
    Sim.schedule t.sim ~delay (fun () ->
        if is_alive t dst then begin
          match Hashtbl.find_opt t.handlers dst with
          | Some handler ->
            t.stats <-
              {
                t.stats with
                delivered = t.stats.delivered + 1;
                bytes_delivered = t.stats.bytes_delivered + nbytes;
              };
            resolve Trace.Delivered;
            handler ~src msg
          | None ->
            t.stats <- { t.stats with to_dead = t.stats.to_dead + 1 };
            resolve Trace.To_dead
        end
        else begin
          t.stats <- { t.stats with to_dead = t.stats.to_dead + 1 };
          resolve Trace.To_dead
        end)
  end

let stats t = t.stats
let reset_stats t = t.stats <- zero_stats
let total_sent t = t.total_sent
let sim t = t.sim
let latency t = t.latency
