module Rng = Unistore_util.Rng
module Metrics = Unistore_obs.Metrics

type stats = { sent : int; delivered : int; dropped : int; to_dead : int; bytes : int }

let zero_stats = { sent = 0; delivered = 0; dropped = 0; to_dead = 0; bytes = 0 }

let pp_stats fmt s =
  Format.fprintf fmt "sent=%d delivered=%d dropped=%d to_dead=%d bytes=%d" s.sent s.delivered
    s.dropped s.to_dead s.bytes

type 'msg t = {
  sim : Sim.t;
  latency : Latency.t;
  rng : Rng.t;
  drop : float;
  size : 'msg -> int;
  kind : 'msg -> string;
  corr : 'msg -> int;
  handlers : (int, src:int -> 'msg -> unit) Hashtbl.t;
  dead : (int, unit) Hashtbl.t;
  mutable stats : stats;
  mutable total_sent : int;
  mutable tracer : Trace.t option;
  mutable metrics : Metrics.t option;
}

let create sim ~latency ~rng ?(drop = 0.0) ?(size = fun _ -> 64) ?(kind = fun _ -> "msg")
    ?(corr = fun _ -> -1) () =
  {
    sim;
    latency;
    rng = Rng.split rng;
    drop;
    size;
    kind;
    corr;
    handlers = Hashtbl.create 256;
    dead = Hashtbl.create 16;
    stats = zero_stats;
    total_sent = 0;
    tracer = None;
    metrics = None;
  }

let set_trace t tr = t.tracer <- tr
let trace t = t.tracer
let set_metrics t m = t.metrics <- m
let metrics t = t.metrics

let register t peer handler =
  Hashtbl.replace t.handlers peer handler;
  Hashtbl.remove t.dead peer

let is_alive t peer = Hashtbl.mem t.handlers peer && not (Hashtbl.mem t.dead peer)

let kill t peer = if Hashtbl.mem t.handlers peer then Hashtbl.replace t.dead peer ()
let revive t peer = Hashtbl.remove t.dead peer

let peers t = Hashtbl.fold (fun id _ acc -> id :: acc) t.handlers [] |> List.sort compare

let alive_peers t = List.filter (is_alive t) (peers t)

let send t ~src ~dst msg =
  let nbytes = t.size msg in
  t.stats <- { t.stats with sent = t.stats.sent + 1; bytes = t.stats.bytes + nbytes };
  t.total_sent <- t.total_sent + 1;
  (match t.metrics with
  | Some m ->
    let kind = t.kind msg in
    Metrics.incr m "net.sent";
    Metrics.incr m ~by:nbytes "net.bytes";
    Metrics.incr m ("net.sent." ^ kind);
    Metrics.incr m ~by:nbytes ("net.bytes." ^ kind)
  | None -> ());
  let event =
    match t.tracer with
    | Some tr ->
      Some
        (Trace.record tr ~corr:(t.corr msg) ~time:(Sim.now t.sim) ~src ~dst ~kind:(t.kind msg)
           ~bytes:nbytes ())
    | None -> None
  in
  let resolve outcome =
    (match t.metrics with
    | Some m ->
      Metrics.incr m
        (match outcome with
        | Trace.Delivered -> "net.delivered"
        | Trace.Dropped -> "net.dropped"
        | Trace.To_dead -> "net.to_dead"
        | Trace.In_flight -> "net.in_flight")
    | None -> ());
    match event with Some e -> e.Trace.outcome <- outcome | None -> ()
  in
  if t.drop > 0.0 && Rng.bool t.rng ~p:t.drop then begin
    t.stats <- { t.stats with dropped = t.stats.dropped + 1 };
    resolve Trace.Dropped
  end
  else begin
    let delay = if src = dst then 0.01 else Latency.sample t.latency ~src ~dst in
    Sim.schedule t.sim ~delay (fun () ->
        if is_alive t dst then begin
          match Hashtbl.find_opt t.handlers dst with
          | Some handler ->
            t.stats <- { t.stats with delivered = t.stats.delivered + 1 };
            resolve Trace.Delivered;
            handler ~src msg
          | None ->
            t.stats <- { t.stats with to_dead = t.stats.to_dead + 1 };
            resolve Trace.To_dead
        end
        else begin
          t.stats <- { t.stats with to_dead = t.stats.to_dead + 1 };
          resolve Trace.To_dead
        end)
  end

let stats t = t.stats
let reset_stats t = t.stats <- zero_stats
let total_sent t = t.total_sent
let sim t = t.sim
let latency t = t.latency
