module Rng = Unistore_util.Rng
module Metrics = Unistore_obs.Metrics

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  to_dead : int;
  bytes_sent : int;
  bytes_delivered : int;
}

let zero_stats =
  { sent = 0; delivered = 0; dropped = 0; to_dead = 0; bytes_sent = 0; bytes_delivered = 0 }

let pp_stats fmt s =
  Format.fprintf fmt "sent=%d delivered=%d dropped=%d to_dead=%d bytes_sent=%d bytes_delivered=%d"
    s.sent s.delivered s.dropped s.to_dead s.bytes_sent s.bytes_delivered

(* Peer state is an arena: dense arrays indexed by peer id. The
   simulator mints ids 0..n-1, so id-keyed hashtables only added hashing
   and pointer chasing to every delivery. [handlers]/[slowf]/[pgroup]/
   [alive_pos] grow together; [alive_ids.(0..alive_len-1)] plus the
   inverse index [alive_pos] form a swap-remove set giving O(1) kill,
   revive, liveness test and uniform sampling over alive peers.
   Invariant: [alive_pos.(id)] is the position of [id] in [alive_ids],
   or -1 when [id] is dead or unregistered. *)
type 'msg t = {
  sim : Sim.t;
  latency : Latency.t;
  rng : Rng.t;
  mutable drop : float;
  size : 'msg -> int;
  kind : 'msg -> string;
  corr : 'msg -> int;
  mutable handlers : (src:int -> 'msg -> unit) option array;
  mutable slowf : float array;  (* latency multiplier; 1.0 = normal *)
  mutable pgroup : int array;  (* partition group; 0 = default *)
  mutable max_id : int;  (* highest registered id, -1 if none *)
  mutable n_registered : int;
  mutable alive_ids : int array;
  mutable alive_pos : int array;
  mutable alive_len : int;
  mutable n_slow : int;  (* peers with slowf <> 1.0; 0 short-circuits sends *)
  mutable n_partitioned : int;  (* peers with pgroup <> 0; 0 short-circuits *)
  (* Per-peer service-queue model: a peer with svc_ms > 0 processes one
     inbound message every svc_ms simulated ms; arrivals queue FIFO
     behind in-service work ([busy_until] is the virtual-clock end of
     the last accepted job). svc_ms = 0 (the default) is the classic
     infinite-capacity peer and costs nothing on the delivery path. *)
  mutable svc_ms : float array;
  mutable busy_until : float array;
  mutable qdepth : int array;  (* messages accepted but not yet handled *)
  mutable n_serviced : int;  (* peers with svc_ms > 0; 0 short-circuits *)
  (* Aggregate counters are mutable ints rather than a reallocated
     record: several are bumped on every send and every delivery. *)
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable to_dead : int;
  mutable bytes_sent : int;
  mutable bytes_delivered : int;
  mutable total_sent : int;
  mutable tracer : Trace.t option;
  mutable metrics : Metrics.t option;
  (* Sorted peer lists are rebuilt lazily and cached: gossip rounds call
     [peers]/[alive_peers] once per peer per round, and rebuilding per
     call would dominate their cost. *)
  mutable peers_cache : int list option;
  mutable alive_cache : int list option;
}

let create sim ~latency ~rng ?(drop = 0.0) ?(size = fun _ -> 64) ?(kind = fun _ -> "msg")
    ?(corr = fun _ -> -1) () =
  {
    sim;
    latency;
    rng = Rng.split rng;
    drop;
    size;
    kind;
    corr;
    handlers = [||];
    slowf = [||];
    pgroup = [||];
    max_id = -1;
    n_registered = 0;
    alive_ids = [||];
    alive_pos = [||];
    alive_len = 0;
    n_slow = 0;
    n_partitioned = 0;
    svc_ms = [||];
    busy_until = [||];
    qdepth = [||];
    n_serviced = 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    to_dead = 0;
    bytes_sent = 0;
    bytes_delivered = 0;
    total_sent = 0;
    tracer = None;
    metrics = None;
    peers_cache = None;
    alive_cache = None;
  }

let ensure_capacity t id =
  let cap = Array.length t.handlers in
  if id >= cap then begin
    let ncap = max (id + 1) (max 64 (cap * 2)) in
    let nhandlers = Array.make ncap None in
    let nslowf = Array.make ncap 1.0 in
    let npgroup = Array.make ncap 0 in
    let npos = Array.make ncap (-1) in
    let nsvc = Array.make ncap 0.0 in
    let nbusy = Array.make ncap 0.0 in
    let nqdepth = Array.make ncap 0 in
    Array.blit t.handlers 0 nhandlers 0 cap;
    Array.blit t.slowf 0 nslowf 0 cap;
    Array.blit t.pgroup 0 npgroup 0 cap;
    Array.blit t.alive_pos 0 npos 0 cap;
    Array.blit t.svc_ms 0 nsvc 0 cap;
    Array.blit t.busy_until 0 nbusy 0 cap;
    Array.blit t.qdepth 0 nqdepth 0 cap;
    t.handlers <- nhandlers;
    t.slowf <- nslowf;
    t.pgroup <- npgroup;
    t.alive_pos <- npos;
    t.svc_ms <- nsvc;
    t.busy_until <- nbusy;
    t.qdepth <- nqdepth
  end

let set_trace t tr = t.tracer <- tr
let trace t = t.tracer
let set_metrics t m = t.metrics <- m
let metrics t = t.metrics

let drop t = t.drop

let set_drop t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Net.set_drop: probability out of [0,1]";
  t.drop <- p

let in_arena t peer = peer >= 0 && peer <= t.max_id

let set_slow t peer ~factor =
  if factor < 1.0 then invalid_arg "Net.set_slow: factor < 1";
  if peer >= 0 then begin
    ensure_capacity t peer;
    if Float.equal t.slowf.(peer) 1.0 && not (Float.equal factor 1.0) then
      t.n_slow <- t.n_slow + 1;
    t.slowf.(peer) <- factor
  end

let clear_slow t peer =
  if peer >= 0 && peer < Array.length t.slowf && not (Float.equal t.slowf.(peer) 1.0)
  then begin
    t.n_slow <- t.n_slow - 1;
    t.slowf.(peer) <- 1.0
  end

let slow_factor t peer =
  if peer >= 0 && peer < Array.length t.slowf then t.slowf.(peer) else 1.0

let set_service t peer ~ms =
  if ms < 0.0 then invalid_arg "Net.set_service: negative service time";
  if peer >= 0 then begin
    ensure_capacity t peer;
    let old = t.svc_ms.(peer) in
    if old <= 0.0 && ms > 0.0 then t.n_serviced <- t.n_serviced + 1
    else if old > 0.0 && ms <= 0.0 then t.n_serviced <- t.n_serviced - 1;
    t.svc_ms.(peer) <- ms;
    if ms <= 0.0 then begin
      t.busy_until.(peer) <- 0.0;
      t.qdepth.(peer) <- 0
    end
  end

let set_service_all t ~ms =
  for id = 0 to t.max_id do
    match t.handlers.(id) with Some _ -> set_service t id ~ms | None -> ()
  done

let service_ms t peer =
  if peer >= 0 && peer < Array.length t.svc_ms then t.svc_ms.(peer) else 0.0

let queue_depth t peer =
  if peer >= 0 && peer < Array.length t.qdepth then t.qdepth.(peer) else 0

(* Simulated ms of queued + in-service work at [peer] right now. *)
let service_backlog t peer =
  if peer >= 0 && peer < Array.length t.busy_until then
    Float.max 0.0 (t.busy_until.(peer) -. Sim.now t.sim)
  else 0.0

let set_partition t peer ~group =
  if peer >= 0 then begin
    ensure_capacity t peer;
    let old = t.pgroup.(peer) in
    if old = 0 && group <> 0 then t.n_partitioned <- t.n_partitioned + 1
    else if old <> 0 && group = 0 then t.n_partitioned <- t.n_partitioned - 1;
    t.pgroup.(peer) <- group
  end

let clear_partitions t =
  if t.n_partitioned > 0 then Array.fill t.pgroup 0 (Array.length t.pgroup) 0;
  t.n_partitioned <- 0

let partition_group t peer =
  if peer >= 0 && peer < Array.length t.pgroup then t.pgroup.(peer) else 0

let partitioned t ~src ~dst =
  src <> dst && partition_group t src <> partition_group t dst

let invalidate_peer_caches t =
  t.peers_cache <- None;
  t.alive_cache <- None

(* Alive-set maintenance: O(1) add/remove by swapping with the tail. *)
let alive_add t peer =
  if t.alive_pos.(peer) < 0 then begin
    if t.alive_len >= Array.length t.alive_ids then begin
      let ncap = max 64 (2 * max t.alive_len 1) in
      let nids = Array.make ncap 0 in
      Array.blit t.alive_ids 0 nids 0 t.alive_len;
      t.alive_ids <- nids
    end;
    t.alive_ids.(t.alive_len) <- peer;
    t.alive_pos.(peer) <- t.alive_len;
    t.alive_len <- t.alive_len + 1
  end

let alive_remove t peer =
  let pos = t.alive_pos.(peer) in
  if pos >= 0 then begin
    let last = t.alive_len - 1 in
    let moved = t.alive_ids.(last) in
    t.alive_ids.(pos) <- moved;
    t.alive_pos.(moved) <- pos;
    t.alive_pos.(peer) <- -1;
    t.alive_len <- last
  end

let registered t peer =
  in_arena t peer && (match t.handlers.(peer) with Some _ -> true | None -> false)

let register t peer handler =
  if peer < 0 then invalid_arg "Net.register: negative peer id";
  ensure_capacity t peer;
  (match t.handlers.(peer) with None -> t.n_registered <- t.n_registered + 1 | Some _ -> ());
  t.handlers.(peer) <- Some handler;
  if peer > t.max_id then t.max_id <- peer;
  alive_add t peer;
  invalidate_peer_caches t

let is_alive t peer = peer >= 0 && peer < Array.length t.alive_pos && t.alive_pos.(peer) >= 0

let kill t peer =
  if registered t peer then begin
    alive_remove t peer;
    t.alive_cache <- None
  end

let revive t peer =
  if registered t peer then begin
    alive_add t peer;
    t.alive_cache <- None
  end

let registered_count t = t.n_registered
let alive_count t = t.alive_len

let random_alive t rng =
  if t.alive_len = 0 then None else Some t.alive_ids.(Rng.int rng t.alive_len)

let iter_alive t f =
  (* Ascending id order — not [alive_ids] order, which swap-removal
     scrambles — so callers that consume RNG draws per peer stay
     deterministic across kernel versions. *)
  for id = 0 to t.max_id do
    if t.alive_pos.(id) >= 0 then f id
  done

let peers t =
  match t.peers_cache with
  | Some l -> l
  | None ->
    let l = ref [] in
    for id = t.max_id downto 0 do
      match t.handlers.(id) with Some _ -> l := id :: !l | None -> ()
    done;
    t.peers_cache <- Some !l;
    !l

let alive_peers t =
  match t.alive_cache with
  | Some l -> l
  | None ->
    let l = ref [] in
    for id = t.max_id downto 0 do
      if t.alive_pos.(id) >= 0 then l := id :: !l
    done;
    t.alive_cache <- Some !l;
    !l

let send t ~src ~dst msg =
  let nbytes = t.size msg in
  t.sent <- t.sent + 1;
  t.bytes_sent <- t.bytes_sent + nbytes;
  t.total_sent <- t.total_sent + 1;
  (match t.metrics with
  | Some m ->
    let kind = t.kind msg in
    Metrics.incr m "net.sent";
    Metrics.incr m ~by:nbytes "net.bytes.sent";
    Metrics.incr m ("net.sent." ^ kind);
    Metrics.incr m ~by:nbytes ("net.bytes.sent." ^ kind)
  | None -> ());
  let event =
    match t.tracer with
    | Some tr ->
      Some
        (Trace.record tr ~corr:(t.corr msg) ~time:(Sim.now t.sim) ~src ~dst ~kind:(t.kind msg)
           ~bytes:nbytes ())
    | None -> None
  in
  let resolve outcome =
    (match t.metrics with
    | Some m ->
      Metrics.incr m
        (match outcome with
        | Trace.Delivered -> "net.delivered"
        | Trace.Dropped -> "net.dropped"
        | Trace.To_dead -> "net.to_dead"
        | Trace.In_flight -> "net.in_flight");
      if outcome = Trace.Delivered then Metrics.incr m ~by:nbytes "net.bytes.delivered"
    | None -> ());
    match event with Some e -> e.Trace.outcome <- outcome | None -> ()
  in
  if t.n_partitioned > 0 && partitioned t ~src ~dst then begin
    t.dropped <- t.dropped + 1;
    resolve Trace.Dropped
  end
  else if t.drop > 0.0 && Rng.bool t.rng ~p:t.drop then begin
    t.dropped <- t.dropped + 1;
    resolve Trace.Dropped
  end
  else begin
    let delay =
      if src = dst then 0.01
      else begin
        let l = Latency.sample t.latency ~src ~dst in
        if t.n_slow = 0 then l else l *. Float.max (slow_factor t src) (slow_factor t dst)
      end
    in
    let deliver () =
      if is_alive t dst then begin
        match t.handlers.(dst) with
        | Some handler ->
          t.delivered <- t.delivered + 1;
          t.bytes_delivered <- t.bytes_delivered + nbytes;
          resolve Trace.Delivered;
          handler ~src msg
        | None ->
          t.to_dead <- t.to_dead + 1;
          resolve Trace.To_dead
      end
      else begin
        t.to_dead <- t.to_dead + 1;
        resolve Trace.To_dead
      end
    in
    Sim.schedule t.sim ~delay (fun () ->
        (* Arrival. With a service model at [dst], the message takes a
           FIFO ticket behind whatever is queued or in service; delivery
           (the handler call) happens when its service slot completes.
           Aliveness is re-checked at delivery, so a peer dying with a
           backlog loses the backlog. *)
        let svc = if t.n_serviced = 0 || not (in_arena t dst) then 0.0 else t.svc_ms.(dst) in
        if svc <= 0.0 then deliver ()
        else if not (is_alive t dst) then begin
          t.to_dead <- t.to_dead + 1;
          resolve Trace.To_dead
        end
        else begin
          let now = Sim.now t.sim in
          let start = Float.max now t.busy_until.(dst) in
          let wait = start -. now in
          t.busy_until.(dst) <- start +. svc;
          t.qdepth.(dst) <- t.qdepth.(dst) + 1;
          (match t.metrics with
          | Some m ->
            Metrics.incr m "queue.msgs";
            if wait > 0.0 then Metrics.incr m "queue.delayed";
            Metrics.observe m "queue.wait_ms" wait;
            Metrics.observe m
              ~buckets:(Unistore_obs.Histogram.linear ~lo:1.0 ~step:1.0 ~n:64)
              "queue.depth"
              (float_of_int t.qdepth.(dst))
          | None -> ());
          (match t.tracer with
          | Some tr when wait > 0.0 ->
            Trace.mark tr ~time:now ~src:dst ~kind:"queue.wait" ()
          | _ -> ());
          Sim.schedule t.sim ~delay:(wait +. svc) (fun () ->
              t.qdepth.(dst) <- t.qdepth.(dst) - 1;
              deliver ())
        end)
  end

let stats t =
  {
    sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped;
    to_dead = t.to_dead;
    bytes_sent = t.bytes_sent;
    bytes_delivered = t.bytes_delivered;
  }

let reset_stats t =
  t.sent <- 0;
  t.delivered <- 0;
  t.dropped <- 0;
  t.to_dead <- 0;
  t.bytes_sent <- 0;
  t.bytes_delivered <- 0

let total_sent t = t.total_sent
let sim t = t.sim
let latency t = t.latency
