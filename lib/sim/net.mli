(** Simulated message-passing network.

    Peers are integers; each registers a handler. [send] draws a one-way
    latency, applies message loss, and schedules the delivery event.
    Messages to dead peers vanish (the sender learns nothing — protocols
    must use timeouts). All traffic is counted, which is how experiments
    measure message/bandwidth cost — either through the always-on
    aggregate {!stats}, or per message kind via an attached
    {!Unistore_obs.Metrics} registry ({!set_metrics}), or per message
    via an attached {!Trace} ({!set_trace}).

    {b Representation.} Peer state lives in an arena of dense arrays
    indexed by peer id (ids are expected to be minted densely from 0).
    Liveness is a swap-remove set ([alive_ids] plus an inverse position
    index), so {!is_alive}, {!kill}, {!revive}, {!alive_count} and
    {!random_alive} are all O(1); nothing on the per-message path scans
    the peer population. Fault state (slow factors, partition groups)
    is held in the same arena and guarded by population counters, so a
    fault-free network pays no per-send cost for the fault machinery.

    {b Determinism.} The network owns a private RNG stream (split from
    the creation [rng]) used only for drop decisions, so loss does not
    perturb protocol-level RNG streams. Given the same seed and the
    same sequence of calls, every delivery schedule — and hence the
    whole event trace — is reproducible bit-for-bit. *)

type 'msg t

type stats = {
  sent : int;  (** messages handed to the network *)
  delivered : int;  (** messages that reached a live handler *)
  dropped : int;  (** lost to the iid loss process *)
  to_dead : int;  (** addressed to a dead peer at delivery time *)
  bytes_sent : int;  (** payload bytes handed to the network *)
  bytes_delivered : int;
      (** payload bytes that reached a live handler — dropped or
          dead-lettered messages do not count, so bandwidth-reduction
          numbers stay trustworthy under loss *)
}

val zero_stats : stats
val pp_stats : Format.formatter -> stats -> unit

(** [create sim ~latency ~rng ?drop ?size ?kind ?corr ()] builds a
    network. [drop] is the iid message-loss probability (default [0.]).
    [size] estimates payload bytes for bandwidth accounting (default
    [fun _ -> 64]). [kind] names a message's constructor for tracing
    (default [fun _ -> "msg"]). [corr] extracts a correlation (request)
    id for request/reply trace linting (default [fun _ -> -1]). *)
val create :
  Sim.t ->
  latency:Latency.t ->
  rng:Unistore_util.Rng.t ->
  ?drop:float ->
  ?size:('msg -> int) ->
  ?kind:('msg -> string) ->
  ?corr:('msg -> int) ->
  unit ->
  'msg t

(** [set_trace t (Some tr)] starts recording every message into [tr];
    [None] stops. Tracing off costs nothing. *)
val set_trace : 'msg t -> Trace.t option -> unit

val trace : 'msg t -> Trace.t option

(** [set_metrics t (Some m)] starts accounting every message into [m]:
    counters [net.sent], [net.bytes.sent], [net.sent.<kind>],
    [net.bytes.sent.<kind>] at send time and [net.delivered] /
    [net.dropped] / [net.to_dead] plus [net.bytes.delivered] as
    outcomes resolve. [None] stops; like tracing, the disabled path
    costs nothing. *)
val set_metrics : 'msg t -> Unistore_obs.Metrics.t option -> unit

val metrics : 'msg t -> Unistore_obs.Metrics.t option

(** {2 Fault-injection hooks}

    Used by {!Faults} to run deterministic failure scenarios; all of
    these default to "no fault" and cost nothing when unused. *)

(** Current iid message-loss probability. *)
val drop : 'msg t -> float

(** [set_drop t p] changes the loss probability mid-run (loss bursts).
    Raises [Invalid_argument] outside [0,1]. *)
val set_drop : 'msg t -> float -> unit

(** [set_slow t peer ~factor] multiplies every latency sample on links
    touching [peer] by [factor] (>= 1); the slower endpoint of a link
    wins. [clear_slow] restores normal speed. *)
val set_slow : 'msg t -> int -> factor:float -> unit

val clear_slow : 'msg t -> int -> unit
val slow_factor : 'msg t -> int -> float

(** [set_partition t peer ~group] assigns [peer] to a partition group;
    messages between different groups are dropped at send time.
    Unassigned peers are in group [0]. [clear_partitions] heals the
    network. *)
val set_partition : 'msg t -> int -> group:int -> unit

val clear_partitions : 'msg t -> unit
val partition_group : 'msg t -> int -> int

(** {2 Per-peer service queue}

    A peer with a service time processes inbound messages one at a
    time, [ms] simulated ms each; arrivals queue FIFO behind queued and
    in-service work, so queueing delay and overload are first-class
    observables. With a metrics registry attached, each accepted
    message accounts [queue.msgs], [queue.delayed] (wait > 0) and the
    [queue.wait_ms] / [queue.depth] histograms; with a tracer attached,
    a delayed acceptance records a ["queue.wait"] marker event. The
    default service time is 0 — the classic infinite-capacity peer —
    and that path costs nothing per delivery. *)

(** [set_service t peer ~ms] sets [peer]'s per-message service time in
    simulated ms; [~ms:0.0] removes the service model (and clears any
    backlog bookkeeping). Raises [Invalid_argument] if [ms < 0]. *)
val set_service : 'msg t -> int -> ms:float -> unit

(** [set_service_all t ~ms] applies {!set_service} to every registered
    peer. *)
val set_service_all : 'msg t -> ms:float -> unit

val service_ms : 'msg t -> int -> float

(** Messages accepted by [peer]'s queue whose handler has not run yet
    (queued + in service). 0 without a service model. *)
val queue_depth : 'msg t -> int -> int

(** Simulated ms until [peer]'s queue drains, as of now. *)
val service_backlog : 'msg t -> int -> float

(** [partitioned t ~src ~dst] holds when a message from [src] to [dst]
    would be cut by the current partition. *)
val partitioned : 'msg t -> src:int -> dst:int -> bool

(** [register t peer handler] installs [handler] for [peer] and marks it
    alive. Re-registering replaces the handler. *)
val register : 'msg t -> int -> (src:int -> 'msg -> unit) -> unit

(** [send t ~src ~dst msg] counts the message and schedules delivery. A
    self-send is delivered after a negligible local delay. *)
val send : 'msg t -> src:int -> dst:int -> 'msg -> unit

(** O(1): an array-index probe into the alive set. *)
val is_alive : 'msg t -> int -> bool

(** [kill t peer] makes [peer] unreachable; in-flight messages to it are
    lost at delivery time. O(1) (swap-remove from the alive set). *)
val kill : 'msg t -> int -> unit

(** [revive t peer] brings a killed peer back (same handler and state).
    O(1). *)
val revive : 'msg t -> int -> unit

(** Registered peer ids, sorted. The list is cached and invalidated on
    {!register}/{!kill}/{!revive} — hot callers (gossip rounds) may call
    it per peer per round. *)
val peers : 'msg t -> int list

val alive_peers : 'msg t -> int list

(** Number of registered peers (alive or dead). O(1). *)
val registered_count : 'msg t -> int

(** Number of currently alive peers. O(1). *)
val alive_count : 'msg t -> int

(** [random_alive t rng] draws a uniformly random alive peer using
    [rng], or [None] if none are alive. O(1) — this replaces the
    materialize-filter-sample pattern that made gossip fanout selection
    O(n) per peer. Draws exactly one value from [rng] when the alive
    set is non-empty. *)
val random_alive : 'msg t -> Unistore_util.Rng.t -> int option

(** [iter_alive t f] applies [f] to every alive peer in ascending id
    order (a stable order, independent of the kill/revive history, so
    per-peer RNG consumption stays deterministic). O(max peer id). *)
val iter_alive : 'msg t -> (int -> unit) -> unit
val stats : 'msg t -> stats
val reset_stats : 'msg t -> unit

(** Messages sent since creation, including after resets (monotone);
    convenient for deltas. *)
val total_sent : 'msg t -> int

val sim : 'msg t -> Sim.t
val latency : 'msg t -> Latency.t
