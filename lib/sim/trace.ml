type outcome = Delivered | Dropped | To_dead | In_flight

let pp_outcome fmt = function
  | Delivered -> Format.pp_print_string fmt "delivered"
  | Dropped -> Format.pp_print_string fmt "dropped"
  | To_dead -> Format.pp_print_string fmt "to-dead"
  | In_flight -> Format.pp_print_string fmt "in-flight"

type event = {
  time : float;
  src : int;
  dst : int;
  kind : string;
  bytes : int;
  corr : int;
  mutable outcome : outcome;
}

type t = { mutable rev_events : event list; mutable count : int }

let create () = { rev_events = []; count = 0 }

let clear t =
  t.rev_events <- [];
  t.count <- 0

let events t = List.rev t.rev_events
let length t = t.count

let record t ?(corr = -1) ~time ~src ~dst ~kind ~bytes () =
  let e = { time; src; dst; kind; bytes; corr; outcome = In_flight } in
  t.rev_events <- e :: t.rev_events;
  t.count <- t.count + 1;
  e

let mark t ?(corr = -1) ~time ~src ~kind () =
  let e = record t ~corr ~time ~src ~dst:src ~kind ~bytes:0 () in
  e.outcome <- Delivered

let is_fault e = String.length e.kind >= 6 && String.equal (String.sub e.kind 0 6) "fault."

(* Every out-of-band marker namespace: injected faults plus the service
   queue's "queue.*" annotations. Linters use this to skip events that
   are not protocol messages. *)
let is_marker e = is_fault e || String.starts_with ~prefix:"queue." e.kind

let by_kind t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let c, b = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl e.kind) in
      Hashtbl.replace tbl e.kind (c + 1, b + e.bytes))
    t.rev_events;
  Hashtbl.fold (fun k (c, b) acc -> (k, c, b) :: acc) tbl []
  |> List.sort (fun (_, c1, _) (_, c2, _) -> compare c2 c1)

let busiest_peers t ~top =
  let tbl = Hashtbl.create 64 in
  let bump peer sent recv =
    let s, r = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl peer) in
    Hashtbl.replace tbl peer (s + sent, r + recv)
  in
  List.iter
    (fun e ->
      bump e.src 1 0;
      if e.outcome = Delivered then bump e.dst 0 1)
    t.rev_events;
  Hashtbl.fold (fun p (s, r) acc -> (p, s, r) :: acc) tbl []
  |> List.sort (fun (_, s1, r1) (_, s2, r2) -> compare (s2 + r2) (s1 + r1))
  |> List.filteri (fun i _ -> i < top)

let timeline t ~bucket_ms =
  if bucket_ms <= 0.0 then invalid_arg "Trace.timeline: bucket_ms <= 0";
  match events t with
  | [] -> []
  | evs ->
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun e ->
        let bucket = Float.of_int (int_of_float (e.time /. bucket_ms)) *. bucket_ms in
        Hashtbl.replace tbl bucket (1 + Option.value ~default:0 (Hashtbl.find_opt tbl bucket)))
      evs;
    Hashtbl.fold (fun b c acc -> (b, c) :: acc) tbl [] |> List.sort compare

let outcome_counts t =
  List.fold_left
    (fun (d, dr, td, f) e ->
      match e.outcome with
      | Delivered -> (d + 1, dr, td, f)
      | Dropped -> (d, dr + 1, td, f)
      | To_dead -> (d, dr, td + 1, f)
      | In_flight -> (d, dr, td, f + 1))
    (0, 0, 0, 0) t.rev_events

let pp_summary fmt t =
  let delivered, dropped, to_dead, in_flight = outcome_counts t in
  Format.fprintf fmt "@[<v>%d messages (%d delivered, %d dropped, %d to dead peers, %d in flight)@,"
    t.count delivered dropped to_dead in_flight;
  Format.fprintf fmt "by kind:@,";
  List.iter
    (fun (k, c, b) -> Format.fprintf fmt "  %-12s %6d msgs %8d bytes@," k c b)
    (by_kind t);
  Format.fprintf fmt "busiest peers:@,";
  List.iter
    (fun (p, s, r) -> Format.fprintf fmt "  peer%-5d sent %5d, received %5d@," p s r)
    (busiest_peers t ~top:5);
  Format.fprintf fmt "@]"
