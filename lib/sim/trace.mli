(** Message-level tracing.

    The paper (§3) credits the platform's logging with making results
    "traceable, analyzable and (in limits) repeatable". This module is
    that facility for the simulated network: when attached to a {!Net},
    every message becomes an event (time, endpoints, kind, size, outcome)
    that can be analyzed after the fact — per-kind message mixes, hot
    peers, timelines. Tracing is off unless a trace is attached, so the
    default path pays nothing.

    Repeatability comes from the simulator itself: same seed, same trace. *)

type outcome =
  | Delivered
  | Dropped  (** lost to the iid loss process *)
  | To_dead  (** destination dead at delivery time *)
  | In_flight  (** not yet resolved (end of run) *)

val pp_outcome : Format.formatter -> outcome -> unit

type event = {
  time : float;  (** send time (ms) *)
  src : int;
  dst : int;
  kind : string;  (** message constructor name, e.g. ["lookup"] *)
  bytes : int;
  corr : int;
      (** correlation id linking a request to its replies (the protocol's
          request id); [-1] when the message carries none *)
  mutable outcome : outcome;
}

type t

val create : unit -> t
val clear : t -> unit

(** Events in send order. *)
val events : t -> event list

val length : t -> int

(** Used by {!Net}: append an event (returned so the delivery code can
    resolve its outcome later). [corr] defaults to [-1] (uncorrelated). *)
val record :
  t -> ?corr:int -> time:float -> src:int -> dst:int -> kind:string -> bytes:int -> unit -> event

(** [mark t ~time ~src ~kind ()] records an out-of-band marker event — an
    injected fault ([fault.crash], [fault.revive], …) or a protocol
    annotation ([fault.partial]) — as a zero-byte self-event whose outcome
    is already resolved, so in-flight accounting ignores it. [corr] links
    the marker to a request id when it concerns one. *)
val mark : t -> ?corr:int -> time:float -> src:int -> kind:string -> unit -> unit

(** [is_fault e] holds for marker events whose kind starts with
    ["fault."] — injected faults and partial-result annotations. They are
    recorded outside {!Net.send}, so message-conservation checks must
    skip them. *)
val is_fault : event -> bool

(** [is_marker e] holds for every out-of-band marker namespace:
    {!is_fault} plus the service queue's ["queue.*"] annotations
    (see {!Net.set_service}). *)
val is_marker : event -> bool

(** {2 Analysis} *)

(** [by_kind t] lists [(kind, count, bytes)] sorted by count, descending. *)
val by_kind : t -> (string * int * int) list

(** [busiest_peers t ~top] lists [(peer, sent, received)] for the [top]
    peers by total traffic. *)
val busiest_peers : t -> top:int -> (int * int * int) list

(** [timeline t ~bucket_ms] is the message count per time bucket,
    starting at the first event's bucket. *)
val timeline : t -> bucket_ms:float -> (float * int) list

(** Count of events with each outcome: delivered, dropped, to_dead,
    in_flight. *)
val outcome_counts : t -> int * int * int * int

(** Human-readable analysis report. *)
val pp_summary : Format.formatter -> t -> unit
