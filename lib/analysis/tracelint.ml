module Trace = Unistore_sim.Trace
module Metrics = Unistore_obs.Metrics
module Det = Unistore_util.Det
module D = Diagnostic

type reply_rule = { reply : string; requests : string list; multi : bool }

type rules = {
  request_kinds : string list;
  replies : reply_rule list;
  known_kinds : string list;
}

let pgrid_rules =
  {
    request_kinds = [ "insert"; "update"; "delete"; "lookup"; "range"; "probe" ];
    replies =
      [
        { reply = "ack"; requests = [ "insert"; "update"; "delete" ]; multi = false };
        { reply = "found"; requests = [ "lookup" ]; multi = false };
        { reply = "range-hit"; requests = [ "range"; "probe" ]; multi = true };
      ];
    known_kinds = Protocol.kinds Protocol.pgrid;
  }

let chord_rules =
  {
    request_kinds = [ "put"; "get"; "del"; "bcast" ];
    replies =
      [
        { reply = "put-ack"; requests = [ "put"; "del" ]; multi = false };
        { reply = "got"; requests = [ "get" ]; multi = false };
        { reply = "bcast-hit"; requests = [ "bcast" ]; multi = true };
      ];
    known_kinds = Protocol.kinds Protocol.chord;
  }

(* Per-correlation-id census: corr -> kind -> event count. *)
let census events =
  let tbl : (int, (string, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.corr >= 0 then begin
        let kinds =
          match Hashtbl.find_opt tbl e.Trace.corr with
          | Some k -> k
          | None ->
            let k = Hashtbl.create 4 in
            Hashtbl.replace tbl e.Trace.corr k;
            k
        in
        Hashtbl.replace kinds e.Trace.kind
          (1 + Option.value ~default:0 (Hashtbl.find_opt kinds e.Trace.kind))
      end)
    events;
  tbl

let check_replies rules tbl =
  let ds = ref [] in
  (* Diagnostics carry no spans, so report order IS corr order: iterate
     the census sorted, not in hash-bucket order. *)
  Det.sorted_iter ~cmp:Int.compare
    (fun corr kinds ->
      List.iter
        (fun r ->
          match Hashtbl.find_opt kinds r.reply with
          | None -> ()
          | Some nreplies ->
            let nrequests =
              List.fold_left
                (fun acc k -> acc + Option.value ~default:0 (Hashtbl.find_opt kinds k))
                0 r.requests
            in
            if nrequests = 0 then
              ds :=
                D.makef ~severity:D.Error ~code:"orphan-reply"
                  "request id %d: %d '%s' reply(ies) with no matching request (%s)" corr nreplies
                  r.reply
                  (String.concat "/" r.requests)
                :: !ds
            else if (not r.multi) && nreplies > nrequests then
              ds :=
                D.makef ~severity:D.Error ~code:"multi-reply"
                  "request id %d: %d '%s' replies for %d request message(s)" corr nreplies r.reply
                  nrequests
                :: !ds)
        rules.replies)
    tbl;
  !ds

let check_loops ~allowed_revisits rules events =
  let visits : (int * string * int, int) Hashtbl.t = Hashtbl.create 256 in
  let reported = Hashtbl.create 16 in
  let ds = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.corr >= 0 && List.mem e.Trace.kind rules.request_kinds then begin
        let key = (e.Trace.corr, e.Trace.kind, e.Trace.dst) in
        let n = 1 + Option.value ~default:0 (Hashtbl.find_opt visits key) in
        Hashtbl.replace visits key n;
        if n > 1 + allowed_revisits && not (Hashtbl.mem reported key) then begin
          Hashtbl.replace reported key ();
          ds :=
            D.makef ~severity:D.Error ~code:"routing-loop"
              ~hint:"greedy routing must not revisit a peer; raise allowed_revisits if the run used timeouts and retries"
              "request id %d: '%s' visited peer %d %d times" e.Trace.corr e.Trace.kind e.Trace.dst
              n
            :: !ds
        end
      end)
    events;
  List.rev !ds

let check_clocks events =
  let rec go prev count first = function
    | [] -> (count, first)
    | (e : Trace.event) :: rest ->
      if e.Trace.time < prev then
        go prev (count + 1) (if first = None then Some (e.Trace.time, prev) else first) rest
      else go e.Trace.time count first rest
  in
  match go neg_infinity 0 None events with
  | 0, _ -> []
  | n, Some (t, prev) ->
    [
      D.makef ~severity:D.Error ~code:"clock-regression"
        "%d event(s) recorded out of time order (first: %.3f after %.3f)" n t prev;
    ]
  | _, None -> []

let check_conservation metrics (tr : Trace.t) =
  let ds = ref [] in
  (* Marker events ([fault.*], [queue.*]) are recorded by the injection
     driver, the partial-result path and the service queue, not by
     [Net.send] — message conservation must count real sends only. *)
  let sends = List.filter (fun e -> not (Trace.is_marker e)) (Trace.events tr) in
  let total = Metrics.counter metrics "net.sent" in
  if total <> List.length sends then
    ds :=
      D.makef ~severity:D.Error ~code:"conservation"
        "trace has %d send events but metrics counted %d sends" (List.length sends) total
      :: !ds;
  let by_kind =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (e : Trace.event) ->
        let c, b = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl e.Trace.kind) in
        Hashtbl.replace tbl e.Trace.kind (c + 1, b + e.Trace.bytes))
      sends;
    Hashtbl.fold (fun k (c, b) acc -> (k, c, b) :: acc) tbl []
    |> List.sort (fun (ka, a, _) (kb, b, _) ->
           match Int.compare b a with 0 -> String.compare ka kb | c -> c)
  in
  List.iter
    (fun (kind, count, _bytes) ->
      let counted = Metrics.counter metrics ("net.sent." ^ kind) in
      if counted <> count then
        ds :=
          D.makef ~severity:D.Error ~code:"conservation"
            "trace has %d '%s' events but metrics counted %d" count kind counted
          :: !ds)
    by_kind;
  (* Kinds the metrics saw but the trace did not. *)
  List.iter
    (fun (name, v) ->
      match String.index_opt name '.' with
      | Some _
        when String.length name > 9
             && String.sub name 0 9 = "net.sent."
             && v > 0
             && not (List.exists (fun (k, _, _) -> "net.sent." ^ k = name) by_kind) ->
        ds :=
          D.makef ~severity:D.Error ~code:"conservation"
            "metrics counted %d '%s' sends absent from the trace" v
            (String.sub name 9 (String.length name - 9))
          :: !ds
      | _ -> ())
    (Metrics.counters metrics);
  List.rev !ds

(* Every request that died against a crashed peer must be visibly
   handled: a later same-correlation request (a retry or failover
   resend), a later same-correlation reply (another replica answered),
   or an explicit [fault.partial] marker (the query finished degraded).
   A query that silently swallows the loss — no retry, no marker — is
   exactly the wedge/recall bug class churn testing exists to catch. *)
let check_fault_response rules events =
  let crashed = Hashtbl.create 16 in
  List.iter
    (fun (e : Trace.event) ->
      if String.equal e.Trace.kind "fault.crash" then Hashtbl.replace crashed e.Trace.src ())
    events;
  if Hashtbl.length crashed = 0 then []
  else begin
    let reply_kinds = List.map (fun r -> r.reply) rules.replies in
    let ds = ref [] in
    let reported = Hashtbl.create 16 in
    let rec scan = function
      | [] -> ()
      | (e : Trace.event) :: rest ->
        (if
           e.Trace.corr >= 0
           && e.Trace.outcome = Trace.To_dead
           && List.mem e.Trace.kind rules.request_kinds
           && Hashtbl.mem crashed e.Trace.dst
           && not (Hashtbl.mem reported e.Trace.corr)
         then
           let handled =
             List.exists
               (fun (f : Trace.event) ->
                 f.Trace.corr = e.Trace.corr
                 && (List.mem f.Trace.kind rules.request_kinds
                    || List.mem f.Trace.kind reply_kinds
                    || String.equal f.Trace.kind "fault.partial"))
               rest
           in
           if not handled then begin
             Hashtbl.replace reported e.Trace.corr ();
             ds :=
               D.makef ~severity:D.Error ~code:"unhandled-crash"
                 ~hint:
                   "after a crash eats a request, the query must retry, fail over, or mark \
                    itself partial"
                 "request id %d: '%s' to crashed peer %d at %.3f, with no later retry, reply, \
                  or partial-result marker"
                 e.Trace.corr e.Trace.kind e.Trace.dst e.Trace.time
               :: !ds
           end);
        scan rest
    in
    scan events;
    List.rev !ds
  end

(* Any trace kind outside the static {!Protocol} table (modulo marker
   namespaces: [fault.*], [queue.*]) means a message was added to the
   code without a table entry — the runtime side of keeping the table
   honest. *)
let check_known_kinds rules events =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (e : Trace.event) ->
      if (not (Trace.is_marker e)) && not (List.mem e.Trace.kind rules.known_kinds) then begin
        let n = 1 + Option.value ~default:0 (Hashtbl.find_opt seen e.Trace.kind) in
        Hashtbl.replace seen e.Trace.kind n
      end)
    events;
  Det.sorted_bindings ~cmp:String.compare seen
  |> List.map (fun (kind, n) ->
         D.makef ~severity:D.Error ~code:"unknown-kind"
           ~hint:"add the message to the Protocol table (lib/analysis/protocol.ml) so srclint \
                  and tracelint both know it"
           "%d event(s) of kind '%s' not in the static protocol table" n kind)

let check_in_flight (tr : Trace.t) =
  let _, _, _, in_flight = Trace.outcome_counts tr in
  if in_flight = 0 then []
  else
    [
      D.makef ~severity:D.Info ~code:"in-flight"
        "%d event(s) still unresolved at the end of the run" in_flight;
    ]

let lint ?(allowed_revisits = 0) ?metrics ~rules tr =
  let events = Trace.events tr in
  let tbl = census events in
  let conservation = match metrics with Some m -> check_conservation m tr | None -> [] in
  Diagnostic.sort
    (check_clocks events @ check_replies rules tbl
    @ check_loops ~allowed_revisits rules events
    @ conservation
    @ check_fault_response rules events
    @ check_known_kinds rules events
    @ check_in_flight tr)

(* ------------------------------------------------------------------ *)
(* Cache staleness: monotone reads                                     *)

type read_obs = { origin : int; key : string; item_id : string; version : int }

let monotone_reads obs =
  (* Highest version each origin has observed per (key, item). *)
  let best : (int * string * string, int) Hashtbl.t = Hashtbl.create 64 in
  let diags = ref [] in
  List.iter
    (fun (r : read_obs) ->
      let k = (r.origin, r.key, r.item_id) in
      (match Hashtbl.find_opt best k with
      | Some seen when r.version < seen ->
        diags :=
          D.makef ~severity:D.Error ~code:"stale-read"
            "origin %d read item %s (key %S) at version %d after having already observed \
             version %d"
            r.origin r.item_id r.key r.version seen
          :: !diags
      | _ -> ());
      match Hashtbl.find_opt best k with
      | Some seen when seen >= r.version -> ()
      | _ -> Hashtbl.replace best k r.version)
    obs;
  List.rev !diags
