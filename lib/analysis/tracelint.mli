(** Distributed-trace linter.

    Replays a {!Unistore_sim.Trace.t} event log after a run and checks
    protocol-level invariants that no single message handler can see:

    - request/reply discipline per correlation id: every reply kind must
      answer a matching request ("orphan-reply", error), and
      single-reply requests must not be answered more than once
      ("multi-reply", error);
    - routing loops: the same request (kind + correlation id) delivered
      to the same destination more than [allowed_revisits] extra times
      ("routing-loop", error) — greedy prefix/ring routing never
      revisits a peer, so revisits indicate a broken routing table (or
      timeout retries: raise [allowed_revisits] for lossy runs);
    - monotone clocks: send timestamps must be non-decreasing in trace
      order ("clock-regression", error);
    - message-count conservation against an {!Unistore_obs.Metrics}
      registry that was attached over the same window: total events vs
      [net.sent] and per-kind counts vs [net.sent.<kind>]
      ("conservation", error);
    - unresolved events at the end of a settled run ("in-flight",
      info).

    Rules describe a protocol's request/reply vocabulary; {!pgrid_rules}
    and {!chord_rules} match the two overlays. *)

module Trace = Unistore_sim.Trace
module Metrics = Unistore_obs.Metrics

type reply_rule = {
  reply : string;  (** reply message kind, e.g. ["found"] *)
  requests : string list;  (** request kinds it may answer *)
  multi : bool;  (** true if one request legitimately fans out into many replies *)
}

type rules = {
  request_kinds : string list;  (** kinds subject to the routing-loop check *)
  replies : reply_rule list;
}

val pgrid_rules : rules
val chord_rules : rules

(** [lint ~rules trace] checks the trace; [metrics] enables the
    conservation check. *)
val lint :
  ?allowed_revisits:int -> ?metrics:Metrics.t -> rules:rules -> Trace.t -> Diagnostic.t list
