(** Distributed-trace linter.

    Replays a {!Unistore_sim.Trace.t} event log after a run and checks
    protocol-level invariants that no single message handler can see:

    - request/reply discipline per correlation id: every reply kind must
      answer a matching request ("orphan-reply", error), and
      single-reply requests must not be answered more than once
      ("multi-reply", error);
    - routing loops: the same request (kind + correlation id) delivered
      to the same destination more than [allowed_revisits] extra times
      ("routing-loop", error) — greedy prefix/ring routing never
      revisits a peer, so revisits indicate a broken routing table (or
      timeout retries: raise [allowed_revisits] for lossy runs);
    - monotone clocks: send timestamps must be non-decreasing in trace
      order ("clock-regression", error);
    - message-count conservation against an {!Unistore_obs.Metrics}
      registry that was attached over the same window: total events vs
      [net.sent] and per-kind counts vs [net.sent.<kind>]
      ("conservation", error) — fault markers ([fault.*], recorded
      outside [Net.send]) are excluded from both sides;
    - crash handling: every request that died against a crashed peer
      ([To_dead] outcome with a matching [fault.crash] marker) must be
      followed by a same-correlation retry, reply, or [fault.partial]
      marker ("unhandled-crash", error);
    - protocol vocabulary: every non-[fault.*] event kind must appear in
      the static {!Protocol} table ("unknown-kind", error) — the runtime
      counterpart of {!Srclint}'s source-side cross-check;
    - unresolved events at the end of a settled run ("in-flight",
      info).

    Rules describe a protocol's request/reply vocabulary; {!pgrid_rules}
    and {!chord_rules} match the two overlays. *)

module Trace = Unistore_sim.Trace
module Metrics = Unistore_obs.Metrics

type reply_rule = {
  reply : string;  (** reply message kind, e.g. ["found"] *)
  requests : string list;  (** request kinds it may answer *)
  multi : bool;  (** true if one request legitimately fans out into many replies *)
}

type rules = {
  request_kinds : string list;  (** kinds subject to the routing-loop check *)
  replies : reply_rule list;
  known_kinds : string list;
      (** the full trace vocabulary, from {!Protocol.kinds}; any other
          non-[fault.*] kind is an ["unknown-kind"] error *)
}

val pgrid_rules : rules
val chord_rules : rules

(** [check_fault_response rules events] runs just the crash-handling
    check (it is part of {!lint}); exposed for fixture tests and for
    linting event lists assembled by hand. *)
val check_fault_response : rules -> Trace.event list -> Diagnostic.t list

(** [lint ~rules trace] checks the trace; [metrics] enables the
    conservation check. *)
val lint :
  ?allowed_revisits:int -> ?metrics:Metrics.t -> rules:rules -> Trace.t -> Diagnostic.t list

(** {2 Cache staleness}

    Result and routing caches must never make time run backwards for a
    client: once an origin has seen version [v] of an item, a later read
    returning an older version means a cache served a stale entry past
    its invalidation ("monotone reads" session guarantee). The facade
    records every successful lookup as a {!read_obs}. *)

type read_obs = {
  origin : int;  (** peer the read completed at *)
  key : string;  (** encoded index key that was read *)
  item_id : string;
  version : int;  (** version of the item the read returned *)
}

(** [monotone_reads obs] replays the observations in order and reports a
    ["stale-read"] error for every read that returned a version older
    than one the same origin had already observed for the same (key,
    item). *)
val monotone_reads : read_obs list -> Diagnostic.t list
