module Ast = Unistore_vql.Ast
module Algebra = Unistore_vql.Algebra
module Parser = Unistore_vql.Parser
module Loc = Unistore_vql.Loc
module Value = Unistore_triple.Value
module Det = Unistore_util.Det
module D = Diagnostic

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else begin
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  end

(* Numeric-aware value comparison: I and F unify, otherwise the type-tag
   order of [Value.compare] (which is also the runtime comparison). *)
let cmp_values a b =
  match (Value.to_float a, Value.to_float b) with
  | Some x, Some y -> compare x y
  | _ -> Value.compare a b

let eq_values a b = cmp_values a b = 0

(* Span of a filter list entry for a query, by filter index. *)
let filter_span_of q i = Ast.filter_span q i

(* Union of the spans of all filters (of the main branch) that mention
   [v] — where a per-variable finding points. *)
let spans_mentioning q v =
  List.fold_left
    (fun (i, acc) f ->
      (i + 1, if List.mem v (Ast.expr_vars f) then Loc.union acc (filter_span_of q i) else acc))
    (0, Loc.dummy) q.Ast.filters
  |> snd

(* ------------------------------------------------------------------ *)
(* Unbound / unused variables                                          *)

let check_bound q =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let branches = (q.Ast.patterns, q.Ast.filters) :: q.Ast.union_branches in
  let bound_anywhere = List.concat_map (fun (ps, _) -> List.concat_map Ast.pattern_vars ps) branches in
  if q.Ast.patterns = [] then
    add (D.make ~severity:D.Error ~code:"no-patterns" "query has no triple patterns");
  (match q.Ast.projection with
  | Some [] -> add (D.make ~span:q.Ast.proj_span ~severity:D.Error ~code:"empty-projection" "empty projection")
  | Some vs ->
    List.iter
      (fun v ->
        if not (List.mem v bound_anywhere) then
          add
            (D.makef ~span:q.Ast.proj_span ~severity:D.Error ~code:"unbound-var"
               "projected variable ?%s is not bound by any pattern" v))
      vs
  | None -> ());
  List.iteri
    (fun bi (ps, fs) ->
      let branch_bound = List.concat_map Ast.pattern_vars ps in
      List.iteri
        (fun fi f ->
          let span = if bi = 0 then filter_span_of q fi else Loc.dummy in
          List.iter
            (fun v ->
              if not (List.mem v branch_bound) then
                add
                  (D.makef ~span ~severity:D.Error ~code:"unbound-var"
                     "filter variable ?%s is not bound within its branch" v))
            (Ast.expr_vars f))
        fs)
    branches;
  let check_order_vars vs =
    List.iter
      (fun v ->
        if not (List.mem v bound_anywhere) then
          add
            (D.makef ~span:q.Ast.order_span ~severity:D.Error ~code:"unbound-var"
               "ordering variable ?%s is not bound by any pattern" v))
      vs
  in
  (match q.Ast.order with
  | Some (Ast.OrderBy items) -> check_order_vars (List.map fst items)
  | Some (Ast.Skyline items) -> check_order_vars (List.map fst items)
  | None -> ());
  List.rev !ds

(* A variable bound by exactly one pattern, in object position, and used
   nowhere else is dead weight: the pattern still constrains results
   (the attribute must exist), which the warning points out. Only fires
   with an explicit projection — [SELECT *] uses everything. *)
let check_unused q =
  match q.Ast.projection with
  | None -> []
  | Some projected ->
    let used_outside =
      projected
      @ List.concat_map Ast.expr_vars q.Ast.filters
      @ List.concat_map (fun (_, fs) -> List.concat_map Ast.expr_vars fs) q.Ast.union_branches
      @ (match q.Ast.order with
        | Some (Ast.OrderBy items) -> List.map fst items
        | Some (Ast.Skyline items) -> List.map fst items
        | None -> [])
    in
    let occurrences v =
      let term_count = function Ast.TVar x when String.equal x v -> 1 | _ -> 0 in
      List.fold_left
        (fun acc (p : Ast.pattern) ->
          acc + term_count p.Ast.subj + term_count p.Ast.attr + term_count p.Ast.obj)
        0
        (q.Ast.patterns @ List.concat_map fst q.Ast.union_branches)
    in
    List.filter_map
      (fun (p : Ast.pattern) ->
        match p.Ast.obj with
        | Ast.TVar v when (not (List.mem v used_outside)) && occurrences v = 1 ->
          Some
            (D.makef ~span:p.Ast.span ~severity:D.Warning ~code:"unused-var"
               ~hint:"the pattern still requires the attribute to exist; project the variable or drop it if unintended"
               "variable ?%s is bound here but never used" v)
        | _ -> None)
      q.Ast.patterns

(* ------------------------------------------------------------------ *)
(* Type inference against the catalog                                  *)

type evidence = {
  possible : Catalog.vtype list;  (** candidate types from this observation *)
  source : string;
  espan : Loc.t;
}

let all_types = [ Catalog.Str; Catalog.Num; Catalog.Bool ]

let pp_types fmt ts =
  Format.pp_print_list
    ~pp_sep:(fun f () -> Format.pp_print_string f " or ")
    Catalog.pp_vtype fmt ts

let gather_evidence catalog q =
  let ev : (string, evidence list) Hashtbl.t = Hashtbl.create 16 in
  let unknown = ref [] in
  let record v e =
    Hashtbl.replace ev v (e :: Option.value ~default:[] (Hashtbl.find_opt ev v))
  in
  (* Pattern objects: the attribute's observed types constrain the
     object variable. *)
  let branches = q.Ast.patterns :: List.map fst q.Ast.union_branches in
  List.iter
    (fun ps ->
      List.iter
        (fun (p : Ast.pattern) ->
          match (p.Ast.attr, p.Ast.obj) with
          | Ast.TConst (Value.S a), obj -> (
            match Catalog.find catalog a with
            | None -> unknown := (a, p.Ast.span) :: !unknown
            | Some info -> (
              match obj with
              | Ast.TVar v when info.Catalog.types <> [] ->
                record v
                  {
                    possible = info.Catalog.types;
                    source = Printf.sprintf "attribute '%s'" a;
                    espan = p.Ast.span;
                  }
              | _ -> ()))
          | _ -> ())
        ps)
    branches;
  (* Filters: comparisons with constants and string functions. *)
  let rec walk span e =
    match e with
    | Ast.EAnd (a, b) | Ast.EOr (a, b) ->
      walk span a;
      walk span b
    | Ast.ENot a -> walk span a
    | Ast.ECmp (_, Ast.EVar v, Ast.EConst c) | Ast.ECmp (_, Ast.EConst c, Ast.EVar v) ->
      record v
        {
          possible = [ Catalog.vtype_of_value c ];
          source = Printf.sprintf "comparison with %s" (Value.to_display c);
          espan = span;
        }
    | Ast.ECmp (_, a, b) ->
      walk span a;
      walk span b
    | Ast.EEdist (a, b) | Ast.EContains (a, b) | Ast.EPrefix (a, b) ->
      let fname = match e with Ast.EEdist _ -> "edist" | Ast.EContains _ -> "contains" | _ -> "prefix" in
      List.iter
        (function
          | Ast.EVar v ->
            record v
              { possible = [ Catalog.Str ]; source = fname ^ "() argument"; espan = span }
          | _ -> ())
        [ a; b ]
    | Ast.EVar _ | Ast.EConst _ -> ()
  in
  List.iteri (fun i f -> walk (filter_span_of q i) f) q.Ast.filters;
  List.iter (fun (_, fs) -> List.iter (walk Loc.dummy) fs) q.Ast.union_branches;
  (ev, List.rev !unknown)

let check_types catalog q =
  if Catalog.is_empty catalog then []
  else begin
    let ev, unknown = gather_evidence catalog q in
    let unknown_ds =
      (* One warning per distinct unknown attribute. *)
      List.sort_uniq (fun (a, _) (b, _) -> compare a b) unknown
      |> List.map (fun (a, span) ->
             D.makef ~span ~severity:D.Warning ~code:"unknown-attr"
               ~hint:"the query can only match data inserted after statistics were collected"
               "attribute '%s' does not occur in the data" a)
    in
    let clash_ds =
      Det.sorted_bindings ~cmp:String.compare ev
      |> List.filter_map (fun (v, evs) ->
             let inter =
               List.fold_left
                 (fun acc e -> List.filter (fun t -> List.mem t e.possible) acc)
                 all_types evs
             in
             if inter = [] then begin
               let evs = List.rev evs in
               let span = List.fold_left (fun s e -> Loc.union s e.espan) Loc.dummy evs in
               let detail =
                 String.concat "; "
                   (List.map
                      (fun e -> Format.asprintf "%s implies %a" e.source pp_types e.possible)
                      evs)
               in
               Some
                 (D.makef ~span ~severity:D.Error ~code:"type-clash"
                    "variable ?%s has contradictory types: %s" v detail)
             end
             else None)
    in
    unknown_ds @ clash_ds
  end

(* ------------------------------------------------------------------ *)
(* Unsatisfiable filter predicates                                     *)

let check_unsat q =
  let ds = ref [] in
  let unsat v span fmt =
    Format.kasprintf
      (fun msg ->
        ds :=
          D.makef ~span ~severity:D.Error ~code:"unsat-filter"
            "filter on ?%s is unsatisfiable: %s" v msg
          :: !ds)
      fmt
  in
  List.iter
    (fun (v, cs) ->
      let span = spans_mentioning q v in
      let eqs = List.filter_map (function Algebra.Ceq c -> Some c | _ -> None) cs in
      let lowers = List.filter_map (function Algebra.Clower (c, i) -> Some (c, i) | _ -> None) cs in
      let uppers = List.filter_map (function Algebra.Cupper (c, i) -> Some (c, i) | _ -> None) cs in
      (* Conflicting equalities. *)
      (match eqs with
      | c1 :: rest -> (
        match List.find_opt (fun c2 -> not (eq_values c1 c2)) rest with
        | Some c2 ->
          unsat v span "?%s = %s contradicts ?%s = %s" v (Value.to_display c1) v
            (Value.to_display c2)
        | None -> ())
      | [] -> ());
      (* Tightest bounds; empty interval = contradiction. *)
      let best cmp l =
        List.fold_left
          (fun acc (c, incl) ->
            match acc with
            | None -> Some (c, incl)
            | Some (c', incl') ->
              let d = cmp_values c c' in
              if cmp d 0 || (d = 0 && incl' && not incl) then Some (c, incl) else Some (c', incl'))
          None l
      in
      let lo = best (fun d z -> d > z) lowers in
      let hi = best (fun d z -> d < z) uppers in
      (match (lo, hi) with
      | Some (l, li), Some (h, hi_incl) ->
        let d = cmp_values l h in
        if d > 0 || (d = 0 && not (li && hi_incl)) then
          unsat v span "contradictory range bounds %s%s and %s%s"
            (if li then ">= " else "> ")
            (Value.to_display l)
            (if hi_incl then "<= " else "< ")
            (Value.to_display h)
      | _ -> ());
      (* Equality vs bounds and string predicates. *)
      List.iter
        (fun c ->
          (match lo with
          | Some (l, li) ->
            let d = cmp_values c l in
            if d < 0 || (d = 0 && not li) then
              unsat v span "?%s = %s violates the lower bound %s" v (Value.to_display c)
                (Value.to_display l)
          | None -> ());
          (match hi with
          | Some (h, hi_incl) ->
            let d = cmp_values c h in
            if d > 0 || (d = 0 && not hi_incl) then
              unsat v span "?%s = %s violates the upper bound %s" v (Value.to_display c)
                (Value.to_display h)
          | None -> ());
          List.iter
            (function
              | Algebra.Cprefix p -> (
                match c with
                | Value.S s when not (String.length s >= String.length p && String.sub s 0 (String.length p) = p) ->
                  unsat v span "?%s = '%s' does not have prefix '%s'" v s p
                | _ -> ())
              | Algebra.Ccontains p -> (
                match c with
                | Value.S s when not (contains_sub s p) ->
                  unsat v span "?%s = '%s' does not contain '%s'" v s p
                | _ -> ())
              | _ -> ())
            cs)
        eqs;
      (* Impossible edit-distance thresholds: [edist < 0] etc. *)
      List.iter
        (function
          | Algebra.Cedist (p, d) when d < 0 ->
            unsat v span "edit distance to '%s' can never be below zero (threshold %d)" p d
          | _ -> ())
        cs)
    (Algebra.var_constraints q.Ast.filters);
  List.rev !ds

(* ------------------------------------------------------------------ *)
(* Join-graph connectivity                                             *)

(* Union-find over variables; each pattern joins its variables into one
   component. Patterns without variables are existence tests and exempt.
   Filters referencing several variables merge their components too
   (the engine applies them after the join, so they do connect). *)
let check_connectivity (ps : Ast.pattern list) (fs : Ast.expr list) =
  let parent : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let rec find v =
    match Hashtbl.find_opt parent v with
    | None ->
      Hashtbl.replace parent v v;
      v
    | Some p when p = v -> v
    | Some p ->
      let r = find p in
      Hashtbl.replace parent v r;
      r
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  let merge_all = function [] -> () | v :: rest -> List.iter (union v) rest in
  List.iter (fun p -> merge_all (Ast.pattern_vars p)) ps;
  List.iter (fun f -> merge_all (Ast.expr_vars f)) fs;
  let with_vars = List.filter (fun p -> Ast.pattern_vars p <> []) ps in
  let roots =
    List.sort_uniq compare
      (List.map (fun p -> find (List.hd (Ast.pattern_vars p))) with_vars)
  in
  if List.length roots <= 1 then []
  else begin
    (* Point at the first pattern of each extra component. *)
    let seen = Hashtbl.create 8 in
    let extras =
      List.filter
        (fun p ->
          let r = find (List.hd (Ast.pattern_vars p)) in
          if Hashtbl.mem seen r then false
          else begin
            Hashtbl.replace seen r ();
            Hashtbl.length seen > 1
          end)
        with_vars
    in
    List.map
      (fun (p : Ast.pattern) ->
        D.makef ~span:p.Ast.span ~severity:D.Warning ~code:"cartesian-product"
          ~hint:"join the pattern through a shared variable, or accept the cross product if intended"
          "pattern %a shares no variable with the preceding patterns (Cartesian product of %d disconnected groups)"
          Ast.pp_pattern p (List.length roots))
      extras
  end

(* ------------------------------------------------------------------ *)
(* LIMIT / ORDER BY interplay                                          *)

let check_order_limit q =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  (match q.Ast.limit with
  | Some n when n <= 0 ->
    add
      (D.makef ~span:q.Ast.limit_span ~severity:D.Error ~code:"bad-limit"
         "LIMIT must be positive (got %d)" n)
  | Some _ when q.Ast.order = None ->
    add
      (D.make ~span:q.Ast.limit_span ~severity:D.Info ~code:"nondeterministic-limit"
         "LIMIT without ORDER BY returns an arbitrary subset")
  | _ -> ());
  let check_dims kind vs =
    if vs = [] then
      add
        (D.makef ~span:q.Ast.order_span ~severity:D.Error ~code:"empty-order" "empty %s clause"
           kind);
    let rec dups seen = function
      | [] -> ()
      | v :: rest ->
        if List.mem v seen then
          add
            (D.makef ~span:q.Ast.order_span ~severity:D.Warning ~code:"duplicate-dim"
               "?%s appears more than once in the %s clause" v kind);
        dups (v :: seen) rest
    in
    dups [] vs
  in
  (match q.Ast.order with
  | Some (Ast.OrderBy items) -> check_dims "ordering" (List.map fst items)
  | Some (Ast.Skyline items) -> check_dims "skyline" (List.map fst items)
  | None -> ());
  List.rev !ds

(* ------------------------------------------------------------------ *)

let analyze ?(catalog = Catalog.empty) q =
  Diagnostic.sort
    (check_bound q @ check_unused q @ check_types catalog q @ check_unsat q
    @ check_connectivity q.Ast.patterns q.Ast.filters
    @ List.concat_map (fun (ps, fs) -> check_connectivity ps fs) q.Ast.union_branches
    @ check_order_limit q)

let analyze_string ?catalog src =
  match Parser.parse_ast src with
  | Error e -> Error e
  | Ok q -> Ok (q, analyze ?catalog q)
