(** Attribute catalog for VQL type checking.

    The universal relation has no schema, but the data still has one
    implicitly: each attribute is used with some set of value types. The
    catalog summarizes that — per attribute, the observed type set and a
    triple count — so {!Semantic} can type-check queries against actual
    data. Built either directly from triples, or from the query
    processor's statistics (see [Unistore_qproc.Engine]). *)

module Value = Unistore_triple.Value
module Triple = Unistore_triple.Triple

(** The analyzer's type lattice. [I] and [F] values unify as [Num]
    because VQL comparisons treat them numerically. *)
type vtype = Str | Num | Bool

val pp_vtype : Format.formatter -> vtype -> unit
val vtype_of_value : Value.t -> vtype

type attr_info = {
  types : vtype list;  (** observed value types, deduplicated *)
  count : int;  (** triples carrying this attribute (0 = unknown) *)
}

type t

val empty : t

(** [add t attr vtype] records one observation. *)
val add : t -> string -> vtype -> t

(** [add_info t attr info] records a pre-aggregated summary (used when
    converting from statistics). *)
val add_info : t -> string -> attr_info -> t

val of_triples : Triple.t list -> t

(** [find t attr] is [None] when the attribute is unknown to the
    catalog — analyses must stay silent rather than guess. *)
val find : t -> string -> attr_info option

val attrs : t -> string list
val is_empty : t -> bool
val pp : Format.formatter -> t -> unit
