module Value = Unistore_triple.Value
module Triple = Unistore_triple.Triple

type vtype = Str | Num | Bool

let pp_vtype fmt = function
  | Str -> Format.pp_print_string fmt "string"
  | Num -> Format.pp_print_string fmt "number"
  | Bool -> Format.pp_print_string fmt "boolean"

let vtype_of_value = function
  | Value.S _ -> Str
  | Value.I _ | Value.F _ -> Num
  | Value.B _ -> Bool

type attr_info = { types : vtype list; count : int }

module M = Map.Make (String)

type t = attr_info M.t

let empty = M.empty

let add t attr vt =
  let prev = Option.value ~default:{ types = []; count = 0 } (M.find_opt attr t) in
  let types = if List.mem vt prev.types then prev.types else vt :: prev.types in
  M.add attr { types; count = prev.count + 1 } t

let add_info t attr info = M.add attr info t

let of_triples triples =
  List.fold_left (fun t (tr : Triple.t) -> add t tr.Triple.attr (vtype_of_value tr.value)) empty
    triples

let find t attr = M.find_opt attr t
let attrs t = M.fold (fun a _ acc -> a :: acc) t [] |> List.rev
let is_empty = M.is_empty

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  M.iter
    (fun a { types; count } ->
      Format.fprintf fmt "%-20s %6d  %a@," a count
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f "|") pp_vtype)
        types)
    t;
  Format.fprintf fmt "@]"
