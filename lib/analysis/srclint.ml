(* A source-level lint over the repo's own OCaml tree, built on
   compiler-libs: each file is parsed with the compiler's own parser
   (no ppx, no typing) and walked with [Ast_iterator]. The rules encode
   the determinism contract (DESIGN.md) and the protocol discipline that
   [Tracelint] can only check after the fact, at run time, at a handful
   of sizes — here they are checked at build time, over every line.

   Findings go through the same positioned-diagnostic machinery as the
   VQL analyzer ([Diagnostic] over byte-offset [Loc] spans), so the
   output matches the rest of the static-analysis layer. A finding is
   suppressed by annotating its line:

     (* srclint: allow <rule> [<rule> ...] *)

   which is reserved for uses that are genuinely order-insensitive (a
   commutative integer fold, a min-selection under a total order) — the
   annotation is a claim the reviewer can grep for. *)

module D = Diagnostic
module Loc = Unistore_vql.Loc
open Parsetree

type rule =
  | Unordered_iteration
  | Ambient_effects
  | Polymorphic_compare
  | Protocol_exhaustiveness

let all_rules =
  [ Unordered_iteration; Ambient_effects; Polymorphic_compare; Protocol_exhaustiveness ]

let rule_name = function
  | Unordered_iteration -> "unordered-iteration"
  | Ambient_effects -> "ambient-effects"
  | Polymorphic_compare -> "polymorphic-compare"
  | Protocol_exhaustiveness -> "protocol-exhaustiveness"

let rule_of_name s = List.find_opt (fun r -> String.equal (rule_name r) s) all_rules

(* Files exempt from [ambient-effects]: the seeded split-RNG itself is
   where randomness is allowed to originate. Matched by path suffix. *)
let ambient_exempt = [ "lib/util/rng.ml" ]

(* ------------------------------------------------------------------ *)
(* Parsing and positions                                               *)

let span_of_loc (l : Location.t) =
  let s = l.Location.loc_start.Lexing.pos_cnum and e = l.Location.loc_end.Lexing.pos_cnum in
  if s < 0 then Loc.dummy else Loc.make s e

let parse ~path src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception _ ->
    let off = lexbuf.Lexing.lex_curr_p.Lexing.pos_cnum in
    Error
      (D.make ~span:(Loc.make off off) ~severity:D.Error ~code:"parse-error"
         (Printf.sprintf "%s does not parse as an OCaml implementation" path))

(* ------------------------------------------------------------------ *)
(* Identifier shapes                                                   *)

let flatten lid = try Longident.flatten lid with _ -> []

(* Strip an optional [Stdlib.] qualification. *)
let unqualify = function "Stdlib" :: rest -> rest | parts -> parts

(* [Hashtbl.fold]/[iter]/[to_seq*]: iteration in hash-bucket order. *)
let hash_iteration lid =
  match unqualify (flatten lid) with
  | [ "Hashtbl"; f ] when List.mem f [ "fold"; "iter"; "to_seq"; "to_seq_keys"; "to_seq_values" ]
    ->
    Some f
  | _ -> None

(* Normalizers: applying one of these to (a pipeline ending in) a
   hash-order fold re-establishes a deterministic order. *)
let sortish lid =
  match flatten lid with
  | [] -> false
  | parts ->
    let last = List.nth parts (List.length parts - 1) in
    List.mem last [ "sort"; "sort_uniq"; "stable_sort"; "fast_sort" ]
    || (String.length last >= 6 && String.equal (String.sub last 0 6) "sorted")

let rec head_fn e =
  match e.pexp_desc with
  | Pexp_ident lid -> Some lid.Location.txt
  | Pexp_apply (f, _) -> head_fn f
  | Pexp_constraint (e, _) -> head_fn e
  | _ -> None

let ident_is e names =
  match e.pexp_desc with
  | Pexp_ident lid -> (
    match unqualify (flatten lid.Location.txt) with [ n ] -> List.mem n names | _ -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Rule: unordered-iteration                                           *)

(* Two passes. Pass 1 collects the offsets of hash-order iterations that
   are syntactically normalized — somewhere up the expression tree their
   result feeds a sort ([List.sort f (Hashtbl.fold ...)],
   [Hashtbl.fold ... |> List.sort f], [List.sort f @@ Hashtbl.fold ...],
   or a [Det.sorted_*] / [*sorted*]-named helper). Pass 2 flags the
   rest. A fold whose result is let-bound and sorted later is NOT
   recognized — pipe it directly into the sort, which also reads
   better. *)

let collect_sanctioned structure =
  let sanctioned : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let bless e =
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            (match e.pexp_desc with
            | Pexp_ident lid when hash_iteration lid.Location.txt <> None ->
              Hashtbl.replace sanctioned e.pexp_loc.Location.loc_start.Lexing.pos_cnum ()
            | _ -> ());
            Ast_iterator.default_iterator.expr it e);
      }
    in
    it.expr it e
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply (f, args) -> (
            match head_fn f with
            | Some lid when sortish lid -> List.iter (fun (_, a) -> bless a) args
            | _ -> (
              match (f.pexp_desc, args) with
              | Pexp_ident { Location.txt = Longident.Lident "|>"; _ }, [ (_, lhs); (_, rhs) ]
                when match head_fn rhs with Some lid -> sortish lid | None -> false ->
                bless lhs
              | Pexp_ident { Location.txt = Longident.Lident "@@"; _ }, [ (_, lhs); (_, rhs) ]
                when match head_fn lhs with Some lid -> sortish lid | None -> false ->
                bless rhs
              | _ -> ()))
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it structure;
  sanctioned

let check_unordered_iteration structure =
  let sanctioned = collect_sanctioned structure in
  let diags = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident lid -> (
            match hash_iteration lid.Location.txt with
            | Some f when not (Hashtbl.mem sanctioned e.pexp_loc.Location.loc_start.Lexing.pos_cnum)
              ->
              diags :=
                D.makef ~span:(span_of_loc e.pexp_loc) ~severity:D.Error
                  ~code:"unordered-iteration"
                  ~hint:
                    "pipe the result into List.sort / use Det.sorted_bindings, or annotate the \
                     line with (* srclint: allow unordered-iteration *) if the use is \
                     order-insensitive"
                  "Hashtbl.%s iterates in hash-bucket order; an escaping result is a latent \
                   determinism violation"
                  f
                :: !diags
            | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it structure;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Rule: ambient-effects                                               *)

let ambient_effect lid =
  match unqualify (flatten lid) with
  | "Random" :: _ :: _ -> Some "Random"
  | [ "Sys"; "time" ] -> Some "Sys.time"
  | [ "Unix"; f ]
    when List.mem f [ "gettimeofday"; "time"; "times"; "gmtime"; "localtime"; "sleep"; "sleepf" ]
    ->
    Some ("Unix." ^ f)
  | _ -> None

let check_ambient_effects structure =
  let diags = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident lid -> (
            match ambient_effect lid.Location.txt with
            | Some what ->
              diags :=
                D.makef ~span:(span_of_loc e.pexp_loc) ~severity:D.Error ~code:"ambient-effects"
                  ~hint:
                    "all randomness and time must flow from the seeded split-RNG \
                     (Unistore_util.Rng) and the simulated clock (Sim.now); ambient sources \
                     make traces unreproducible"
                  "use of ambient effect source %s" what
                :: !diags
            | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it structure;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Rule: polymorphic-compare                                           *)

(* Syntactic type evidence on the untyped AST: an operand is considered
   float-valued if it is a float literal, float arithmetic, a
   float-typed constraint, or a [Float] module call that returns float;
   Bitkey-valued if it is built by a [Bitkey] constructor-like call.
   Sound but far from complete — the rule catches the places where the
   dedicated comparator was plainly available at the call site. *)

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]

let float_returning_float_fn = function
  | "equal" | "compare" | "to_int" | "to_string" | "of_string" | "is_nan" | "is_finite"
  | "is_integer" | "sign_bit" | "hash" ->
    false
  | _ -> true

let bitkey_builders =
  [
    "empty"; "append_bit"; "concat"; "take"; "drop"; "flip"; "of_string"; "of_int64";
    "of_bytes_prefix"; "random"; "pad";
  ]

let rec operand_type e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> Some "float"
  | Pexp_constraint (e', ty) -> (
    match ty.ptyp_desc with
    | Ptyp_constr ({ Location.txt = Longident.Lident "float"; _ }, []) -> Some "float"
    | Ptyp_constr ({ Location.txt = lid; _ }, []) when flatten lid = [ "Bitkey"; "t" ] ->
      Some "Bitkey.t"
    | _ -> operand_type e')
  | Pexp_apply (f, _) -> (
    match f.pexp_desc with
    | Pexp_ident { Location.txt = lid; _ } -> (
      match unqualify (flatten lid) with
      | [ op ] when List.mem op float_ops -> Some "float"
      | [ "Float"; fn ] when float_returning_float_fn fn -> Some "float"
      | [ "Bitkey"; fn ] when List.mem fn bitkey_builders -> Some "Bitkey.t"
      | _ -> None)
    | _ -> None)
  | Pexp_ident { Location.txt = lid; _ } when flatten lid = [ "Bitkey"; "empty" ] ->
    Some "Bitkey.t"
  | _ -> None

let dedicated_comparator ~ty ~op =
  match (ty, op) with
  | "float", ("=" | "<>") -> "Float.equal"
  | "float", _ -> "Float.compare"
  | _, ("=" | "<>") -> "Bitkey.equal"
  | _, _ -> "Bitkey.compare"

let check_polymorphic_compare structure =
  let diags = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply (f, ((_, a) :: (_, b) :: _ as _args)) when ident_is f [ "="; "<>"; "compare" ]
            -> (
            let op =
              match f.pexp_desc with
              | Pexp_ident { Location.txt = lid; _ } -> (
                match unqualify (flatten lid) with [ n ] -> n | _ -> "compare")
              | _ -> "compare"
            in
            match
              match operand_type a with Some t -> Some t | None -> operand_type b
            with
            | Some ty ->
              diags :=
                D.makef ~span:(span_of_loc e.pexp_loc) ~severity:D.Error
                  ~code:"polymorphic-compare"
                  ~hint:
                    "structural (=)/compare on float or Bitkey.t diverges from the dedicated \
                     comparator (NaN handling, packed representations); use the typed one"
                  "polymorphic %s applied at a %s-typed position; use %s" op ty
                  (dedicated_comparator ~ty ~op)
                :: !diags
            | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it structure;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Rule: protocol-exhaustiveness                                       *)

(* Cross-checks the static {!Protocol} table against the sources: the
   message type's constructors, the explicit (non-wildcard) arms of the
   [size]/[kind] functions and of the overlay's [dispatch], the kind
   strings those arms return, and — for request kinds — the pending-table
   [op] labels the handler registers retries under. The compiler already
   guarantees exhaustiveness of total matches; what it cannot see is a
   new constructor silently swallowed by a wildcard arm, a kind string
   that drifted from the table, or a request kind nobody ever retries. *)

type protocol_spec = {
  proto_name : string;
  table : Protocol.entry list;
  type_name : string;
  size_fn : string;
  kind_fn : string;
  dispatch_fn : string;
}

let pgrid_spec =
  {
    proto_name = "pgrid";
    table = Protocol.pgrid;
    type_name = "t";
    size_fn = "size";
    kind_fn = "kind";
    dispatch_fn = "dispatch";
  }

let chord_spec =
  {
    proto_name = "chord";
    table = Protocol.chord;
    type_name = "msg";
    size_fn = "msg_size";
    kind_fn = "msg_kind";
    dispatch_fn = "dispatch";
  }

(* Constructor names appearing anywhere in a pattern. *)
let pattern_constructors p =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_construct ({ Location.txt = lid; _ }, _) -> (
            match flatten lid with
            | [] -> ()
            | parts -> acc := List.nth parts (List.length parts - 1) :: !acc)
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.pat it p;
  List.rev !acc

let rec top_is_catch_all p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (p', _) | Ppat_constraint (p', _) -> top_is_catch_all p'
  | Ppat_or (a, b) -> top_is_catch_all a || top_is_catch_all b
  | _ -> false

(* The string constant a case body evaluates to, if it plainly does. *)
let rec body_string e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | Pexp_constraint (e', _) -> body_string e'
  | _ -> None

(* Find [let <name> ... = ...] at the structure's top level (or inside
   top-level modules), returning its binding. *)
let find_binding structure name =
  let found = ref None in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun it vb ->
          (match vb.pvb_pat.ppat_desc with
          | Ppat_var { Location.txt; _ } when String.equal txt name && !found = None ->
            found := Some vb
          | _ -> ());
          Ast_iterator.default_iterator.value_binding it vb);
    }
  in
  it.structure it structure;
  !found

(* The match cases a [function]-style or [fun ... -> match]-style
   definition dispatches on. For nested matches (a handler matching on
   a sub-structure inside an arm) the inner cases are collected too;
   only constructor presence is checked, so extras are harmless. *)
let cases_of_binding vb =
  let cases = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_function cs | Pexp_match (_, cs) -> cases := !cases @ cs
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it vb.pvb_expr;
  !cases

(* Constructors of [type <name>], with the type declaration's location. *)
let find_variant structure name =
  let found = ref None in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun it td ->
          (match (td.ptype_name.Location.txt, td.ptype_kind) with
          | n, Ptype_variant cds when String.equal n name && !found = None ->
            found :=
              Some
                ( td.ptype_loc,
                  List.map (fun cd -> (cd.pcd_name.Location.txt, cd.pcd_loc)) cds )
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration it td);
    }
  in
  it.structure it structure;
  !found

(* All [op = "..."] record fields and [~op:"..."] labelled arguments. *)
let collect_op_labels structure =
  let ops = ref [] in
  let field_is_op (lid : Longident.t Location.loc) =
    match flatten lid.Location.txt with
    | [] -> false
    | parts -> String.equal (List.nth parts (List.length parts - 1)) "op"
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_record (fields, _) ->
            List.iter
              (fun (lid, v) ->
                match (field_is_op lid, body_string v) with
                | true, Some s -> ops := s :: !ops
                | _ -> ())
              fields
          | Pexp_apply (_, args) ->
            List.iter
              (fun (label, v) ->
                match (label, body_string v) with
                | Asttypes.Labelled "op", Some s -> ops := s :: !ops
                | _ -> ())
              args
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it structure;
  List.sort_uniq String.compare !ops

(* [check_protocol ~spec ~decl ~handlers] returns [(path, diagnostic)]
   pairs; [decl] is the (path, parsed AST) of the message-type file and
   [handlers] the files holding [dispatch] and the pending-table
   registrations (for a self-contained substrate like Chord, the same
   file). *)
let check_protocol ~spec ~decl:(decl_path, decl_ast) ~handlers =
  let diags = ref [] in
  let report ?span path fmt =
    Format.kasprintf
      (fun message ->
        diags :=
          (path, D.make ?span ~severity:D.Error ~code:"protocol-exhaustiveness" message)
          :: !diags)
      fmt
  in
  let table_ctors = List.map (fun (e : Protocol.entry) -> e.Protocol.constructor) spec.table in
  (match find_variant decl_ast spec.type_name with
  | None ->
    report decl_path "no variant type '%s' found for protocol '%s'" spec.type_name
      spec.proto_name
  | Some (ty_loc, ctors) ->
    (* Table <-> type agreement, both directions. *)
    List.iter
      (fun (c, loc) ->
        if not (List.mem c table_ctors) then
          report ~span:(span_of_loc loc) decl_path
            "constructor %s is not in the static protocol table (Protocol.%s); add an entry \
             with its kind and request/reply role"
            c spec.proto_name)
      ctors;
    List.iter
      (fun c ->
        if not (List.mem_assoc c ctors) then
          report ~span:(span_of_loc ty_loc) decl_path
            "protocol table entry %s has no constructor in type '%s'" c spec.type_name)
      table_ctors;
    (* size/kind arms: every constructor matched explicitly. *)
    let check_fn fn_name ~want_kind_strings =
      match find_binding decl_ast fn_name with
      | None -> report decl_path "no function '%s' found for protocol '%s'" fn_name spec.proto_name
      | Some vb ->
        let cases = cases_of_binding vb in
        let matched = List.concat_map (fun c -> pattern_constructors c.pc_lhs) cases in
        let has_catch_all = List.exists (fun c -> top_is_catch_all c.pc_lhs) cases in
        List.iter
          (fun (c, loc) ->
            if not (List.mem c matched) then
              report ~span:(span_of_loc loc) decl_path
                "constructor %s has no explicit arm in '%s'%s" c fn_name
                (if has_catch_all then " (a wildcard arm hides it)" else ""))
          ctors;
        if want_kind_strings then
          List.iter
            (fun case ->
              match body_string case.pc_rhs with
              | None -> ()
              | Some s ->
                List.iter
                  (fun c ->
                    match
                      List.find_opt
                        (fun (e : Protocol.entry) -> String.equal e.Protocol.constructor c)
                        spec.table
                    with
                    | Some e when not (String.equal e.Protocol.kind s) ->
                      report ~span:(span_of_loc case.pc_lhs.ppat_loc) decl_path
                        "'%s' maps %s to %S but the protocol table says %S" fn_name c s
                        e.Protocol.kind
                    | _ -> ())
                  (pattern_constructors case.pc_lhs))
            cases
    in
    check_fn spec.size_fn ~want_kind_strings:false;
    check_fn spec.kind_fn ~want_kind_strings:true;
    (* dispatch: every constructor handled explicitly in some handler. *)
    let dispatch_ctors =
      List.concat_map
        (fun (_, ast) ->
          match find_binding ast spec.dispatch_fn with
          | None -> []
          | Some vb -> List.concat_map (fun c -> pattern_constructors c.pc_lhs) (cases_of_binding vb))
        handlers
    in
    if dispatch_ctors = [] then
      report decl_path "no '%s' function found in any handler file for protocol '%s'"
        spec.dispatch_fn spec.proto_name
    else
      List.iter
        (fun (c, loc) ->
          if not (List.mem c dispatch_ctors) then
            report ~span:(span_of_loc loc) decl_path
              "constructor %s is never matched by '%s'; the message would hit the handler's \
               wildcard (or nothing at all)"
              c spec.dispatch_fn)
        ctors;
    (* Retry coverage: every request op label is registered somewhere. *)
    let op_labels = List.concat_map (fun (_, ast) -> collect_op_labels ast) handlers in
    List.iter
      (fun (e : Protocol.entry) ->
        match e.Protocol.role with
        | Protocol.Request { ops } ->
          List.iter
            (fun op ->
              if not (List.mem op op_labels) then
                report decl_path
                  "request kind %S must appear in the retry/timeout table: no pending-table \
                   registration labeled op=%S found in the handler sources"
                  e.Protocol.kind op)
            ops
        | Protocol.Reply | Protocol.Background -> ())
      spec.table);
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Suppression                                                         *)

(* Per-line [(* srclint: allow <rule> ... *)] annotations. The comment
   must sit on the same line as the finding it suppresses. *)
let allow_marker = "srclint: allow"

let allows_on_line src ~line =
  let text = Loc.line_at src line in
  match
    let n = String.length text and m = String.length allow_marker in
    let rec find i =
      if i + m > n then None
      else if String.sub text i m = allow_marker then Some (i + m)
      else find (i + 1)
    in
    find 0
  with
  | None -> []
  | Some start ->
    let stop =
      let n = String.length text in
      let rec find i = if i + 1 >= n then n else if text.[i] = '*' && text.[i + 1] = ')' then i else find (i + 1) in
      find start
    in
    String.sub text start (stop - start)
    |> String.split_on_char ' '
    |> List.concat_map (String.split_on_char ',')
    |> List.filter (fun s -> s <> "")

let suppressed src ~rule (d : D.t) =
  (not (Loc.is_dummy d.D.span))
  &&
  let line = (Loc.pos_of_offset src d.D.span.Loc.start).Loc.line in
  List.mem (rule_name rule) (allows_on_line src ~line)

let rule_of_code = function
  | "unordered-iteration" -> Unordered_iteration
  | "ambient-effects" -> Ambient_effects
  | "polymorphic-compare" -> Polymorphic_compare
  | _ -> Protocol_exhaustiveness

let apply_suppressions src diags =
  List.filter (fun (d : D.t) -> not (suppressed src ~rule:(rule_of_code d.D.code) d)) diags

(* ------------------------------------------------------------------ *)
(* Per-file driver                                                     *)

let exempt_ambient path =
  List.exists
    (fun suffix ->
      let n = String.length path and m = String.length suffix in
      n >= m && String.sub path (n - m) m = suffix)
    ambient_exempt

let lint_source ?(rules = all_rules) ~path src =
  match parse ~path src with
  | Error d -> [ d ]
  | Ok ast ->
    let run rule =
      if not (List.mem rule rules) then []
      else
        match rule with
        | Unordered_iteration -> check_unordered_iteration ast
        | Ambient_effects -> if exempt_ambient path then [] else check_ambient_effects ast
        | Polymorphic_compare -> check_polymorphic_compare ast
        | Protocol_exhaustiveness -> []
    in
    D.sort
      (apply_suppressions src
         (run Unordered_iteration @ run Ambient_effects @ run Polymorphic_compare))

(* ------------------------------------------------------------------ *)
(* Tree driver                                                         *)

type report = { path : string; src : string; diags : D.t list }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let is_ml path = Filename.check_suffix path ".ml"

let rec ml_files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.filter (fun e -> not (String.length e > 0 && e.[0] = '.') && e <> "_build")
    |> List.concat_map (fun e -> ml_files_under (Filename.concat path e))
  else if is_ml path then [ path ]
  else []

let path_ends_with path suffix =
  let n = String.length path and m = String.length suffix in
  n >= m && String.sub path (n - m) m = suffix

let lint_paths ?(rules = all_rules) paths =
  let files = List.concat_map ml_files_under paths |> List.sort_uniq String.compare in
  let sources = List.map (fun p -> (p, read_file p)) files in
  let base =
    List.map (fun (path, src) -> { path; src; diags = lint_source ~rules ~path src }) sources
  in
  if not (List.mem Protocol_exhaustiveness rules) then base
  else begin
    (* Cross-file protocol checks, attached to the files they point at. *)
    let parsed = List.filter_map (fun (p, src) -> match parse ~path:p src with Ok a -> Some (p, src, a) | Error _ -> None) sources in
    let find suffix = List.find_opt (fun (p, _, _) -> path_ends_with p suffix) parsed in
    let protocol_diags =
      (match (find "pgrid/message.ml", find "pgrid/overlay.ml") with
      | Some (mp, _, mast), Some (op, _, oast) ->
        check_protocol ~spec:pgrid_spec ~decl:(mp, mast) ~handlers:[ (op, oast) ]
      | _ -> [])
      @
      match find "chord/chord.ml" with
      | Some (cp, _, cast) ->
        check_protocol ~spec:chord_spec ~decl:(cp, cast) ~handlers:[ (cp, cast) ]
      | None -> []
    in
    List.map
      (fun r ->
        let extra =
          List.filter_map
            (fun (p, d) -> if String.equal p r.path then Some d else None)
            protocol_diags
        in
        { r with diags = D.sort (apply_suppressions r.src (r.diags @ extra)) })
      base
  end

let errors reports =
  List.fold_left
    (fun acc r ->
      let e, _, _ = D.count r.diags in
      acc + e)
    0 reports

let has_errors reports = List.exists (fun r -> D.has_errors r.diags) reports

let render_reports reports =
  let b = Buffer.create 1024 in
  let total_e = ref 0 and total_w = ref 0 in
  List.iter
    (fun r ->
      if r.diags <> [] then begin
        let e, w, _ = D.count r.diags in
        total_e := !total_e + e;
        total_w := !total_w + w;
        Buffer.add_string b (Printf.sprintf "%s:\n" r.path);
        List.iter
          (fun d -> Buffer.add_string b (D.render ~src:r.src d ^ "\n"))
          r.diags
      end)
    reports;
  Buffer.add_string b
    (Printf.sprintf "srclint: %d file(s) checked, %d error(s), %d warning(s)\n"
       (List.length reports) !total_e !total_w);
  Buffer.contents b
