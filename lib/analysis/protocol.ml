type role = Request of { ops : string list } | Reply | Background
type entry = { constructor : string; kind : string; role : role }

(* lib/pgrid/message.ml: constructors of [Message.t]. The [ops] labels
   are the [op] strings overlay.ml stores in its pending table when it
   initiates the request ([Psingle]/[Pmulti]/[Pbatch] registrations and
   [~op] arguments to [start_multi]). *)
let pgrid =
  [
    { constructor = "Insert"; kind = "insert"; role = Request { ops = [ "insert" ] } };
    { constructor = "Update"; kind = "update"; role = Request { ops = [ "update" ] } };
    { constructor = "Delete"; kind = "delete"; role = Request { ops = [ "delete" ] } };
    { constructor = "Replicate"; kind = "replicate"; role = Background };
    { constructor = "Unreplicate"; kind = "unreplicate"; role = Background };
    { constructor = "Ack"; kind = "ack"; role = Reply };
    { constructor = "Lookup"; kind = "lookup"; role = Request { ops = [ "lookup" ] } };
    { constructor = "Found"; kind = "found"; role = Reply };
    { constructor = "Range"; kind = "range"; role = Request { ops = [ "range"; "prefix" ] } };
    { constructor = "RangeHit"; kind = "range-hit"; role = Reply };
    {
      constructor = "InsertBatch";
      kind = "insert-batch";
      role = Request { ops = [ "bulk-insert" ] };
    };
    { constructor = "AckBatch"; kind = "ack-batch"; role = Reply };
    {
      constructor = "MultiLookup";
      kind = "multi-lookup";
      role = Request { ops = [ "multi-lookup" ] };
    };
    { constructor = "MultiFound"; kind = "multi-found"; role = Reply };
    { constructor = "Probe"; kind = "probe"; role = Request { ops = [ "broadcast" ] } };
    { constructor = "Task"; kind = "task"; role = Background };
    { constructor = "SyncDigest"; kind = "sync-digest"; role = Background };
    { constructor = "SyncRequest"; kind = "sync-request"; role = Background };
    { constructor = "SyncItems"; kind = "sync-items"; role = Background };
    { constructor = "StatGossip"; kind = "stat-gossip"; role = Background };
    { constructor = "HotSync"; kind = "hot-sync"; role = Background };
    { constructor = "Exchange"; kind = "exchange"; role = Background };
  ]

(* lib/chord/chord.ml: constructors of [Chord.msg]. Chord's pending
   entries carry no [op] label, so [ops = []] everywhere. *)
let chord =
  [
    { constructor = "Put"; kind = "put"; role = Request { ops = [] } };
    { constructor = "PutAck"; kind = "put-ack"; role = Reply };
    { constructor = "Get"; kind = "get"; role = Request { ops = [] } };
    { constructor = "Got"; kind = "got"; role = Reply };
    { constructor = "Replica"; kind = "replica"; role = Background };
    { constructor = "Del"; kind = "del"; role = Request { ops = [] } };
    { constructor = "Unreplica"; kind = "unreplica"; role = Background };
    { constructor = "Bcast"; kind = "bcast"; role = Request { ops = [] } };
    { constructor = "BcastHit"; kind = "bcast-hit"; role = Reply };
  ]

let kinds entries = List.sort String.compare (List.map (fun e -> e.kind) entries)
let known_kinds = List.sort_uniq String.compare (kinds pgrid @ kinds chord)
