module Loc = Unistore_vql.Loc

type severity = Error | Warning | Info

let pp_severity fmt = function
  | Error -> Format.pp_print_string fmt "error"
  | Warning -> Format.pp_print_string fmt "warning"
  | Info -> Format.pp_print_string fmt "info"

type t = {
  severity : severity;
  code : string;
  message : string;
  span : Loc.t;
  hint : string option;
}

let make ?(span = Loc.dummy) ?hint ~severity ~code message =
  { severity; code; message; span; hint }

let makef ?span ?hint ~severity ~code fmt =
  Format.kasprintf (fun message -> make ?span ?hint ~severity ~code message) fmt

let is_error d = d.severity = Error
let has_errors ds = List.exists is_error ds

let count ds =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) ds

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let sort ds =
  List.stable_sort
    (fun a b ->
      match compare (severity_rank a.severity) (severity_rank b.severity) with
      | 0 -> compare a.span.Loc.start b.span.Loc.start
      | c -> c)
    ds

let render ?src d =
  let b = Buffer.create 128 in
  let head = Format.asprintf "%a[%s]" pp_severity d.severity d.code in
  (match src with
  | Some src when not (Loc.is_dummy d.span) ->
    let p = Loc.pos_of_offset src d.span.Loc.start in
    Buffer.add_string b
      (Printf.sprintf "%s at line %d, column %d: %s" head p.Loc.line p.Loc.col d.message);
    let text = Loc.line_at src p.Loc.line in
    if text <> "" then begin
      Buffer.add_string b (Printf.sprintf "\n  %s\n  %s^" text (String.make (p.Loc.col - 1) ' '))
    end
  | _ -> Buffer.add_string b (Printf.sprintf "%s: %s" head d.message));
  (match d.hint with
  | Some h -> Buffer.add_string b (Printf.sprintf "\n  hint: %s" h)
  | None -> ());
  Buffer.contents b

let render_all ?src ds =
  let ds = sort ds in
  let errors, warnings, _infos = count ds in
  let body = List.map (render ?src) ds in
  let summary =
    if ds = [] then "no diagnostics"
    else Printf.sprintf "%d error(s), %d warning(s)" errors warnings
  in
  String.concat "\n" (body @ [ summary ])

let pp fmt d = Format.pp_print_string fmt (render d)
